// Ablation A (DESIGN.md §4): effect of the RTOS context-switch overhead on
// the vocoder's end-to-end timing. §4 of the paper: "The RTOS execution time
// is taken into account during process communication and synchronization...
// assigning an execution time to those channels and waiting statements
// executed by processes mapped to SW resources."
//
// The sweep shows makespan and CPU utilisation growing with the per-switch
// cost, and the RTOS share reported separately (§6: "The RTOS overload is
// evaluated").

#include <cstdio>

#include "workloads/vocoder/pipeline.hpp"

int main() {
  using namespace workloads::vocoder;
  constexpr int kFrames = 8;

  std::printf("Ablation: RTOS overhead sweep (vocoder, %d frames, 50 MHz)\n\n",
              kFrames);
  std::printf("%14s | %14s %14s %12s\n", "rtos cyc/switch", "makespan (ms)",
              "rtos time (ms)", "cpu util (%)");
  std::printf("---------------+--------------------------------------------\n");

  long baseline_checksum = 0;
  for (double rtos : {0.0, 20.0, 80.0, 200.0, 500.0, 1000.0}) {
    const AnnotatedResult r = run_annotated(
        {.frames = kFrames, .cpu_mhz = 50.0, .rtos_cycles_per_switch = rtos});
    if (baseline_checksum == 0) baseline_checksum = r.checksum;
    if (r.checksum != baseline_checksum) {
      std::printf("!! checksum changed with RTOS overhead - functional "
                  "behaviour must not depend on timing\n");
    }
    double rtos_ms = 0.0;
    double util = 0.0;
    for (const auto& row : r.report.resources) {
      if (row.resource == "cpu") {
        rtos_ms = row.rtos.to_ms_d();
        util = row.utilization * 100.0;
      }
    }
    std::printf("%14.0f | %14.3f %14.3f %12.1f\n", rtos,
                r.sim_time.to_ms_d(), rtos_ms, util);
  }
  return 0;
}
