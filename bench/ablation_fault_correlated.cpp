// Correlated-fault ablation. Three questions on the same 64-frame streaming
// workload (source -> lossy link -> loss-concealing sink):
//
//  1. Do bursts matter? A Gilbert-Elliott loss channel versus the i.i.d.
//     channel with the SAME long-run loss rate. The sink conceals isolated
//     losses (neighbour interpolation, the vocoder trick), so the deadline
//     miss rate is driven by *consecutive* losses - which only the burst
//     model produces in quantity. Rate-matched marginals, materially
//     different miss rates.
//
//  2. Does importance sampling pay? In a rare-loss regime (0.4% drops) the
//     campaign simulates an 8x-inflated channel and re-weights every run by
//     its likelihood ratio (scfault::channel_log_lr over the channel's draw
//     record). The weighted estimate must agree with a naive Monte-Carlo
//     reference that uses 10x more runs, within the weighted ci95.
//
//  3. Do outage storms differ from scattered outages? A Poisson-cluster
//     storm concentrates the same outage budget into one window; backlog
//     compounds and the late-frame count grows versus uniform scatter.
//
// A mapping x scenario CampaignSweep grid (shared vs split CPU, iid vs
// burst vs storm) closes the loop back to the paper's design-space
// exploration: which mapping stays schedulable under which fault regime.
//
// Usage: ablation_fault_correlated [scale_pct] [--threads N]
//                                  [--journal] [--resume]
//   scale_pct (default 100) scales every campaign's run count; the CI smoke
//   run uses a small value and then only the determinism gate is asserted.
//   --threads N runs every campaign on an N-worker pool and adds a speedup
//   section: the burst campaign is timed sequentially and threaded, the two
//   CSVs must be byte-identical (the determinism gate of the parallel
//   executor), and the wall-clock ratio is reported.
//   --journal records the mapping x scenario sweep in per-cell journals
//   next to the binary (fault_correlated_sweep.journal.<cell>); --resume
//   replays completed cells/runs from them after an interruption.
//   --shard i/N runs this process as worker i of an N-shard fleet over the
//   burst campaign only: shards claim leases in the shared --shard-dir
//   (default fault_correlated_burst.shard/ next to the binary), adopt
//   stale leases of dead workers, and exit when every shard journal is
//   complete. --lease-ttl-ms MS sets the adoption staleness threshold
//   (default 10000). --merge folds the shard journals back into the same
//   fault_correlated_burst.csv an uninterrupted run writes, byte-identically.
//
//   Sweep fleet mode — the mapping x scenario grid as lease-claimable cells:
//   --sweep-shard i/N  runs this process as a sweep-fleet worker: every grid
//     cell is an independent work unit (one lease + one journal per cell in
//     --sweep-dir, default fault_correlated_sweep.shard/ next to the
//     binary); workers spread across cells, adopt stale leases, and
//     quarantine a cell after --max-adoptions failed adoptions (default 3).
//   --sweep-merge  folds the cell journals back into the sweep grid + CSV,
//     byte-identical to the uninterrupted fault_correlated_sweep.csv. With
//     --allow-partial an unfinished/quarantined fleet produces a clearly
//     marked DEGRADED report (exit code 3) instead of a refusal (exit 1).
//   --sweep-status  read-only per-cell fleet progress (exit 0 once every
//     cell is done or quarantined, 1 while the fleet is still working).
//
//   Sequential model checking — SPRT early stopping vs fixed-N:
//   --smc  runs the burst cell under a Wald SPRT (H: P(run violates) <= 0.2
//     at alpha = beta = 0.05), checks the verdict against the fixed-N
//     reference campaign's empirical rate, checks the SPRT CSV is
//     byte-identical across thread counts {seq, 1, 8}, records the verdict
//     in fault_correlated_smc.journal, and demos adaptive importance
//     sampling (pilot-tuned bias factor) feeding a weighted SPRT on the
//     rare-loss cell. With --resume the journal's decision record replays
//     without executing a single run ("smc journal resume: decision
//     replayed"). At scale >= 100 the early-stop economics are asserted:
//     SPRT samples <= 25% of the fixed-N budget.
//   --poison-cell m/s  fault-injection for the fleet itself: any worker
//     that executes a run of cell m/s raises SIGKILL — the crash-loop
//     scenario the quarantine machinery exists for (CI uses this).

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/capture.hpp"
#include "core/scperf.hpp"
#include "fault/channels.hpp"
#include "fault/injector.hpp"
#include "kernel/error.hpp"
#include "trace/campaign.hpp"
#include "trace/shard.hpp"
#include "trace/smc.hpp"

namespace {

using minisc::Time;
using sctrace::CampaignRunResult;

constexpr int kFrames = 64;
constexpr double kCpuMhz = 100.0;        // 10 ns / cycle
constexpr int kStageCycles = 100;        // 1 us of work per frame per stage
constexpr auto kPeriod = Time::us(5);    // source frame period
constexpr auto kDeadline = Time::us(20); // end-to-end budget per frame
constexpr auto kTimeout = Time::us(15);  // sink read_for budget
constexpr auto kHorizon = Time::ms(1);

// Gilbert-Elliott burst channel: pi_bad = 0.06/(0.06+0.24) = 0.2, so the
// marginal loss rate is 0.2 * 0.35 = 7% - the i.i.d. scenario below matches
// it exactly. In the bad state consecutive writes are lost with
// P(loss | previous loss) ~ (1 - p_exit) * bad_drop_p = 0.26 >> 0.07.
constexpr double kBurstEnter = 0.06;
constexpr double kBurstExit = 0.24;
constexpr double kBurstDrop = 0.35;
constexpr double kIidDrop =
    kBurstEnter / (kBurstEnter + kBurstExit) * kBurstDrop;  // 0.07

// Rare regime for the importance-sampling comparison.
constexpr double kRareDrop = 0.004;
constexpr double kBiasFactor = 8.0;

scperf::CostTable add_only_table() {
  scperf::CostTable t;
  t.set(scperf::Op::kAdd, 1.0);
  return t;
}

scperf::EnergyTable add_energy_table() {
  scperf::EnergyTable t;
  t.set(scperf::Op::kAdd, 5.0);  // pJ per add
  return t;
}

void burn(int n) {
  scperf::gint a(scperf::detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    scperf::gint r = a + 1;
    (void)r;
  }
}

struct Token {
  int id = 0;
  Time born;
};

scfault::ChannelFaultSpec iid_spec(double drop_p) {
  return {"link", drop_p, 0.0, 0.0, Time::zero(), Time::zero(), {}};
}

scfault::ChannelFaultSpec burst_spec() {
  scfault::ChannelFaultSpec s =
      {"link", 0.0, 0.0, 0.0, Time::zero(), Time::zero(), {}};
  s.burst = scfault::GilbertElliottSpec{kBurstEnter, kBurstExit, kBurstDrop,
                                        0.0, 0.0};
  return s;
}

struct RunOptions {
  scfault::ScenarioConfig cfg;
  bool split_cpu = false;   ///< sink on its own CPU
  bool conceal = true;      ///< neighbour interpolation hides isolated losses
  /// When set, the run simulated cfg's (biased) channel spec and the result
  /// is weighted by the likelihood ratio against this nominal spec.
  std::optional<scfault::ChannelFaultSpec> nominal;
};

CampaignRunResult run_stream(std::uint64_t seed, const RunOptions& opt) {
  scfault::FaultScenario scenario(opt.cfg, seed);

  minisc::Simulator sim;
  minisc::Watchdog wd;
  wd.max_deltas_per_instant = 100000;
  wd.wall_clock_ms = 30000;
  sim.set_watchdog(wd);

  scperf::Estimator est(sim);
  auto& cpu0 = est.add_sw_resource("cpu0", kCpuMhz, add_only_table(),
                                   {.rtos_cycles_per_switch = 20});
  scperf::SwResource* cpu1 = &cpu0;
  if (opt.split_cpu) {
    cpu1 = &est.add_sw_resource("cpu1", kCpuMhz, add_only_table(),
                                {.rtos_cycles_per_switch = 20});
  }
  for (auto& r : est.resources()) {
    r->set_energy_table(add_energy_table());
    r->set_fault_energy_per_cycle_pj(2.0);
  }
  est.map("source", cpu0);
  est.map("sink", *cpu1);

  scfault::FaultInjector inj(sim, est, scenario);

  scfault::FaultyFifo<Token> link("link", 64);
  link.attach(scenario);

  scperf::CaptureRegistry reg;
  scperf::CapturePoint delivered("delivered", reg);
  std::map<int, Time> arrival;  // first arrival time per frame id
  std::map<int, Time> born;     // emission time, known even for lost frames
  std::vector<Time> arrival_order;
  bool source_done = false;

  sim.spawn("source", [&] {
    for (int id = 0; id < kFrames; ++id) {
      burn(kStageCycles);
      born[id] = minisc::now();
      link.write(Token{id, minisc::now()});
      minisc::wait(kPeriod);
    }
    source_done = true;
  });

  sim.spawn("sink", [&] {
    while (true) {
      auto t = link.read_for(kTimeout);
      if (!t.has_value()) {
        if (source_done) break;
        continue;
      }
      burn(kStageCycles);
      if (arrival.emplace(t->id, minisc::now()).second) {
        delivered.record(t->id);
        arrival_order.push_back(minisc::now());
      }
    }
  });

  sim.run(kHorizon);

  // A frame makes its deadline if it arrived in time, or - with concealment
  // on - if it can be interpolated from both neighbours that did. Bursts
  // defeat interpolation: two consecutive losses leave a frame with a
  // missing neighbour.
  auto on_time = [&](int id) {
    if (id < 0 || id >= kFrames) return true;  // boundary: treat as present
    const auto it = arrival.find(id);
    const auto bit = born.find(id);
    if (bit == born.end()) return false;  // never even emitted
    return it != arrival.end() && it->second <= bit->second + kDeadline;
  };
  CampaignRunResult r;
  r.seed = seed;
  r.deadline_total = kFrames;
  for (int id = 0; id < kFrames; ++id) {
    bool ok = on_time(id);
    if (!ok && opt.conceal) ok = on_time(id - 1) && on_time(id + 1);
    if (!ok) ++r.deadline_missed;
  }
  r.makespan = arrival_order.empty() ? kHorizon : arrival_order.back();
  for (const Time ft : scenario.fault_times()) {
    for (const Time at : arrival_order) {
      if (at > ft) {
        r.recovery_latencies_ns.push_back((at - ft).to_ns_d());
        break;
      }
    }
  }
  r.faults_injected = inj.pulses_injected() + inj.outages_applied() +
                      inj.crashes_applied() + link.dropped() +
                      link.duplicated() + link.delayed();
  r.energy_pj = est.total_energy_pj();
  r.fault_energy_pj = est.fault_energy_pj();
  if (opt.nominal.has_value()) {
    r.log_weight = scfault::channel_log_lr(
        *opt.nominal, opt.cfg.channel_faults.at(0), link.fault_counts());
  }
  r.value_hash = reg.value_sequence_hash();
  return r;
}

RunOptions scenario_options(const std::string& name, bool split_cpu) {
  RunOptions opt;
  opt.split_cpu = split_cpu;
  opt.cfg.horizon = Time::us(400);
  if (name == "iid") {
    opt.cfg.channel_faults.push_back(iid_spec(kIidDrop));
  } else if (name == "burst") {
    opt.cfg.channel_faults.push_back(burst_spec());
  } else if (name == "scatter") {
    opt.cfg.channel_faults.push_back(iid_spec(kIidDrop));
    opt.cfg.outages.push_back({"cpu0", 5, Time::us(10), Time::us(20)});
  } else if (name == "storm") {
    opt.cfg.channel_faults.push_back(iid_spec(kIidDrop));
    opt.cfg.storms.push_back(
        {"cpu0", 1, 0.8, 8, Time::us(100), Time::us(10), Time::us(20)});
  }
  return opt;
}

/// Campaign execution options for the whole bench, set by --threads.
sctrace::CampaignOptions g_campaign_opts;
bool g_journal = false;

// Fleet mode over the burst campaign: --shard i/N workers share
// g_shard_dir; --merge folds its journals back into the burst CSV.
bool g_shard = false;
bool g_merge = false;
std::size_t g_shard_index = 0;
std::size_t g_shard_count = 1;
std::string g_shard_dir;
std::uint64_t g_lease_ttl_ms = 10000;

// Sweep fleet mode: grid cells as lease-claimable units in g_sweep_dir.
bool g_sweep_shard = false;
bool g_sweep_merge = false;
bool g_sweep_status = false;
bool g_allow_partial = false;
std::size_t g_sweep_index = 0;
std::size_t g_sweep_count = 1;
std::string g_sweep_dir;
std::uint64_t g_max_adoptions = 3;
/// "mapping/scenario" whose runs SIGKILL the executing worker ("" = none):
/// the deliberate poison cell for the quarantine crash-loop CI gate.
std::string g_poison_cell;

/// --smc: sequential model-checking mode (exclusive, like the fleet modes).
bool g_smc = false;

/// CSV artifacts land next to the binary (build/bench/), not in the
/// caller's cwd, so runs never litter the source tree.
std::string g_out_dir;

std::string out_path(const char* name) { return g_out_dir + name; }

sctrace::CampaignReport campaign(const RunOptions& opt, std::uint64_t seed,
                                 std::size_t n, const char* csv_name) {
  sctrace::FaultCampaign c(
      [&opt](std::uint64_t s) { return run_stream(s, opt); });
  c.run(seed, n, g_campaign_opts);
  if (csv_name != nullptr) {
    std::ofstream csv(out_path(csv_name));
    c.write_csv(csv);
  }
  return c.report();
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Times one burst campaign run with the given options and returns its CSV
/// (for the byte-identical gate) alongside the wall-clock seconds.
std::string timed_burst_csv(std::size_t n, const sctrace::CampaignOptions& o,
                            std::uint64_t seed, double* seconds) {
  const RunOptions opt = scenario_options("burst", /*split_cpu=*/false);
  sctrace::FaultCampaign c(
      [&opt](std::uint64_t s) { return run_stream(s, opt); });
  const auto t0 = std::chrono::steady_clock::now();
  c.run(seed, n, o);
  *seconds = seconds_since(t0);
  std::ostringstream csv;
  c.write_csv(csv);
  return csv.str();
}

std::size_t scaled(std::size_t n, int pct) {
  const std::size_t s = n * static_cast<std::size_t>(pct) / 100;
  return s < 4 ? 4 : s;
}

// ---- sweep fleet mode ------------------------------------------------------

const std::vector<std::string>& sweep_mappings() {
  static const std::vector<std::string> v = {"shared_cpu", "split_cpu"};
  return v;
}

const std::vector<std::string>& sweep_scenarios() {
  static const std::vector<std::string> v = {"iid", "burst", "storm"};
  return v;
}

/// The same factory the in-process CampaignSweep uses, plus the poison-cell
/// hook: a worker told to poison "m/s" SIGKILLs itself the moment it
/// executes a run of that cell — no cleanup, no journal close, exactly the
/// crash a dying host produces. The fleet must heal around it: survivors
/// adopt the cell, die the same way, and the adoption counter quarantines it.
sctrace::CampaignSweep::Factory sweep_factory() {
  return [](const std::string& mapping, const std::string& scenario) {
    const RunOptions opt = scenario_options(scenario, mapping == "split_cpu");
    const bool poison = !g_poison_cell.empty() &&
                        g_poison_cell == mapping + "/" + scenario;
    return [opt, poison](std::uint64_t s) {
      if (poison) ::kill(::getpid(), SIGKILL);
      return run_stream(s, opt);
    };
  };
}

int run_sweep_worker(std::size_t n_sweep, std::uint64_t seed) {
  sctrace::CampaignOptions co = g_campaign_opts;
  co.journal_tag = "correlated-sweep";
  sctrace::ShardOptions so;
  so.dir = g_sweep_dir;
  so.shard_index = g_sweep_index;
  so.shard_count = g_sweep_count;
  so.lease_ttl_ms = g_lease_ttl_ms;
  so.max_adoptions = g_max_adoptions;
  std::printf("sweep worker %zu/%zu over %zux%zu cells x %zu runs, dir %s\n",
              g_sweep_index, g_sweep_count, sweep_mappings().size(),
              sweep_scenarios().size(), n_sweep, g_sweep_dir.c_str());
  const sctrace::ShardProgress p = sctrace::run_sharded_sweep(
      sweep_mappings(), sweep_scenarios(), sweep_factory(), seed, n_sweep, so,
      co);
  std::printf(
      "sweep worker %zu/%zu: %zu cells run, adopted %zu, %zu runs executed, "
      "%zu lease conflicts, %zu cells lost, %zu abandoned, %zu quarantined, "
      "sweep %s\n",
      g_sweep_index, g_sweep_count, p.shards_run, p.shards_adopted,
      p.runs_executed, p.lease_conflicts, p.shards_lost, p.shards_abandoned,
      p.shards_quarantined,
      p.campaign_complete ? "complete"
                          : (p.fleet_done ? "done (degraded)" : "incomplete"));
  return 0;
}

int run_sweep_merge() {
  sctrace::MergeOptions mo;
  mo.allow_partial = g_allow_partial;
  try {
    const sctrace::MergedSweep merged = sctrace::merge_sweep_dir(g_sweep_dir, mo);
    std::printf("merged sweep: %zu of %zu cells complete\n",
                merged.complete_cells(), merged.cells.size());
    std::ostringstream grid;
    merged.print(grid);
    std::fputs(grid.str().c_str(), stdout);
    std::ofstream csv(out_path("fault_correlated_sweep.csv"));
    merged.write_csv(csv);
    std::printf("  per-cell rows -> %s\n",
                out_path("fault_correlated_sweep.csv").c_str());
    // 3 = degraded-but-emitted, distinct from both success and refusal so
    // scripts can tell "publishable" from "salvaged" without parsing output.
    return merged.complete ? 0 : 3;
  } catch (const minisc::SimError& e) {
    std::printf("MERGE REFUSED: %s\n", e.what());
    return 1;
  }
}

// ---- sequential model checking mode ----------------------------------------

/// --smc: SPRT early stopping against the fixed-N reference on the burst
/// cell (clear margin: about half of all burst runs miss a deadline, far
/// above the 0.2 threshold), thread-count byte-identity, a durable decision
/// record, and the adaptive-IS + weighted-SPRT pipeline on the rare cell.
int run_smc(int pct, std::uint64_t seed) {
  const bool full = pct >= 100;
  const std::size_t n_fix = scaled(150, pct);
  const RunOptions opt = scenario_options("burst", /*split_cpu=*/false);
  const auto fn = [opt](std::uint64_t s) { return run_stream(s, opt); };

  // The burst cell's per-run violation rate sits near 0.53 (concealment
  // hides isolated losses; only bursts get through), so a 0.2 threshold
  // leaves the clear margin the early-stop economics check needs.
  sctrace::SmcSpec spec;
  spec.method = sctrace::SmcMethod::kSprt;
  spec.threshold = 0.2;
  spec.delta = 0.05;

  // Fixed-N reference: the budget SPRT competes against, and the empirical
  // violation rate its verdict must agree with.
  sctrace::FaultCampaign ref(fn);
  ref.run(seed, n_fix, g_campaign_opts);
  std::size_t violations = 0;
  for (const CampaignRunResult& r : ref.results()) {
    if (sctrace::run_violates(r)) ++violations;
  }
  const double p_hat =
      n_fix == 0 ? 0.0 : static_cast<double>(violations) / n_fix;
  const bool fixed_accept = p_hat <= spec.threshold;
  std::printf("== sequential model checking, burst cell ==\n");
  std::printf("  fixed-N reference: %zu runs, violation rate %.3f -> "
              "P(violation) %s %.2f\n",
              n_fix, p_hat, fixed_accept ? "<=" : ">", spec.threshold);

  // SPRT, byte-identical across thread counts: the stopping seed must be a
  // pure function of the seed stream, never of worker interleaving.
  std::string csv_ref;
  sctrace::SmcVerdict verdict{};
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{8}}) {
    sctrace::CampaignOptions co;
    co.threads = threads;
    co.smc = spec;
    sctrace::FaultCampaign c(fn);
    c.run(seed, n_fix, co);
    std::ostringstream csv;
    c.write_csv(csv);
    if (csv_ref.empty()) {
      csv_ref = csv.str();
      if (c.smc_verdict() != nullptr) verdict = *c.smc_verdict();
    } else if (csv.str() != csv_ref) {
      std::printf("FAIL: %zu-thread SPRT CSV differs from sequential\n",
                  threads);
      return 1;
    }
  }
  std::printf("  SPRT: verdict %s after %llu samples "
              "(log-ratio %.3f vs bound %.3f) — CSV byte-identical "
              "across {seq,1,8} threads\n",
              sctrace::to_string(verdict.outcome),
              static_cast<unsigned long long>(verdict.samples_used),
              verdict.log_ratio, verdict.bound);
  if (full) {
    if (!verdict.decided()) {
      std::printf("FAIL: SPRT undecided on a clear-margin cell\n");
      return 1;
    }
    const bool sprt_accept = verdict.outcome == sctrace::SmcOutcome::kAccept;
    if (sprt_accept != fixed_accept) {
      std::printf("FAIL: SPRT verdict disagrees with the fixed-N rate\n");
      return 1;
    }
    if (verdict.samples_used * 4 > n_fix) {
      std::printf("FAIL: SPRT spent %llu samples, more than 25%% of the "
                  "fixed-N budget (%zu)\n",
                  static_cast<unsigned long long>(verdict.samples_used),
                  n_fix);
      return 1;
    }
    std::printf("  early-stop economics: %llu of %zu seeds (%.0f%%)\n",
                static_cast<unsigned long long>(verdict.samples_used), n_fix,
                100.0 * static_cast<double>(verdict.samples_used) /
                    static_cast<double>(n_fix));
  }

  // Durable decision: journal the SPRT campaign; on --resume the decision
  // record replays the verdict without executing a single run, and the CSV
  // must stay byte-identical to the uninterrupted run.
  std::atomic<std::size_t> calls{0};
  sctrace::FaultCampaign jc([&](std::uint64_t s) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return fn(s);
  });
  sctrace::CampaignOptions jo;
  jo.smc = spec;
  jo.journal_path = out_path("fault_correlated_smc.journal");
  jo.journal_tag = "correlated-smc";
  jo.scenario_digest = scfault::config_digest(opt.cfg);
  jo.resume = g_campaign_opts.resume;
  jc.run(seed, n_fix, jo);
  if (jo.resume && calls.load(std::memory_order_relaxed) == 0 &&
      jc.smc_verdict() != nullptr && jc.smc_verdict()->decided()) {
    std::printf("smc journal resume: decision replayed\n");
  }
  {
    std::ostringstream csv;
    jc.write_csv(csv);
    if (csv.str() != csv_ref) {
      std::printf("FAIL: journaled SPRT CSV differs from the in-memory run\n");
      return 1;
    }
    std::ofstream out(out_path("fault_correlated_smc.csv"));
    out << csv.str();
  }
  std::printf("  decision journaled -> %s (CSV -> %s)\n",
              out_path("fault_correlated_smc.journal").c_str(),
              out_path("fault_correlated_smc.csv").c_str());

  // Adaptive importance sampling on the rare-loss cell: a pilot search
  // tunes the bias factor to a healthy ESS fraction, then a weighted SPRT
  // decides the nominal hypothesis from the biased runs.
  RunOptions nom = scenario_options("iid", /*split_cpu=*/false);
  nom.cfg.channel_faults.at(0) = iid_spec(kRareDrop);
  nom.conceal = false;
  const auto make_run =
      [nom](double factor) -> sctrace::FaultCampaign::RunFn {
    RunOptions biased = nom;
    biased.cfg.channel_faults.at(0) = iid_spec(kRareDrop * factor);
    biased.nominal = iid_spec(kRareDrop);
    return [biased](std::uint64_t s) { return run_stream(s, biased); };
  };
  sctrace::AdaptiveBiasOptions ao;
  ao.pilot_runs = 16;
  ao.max_factor = kBiasFactor * 4.0;
  const sctrace::AdaptiveBiasResult tuned =
      sctrace::tune_bias_factor(make_run, seed + 7000, ao);
  std::printf("== adaptive IS + weighted SPRT, %.2f%% nominal loss ==\n",
              kRareDrop * 100.0);
  std::printf("  pilot chose bias factor %.2f (ESS fraction %.2f, %zu pilot "
              "seeds over %zu probes)\n",
              tuned.factor, tuned.ess_fraction, tuned.pilot_runs,
              tuned.trace.size());
  sctrace::SmcSpec wspec;
  wspec.method = sctrace::SmcMethod::kSprt;
  wspec.threshold = 0.4;
  wspec.delta = 0.1;
  wspec.use_weights = true;
  sctrace::CampaignOptions wo = g_campaign_opts;
  wo.smc = wspec;
  sctrace::FaultCampaign wc(make_run(tuned.factor));
  wc.run(seed, n_fix, wo);
  const sctrace::SmcVerdict* wv = wc.smc_verdict();
  std::printf("  weighted SPRT: verdict %s after %llu samples "
              "(estimate %.3f, ESS %.1f)\n",
              sctrace::to_string(wv->outcome),
              static_cast<unsigned long long>(wv->samples_used),
              wv->estimate, wv->ess);

  // Ablation K inputs: seeds spent per strategy on the same questions.
  std::printf("  seeds used: fixed-N %zu, SPRT %llu, adaptive-IS pilot + "
              "weighted SPRT %llu\n",
              n_fix,
              static_cast<unsigned long long>(verdict.samples_used),
              static_cast<unsigned long long>(tuned.pilot_runs +
                                              wv->samples_used));
  std::printf("smc checks passed%s\n",
              full ? "" : " (economics need scale >= 100)");
  return 0;
}

int run_sweep_status() {
  try {
    const sctrace::FleetStatus st =
        sctrace::sweep_fleet_status(g_sweep_dir, g_lease_ttl_ms);
    std::ostringstream os;
    sctrace::print_fleet_status(os, st);
    std::fputs(os.str().c_str(), stdout);
    return st.fleet_done() ? 0 : 1;
  } catch (const minisc::SimError& e) {
    std::printf("%s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* slash = std::strrchr(argv[0], '/')) {
    g_out_dir.assign(argv[0], static_cast<std::size_t>(slash - argv[0]) + 1);
  }
  int pct = 100;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_campaign_opts.threads =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      g_journal = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      g_journal = true;  // --resume implies journalling
      g_campaign_opts.resume = true;
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      if (std::sscanf(argv[++i], "%zu/%zu", &g_shard_index, &g_shard_count) !=
              2 ||
          g_shard_count == 0 || g_shard_index >= g_shard_count) {
        std::printf("bad --shard '%s' (want i/N with i < N)\n", argv[i]);
        return 1;
      }
      g_shard = true;
    } else if (std::strcmp(argv[i], "--shard-dir") == 0 && i + 1 < argc) {
      g_shard_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--lease-ttl-ms") == 0 && i + 1 < argc) {
      g_lease_ttl_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      g_merge = true;
    } else if (std::strcmp(argv[i], "--sweep-shard") == 0 && i + 1 < argc) {
      if (std::sscanf(argv[++i], "%zu/%zu", &g_sweep_index, &g_sweep_count) !=
              2 ||
          g_sweep_count == 0 || g_sweep_index >= g_sweep_count) {
        std::printf("bad --sweep-shard '%s' (want i/N with i < N)\n", argv[i]);
        return 1;
      }
      g_sweep_shard = true;
    } else if (std::strcmp(argv[i], "--sweep-dir") == 0 && i + 1 < argc) {
      g_sweep_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--sweep-merge") == 0) {
      g_sweep_merge = true;
    } else if (std::strcmp(argv[i], "--sweep-status") == 0) {
      g_sweep_status = true;
    } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
      g_allow_partial = true;
    } else if (std::strcmp(argv[i], "--max-adoptions") == 0 && i + 1 < argc) {
      g_max_adoptions = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--poison-cell") == 0 && i + 1 < argc) {
      g_poison_cell = argv[++i];
    } else if (std::strcmp(argv[i], "--smc") == 0) {
      g_smc = true;
    } else {
      pct = std::atoi(argv[i]);
    }
  }
  const bool full = pct >= 100;
  constexpr std::uint64_t kSeed = 42;
  bool ok = true;
  if (g_shard_dir.empty()) {
    g_shard_dir = out_path("fault_correlated_burst.shard");
  }
  if (g_sweep_dir.empty()) {
    g_sweep_dir = out_path("fault_correlated_sweep.shard");
  }

  if (g_sweep_status) return run_sweep_status();
  if (g_sweep_merge) return run_sweep_merge();
  if (g_smc) return run_smc(pct, kSeed);
  if (g_sweep_shard) {
    // Sweep-fleet worker: grid cells as lease-claimable units. Gates are
    // skipped — the merged sweep CSV cmp against an uninterrupted run is
    // the determinism gate, and the CI crash-loop gate kills workers here
    // on purpose (--poison-cell).
    return run_sweep_worker(scaled(25, pct), kSeed);
  }

  if (g_merge) {
    // Fold the fleet's burst-campaign journals into the same CSV an
    // uninterrupted single-process run writes, byte-identically.
    try {
      sctrace::MergedCampaign merged = sctrace::merge_shard_dir(g_shard_dir);
      std::printf("merged %zu shards: %zu burst runs, base seed %llu\n",
                  merged.shard_count, merged.runs,
                  static_cast<unsigned long long>(merged.base_seed));
      sctrace::FaultCampaign c(std::move(merged.results));
      std::ofstream csv(out_path("fault_correlated_burst.csv"));
      c.write_csv(csv);
      std::ostringstream report;
      c.report().print(report);
      std::fputs(report.str().c_str(), stdout);
      std::printf("  per-run rows -> %s\n",
                  out_path("fault_correlated_burst.csv").c_str());
    } catch (const minisc::SimError& e) {
      std::printf("MERGE REFUSED: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  if (g_shard) {
    // Worker mode: the burst campaign only, gates skipped — the merged CSV
    // cmp against an uninterrupted run is the determinism gate here.
    const std::size_t n_ab = scaled(150, pct);
    const RunOptions opt = scenario_options("burst", /*split_cpu=*/false);
    sctrace::CampaignOptions co = g_campaign_opts;
    co.journal_tag = "burst";
    co.scenario_digest = scfault::config_digest(opt.cfg);
    sctrace::ShardOptions so;
    so.dir = g_shard_dir;
    so.shard_index = g_shard_index;
    so.shard_count = g_shard_count;
    so.lease_ttl_ms = g_lease_ttl_ms;
    std::printf("shard worker %zu/%zu over %zu burst runs, dir %s\n",
                g_shard_index, g_shard_count, n_ab, g_shard_dir.c_str());
    const sctrace::ShardProgress p = sctrace::run_sharded_campaign(
        [opt](std::uint64_t s) { return run_stream(s, opt); }, kSeed, n_ab,
        so, co);
    std::printf(
        "worker %zu/%zu: %zu shards run, adopted %zu, %zu runs executed, "
        "%zu lease conflicts, %zu shards lost, campaign %s\n",
        g_shard_index, g_shard_count, p.shards_run, p.shards_adopted,
        p.runs_executed, p.lease_conflicts, p.shards_lost,
        p.campaign_complete ? "complete" : "incomplete");
    return 0;
  }

  std::printf("Correlated-fault ablation, %d-frame stream, scale %d%%, "
              "%zu campaign thread(s)\n\n",
              kFrames, pct,
              g_campaign_opts.threads == 0 ? std::size_t{1}
                                           : g_campaign_opts.threads);

  // -- determinism gate ----------------------------------------------------
  const RunOptions det = scenario_options("burst", /*split_cpu=*/false);
  const CampaignRunResult a = run_stream(kSeed, det);
  const CampaignRunResult b = run_stream(kSeed, det);
  if (a.value_hash != b.value_hash || a.makespan != b.makespan ||
      a.deadline_missed != b.deadline_missed) {
    std::printf("FAIL: same seed replayed differently\n");
    return 1;
  }
  std::printf("determinism: seed %llu replayed identically (hash %016llx)\n\n",
              static_cast<unsigned long long>(kSeed),
              static_cast<unsigned long long>(a.value_hash));

  // -- parallel execution: byte-identical output, wall-clock speedup -------
  if (g_campaign_opts.threads > 1) {
    const std::size_t n_par = scaled(150, pct);
    double seq_s = 0.0, par_s = 0.0;
    const std::string seq_csv =
        timed_burst_csv(n_par, sctrace::CampaignOptions{}, kSeed, &seq_s);
    const std::string par_csv =
        timed_burst_csv(n_par, g_campaign_opts, kSeed, &par_s);
    if (par_csv != seq_csv) {
      std::printf("FAIL: %zu-thread campaign CSV differs from sequential\n",
                  g_campaign_opts.threads);
      return 1;
    }
    std::printf("== parallel campaign, %zu runs ==\n", n_par);
    std::printf("  sequential      %.3f s\n", seq_s);
    std::printf("  %2zu threads      %.3f s  -> speedup %.2fx "
                "(CSV byte-identical)\n\n",
                g_campaign_opts.threads, par_s,
                par_s > 0.0 ? seq_s / par_s : 0.0);
  }

  // -- 1. burst vs rate-matched i.i.d. -------------------------------------
  const std::size_t n_ab = scaled(150, pct);
  const auto iid = campaign(scenario_options("iid", false), kSeed, n_ab,
                            "fault_correlated_iid.csv");
  const auto burst = campaign(scenario_options("burst", false), kSeed, n_ab,
                              "fault_correlated_burst.csv");
  std::printf("== burst vs i.i.d. at matched %.1f%% loss rate, %zu runs ==\n",
              kIidDrop * 100.0, n_ab);
  std::printf("  iid   miss rate %6.2f%% +/- %.2f%%\n", iid.miss_rate * 100.0,
              iid.miss_rate_ci95 * 100.0);
  std::printf("  burst miss rate %6.2f%% +/- %.2f%%\n",
              burst.miss_rate * 100.0, burst.miss_rate_ci95 * 100.0);
  if (full) {
    const bool separated =
        burst.miss_rate - iid.miss_rate >
        burst.miss_rate_ci95 + iid.miss_rate_ci95;
    std::printf("  material difference: %s\n",
                separated ? "YES (outside both ci95)" : "NO");
    ok = ok && separated;
  }
  std::printf("\n");

  // -- 2. importance sampling vs naive Monte Carlo -------------------------
  const std::size_t n_ref = scaled(1500, pct);
  const std::size_t n_is = scaled(150, pct);
  RunOptions naive_opt = scenario_options("iid", false);
  naive_opt.cfg.channel_faults.at(0) = iid_spec(kRareDrop);
  naive_opt.conceal = false;  // estimate the raw frame-loss rate
  RunOptions is_opt = naive_opt;
  is_opt.cfg.channel_faults.at(0) = iid_spec(kRareDrop * kBiasFactor);
  is_opt.nominal = iid_spec(kRareDrop);
  const auto ref = campaign(naive_opt, kSeed, n_ref, nullptr);
  const auto is = campaign(is_opt, kSeed, n_is, "fault_correlated_is.csv");
  std::printf("== importance sampling, %.2f%% nominal loss, %.0fx bias ==\n",
              kRareDrop * 100.0, kBiasFactor);
  std::printf("  naive reference (%zu runs): miss rate %.4f%% +/- %.4f%%\n",
              n_ref, ref.miss_rate * 100.0, ref.miss_rate_ci95 * 100.0);
  std::printf("  weighted IS     (%zu runs): miss rate %.4f%% +/- %.4f%%  "
              "(ESS %.1f, mean weight %.3f)\n",
              n_is, is.weighted_miss_rate * 100.0,
              is.weighted_miss_rate_ci95 * 100.0, is.effective_sample_size,
              is.mean_weight);
  if (full) {
    const double err = is.weighted_miss_rate - ref.miss_rate;
    const bool agrees = (err < 0 ? -err : err) <= is.weighted_miss_rate_ci95;
    const bool cheaper = n_is * 10 <= n_ref;
    std::printf("  agreement within IS ci95 at >=10x fewer runs: %s\n",
                agrees && cheaper ? "YES" : "NO");
    ok = ok && agrees && cheaper && is.importance_sampled;
  }
  std::printf("\n");

  // -- 3. outage storm vs scattered outages --------------------------------
  const std::size_t n_storm = scaled(40, pct);
  const auto scatter = campaign(scenario_options("scatter", false), kSeed,
                                n_storm, nullptr);
  const auto storm = campaign(scenario_options("storm", false), kSeed,
                              n_storm, nullptr);
  std::printf("== outage storm vs scatter, %zu runs ==\n", n_storm);
  std::printf("  scatter miss rate %6.2f%%, mean makespan %.0f ns\n",
              scatter.miss_rate * 100.0, scatter.makespan_ns.mean);
  std::printf("  storm   miss rate %6.2f%%, mean makespan %.0f ns\n\n",
              storm.miss_rate * 100.0, storm.makespan_ns.mean);

  // -- 4. mapping x scenario sweep ------------------------------------------
  const std::size_t n_sweep = scaled(25, pct);
  sctrace::CampaignSweep sweep(
      {"shared_cpu", "split_cpu"}, {"iid", "burst", "storm"},
      [](const std::string& mapping, const std::string& scenario) {
        const RunOptions opt =
            scenario_options(scenario, mapping == "split_cpu");
        return [opt](std::uint64_t s) { return run_stream(s, opt); };
      });
  sctrace::CampaignOptions sweep_opts = g_campaign_opts;
  if (g_journal) {
    // One journal per grid cell, derived from this prefix; the tag inside
    // each file carries the mapping/scenario pair it belongs to.
    sweep_opts.journal_path = out_path("fault_correlated_sweep.journal");
    sweep_opts.journal_tag = "correlated-sweep";
  }
  sweep.run(kSeed, n_sweep, sweep_opts);
  std::ostringstream grid;
  sweep.print(grid);
  std::fputs(grid.str().c_str(), stdout);
  std::ofstream csv(out_path("fault_correlated_sweep.csv"));
  sweep.write_csv(csv);
  std::printf("  per-cell rows -> %s\n\n",
              out_path("fault_correlated_sweep.csv").c_str());

  if (full && !ok) {
    std::printf("FAIL: an acceptance check above did not hold\n");
    return 1;
  }
  std::printf("%s\n", full ? "all correlated-fault checks passed"
                           : "smoke run complete (checks need scale >= 100)");
  return 0;
}
