// Architectural-mapping exploration on the vocoder (the paper's motivating
// DSE use case, applied to its own case study): the same specification is
// evaluated under four candidate architectures. The strict-timed simulation
// gives makespan, per-resource utilisation and estimated energy for each;
// the functional checksum is asserted invariant across mappings (§6).

#include <cstdio>

#include "workloads/vocoder/pipeline.hpp"

int main() {
  using namespace workloads::vocoder;
  constexpr int kFrames = 8;

  struct Candidate {
    const char* name;
    PipelineConfig cfg;
  };
  const Candidate candidates[] = {
      {"1 CPU",
       {.frames = kFrames, .rtos_cycles_per_switch = 80, .with_energy = true}},
      {"2 CPUs (ACB isolated)",
       {.frames = kFrames,
        .rtos_cycles_per_switch = 80,
        .num_cpus = 2,
        .with_energy = true}},
      {"1 CPU + HW post-proc",
       {.frames = kFrames,
        .rtos_cycles_per_switch = 80,
        .postproc_on_hw = true,
        .with_energy = true}},
      {"2 CPUs + HW post-proc",
       {.frames = kFrames,
        .rtos_cycles_per_switch = 80,
        .num_cpus = 2,
        .postproc_on_hw = true,
        .with_energy = true}},
  };

  std::printf("Vocoder architectural-mapping exploration (%d frames)\n\n",
              kFrames);
  std::printf("%-24s | %12s %12s %10s | %s\n", "architecture",
              "makespan(ms)", "energy(uJ)", "checksum", "utilisation");
  std::printf("-------------------------+----------------------------------"
              "----+---------------------------\n");

  long reference = 0;
  for (const Candidate& c : candidates) {
    const AnnotatedResult r = run_annotated(c.cfg);
    if (reference == 0) reference = r.checksum;
    double energy_pj = 0;
    for (const auto& [name, e] : r.process_energy_pj) energy_pj += e;
    std::printf("%-24s | %12.3f %12.2f %10ld |", c.name,
                r.sim_time.to_ms_d(), energy_pj / 1e6, r.checksum);
    for (const auto& row : r.report.resources) {
      std::printf(" %s %.0f%%", row.resource.c_str(),
                  row.utilization * 100.0);
    }
    std::printf("%s\n", r.checksum == reference ? "" : "  (MISMATCH!)");
  }
  std::printf(
      "\nIsolating the dominant ACB search on its own processor buys the\n"
      "largest makespan reduction; moving post-processing to HW also cuts\n"
      "energy (dedicated datapath). Identical checksums confirm the\n"
      "specification is deterministic under every mapping (paper §6).\n");
  return 0;
}
