// Resilience ablation: the same 5-stage frame pipeline (vocoder-shaped:
// source -> 3 processing stages -> sink) is driven through seeded fault
// campaigns — message loss/duplication/delay on every inter-stage link, CPU
// outage windows, extra-delay pulses and a mid-run crash+restart of stage2 —
// under two designs:
//
//   non-resilient: one CPU, fixed-iteration stages with blocking reads
//                  (the textbook KPN coding style). A single dropped frame
//                  permanently stalls every stage downstream.
//   resilient:     two CPUs, loss-tolerant stages (Fifo::read_for with a
//                  timeout + completion flag), so lost frames are skipped
//                  and the pipeline keeps flowing.
//
// Per N-seed campaign the driver reports deadline-miss rate (binomial ci95),
// makespan and fault-recovery latency distributions, and writes one CSV row
// per run. A same-seed double run asserts bit-identical capture hashes —
// the determinism contract that makes campaign results reproducible.

//
// Usage: ablation_fault_resilience [--threads N] [--runs N]
//                                  [--journal] [--resume]
//                                  [--shard i/N] [--shard-dir DIR]
//                                  [--lease-ttl-ms MS] [--merge]
//   --threads N runs each campaign on an N-worker pool; output is
//   byte-identical to the sequential run (verified for the resilient
//   campaign) and the wall-clock speedup is reported.
//   --runs N    overrides the number of seeds per campaign (default 24).
//   --journal   records every finished run in a crash-consistent journal
//               next to the binary (fault_resilience_<label>.journal).
//   --resume    replays completed runs from an existing journal and only
//               executes the missing seeds — kill this binary at any point
//               and rerun with --journal --resume to finish the campaign;
//               the final CSVs are byte-identical to an uninterrupted run.
//   --shard i/N runs this process as fleet worker i of N: claims shard
//               leases in the shared --shard-dir, executes its chunks as
//               journaled campaigns, and adopts stale leases of workers
//               that died (SIGKILL included), re-running only their
//               missing seeds. Exits once every shard journal is complete.
//   --shard-dir DIR  shared shard directory (default: a
//               fault_resilience.shard/ directory next to the binary).
//   --lease-ttl-ms MS  heartbeat staleness threshold for adoption
//               (default 10000).
//   --merge     folds the shard journals in --shard-dir into the same
//               report + CSV output an uninterrupted single-process run
//               produces, byte-identically; refuses mixed format versions
//               or fault-model digests and incomplete fleets.
//   --allow-partial  with --merge: instead of refusing an unfinished or
//               quarantined fleet, emit a clearly-marked DEGRADED report
//               over the recorded runs and exit with code 3.
//   --status    read-only fleet progress: per-shard state (done / claimed /
//               stale / quarantined / unclaimed), owners, heartbeat ages
//               and adoption counts, rendered purely from --shard-dir.
//               Exits 0 when the fleet is done, 1 while it is not.
//   --max-adoptions K  quarantine a shard after K adoptions (default 3;
//               0 = adopt forever): a poison shard that crashes every
//               worker that touches it is tombstoned out of the claim
//               pass instead of crash-looping the fleet.
//   --smc       additionally decides "P(run violates) <= 0.5" per design
//               with a Wald SPRT and prints each verdict with the number
//               of seeds it consumed (see ablation_fault_correlated --smc
//               for the asserted sequential-model-checking gates).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "core/capture.hpp"
#include "core/scperf.hpp"
#include "fault/channels.hpp"
#include "fault/injector.hpp"
#include "kernel/error.hpp"
#include "trace/campaign.hpp"
#include "trace/journal.hpp"
#include "trace/shard.hpp"
#include "trace/smc.hpp"

namespace {

using minisc::Time;
using sctrace::CampaignRunResult;

constexpr int kTokens = 32;
constexpr double kCpuMhz = 100.0;       // 10 ns / cycle
constexpr int kStageCycles = 100;       // 1 us of work per stage per frame
constexpr auto kPeriod = Time::us(10);  // source frame period
constexpr auto kDeadline = Time::us(60);  // end-to-end budget per frame
constexpr auto kHorizon = Time::ms(2);
constexpr auto kStageTimeout = Time::us(30);  // resilient read_for budget

scperf::CostTable add_only_table() {
  scperf::CostTable t;
  t.set(scperf::Op::kAdd, 1.0);
  return t;
}

void burn(int n) {
  scperf::gint a(scperf::detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    scperf::gint r = a + 1;
    (void)r;
  }
}

struct Token {
  int id = 0;
  Time born;
};

scfault::ScenarioConfig fault_model() {
  scfault::ScenarioConfig cfg;
  cfg.horizon = Time::us(300);  // faults strike while frames are in flight
  // Lossy inter-stage links: 5% drop, 2% duplicate, 10% delayed 1-5 us.
  cfg.channel_faults.push_back(
      {"*", 0.05, 0.02, 0.10, Time::us(1), Time::us(5), {}});
  // Transient slowdowns and one outage window on the primary CPU.
  cfg.pulses.push_back({"cpu0", 4, 500.0, 2000.0});
  cfg.outages.push_back({"cpu0", 1, Time::us(20), Time::us(50)});
  // Stage2 crashes mid-run and is respawned 5 us later. Restart alone is
  // not resilience: the non-resilient stage re-enters its fixed-count read
  // loop and starves on the frames lost while it was down.
  cfg.crashes.push_back({"stage2", Time::us(120), Time::us(5)});
  return cfg;
}

CampaignRunResult run_pipeline(std::uint64_t seed, bool resilient) {
  scfault::FaultScenario scenario(fault_model(), seed);

  minisc::Simulator sim;
  minisc::Watchdog wd;
  wd.max_deltas_per_instant = 100000;
  wd.wall_clock_ms = 30000;
  sim.set_watchdog(wd);

  scperf::Estimator est(sim);
  auto& cpu0 = est.add_sw_resource("cpu0", kCpuMhz, add_only_table(),
                                   {.rtos_cycles_per_switch = 20});
  scperf::SwResource* cpu1 = &cpu0;
  if (resilient) {
    cpu1 = &est.add_sw_resource("cpu1", kCpuMhz, add_only_table(),
                                {.rtos_cycles_per_switch = 20});
  }
  est.map("source", cpu0);
  est.map("stage1", cpu0);
  est.map("stage2", cpu0);
  est.map("stage3", *cpu1);
  est.map("sink", *cpu1);

  scfault::FaultInjector inj(sim, est, scenario);

  scfault::FaultyFifo<Token> ch0("ch0", 64), ch1("ch1", 64), ch2("ch2", 64),
      ch3("ch3", 64);
  for (auto* ch : {&ch0, &ch1, &ch2, &ch3}) ch->attach(scenario);

  scperf::CaptureRegistry reg;
  scperf::CapturePoint delivered("delivered", reg);
  struct Arrival {
    Time born;
    Time at;
  };
  std::map<int, Arrival> arrival;  // first arrival per frame id
  std::vector<Time> arrival_order;
  bool source_done = false;

  sim.spawn("source", [&] {
    for (int id = 0; id < kTokens; ++id) {
      burn(kStageCycles);
      ch0.write(Token{id, minisc::now()});
      minisc::wait(kPeriod);
    }
    source_done = true;
  });

  // Frames carry inter-frame state (the vocoder's LPC interpolation), so a
  // stage consumes them strictly in order. The designs differ in what they
  // do when the sequence breaks:
  //   non-resilient: wait for the exact next id. A dropped frame never
  //     arrives, later frames are discarded as protocol garbage, and the
  //     stage ends up blocked on an empty channel — everything downstream
  //     of the first loss is gone.
  //   resilient: conceal the gap (resync to the newest id) and bound every
  //     read with a timeout so even a silent upstream cannot stall it.
  auto stage = [&](scfault::FaultyFifo<Token>& in,
                   scfault::FaultyFifo<Token>& out) {
    return [&] {
      int expected = 0;
      if (resilient) {
        while (true) {
          auto t = in.read_for(kStageTimeout);
          if (!t.has_value()) {
            if (source_done) break;  // drained and upstream finished
            continue;
          }
          if (t->id < expected) continue;  // duplicate: already processed
          expected = t->id + 1;            // loss concealment: resync
          burn(kStageCycles);
          out.write(*t);
        }
      } else {
        while (expected < kTokens) {
          Token t = in.read();
          if (t.id != expected) continue;  // out-of-sequence: keep waiting
          ++expected;
          burn(kStageCycles);
          out.write(t);
        }
      }
    };
  };
  sim.spawn("stage1", stage(ch0, ch1));
  sim.spawn("stage2", stage(ch1, ch2));
  sim.spawn("stage3", stage(ch2, ch3));

  sim.spawn("sink", [&] {
    while (true) {
      auto t = resilient ? ch3.read_for(kStageTimeout)
                         : std::optional<Token>(ch3.read());
      if (!t.has_value()) {
        if (source_done) break;
        continue;
      }
      if (arrival.emplace(t->id, Arrival{t->born, minisc::now()}).second) {
        delivered.record(t->id);
        arrival_order.push_back(minisc::now());
      }
    }
  });

  sim.run(kHorizon);

  CampaignRunResult r;
  r.seed = seed;
  r.deadline_total = kTokens;
  for (int id = 0; id < kTokens; ++id) {
    const auto it = arrival.find(id);
    if (it == arrival.end() || it->second.at > it->second.born + kDeadline) {
      ++r.deadline_missed;
    }
  }
  r.makespan = arrival_order.empty() ? kHorizon : arrival_order.back();
  for (const Time ft : scenario.fault_times()) {
    for (const Time at : arrival_order) {
      if (at > ft) {
        r.recovery_latencies_ns.push_back((at - ft).to_ns_d());
        break;
      }
    }
  }
  r.faults_injected = inj.pulses_injected() + inj.outages_applied() +
                      inj.crashes_applied();
  for (auto* ch : {&ch0, &ch1, &ch2, &ch3}) {
    r.faults_injected += ch->dropped() + ch->duplicated() + ch->delayed();
  }
  r.value_hash = reg.value_sequence_hash();
  return r;
}

sctrace::CampaignOptions g_campaign_opts;
bool g_journal = false;
/// --smc: also decide "P(run violates) <= 0.5" sequentially per design.
bool g_smc = false;

// Fleet mode: --shard i/N workers share g_shard_dir; --merge folds it back.
bool g_shard = false;
bool g_merge = false;
bool g_status = false;
bool g_allow_partial = false;
std::size_t g_shard_index = 0;
std::size_t g_shard_count = 1;
std::string g_shard_dir;
std::uint64_t g_lease_ttl_ms = 10000;
std::uint64_t g_max_adoptions = 3;

/// CSV artifacts land next to the binary (build/bench/), not in the
/// caller's cwd, so runs never litter the source tree.
std::string g_out_dir;

/// Shared report + CSV emission: the merge path must go through the exact
/// same code as a live campaign for its output to be byte-identical.
void emit_campaign(const char* label, const sctrace::FaultCampaign& campaign) {
  std::printf("== %s mapping ==\n", label);
  std::ostringstream report;
  campaign.report().print(report);
  std::fputs(report.str().c_str(), stdout);

  std::string csv_name = g_out_dir + "fault_resilience_" + label + ".csv";
  std::ofstream csv(csv_name);
  campaign.write_csv(csv);
  std::printf("  per-run rows -> %s\n\n", csv_name.c_str());
}

void run_shard_worker(const char* label, bool resilient,
                      std::uint64_t base_seed, std::size_t n) {
  sctrace::CampaignOptions opts = g_campaign_opts;
  opts.journal_tag = label;
  opts.scenario_digest = scfault::config_digest(fault_model());

  sctrace::ShardOptions so;
  so.dir = g_shard_dir + "/" + label;  // labels keep separate fleets
  so.shard_index = g_shard_index;
  so.shard_count = g_shard_count;
  so.lease_ttl_ms = g_lease_ttl_ms;
  so.max_adoptions = g_max_adoptions;

  const sctrace::ShardProgress p = sctrace::run_sharded_campaign(
      [resilient](std::uint64_t seed) { return run_pipeline(seed, resilient); },
      base_seed, n, so, opts);
  std::printf(
      "  [%s] worker %zu/%zu: %zu shards run, adopted %zu, %zu runs "
      "executed, %zu lease conflicts, %zu shards lost, %zu abandoned, "
      "%zu quarantined, campaign %s\n",
      label, g_shard_index, g_shard_count, p.shards_run, p.shards_adopted,
      p.runs_executed, p.lease_conflicts, p.shards_lost, p.shards_abandoned,
      p.shards_quarantined,
      p.campaign_complete ? "complete"
                          : (p.fleet_done ? "done (degraded)" : "incomplete"));
}

/// Returns the process exit code: 0 for a complete merge, 3 for a degraded
/// partial one (distinct so scripts can tell "publishable" from "salvaged").
int run_merge(const char* label) {
  sctrace::MergeOptions mo;
  mo.allow_partial = g_allow_partial;
  sctrace::MergedCampaign merged =
      sctrace::merge_shard_dir(g_shard_dir + "/" + label, mo);
  std::printf("  [%s] merged %zu shards: %zu runs, base seed %llu\n", label,
              merged.shard_count, merged.runs,
              static_cast<unsigned long long>(merged.base_seed));
  if (!merged.complete) {
    std::printf(
        "  [%s] DEGRADED merge: %zu of %zu runs recorded (%zu missing, "
        "%zu shards without journals, %zu quarantined)\n",
        label, merged.recorded_runs, merged.runs, merged.missing_records,
        merged.missing_shards.size(), merged.quarantined.size());
    for (const sctrace::QuarantinedUnit& q : merged.quarantined) {
      std::printf("  [%s] quarantined %s: %llu adoptions, last owner '%s'%s%s\n",
                  label, q.name.c_str(),
                  static_cast<unsigned long long>(q.info.adoptions),
                  q.info.owner.c_str(),
                  q.info.error.empty() ? "" : ", error: ",
                  q.info.error.c_str());
    }
  }
  sctrace::FaultCampaign campaign(std::move(merged.results));
  emit_campaign(label, campaign);
  return merged.complete ? 0 : 3;
}

/// Read-only fleet progress for both labels; exit 0 when every shard of
/// both fleets is done or quarantined, 1 otherwise.
int run_status() {
  bool all_done = true;
  for (const char* label : {"non_resilient", "resilient"}) {
    std::printf("== %s fleet ==\n", label);
    try {
      const sctrace::FleetStatus st =
          sctrace::fleet_status(g_shard_dir + "/" + label, g_lease_ttl_ms);
      std::ostringstream os;
      sctrace::print_fleet_status(os, st);
      std::fputs(os.str().c_str(), stdout);
      if (!st.fleet_done()) all_done = false;
    } catch (const minisc::SimError& e) {
      std::printf("  %s\n", e.what());
      all_done = false;
    }
  }
  return all_done ? 0 : 1;
}

void run_campaign(const char* label, bool resilient, std::uint64_t base_seed,
                  std::size_t n) {
  sctrace::CampaignOptions opts = g_campaign_opts;
  if (g_journal) {
    // Journals live next to the binary like the CSVs; the scenario digest
    // pins the fault model so a resume against an edited model is refused.
    opts.journal_path = g_out_dir + "fault_resilience_" + label + ".journal";
    opts.journal_tag = label;
    opts.scenario_digest = scfault::config_digest(fault_model());
    if (opts.resume) {
      std::ifstream probe(opts.journal_path, std::ios::binary);
      if (probe.peek() != std::ifstream::traits_type::eof()) {
        const sctrace::JournalContents prior =
            sctrace::read_journal(opts.journal_path);
        std::printf("  [%s] resuming: %zu of %zu runs replayed from %s\n",
                    label, prior.records.size(), n, opts.journal_path.c_str());
      }
    }
  }
  sctrace::FaultCampaign campaign(
      [resilient](std::uint64_t seed) { return run_pipeline(seed, resilient); });
  campaign.run(base_seed, n, opts);
  emit_campaign(label, campaign);
}

}  // namespace

int main(int argc, char** argv) {
  constexpr std::uint64_t kBaseSeed = 1000;
  std::size_t runs = 24;

  if (const char* slash = std::strrchr(argv[0], '/')) {
    g_out_dir.assign(argv[0], static_cast<std::size_t>(slash - argv[0]) + 1);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_campaign_opts.threads =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--journal") == 0) {
      g_journal = true;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      g_journal = true;  // --resume implies journalling
      g_campaign_opts.resume = true;
    } else if (std::strcmp(argv[i], "--smc") == 0) {
      g_smc = true;
    } else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) {
      if (std::sscanf(argv[++i], "%zu/%zu", &g_shard_index, &g_shard_count) !=
              2 ||
          g_shard_count == 0 || g_shard_index >= g_shard_count) {
        std::printf("bad --shard '%s' (want i/N with i < N)\n", argv[i]);
        return 1;
      }
      g_shard = true;
    } else if (std::strcmp(argv[i], "--shard-dir") == 0 && i + 1 < argc) {
      g_shard_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--lease-ttl-ms") == 0 && i + 1 < argc) {
      g_lease_ttl_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (std::strcmp(argv[i], "--merge") == 0) {
      g_merge = true;
    } else if (std::strcmp(argv[i], "--status") == 0) {
      g_status = true;
    } else if (std::strcmp(argv[i], "--allow-partial") == 0) {
      g_allow_partial = true;
    } else if (std::strcmp(argv[i], "--max-adoptions") == 0 && i + 1 < argc) {
      g_max_adoptions = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    }
  }
  const std::size_t kRuns = runs;
  if (g_shard_dir.empty()) g_shard_dir = g_out_dir + "fault_resilience.shard";

  if (g_status) {
    // Pure observation: stat+read of the shard dir, no leases touched.
    return run_status();
  }

  if (g_merge) {
    // Merge mode touches no simulation: fold the fleet's journals back into
    // the single-process report + CSV, byte-identically, or refuse loudly.
    // --allow-partial degrades instead of refusing (exit 3, marked output).
    try {
      const int rc_a = run_merge("non_resilient");
      const int rc_b = run_merge("resilient");
      return std::max(rc_a, rc_b);
    } catch (const minisc::SimError& e) {
      std::printf("MERGE REFUSED: %s\n", e.what());
      return 1;
    }
  }

  if (g_shard) {
    // Worker mode: skip the determinism/parallel gates (the merged output
    // is itself the determinism gate — it must cmp-equal the uninterrupted
    // single-process CSV) and go straight to claiming shards.
    std::printf("shard worker %zu/%zu over %zu runs, dir %s, TTL %llu ms\n",
                g_shard_index, g_shard_count, kRuns, g_shard_dir.c_str(),
                static_cast<unsigned long long>(g_lease_ttl_ms));
    run_shard_worker("non_resilient", /*resilient=*/false, kBaseSeed, kRuns);
    run_shard_worker("resilient", /*resilient=*/true, kBaseSeed, kRuns);
    return 0;
  }

  std::printf(
      "Fault-resilience ablation: %d-frame pipeline, %zu seeded scenarios\n"
      "faults per run: lossy links (5%% drop / 2%% dup / 10%% delay), 4 CPU\n"
      "pulses, one 20-50 us CPU outage, stage2 crash+restart at 120 us\n\n",
      kTokens, kRuns);

  // Determinism gate: one scenario replayed must be bit-identical.
  const CampaignRunResult a = run_pipeline(kBaseSeed, true);
  const CampaignRunResult b = run_pipeline(kBaseSeed, true);
  if (a.value_hash != b.value_hash || a.makespan != b.makespan) {
    std::printf("FAIL: same seed produced different executions\n");
    return 1;
  }
  std::printf("determinism check: seed %llu replayed identically "
              "(hash %016llx)\n\n",
              static_cast<unsigned long long>(kBaseSeed),
              static_cast<unsigned long long>(a.value_hash));

  // Parallel gate: the threaded resilient campaign must emit the sequential
  // CSV byte-for-byte; report the wall-clock ratio while we have both runs.
  if (g_campaign_opts.threads > 1) {
    auto timed_csv = [&](const sctrace::CampaignOptions& o, double* seconds) {
      sctrace::FaultCampaign c(
          [](std::uint64_t seed) { return run_pipeline(seed, true); });
      const auto t0 = std::chrono::steady_clock::now();
      c.run(kBaseSeed, kRuns, o);
      *seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
      std::ostringstream os;
      c.write_csv(os);
      return os.str();
    };
    double seq_s = 0.0, par_s = 0.0;
    const std::string seq_csv = timed_csv(sctrace::CampaignOptions{}, &seq_s);
    const std::string par_csv = timed_csv(g_campaign_opts, &par_s);
    if (par_csv != seq_csv) {
      std::printf("FAIL: %zu-thread campaign CSV differs from sequential\n",
                  g_campaign_opts.threads);
      return 1;
    }
    std::printf("parallel gate: %zu threads byte-identical, %.3f s vs "
                "%.3f s sequential (speedup %.2fx)\n\n",
                g_campaign_opts.threads, par_s, seq_s,
                par_s > 0.0 ? seq_s / par_s : 0.0);
  }

  run_campaign("non_resilient", /*resilient=*/false, kBaseSeed, kRuns);
  run_campaign("resilient", /*resilient=*/true, kBaseSeed, kRuns);

  if (g_smc) {
    // Sequential verdict per design: does "P(run violates) <= 0.5" hold?
    // Under this fault model nearly every run of either design misses at
    // least one frame, so both verdicts reject — well before the seed
    // budget runs out. Demonstration only; the correlated bench's --smc
    // mode carries the asserted gates.
    sctrace::SmcSpec spec;
    spec.method = sctrace::SmcMethod::kSprt;
    spec.threshold = 0.5;
    spec.delta = 0.05;
    sctrace::CampaignOptions o = g_campaign_opts;
    o.smc = spec;
    std::printf("\nsequential verdicts (H: P(run violates) <= %.2f):\n",
                spec.threshold);
    for (const bool resilient : {false, true}) {
      sctrace::FaultCampaign c([resilient](std::uint64_t seed) {
        return run_pipeline(seed, resilient);
      });
      c.run(kBaseSeed, kRuns, o);
      const sctrace::SmcVerdict* v = c.smc_verdict();
      std::printf("  %-13s %s after %llu of %zu seeds (estimate %.2f)\n",
                  resilient ? "resilient" : "non_resilient",
                  sctrace::to_string(v->outcome),
                  static_cast<unsigned long long>(v->samples_used), kRuns,
                  v->estimate);
    }
  }

  std::printf(
      "The strict in-order design discards everything after the first lost\n"
      "frame and ends blocked on an empty channel; the read_for-based\n"
      "design conceals gaps and keeps the miss rate near the per-frame\n"
      "fault rate.\n");
  return 0;
}
