// Ablation J (DESIGN.md §4, EXPERIMENTS.md): the segment replay cache.
//
// Two modes in one binary:
//
//   --verify    Equivalence + engagement gates (the CI gate): every workload
//               the table*/fig* benches estimate is run twice — replay cache
//               enabled and disabled — and the estimator outputs (report
//               bytes, CSV bytes, bit patterns of the cycle estimates) must
//               be byte-identical. Campaign CSV/report are checked for
//               threads in {seq, 1, 8}, and fault-injected resources are
//               checked to never engage the cache. Exits non-zero on any
//               divergence.
//
//   --speedup   Chrono-measured active-charging speedup of the replay path
//               on a loop-heavy FIR kernel; exits non-zero below the gate
//               (2x). Run separately from --verify so an equivalence failure
//               is never masked by a timing failure or vice versa.
//
//   (default)   google-benchmark timings of the same kernels, for
//               --benchmark_format=json perf tracking.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/scperf.hpp"
#include "core/segment_cache.hpp"
#include "fault/injector.hpp"
#include "trace/campaign.hpp"
#include "workloads/hw_segments.hpp"
#include "workloads/table1.hpp"
#include "workloads/vocoder/pipeline.hpp"

using minisc::Time;

namespace {

int g_failures = 0;

void check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what.c_str());
  if (!ok) ++g_failures;
}

/// Bit pattern of a double — equality of estimates must be exact, not
/// approximate, for the byte-identity claim.
std::uint64_t bits(double v) {
  std::uint64_t u;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

scperf::SegmentCacheConfig cache_config(bool enabled) {
  scperf::SegmentCacheConfig cfg;
  cfg.enabled = enabled;
  return cfg;
}

/// The deterministic artifacts of one estimator run: everything the table*/
/// fig* benches derive their figures from (host times excluded — those are
/// measurements of the host, not outputs of the estimator).
struct Artifacts {
  std::string report_text;
  std::string segment_csv;
  std::string process_csv;
  std::string resource_csv;
  std::vector<std::uint64_t> cycle_bits;
  long checksum = 0;
  std::uint64_t sim_time_ps = 0;
  scperf::SegmentCacheStats cache;

  bool operator==(const Artifacts& o) const {
    return report_text == o.report_text && segment_csv == o.segment_csv &&
           process_csv == o.process_csv && resource_csv == o.resource_csv &&
           cycle_bits == o.cycle_bits && checksum == o.checksum &&
           sim_time_ps == o.sim_time_ps;
  }
};

Artifacts collect(const scperf::Estimator& est, minisc::Simulator& sim,
                  const std::vector<std::string>& processes, long checksum) {
  Artifacts a;
  const scperf::Report rep = est.report();
  std::ostringstream os;
  rep.print(os);
  a.report_text = os.str();
  os.str("");
  rep.write_csv(os);
  a.segment_csv = os.str();
  os.str("");
  rep.write_process_csv(os);
  a.process_csv = os.str();
  os.str("");
  rep.write_resource_csv(os);
  a.resource_csv = os.str();
  for (const std::string& p : processes) {
    a.cycle_bits.push_back(bits(est.process_cycles(p)));
    a.cycle_bits.push_back(bits(est.process_energy_pj(p)));
  }
  a.checksum = checksum;
  a.sim_time_ps = static_cast<std::uint64_t>(sim.now().to_ps());
  a.cache = est.segment_cache_stats();
  return a;
}

// ---- gate 1: Table 1 suite (SW estimation) ------------------------------

/// Runs one Table-1 benchmark as a looping process (reps segments) on a SW
/// resource, with the cache forced on or off.
Artifacts run_table1(const workloads::Benchmark& b, bool cached) {
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  est.set_segment_cache_config(cache_config(cached));
  auto& cpu = est.add_sw_resource("cpu", 50.0, scperf::orsim_sw_cost_table());
  est.map(b.name, cpu);
  long checksum = 0;
  sim.spawn(b.name, [&] {
    // Five repetitions separated by timed waits: the wait->wait segments
    // re-execute the identical op stream, which is exactly what the replay
    // cache memoizes in the real loop-heavy workloads.
    for (int rep = 0; rep < 5; ++rep) {
      checksum += b.annotated();
      minisc::wait(Time::us(1));
    }
  });
  sim.run();
  return collect(est, sim, {b.name}, checksum);
}

void gate_table1() {
  std::printf("-- gate: table1 suite (SW), cached vs uncached --\n");
  for (const auto& b : workloads::table1_suite()) {
    const Artifacts off = run_table1(b, false);
    const Artifacts on = run_table1(b, true);
    check(on == off, b.name + ": estimator outputs byte-identical");
    check(on.cache.hits > 0, b.name + ": cache engaged (hits > 0)");
    check(off.cache.hits + off.cache.misses == 0,
          b.name + ": disabled cache never engaged");
  }
}

// ---- gate 2: Table 2 / Table 4 HW segments (structural bypass) ----------

Artifacts run_hw_segment(const workloads::HwSegment& seg, bool cached,
                         bool record_dfg) {
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  est.set_segment_cache_config(cache_config(cached));
  auto& hw = est.add_hw_resource(
      "hw", 100.0, scperf::asic_hw_cost_table(),
      {.k = 0.5, .record_dfg = record_dfg});
  est.map(seg.name, hw);
  long checksum = 0;
  sim.spawn(seg.name, [&] {
    for (int rep = 0; rep < 3; ++rep) {
      checksum += seg.body();
      minisc::wait(Time::us(1));
    }
  });
  sim.run();
  return collect(est, sim, {seg.name}, checksum);
}

void gate_hw_segments() {
  std::printf("-- gate: table2/table4 HW segments (ready tracking) --\n");
  for (const auto& seg :
       {workloads::fir_hw_segment(), workloads::euler_hw_segment()}) {
    for (const bool dfg : {false, true}) {
      const std::string label =
          seg.name + (dfg ? " (record_dfg)" : " (track_ready)");
      const Artifacts off = run_hw_segment(seg, false, dfg);
      const Artifacts on = run_hw_segment(seg, true, dfg);
      check(on == off, label + ": outputs byte-identical");
      check(on.cache.hits + on.cache.misses == 0,
            label + ": cache structurally bypassed on HW");
    }
  }
}

// ---- gate 3: vocoder pipeline (Table 3 / Table 4 / Fig 4 configs) -------

/// run_annotated constructs its own Estimator, so the cache is toggled the
/// way a user would: through the environment.
workloads::vocoder::AnnotatedResult run_vocoder(
    const workloads::vocoder::PipelineConfig& cfg, bool cached) {
  setenv("SCPERF_SEGMENT_CACHE", cached ? "1" : "0", 1);
  auto result = workloads::vocoder::run_annotated(cfg);
  unsetenv("SCPERF_SEGMENT_CACHE");
  return result;
}

void gate_vocoder() {
  std::printf("-- gate: vocoder pipeline (table3/table4/fig4 configs) --\n");
  struct Case {
    const char* name;
    workloads::vocoder::PipelineConfig cfg;
  };
  const Case cases[] = {
      {"table3 1cpu", {.frames = 6}},
      {"table3 2cpu+rtos",
       {.frames = 6, .rtos_cycles_per_switch = 90.0, .num_cpus = 2}},
      {"table4 hw k=0", {.frames = 6, .postproc_on_hw = true, .hw_k = 0.0}},
      {"fig4 hw k=0.5", {.frames = 6, .postproc_on_hw = true, .hw_k = 0.5}},
      {"fig4 hw k=1", {.frames = 6, .postproc_on_hw = true, .hw_k = 1.0}},
      {"energy", {.frames = 6, .with_energy = true}},
  };
  for (const Case& c : cases) {
    const auto off = run_vocoder(c.cfg, false);
    const auto on = run_vocoder(c.cfg, true);
    std::ostringstream ros_off, ros_on, csv_off, csv_on;
    off.report.print(ros_off);
    on.report.print(ros_on);
    off.report.write_csv(csv_off);
    on.report.write_csv(csv_on);
    bool cycles_equal = on.checksum == off.checksum &&
                        on.sim_time == off.sim_time &&
                        on.process_cycles.size() == off.process_cycles.size();
    if (cycles_equal) {
      for (const auto& [name, cyc] : off.process_cycles) {
        const auto it = on.process_cycles.find(name);
        cycles_equal &= it != on.process_cycles.end() &&
                        bits(it->second) == bits(cyc);
      }
      for (const auto& [name, pj] : off.process_energy_pj) {
        const auto it = on.process_energy_pj.find(name);
        cycles_equal &= it != on.process_energy_pj.end() &&
                        bits(it->second) == bits(pj);
      }
    }
    check(cycles_equal && ros_on.str() == ros_off.str() &&
              csv_on.str() == csv_off.str(),
          std::string(c.name) + ": outputs byte-identical");
    std::uint64_t hits = 0;
    for (const auto& row : on.report.cache) hits += row.hits;
    check(hits > 0, std::string(c.name) + ": cache engaged (hits > 0)");
  }
}

// ---- gate 4: campaigns, threads in {seq, 1, 8} --------------------------

/// A seeded producer/consumer campaign run. With `faults`, pulses hammer the
/// CPU (making it memo-unsafe); without, the cache engages. The seed varies
/// the per-item workload, so segments have data-dependent op streams.
sctrace::FaultCampaign::RunFn make_campaign_run(bool cached, bool faults) {
  return [cached, faults](std::uint64_t seed) {
    minisc::Simulator sim;
    scperf::Estimator est(sim);
    est.set_segment_cache_config(cache_config(cached));
    auto& cpu =
        est.add_sw_resource("cpu", 100.0, scperf::orsim_sw_cost_table());
    est.map("producer", cpu);
    est.map("consumer", cpu);

    scfault::ScenarioConfig cfg;
    cfg.horizon = Time::ms(1);
    if (faults) {
      cfg.pulses.push_back({"cpu", 2, 150.0, 500.0});
      cfg.pulses.push_back({"cpu", 3, 150.0, 700.0});
    }
    scfault::FaultScenario scenario(cfg, seed);
    std::optional<scfault::FaultInjector> inj;
    if (faults) inj.emplace(sim, est, scenario);

    minisc::Fifo<int> data("data", 16);
    constexpr int kItems = 24;
    const Time deadline = Time::us(6);
    sctrace::CampaignRunResult r;
    r.deadline_total = kItems;
    Time last;
    sim.spawn("producer", [&] {
      for (int i = 0; i < kItems; ++i) {
        // Data-dependent inner loop: three distinct op-stream shapes per
        // seed stream exercise the control-path signature.
        const int shape = static_cast<int>((seed + i) % 3);
        scperf::gint acc(scperf::detail::RawTag{}, 0);
        for (int k = 0; k < 40 + 15 * shape; ++k) acc = acc + k * 3;
        data.write(acc.value());
      }
    });
    sim.spawn("consumer", [&] {
      for (int i = 0; i < kItems; ++i) {
        const Time t0 = minisc::now();
        scperf::gint v(scperf::detail::RawTag{}, data.read());
        scperf::gint acc(scperf::detail::RawTag{}, 0);
        for (int k = 0; k < 30; ++k) acc = acc + v * 2;
        last = minisc::now();
        if (last - t0 > deadline) ++r.deadline_missed;
      }
    });
    sim.run(Time::ms(2));
    r.makespan = last;
    if (inj) r.faults_injected = inj->pulses_injected();
    r.energy_pj = est.total_energy_pj();
    r.fault_energy_pj = est.fault_energy_pj();
    const scperf::SegmentCacheStats cs = est.segment_cache_stats();
    r.cache_hits = cs.hits;
    r.cache_misses = cs.misses;
    r.cache_bypassed = cs.bypassed;
    r.cache_cycles_saved = cs.cycles_saved;
    return r;
  };
}

struct CampaignArtifacts {
  std::string csv;
  std::string report;
  sctrace::CampaignReport rep;
};

CampaignArtifacts run_campaign(bool cached, bool faults, std::size_t threads) {
  sctrace::FaultCampaign campaign(make_campaign_run(cached, faults));
  campaign.run(/*base_seed=*/7, /*n=*/12, {.threads = threads});
  CampaignArtifacts a;
  std::ostringstream os;
  campaign.write_csv(os);
  a.csv = os.str();
  os.str("");
  campaign.report().print(os);
  a.report = os.str();
  a.rep = campaign.report();
  return a;
}

void gate_campaign() {
  std::printf("-- gate: campaign CSV/report, threads in {seq, 1, 8} --\n");
  for (const bool faults : {false, true}) {
    const char* kind = faults ? "faulted" : "fault-free";
    for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                      std::size_t{8}}) {
      const CampaignArtifacts off = run_campaign(false, faults, threads);
      const CampaignArtifacts on = run_campaign(true, faults, threads);
      const std::string label =
          std::string(kind) + " threads=" + std::to_string(threads);
      check(on.csv == off.csv && on.report == off.report,
            label + ": campaign CSV/report byte-identical");
      if (faults) {
        check(on.rep.cache_hits + on.rep.cache_misses == 0,
              label + ": cache never engaged on fault-injected resource");
        check(on.rep.cache_bypassed > 0,
              label + ": bypasses counted on fault-injected resource");
      } else {
        check(on.rep.cache_hits > 0, label + ": cache engaged (hits > 0)");
      }
    }
  }
}

// ---- gate 5: validate mode ----------------------------------------------

void gate_validate_mode() {
  std::printf("-- gate: SCPERF_CACHE_VALIDATE cross-check --\n");
  scperf::SegmentCacheConfig cfg;
  cfg.enabled = true;
  cfg.validate = true;
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  est.set_segment_cache_config(cfg);
  auto& cpu = est.add_sw_resource("cpu", 50.0, scperf::orsim_sw_cost_table());
  est.map("fir", cpu);
  const auto b = workloads::make_fir();
  sim.spawn("fir", [&] {
    for (int rep = 0; rep < 4; ++rep) {
      b.annotated();
      minisc::wait(Time::us(1));
    }
  });
  bool threw = false;
  try {
    sim.run();
  } catch (const std::logic_error&) {
    threw = true;
  }
  const scperf::SegmentCacheStats cs = est.segment_cache_stats();
  check(!threw, "validate mode: no mismatch on a sound cache");
  check(cs.validated > 0, "validate mode: cross-checks executed");
  check(cs.hits == 0, "validate mode: replay never applied");
}

// ---- speedup gate -------------------------------------------------------

/// The loop-heavy kernel: one vocoder-style 16-tap FIR pass over 64 samples
/// (~2k charges per segment) — the op-stream shape that dominates the
/// table3 host-time column.
long fir_kernel(scperf::garray<int>& x, scperf::garray<int>& h) {
  scperf::gint acc(scperf::detail::RawTag{}, 0);
  for (int n = 0; n < 64; ++n) {
    scperf::gint y(scperf::detail::RawTag{}, 0);
    for (int t = 0; t < 16; ++t) {
      y += x[static_cast<std::size_t>(n + t)] *
           h[static_cast<std::size_t>(t)];
    }
    acc += y >> 12;
  }
  return acc.value();
}

/// Scalar one-pole filter chain (the vocoder post-processing deemphasis
/// shape): every operation in the loop body is annotated, so per-op charging
/// is essentially the whole cost — the regime the replay cache exists for
/// and the kernel the 2x gate measures. The mask keeps y bounded (no signed
/// overflow) and charges like any other op.
long filter_kernel() {
  scperf::gint y(scperf::detail::RawTag{}, 1);
  scperf::gint acc(scperf::detail::RawTag{}, 0);
  for (int n = 0; n < 1200; ++n) {
    y = ((y * 29 + 13) >> 3) & 0xFFFF;
    acc += y;
  }
  return acc.value();
}

struct KernelFixture {
  scperf::CostTable table = scperf::orsim_sw_cost_table();
  scperf::SwResource cpu{"cpu", 50.0, scperf::orsim_sw_cost_table()};
  scperf::SegmentAccum accum;
  // Parenthesised sizes: braces would pick garray's initializer_list
  // constructor and build one-element arrays. 64 samples + 16 taps of
  // lookahead, so the inner loop indexes x[n + t] without a modulo.
  scperf::garray<int> x = scperf::garray<int>(80);
  scperf::garray<int> h = scperf::garray<int>(16);

  KernelFixture() {
    accum.table = &table;
    for (std::size_t i = 0; i < 80; ++i) {
      x.at_raw(i).set_raw(static_cast<int>(i * 13 % 97));
    }
    for (std::size_t i = 0; i < 16; ++i) {
      h.at_raw(i).set_raw(static_cast<int>(i + 1));
    }
  }
};

double median_segment_ns(KernelFixture& fx, scperf::SegmentCache* cache,
                         int segments_per_rep = 400, int reps = 9) {
  std::vector<double> ns;
  long sink = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int s = 0; s < segments_per_rep; ++s) {
      if (cache) cache->arm(fx.accum, "wait", fx.cpu);
      sink += filter_kernel();
      if (cache) cache->resolve(fx.accum, "wait", "wait");
      fx.accum.reset();
    }
    const auto t1 = std::chrono::steady_clock::now();
    ns.push_back(std::chrono::duration<double, std::nano>(t1 - t0).count() /
                 segments_per_rep);
  }
  benchmark::DoNotOptimize(sink);
  std::sort(ns.begin(), ns.end());
  return ns[ns.size() / 2];
}

int run_speedup_gate() {
  std::printf(
      "-- speedup: replay cache vs active charging (filter kernel) --\n");
  KernelFixture fx;
  scperf::tl_accum = nullptr;
  const double inactive = median_segment_ns(fx, nullptr);
  scperf::tl_accum = &fx.accum;
  const double charged = median_segment_ns(fx, nullptr);
  scperf::SegmentCache cache(scperf::SegmentCacheConfig{});
  const double replayed = median_segment_ns(fx, &cache);
  scperf::tl_accum = nullptr;
  const double speedup = charged / replayed;
  std::printf("  inactive (estimation off): %.0f ns/segment\n", inactive);
  std::printf("  active charging:           %.0f ns/segment\n", charged);
  std::printf("  replay cache:              %.0f ns/segment (hits %llu)\n",
              replayed, static_cast<unsigned long long>(cache.stats().hits));
  std::printf("  end-to-end speedup:        %.2fx (gate: >= 2x)\n", speedup);
  std::printf("  charging-overhead speedup: %.2fx\n",
              (charged - inactive) / (replayed - inactive));
  check(cache.stats().hits > 0, "speedup run actually hit the cache");
  check(speedup >= 2.0, "active-charging speedup >= 2x");
  return g_failures == 0 ? 0 : 1;
}

int run_verify() {
  gate_table1();
  gate_hw_segments();
  gate_vocoder();
  gate_campaign();
  gate_validate_mode();
  std::printf("%s (%d failure%s)\n",
              g_failures == 0 ? "EQUIVALENCE OK" : "EQUIVALENCE BROKEN",
              g_failures, g_failures == 1 ? "" : "s");
  return g_failures == 0 ? 0 : 1;
}

// ---- google-benchmark mode ----------------------------------------------

void BM_FirActiveCharging(benchmark::State& state) {
  KernelFixture fx;
  scperf::tl_accum = &fx.accum;
  for (auto _ : state) {
    long v = fir_kernel(fx.x, fx.h);
    fx.accum.reset();
    benchmark::DoNotOptimize(v);
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_FirActiveCharging);

void BM_FirReplayCached(benchmark::State& state) {
  KernelFixture fx;
  scperf::SegmentCache cache(scperf::SegmentCacheConfig{});
  scperf::tl_accum = &fx.accum;
  for (auto _ : state) {
    cache.arm(fx.accum, "wait", fx.cpu);
    long v = fir_kernel(fx.x, fx.h);
    cache.resolve(fx.accum, "wait", "wait");
    fx.accum.reset();
    benchmark::DoNotOptimize(v);
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_FirReplayCached);

void BM_FilterActiveCharging(benchmark::State& state) {
  KernelFixture fx;
  scperf::tl_accum = &fx.accum;
  for (auto _ : state) {
    long v = filter_kernel();
    fx.accum.reset();
    benchmark::DoNotOptimize(v);
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_FilterActiveCharging);

void BM_FilterReplayCached(benchmark::State& state) {
  KernelFixture fx;
  scperf::SegmentCache cache(scperf::SegmentCacheConfig{});
  scperf::tl_accum = &fx.accum;
  for (auto _ : state) {
    cache.arm(fx.accum, "wait", fx.cpu);
    long v = filter_kernel();
    cache.resolve(fx.accum, "wait", "wait");
    fx.accum.reset();
    benchmark::DoNotOptimize(v);
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_FilterReplayCached);

void BM_FirValidateMode(benchmark::State& state) {
  KernelFixture fx;
  scperf::SegmentCacheConfig cfg;
  cfg.validate = true;
  scperf::SegmentCache cache(cfg);
  scperf::tl_accum = &fx.accum;
  for (auto _ : state) {
    cache.arm(fx.accum, "wait", fx.cpu);
    long v = fir_kernel(fx.x, fx.h);
    cache.resolve(fx.accum, "wait", "wait");
    fx.accum.reset();
    benchmark::DoNotOptimize(v);
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_FirValidateMode);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) return run_verify();
    if (std::strcmp(argv[i], "--speedup") == 0) return run_speedup_gate();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
