// Reproduces Table 1 of the paper: "SW estimation results for sequential
// benchmarks". For each benchmark the library's estimate (annotated
// execution on a SW resource) is compared against the cycle-accurate orsim
// ISS, and the host-time columns (library overhead w.r.t. the plain
// specification, gain w.r.t. the ISS) are measured on this machine.
//
// Expected shape (paper): error below ~5%, ISS gain of two orders of
// magnitude, library overhead of one order of magnitude.

#include <chrono>
#include <cstdio>

#include "core/scperf.hpp"
#include "workloads/table1.hpp"

namespace {

constexpr double kCpuMhz = 50.0;  // target processor clock

/// Median-of-repetitions wall time of `fn`, in milliseconds.
template <typename Fn>
double host_ms(Fn&& fn, int reps = 5) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

struct Row {
  std::string name;
  double lib_us = 0;     // library-estimated target time
  double iss_us = 0;     // ISS target time
  double err_pct = 0;
  double host_ref_ms = 0;
  double host_lib_ms = 0;
  double host_iss_ms = 0;
};

Row run_benchmark(const workloads::Benchmark& b) {
  Row row;
  row.name = b.name;

  // Baseline: the untimed "original SystemC specification".
  long ref_checksum = 0;
  row.host_ref_ms = host_ms([&] {
    minisc::Simulator sim;
    sim.spawn(b.name, [&] { ref_checksum = b.reference(); });
    sim.run();
  });

  // Library estimation: annotated execution on a 50 MHz SW resource.
  double lib_cycles = 0;
  long lib_checksum = 0;
  row.host_lib_ms = host_ms([&] {
    minisc::Simulator sim;
    scperf::Estimator est(sim);
    auto& cpu = est.add_sw_resource("cpu", kCpuMhz,
                                    scperf::orsim_sw_cost_table());
    est.map(b.name, cpu);
    sim.spawn(b.name, [&] { lib_checksum = b.annotated(); });
    sim.run();
    lib_cycles = est.process_cycles(b.name);
  });

  // ISS reference.
  workloads::IssResult iss{};
  row.host_iss_ms = host_ms([&] { iss = b.iss(); });

  if (ref_checksum != lib_checksum || ref_checksum != iss.checksum) {
    std::printf("!! %s: checksum mismatch (ref %ld, lib %ld, iss %ld)\n",
                b.name.c_str(), ref_checksum, lib_checksum, iss.checksum);
  }

  row.lib_us = lib_cycles / kCpuMhz;
  row.iss_us = static_cast<double>(iss.cycles) / kCpuMhz;
  row.err_pct = 100.0 * (row.lib_us - row.iss_us) / row.iss_us;
  return row;
}

}  // namespace

int main() {
  std::printf("Table 1: SW estimation results for sequential benchmarks\n");
  std::printf("(target processor: orsim @ %.0f MHz)\n\n", kCpuMhz);
  std::printf(
      "%-12s | %12s %12s %8s | %10s %10s %10s | %9s %9s\n", "Benchmark",
      "Library(us)", "ISS(us)", "Err(%)", "host:spec", "host:lib", "host:ISS",
      "Overhead", "Gain");
  std::printf(
      "-------------+--------------------------------------+------------------"
      "----------------+--------------------\n");
  for (const auto& b : workloads::table1_suite()) {
    const Row r = run_benchmark(b);
    const double overhead =
        r.host_ref_ms > 0 ? r.host_lib_ms / r.host_ref_ms : 0.0;
    const double gain = r.host_lib_ms > 0 ? r.host_iss_ms / r.host_lib_ms : 0.0;
    std::printf(
        "%-12s | %12.1f %12.1f %8.2f | %8.3fms %8.3fms %8.3fms | %8.1fx "
        "%8.1fx\n",
        r.name.c_str(), r.lib_us, r.iss_us, r.err_pct, r.host_ref_ms,
        r.host_lib_ms, r.host_iss_ms, overhead, gain);
  }
  return 0;
}
