// Ablation: non-preemptive (the paper's model) vs preemptive fixed-priority
// scheduling on a periodic task set. The non-preemptive blocking term —
// visible as inflated high-priority response times — disappears under
// preemption, at the cost of extra RTOS switches. Functional checksums are
// asserted invariant.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scperf.hpp"
#include "trace/stats.hpp"

namespace {

constexpr double kMhz = 100.0;

struct Spec {
  const char* name;
  int items;
  minisc::Time period;
  double priority;
  int jobs;
};

struct Row {
  double worst_r_us = 0;
  long checksum = 0;
  std::uint64_t switches = 0;
  double rtos_ms = 0;
};

Row run(bool preemptive, std::vector<double>* worst_rs) {
  const Spec specs[] = {
      {"ctrl", 120, minisc::Time::us(50), 3.0, 40},
      {"comms", 230, minisc::Time::us(120), 2.0, 16},
      {"logger", 850, minisc::Time::us(400), 1.0, 5},
  };
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& cpu = est.add_sw_resource(
      "cpu", kMhz, scperf::orsim_sw_cost_table(),
      {.rtos_cycles_per_switch = 40,
       .policy = scperf::SchedulingPolicy::kPriority,
       .preemptive = preemptive});

  scperf::CaptureRegistry reg;
  std::vector<std::unique_ptr<scperf::CapturePoint>> rel, done;
  Row row;
  long* checksum = &row.checksum;
  for (const Spec& s : specs) {
    rel.push_back(std::make_unique<scperf::CapturePoint>(
        std::string(s.name) + ".rel", reg));
    done.push_back(std::make_unique<scperf::CapturePoint>(
        std::string(s.name) + ".done", reg));
    est.map(s.name, cpu, s.priority);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    const Spec& s = specs[i];
    sim.spawn(s.name, [&, i, s] {
      for (int j = 0; j < s.jobs; ++j) {
        const minisc::Time t0 = minisc::now();
        rel[i]->record(j);
        scperf::gint acc(scperf::detail::RawTag{}, 0);
        scperf::gint k = 0;
        while (k < s.items) {
          acc = acc + ((k * 3) >> 1);
          k = k + 1;
        }
        *checksum += acc.value();
        minisc::wait(minisc::Time::zero());
        done[i]->record(j);
        const minisc::Time elapsed = minisc::now() - t0;
        if (elapsed < s.period) minisc::wait(s.period - elapsed);
      }
    });
  }
  sim.run();
  for (std::size_t i = 0; i < 3; ++i) {
    const auto rts =
        sctrace::response_times_ns(rel[i]->events(), done[i]->events());
    double worst = 0;
    for (double r : rts) worst = std::max(worst, r / 1000.0);
    worst_rs->push_back(worst);
  }
  row.switches = cpu.preempt_switches();
  row.rtos_ms = cpu.rtos_time().to_ms_d();
  return row;
}

}  // namespace

int main() {
  std::printf("Ablation: non-preemptive vs preemptive fixed priorities\n");
  std::printf("(three periodic tasks, priorities ctrl > comms > logger)\n\n");

  std::vector<double> np_r, p_r;
  const Row np = run(false, &np_r);
  const Row p = run(true, &p_r);

  std::printf("%-8s | %22s | %22s\n", "task", "non-preemptive worst R",
              "preemptive worst R (us)");
  const char* names[3] = {"ctrl", "comms", "logger"};
  for (int i = 0; i < 3; ++i) {
    std::printf("%-8s | %19.2f us | %19.2f us\n", names[i], np_r[static_cast<std::size_t>(i)],
                p_r[static_cast<std::size_t>(i)]);
  }
  std::printf("\nRTOS time: %.3f ms non-preemptive vs %.3f ms preemptive "
              "(%llu switches)\n",
              np.rtos_ms, p.rtos_ms,
              static_cast<unsigned long long>(p.switches));
  std::printf("checksums: %ld vs %ld -> %s\n", np.checksum, p.checksum,
              np.checksum == p.checksum ? "identical (deterministic spec)"
                                        : "MISMATCH!");
  std::printf(
      "\nPreemption removes the blocking term from the high-priority task's\n"
      "response time (ctrl drops to ~its own C) and pushes the cost onto\n"
      "the lowest-priority task and the RTOS switch budget.\n");
  return 0;
}
