// Reproduces Figure 5 of the paper: "Delay annotation" — the same
// three-process specification executed (a) untimed, where everything happens
// in delta cycles at t = 0, and (b) strict-timed with the estimation library
// installed, where P1's segments (mapped to HW) overlap with the CPU while
// P2 and P3 (mapped to the same sequential resource) serialise even though
// they executed in the same delta cycle.
//
// The exec trace printed for both runs is the figure's content: the
// horizontal position (time) of every segment.

#include <cstdio>
#include <optional>
#include <vector>

#include "core/scperf.hpp"

namespace {

using minisc::Fifo;
using minisc::Simulator;
using minisc::Time;
using scperf::gint;

/// Burns roughly `n` estimated cycles under the orsim table.
void compute(int n) {
  gint acc(scperf::detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) acc += 1;
}

struct RunResult {
  std::vector<minisc::Simulator::ExecRecord> trace;
  Time end;
};

RunResult run(bool timed) {
  Simulator sim;
  sim.enable_exec_trace(true);
  std::optional<scperf::Estimator> est;
  if (timed) {
    est.emplace(sim);
    auto& hw = est->add_hw_resource("resource1(HW)", 100.0,
                                    scperf::asic_hw_cost_table(), {.k = 1.0});
    auto& cpu = est->add_sw_resource("resource0(SW)", 50.0,
                                     scperf::orsim_sw_cost_table());
    est->map("P1", hw);
    est->map("P2", cpu);
    est->map("P3", cpu);
  }

  // s1 from P1, s2 from P2, s3 from P3 (the paper's signals); a periodic
  // stimulus wakes all three in the same delta cycle.
  minisc::Signal<int> stim("stim", 0);
  minisc::Signal<int> s1("s1", 0), s2("s2", 0), s3("s3", 0);

  sim.spawn("stimulus", [&] {
    for (int i = 1; i <= 3; ++i) {
      minisc::wait(Time::us(40));
      stim.write(i);
    }
  });
  sim.spawn("P1", [&] {
    for (int i = 1; i <= 3; ++i) {
      const int v = stim.await_change();
      compute(400);  // sg4-like segment on HW
      s1.write(v);
    }
  });
  sim.spawn("P2", [&] {
    for (int i = 1; i <= 3; ++i) {
      const int v = stim.await_change();
      compute(300);  // sg1-like segment on the CPU
      s2.write(v);
    }
  });
  sim.spawn("P3", [&] {
    for (int i = 1; i <= 3; ++i) {
      const int v = stim.await_change();
      compute(300);  // sg2-like segment, same CPU: must serialise after P2
      s3.write(v);
    }
  });

  RunResult r;
  sim.run();
  r.trace = sim.exec_trace();
  r.end = sim.now();
  return r;
}

void print_trace(const char* title, const RunResult& r) {
  std::printf("%s (end of simulation: %s)\n", title, r.end.str().c_str());
  std::printf("  %-12s %-10s %s\n", "time", "delta", "process resumed");
  for (const auto& e : r.trace) {
    std::printf("  %-12s %-10llu %s\n", e.time.str().c_str(),
                static_cast<unsigned long long>(e.delta), e.process.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Figure 5: untimed (delta-cycle) vs strict-timed simulation\n\n");
  const RunResult untimed = run(false);
  const RunResult timed = run(true);
  print_trace("a) untimed simulation - every event at t=0/40/80/120us, "
              "ordered only by delta cycles",
              untimed);
  print_trace("b) strict-timed simulation - P1 (HW) overlaps the CPU; "
              "P2/P3 (same CPU) serialise",
              timed);
  return 0;
}
