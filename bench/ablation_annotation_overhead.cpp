// Ablation C (DESIGN.md §4): host-side cost of the annotation fabric,
// measured with google-benchmark. Three configurations per kernel:
//   - plain:     raw C++ types (the untimed specification);
//   - inactive:  annotated types with no active accumulator (estimation off:
//                one thread-local load + branch per op);
//   - active:    annotated types charging into an accumulator (estimation on,
//                including HW-style ready tracking).
// This quantifies the "library overload" mechanism behind Table 1's
// host-time columns.

#include <benchmark/benchmark.h>

#include "core/annot.hpp"
#include "core/context.hpp"
#include "core/cost_table.hpp"

namespace {

constexpr int kN = 1000;

void BM_PlainArithmetic(benchmark::State& state) {
  for (auto _ : state) {
    int acc = 0;
    for (int i = 0; i < kN; ++i) acc = acc + i * 3;
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PlainArithmetic);

void BM_AnnotatedInactive(benchmark::State& state) {
  scperf::tl_accum = nullptr;
  for (auto _ : state) {
    scperf::gint acc(scperf::detail::RawTag{}, 0);
    for (int i = 0; i < kN; ++i) acc = acc + i * 3;
    benchmark::DoNotOptimize(acc.value());
  }
}
BENCHMARK(BM_AnnotatedInactive);

void BM_AnnotatedActiveSw(benchmark::State& state) {
  const scperf::CostTable table = scperf::orsim_sw_cost_table();
  scperf::SegmentAccum accum;
  accum.table = &table;
  scperf::tl_accum = &accum;
  for (auto _ : state) {
    scperf::gint acc(scperf::detail::RawTag{}, 0);
    for (int i = 0; i < kN; ++i) acc = acc + i * 3;
    benchmark::DoNotOptimize(acc.value());
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_AnnotatedActiveSw);

void BM_AnnotatedActiveHwReadyTracking(benchmark::State& state) {
  const scperf::CostTable table = scperf::asic_hw_cost_table();
  scperf::SegmentAccum accum;
  accum.table = &table;
  accum.track_ready = true;
  scperf::tl_accum = &accum;
  for (auto _ : state) {
    scperf::gint acc(scperf::detail::RawTag{}, 0);
    for (int i = 0; i < kN; ++i) acc = acc + i * 3;
    benchmark::DoNotOptimize(acc.value());
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_AnnotatedActiveHwReadyTracking);

void BM_AnnotatedActiveHwDfgRecording(benchmark::State& state) {
  const scperf::CostTable table = scperf::asic_hw_cost_table();
  scperf::SegmentAccum accum;
  accum.table = &table;
  accum.track_ready = true;
  accum.record_dfg = true;
  scperf::tl_accum = &accum;
  for (auto _ : state) {
    accum.reset();
    scperf::gint acc(scperf::detail::RawTag{}, 0);
    for (int i = 0; i < kN; ++i) acc = acc + i * 3;
    benchmark::DoNotOptimize(acc.value());
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_AnnotatedActiveHwDfgRecording);

void BM_ArrayIndexingPlain(benchmark::State& state) {
  std::vector<int> a(256, 7);
  for (auto _ : state) {
    int acc = 0;
    for (int i = 0; i < 256; ++i) acc += a[static_cast<std::size_t>(i)];
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ArrayIndexingPlain);

void BM_ArrayIndexingAnnotated(benchmark::State& state) {
  const scperf::CostTable table = scperf::orsim_sw_cost_table();
  scperf::SegmentAccum accum;
  accum.table = &table;
  scperf::tl_accum = &accum;
  scperf::garray<int> a(256);
  for (std::size_t i = 0; i < 256; ++i) a.at_raw(i).set_raw(7);
  for (auto _ : state) {
    scperf::gint acc(scperf::detail::RawTag{}, 0);
    for (int i = 0; i < 256; ++i) acc += a[static_cast<std::size_t>(i)];
    benchmark::DoNotOptimize(acc.value());
  }
  scperf::tl_accum = nullptr;
}
BENCHMARK(BM_ArrayIndexingAnnotated);

}  // namespace

BENCHMARK_MAIN();
