// Reproduces Table 2 of the paper: "HW estimation results". For the FIR and
// Euler segments, the library's worst-case (single-ALU sequential sum) and
// best-case (critical path) estimates are compared against the "real"
// execution times produced by the behavioural-synthesis substrate:
// resource-constrained sequential synthesis for WC and time-constrained
// chained ASAP for BC, both on the control-stripped DFG (loop control lives
// in the controller FSM, not the datapath).
//
// Expected shape (paper): errors below ~8%.

#include <cstdio>
#include <string>

#include "core/scperf.hpp"
#include "hls/schedule.hpp"
#include "workloads/hw_segments.hpp"

namespace {

constexpr double kClockMhz = 100.0;
constexpr double kClockNs = 1000.0 / kClockMhz;

struct HwRun {
  double bc_cycles = 0;
  double wc_cycles = 0;
  scperf::Dfg dfg;
};

HwRun run_segment(const workloads::HwSegment& seg) {
  HwRun out;
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", kClockMhz,
                                 scperf::asic_hw_cost_table(),
                                 {.k = 0.0, .record_dfg = true});
  est.map(seg.name, hw);
  sim.spawn(seg.name, [&] { (void)seg.body(); });
  sim.run();
  const auto stats = est.segment_stats(seg.name);
  out.bc_cycles = stats.at(0).bc_cycles_sum;
  out.wc_cycles = stats.at(0).wc_cycles_sum;
  out.dfg = est.segment_dfg(seg.name, "entry->exit");
  return out;
}

void report_row(const std::string& name, double real_ns, double est_ns) {
  const double err = 100.0 * (est_ns - real_ns) / real_ns;
  std::printf("%-16s | %14.0f %18.0f %8.2f\n", name.c_str(), real_ns, est_ns,
              err);
}

}  // namespace

int main() {
  std::printf("Table 2: HW estimation results (clock %.0f MHz)\n\n",
              kClockMhz);
  std::printf("%-16s | %14s %18s %8s\n", "Benchmark", "Real (ns)",
              "Estimated (ns)", "Err(%)");
  std::printf("-----------------+-------------------------------------------\n");

  const hls::FuLibrary lib = hls::default_fu_library();
  for (const auto& seg :
       {workloads::fir_hw_segment(), workloads::euler_hw_segment()}) {
    const HwRun r = run_segment(seg);
    const scperf::Dfg stripped = hls::strip_control(r.dfg);
    const auto real_wc = hls::sequential_schedule(stripped, lib, kClockNs);
    const auto real_bc = hls::asap_chained(stripped, lib, kClockNs);
    report_row(seg.name + " (WC)", real_wc.ns, r.wc_cycles * kClockNs);
    report_row(seg.name + " (BC)", real_bc.ns, r.bc_cycles * kClockNs);
  }
  return 0;
}
