// Reproduces Figure 4 of the paper: "Implementation solutions" — the
// area/time design space of a HW segment between the two extreme points the
// library models: critical-path (best case, fastest/most parallel
// implementation) and single-ALU (worst case, cheapest implementation).
//
// Two sweeps are printed per segment:
//   1. the behavioural-synthesis Pareto frontier (area vs schedule length),
//      the curve sketched in the paper's Fig. 4;
//   2. the library's weighted-mean T = Tmin + (Tmax - Tmin) * k as k sweeps
//      0..1 (Ablation B: how the single-value annotation walks the segment
//      between the two extremes).

#include <cstdio>

#include "core/scperf.hpp"
#include "hls/schedule.hpp"
#include "workloads/hw_segments.hpp"

namespace {

constexpr double kClockMhz = 100.0;
constexpr double kClockNs = 1000.0 / kClockMhz;

struct HwRun {
  double bc = 0;
  double wc = 0;
  scperf::Dfg dfg;
};

HwRun run_segment(const workloads::HwSegment& seg) {
  HwRun out;
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", kClockMhz,
                                 scperf::asic_hw_cost_table(),
                                 {.k = 0.0, .record_dfg = true});
  est.map(seg.name, hw);
  sim.spawn(seg.name, [&] { (void)seg.body(); });
  sim.run();
  const auto stats = est.segment_stats(seg.name);
  out.bc = stats.at(0).bc_cycles_sum;
  out.wc = stats.at(0).wc_cycles_sum;
  out.dfg = hls::strip_control(est.segment_dfg(seg.name, "entry->exit"));
  return out;
}

}  // namespace

int main() {
  const hls::FuLibrary lib = hls::default_fu_library();
  for (const auto& seg :
       {workloads::fir_hw_segment(), workloads::euler_hw_segment()}) {
    const HwRun r = run_segment(seg);

    std::printf("Figure 4 - %s: synthesis area/time Pareto frontier\n",
                seg.name.c_str());
    std::printf("  %10s %10s %8s   %s\n", "area", "time(ns)", "cycles",
                "allocation (ALU/MUL/DIV/MEM)");
    for (const auto& p : hls::design_space(r.dfg, lib, kClockNs)) {
      std::printf("  %10.0f %10.0f %8u   %u/%u/%u/%u\n", p.area, p.ns,
                  p.cycles, p.alloc[hls::FuKind::kAlu],
                  p.alloc[hls::FuKind::kMul], p.alloc[hls::FuKind::kDiv],
                  p.alloc[hls::FuKind::kMem]);
    }

    // Third sweep: time-constrained force-directed synthesis — minimum FU
    // allocation found for each deadline between the two extremes.
    const auto wc = hls::sequential_schedule(r.dfg, lib, kClockNs);
    const auto bc = hls::asap_chained(r.dfg, lib, kClockNs);
    std::printf("\n  force-directed: minimum allocation per deadline\n");
    std::printf("  %10s %10s   %s\n", "deadline", "area",
                "allocation (ALU/MUL/DIV/MEM)");
    for (std::uint32_t d :
         {wc.cycles, (wc.cycles + bc.cycles) / 2,
          (wc.cycles + 3 * bc.cycles) / 4, bc.cycles + 1}) {
      if (d < bc.cycles) continue;
      try {
        const auto fd = hls::force_directed(r.dfg, lib, kClockNs, d);
        hls::Allocation a = fd.used;
        std::printf("  %10u %10.0f   %u/%u/%u/%u\n", d, a.area(lib),
                    a[hls::FuKind::kAlu], a[hls::FuKind::kMul],
                    a[hls::FuKind::kDiv], a[hls::FuKind::kMem]);
      } catch (const std::invalid_argument&) {
        std::printf("  %10u   (below critical path)\n", d);
      }
    }

    std::printf("\n  library weighted mean T = Tmin + (Tmax - Tmin) * k "
                "(Tmin = %.0f, Tmax = %.0f cycles)\n",
                r.bc, r.wc);
    std::printf("  %6s %12s\n", "k", "T (cycles)");
    for (double k = 0.0; k <= 1.0001; k += 0.125) {
      std::printf("  %6.3f %12.1f\n", k, r.bc + (r.wc - r.bc) * k);
    }
    std::printf("\n");
  }
  return 0;
}
