// Ablation D (DESIGN.md §4): cache-induced estimation error. §1 of the
// paper discusses caches as the classic error source in SW execution-time
// estimation ("some error percentage is unavoidable which may require
// providing confidence intervals"). Here each Table-1 benchmark runs on the
// ISS with I/D cache timing models enabled; the library estimate, calibrated
// against the cache-less cycle model, drifts by the miss cycles — exactly
// the class of error the paper attributes to the memory hierarchy.

#include <cstdio>

#include "core/scperf.hpp"
#include "workloads/table1.hpp"

int main() {
  std::printf("Ablation: ISS cache model vs cache-less library calibration\n");
  std::printf("(I$ and D$: 64 lines x 16 B, 20-cycle miss penalty)\n\n");
  std::printf("%-12s | %12s %12s %9s | %8s %8s | %10s %10s\n", "Benchmark",
              "ISS (cyc)", "ISS+$ (cyc)", "slowdown", "I$ hit%", "D$ hit%",
              "err no-$", "err with-$");
  std::printf("-------------+--------------------------------------+--------"
              "-----------+----------------------\n");

  for (const auto& b : workloads::table1_suite()) {
    const workloads::IssResult base = b.iss();
    workloads::IssCacheConfig cfg;
    cfg.enable_icache = true;
    cfg.enable_dcache = true;
    const workloads::IssResult cached = b.iss_cached(cfg);

    // Library estimate (independent of any cache model).
    scperf::CostTable table = scperf::orsim_sw_cost_table();
    scperf::SegmentAccum accum;
    accum.table = &table;
    scperf::tl_accum = &accum;
    (void)b.annotated();
    scperf::tl_accum = nullptr;

    const double err_base =
        100.0 * (accum.sum_cycles - static_cast<double>(base.cycles)) /
        static_cast<double>(base.cycles);
    const double err_cached =
        100.0 * (accum.sum_cycles - static_cast<double>(cached.cycles)) /
        static_cast<double>(cached.cycles);
    std::printf(
        "%-12s | %12llu %12llu %8.2fx | %7.1f%% %7.1f%% | %+9.2f%% %+9.2f%%\n",
        b.name.c_str(), static_cast<unsigned long long>(base.cycles),
        static_cast<unsigned long long>(cached.cycles),
        static_cast<double>(cached.cycles) / static_cast<double>(base.cycles),
        cached.icache_hit_rate * 100.0, cached.dcache_hit_rate * 100.0,
        err_base, err_cached);
  }
  std::printf(
      "\nThe with-cache error is systematically more negative: the library's\n"
      "single per-operation weights cannot see misses, which is the paper's\n"
      "motivation for confidence intervals (SegmentStats::ci95_halfwidth).\n");
  return 0;
}
