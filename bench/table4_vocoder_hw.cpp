// Reproduces Table 4 of the paper: "HW estimation results for Vocoder" —
// the (pre/post-)processing filter function mapped to HW. The library's
// worst- and best-case estimates for the post-processing segment are
// compared against the behavioural-synthesis substrate, exactly as in
// Table 2 but on the vocoder's synthesis-filter workload.
//
// Expected shape (paper): errors below ~8%.

#include <cstdio>

#include "core/scperf.hpp"
#include "hls/schedule.hpp"
#include "workloads/data.hpp"
#include "workloads/vocoder/frames.hpp"
#include "workloads/vocoder/kernels.hpp"

namespace {

constexpr double kClockMhz = 100.0;
constexpr double kClockNs = 1000.0 / kClockMhz;

/// One post-processing subframe as a single HW segment: realistic subframe
/// coefficients/excitation derived from the reference encoder.
long postproc_segment_body() {
  using namespace workloads::vocoder;
  const auto frame = synth_frame(3);
  std::int32_t lpc[kOrder];
  ref::lsp_estimation(frame.data(), lpc);
  std::int32_t prev[kOrder] = {};
  std::int32_t subc[kSubframes * kOrder];
  ref::lpc_interpolation(prev, lpc, subc);
  std::int32_t exc[kSub];
  for (int n = 0; n < kSub; ++n) exc[n] = frame[static_cast<std::size_t>(n)] >> 2;

  scperf::garray<int> gsubc(kOrder), gexc(kSub), gmem(kOrder), gout(kSub);
  for (int i = 0; i < kOrder; ++i) {
    gsubc.at_raw(static_cast<std::size_t>(i)).set_raw(subc[i]);
    gmem.at_raw(static_cast<std::size_t>(i)).set_raw(0);
  }
  for (int n = 0; n < kSub; ++n) {
    gexc.at_raw(static_cast<std::size_t>(n)).set_raw(exc[n]);
  }
  return annot::postproc(gsubc, 0, gexc, gmem, gout).value();
}

}  // namespace

int main() {
  std::printf("Table 4: HW estimation results for Vocoder (clock %.0f MHz)\n\n",
              kClockMhz);

  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", kClockMhz,
                                 scperf::asic_hw_cost_table(),
                                 {.k = 0.0, .record_dfg = true});
  est.map("Post Proc.", hw);
  sim.spawn("Post Proc.", [] { (void)postproc_segment_body(); });
  sim.run();

  const auto stats = est.segment_stats("Post Proc.");
  const double bc = stats.at(0).bc_cycles_sum;
  const double wc = stats.at(0).wc_cycles_sum;
  const scperf::Dfg dfg =
      hls::strip_control(est.segment_dfg("Post Proc.", "entry->exit"));
  const hls::FuLibrary lib = hls::default_fu_library();
  const auto real_wc = hls::sequential_schedule(dfg, lib, kClockNs);
  const auto real_bc = hls::asap_chained(dfg, lib, kClockNs);

  std::printf("%-18s | %14s %18s %8s\n", "Benchmark", "Real (ns)",
              "Estimated (ns)", "Err(%)");
  std::printf("-------------------+------------------------------------------\n");
  std::printf("%-18s | %14.0f %18.0f %8.2f\n", "Post. Proc. (WC)", real_wc.ns,
              wc * kClockNs, 100.0 * (wc * kClockNs - real_wc.ns) / real_wc.ns);
  std::printf("%-18s | %14.0f %18.0f %8.2f\n", "Post. Proc. (BC)", real_bc.ns,
              bc * kClockNs, 100.0 * (bc * kClockNs - real_bc.ns) / real_bc.ns);
  return 0;
}
