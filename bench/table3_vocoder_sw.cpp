// Reproduces Table 3 of the paper: "SW estimation results for Vocoder".
// The sequential vocoder is divided into 5 concurrent processes (LSP
// estimation, LPC interpolation, adaptive- and innovative-codebook searches,
// post-processing) connected by FIFO channels and mapped to one 50 MHz
// processor. Per process, the library estimate is compared against the
// cycle-accurate orsim ISS running identical kernels on identical data; the
// host-time columns report overhead w.r.t. the untimed specification and
// gain w.r.t. the ISS.
//
// Expected shape (paper): per-process error of a few percent.

#include <chrono>
#include <cstdio>
#include <iostream>

#include "workloads/vocoder/pipeline.hpp"

namespace {

constexpr int kFrames = 20;
constexpr double kCpuMhz = 50.0;

template <typename Fn>
double host_ms(Fn&& fn, int reps = 3) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  using namespace workloads::vocoder;

  long ref_checksum = 0;
  const double host_ref =
      host_ms([&] { ref_checksum = run_reference(kFrames); });

  AnnotatedResult ann;
  const double host_lib =
      host_ms([&] { ann = run_annotated({.frames = kFrames,
                                         .cpu_mhz = kCpuMhz,
                                         .rtos_cycles_per_switch = 80.0}); });

  IssPipelineResult iss;
  const double host_iss = host_ms([&] { iss = run_iss(kFrames); });

  if (ref_checksum != ann.checksum || ref_checksum != iss.checksum) {
    std::printf("!! checksum mismatch: ref %ld lib %ld iss %ld\n",
                ref_checksum, ann.checksum, iss.checksum);
  }

  std::printf(
      "Table 3: SW estimation results for Vocoder (%d frames, %g MHz CPU)\n\n",
      kFrames, kCpuMhz);
  std::printf("%-12s | %14s %14s %8s\n", "Benchmark", "Library (ms)",
              "ISS (ms)", "Err(%)");
  std::printf("-------------+----------------------------------------\n");
  const std::uint64_t iss_cycles[5] = {iss.cycles.lsp, iss.cycles.lpc_int,
                                       iss.cycles.acb, iss.cycles.icb,
                                       iss.cycles.post};
  for (int p = 0; p < 5; ++p) {
    const double lib_ms =
        ann.process_cycles.at(kProcessNames[p]) / kCpuMhz / 1000.0;
    const double iss_ms =
        static_cast<double>(iss_cycles[p]) / kCpuMhz / 1000.0;
    std::printf("%-12s | %14.3f %14.3f %8.2f\n", kProcessNames[p], lib_ms,
                iss_ms, 100.0 * (lib_ms - iss_ms) / iss_ms);
  }

  std::printf("\nHost simulation time: spec %.1f ms, library %.1f ms, "
              "ISS %.1f ms\n",
              host_ref, host_lib, host_iss);
  std::printf("Overload w.r.t. SystemC: %.1fx   Gain w.r.t. ISS: %.1fx\n",
              host_lib / host_ref, host_iss / host_lib);
  std::printf("\nStrict-timed simulated time: %s  (CPU utilisation shown "
              "in the report below)\n\n",
              ann.sim_time.str().c_str());
  ann.report.print(std::cout);
  return 0;
}
