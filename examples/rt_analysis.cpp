// The §6 real-time workflow, end to end: "Based on the mean execution times
// and periods of the different processes, rate analysis and scheduling for
// soft, real-time embedded systems can be performed. The instantaneous
// execution times for the segments in the different processes can be used
// for performance verification and scheduling of hard, real-time systems."
//
// Three periodic tasks share one priority-scheduled (non-preemptive) CPU.
// The flow, run twice:
//
//   configuration A: the background logger computes its whole job in ONE
//   segment. Non-preemptive response-time analysis flags the high-priority
//   control task as unschedulable (blocking term > deadline), and the
//   simulation indeed observes deadline misses.
//
//   configuration B: the logger's loop gets yield points (wait(0)) every few
//   hundred iterations — in this methodology a yield ends the segment, so
//   the blocking term shrinks. The analysis turns SCHEDULABLE and the
//   simulation observes every deadline met.
//
// Both the analytical inputs (per-segment worst-case times) and the observed
// response times come out of the same estimation run.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/scperf.hpp"
#include "trace/schedulability.hpp"
#include "trace/stats.hpp"

namespace {

constexpr double kMhz = 100.0;

struct TaskSpec {
  std::string name;
  int work_items;       // inner-loop trip count (defines C)
  int yield_every;      // 0 = monolithic; N = wait(0) every N items
  minisc::Time period;  // activation period (defines T)
  double priority;      // static priority (rate-monotonic here)
  int jobs;
};

void periodic_task(const TaskSpec& spec, scperf::CapturePoint& release,
                   scperf::CapturePoint& completion) {
  for (int j = 0; j < spec.jobs; ++j) {
    const minisc::Time release_time = minisc::now();
    release.record(j);
    scperf::gint acc(scperf::detail::RawTag{}, 0);
    scperf::gint i = 0;
    int since_yield = 0;
    while (i < spec.work_items) {
      acc = acc + ((i * 3) >> 1);
      i = i + 1;
      if (spec.yield_every > 0 && ++since_yield == spec.yield_every) {
        since_yield = 0;
        minisc::wait(minisc::Time::zero());  // segment boundary
      }
    }
    minisc::wait(minisc::Time::zero());  // node: back-annotates the job
    completion.record(j);
    const minisc::Time elapsed = minisc::now() - release_time;
    if (elapsed < spec.period) {
      minisc::wait(spec.period - elapsed);
    }
  }
}

struct TaskResult {
  double c_job_us = 0;      // per-job execution time (sum of its segments)
  double c_seg_max_us = 0;  // longest single segment
  double observed_r_us = 0;
  int deadline_misses = 0;
};

void run_configuration(const char* title,
                       const std::vector<TaskSpec>& specs) {
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& cpu = est.add_sw_resource(
      "cpu", kMhz, scperf::orsim_sw_cost_table(),
      {.rtos_cycles_per_switch = 40,
       .policy = scperf::SchedulingPolicy::kPriority});

  scperf::CaptureRegistry reg;
  std::vector<std::unique_ptr<scperf::CapturePoint>> releases, completions;
  for (const auto& s : specs) {
    releases.push_back(
        std::make_unique<scperf::CapturePoint>(s.name + ".release", reg));
    completions.push_back(
        std::make_unique<scperf::CapturePoint>(s.name + ".done", reg));
    est.map(s.name, cpu, s.priority);
  }
  for (std::size_t i = 0; i < specs.size(); ++i) {
    sim.spawn(specs[i].name, [&, i] {
      periodic_task(specs[i], *releases[i], *completions[i]);
    });
  }
  sim.run();

  // ---- measured parameters ----
  std::vector<TaskResult> results(specs.size());
  std::vector<sctrace::PeriodicTask> tasks;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    TaskResult& r = results[i];
    double job_cycles = 0;
    double seg_max = 0;
    for (const auto& seg : est.segment_stats(specs[i].name)) {
      seg_max = std::max(seg_max, seg.cycles_max);
      // Per-job cost: total cycles divided by the number of jobs.
      job_cycles += seg.cycles_sum;
    }
    r.c_job_us = job_cycles / specs[i].jobs / kMhz;
    r.c_seg_max_us = seg_max / kMhz;
    const auto rts = sctrace::response_times_ns(releases[i]->events(),
                                                completions[i]->events());
    for (double rt : rts) {
      r.observed_r_us = std::max(r.observed_r_us, rt / 1000.0);
      if (rt / 1000.0 > specs[i].period.to_us_d()) ++r.deadline_misses;
    }
    tasks.push_back({r.c_job_us, specs[i].period.to_us_d()});
  }

  // ---- non-preemptive RTA with segment-level blocking ----
  std::vector<double> blocking(specs.size(), 0.0);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    for (std::size_t j = i + 1; j < specs.size(); ++j) {
      blocking[i] = std::max(blocking[i], results[j].c_seg_max_us);
    }
  }
  const auto rta = sctrace::response_time_analysis_np(tasks, blocking);

  std::printf("%s\n", title);
  std::printf("  %-8s %10s %12s %10s %12s %12s %8s\n", "task", "C_job(us)",
              "C_seg_max", "T (us)", "RTA R (us)", "observed R", "misses");
  bool all_ok = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const bool ok = rta[i].has_value();
    all_ok = all_ok && ok;
    std::printf("  %-8s %10.2f %12.2f %10.0f %12s %12.2f %8d\n",
                specs[i].name.c_str(), results[i].c_job_us,
                results[i].c_seg_max_us, specs[i].period.to_us_d(),
                ok ? std::to_string(*rta[i]).substr(0, 6).c_str() : "MISS",
                results[i].observed_r_us, results[i].deadline_misses);
  }
  std::printf("  verdict: %s (U = %.3f)\n\n",
              all_ok ? "SCHEDULABLE" : "NOT schedulable",
              sctrace::utilization(tasks));
}

}  // namespace

int main() {
  std::printf("Non-preemptive fixed-priority analysis from estimation data\n\n");
  run_configuration(
      "configuration A: monolithic logger segment (blocking kills ctrl)",
      {
          {"ctrl", 120, 0, minisc::Time::us(50), 3.0, 40},
          {"comms", 230, 0, minisc::Time::us(120), 2.0, 16},
          {"logger", 850, 0, minisc::Time::us(400), 1.0, 5},
      });
  run_configuration(
      "configuration B: logger yields every 200 items (segments shrink)",
      {
          {"ctrl", 120, 0, minisc::Time::us(50), 3.0, 40},
          {"comms", 230, 0, minisc::Time::us(120), 2.0, 16},
          {"logger", 850, 200, minisc::Time::us(400), 1.0, 5},
      });
  std::printf(
      "Splitting the logger's segment with yield points shrinks the\n"
      "non-preemptive blocking term - the analysis and the simulated\n"
      "deadline behaviour agree on both configurations.\n");
  return 0;
}
