// The platform-vendor workflow behind the shipped cost table (paper §5:
// "Library weights were obtained analyzing assembler code from several
// functions specifically developed for this purpose and taking into account
// microprocessor architectural characteristics").
//
// Automated here: run every calibration kernel in annotated form (collecting
// the per-C++-object operation histogram) and on the cycle-accurate ISS
// (collecting the ground-truth cycle count), then fit per-operation weights
// minimising the worst relative error — random multi-start plus coordinate
// descent. The result is a CostTable ready to paste into a platform
// description; compare with scperf::orsim_sw_cost_table().

#include <array>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "core/scperf.hpp"
#include "workloads/table1.hpp"

namespace {

struct Sample {
  std::string name;
  double iss_cycles = 0;
  std::array<double, scperf::kNumOps> hist{};
};

Sample measure(const workloads::Benchmark& b) {
  Sample s;
  s.name = b.name;
  scperf::CostTable table;  // all-zero: we only need the histogram
  scperf::SegmentAccum accum;
  accum.table = &table;
  scperf::tl_accum = &accum;
  (void)b.annotated();
  scperf::tl_accum = nullptr;
  for (std::size_t i = 0; i < scperf::kNumOps; ++i) {
    s.hist[i] = static_cast<double>(accum.op_histogram[i]);
  }
  s.iss_cycles = static_cast<double>(b.iss().cycles);
  return s;
}

/// The free parameters of the fit: groups of ops sharing one weight, with
/// search bounds reflecting architectural plausibility.
struct Param {
  const char* name;
  std::vector<scperf::Op> ops;
  double lo, hi;
};

using scperf::Op;
const std::vector<Param>& params() {
  static const std::vector<Param> kParams = {
      {"assign(lvalue)", {Op::kAssign}, 0.0, 4.0},
      {"assign(result)", {Op::kAssignRes}, 0.0, 4.0},
      {"add", {Op::kAdd}, 0.05, 2.0},
      {"sub/neg", {Op::kSub, Op::kNeg}, 0.05, 2.5},
      {"mul", {Op::kMul}, 2.0, 6.0},
      {"compare",
       {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt, Op::kGe,
        Op::kLogicalNot},
       0.05, 2.0},
      {"shift", {Op::kShl, Op::kShr}, 0.3, 2.5},
      {"bitwise", {Op::kBitAnd, Op::kBitOr, Op::kBitXor, Op::kBitNot}, 0.3,
       2.0},
      {"branch", {Op::kBranch}, 0.5, 4.5},
      {"index", {Op::kIndex}, 0.05, 2.5},
      {"call", {Op::kCall}, 2.0, 12.0},
      {"return", {Op::kReturn}, 1.0, 6.0},
  };
  return kParams;
}

double estimate(const Sample& s, const std::vector<double>& w) {
  double est = 0.0;
  // Fixed architectural latencies for rare ops not in the fit.
  est += s.hist[static_cast<std::size_t>(Op::kDiv)] * 20.0;
  est += s.hist[static_cast<std::size_t>(Op::kMod)] * 21.0;
  for (std::size_t p = 0; p < params().size(); ++p) {
    for (Op op : params()[p].ops) {
      est += s.hist[static_cast<std::size_t>(op)] * w[p];
    }
  }
  return est;
}

double worst_error(const std::vector<Sample>& samples,
                   const std::vector<double>& w) {
  double worst = 0.0;
  for (const Sample& s : samples) {
    const double e =
        std::fabs(estimate(s, w) - s.iss_cycles) / s.iss_cycles;
    worst = std::max(worst, e);
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("Cost-table calibration against the orsim ISS\n\n");
  std::vector<Sample> samples;
  for (const auto& b : workloads::table1_suite()) {
    samples.push_back(measure(b));
    std::printf("  measured %-12s iss = %10.0f cycles, %8.0f annotated ops\n",
                samples.back().name.c_str(), samples.back().iss_cycles,
                [&] {
                  double n = 0;
                  for (double h : samples.back().hist) n += h;
                  return n;
                }());
  }

  const std::size_t np = params().size();
  std::mt19937 rng(20040216);  // the paper's conference date
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  std::vector<double> best(np, 1.0);
  double best_err = worst_error(samples, best);

  // Multi-start random search...
  for (int it = 0; it < 200000; ++it) {
    std::vector<double> w(np);
    for (std::size_t p = 0; p < np; ++p) {
      w[p] = params()[p].lo + (params()[p].hi - params()[p].lo) * uni(rng);
    }
    const double e = worst_error(samples, w);
    if (e < best_err) {
      best_err = e;
      best = w;
    }
  }
  // ...then coordinate descent.
  double step = 0.25;
  while (step > 0.001) {
    bool improved = false;
    for (std::size_t p = 0; p < np; ++p) {
      for (double d : {-step, step}) {
        std::vector<double> w = best;
        w[p] = std::max(0.0, w[p] + d);
        const double e = worst_error(samples, w);
        if (e < best_err) {
          best_err = e;
          best = w;
          improved = true;
        }
      }
    }
    if (!improved) step *= 0.5;
  }

  std::printf("\nfitted weights (worst error %.2f%%):\n", best_err * 100.0);
  for (std::size_t p = 0; p < np; ++p) {
    std::printf("  %-16s %6.3f cycles\n", params()[p].name, best[p]);
  }
  std::printf("\nper-benchmark residuals:\n");
  for (const Sample& s : samples) {
    std::printf("  %-12s est %10.0f  iss %10.0f  err %+6.2f%%\n",
                s.name.c_str(), estimate(s, best), s.iss_cycles,
                100.0 * (estimate(s, best) - s.iss_cycles) / s.iss_cycles);
  }
  std::printf("\nPaste into a CostTable (cf. scperf::orsim_sw_cost_table(),\n"
              "which was additionally fitted against the vocoder kernels).\n");
  return 0;
}
