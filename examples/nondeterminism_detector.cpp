// The verification side-effect of strict-timed simulation (paper §6):
// "If results are different from the original system-level specification, it
// means that the description is not deterministic (potentially wrong). This
// represents an additional way to detect errors that may remain hidden in an
// ordinary simulation."
//
// Two specifications are exercised:
//  - a clean one: each producer owns its channel, so the consumer's observed
//    value sequence is schedule-independent — the untimed and strict-timed
//    capture hashes are equal;
//  - a racy one: both producers write the same FIFO and the consumer is
//    order-sensitive — the mapping-induced schedule change reorders the
//    merge and the hashes differ.

#include <iostream>
#include <optional>

#include "core/scperf.hpp"

namespace {

using minisc::Fifo;
using minisc::Simulator;
using scperf::gint;

constexpr int kItems = 8;

/// Burns ~n estimated cycles so the producers have asymmetric segment
/// lengths under estimation (which is what perturbs the schedule).
void compute(int n) {
  gint acc(scperf::detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) acc += 1;
}

void install_platform(std::optional<scperf::Estimator>& est, Simulator& sim) {
  est.emplace(sim);
  auto& cpu0 = est->add_sw_resource("cpu0", 50.0,
                                    scperf::orsim_sw_cost_table());
  auto& cpu1 = est->add_sw_resource("cpu1", 50.0,
                                    scperf::orsim_sw_cost_table());
  est->map("producerA", cpu0);
  est->map("producerB", cpu1);
  est->map("consumer", cpu0);
}

std::uint64_t run_clean(bool timed) {
  Simulator sim;
  std::optional<scperf::Estimator> est;
  if (timed) install_platform(est, sim);

  scperf::CaptureRegistry registry;
  scperf::CapturePoint observed("observed", registry);
  Fifo<int> cha("cha", 8);
  Fifo<int> chb("chb", 8);
  sim.spawn("producerA", [&] {
    for (int i = 0; i < kItems; ++i) {
      compute(900);
      cha.write(100 + i);
    }
  });
  sim.spawn("producerB", [&] {
    for (int i = 0; i < kItems; ++i) {
      compute(150);
      chb.write(200 + i);
    }
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < kItems; ++i) observed.record(cha.read());
    for (int i = 0; i < kItems; ++i) observed.record(chb.read());
  });
  sim.run();
  return registry.value_sequence_hash();
}

std::uint64_t run_racy(bool timed) {
  Simulator sim;
  std::optional<scperf::Estimator> est;
  if (timed) install_platform(est, sim);

  scperf::CaptureRegistry registry;
  scperf::CapturePoint observed("observed", registry);
  Fifo<int> ch("ch", 8);  // shared: the race
  sim.spawn("producerA", [&] {
    for (int i = 0; i < kItems; ++i) {
      compute(900);
      ch.write(100 + i);
    }
  });
  sim.spawn("producerB", [&] {
    for (int i = 0; i < kItems; ++i) {
      compute(150);
      ch.write(200 + i);
    }
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < 2 * kItems; ++i) observed.record(ch.read());
  });
  sim.run();
  return registry.value_sequence_hash();
}

void report(const char* name, std::uint64_t untimed, std::uint64_t timed) {
  std::cout << name << ": untimed hash " << std::hex << untimed
            << ", strict-timed hash " << timed << std::dec << " -> "
            << (untimed == timed ? "EQUAL (specification deterministic)"
                                 : "DIFFERENT (nondeterminism detected!)")
            << "\n";
}

}  // namespace

int main() {
  std::cout << "Nondeterminism detection via strict-timed re-execution\n\n";
  report("clean spec (separate channels) ", run_clean(false), run_clean(true));
  report("racy spec  (order-sensitive merge)", run_racy(false),
         run_racy(true));
  std::cout << "\nA difference means the functional result depends on the\n"
               "architectural mapping - the paper's definition of a\n"
               "potentially wrong description.\n";
  return 0;
}
