// Full vocoder case study: the paper's Table 3 system, plus the capture-
// point workflow of §4 — "the user can insert capture points anywhere inside
// the code and a list of events ... is generated", post-processed here into
// output rates and per-frame response times, and exported in both CSV and
// Matlab form.

#include <fstream>
#include <iostream>

#include "core/scperf.hpp"
#include "trace/stats.hpp"
#include "workloads/vocoder/frames.hpp"
#include "workloads/vocoder/kernels.hpp"
#include "workloads/vocoder/pipeline.hpp"

int main() {
  using namespace workloads::vocoder;
  constexpr int kFrames = 12;

  // Run the instrumented pipeline with capture points on frame entry/exit.
  // (run_annotated encapsulates the pipeline; for the capture demonstration
  // we re-create a small two-point version around it using the reference
  // encoder so the numbers are easy to follow.)
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", 50.0, scperf::orsim_sw_cost_table(),
                                  {.rtos_cycles_per_switch = 80});
  est.map("encoder", cpu);

  scperf::CaptureRegistry registry;
  scperf::CapturePoint frame_in("frame_in", registry);
  scperf::CapturePoint frame_out("frame_out", registry);
  scperf::CapturePoint clipped("clipped_frames", registry);

  minisc::Fifo<int> stimulus("stimulus", 1);
  minisc::Fifo<long> bitstream("bitstream", 1);
  sim.spawn("testbench", [&] {  // unmapped: environment, untimed
    for (int f = 0; f < kFrames; ++f) stimulus.write(f);
  });
  sim.spawn("sink", [&] {  // unmapped: environment, untimed
    for (int f = 0; f < kFrames; ++f) (void)bitstream.read();
  });

  sim.spawn("encoder", [&] {
    scperf::garray<int> gframe(kFrame), glpc(kOrder), gprev(kOrder),
        gsubc(kSubframes * kOrder), ghist(kHist),
        gpulses(kSubframes * kTracks), gexc(kSub), gout(kSub), gmem(kOrder);
    for (int i = 0; i < kOrder; ++i) {
      gprev.at_raw(static_cast<std::size_t>(i)).set_raw(0);
      gmem.at_raw(static_cast<std::size_t>(i)).set_raw(0);
    }
    for (int i = 0; i < kHist; ++i) ghist.at_raw(static_cast<std::size_t>(i)).set_raw(0);

    for (int f = 0; f < kFrames; ++f) {
      const int idx = stimulus.read();
      frame_in.record(idx);

      const auto frame = synth_frame(idx);
      for (int i = 0; i < kFrame; ++i) gframe.at_raw(static_cast<std::size_t>(i)).set_raw(frame[static_cast<std::size_t>(i)]);
      annot::lsp_estimation(gframe, glpc);
      annot::lpc_interpolation(gprev, glpc, gsubc);
      scperf::gint i = 0;
      while (i < kOrder) {
        gprev[i] = glpc[i];
        i = i + 1;
      }
      long frame_checksum = 0;
      bool any_clip = false;
      for (int s = 0; s < kSubframes; ++s) {
        scperf::gint lag(scperf::detail::RawTag{}, 0);
        scperf::gint gain = annot::acb_search(gframe, s * kSub, ghist, lag);
        annot::update_history(ghist, gframe, s * kSub);
        (void)annot::icb_search(gframe, s * kSub, gpulses, s * kTracks);
        annot::build_excitation(gframe, s * kSub, gain, gpulses, s * kTracks,
                                gexc);
        scperf::gint cs = annot::postproc(gsubc, s * kOrder, gexc, gmem, gout);
        frame_checksum += cs.value();
        for (int n = 0; n < kSub; ++n) {
          const int y = gout.at_raw(static_cast<std::size_t>(n)).value();
          if (y == 4095 || y == -4096) any_clip = true;
        }
      }
      // Conditional capture (§4: "Capture points can be conditional to a
      // certain assertion") with an associated value.
      clipped.record_if(any_clip, idx);
      // The write is a node: the frame's computation time is back-annotated
      // before it, so frame_out sees the true completion time.
      bitstream.write(frame_checksum);
      frame_out.record(static_cast<double>(frame_checksum));
    }
  });

  sim.run();

  std::cout << "Vocoder demo: " << kFrames << " frames encoded in "
            << sim.now().str() << "\n\n";
  est.report().print(std::cout);

  // ---- post-processing the captured events (sctrace) ----
  const auto rt = sctrace::response_times_ns(frame_in.events(),
                                             frame_out.events());
  const auto rt_summary = sctrace::summarize(rt);
  std::cout << "\nframe response time: mean " << rt_summary.mean / 1e6
            << " ms, min " << rt_summary.min / 1e6 << " ms, max "
            << rt_summary.max / 1e6 << " ms\n";
  std::cout << "output rate: " << sctrace::throughput_per_sec(frame_out.events())
            << " frames/s, period jitter "
            << sctrace::jitter_ns(frame_out.events()) / 1e6 << " ms\n";
  std::cout << "clipped frames: " << clipped.events().size() << " of "
            << kFrames << "\n";

  // ---- export for "post-processing using mathematical tools (i.e. Matlab)"
  {
    std::ofstream csv("vocoder_captures.csv");
    registry.write_csv(csv);
    std::ofstream m("vocoder_captures.m");
    registry.write_matlab(m);
  }
  std::cout << "\nevent lists written to vocoder_captures.csv / .m\n";
  return 0;
}
