// Quickstart: add timing estimation to an untimed system-level model.
//
// The model: a producer filters blocks of samples and sends them over a
// FIFO to a consumer that accumulates statistics. Without the estimator the
// simulation is untimed (everything happens in delta cycles at t = 0); with
// it, the same unmodified processes execute under strict time.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>

#include "core/scperf.hpp"

using minisc::Fifo;
using minisc::Simulator;
using scperf::garray;
using scperf::gint;

namespace {

constexpr int kBlocks = 16;
constexpr int kBlockLen = 64;

void producer_body(Fifo<int>& out) {
  garray<int> coeff(4);
  for (int i = 0; i < 4; ++i) coeff.at_raw(static_cast<std::size_t>(i)).set_raw(3 + i);
  for (int b = 0; b < kBlocks; ++b) {
    // A small data-dependent computation: the estimation library charges
    // every operator against the producer's resource.
    gint acc = 0;
    gint i = 0;
    while (i < kBlockLen) {
      gint x = (i * 7 + b) % 31;
      gint j = 0;
      while (j < 4) {
        acc = acc + x * coeff[j];
        j = j + 1;
      }
      i = i + 1;
    }
    out.write(acc.value());
  }
}

void consumer_body(Fifo<int>& in) {
  gint best = 0;
  for (int b = 0; b < kBlocks; ++b) {
    gint v = in.read();
    if (v > best) {
      best = v;
    }
  }
  std::cout << "consumer: max block checksum = " << best.value() << "\n";
}

}  // namespace

int main() {
  Simulator sim;

  // 1. Describe the platform: one 50 MHz CPU and one 100 MHz accelerator.
  scperf::Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu0", 50.0, scperf::orsim_sw_cost_table(),
                                  {.rtos_cycles_per_switch = 60});
  auto& acc = est.add_hw_resource("acc0", 100.0,
                                  scperf::asic_hw_cost_table(), {.k = 0.5});

  // 2. Architectural mapping: by process name, before the processes run.
  est.map("producer", acc);
  est.map("consumer", cpu);

  // 3. The system itself: ordinary channel-based processes.
  Fifo<int> ch("samples", 4);
  sim.spawn("producer", [&] { producer_body(ch); });
  sim.spawn("consumer", [&] { consumer_body(ch); });

  // 4. Run — the simulation is now strict-timed.
  const auto reason = sim.run();
  std::cout << "simulation " << minisc::to_string(reason) << " at "
            << sim.now().str() << "\n\n";

  // 5. Estimation results.
  est.report().print(std::cout);
  return 0;
}
