// Tour of the fault-injection & resilience subsystem (src/fault):
//
//   1. watchdog: a livelocking spec is converted into a structured SimError
//      naming every process and what it is blocked on;
//   2. crash & restart: a process is killed mid-flight and respawned, with
//      RAII cleanup and the estimator's accounting surviving the crash;
//   3. message faults: a lossy channel drops/duplicates/delays writes under
//      a per-channel deterministic stream;
//   4. a small seeded campaign over a producer/consumer pair, printing the
//      aggregate report and a per-run CSV.
//
// Build: cmake --build build --target fault_campaign && build/examples/fault_campaign

#include <cstdio>
#include <sstream>

#include "core/scperf.hpp"
#include "fault/channels.hpp"
#include "fault/injector.hpp"
#include "kernel/retry.hpp"
#include "trace/campaign.hpp"

using minisc::Time;

namespace {

scperf::CostTable add_only_table() {
  scperf::CostTable t;
  t.set(scperf::Op::kAdd, 1.0);
  return t;
}

void burn(int n) {
  scperf::gint a(scperf::detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    scperf::gint r = a + 1;
    (void)r;
  }
}

// ---- 1. watchdog --------------------------------------------------------

void demo_watchdog() {
  std::printf("-- watchdog: livelock becomes a diagnosis --\n");
  minisc::Simulator sim;
  minisc::Watchdog wd;
  wd.max_deltas_per_instant = 1000;  // a delta storm trips after 1000 rounds
  sim.set_watchdog(wd);

  minisc::Event ping("ping"), pong("pong");
  sim.spawn("ping_proc", [&] {
    while (true) {
      pong.notify_delta();
      minisc::wait(ping);
    }
  });
  sim.spawn("pong_proc", [&] {
    while (true) {
      ping.notify_delta();
      minisc::wait(pong);
    }
  });
  try {
    sim.run();
  } catch (const minisc::SimError& e) {
    std::printf("%s\n\n", e.what());
  }
}

// ---- 2. crash & restart -------------------------------------------------

void demo_crash_restart() {
  std::printf("-- crash & restart: task killed at 5 us, respawned 1 us later --\n");
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", 100.0, add_only_table());
  est.map("task", cpu);

  int attempt = 0;
  sim.spawn("task", [&] {
    ++attempt;
    std::printf("  task starts (attempt %d) at %s\n", attempt,
                minisc::now().str().c_str());
    for (int i = 0; i < 10; ++i) {
      burn(100);  // 1 us of estimated work per iteration
      minisc::wait(Time::ns(10));
    }
    std::printf("  task completed at %s\n", minisc::now().str().c_str());
  });
  sim.spawn("grim_reaper", [&] {
    minisc::wait(Time::us(5));
    minisc::Simulator& s = minisc::Simulator::current();
    s.kill_and_restart(*s.find_process("task"), Time::us(1));
  });
  sim.run();
  std::printf("  estimated task computation: %s (both attempts)\n\n",
              est.process_time("task").str().c_str());
}

// ---- 3. lossy channel ---------------------------------------------------

void demo_lossy_channel() {
  std::printf("-- lossy channel: 30%% drop / 10%% dup, seed-reproducible --\n");
  scfault::ScenarioConfig cfg;
  cfg.horizon = Time::us(100);
  cfg.channel_faults.push_back(
      {"link", 0.3, 0.1, 0.0, Time::zero(), Time::zero(), {}});
  scfault::FaultScenario scenario(cfg, /*seed=*/2024);

  minisc::Simulator sim;
  scfault::FaultyFifo<int> link("link", 32);
  link.attach(scenario);
  int sent = 0, received = 0;
  sim.spawn("producer", [&] {
    for (int i = 0; i < 20; ++i) {
      link.write(i);
      ++sent;
      minisc::wait(Time::us(1));
    }
  });
  sim.spawn("consumer", [&] {
    // The loss-tolerant consumer idiom: bounded reads + bounded retries.
    while (true) {
      const bool got = minisc::retry_with_backoff(
          [&] { return link.read_for(Time::us(2)).has_value(); });
      if (!got) break;  // producer long gone
      ++received;
    }
  });
  sim.run();
  std::printf("  sent %d, received %d (dropped %llu, duplicated %llu)\n\n",
              sent, received,
              static_cast<unsigned long long>(link.dropped()),
              static_cast<unsigned long long>(link.duplicated()));
}

// ---- 4. campaign --------------------------------------------------------

void demo_campaign() {
  std::printf("-- campaign: 10 seeds of a faulty producer/consumer --\n");
  sctrace::FaultCampaign campaign([](std::uint64_t seed) {
    scfault::ScenarioConfig cfg;
    cfg.horizon = Time::us(50);
    cfg.channel_faults.push_back(
        {"data", 0.15, 0.0, 0.1, Time::us(1), Time::us(4), {}});
    cfg.pulses.push_back({"cpu", 2, 100.0, 400.0});
    scfault::FaultScenario scenario(cfg, seed);

    minisc::Simulator sim;
    scperf::Estimator est(sim);
    auto& cpu = est.add_sw_resource("cpu", 100.0, add_only_table());
    est.map("producer", cpu);
    est.map("consumer", cpu);
    scfault::FaultInjector inj(sim, est, scenario);
    scfault::FaultyFifo<int> data("data", 32);
    data.attach(scenario);

    constexpr int kItems = 20;
    const Time deadline = Time::us(3);  // per-item inter-arrival budget
    sctrace::CampaignRunResult r;
    r.deadline_total = kItems;
    Time last;
    bool producer_done = false;
    sim.spawn("producer", [&] {
      for (int i = 0; i < kItems; ++i) {
        burn(50);
        data.write(i);
        minisc::wait(Time::us(2));
      }
      producer_done = true;
    });
    sim.spawn("consumer", [&] {
      int seen = 0;
      while (true) {
        const Time t0 = minisc::now();
        auto v = data.read_for(Time::us(4));
        if (!v.has_value()) {
          if (producer_done) break;  // stream over: remaining items lost
          continue;                  // transient gap: keep listening
        }
        ++seen;
        last = minisc::now();
        if (minisc::now() - t0 > deadline) ++r.deadline_missed;
      }
      r.deadline_missed += kItems - seen;  // never-delivered items miss too
    });
    sim.run(Time::ms(1));
    r.makespan = last;
    r.faults_injected = inj.pulses_injected() + data.dropped() +
                        data.delayed();
    return r;
  });
  campaign.run(/*base_seed=*/1, /*n=*/10);

  std::ostringstream report;
  campaign.report().print(report);
  std::printf("%s", report.str().c_str());
  std::ostringstream csv;
  campaign.write_csv(csv);
  std::printf("\nper-run CSV:\n%s", csv.str().c_str());
}

}  // namespace

int main() {
  demo_watchdog();
  demo_crash_restart();
  demo_lossy_channel();
  demo_campaign();
  return 0;
}
