// Design-space exploration with the estimation library (the paper's
// motivating use case: "fast and accurate design space exploration").
//
// A four-stage image-ish pipeline (decimate -> filter -> threshold -> pack)
// is mapped onto candidate architectures; for each mapping the strict-timed
// simulation yields the makespan and per-resource utilisation, and the
// functional checksum is asserted identical — timing must never change
// behaviour for a deterministic specification.

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/scperf.hpp"

using minisc::Fifo;
using minisc::Simulator;
using scperf::garray;
using scperf::gint;

namespace {

constexpr int kBlocks = 12;
constexpr int kLen = 96;

// ---- the four stages (annotated, mapping-independent) ----------------------

void decimate(Fifo<long>& out) {
  for (int b = 0; b < kBlocks; ++b) {
    gint acc = 0;
    gint i = 0;
    while (i < kLen) {
      gint s = (i * 13 + b * 7) % 255;
      if ((i & 1) == 0) {
        acc = acc + s;
      }
      i = i + 1;
    }
    out.write(acc.value());
  }
}

void filter(Fifo<long>& in, Fifo<long>& out) {
  garray<int> taps(8);
  for (int i = 0; i < 8; ++i) taps.at_raw(static_cast<std::size_t>(i)).set_raw(1 + i);
  for (int b = 0; b < kBlocks; ++b) {
    gint v(scperf::detail::RawTag{}, static_cast<int>(in.read()));
    gint y = 0;
    gint j = 0;
    while (j < 8) {
      y = y + ((v >> j) * taps[j]);
      j = j + 1;
    }
    out.write(y.value());
  }
}

void threshold(Fifo<long>& in, Fifo<long>& out) {
  for (int b = 0; b < kBlocks; ++b) {
    gint v(scperf::detail::RawTag{}, static_cast<int>(in.read()));
    gint lvl = 0;
    gint step = 4096;
    while (step > 0) {
      if (v > step) {
        lvl = lvl + 1;
        v = v - step;
      }
      step = step >> 1;
    }
    out.write(lvl.value());
  }
}

long pack(Fifo<long>& in) {
  gint packed = 0;
  for (int b = 0; b < kBlocks; ++b) {
    gint v(scperf::detail::RawTag{}, static_cast<int>(in.read()));
    packed = (packed << 2) ^ v;
  }
  return packed.value();
}

// ---- one mapping = process name -> resource name ---------------------------

struct Architecture {
  std::string name;
  std::map<std::string, std::string> mapping;
};

struct RunOutcome {
  long checksum = 0;
  minisc::Time makespan;
  std::vector<std::string> utilisation;
};

RunOutcome evaluate(const Architecture& arch) {
  Simulator sim;
  scperf::Estimator est(sim);
  auto& cpu0 = est.add_sw_resource("cpu0", 50.0,
                                   scperf::orsim_sw_cost_table(),
                                   {.rtos_cycles_per_switch = 60});
  auto& cpu1 = est.add_sw_resource("cpu1", 50.0,
                                   scperf::orsim_sw_cost_table(),
                                   {.rtos_cycles_per_switch = 60});
  auto& acc = est.add_hw_resource("acc0", 100.0,
                                  scperf::asic_hw_cost_table(), {.k = 0.25});
  std::map<std::string, scperf::Resource*> by_name{
      {"cpu0", &cpu0}, {"cpu1", &cpu1}, {"acc0", &acc}};
  for (const auto& [proc, res] : arch.mapping) est.map(proc, *by_name.at(res));

  Fifo<long> c1("c1", 2), c2("c2", 2), c3("c3", 2);
  RunOutcome out;
  sim.spawn("decimate", [&] { decimate(c1); });
  sim.spawn("filter", [&] { filter(c1, c2); });
  sim.spawn("threshold", [&] { threshold(c2, c3); });
  sim.spawn("pack", [&] { out.checksum = pack(c3); });
  sim.run();
  out.makespan = sim.now();
  for (const auto& row : est.report().resources) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s %.0f%%", row.resource.c_str(),
                  row.utilization * 100.0);
    out.utilisation.push_back(buf);
  }
  return out;
}

}  // namespace

int main() {
  const std::vector<Architecture> candidates = {
      {"single CPU",
       {{"decimate", "cpu0"},
        {"filter", "cpu0"},
        {"threshold", "cpu0"},
        {"pack", "cpu0"}}},
      {"two CPUs (front/back split)",
       {{"decimate", "cpu0"},
        {"filter", "cpu0"},
        {"threshold", "cpu1"},
        {"pack", "cpu1"}}},
      {"CPU + accelerator for filter",
       {{"decimate", "cpu0"},
        {"filter", "acc0"},
        {"threshold", "cpu0"},
        {"pack", "cpu0"}}},
      {"two CPUs + accelerator",
       {{"decimate", "cpu0"},
        {"filter", "acc0"},
        {"threshold", "cpu1"},
        {"pack", "cpu1"}}},
  };

  std::cout << "Architectural mapping exploration (" << kBlocks
            << " blocks)\n\n";
  long reference_checksum = 0;
  for (const auto& arch : candidates) {
    const RunOutcome out = evaluate(arch);
    if (reference_checksum == 0) reference_checksum = out.checksum;
    std::cout << "  " << arch.name << "\n    makespan: " << out.makespan.str()
              << "   checksum: " << out.checksum
              << (out.checksum == reference_checksum ? "" : "  (MISMATCH!)")
              << "\n    utilisation:";
    for (const auto& u : out.utilisation) std::cout << "  " << u;
    std::cout << "\n\n";
  }
  std::cout << "Identical checksums across mappings confirm the "
            << "specification is deterministic (paper §6).\n";
  return 0;
}
