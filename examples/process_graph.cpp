// The paper's §2 "simple parser program": static extraction of the process
// graph from a process body's source text. This reproduces Figures 1 and 2
// of the paper — the example process, its node marks N0..N4 and the segment
// arcs S0-1 ... S4-1 — and emits the graph as Graphviz dot.

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/segment_parser.hpp"

namespace {

// The paper's Figure 1, restructured only typographically.
constexpr const char* kFigure1Body = R"(
  do {
    // code of segment S0-1
    // common code to S0-1 and S4-1
    ch1.read();
    // common code to S1-2 and S1-3
    if (condition) {
      // common code to S1-2 and S1-3
      // code of segment S1-2
      ch2.write();
    }
    // code of segment S2-3
    // common code to S1-3 and S2-3
    wait(delay1);
    // code of segment S3-4
    ch2.read();
  } while (true);
  // code of segment S4-1
)";

const char* kind_name(scperf::GraphNode::Kind k) {
  using Kind = scperf::GraphNode::Kind;
  switch (k) {
    case Kind::kEntry:
      return "entry";
    case Kind::kChannelRead:
      return "channel read";
    case Kind::kChannelWrite:
      return "channel write";
    case Kind::kTimedWait:
      return "timed wait";
    case Kind::kExit:
      return "exit";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  std::string body = kFigure1Body;
  std::string title = "the paper's Figure 1 example";
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "cannot open " << argv[1] << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    body = buf.str();
    title = argv[1];
  }
  const scperf::ProcessGraph g = scperf::parse_process_body(body);

  std::cout << "Process graph of " << title << "\n\n";
  std::cout << "nodes:\n";
  for (const auto& n : g.nodes) {
    std::cout << "  " << n.label << "  " << kind_name(n.kind);
    if (!n.channel.empty()) std::cout << " (" << n.channel << ")";
    std::cout << "  line " << n.line << ", loop depth " << n.loop_depth
              << "\n";
  }
  std::cout << "\nsegments (the paper's Figure 2 arcs):\n";
  for (const auto& s : g.segments) {
    std::cout << "  " << g.segment_name(s) << ": " << g.nodes[s.from].label
              << " -> " << g.nodes[s.to].label << "\n";
  }
  std::cout << "\nGraphviz (pipe into `dot -Tpng`):\n\n";
  g.write_dot(std::cout);
  return 0;
}
