#pragma once

#include <stdexcept>
#include <string>

#include "iss/isa.hpp"

namespace iss {

/// Error raised on malformed assembly, carrying the 1-based source line.
class AsmError : public std::runtime_error {
 public:
  AsmError(std::size_t line, const std::string& message);
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Two-pass text assembler for the orsim ISA.
///
/// Syntax (one instruction per line):
///     # comment until end of line
///     label:
///       addi  r3, r3, 1
///       lw    r4, 8(r2)
///       sflt  r3, r5
///       bf    label
///       halt
///
/// Pseudo-instructions:
///     li  rd, imm32    expands to movhi+ori (or a single addi when imm
///                      fits in 16 signed bits)
///     mov rd, ra       ori rd, ra, 0
///     ret              jr r9
///
/// Immediates accept decimal (possibly negative) and 0x-hex forms.
Program assemble(const std::string& source);

}  // namespace iss
