#pragma once

#include <array>
#include <cstdint>

#include "iss/isa.hpp"

namespace iss {

/// Per-instruction-class latencies of the modelled pipeline, in cycles.
/// Defaults approximate a simple in-order embedded RISC (OR1200-like):
/// single-cycle ALU, 3-cycle multiply, iterative 20-cycle divide, 2-cycle
/// loads, taken-branch penalty.
struct CycleModel {
  std::uint32_t alu = 1;
  std::uint32_t mul = 3;
  std::uint32_t div = 20;
  std::uint32_t load = 2;
  std::uint32_t store = 2;
  std::uint32_t compare = 1;
  std::uint32_t branch_taken = 3;
  std::uint32_t branch_not_taken = 1;
  std::uint32_t jump = 2;
  std::uint32_t nop = 1;

  std::uint32_t cost(InstrClass c, bool taken) const {
    switch (c) {
      case InstrClass::kAlu:
        return alu;
      case InstrClass::kMul:
        return mul;
      case InstrClass::kDiv:
        return div;
      case InstrClass::kLoad:
        return load;
      case InstrClass::kStore:
        return store;
      case InstrClass::kCompare:
        return compare;
      case InstrClass::kBranch:
        return taken ? branch_taken : branch_not_taken;
      case InstrClass::kJump:
        return jump;
      case InstrClass::kNop:
        return nop;
      case InstrClass::kCount_:
        break;
    }
    return 1;
  }
};

}  // namespace iss
