#pragma once

#include <cstdint>
#include <vector>

namespace iss {

/// Direct-mapped cache timing model (no data storage — only hit/miss
/// accounting, which is all a cycle model needs). Supports the instruction-
/// cache error discussion of the paper's §1 (ref [18]): enabling it on the
/// ISS but not in the estimation library produces exactly the class of error
/// the paper attributes to caches.
class DirectMappedCache {
 public:
  struct Config {
    std::uint32_t lines = 256;        ///< number of cache lines (power of 2)
    std::uint32_t line_bytes = 16;    ///< line size (power of 2)
    std::uint32_t miss_penalty = 10;  ///< extra cycles per miss
  };

  explicit DirectMappedCache(Config cfg);

  /// Returns the extra cycles this access costs (0 on hit).
  std::uint32_t access(std::uint32_t addr);

  void reset();
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / total;
  }
  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::uint32_t index_mask_;
  std::uint32_t offset_bits_;
  std::vector<std::int64_t> tags_;  ///< -1 = invalid
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace iss
