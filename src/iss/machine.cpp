#include "iss/machine.hpp"

#include <cassert>
#include <stdexcept>

namespace iss {

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kSll: return "sll";
    case Opcode::kSrl: return "srl";
    case Opcode::kSra: return "sra";
    case Opcode::kMul: return "mul";
    case Opcode::kDiv: return "div";
    case Opcode::kAddi: return "addi";
    case Opcode::kAndi: return "andi";
    case Opcode::kOri: return "ori";
    case Opcode::kXori: return "xori";
    case Opcode::kSlli: return "slli";
    case Opcode::kSrli: return "srli";
    case Opcode::kSrai: return "srai";
    case Opcode::kMovhi: return "movhi";
    case Opcode::kLw: return "lw";
    case Opcode::kSw: return "sw";
    case Opcode::kLb: return "lb";
    case Opcode::kSb: return "sb";
    case Opcode::kSfeq: return "sfeq";
    case Opcode::kSfne: return "sfne";
    case Opcode::kSflt: return "sflt";
    case Opcode::kSfle: return "sfle";
    case Opcode::kSfgt: return "sfgt";
    case Opcode::kSfge: return "sfge";
    case Opcode::kSfeqi: return "sfeqi";
    case Opcode::kSfnei: return "sfnei";
    case Opcode::kSflti: return "sflti";
    case Opcode::kSflei: return "sflei";
    case Opcode::kSfgti: return "sfgti";
    case Opcode::kSfgei: return "sfgei";
    case Opcode::kBf: return "bf";
    case Opcode::kBnf: return "bnf";
    case Opcode::kJ: return "j";
    case Opcode::kJal: return "jal";
    case Opcode::kJr: return "jr";
    case Opcode::kNop: return "nop";
    case Opcode::kHalt: return "halt";
  }
  return "?";
}

InstrClass classify(Opcode op) {
  switch (op) {
    case Opcode::kMul:
      return InstrClass::kMul;
    case Opcode::kDiv:
      return InstrClass::kDiv;
    case Opcode::kLw:
    case Opcode::kLb:
      return InstrClass::kLoad;
    case Opcode::kSw:
    case Opcode::kSb:
      return InstrClass::kStore;
    case Opcode::kSfeq:
    case Opcode::kSfne:
    case Opcode::kSflt:
    case Opcode::kSfle:
    case Opcode::kSfgt:
    case Opcode::kSfge:
    case Opcode::kSfeqi:
    case Opcode::kSfnei:
    case Opcode::kSflti:
    case Opcode::kSflei:
    case Opcode::kSfgti:
    case Opcode::kSfgei:
      return InstrClass::kCompare;
    case Opcode::kBf:
    case Opcode::kBnf:
      return InstrClass::kBranch;
    case Opcode::kJ:
    case Opcode::kJal:
    case Opcode::kJr:
      return InstrClass::kJump;
    case Opcode::kNop:
    case Opcode::kHalt:
      return InstrClass::kNop;
    default:
      return InstrClass::kAlu;
  }
}

// ----------------------------------------------------------------- cache ----

DirectMappedCache::DirectMappedCache(Config cfg) : cfg_(cfg) {
  // Release builds would silently drop an assert and compute garbage index
  // masks; reject non-power-of-two geometries loudly instead.
  const auto pow2 = [](std::uint32_t v) { return v != 0 && (v & (v - 1)) == 0; };
  if (!pow2(cfg_.lines)) {
    throw std::invalid_argument("DirectMappedCache: lines must be a power of 2, got " +
                                std::to_string(cfg_.lines));
  }
  if (!pow2(cfg_.line_bytes)) {
    throw std::invalid_argument(
        "DirectMappedCache: line_bytes must be a power of 2, got " +
        std::to_string(cfg_.line_bytes));
  }
  index_mask_ = cfg_.lines - 1;
  offset_bits_ = 0;
  for (std::uint32_t b = cfg_.line_bytes; b > 1; b >>= 1) ++offset_bits_;
  tags_.assign(cfg_.lines, -1);
}

std::uint32_t DirectMappedCache::access(std::uint32_t addr) {
  const std::uint32_t block = addr >> offset_bits_;
  const std::uint32_t index = block & index_mask_;
  const auto tag = static_cast<std::int64_t>(block >> 0);
  if (tags_[index] == tag) {
    ++hits_;
    return 0;
  }
  tags_[index] = tag;
  ++misses_;
  return cfg_.miss_penalty;
}

void DirectMappedCache::reset() {
  tags_.assign(cfg_.lines, -1);
  hits_ = 0;
  misses_ = 0;
}

// --------------------------------------------------------------- machine ----

Machine::Machine(std::size_t mem_bytes) : mem_(mem_bytes, 0) {}

void Machine::load_program(Program program) {
  program_ = std::move(program);
  halt_stub_ = static_cast<std::uint32_t>(program_.instrs.size());
  program_.instrs.push_back({Opcode::kHalt, 0, 0, 0, 0, 0});
  pc_ = 0;
}

void Machine::check_addr(std::uint32_t addr, std::uint32_t bytes) const {
  if (static_cast<std::size_t>(addr) + bytes > mem_.size()) {
    throw std::out_of_range("iss: memory access at 0x" +
                            std::to_string(addr) + " outside memory");
  }
}

std::int32_t Machine::read_word(std::uint32_t addr) const {
  check_addr(addr, 4);
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | mem_[addr + i];
  return static_cast<std::int32_t>(v);
}

void Machine::write_word(std::uint32_t addr, std::int32_t v) {
  check_addr(addr, 4);
  auto u = static_cast<std::uint32_t>(v);
  for (int i = 0; i < 4; ++i) {
    mem_[addr + i] = static_cast<std::uint8_t>(u & 0xffu);
    u >>= 8;
  }
}

std::int8_t Machine::read_byte(std::uint32_t addr) const {
  check_addr(addr, 1);
  return static_cast<std::int8_t>(mem_[addr]);
}

void Machine::write_byte(std::uint32_t addr, std::int8_t v) {
  check_addr(addr, 1);
  mem_[addr] = static_cast<std::uint8_t>(v);
}

void Machine::reset_stats() {
  stats_ = ExecStats{};
  if (icache_) icache_->reset();
  if (dcache_) dcache_->reset();
}

Machine::RunResult Machine::run(std::uint64_t max_steps) {
  return run_from(pc_, max_steps);
}

Machine::RunResult Machine::run_from(std::uint32_t entry,
                                     std::uint64_t max_steps) {
  pc_ = entry;
  if (regs_[1] == 0) {
    regs_[1] = static_cast<std::int32_t>(mem_.size() - 16);
  }
  RunResult res;
  const auto n_instrs = static_cast<std::uint32_t>(program_.instrs.size());

  while (res.instructions < max_steps) {
    if (pc_ >= n_instrs) {
      throw std::out_of_range("iss: PC " + std::to_string(pc_) +
                              " outside program");
    }
    const Instr& in = program_.instrs[pc_];
    if (in.op == Opcode::kHalt) {
      res.halted = true;
      break;
    }
    ++res.instructions;
    std::uint32_t next = pc_ + 1;
    bool taken = false;

    auto& r = regs_;
    const auto u = [&](unsigned i) { return static_cast<std::uint32_t>(r[i]); };
    switch (in.op) {
      case Opcode::kAdd: set_reg(in.rd, r[in.ra] + r[in.rb]); break;
      case Opcode::kSub: set_reg(in.rd, r[in.ra] - r[in.rb]); break;
      case Opcode::kAnd: set_reg(in.rd, r[in.ra] & r[in.rb]); break;
      case Opcode::kOr: set_reg(in.rd, r[in.ra] | r[in.rb]); break;
      case Opcode::kXor: set_reg(in.rd, r[in.ra] ^ r[in.rb]); break;
      case Opcode::kSll:
        set_reg(in.rd, static_cast<std::int32_t>(u(in.ra) << (u(in.rb) & 31)));
        break;
      case Opcode::kSrl:
        set_reg(in.rd, static_cast<std::int32_t>(u(in.ra) >> (u(in.rb) & 31)));
        break;
      case Opcode::kSra:
        set_reg(in.rd, r[in.ra] >> (u(in.rb) & 31));
        break;
      case Opcode::kMul: set_reg(in.rd, r[in.ra] * r[in.rb]); break;
      case Opcode::kDiv:
        // Divide-by-zero yields 0, as on cores that trap-and-fix.
        set_reg(in.rd, r[in.rb] == 0 ? 0 : r[in.ra] / r[in.rb]);
        break;
      case Opcode::kAddi: set_reg(in.rd, r[in.ra] + in.imm); break;
      case Opcode::kAndi: set_reg(in.rd, r[in.ra] & in.imm); break;
      case Opcode::kOri: set_reg(in.rd, r[in.ra] | in.imm); break;
      case Opcode::kXori: set_reg(in.rd, r[in.ra] ^ in.imm); break;
      case Opcode::kSlli:
        set_reg(in.rd, static_cast<std::int32_t>(u(in.ra) << (in.imm & 31)));
        break;
      case Opcode::kSrli:
        set_reg(in.rd, static_cast<std::int32_t>(u(in.ra) >> (in.imm & 31)));
        break;
      case Opcode::kSrai: set_reg(in.rd, r[in.ra] >> (in.imm & 31)); break;
      case Opcode::kMovhi:
        set_reg(in.rd, static_cast<std::int32_t>(
                           static_cast<std::uint32_t>(in.imm) << 16));
        break;
      case Opcode::kLw: {
        const auto addr = static_cast<std::uint32_t>(r[in.ra] + in.imm);
        if (dcache_) res.cycles += dcache_->access(addr);
        set_reg(in.rd, read_word(addr));
        break;
      }
      case Opcode::kSw: {
        const auto addr = static_cast<std::uint32_t>(r[in.ra] + in.imm);
        if (dcache_) res.cycles += dcache_->access(addr);
        write_word(addr, r[in.rd]);
        break;
      }
      case Opcode::kLb: {
        const auto addr = static_cast<std::uint32_t>(r[in.ra] + in.imm);
        if (dcache_) res.cycles += dcache_->access(addr);
        set_reg(in.rd, read_byte(addr));
        break;
      }
      case Opcode::kSb: {
        const auto addr = static_cast<std::uint32_t>(r[in.ra] + in.imm);
        if (dcache_) res.cycles += dcache_->access(addr);
        write_byte(addr, static_cast<std::int8_t>(r[in.rd] & 0xff));
        break;
      }
      case Opcode::kSfeq: flag_ = r[in.ra] == r[in.rb]; break;
      case Opcode::kSfne: flag_ = r[in.ra] != r[in.rb]; break;
      case Opcode::kSflt: flag_ = r[in.ra] < r[in.rb]; break;
      case Opcode::kSfle: flag_ = r[in.ra] <= r[in.rb]; break;
      case Opcode::kSfgt: flag_ = r[in.ra] > r[in.rb]; break;
      case Opcode::kSfge: flag_ = r[in.ra] >= r[in.rb]; break;
      case Opcode::kSfeqi: flag_ = r[in.ra] == in.imm; break;
      case Opcode::kSfnei: flag_ = r[in.ra] != in.imm; break;
      case Opcode::kSflti: flag_ = r[in.ra] < in.imm; break;
      case Opcode::kSflei: flag_ = r[in.ra] <= in.imm; break;
      case Opcode::kSfgti: flag_ = r[in.ra] > in.imm; break;
      case Opcode::kSfgei: flag_ = r[in.ra] >= in.imm; break;
      case Opcode::kBf:
        taken = flag_;
        if (taken) next = in.target;
        break;
      case Opcode::kBnf:
        taken = !flag_;
        if (taken) next = in.target;
        break;
      case Opcode::kJ:
        taken = true;
        next = in.target;
        break;
      case Opcode::kJal:
        taken = true;
        set_reg(9, static_cast<std::int32_t>(pc_ + 1));
        next = in.target;
        break;
      case Opcode::kJr:
        taken = true;
        next = static_cast<std::uint32_t>(r[in.ra]);
        break;
      case Opcode::kNop:
        break;
      case Opcode::kHalt:
        break;  // unreachable (handled above)
    }

    if (trace_depth_ != 0) {
      TraceRecord rec{pc_, in, regs_[in.rd], flag_};
      if (trace_.size() < trace_depth_) {
        trace_.push_back(rec);
      } else {
        trace_[trace_next_] = rec;
      }
      trace_next_ = (trace_next_ + 1) % trace_depth_;
    }
    const InstrClass cls = classify(in.op);
    res.cycles += model_.cost(cls, taken);
    if (icache_) {
      // Instruction addresses: 4 bytes per instruction, based at 0.
      res.cycles += icache_->access(pc_ * 4);
    }
    ++stats_.per_class[static_cast<std::size_t>(cls)];
    pc_ = next;
  }

  stats_.instructions += res.instructions;
  stats_.cycles += res.cycles;
  return res;
}

std::vector<Machine::TraceRecord> Machine::trace_window() const {
  std::vector<TraceRecord> out;
  out.reserve(trace_.size());
  if (trace_.size() < trace_depth_) {
    out = trace_;  // ring not yet wrapped
  } else {
    for (std::size_t i = 0; i < trace_.size(); ++i) {
      out.push_back(trace_[(trace_next_ + i) % trace_.size()]);
    }
  }
  return out;
}

std::int32_t Machine::call(const std::string& fn, std::uint64_t max_steps) {
  set_reg(9, static_cast<std::int32_t>(halt_stub_));
  const auto result = run_from(program_.label(fn), max_steps);
  if (!result.halted) {
    throw std::runtime_error("iss: call to '" + fn + "' did not halt");
  }
  return reg(11);
}

}  // namespace iss
