#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace iss {

/// The orsim instruction set: an OpenRISC-flavoured 32-bit RISC with 32
/// general-purpose registers (r0 hardwired to zero), a single compare flag
/// set by the sfXX instructions and consumed by bf/bnf, word/byte memory
/// accesses and jal/jr linkage through r9.
///
/// Software conventions used by all programs in this repository:
///   r1  stack pointer (grows down)    r9  link register
///   r3..r8 arguments                  r11 return value
enum class Opcode : std::uint8_t {
  // register-register ALU
  kAdd,
  kSub,
  kAnd,
  kOr,
  kXor,
  kSll,
  kSrl,
  kSra,
  kMul,
  kDiv,
  // register-immediate ALU
  kAddi,
  kAndi,
  kOri,
  kXori,
  kSlli,
  kSrli,
  kSrai,
  kMovhi,  ///< rd = imm << 16
  // memory
  kLw,
  kSw,
  kLb,
  kSb,
  // compare (set flag)
  kSfeq,
  kSfne,
  kSflt,
  kSfle,
  kSfgt,
  kSfge,
  kSfeqi,
  kSfnei,
  kSflti,
  kSflei,
  kSfgti,
  kSfgei,
  // control
  kBf,   ///< branch if flag
  kBnf,  ///< branch if not flag
  kJ,
  kJal,  ///< r9 = return address
  kJr,
  kNop,
  kHalt,
};

const char* to_string(Opcode op);

/// Coarse classes the cycle model prices.
enum class InstrClass : std::uint8_t {
  kAlu,
  kMul,
  kDiv,
  kLoad,
  kStore,
  kCompare,
  kBranch,
  kJump,
  kNop,
  kCount_,
};

InstrClass classify(Opcode op);

/// One decoded instruction. `target` is an instruction index (filled in by
/// the assembler from a label) for control-flow ops; `imm` is the immediate
/// or the load/store offset.
struct Instr {
  Opcode op = Opcode::kNop;
  std::uint8_t rd = 0;
  std::uint8_t ra = 0;
  std::uint8_t rb = 0;
  std::int32_t imm = 0;
  std::uint32_t target = 0;
};

/// An assembled program: decoded instructions plus the label map (label ->
/// instruction index), useful for setting entry points in tests.
struct Program {
  std::vector<Instr> instrs;
  std::map<std::string, std::uint32_t> labels;

  std::uint32_t label(const std::string& name) const;
};

}  // namespace iss
