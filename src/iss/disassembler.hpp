#pragma once

#include <string>

#include "iss/isa.hpp"

namespace iss {

/// Renders one decoded instruction in assembler syntax. Control-flow targets
/// are shown as "L<index>" labels.
std::string disassemble(const Instr& instr);

/// Renders a whole program, emitting "L<index>:" labels at every control-flow
/// target (and keeping the program's own named labels as comments). The
/// output reassembles to an identical instruction stream:
///     assemble(disassemble(p)).instrs == p.instrs
std::string disassemble(const Program& program);

}  // namespace iss
