#include "iss/assembler.hpp"

#include <cctype>
#include <optional>
#include <sstream>
#include <unordered_map>

namespace iss {

std::uint32_t Program::label(const std::string& name) const {
  const auto it = labels.find(name);
  if (it == labels.end()) {
    throw std::out_of_range("iss: unknown label '" + name + "'");
  }
  return it->second;
}

AsmError::AsmError(std::size_t line, const std::string& message)
    : std::runtime_error("asm line " + std::to_string(line) + ": " + message),
      line_(line) {}

namespace {

/// Operand shapes an instruction can require.
enum class Form {
  kRRR,     ///< op rd, ra, rb
  kRRI,     ///< op rd, ra, imm
  kRI,      ///< op rd, imm          (movhi)
  kMem,     ///< op rd, off(ra)      (lw/lb) or op rs, off(ra) (sw/sb)
  kRR,      ///< op ra, rb           (compares)
  kRImm,    ///< op ra, imm          (compare-immediate)
  kLabel,   ///< op label
  kReg,     ///< op ra               (jr)
  kNone,    ///< op
};

struct Mnemonic {
  Opcode op;
  Form form;
};

const std::unordered_map<std::string, Mnemonic>& mnemonics() {
  static const std::unordered_map<std::string, Mnemonic> kTable = {
      {"add", {Opcode::kAdd, Form::kRRR}},
      {"sub", {Opcode::kSub, Form::kRRR}},
      {"and", {Opcode::kAnd, Form::kRRR}},
      {"or", {Opcode::kOr, Form::kRRR}},
      {"xor", {Opcode::kXor, Form::kRRR}},
      {"sll", {Opcode::kSll, Form::kRRR}},
      {"srl", {Opcode::kSrl, Form::kRRR}},
      {"sra", {Opcode::kSra, Form::kRRR}},
      {"mul", {Opcode::kMul, Form::kRRR}},
      {"div", {Opcode::kDiv, Form::kRRR}},
      {"addi", {Opcode::kAddi, Form::kRRI}},
      {"andi", {Opcode::kAndi, Form::kRRI}},
      {"ori", {Opcode::kOri, Form::kRRI}},
      {"xori", {Opcode::kXori, Form::kRRI}},
      {"slli", {Opcode::kSlli, Form::kRRI}},
      {"srli", {Opcode::kSrli, Form::kRRI}},
      {"srai", {Opcode::kSrai, Form::kRRI}},
      {"movhi", {Opcode::kMovhi, Form::kRI}},
      {"lw", {Opcode::kLw, Form::kMem}},
      {"sw", {Opcode::kSw, Form::kMem}},
      {"lb", {Opcode::kLb, Form::kMem}},
      {"sb", {Opcode::kSb, Form::kMem}},
      {"sfeq", {Opcode::kSfeq, Form::kRR}},
      {"sfne", {Opcode::kSfne, Form::kRR}},
      {"sflt", {Opcode::kSflt, Form::kRR}},
      {"sfle", {Opcode::kSfle, Form::kRR}},
      {"sfgt", {Opcode::kSfgt, Form::kRR}},
      {"sfge", {Opcode::kSfge, Form::kRR}},
      {"sfeqi", {Opcode::kSfeqi, Form::kRImm}},
      {"sfnei", {Opcode::kSfnei, Form::kRImm}},
      {"sflti", {Opcode::kSflti, Form::kRImm}},
      {"sflei", {Opcode::kSflei, Form::kRImm}},
      {"sfgti", {Opcode::kSfgti, Form::kRImm}},
      {"sfgei", {Opcode::kSfgei, Form::kRImm}},
      {"bf", {Opcode::kBf, Form::kLabel}},
      {"bnf", {Opcode::kBnf, Form::kLabel}},
      {"j", {Opcode::kJ, Form::kLabel}},
      {"jal", {Opcode::kJal, Form::kLabel}},
      {"jr", {Opcode::kJr, Form::kReg}},
      {"nop", {Opcode::kNop, Form::kNone}},
      {"halt", {Opcode::kHalt, Form::kNone}},
  };
  return kTable;
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_operands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      out.push_back(strip(cur));
      cur.clear();
    } else {
      cur += c;
    }
  }
  cur = strip(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::uint8_t parse_reg(std::size_t line, const std::string& tok) {
  if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 'R')) {
    throw AsmError(line, "expected register, got '" + tok + "'");
  }
  int n = 0;
  for (std::size_t i = 1; i < tok.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(tok[i]))) {
      throw AsmError(line, "bad register '" + tok + "'");
    }
    n = n * 10 + (tok[i] - '0');
  }
  if (n > 31) throw AsmError(line, "register out of range '" + tok + "'");
  return static_cast<std::uint8_t>(n);
}

std::int32_t parse_imm(std::size_t line, const std::string& tok) {
  try {
    std::size_t pos = 0;
    const long long v = std::stoll(tok, &pos, 0);  // base 0: dec/hex/oct
    if (pos != tok.size()) throw AsmError(line, "bad immediate '" + tok + "'");
    return static_cast<std::int32_t>(v);
  } catch (const std::invalid_argument&) {
    throw AsmError(line, "bad immediate '" + tok + "'");
  } catch (const std::out_of_range&) {
    throw AsmError(line, "immediate out of range '" + tok + "'");
  }
}

/// Parses "off(rN)" into (offset, reg).
std::pair<std::int32_t, std::uint8_t> parse_mem(std::size_t line,
                                                const std::string& tok) {
  const std::size_t open = tok.find('(');
  const std::size_t close = tok.find(')');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    throw AsmError(line, "expected off(rN), got '" + tok + "'");
  }
  const std::string off = strip(tok.substr(0, open));
  const std::string reg = strip(tok.substr(open + 1, close - open - 1));
  return {off.empty() ? 0 : parse_imm(line, off), parse_reg(line, reg)};
}

struct PendingFixup {
  std::size_t instr_index;
  std::string label;
  std::size_t line;
};

}  // namespace

Program assemble(const std::string& source) {
  Program prog;
  std::vector<PendingFixup> fixups;

  std::istringstream in(source);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(in, raw_line)) {
    ++line_no;
    // Drop comments.
    const std::size_t hash = raw_line.find_first_of("#;");
    if (hash != std::string::npos) raw_line.resize(hash);
    std::string line = strip(raw_line);
    if (line.empty()) continue;

    // Leading labels (possibly several on one line).
    while (true) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos) break;
      const std::string label = strip(line.substr(0, colon));
      if (label.empty() ||
          label.find_first_of(" \t") != std::string::npos) {
        throw AsmError(line_no, "bad label '" + label + "'");
      }
      if (prog.labels.count(label) != 0) {
        throw AsmError(line_no, "duplicate label '" + label + "'");
      }
      prog.labels[label] = static_cast<std::uint32_t>(prog.instrs.size());
      line = strip(line.substr(colon + 1));
    }
    if (line.empty()) continue;

    // Mnemonic + operands.
    const std::size_t sp = line.find_first_of(" \t");
    std::string mn = sp == std::string::npos ? line : line.substr(0, sp);
    for (char& c : mn) c = static_cast<char>(std::tolower(c));
    const std::string rest = sp == std::string::npos ? "" : strip(line.substr(sp));
    const auto ops = split_operands(rest);

    // ---- pseudo-instructions ----
    if (mn == "li") {
      if (ops.size() != 2) throw AsmError(line_no, "li needs rd, imm");
      const std::uint8_t rd = parse_reg(line_no, ops[0]);
      const std::int32_t imm = parse_imm(line_no, ops[1]);
      if (imm >= -32768 && imm <= 32767) {
        prog.instrs.push_back({Opcode::kAddi, rd, 0, 0, imm, 0});
      } else {
        const auto u = static_cast<std::uint32_t>(imm);
        prog.instrs.push_back(
            {Opcode::kMovhi, rd, 0, 0,
             static_cast<std::int32_t>(u >> 16), 0});
        prog.instrs.push_back(
            {Opcode::kOri, rd, rd, 0,
             static_cast<std::int32_t>(u & 0xffffu), 0});
      }
      continue;
    }
    if (mn == "mov") {
      if (ops.size() != 2) throw AsmError(line_no, "mov needs rd, ra");
      prog.instrs.push_back({Opcode::kOri, parse_reg(line_no, ops[0]),
                             parse_reg(line_no, ops[1]), 0, 0, 0});
      continue;
    }
    if (mn == "ret") {
      prog.instrs.push_back({Opcode::kJr, 0, 9, 0, 0, 0});
      continue;
    }

    const auto it = mnemonics().find(mn);
    if (it == mnemonics().end()) {
      throw AsmError(line_no, "unknown mnemonic '" + mn + "'");
    }
    const auto [op, form] = it->second;
    Instr ins;
    ins.op = op;
    const auto need = [&](std::size_t n) {
      if (ops.size() != n) {
        throw AsmError(line_no, mn + " expects " + std::to_string(n) +
                                    " operand(s)");
      }
    };
    switch (form) {
      case Form::kRRR:
        need(3);
        ins.rd = parse_reg(line_no, ops[0]);
        ins.ra = parse_reg(line_no, ops[1]);
        ins.rb = parse_reg(line_no, ops[2]);
        break;
      case Form::kRRI:
        need(3);
        ins.rd = parse_reg(line_no, ops[0]);
        ins.ra = parse_reg(line_no, ops[1]);
        ins.imm = parse_imm(line_no, ops[2]);
        break;
      case Form::kRI:
        need(2);
        ins.rd = parse_reg(line_no, ops[0]);
        ins.imm = parse_imm(line_no, ops[1]);
        break;
      case Form::kMem: {
        need(2);
        // lw/lb: rd is destination; sw/sb: the register operand is the
        // source, stored in rd as well.
        ins.rd = parse_reg(line_no, ops[0]);
        const auto [off, base] = parse_mem(line_no, ops[1]);
        ins.imm = off;
        ins.ra = base;
        break;
      }
      case Form::kRR:
        need(2);
        ins.ra = parse_reg(line_no, ops[0]);
        ins.rb = parse_reg(line_no, ops[1]);
        break;
      case Form::kRImm:
        need(2);
        ins.ra = parse_reg(line_no, ops[0]);
        ins.imm = parse_imm(line_no, ops[1]);
        break;
      case Form::kLabel:
        need(1);
        fixups.push_back({prog.instrs.size(), ops[0], line_no});
        break;
      case Form::kReg:
        need(1);
        ins.ra = parse_reg(line_no, ops[0]);
        break;
      case Form::kNone:
        need(0);
        break;
    }
    prog.instrs.push_back(ins);
  }

  for (const PendingFixup& f : fixups) {
    const auto it = prog.labels.find(f.label);
    if (it == prog.labels.end()) {
      throw AsmError(f.line, "undefined label '" + f.label + "'");
    }
    prog.instrs[f.instr_index].target = it->second;
  }
  return prog;
}

}  // namespace iss
