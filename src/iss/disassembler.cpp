#include "iss/disassembler.hpp"

#include <map>
#include <set>
#include <sstream>

namespace iss {

namespace {

bool has_target(Opcode op) {
  return op == Opcode::kBf || op == Opcode::kBnf || op == Opcode::kJ ||
         op == Opcode::kJal;
}

std::string reg(unsigned r) { return "r" + std::to_string(r); }

}  // namespace

std::string disassemble(const Instr& in) {
  std::ostringstream os;
  os << to_string(in.op);
  switch (in.op) {
    // register-register ALU
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kMul:
    case Opcode::kDiv:
      os << ' ' << reg(in.rd) << ", " << reg(in.ra) << ", " << reg(in.rb);
      break;
    // register-immediate ALU
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
      os << ' ' << reg(in.rd) << ", " << reg(in.ra) << ", " << in.imm;
      break;
    case Opcode::kMovhi:
      os << ' ' << reg(in.rd) << ", " << in.imm;
      break;
    case Opcode::kLw:
    case Opcode::kSw:
    case Opcode::kLb:
    case Opcode::kSb:
      os << ' ' << reg(in.rd) << ", " << in.imm << '(' << reg(in.ra) << ')';
      break;
    case Opcode::kSfeq:
    case Opcode::kSfne:
    case Opcode::kSflt:
    case Opcode::kSfle:
    case Opcode::kSfgt:
    case Opcode::kSfge:
      os << ' ' << reg(in.ra) << ", " << reg(in.rb);
      break;
    case Opcode::kSfeqi:
    case Opcode::kSfnei:
    case Opcode::kSflti:
    case Opcode::kSflei:
    case Opcode::kSfgti:
    case Opcode::kSfgei:
      os << ' ' << reg(in.ra) << ", " << in.imm;
      break;
    case Opcode::kBf:
    case Opcode::kBnf:
    case Opcode::kJ:
    case Opcode::kJal:
      os << " L" << in.target;
      break;
    case Opcode::kJr:
      os << ' ' << reg(in.ra);
      break;
    case Opcode::kNop:
    case Opcode::kHalt:
      break;
  }
  return os.str();
}

std::string disassemble(const Program& program) {
  // Collect every referenced target so labels appear exactly where needed.
  std::set<std::uint32_t> targets;
  for (const Instr& in : program.instrs) {
    if (has_target(in.op)) targets.insert(in.target);
  }
  // Invert the program's own label map for annotation comments.
  std::map<std::uint32_t, std::string> named;
  for (const auto& [name, index] : program.labels) named[index] = name;

  std::ostringstream os;
  for (std::uint32_t i = 0; i < program.instrs.size(); ++i) {
    const auto name = named.find(i);
    if (name != named.end()) os << "# " << name->second << "\n";
    if (targets.count(i) != 0) os << 'L' << i << ":\n";
    os << "  " << disassemble(program.instrs[i]) << "\n";
  }
  // A target one past the last instruction (e.g. a forward jump to end).
  const auto end = static_cast<std::uint32_t>(program.instrs.size());
  if (targets.count(end) != 0) os << 'L' << end << ":\n";
  return os.str();
}

}  // namespace iss
