#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "iss/cache.hpp"
#include "iss/cycle_model.hpp"
#include "iss/isa.hpp"

namespace iss {

/// Per-class execution statistics of one run.
struct ExecStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(InstrClass::kCount_)>
      per_class{};

  std::uint64_t count(InstrClass c) const {
    return per_class[static_cast<std::size_t>(c)];
  }
};

/// The orsim interpreter: architectural state, flat little-endian memory,
/// parameterised cycle model and optional I/D cache timing models. Plays the
/// role of the paper's "OpenRISC architectural simulator modified to supply
/// cycle accurate estimations" (§5).
class Machine {
 public:
  explicit Machine(std::size_t mem_bytes = 1 << 20);

  void load_program(Program program);
  const Program& program() const { return program_; }

  // ---- architectural state ----
  std::int32_t reg(unsigned r) const { return regs_[r]; }
  void set_reg(unsigned r, std::int32_t v) {
    if (r != 0) regs_[r] = v;
  }
  bool flag() const { return flag_; }
  std::uint32_t pc() const { return pc_; }
  void set_pc(std::uint32_t pc) { pc_ = pc; }

  std::int32_t read_word(std::uint32_t addr) const;
  void write_word(std::uint32_t addr, std::int32_t v);
  std::int8_t read_byte(std::uint32_t addr) const;
  void write_byte(std::uint32_t addr, std::int8_t v);
  std::size_t mem_size() const { return mem_.size(); }

  // ---- timing configuration ----
  void set_cycle_model(const CycleModel& m) { model_ = m; }
  const CycleModel& cycle_model() const { return model_; }
  void enable_icache(DirectMappedCache::Config cfg) { icache_.emplace(cfg); }
  void enable_dcache(DirectMappedCache::Config cfg) { dcache_.emplace(cfg); }
  const DirectMappedCache* icache() const {
    return icache_ ? &*icache_ : nullptr;
  }
  const DirectMappedCache* dcache() const {
    return dcache_ ? &*dcache_ : nullptr;
  }

  // ---- execution tracing (debugging aid) ----

  /// One executed instruction: where it was, what it was, what it wrote.
  struct TraceRecord {
    std::uint32_t pc = 0;
    Instr instr;
    std::int32_t rd_value = 0;  ///< value of rd after execution (0 if none)
    bool flag = false;          ///< compare flag after execution
  };

  /// Keeps the most recent `depth` executed instructions (0 disables).
  /// The ring is O(1) per instruction; intended for post-mortem inspection
  /// of misbehaving programs, not for full-run logging.
  void enable_trace(std::size_t depth) {
    trace_depth_ = depth;
    trace_.clear();
  }
  /// Oldest-to-newest window of the last executed instructions.
  std::vector<TraceRecord> trace_window() const;

  // ---- execution ----
  struct RunResult {
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    bool halted = false;  ///< false: max_steps exhausted
  };

  /// Runs from `entry` (default: instruction 0) until halt or `max_steps`
  /// instructions. Sets up r1 (stack pointer) at the top of memory if it is
  /// still zero. Statistics accumulate across calls; see reset_stats().
  RunResult run(std::uint64_t max_steps = 200'000'000);
  RunResult run_from(std::uint32_t entry,
                     std::uint64_t max_steps = 200'000'000);

  const ExecStats& stats() const { return stats_; }
  void reset_stats();

  /// Convenience: calls the subroutine at label `fn` (arguments already in
  /// r3..r8) by jumping there with r9 pointing at a halt stub appended by
  /// load_program. Returns r11.
  std::int32_t call(const std::string& fn,
                    std::uint64_t max_steps = 200'000'000);

 private:
  void check_addr(std::uint32_t addr, std::uint32_t bytes) const;

  Program program_;
  std::array<std::int32_t, 32> regs_{};
  bool flag_ = false;
  std::uint32_t pc_ = 0;
  std::vector<std::uint8_t> mem_;
  CycleModel model_;
  std::optional<DirectMappedCache> icache_;
  std::optional<DirectMappedCache> dcache_;
  ExecStats stats_;
  std::uint32_t halt_stub_ = 0;  ///< index of the appended halt instruction
  std::size_t trace_depth_ = 0;
  std::size_t trace_next_ = 0;  ///< ring-buffer write position
  std::vector<TraceRecord> trace_;
};

}  // namespace iss
