#include "trace/stats.hpp"

#include <algorithm>
#include <cmath>

namespace sctrace {

Summary summarize(const std::vector<double>& samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  s.min = *std::min_element(samples.begin(), samples.end());
  s.max = *std::max_element(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0.0;
  for (double v : samples) sq += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  return s;
}

std::vector<double> periods_ns(const std::vector<scperf::CaptureEvent>& ev) {
  std::vector<double> out;
  for (std::size_t i = 1; i < ev.size(); ++i) {
    out.push_back(ev[i].time.to_ns_d() - ev[i - 1].time.to_ns_d());
  }
  return out;
}

std::vector<double> response_times_ns(
    const std::vector<scperf::CaptureEvent>& requests,
    const std::vector<scperf::CaptureEvent>& responses) {
  std::vector<double> out;
  const std::size_t n = std::min(requests.size(), responses.size());
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(responses[i].time.to_ns_d() - requests[i].time.to_ns_d());
  }
  return out;
}

double throughput_per_sec(const std::vector<scperf::CaptureEvent>& ev) {
  if (ev.size() < 2) return 0.0;
  const double span_ns = ev.back().time.to_ns_d() - ev.front().time.to_ns_d();
  if (span_ns <= 0.0) return 0.0;
  return static_cast<double>(ev.size() - 1) / (span_ns * 1e-9);
}

double jitter_ns(const std::vector<scperf::CaptureEvent>& ev) {
  const auto p = periods_ns(ev);
  if (p.empty()) return 0.0;
  const auto [mn, mx] = std::minmax_element(p.begin(), p.end());
  return *mx - *mn;
}

double kish_ess(const std::vector<double>& weights) {
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  for (double w : weights) {
    sum_w += w;
    sum_w2 += w * w;
  }
  if (sum_w2 <= 0.0) return 0.0;
  return (sum_w * sum_w) / sum_w2;
}

}  // namespace sctrace
