#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "trace/campaign.hpp"

namespace sctrace {

/// Crash-consistent, append-only run journal for fault campaigns.
///
/// A campaign that runs thousands of seeds must survive the realities of
/// long runs: a host crash, an OOM kill, a CI timeout. The journal makes
/// each completed seed durable the moment it finishes, so an interrupted
/// campaign resumes by replaying the recorded runs bit-exactly and
/// re-running only the missing ones — report() and write_csv() come out
/// byte-identical to an uninterrupted run.
///
/// File format (all integers little-endian, doubles stored by bit pattern —
/// bit-exact round-trips are what make resumed reports byte-identical):
///
///   file   := header-record run-record* decision-record?
///   record := type:u8 ('H' | 'R' | 'D')  len:u32  payload[len]  checksum:u64
///
/// The checksum is FNV-1a over the type byte, the 4 length bytes and the
/// payload. Records are framed independently, so the crash-consistency
/// contract is local: a *partial* record at end-of-file is the signature of
/// an interrupted append and is silently dropped (the affected run simply
/// re-runs on resume); a record that is fully present but fails its
/// checksum is genuine corruption and raises a structured
/// minisc::SimError(kJournalCorrupt) naming the record index.
///
/// The header pins the campaign identity: base seed, run count, and a
/// caller-supplied scenario digest (scfault::config_digest) plus free-form
/// tag. Resume refuses a journal whose header disagrees with the campaign
/// being run — mixing runs of different fault models is how silent garbage
/// gets into papers.
///
/// Format version 2 adds the shard identity block (see trace/shard.hpp): a
/// journal can be one shard of a fleet-scale campaign, covering the global
/// run indices [shard_begin, shard_begin + runs) of a total_runs-run
/// campaign split into shard_count journals. Unsharded campaigns write the
/// degenerate identity (shard 0 of 1, begin 0, total == runs). worker_id
/// names the process that *created* the journal — adoption of a dead
/// worker's shard appends under the original header, so the id is
/// provenance, not ownership (ownership lives in the lease file).
///
/// Version 1 journals (pre-shard) remain readable — read_journal fills the
/// shard fields with the degenerate identity — but are read-only: resume and
/// merge refuse to extend them (SimError(kShardVersionMismatch) naming both
/// versions), because appending v2-era records under a v1 header would make
/// the file lie about what a reader can assume of it.
struct JournalHeader {
  /// The format this build writes; read_journal accepts 1 and 2.
  static constexpr std::uint32_t kVersion = 2;

  std::uint32_t version = kVersion;
  std::uint64_t base_seed = 0;
  std::uint64_t runs = 0;
  /// Fingerprint of the fault model behind the run function (0 = unchecked).
  std::uint64_t scenario_digest = 0;
  /// Free-form identity tag (e.g. "mapping/scenario" for sweep cells).
  std::string tag;

  // ---- v2: shard identity (degenerate defaults for unsharded campaigns) ----
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  /// Global run index of this journal's slot 0.
  std::uint64_t shard_begin = 0;
  /// Campaign-wide run count across all shards (0 is normalised to `runs`).
  std::uint64_t total_runs = 0;
  /// Free-form id of the worker process that created the journal.
  std::string worker_id;
};

/// One recovered record: the run's index within its campaign (slot i of the
/// run() call that wrote the journal) and the bit-exact result.
struct JournalRecord {
  std::size_t index = 0;
  CampaignRunResult result;
};

/// Sequential-verdict decision record ('D', one per journal at most; written
/// by an smc-engaged campaign after its last executed window, whether the
/// test decided or exhausted the budget undecided). Its presence is what
/// legalises recorded-runs < header runs: the campaign *chose* to stop at
/// `executed` runs, so [0, executed) is the complete record set and the
/// journal is final — resume replays the decision and runs nothing, merge
/// accepts it as complete. The writer fsyncs all run records *before*
/// appending the decision, so a decision record present in a crashed file
/// implies every run it covers is present too.
struct JournalDecision {
  /// The spec that produced the verdict; resume refuses a journal whose
  /// decision spec differs bitwise from the campaign's (same-hypothesis
  /// check, the smc analogue of the scenario digest).
  SmcSpec spec;
  SmcVerdict verdict;
  /// Runs actually executed (window-aligned, >= verdict.samples_used;
  /// == header runs when the budget ran out undecided).
  std::uint64_t executed = 0;
};

/// Everything a scan of an existing journal yields.
struct JournalContents {
  JournalHeader header;
  std::vector<JournalRecord> records;
  /// The sequential verdict, when the journal carries a decision record
  /// (last one wins if a resumed writer ever appended a second).
  std::optional<JournalDecision> decision;
  /// Byte offset one past the last intact record — the append position for
  /// a resuming writer (anything beyond it is a torn tail).
  std::uint64_t valid_bytes = 0;
  /// True when a partial trailing record was dropped (interrupted append).
  bool truncated_tail = false;
};

/// Scans `path` front to back. Throws minisc::SimError:
///   - kJournalCorrupt for a checksum-failing or malformed mid-file record
///     (the message names the record index and the file), and for a torn or
///     truncated *header* — a file with bytes but no intact header record
///     is a crash during journal creation, and resuming "from" it would
///     silently produce a fresh campaign wearing the old file's name;
///   - kShardVersionMismatch for a header whose format version this build
///     does not read (the message names both versions);
///   - kBadConfig when the file cannot be opened or is empty.
JournalContents read_journal(const std::string& path);

/// Append-side of the journal. Thread-safe: campaign workers append from
/// pool threads under one mutex (journal I/O is a few microseconds against
/// a multi-millisecond simulation, so the lock is not a scaling concern).
/// Durability is batched: every record is write()n to the file immediately
/// (surviving a killed process), and fsync'd every `flush_every` records
/// (surviving a killed machine) as well as on close().
class JournalWriter {
 public:
  /// Creates (or truncates) `path` and writes the header record.
  JournalWriter(const std::string& path, const JournalHeader& header,
                std::size_t flush_every = 8);

  /// Re-opens an existing journal for append after a read_journal() scan,
  /// first truncating any torn tail at `valid_bytes`.
  JournalWriter(const std::string& path, std::uint64_t valid_bytes,
                std::size_t flush_every = 8);

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Flushes, fsyncs and closes; errors on this path are swallowed (the
  /// destructor cannot throw), which at worst loses the tail of the journal
  /// — exactly the failure the resume path already tolerates.
  ~JournalWriter();

  /// Appends one run record and makes it visible to readers; fsyncs every
  /// `flush_every` appends. Thread-safe. Throws minisc::SimError(kIoError)
  /// carrying the errno text on I/O failure (ENOSPC, EIO, ...); the kind is
  /// non-transient so campaign retry does not hammer a full disk.
  void append(std::size_t index, const CampaignRunResult& result);

  /// Appends the sequential-verdict decision record. Syncs the pending run
  /// records first and fsyncs again after the append, so the decision is
  /// the journal's durable commit point: if it survives a crash, every run
  /// it covers survived with it. Thread-safe.
  void append_decision(const JournalDecision& decision);

  /// Forces the batched fsync now.
  void sync();

 private:
  std::mutex mu_;
  int fd_ = -1;
  std::string path_;
  std::size_t flush_every_ = 8;
  std::size_t unsynced_ = 0;
};

}  // namespace sctrace
