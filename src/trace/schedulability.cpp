#include "trace/schedulability.hpp"

#include <algorithm>
#include <cmath>

namespace sctrace {

namespace {

double deadline_of(const PeriodicTask& t) {
  return t.deadline > 0.0 ? t.deadline : t.period;
}

}  // namespace

double utilization(const std::vector<PeriodicTask>& tasks) {
  double u = 0.0;
  for (const PeriodicTask& t : tasks) {
    if (t.period > 0.0) u += t.wcet / t.period;
  }
  return u;
}

double liu_layland_bound(std::size_t n) {
  if (n == 0) return 1.0;
  const double nd = static_cast<double>(n);
  return nd * (std::pow(2.0, 1.0 / nd) - 1.0);
}

bool rm_utilization_test(const std::vector<PeriodicTask>& tasks) {
  return utilization(tasks) <= liu_layland_bound(tasks.size()) + 1e-12;
}

namespace {

std::vector<std::optional<double>> rta_impl(
    const std::vector<PeriodicTask>& tasks,
    const std::vector<double>& blocking) {
  std::vector<std::optional<double>> out(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const PeriodicTask& ti = tasks[i];
    const double limit = deadline_of(ti);
    // R = B_i + C_i + sum_{j<i} ceil(R / T_j) * C_j, iterated to fixpoint.
    double r = ti.wcet + blocking[i];
    for (int iter = 0; iter < 10000; ++iter) {
      double interference = 0.0;
      for (std::size_t j = 0; j < i; ++j) {
        interference += std::ceil(r / tasks[j].period - 1e-12) * tasks[j].wcet;
      }
      const double next = ti.wcet + blocking[i] + interference;
      if (next > limit + 1e-9) {
        r = next;
        break;  // already past the deadline: unschedulable
      }
      if (std::abs(next - r) < 1e-9) {
        r = next;
        break;
      }
      r = next;
    }
    out[i] = (r <= limit + 1e-9) ? std::optional<double>(r) : std::nullopt;
  }
  return out;
}

}  // namespace

std::vector<std::optional<double>> response_time_analysis(
    const std::vector<PeriodicTask>& tasks) {
  return rta_impl(tasks, std::vector<double>(tasks.size(), 0.0));
}

std::vector<std::optional<double>> response_time_analysis_np(
    const std::vector<PeriodicTask>& tasks) {
  std::vector<double> blocking(tasks.size(), 0.0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t j = i + 1; j < tasks.size(); ++j) {
      blocking[i] = std::max(blocking[i], tasks[j].wcet);
    }
  }
  return rta_impl(tasks, blocking);
}

std::vector<std::optional<double>> response_time_analysis_np(
    const std::vector<PeriodicTask>& tasks,
    const std::vector<double>& blocking) {
  return rta_impl(tasks, blocking);
}

bool rta_np_schedulable(const std::vector<PeriodicTask>& tasks) {
  for (const auto& r : response_time_analysis_np(tasks)) {
    if (!r.has_value()) return false;
  }
  return true;
}

bool rta_schedulable(const std::vector<PeriodicTask>& tasks) {
  for (const auto& r : response_time_analysis(tasks)) {
    if (!r.has_value()) return false;
  }
  return true;
}

std::vector<PeriodicTask> rate_monotonic_order(
    std::vector<PeriodicTask> tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [](const PeriodicTask& a, const PeriodicTask& b) {
              return a.period < b.period;
            });
  return tasks;
}

}  // namespace sctrace
