#include "trace/vcd.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <set>
#include <string>
#include <vector>

namespace sctrace {

namespace {

/// VCD identifier codes: printable ASCII starting at '!'.
std::string id_code(std::size_t index) {
  std::string code;
  do {
    code += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index != 0);
  return code;
}

std::string sanitise(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == ' ' || c == '\t') c = '_';
  }
  return out;
}

void write_header(std::ostream& os) {
  os << "$date scperf strict-timed simulation $end\n";
  os << "$version scperf vcd writer $end\n";
  os << "$timescale 1ns $end\n";
}

}  // namespace

void write_vcd(std::ostream& os, const scperf::CaptureRegistry& registry) {
  write_header(os);
  os << "$scope module captures $end\n";
  const auto& points = registry.points();
  for (std::size_t i = 0; i < points.size(); ++i) {
    os << "$var real 64 " << id_code(i) << ' ' << sanitise(points[i]->name())
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";

  // Merge all events into one time-ordered stream.
  struct Entry {
    std::uint64_t t_ns;
    std::size_t point;
    double value;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (const auto& e : points[i]->events()) {
      entries.push_back({e.time.to_ps() / 1000u, i, e.value});
    }
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.t_ns < b.t_ns; });

  bool first = true;
  std::uint64_t current = 0;
  for (const Entry& e : entries) {
    if (first || e.t_ns != current) {
      os << '#' << e.t_ns << '\n';
      current = e.t_ns;
      first = false;
    }
    os << 'r' << e.value << ' ' << id_code(e.point) << '\n';
  }
}

void write_exec_vcd(std::ostream& os,
                    const std::vector<minisc::Simulator::ExecRecord>& trace) {
  write_header(os);
  // Stable variable order: first appearance in the trace.
  std::vector<std::string> names;
  std::map<std::string, std::size_t> index;
  for (const auto& r : trace) {
    if (index.emplace(r.process, names.size()).second) {
      names.push_back(r.process);
    }
  }
  os << "$scope module processes $end\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << "$var wire 1 " << id_code(i) << ' ' << sanitise(names[i])
       << " $end\n";
  }
  os << "$upscope $end\n$enddefinitions $end\n";
  os << "#0\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    os << "0" << id_code(i) << '\n';
  }

  // Pulse each process's wire at its resume times: 1 at t, 0 at t+1ns —
  // readable activity marks at waveform zoom levels.
  struct Edge {
    std::uint64_t t_ns;
    bool level;
    std::size_t proc;
  };
  std::vector<Edge> edges;
  for (const auto& r : trace) {
    const std::uint64_t t = r.time.to_ps() / 1000u;
    edges.push_back({t, true, index[r.process]});
    edges.push_back({t + 1, false, index[r.process]});
  }
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) { return a.t_ns < b.t_ns; });
  bool first = true;
  std::uint64_t current = 0;
  for (const Edge& e : edges) {
    if (first || e.t_ns != current) {
      os << '#' << e.t_ns << '\n';
      current = e.t_ns;
      first = false;
    }
    os << (e.level ? '1' : '0') << id_code(e.proc) << '\n';
  }
}

}  // namespace sctrace
