#pragma once

#include <cstddef>
#include <cstdint>

namespace sctrace {

/// Sequential statistical model checking (SMC) for campaign properties of
/// the form "P(a run violates its deadline property) <= threshold", after
/// the Ngo–Legay SMC-for-SystemC line: instead of a fixed Monte-Carlo run
/// count, a sequential hypothesis test consumes per-run violation
/// indicators one at a time and stops the moment the verdict is decided at
/// the requested confidence — often orders of magnitude earlier than any
/// fixed-N loop, which is what makes a pruned sweep cell cheaper than any
/// amount of parallelism applied to it.
///
/// The hypotheses are separated by an indifference region of half-width
/// `delta` around `threshold` (Younes' formulation of Wald's test):
///
///   H1 ("accept"): p <= threshold - delta   — the property holds
///   H0 ("reject"): p >= threshold + delta   — the property fails
///
/// When the true p lies inside (threshold - delta, threshold + delta)
/// either answer is acceptable by construction; outside it, the error
/// probabilities are bounded by alpha (accepting a failing design) and
/// beta (rejecting a sound one).
enum class SmcMethod : std::uint8_t {
  /// Wald's sequential probability ratio test: random-walk the
  /// log-likelihood ratio of H1 against H0 and stop at the analytic
  /// boundaries log((1-beta)/alpha) (accept) / log(beta/(1-alpha))
  /// (reject). Open-ended — the sample count is data-dependent, and tiny
  /// when the true p clears the indifference region by a wide margin.
  kSprt = 0,
  /// Okamoto/Chernoff fixed-confidence bound: consume exactly
  /// chernoff_bound(spec) samples, then decide by comparing the observed
  /// violation fraction against `threshold`. The count is known up front
  /// (and far larger than SPRT's on clear-margin cells) — the honest
  /// fixed-N yardstick the SPRT is measured against in EXPERIMENTS.
  kChernoff = 1,
};

enum class SmcOutcome : std::uint8_t {
  kUndecided = 0,  ///< budget exhausted without crossing a boundary
  kAccept = 1,     ///< evidence for H1: P(violation) <= threshold - delta
  kReject = 2,     ///< evidence for H0: P(violation) >= threshold + delta
};

const char* to_string(SmcMethod m);
const char* to_string(SmcOutcome o);

struct SmcSpec {
  SmcMethod method = SmcMethod::kSprt;
  /// The property bound p0 of "P(run violates) <= p0".
  double threshold = 0.0;
  /// Indifference half-width around the threshold. The spec is engaged iff
  /// delta > 0 — a default-constructed spec disables sequential testing.
  double delta = 0.0;
  double alpha = 0.05;  ///< P(accept | the property actually fails)
  double beta = 0.05;   ///< P(reject | the property actually holds)
  /// No decision before this many observations — guards the SPRT against
  /// stopping on the first handful of lucky draws. For weighted streams it
  /// doubles as the minimum Kish ESS a decision requires.
  std::size_t min_samples = 8;
  /// Campaign integration (FaultCampaign::run): seeds are issued in windows
  /// of this many runs and the boundary is evaluated between windows, in
  /// seed order over the completed slots — never in arrival order — which
  /// is what makes the stopping seed and every output byte identical for
  /// any thread count (DESIGN §7, "Sequential verdicts"). Direct
  /// SequentialTester use ignores it.
  std::size_t window = 32;
  /// Consume importance-sampling likelihood-ratio weights exp(log_weight):
  /// the test statistic uses weighted violation counts — a weight-1 stream
  /// reduces bit-exactly to the unweighted test — and a decision
  /// additionally requires the Kish ESS to reach min_samples, so collapsed
  /// weights cannot cross a boundary on junk evidence.
  bool use_weights = false;

  bool engaged() const { return delta > 0.0; }
};

/// Bitwise equality of two specs (doubles compared exactly — journal
/// round-trips preserve bit patterns, so a resumed campaign can prove it
/// is testing the same hypothesis that decided the journal).
bool same_smc_spec(const SmcSpec& a, const SmcSpec& b);

/// log((1-beta)/alpha): the SPRT accept boundary (upper).
double sprt_log_accept(const SmcSpec& spec);
/// log(beta/(1-alpha)): the SPRT reject boundary (lower).
double sprt_log_reject(const SmcSpec& spec);
/// Okamoto/Chernoff sample bound ceil(ln(2/(alpha+beta)) / (2*delta^2)):
/// enough samples to pin p within +/-delta at total error alpha + beta.
std::size_t chernoff_bound(const SmcSpec& spec);

/// Where a sequential test ended up.
struct SmcVerdict {
  SmcOutcome outcome = SmcOutcome::kUndecided;
  /// Observations consumed up to and including the deciding one (all
  /// consumed observations while undecided).
  std::uint64_t samples_used = 0;
  /// Final test statistic: the SPRT log-likelihood ratio of H1 vs H0
  /// (Chernoff reports it too, informationally — it never decides there).
  double log_ratio = 0.0;
  /// The bound that decided: the crossed log-boundary for SPRT, the sample
  /// bound (as a double) for Chernoff. 0 while undecided.
  double bound = 0.0;
  /// Observed (weighted) violation fraction over the consumed samples.
  double estimate = 0.0;
  /// Kish effective sample size of the consumed weights — equals
  /// samples_used bit-exactly for unweighted streams.
  double ess = 0.0;

  bool decided() const { return outcome != SmcOutcome::kUndecided; }
};

/// The sequential test itself: feed per-run violation indicators in seed
/// order; once decided, further feeds are ignored (the verdict is frozen at
/// the crossing observation). Pure statistics — no campaign dependency, so
/// the operating-characteristic tests can drive it with raw Bernoulli
/// streams.
class SequentialTester {
 public:
  explicit SequentialTester(const SmcSpec& spec);

  /// Consumes one observation (weight is the importance-sampling likelihood
  /// ratio exp(log_weight); ignored unless spec.use_weights). Returns
  /// decided().
  bool feed(bool violation, double weight = 1.0);

  bool decided() const { return verdict_.decided(); }
  const SmcVerdict& verdict() const { return verdict_; }
  const SmcSpec& spec() const { return spec_; }

 private:
  SmcSpec spec_;
  SmcVerdict verdict_;
  double log_accept_ = 0.0;  ///< cached sprt_log_accept
  double log_reject_ = 0.0;  ///< cached sprt_log_reject
  double la_ = 0.0;          ///< per-violation LLR increment log(p1/p0)
  double lb_ = 0.0;          ///< per-non-violation increment log((1-p1)/(1-p0))
  std::size_t chernoff_n_ = 0;
  std::uint64_t n_ = 0;      ///< raw observations consumed
  double k_w_ = 0.0;         ///< weighted violation count
  double sum_w_ = 0.0;
  double sum_w2_ = 0.0;
};

}  // namespace sctrace
