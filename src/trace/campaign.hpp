#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "trace/stats.hpp"

namespace sctrace {

/// Outcome of one seeded run of a resilience experiment. The run function
/// fills in whatever it measures; the campaign aggregates across seeds.
struct CampaignRunResult {
  std::uint64_t seed = 0;

  /// False when the run threw minisc::SimError (watchdog trip, bad config):
  /// the run is counted as failed and excluded from the timing statistics.
  bool completed = true;
  std::string error;  ///< the SimError message when !completed

  /// End-to-end makespan of the workload (whatever the experiment defines —
  /// typically first input to last output).
  minisc::Time makespan;

  /// Deadline accounting: of `deadline_total` checked deadlines,
  /// `deadline_missed` were missed.
  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_missed = 0;

  /// Time from each fault instant to the system's recovery (experiment-
  /// defined: e.g. next completed output after the fault), in ns.
  std::vector<double> recovery_latencies_ns;

  /// Faults actually applied in this run (pulses + outages + crashes +
  /// channel faults) — for the CSV and for sanity checks.
  std::uint64_t faults_injected = 0;

  /// CaptureRegistry::value_sequence_hash of the run — equal seeds must
  /// yield equal hashes (determinism check across repeated campaigns).
  std::uint64_t value_hash = 0;
};

/// Aggregate view of a campaign. All ci95 fields are half-widths of normal-
/// approximation 95% confidence intervals: 1.96 * stderr.
struct CampaignReport {
  std::size_t runs = 0;
  std::size_t failed_runs = 0;

  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_missed = 0;
  double miss_rate = 0.0;       ///< missed / total across all completed runs
  double miss_rate_ci95 = 0.0;  ///< binomial: 1.96 * sqrt(p(1-p)/n)

  Summary makespan_ns;          ///< over completed runs
  double makespan_ci95 = 0.0;   ///< 1.96 * stddev / sqrt(count)

  Summary recovery_ns;          ///< over all recovery samples, all runs
  double recovery_ci95 = 0.0;

  void print(std::ostream& os) const;
};

/// Half-width of the normal-approximation 95% CI of a sample mean.
double mean_ci95(const Summary& s);

/// Resilience-campaign driver: runs one seeded experiment N times and
/// aggregates deadline-miss rate, makespan distribution and recovery
/// latency. The run function builds a fresh Simulator/Estimator/scenario
/// from the seed, simulates, and returns its measurements; a minisc::SimError
/// escaping it (e.g. a watchdog trip in a non-resilient mapping) is caught
/// and recorded as a failed run rather than aborting the campaign — a run
/// that hangs *is* a data point.
class FaultCampaign {
 public:
  using RunFn = std::function<CampaignRunResult(std::uint64_t seed)>;

  explicit FaultCampaign(RunFn fn) : fn_(std::move(fn)) {}

  /// Runs seeds base_seed .. base_seed + n - 1.
  void run(std::uint64_t base_seed, std::size_t n);

  const std::vector<CampaignRunResult>& results() const { return results_; }
  CampaignReport report() const;

  /// One row per run: seed, completed, makespan, deadlines, faults, hash.
  void write_csv(std::ostream& os) const;

 private:
  RunFn fn_;
  std::vector<CampaignRunResult> results_;
};

}  // namespace sctrace
