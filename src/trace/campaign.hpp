#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "kernel/time.hpp"
#include "trace/smc.hpp"
#include "trace/stats.hpp"

namespace sctrace {

/// Outcome of one seeded run of a resilience experiment. The run function
/// fills in whatever it measures; the campaign aggregates across seeds.
struct CampaignRunResult {
  std::uint64_t seed = 0;

  /// False when the run threw minisc::SimError (watchdog trip, bad config):
  /// the run is counted as failed and excluded from the timing statistics.
  bool completed = true;
  std::string error;  ///< the SimError message when !completed

  /// Attempts it took to produce this result (1 = first try). Transient
  /// SimErrors (minisc::is_transient — host-dependent wall-clock trips) are
  /// retried up to CampaignOptions::max_attempts with seed-derived
  /// deterministic backoff; permanent errors (bad config, storms) fail fast
  /// with attempts == 1. A run still failing after the retry budget keeps
  /// completed == false and records the attempts it burned.
  std::uint32_t attempts = 1;

  /// End-to-end makespan of the workload (whatever the experiment defines —
  /// typically first input to last output).
  minisc::Time makespan;

  /// Deadline accounting: of `deadline_total` checked deadlines,
  /// `deadline_missed` were missed.
  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_missed = 0;

  /// Time from each fault instant to the system's recovery (experiment-
  /// defined: e.g. next completed output after the fault), in ns.
  std::vector<double> recovery_latencies_ns;

  /// Faults actually applied in this run (pulses + outages + crashes +
  /// channel faults) — for the CSV and for sanity checks.
  std::uint64_t faults_injected = 0;

  /// Importance sampling: log likelihood ratio log(P_nominal / P_biased) of
  /// this run's fault draws (sum of scfault::channel_log_lr over the biased
  /// channels). Leave at 0 for naive Monte Carlo — weight exp(0) = 1.
  double log_weight = 0.0;

  /// Estimated total energy of the run in picojoules, and the share of it
  /// charged by fault injection (Estimator::total_energy_pj /
  /// fault_energy_pj) — the campaign reports the energy overhead of
  /// recovery from these.
  double energy_pj = 0.0;
  double fault_energy_pj = 0.0;

  /// CaptureRegistry::value_sequence_hash of the run — equal seeds must
  /// yield equal hashes (determinism check across repeated campaigns).
  std::uint64_t value_hash = 0;

  /// Segment-replay-cache counters of the run (fill from
  /// Estimator::segment_cache_stats). Observability only: excluded from the
  /// default CSV/report so cache-on and cache-off campaign outputs stay
  /// byte-identical; opt in via the with_cache_stats parameters. Sweeps use
  /// cache_hits + cache_misses == 0 to confirm the cache never engaged on
  /// fault-injected resources.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypassed = 0;
  double cache_cycles_saved = 0.0;
};

/// Aggregate view of a campaign. All ci95 fields are half-widths of normal-
/// approximation 95% confidence intervals: 1.96 * stderr — except the
/// degenerate miss-rate cases 0/N and N/N, which use the rule-of-three
/// bound 3/N instead of the Wald formula's misleading zero width.
struct CampaignReport {
  std::size_t runs = 0;
  std::size_t failed_runs = 0;
  /// Runs that needed more than one attempt (transient-failure retries).
  std::size_t retried_runs = 0;
  /// Sum of attempts across all runs (== runs when nothing retried).
  std::uint64_t total_attempts = 0;

  std::uint64_t deadline_total = 0;
  std::uint64_t deadline_missed = 0;
  double miss_rate = 0.0;       ///< missed / total across all completed runs
  double miss_rate_ci95 = 0.0;  ///< binomial: 1.96 * sqrt(p(1-p)/n)

  Summary makespan_ns;          ///< over completed runs
  double makespan_ci95 = 0.0;   ///< 1.96 * stddev / sqrt(count)

  Summary recovery_ns;          ///< over all recovery samples, all runs
  double recovery_ci95 = 0.0;

  /// Mean per-run energy and fault-energy overhead, in picojoules (over
  /// completed runs; both 0 when the experiment reports no energy).
  double mean_energy_pj = 0.0;
  double mean_fault_energy_pj = 0.0;

  // ---- importance sampling (populated when any run carries a weight) ----

  /// True when at least one completed run had log_weight != 0: the campaign
  /// sampled from a biased scenario and the weighted estimate below is the
  /// unbiased one. False = naive MC; use miss_rate.
  bool importance_sampled = false;
  /// Unbiased estimate of the nominal per-run deadline-miss fraction:
  /// mean of weight_i * (missed_i / total_i) over completed runs.
  double weighted_miss_rate = 0.0;
  double weighted_miss_rate_ci95 = 0.0;  ///< 1.96 * stderr of the above
  /// Kish effective sample size (sum w)^2 / sum w^2 — how many naive runs
  /// the weighted sample is worth; a tiny ESS flags a badly chosen bias.
  double effective_sample_size = 0.0;
  /// Mean weight: should hover near 1; far off means the biased scenario
  /// explores a different region than the nominal one.
  double mean_weight = 0.0;

  /// Segment-replay-cache totals over completed runs (observability; only
  /// printed when print() is asked for them).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypassed = 0;
  double cache_cycles_saved = 0.0;

  // ---- sequential model checking (populated when the campaign ran with an
  //      engaged CampaignOptions::smc spec, or via set_smc_verdict on the
  //      merge path) ----

  /// True when a sequential verdict accompanies this report; print() then
  /// appends the smc lines (historical bytes are preserved otherwise).
  bool smc_engaged = false;
  SmcSpec smc_spec;
  SmcVerdict smc;

  std::size_t completed_runs() const { return runs - failed_runs; }
  /// Achieved ESS fraction effective_sample_size / completed_runs (0 when
  /// nothing completed). The adaptive-IS pilot targets this quantity.
  double ess_fraction() const;
  /// True when importance sampling collapsed: ESS below 10% of the
  /// completed runs.
  bool low_ess() const;
  /// The shared low-ESS warning text, carrying the achieved ESS fraction;
  /// empty when !low_ess(). Both print() and the per-cell sweep warning
  /// format through this one function, so the two surfaces can never
  /// drift apart (or double-report with different numbers).
  std::string ess_warning() const;

  /// with_cache_stats appends the replay-cache totals; the default output is
  /// byte-identical to pre-cache builds.
  void print(std::ostream& os, bool with_cache_stats = false) const;
};

/// The Bernoulli observation the campaign-level sequential test consumes:
/// a run violates its property when it failed outright (watchdog trip,
/// unrecovered error) or missed at least one deadline.
bool run_violates(const CampaignRunResult& r);

/// Half-width of the normal-approximation 95% CI of a sample mean.
double mean_ci95(const Summary& s);

/// Execution options for campaign drivers. The default is the legacy
/// sequential path (no pool, runs execute on the calling thread); threads
/// > 1 runs the seeds on a scperf::ThreadPool with every run writing into
/// its pre-sized result slot, so results order, report fields and CSV bytes
/// are identical for ANY thread count. The run function must then be
/// thread-safe: build everything per-run (one Simulator/Estimator/scenario/
/// CaptureRegistry per call) and share nothing mutable between calls — the
/// concurrency contract of DESIGN.md §7.
struct CampaignOptions {
  std::size_t threads = 0;  ///< 0 or 1 = sequential on the calling thread
  std::size_t chunk = 1;    ///< consecutive seeds claimed by a worker at once

  // ---- durability (crash-consistent run journal, see trace/journal.hpp) ----

  /// Non-empty enables journaling: every completed seed is appended to this
  /// file the moment it finishes, so a crashed campaign loses at most the
  /// in-flight runs. CampaignSweep derives one journal per cell from this
  /// path ("<path>.<mapping>.<scenario>").
  std::string journal_path;
  /// With resume set and an existing journal at journal_path, recorded runs
  /// are replayed bit-exactly into their slots and only the missing seeds
  /// re-run — report()/write_csv() are byte-identical to an uninterrupted
  /// campaign for any thread count. The journal header must match this
  /// campaign (base seed, run count, scenario_digest, tag) or run() throws
  /// minisc::SimError(kBadConfig). A missing journal file starts fresh.
  bool resume = false;
  /// Fault-model fingerprint stored in the journal header and checked on
  /// resume (scfault::config_digest; 0 = unchecked).
  std::uint64_t scenario_digest = 0;
  /// Free-form identity tag stored/checked alongside the digest.
  std::string journal_tag;
  /// fsync the journal every this many records (1 = every record; batching
  /// amortises the sync cost, at risk of losing only the unsynced tail to a
  /// host power cut — a killed *process* loses nothing).
  std::size_t journal_flush_every = 8;

  // ---- shard identity (journal header v2; set by trace/shard.hpp) ----
  //
  // A sharded fleet campaign runs this campaign as shard `shard_index` of
  // `shard_count`, covering global run indices [shard_begin, shard_begin +
  // n) of a `total_runs`-run campaign. The identity is pinned in the
  // journal header and checked on resume — except worker_id, which records
  // the journal's *creator* and is exempt so a surviving worker can adopt
  // and extend a dead worker's journal. The defaults are the degenerate
  // unsharded identity; plain campaigns never need to touch these.
  std::uint64_t shard_index = 0;
  std::uint64_t shard_count = 1;
  std::uint64_t shard_begin = 0;
  std::uint64_t total_runs = 0;  ///< 0 = the n passed to run()
  std::string worker_id;

  // ---- per-run retry and timeout budgets ----

  /// Attempts per seed: transient SimErrors (minisc::is_transient) retry up
  /// to this many times; 1 (the default) preserves the fail-on-first-error
  /// behaviour. Permanent errors never retry.
  std::size_t max_attempts = 1;
  /// Base host backoff before retry k, growing as base * 2^(k-1) and capped
  /// at retry_backoff_max_ms, scaled by a deterministic jitter factor in
  /// [0.75, 1.25) derived from (seed, attempt) — never ambient randomness,
  /// so retries cannot perturb reproducibility. 0 retries immediately.
  std::uint64_t retry_backoff_ms = 0;
  std::uint64_t retry_backoff_max_ms = 1000;
  /// Per-run wall-clock budget, enforced via minisc::RunBudgetScope by any
  /// Simulator the run function builds: a hung seed trips a kWallClockBudget
  /// SimError (transient, hence retried) and becomes a failed-with-timeout
  /// record instead of stalling the campaign. 0 = unlimited.
  std::uint64_t run_wall_clock_ms = 0;

  // ---- sequential model checking (trace/smc.hpp) ----

  /// Engaged (smc.engaged(), i.e. delta > 0) turns the n passed to run()
  /// into a *budget*: seeds are issued in windows of smc.window runs and
  /// the sequential test is evaluated between windows in seed order over
  /// the completed slots — so the campaign stops issuing seeds as soon as
  /// the verdict "P(run violates) <= threshold" is decided, with the
  /// stopping seed and every report/CSV byte identical for any thread
  /// count. The verdict lands in report() (smc fields), in write_csv()
  /// (a leading '#' summary line) and — when journaling — in a journal
  /// decision record that makes the early-stopped journal resumable (a
  /// resume replays the decision and runs nothing) and mergeable.
  /// Incompatible with sharded campaigns (shard_count > 1): the sequential
  /// decision needs the campaign's global seed order; shard a sweep
  /// instead, where every cell is a whole campaign.
  SmcSpec smc;
};

/// Resilience-campaign driver: runs one seeded experiment N times and
/// aggregates deadline-miss rate, makespan distribution and recovery
/// latency. The run function builds a fresh Simulator/Estimator/scenario
/// from the seed, simulates, and returns its measurements; a minisc::SimError
/// escaping it (e.g. a watchdog trip in a non-resilient mapping) is caught
/// and recorded as a failed run rather than aborting the campaign — a run
/// that hangs *is* a data point.
///
/// For rare-fault regimes, build the run function against a *biased*
/// scenario (inflated fault probabilities) and fill in log_weight with the
/// likelihood ratio of the nominal model (scfault::channel_log_lr): the
/// report then carries the unbiased weighted miss-rate estimate with its
/// effective sample size. With no weights set, everything reduces to naive
/// Monte Carlo.
class FaultCampaign {
 public:
  using RunFn = std::function<CampaignRunResult(std::uint64_t seed)>;

  explicit FaultCampaign(RunFn fn) : fn_(std::move(fn)) {}

  /// Builds a campaign directly from recorded results — the merge path:
  /// sctrace::merge_journals folds shard journals into the global result
  /// vector and this constructor makes report()/write_csv() available on
  /// it, byte-identical to the single-process campaign that would have
  /// produced the same runs. run() on such a campaign throws
  /// minisc::SimError(kBadConfig): there is no run function to execute.
  explicit FaultCampaign(std::vector<CampaignRunResult> results)
      : results_(std::move(results)) {}

  /// Runs seeds base_seed .. base_seed + n - 1. With opts.threads > 1 the
  /// seeds run on a thread pool; every seed's result lands in its own slot,
  /// so results()/report()/write_csv() are byte-identical to the sequential
  /// path regardless of thread count. A minisc::SimError thrown by any run
  /// is recorded as a failed run in either mode — after opts.max_attempts
  /// tries with deterministic backoff when the error is transient
  /// (minisc::is_transient) — and opts.run_wall_clock_ms converts a hung
  /// seed into a failed-with-timeout record. The one SimError exempt from
  /// recording is kIoError (full disk, dying device): an infrastructure
  /// failure is not a property of the seed, so it propagates out of run()
  /// instead of biasing the statistics — fleet workers (trace/shard.hpp)
  /// catch it and quarantine the shard. Any other exception propagates
  /// (parallel mode finishes in-flight runs first and leaves unreached slots
  /// default-constructed).
  ///
  /// With opts.journal_path set, every finished seed is appended to a
  /// crash-consistent journal (trace/journal.hpp); with opts.resume, runs
  /// recorded by an interrupted campaign replay bit-exactly from the journal
  /// and only the missing seeds execute — report() and write_csv() are
  /// byte-identical to an uninterrupted campaign for any thread count.
  void run(std::uint64_t base_seed, std::size_t n,
           const CampaignOptions& opts = {});

  const std::vector<CampaignRunResult>& results() const { return results_; }
  CampaignReport report() const;

  /// The sequential verdict of the last run() with an engaged smc spec
  /// (nullptr otherwise). report() carries a copy in its smc fields.
  const SmcVerdict* smc_verdict() const {
    return smc_verdict_ ? &*smc_verdict_ : nullptr;
  }
  const SmcSpec& smc_spec() const { return smc_spec_; }

  /// Attaches a recorded verdict to a merge-constructed campaign (the
  /// journal decision record recovered by sctrace::merge_journals /
  /// merge_sweep_dir), so report()/write_csv() reproduce the early-stopped
  /// campaign's bytes exactly.
  void set_smc_verdict(const SmcSpec& spec, const SmcVerdict& verdict) {
    smc_spec_ = spec;
    smc_verdict_ = verdict;
  }

  /// One row per run: seed, completed, makespan, deadlines, faults, weight,
  /// energy, hash. with_cache_stats appends the per-run replay-cache
  /// columns (hits, misses, bypassed, cycles saved); the default columns are
  /// byte-identical to pre-cache builds. A campaign with a sequential
  /// verdict prefixes one '#' summary line (method, outcome, samples used,
  /// statistic, bound) so the decision travels with the per-run data.
  void write_csv(std::ostream& os, bool with_cache_stats = false) const;

 private:
  void run_sequential(std::uint64_t base_seed, std::size_t n,
                      const CampaignOptions& opts, std::size_t offset,
                      class JournalWriter* journal,
                      const std::vector<std::size_t>& todo);

  RunFn fn_;
  std::vector<CampaignRunResult> results_;
  SmcSpec smc_spec_;
  std::optional<SmcVerdict> smc_verdict_;
};

// ---- adaptive importance sampling ------------------------------------------

/// Pilot-batch auto-tuning of the importance-sampling bias factor: instead
/// of hand-picking a constant, probe candidate factors with small pilot
/// campaigns and keep the most aggressive one whose Kish ESS fraction still
/// meets `target_ess_fraction` — biases that explore a different region
/// than the nominal model collapse the ESS, and the pilot sees that before
/// the real campaign wastes its budget on it.
struct AdaptiveBiasOptions {
  /// Keep ESS / pilot_runs at or above this (0 < target <= 1).
  double target_ess_fraction = 0.5;
  /// Seeds per pilot probe. Small on purpose: the pilot's job is to rank
  /// factors, not to estimate anything.
  std::size_t pilot_runs = 32;
  double min_factor = 1.0;
  double max_factor = 64.0;
  /// Log-space bisection steps between min and max factor.
  std::size_t iterations = 6;
};

struct AdaptiveBiasResult {
  /// The chosen factor: the largest probed factor meeting the target (or
  /// min_factor when even that misses it — the pilot cannot do better).
  double factor = 1.0;
  /// Achieved ESS fraction of the chosen factor's pilot batch.
  double ess_fraction = 1.0;
  /// Total pilot seeds spent across all probes.
  std::size_t pilot_runs = 0;
  /// Every (factor, ess_fraction) probed, in probe order.
  std::vector<std::pair<double, double>> trace;
};

/// Runs the pilot search. `make_run(factor)` must return a run function
/// that simulates under the factor-inflated fault model and fills
/// log_weight against the nominal one (e.g. via scfault::scale_fault_bias +
/// channel_log_lr/scenario_log_lr). Deterministic: probes use the fixed
/// seeds [pilot_seed, pilot_seed + pilot_runs), so the chosen factor is a
/// pure function of (make_run, pilot_seed, opts).
AdaptiveBiasResult tune_bias_factor(
    const std::function<FaultCampaign::RunFn(double)>& make_run,
    std::uint64_t pilot_seed, const AdaptiveBiasOptions& opts = {});

/// Mapping × scenario campaign sweep: the grid-level driver the paper's
/// design-space exploration needs once faults enter the picture. For every
/// (mapping, scenario) pair the factory returns a seeded run function (the
/// same shape FaultCampaign takes); the sweep runs a full campaign per cell
/// and lays the reports out as a grid — which mapping stays schedulable
/// under which fault regime.
class CampaignSweep {
 public:
  struct Cell {
    std::string mapping;
    std::string scenario;
    CampaignReport report;
  };

  using Factory = std::function<FaultCampaign::RunFn(
      const std::string& mapping, const std::string& scenario)>;

  CampaignSweep(std::vector<std::string> mappings,
                std::vector<std::string> scenarios, Factory factory)
      : mappings_(std::move(mappings)),
        scenarios_(std::move(scenarios)),
        factory_(std::move(factory)) {}

  /// Builds a sweep directly from recorded cells — the fleet-merge path:
  /// sctrace::merge_sweep_dir folds per-cell journals into Cell reports and
  /// this constructor makes print()/write_csv() available on them,
  /// byte-identical to the single-process sweep that would have produced the
  /// same cells. A missing (mapping, scenario) pair renders as '-' in the
  /// grid, which is how a degraded partial merge marks its holes. run() on
  /// such a sweep throws minisc::SimError(kBadConfig): there is no factory.
  CampaignSweep(std::vector<std::string> mappings,
                std::vector<std::string> scenarios, std::vector<Cell> cells)
      : mappings_(std::move(mappings)),
        scenarios_(std::move(scenarios)),
        cells_(std::move(cells)) {}

  /// Runs every cell's campaign with the same base seed and run count —
  /// common random numbers across cells, so cell differences are design
  /// differences, not sampling noise. Cells execute in grid order; within a
  /// cell the seeds are parallelised per `opts` (grid layout, reports and
  /// CSV are thread-count-invariant, like FaultCampaign::run).
  void run(std::uint64_t base_seed, std::size_t n,
           const CampaignOptions& opts = {});

  const std::vector<Cell>& cells() const { return cells_; }
  const CampaignReport* cell(const std::string& mapping,
                             const std::string& scenario) const;

  /// Miss-rate grid: one row per mapping, one column per scenario.
  void print(std::ostream& os) const;
  /// One row per cell: mapping, scenario, and the headline report fields.
  /// with_cache_stats appends the cell's replay-cache totals so a sweep can
  /// confirm the cache never engaged under fault scenarios.
  void write_csv(std::ostream& os, bool with_cache_stats = false) const;

 private:
  std::vector<std::string> mappings_;
  std::vector<std::string> scenarios_;
  Factory factory_;
  std::vector<Cell> cells_;
};

}  // namespace sctrace
