#include "trace/shard.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <utility>

#include "kernel/error.hpp"

namespace sctrace {
namespace {

using minisc::SimError;

/// Host I/O failures on lease/manifest files are infrastructure errors, not
/// simulation outcomes: kIoError, non-transient, carrying the errno text —
/// same classification as journal appends (trace/journal.cpp).
[[noreturn]] void throw_io(const std::string& path, const char* op) {
  throw SimError(SimError::Kind::kIoError,
                 "'" + path + "': " + op + " failed: " + std::strerror(errno));
}

std::uint64_t wall_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Lease mtime in the same epoch as wall_now_ms. Returns false if the file
/// vanished (claimed-then-released, or stolen) between the caller's checks.
bool lease_mtime_ms(const std::string& path, std::uint64_t* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  *out = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000ull +
         static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000ull;
  return true;
}

bool file_exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// The staleness rule, clock-skew edge included: a lease is alive only when
/// its heartbeat mtime is within one TTL of now in EITHER direction. An
/// mtime more than a TTL in the future (restored snapshot, a clock that
/// once lied forward) is not being refreshed by anyone either — treating it
/// as alive would make the shard unadoptable until the wall clock catches
/// up, which can be never.
bool lease_alive(std::uint64_t mtime_ms, std::uint64_t now_ms,
                 std::uint64_t ttl_ms) {
  return now_ms < mtime_ms + ttl_ms && mtime_ms < now_ms + ttl_ms;
}

/// Whole-file read; "" on any error (treated as not-ours / unreadable).
std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Structured lease content. The raw fallback (no "owner " prefix) keeps
/// pre-counter leases and hand-written test fixtures parseable: the whole
/// content is the owner, zero adoptions, no recorded error.
LeaseInfo parse_lease(const std::string& content) {
  LeaseInfo info;
  if (content.compare(0, 6, "owner ") != 0) {
    info.owner = content;
    return info;
  }
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.compare(0, 6, "owner ") == 0) {
      info.owner = line.substr(6);
    } else if (line.compare(0, 10, "adoptions ") == 0) {
      info.adoptions = std::strtoull(line.c_str() + 10, nullptr, 10);
    } else if (line.compare(0, 6, "error ") == 0) {
      info.error = line.substr(6);
    }
    // Unknown keys (e.g. "quarantined-by") are ignored: tombstones carry
    // extra provenance that older readers can skip.
  }
  return info;
}

/// Error texts live on one line of the lease file; collapse any newlines.
std::string one_line(std::string s) {
  for (char& c : s) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return s;
}

std::string format_lease(const std::string& owner, std::uint64_t adoptions,
                         const std::string& error) {
  std::string s = "owner " + owner + "\nadoptions " +
                  std::to_string(adoptions) + "\n";
  if (!error.empty()) s += "error " + one_line(error) + "\n";
  return s;
}

/// O_EXCL lease creation — the atomic "exactly one winner" claim. Returns
/// false when the path already exists (lost the race); throws on real I/O
/// failure. Content is fsynced so an adopter's ownership probe never reads
/// a torn lease.
bool create_lease_file(const std::string& path, const std::string& content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw_io(path, "open(O_EXCL)");
  }
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      throw_io(path, "write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io(path, "fsync");
  }
  ::close(fd);
  return true;
}

/// Write-then-rename: readers see the old content or the new, never a torn
/// mix. Used for lease error records and quarantine tombstones.
void write_file_atomic(const std::string& path, const std::string& content,
                       const std::string& tmp_tag) {
  const std::string tmp = path + ".tmp-" + tmp_tag;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io(tmp, "open");
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io(tmp, "write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io(tmp, "fsync");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io(path, "rename");
  }
}

/// The quarantine tombstone of a lease: "<unit>.lease" -> "<unit>.quarantined"
/// (matching shard_quarantine_path / cell_quarantine_path for the canonical
/// filenames; an unconventional lease path just gains the suffix).
std::string quarantine_path_for_lease(const std::string& lease_path) {
  const std::string suffix = ".lease";
  if (lease_path.size() > suffix.size() &&
      lease_path.compare(lease_path.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
    return lease_path.substr(0, lease_path.size() - suffix.size()) +
           ".quarantined";
  }
  return lease_path + ".quarantined";
}

std::string quarantine_summary(const LeaseInfo& info) {
  std::string s = "quarantined after " + std::to_string(info.adoptions) +
                  " adoptions (last owner '" + info.owner + "')";
  if (info.error.empty()) {
    s += "; no error recorded — the owner died without reporting one";
  } else {
    s += ": " + info.error;
  }
  return s;
}

[[noreturn]] void throw_conflict(const std::string& path,
                                 const std::string& why) {
  throw SimError(SimError::Kind::kLeaseConflict,
                 "shard lease '" + path + "': " + why);
}

[[noreturn]] void throw_quarantined(const std::string& lease_path,
                                    const std::string& detail) {
  throw SimError(SimError::Kind::kShardQuarantined,
                 "shard lease '" + lease_path + "': " + detail);
}

[[noreturn]] void throw_merge_bad(const std::string& what) {
  throw SimError(SimError::Kind::kBadConfig, "campaign merge: " + what);
}

[[noreturn]] void throw_merge_incomplete(const std::string& what) {
  throw SimError(SimError::Kind::kMergeIncomplete, "campaign merge: " + what);
}

}  // namespace

ShardRange shard_range(std::size_t shard, std::size_t shard_count,
                       std::size_t total_runs) {
  if (shard_count == 0 || shard >= shard_count) {
    throw SimError(SimError::Kind::kBadConfig,
                   "shard_range: shard " + std::to_string(shard) +
                       " out of range for " + std::to_string(shard_count) +
                       " shards");
  }
  const std::size_t base = total_runs / shard_count;
  const std::size_t rem = total_runs % shard_count;
  ShardRange r;
  r.begin = shard * base + std::min(shard, rem);
  r.end = r.begin + base + (shard < rem ? 1 : 0);
  return r;
}

std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::size_t shard_count) {
  return dir + "/shard_" + std::to_string(shard) + "_of_" +
         std::to_string(shard_count) + ".journal";
}

std::string shard_lease_path(const std::string& dir, std::size_t shard,
                             std::size_t shard_count) {
  return dir + "/shard_" + std::to_string(shard) + "_of_" +
         std::to_string(shard_count) + ".lease";
}

std::string shard_quarantine_path(const std::string& dir, std::size_t shard,
                                  std::size_t shard_count) {
  return dir + "/shard_" + std::to_string(shard) + "_of_" +
         std::to_string(shard_count) + ".quarantined";
}

std::string cell_journal_path(const std::string& dir, std::size_t cell,
                              std::size_t cell_count) {
  return dir + "/cell_" + std::to_string(cell) + "_of_" +
         std::to_string(cell_count) + ".journal";
}

std::string cell_lease_path(const std::string& dir, std::size_t cell,
                            std::size_t cell_count) {
  return dir + "/cell_" + std::to_string(cell) + "_of_" +
         std::to_string(cell_count) + ".lease";
}

std::string cell_quarantine_path(const std::string& dir, std::size_t cell,
                                 std::size_t cell_count) {
  return dir + "/cell_" + std::to_string(cell) + "_of_" +
         std::to_string(cell_count) + ".quarantined";
}

bool read_lease_info(const std::string& path, LeaseInfo* out) {
  if (!file_exists(path)) return false;
  const std::string content = read_whole_file(path);
  if (content.empty() && !file_exists(path)) return false;
  *out = parse_lease(content);
  return true;
}

// ---- ShardLease ----------------------------------------------------------

ShardLease::ShardLease(std::string path, std::string worker_id,
                       std::uint64_t ttl_ms, std::uint64_t heartbeat_ms,
                       std::uint64_t adoptions, std::string carried_error)
    : path_(std::move(path)),
      worker_id_(std::move(worker_id)),
      adoptions_(adoptions),
      error_(std::move(carried_error)) {
  std::uint64_t hb = heartbeat_ms != 0 ? heartbeat_ms : ttl_ms / 4;
  if (hb == 0) hb = 1;
  beat_ = std::thread([this, hb] { beat_loop(hb); });
}

ShardLease::~ShardLease() { release(); }

void ShardLease::beat_loop(std::uint64_t heartbeat_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, std::chrono::milliseconds(heartbeat_ms),
                     [this] { return stop_; })) {
      break;
    }
    lk.unlock();
    // Ownership probe before the refresh: if the file no longer names this
    // worker (adopted away, or released by an adopter that finished), stop
    // beating — refreshing someone else's lease would keep a shard we no
    // longer own looking alive.
    if (parse_lease(read_whole_file(path_)).owner != worker_id_) {
      lost_.store(true, std::memory_order_release);
      lk.lock();
      break;
    }
    if (::utimensat(AT_FDCWD, path_.c_str(), nullptr, 0) != 0) {
      // A heartbeat that cannot touch its own lease is an infrastructure
      // failure (EIO, ENOSPC on some filesystems, a yanked mount). Record
      // the errno text — the fleet loop surfaces it as SimError(kIoError)
      // between runs — and keep trying: the flag is sticky either way.
      const std::string err = "lease heartbeat on '" + path_ +
                              "': utimensat failed: " + std::strerror(errno);
      lk.lock();
      if (io_error_.empty()) io_error_ = err;
      continue;
    }
    lk.lock();
  }
}

std::string ShardLease::io_error() const {
  std::lock_guard<std::mutex> lk(mu_);
  return io_error_;
}

void ShardLease::record_error(const std::string& error) {
  // Ownership guard: if the lease was already adopted away (we were paused
  // past the TTL), the file belongs to the adopter — overwriting it would
  // knock a live worker off the shard. The remaining TOCTOU window is
  // harmless: the displaced adopter sees a foreign owner on its next
  // heartbeat, aborts via LeaseLostError, and re-claims; journal appends
  // are bit-identical either way (runs are pure functions of their seed).
  if (lost() || parse_lease(read_whole_file(path_)).owner != worker_id_) {
    lost_.store(true, std::memory_order_release);
    return;
  }
  error_ = one_line(error);
  write_file_atomic(path_, format_lease(worker_id_, adoptions_, error_),
                    worker_id_);
}

void ShardLease::stop_beat() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!stop_) {
      stop_ = true;
      cv_.notify_all();
    }
  }
  if (beat_.joinable()) beat_.join();
}

void ShardLease::release() {
  stop_beat();
  if (!released_) {
    released_ = true;
    // A lost lease belongs to its adopter now; only unlink our own.
    if (!lost() && parse_lease(read_whole_file(path_)).owner == worker_id_) {
      ::unlink(path_.c_str());
    }
  }
}

void ShardLease::abandon() {
  stop_beat();
  // Deliberately NOT unlinking: the lease stays behind with its error
  // recorded and its heartbeat frozen, goes stale after one TTL, and the
  // next claimer adopts it — or quarantines it once the adoption counter
  // says every adopter has failed the same way.
  released_ = true;
}

std::unique_ptr<ShardLease> claim_shard_lease(const std::string& path,
                                              const std::string& worker_id,
                                              std::uint64_t lease_ttl_ms,
                                              std::uint64_t heartbeat_ms,
                                              std::uint64_t max_adoptions) {
  if (worker_id.empty() || worker_id.find('/') != std::string::npos) {
    throw SimError(SimError::Kind::kBadConfig,
                   "shard lease '" + path + "': worker id '" + worker_id +
                       "' must be non-empty and slash-free");
  }
  if (lease_ttl_ms == 0) {
    throw SimError(SimError::Kind::kBadConfig,
                   "shard lease '" + path + "': lease TTL must be > 0");
  }

  // Quarantine is terminal: a tombstoned shard is never claimable again.
  const std::string qpath = quarantine_path_for_lease(path);
  LeaseInfo qinfo;
  if (read_lease_info(qpath, &qinfo)) {
    throw_quarantined(path, quarantine_summary(qinfo));
  }

  // Fresh claim: O_EXCL picks exactly one winner among racing creators.
  if (create_lease_file(path, format_lease(worker_id, 0, ""))) {
    return std::unique_ptr<ShardLease>(
        new ShardLease(path, worker_id, lease_ttl_ms, heartbeat_ms,
                       /*adoptions=*/0, /*carried_error=*/""));
  }

  // Lease exists. Alive (heartbeat within the TTL window, clock skew
  // included) → conflict, transient: the owner is working the shard.
  std::uint64_t mtime = 0;
  if (!lease_mtime_ms(path, &mtime)) {
    throw_conflict(path, "vanished mid-claim (owner released or was adopted)");
  }
  const LeaseInfo info = parse_lease(read_whole_file(path));
  const std::uint64_t now = wall_now_ms();
  if (lease_alive(mtime, now, lease_ttl_ms)) {
    throw_conflict(path, "held by live worker '" + info.owner +
                             "' (heartbeat " +
                             std::to_string(now > mtime ? now - mtime : 0) +
                             " ms ago, TTL " + std::to_string(lease_ttl_ms) +
                             " ms)");
  }

  // Stale: the owner stopped heartbeating for a full TTL — dead worker (or
  // one that deliberately abandon()ed the shard after a permanent error).
  if (max_adoptions != 0 && info.adoptions >= max_adoptions) {
    // Poison shard: it has already been adopted max_adoptions times and
    // every adopter died or abandoned it. Quarantine instead of adopting —
    // rename has exactly one winner, so racing adopters cannot tombstone
    // twice (the losers get a transient conflict, then see the tombstone).
    if (::rename(path.c_str(), qpath.c_str()) != 0) {
      throw_conflict(path, "stale, but another worker adopted or "
                           "quarantined it first");
    }
    std::string tomb = "owner " + info.owner + "\nadoptions " +
                       std::to_string(info.adoptions) + "\nquarantined-by " +
                       worker_id + "\n";
    if (!info.error.empty()) tomb += "error " + one_line(info.error) + "\n";
    write_file_atomic(qpath, tomb, worker_id);
    throw_quarantined(path, quarantine_summary(parse_lease(tomb)));
  }

  // Adopt. Steal by rename: the source vanishes for everyone else, so
  // exactly one adopter proceeds past this line for a given incarnation.
  const std::string tomb = path + ".adopt-" + worker_id;
  if (::rename(path.c_str(), tomb.c_str()) != 0) {
    throw_conflict(path, "stale, but another worker adopted it first");
  }
  ::unlink(tomb.c_str());
  // Re-claim through the same O_EXCL gate, carrying the adoption counter
  // (incremented) and the dead worker's recorded error forward; a racing
  // *fresh* claimer that saw the path empty after our rename may
  // legitimately beat us here.
  if (!create_lease_file(
          path, format_lease(worker_id, info.adoptions + 1, info.error))) {
    throw_conflict(path, "stale lease stolen, but a new claimer re-created "
                         "it first");
  }
  return std::unique_ptr<ShardLease>(
      new ShardLease(path, worker_id, lease_ttl_ms, heartbeat_ms,
                     info.adoptions + 1, info.error));
}

// ---- shard completion / coverage probes ------------------------------------

std::size_t shard_journal_coverage(const std::string& path, std::size_t runs) {
  JournalContents contents;
  try {
    contents = read_journal(path);
  } catch (const SimError&) {
    return 0;  // missing, torn-header or corrupt: nothing recoverable yet
  }
  const std::size_t bound =
      runs != 0 ? runs : static_cast<std::size_t>(contents.header.runs);
  if (bound == 0) return 0;
  std::vector<bool> done(bound, false);
  std::size_t have = 0;
  for (const JournalRecord& rec : contents.records) {
    if (rec.index < bound && !done[rec.index]) {
      done[rec.index] = true;
      ++have;
    }
  }
  return have;
}

bool shard_journal_complete(const std::string& path, std::size_t runs) {
  if (runs == 0) return true;  // an empty shard has nothing to record
  JournalContents contents;
  try {
    contents = read_journal(path);
  } catch (const SimError&) {
    return false;  // missing, torn-header or corrupt: not complete
  }
  if (contents.header.version != JournalHeader::kVersion) return false;
  std::vector<bool> done(runs, false);
  std::size_t have = 0;
  for (const JournalRecord& rec : contents.records) {
    if (rec.index < runs && !done[rec.index]) {
      done[rec.index] = true;
      ++have;
    }
  }
  if (contents.decision) {
    // Early-stopped unit: the decision record marks the journal final at
    // `executed` runs — it is complete the moment every run it covers is
    // recorded, which is what makes a pruned sweep cell stop consuming
    // fleet budget (run_fleet skips complete units).
    const std::size_t executed = std::min(
        static_cast<std::size_t>(contents.decision->executed), runs);
    for (std::size_t i = 0; i < executed; ++i) {
      if (!done[i]) return false;
    }
    return true;
  }
  return have == runs;
}

// ---- generic fleet worker loop ---------------------------------------------

namespace {

/// One lease-claimable work unit of a fleet: a campaign shard or a sweep
/// cell. `opts` arrives fully prepared (journal path, identity tag, shard
/// header fields); the loop only stamps the worker id and resume flag.
struct FleetUnit {
  std::size_t index = 0;
  std::string name;  ///< for progress and error messages
  std::string journal;
  std::string lease;
  std::string quarantine;
  std::uint64_t base_seed = 0;  ///< first seed of this unit
  std::size_t runs = 0;
  CampaignOptions opts;
  FaultCampaign::RunFn fn;
};

/// The self-healing claim/run/adopt/quarantine loop shared by
/// run_sharded_campaign and run_sharded_sweep. Per pass over the units
/// (starting at the worker's preferred one, then roaming): skip tombstoned
/// and complete units, claim the rest, execute claimed ones as
/// journaled+resumed campaigns, and classify every failure —
///
///   - LeaseLostError: the shard was adopted away (we stalled past the
///     TTL); abort it, the adopter owns the journal now.
///   - kJournalCorrupt: heal — delete the damaged journal and re-run the
///     whole unit under the lease we hold (runs are pure functions of
///     their seeds, so the fresh journal is bit-identical).
///   - any other SimError (kIoError from journal/heartbeat I/O, config
///     mismatches, unhealable corruption): record the error in the lease
///     and abandon it — the lease goes stale, another worker adopts, and
///     the adoption counter quarantines the unit once every adopter has
///     failed. The worker stays alive for the rest of the fleet.
///
/// Exits when every unit is complete or quarantined (fleet_done), or when
/// max_wait_ms expires while peers hold the remaining leases.
ShardProgress run_fleet(const std::vector<FleetUnit>& units,
                        const ShardOptions& shard,
                        const std::string& worker_id) {
  ShardProgress prog;
  std::vector<char> quarantined(units.size(), 0);
  const auto started = std::chrono::steady_clock::now();
  const std::size_t prefer = units.empty() ? 0 : shard.shard_index % units.size();
  for (;;) {
    bool all_done = true;
    bool progressed = false;
    for (std::size_t k = 0; k < units.size(); ++k) {
      // Start at our preferred unit and roam upward: a fleet spreads across
      // the units instead of stampeding the same lease.
      const std::size_t i = (prefer + k) % units.size();
      const FleetUnit& unit = units[i];
      if (unit.runs == 0) continue;  // empty unit: trivially complete
      if (quarantined[i] || file_exists(unit.quarantine)) {
        quarantined[i] = 1;  // terminal: skip without claiming
        continue;
      }
      if (shard_journal_complete(unit.journal, unit.runs)) continue;
      all_done = false;

      std::unique_ptr<ShardLease> lease;
      try {
        lease = claim_shard_lease(unit.lease, worker_id, shard.lease_ttl_ms,
                                  shard.heartbeat_ms, shard.max_adoptions);
      } catch (const SimError& e) {
        if (e.kind() == SimError::Kind::kLeaseConflict) {
          // Transient by contract: a live peer owns the unit (or won an
          // adoption race). The outer pass-and-poll loop is the backoff.
          ++prog.lease_conflicts;
          continue;
        }
        if (e.kind() == SimError::Kind::kShardQuarantined) {
          // Terminal by contract — whether this claim performed the
          // quarantine or merely found the tombstone, the unit is done
          // failing and the fleet moves on.
          quarantined[i] = 1;
          progressed = true;
          continue;
        }
        throw;
      }

      CampaignOptions co = unit.opts;
      co.journal_path = unit.journal;
      co.resume = true;  // adoption = resuming the dead worker's journal
      co.worker_id = worker_id;

      std::atomic<std::size_t> executed{0};
      ShardLease* held = lease.get();
      const FaultCampaign::RunFn wrapped =
          [&unit, &executed, held](std::uint64_t seed) {
            if (held->lost()) {
              throw LeaseLostError(
                  "shard lease '" + held->path() + "' was adopted away from '" +
                  held->worker_id() +
                  "' (heartbeat stalled past the TTL); aborting the shard — "
                  "its adopter owns the journal now");
            }
            const std::string io = held->io_error();
            if (!io.empty()) {
              // Heartbeat I/O failure: surface it as the structured
              // infrastructure error it is. kIoError is exempt from
              // failed-run recording (FaultCampaign::run rethrows it), so
              // it lands in the abandon path below, not in the statistics.
              throw SimError(SimError::Kind::kIoError, io);
            }
            executed.fetch_add(1, std::memory_order_relaxed);
            return unit.fn(seed);
          };

      const auto run_unit = [&] {
        FaultCampaign campaign(wrapped);
        campaign.run(unit.base_seed, unit.runs, co);
      };
      const auto abandon_with = [&](const SimError& e) {
        // Permanent failure executing this unit. Record it and walk away:
        // the lease goes stale with the error attached, adoption keeps the
        // fleet trying, the adoption counter caps how long.
        lease->record_error(e.what());
        lease->abandon();
        ++prog.shards_abandoned;
      };

      bool completed_unit = false;
      try {
        run_unit();
        completed_unit = true;
      } catch (const LeaseLostError&) {
        ++prog.shards_lost;
      } catch (const SimError& e) {
        if (e.kind() == SimError::Kind::kJournalCorrupt) {
          // The journal is damaged beyond the torn-tail tolerance (torn
          // header, bit rot). We hold the exclusive lease and every run is
          // a pure function of its seed, so re-running the whole unit
          // reproduces bit-identical records: delete and start fresh.
          std::remove(unit.journal.c_str());
          try {
            run_unit();
            completed_unit = true;
          } catch (const LeaseLostError&) {
            ++prog.shards_lost;
          } catch (const SimError& e2) {
            abandon_with(e2);
          }
        } else {
          abandon_with(e);
        }
      }
      prog.runs_executed += executed.load(std::memory_order_relaxed);
      if (completed_unit) {
        ++prog.shards_run;
        if (lease->adopted()) ++prog.shards_adopted;
        progressed = true;
        lease->release();
      }
    }

    if (all_done) {
      prog.fleet_done = true;
      break;
    }
    if (!progressed) {
      // Every remaining unit is leased by a live peer (or was lost to an
      // adopter). Wait for the fleet — or for a peer's lease to go stale.
      if (shard.max_wait_ms != 0) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (waited >= 0 &&
            static_cast<std::uint64_t>(waited) >= shard.max_wait_ms) {
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(shard.poll_ms));
    }
  }
  for (char q : quarantined) {
    if (q) ++prog.shards_quarantined;
  }
  prog.campaign_complete = prog.fleet_done && prog.shards_quarantined == 0;
  return prog;
}

std::string default_worker_id(const ShardOptions& shard) {
  return !shard.worker_id.empty()
             ? shard.worker_id
             : "w" + std::to_string(shard.shard_index) + ".pid" +
                   std::to_string(static_cast<long>(::getpid()));
}

}  // namespace

ShardProgress run_sharded_campaign(const FaultCampaign::RunFn& fn,
                                   std::uint64_t base_seed,
                                   std::size_t total_runs,
                                   const ShardOptions& shard,
                                   const CampaignOptions& opts) {
  if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_campaign: worker index " +
                       std::to_string(shard.shard_index) +
                       " out of range for " +
                       std::to_string(shard.shard_count) + " shards");
  }
  if (shard.dir.empty()) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_campaign: shard directory must be set");
  }
  if (opts.smc.engaged() && shard.shard_count > 1) {
    throw SimError(
        SimError::Kind::kBadConfig,
        "run_sharded_campaign: sequential model checking needs the "
        "campaign's global seed order, which a sharded campaign splits — "
        "run the smc campaign unsharded, or shard a sweep (cells are whole "
        "campaigns and prune independently)");
  }
  std::filesystem::create_directories(shard.dir);

  std::vector<FleetUnit> units;
  units.reserve(shard.shard_count);
  for (std::size_t i = 0; i < shard.shard_count; ++i) {
    const ShardRange range = shard_range(i, shard.shard_count, total_runs);
    FleetUnit u;
    u.index = i;
    u.name = "shard " + std::to_string(i) + "/" +
             std::to_string(shard.shard_count);
    u.journal = shard_journal_path(shard.dir, i, shard.shard_count);
    u.lease = shard_lease_path(shard.dir, i, shard.shard_count);
    u.quarantine = shard_quarantine_path(shard.dir, i, shard.shard_count);
    u.base_seed = base_seed + range.begin;
    u.runs = range.size();
    u.opts = opts;
    u.opts.shard_index = i;
    u.opts.shard_count = shard.shard_count;
    u.opts.shard_begin = range.begin;
    u.opts.total_runs = total_runs;
    u.fn = fn;
    units.push_back(std::move(u));
  }
  return run_fleet(units, shard, default_worker_id(shard));
}

// ---- sharded sweeps --------------------------------------------------------

namespace {

std::string manifest_path(const std::string& dir) {
  return dir + "/sweep.manifest";
}

constexpr const char* kManifestMagic = "scperf-sweep v1";

std::string format_manifest(const SweepManifest& m) {
  std::string s = std::string(kManifestMagic) + "\n";
  s += "base_seed " + std::to_string(m.base_seed) + "\n";
  s += "runs " + std::to_string(m.runs) + "\n";
  s += "digest " + std::to_string(m.scenario_digest) + "\n";
  s += "tag " + m.tag + "\n";
  for (const std::string& name : m.mappings) s += "mapping " + name + "\n";
  for (const std::string& name : m.scenarios) s += "scenario " + name + "\n";
  return s;
}

[[noreturn]] void throw_manifest_corrupt(const std::string& path,
                                         const std::string& why) {
  throw SimError(SimError::Kind::kJournalCorrupt,
                 "sweep manifest '" + path + "': " + why);
}

SweepManifest parse_manifest(const std::string& path,
                             const std::string& content) {
  SweepManifest m;
  std::size_t pos = 0;
  std::size_t line_no = 0;
  bool saw_magic = false;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line_no == 1) {
      if (line != kManifestMagic) {
        throw_manifest_corrupt(path, "bad magic line '" + line + "'");
      }
      saw_magic = true;
      continue;
    }
    if (line.compare(0, 10, "base_seed ") == 0) {
      m.base_seed = std::strtoull(line.c_str() + 10, nullptr, 10);
    } else if (line.compare(0, 5, "runs ") == 0) {
      m.runs = static_cast<std::size_t>(
          std::strtoull(line.c_str() + 5, nullptr, 10));
    } else if (line.compare(0, 7, "digest ") == 0) {
      m.scenario_digest = std::strtoull(line.c_str() + 7, nullptr, 10);
    } else if (line.compare(0, 4, "tag ") == 0) {
      m.tag = line.substr(4);
    } else if (line == "tag") {
      m.tag.clear();
    } else if (line.compare(0, 8, "mapping ") == 0) {
      m.mappings.push_back(line.substr(8));
    } else if (line.compare(0, 9, "scenario ") == 0) {
      m.scenarios.push_back(line.substr(9));
    } else if (!line.empty()) {
      throw_manifest_corrupt(path, "unrecognised line '" + line + "'");
    }
  }
  if (!saw_magic || m.mappings.empty() || m.scenarios.empty()) {
    throw_manifest_corrupt(path, "missing magic, mappings or scenarios");
  }
  return m;
}

/// First-writer-wins manifest creation: the content is written to a private
/// tmp file (fsynced) and link()ed into place — link fails with EEXIST if a
/// manifest already exists, and because the final name appears atomically a
/// losing worker can never read a torn manifest.
bool create_manifest_file(const std::string& path, const std::string& content,
                          const std::string& tmp_tag) {
  const std::string tmp = path + ".tmp-" + tmp_tag;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_io(tmp, "open");
  std::size_t off = 0;
  while (off < content.size()) {
    const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io(tmp, "write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io(tmp, "fsync");
  }
  ::close(fd);
  const int rc = ::link(tmp.c_str(), path.c_str());
  const int saved_errno = errno;
  ::unlink(tmp.c_str());
  if (rc == 0) return true;
  if (saved_errno == EEXIST) return false;
  errno = saved_errno;
  throw_io(path, "link");
}

}  // namespace

std::string SweepManifest::cell_tag(std::size_t cell) const {
  const std::string& m = cell_mapping(cell);
  const std::string& s = cell_scenario(cell);
  // Same derivation as CampaignSweep::run's per-cell journal tag, so fleet
  // cell journals pin the identity a single-process sweep would pin.
  return tag.empty() ? m + "/" + s : tag + ":" + m + "/" + s;
}

SweepManifest read_sweep_manifest(const std::string& dir) {
  const std::string path = manifest_path(dir);
  if (!file_exists(path)) {
    throw SimError(SimError::Kind::kMergeIncomplete,
                   "sweep manifest '" + path +
                       "' does not exist — no sweep fleet ever started in "
                       "this directory");
  }
  return parse_manifest(path, read_whole_file(path));
}

ShardProgress run_sharded_sweep(const std::vector<std::string>& mappings,
                                const std::vector<std::string>& scenarios,
                                const CampaignSweep::Factory& factory,
                                std::uint64_t base_seed, std::size_t n,
                                const ShardOptions& shard,
                                const CampaignOptions& opts) {
  if (mappings.empty() || scenarios.empty()) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_sweep: the mapping x scenario grid must be "
                   "non-empty");
  }
  if (!factory) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_sweep: no cell factory given");
  }
  if (shard.dir.empty()) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_sweep: shard directory must be set");
  }
  std::filesystem::create_directories(shard.dir);
  const std::string worker_id = default_worker_id(shard);

  // Pin (or verify) the grid identity before touching any cell: every
  // worker of one fleet must agree on the grid, the seed, the run count and
  // the fault-model digest, or its cell journals would silently disagree
  // with everyone else's. Exactly one worker creates the manifest; the rest
  // compare and refuse on any difference.
  SweepManifest manifest;
  manifest.base_seed = base_seed;
  manifest.runs = n;
  manifest.scenario_digest = opts.scenario_digest;
  manifest.tag = opts.journal_tag;
  manifest.mappings = mappings;
  manifest.scenarios = scenarios;
  if (!create_manifest_file(manifest_path(shard.dir),
                            format_manifest(manifest), worker_id)) {
    const SweepManifest pinned = read_sweep_manifest(shard.dir);
    if (format_manifest(pinned) != format_manifest(manifest)) {
      throw SimError(
          SimError::Kind::kBadConfig,
          "run_sharded_sweep: this worker's sweep (seed " +
              std::to_string(base_seed) + ", " + std::to_string(n) +
              " runs, " + std::to_string(mappings.size()) + "x" +
              std::to_string(scenarios.size()) + " grid, digest " +
              std::to_string(opts.scenario_digest) +
              ") disagrees with the manifest pinned in '" + shard.dir +
              "' — a worker from a different sweep would corrupt the fleet's "
              "cells");
    }
  }

  const std::size_t cells = manifest.cells();
  std::vector<FleetUnit> units;
  units.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    const std::string& m = manifest.cell_mapping(c);
    const std::string& s = manifest.cell_scenario(c);
    FleetUnit u;
    u.index = c;
    u.name = m + "/" + s;
    u.journal = cell_journal_path(shard.dir, c, cells);
    u.lease = cell_lease_path(shard.dir, c, cells);
    u.quarantine = cell_quarantine_path(shard.dir, c, cells);
    u.base_seed = base_seed;  // common random numbers across cells
    u.runs = n;
    u.opts = opts;
    u.opts.journal_tag = manifest.cell_tag(c);
    // Each cell is its own degenerate single-shard campaign: the cell
    // identity lives in the tag (and the filename), not the shard fields.
    u.opts.shard_index = 0;
    u.opts.shard_count = 1;
    u.opts.shard_begin = 0;
    u.opts.total_runs = n;
    u.fn = factory(m, s);
    units.push_back(std::move(u));
  }
  return run_fleet(units, shard, worker_id);
}

// ---- merge ----------------------------------------------------------------

MergedCampaign merge_journals(const std::vector<std::string>& paths,
                              const MergeOptions& opts) {
  if (paths.empty()) {
    throw_merge_bad("no shard journals given");
  }

  MergedCampaign out;
  std::vector<JournalContents> shards;
  shards.reserve(paths.size());
  for (const std::string& p : paths) shards.push_back(read_journal(p));

  // Identity checks. Every journal must be the current format (read_journal
  // already rejected unknown futures; v1 parses but cannot merge), and all
  // must agree on the campaign: digest, tag, base seed, total runs, layout.
  // These refusals hold in partial mode too — a mixed fleet is a *wrong*
  // fleet, not an unfinished one.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JournalHeader& h = shards[s].header;
    if (h.version != JournalHeader::kVersion) {
      throw SimError(
          SimError::Kind::kShardVersionMismatch,
          "campaign merge: shard journal '" + paths[s] + "' has format "
              "version " + std::to_string(h.version) +
              " but the merge requires version " +
              std::to_string(JournalHeader::kVersion) +
              " — journals from different releases refuse to mix");
    }
  }
  const JournalHeader& first = shards[0].header;
  out.scenario_digest = first.scenario_digest;
  out.tag = first.tag;
  out.shard_count = static_cast<std::size_t>(first.shard_count);
  out.runs = static_cast<std::size_t>(first.total_runs);
  out.base_seed = first.base_seed - first.shard_begin;

  std::vector<bool> shard_seen(out.shard_count, false);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JournalHeader& h = shards[s].header;
    if (h.scenario_digest != out.scenario_digest) {
      throw_merge_bad("shard journal '" + paths[s] +
                      "' has scenario digest " +
                      std::to_string(h.scenario_digest) + " but '" + paths[0] +
                      "' has " + std::to_string(out.scenario_digest) +
                      " — different fault models do not merge");
    }
    if (h.tag != out.tag) {
      throw_merge_bad("shard journal '" + paths[s] + "' has tag '" + h.tag +
                      "' but '" + paths[0] + "' has '" + out.tag + "'");
    }
    if (h.shard_count != out.shard_count || h.total_runs != out.runs) {
      throw_merge_bad("shard journal '" + paths[s] + "' is shard " +
                      std::to_string(h.shard_index) + "/" +
                      std::to_string(h.shard_count) + " of " +
                      std::to_string(h.total_runs) + " runs but '" + paths[0] +
                      "' declares " + std::to_string(out.shard_count) +
                      " shards of " + std::to_string(out.runs) +
                      " runs — mixed shard layouts do not merge");
    }
    if (h.base_seed - h.shard_begin != out.base_seed) {
      throw_merge_bad("shard journal '" + paths[s] +
                      "' implies campaign base seed " +
                      std::to_string(h.base_seed - h.shard_begin) + " but '" +
                      paths[0] + "' implies " + std::to_string(out.base_seed));
    }
    if (h.shard_index >= h.shard_count) {
      throw_merge_bad("shard journal '" + paths[s] + "' claims shard " +
                      std::to_string(h.shard_index) + " of only " +
                      std::to_string(h.shard_count));
    }
    const ShardRange want = shard_range(
        static_cast<std::size_t>(h.shard_index), out.shard_count, out.runs);
    if (h.shard_begin != want.begin || h.runs != want.size()) {
      throw_merge_bad("shard journal '" + paths[s] + "' covers [" +
                      std::to_string(h.shard_begin) + ", +" +
                      std::to_string(h.runs) + ") but shard " +
                      std::to_string(h.shard_index) + " of " +
                      std::to_string(out.shard_count) + " canonically covers [" +
                      std::to_string(want.begin) + ", +" +
                      std::to_string(want.size()) + ")");
    }
    if (shard_seen[static_cast<std::size_t>(h.shard_index)]) {
      // Ambiguity, not partial-ness: even a degraded merge cannot decide
      // which duplicate journal to trust.
      throw_merge_incomplete("shard " + std::to_string(h.shard_index) +
                             " appears twice ('" + paths[s] +
                             "') — ambiguous which journal to trust");
    }
    shard_seen[static_cast<std::size_t>(h.shard_index)] = true;
  }
  for (std::size_t i = 0; i < out.shard_count; ++i) {
    if (!shard_seen[i] && !shard_range(i, out.shard_count, out.runs).empty()) {
      if (!opts.allow_partial) {
        throw_merge_incomplete(
            "no journal for shard " + std::to_string(i) + " of " +
            std::to_string(out.shard_count) +
            " — a partial fleet merge would silently bias every campaign "
            "statistic; finish the campaign, or merge with allow_partial "
            "(--allow-partial) for an explicitly degraded report");
      }
      out.complete = false;
      out.missing_shards.push_back(i);
    }
  }

  // Sequential-verdict decisions. A decision record makes recorded-runs <
  // header total_runs legal: the campaign stopped issuing seeds once the
  // verdict crossed a boundary. FaultCampaign::run and run_sharded_campaign
  // both refuse SMC with shard_count > 1, so a decision in a multi-shard
  // fleet can only mean journal corruption or a hand-mixed layout — refuse.
  std::size_t expected_end = out.runs;
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s].decision) continue;
    if (out.shard_count > 1) {
      throw_merge_bad("shard journal '" + paths[s] +
                      "' carries a sequential-verdict decision record but "
                      "declares " + std::to_string(out.shard_count) +
                      " shards — sequential campaigns are single-shard, so "
                      "this journal is corrupt or hand-mixed");
    }
    out.decision = shards[s].decision;
    expected_end = std::min(
        static_cast<std::size_t>(out.decision->executed), out.runs);
  }

  // Fold records into global slots. Duplicate indices within a journal are
  // benign (a lease-TTL violation appends bit-identical records — runs are
  // deterministic); the last one wins, like journal resume.
  out.results.resize(out.runs);
  std::vector<bool> done(out.runs, false);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JournalHeader& h = shards[s].header;
    for (JournalRecord& rec : shards[s].records) {
      if (rec.index >= h.runs) {
        throw SimError(SimError::Kind::kJournalCorrupt,
                       "campaign merge: shard journal '" + paths[s] +
                           "': record index " + std::to_string(rec.index) +
                           " out of range (shard has " +
                           std::to_string(h.runs) + " runs)");
      }
      const std::size_t global =
          static_cast<std::size_t>(h.shard_begin) + rec.index;
      out.results[global] = std::move(rec.result);
      done[global] = true;
    }
  }
  // An early-stopped campaign only owes records for the runs it executed:
  // completeness (and the degraded-merge bookkeeping) is judged over
  // [0, expected_end), and the merged results are truncated to match so the
  // merge is byte-identical to the early-stopped single-process campaign.
  std::size_t missing = 0;
  std::size_t first_missing = 0;
  for (std::size_t i = 0; i < expected_end; ++i) {
    if (!done[i]) {
      if (missing == 0) first_missing = i;
      ++missing;
    }
  }
  if (missing > 0) {
    if (!opts.allow_partial) {
      throw_merge_incomplete(
          std::to_string(missing) + " of " + std::to_string(expected_end) +
          " runs have no record (first missing global index " +
          std::to_string(first_missing) +
          ") — finish the campaign (workers re-claim incomplete shards) "
          "before merging, or merge with allow_partial (--allow-partial) "
          "for an explicitly degraded report");
    }
    // Degraded merge: compact the recorded runs, keeping global seed order
    // so the result is deterministic for any worker interleaving.
    out.complete = false;
    out.missing_records = missing;
    std::vector<CampaignRunResult> compact;
    compact.reserve(expected_end - missing);
    for (std::size_t i = 0; i < expected_end; ++i) {
      if (done[i]) compact.push_back(std::move(out.results[i]));
    }
    out.results = std::move(compact);
  } else if (expected_end < out.results.size()) {
    out.results.resize(expected_end);
  }
  out.recorded_runs = out.results.size();
  return out;
}

MergedCampaign merge_shard_dir(const std::string& dir,
                               const MergeOptions& opts) {
  std::vector<std::pair<std::size_t, std::string>> found;
  std::vector<std::pair<std::size_t, std::string>> tombs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::size_t shard = 0, count = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "shard_%zu_of_%zu.journal%n", &shard,
                    &count, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size()) {
      found.emplace_back(shard, entry.path().string());
    }
    consumed = 0;
    if (std::sscanf(name.c_str(), "shard_%zu_of_%zu.quarantined%n", &shard,
                    &count, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size()) {
      tombs.emplace_back(shard, entry.path().string());
    }
  }
  if (ec) {
    throw_merge_bad("cannot scan shard directory '" + dir +
                    "': " + ec.message());
  }
  std::sort(tombs.begin(), tombs.end());
  if (!tombs.empty() && !opts.allow_partial) {
    throw_merge_incomplete(
        "shard " + std::to_string(tombs[0].first) + " is quarantined ('" +
        tombs[0].second + "') — a quarantined shard never completes; merge "
        "with allow_partial (--allow-partial) for an explicitly degraded "
        "report over the completed shards");
  }
  if (found.empty()) {
    std::string what = "no shard journals (shard_<i>_of_<N>.journal) in '" +
                       dir + "'";
    if (!tombs.empty()) {
      what += " (" + std::to_string(tombs.size()) +
              " quarantined tombstones, but nothing recorded to merge)";
    }
    throw_merge_incomplete(what);
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [shard, path] : found) paths.push_back(std::move(path));
  MergedCampaign out = merge_journals(paths, opts);
  for (auto& [shard, path] : tombs) {
    QuarantinedUnit q;
    q.index = shard;
    q.name = "shard " + std::to_string(shard) + "/" +
             std::to_string(out.shard_count);
    read_lease_info(path, &q.info);
    out.quarantined.push_back(std::move(q));
  }
  if (!out.quarantined.empty()) out.complete = false;
  return out;
}

// ---- sweep merge -----------------------------------------------------------

const char* to_string(CellState s) {
  switch (s) {
    case CellState::kComplete: return "complete";
    case CellState::kPartial: return "partial";
    case CellState::kMissing: return "missing";
    case CellState::kQuarantined: return "quarantined";
  }
  return "?";
}

MergedSweep merge_sweep_dir(const std::string& dir, const MergeOptions& opts) {
  MergedSweep out;
  out.manifest = read_sweep_manifest(dir);
  const std::size_t cells = out.manifest.cells();
  const std::size_t runs = out.manifest.runs;
  out.cells.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    MergedSweepCell& cell = out.cells[c];
    cell.index = c;
    cell.mapping = out.manifest.cell_mapping(c);
    cell.scenario = out.manifest.cell_scenario(c);
    cell.runs = runs;
    const std::string jpath = cell_journal_path(dir, c, cells);

    LeaseInfo qinfo;
    const bool is_quarantined =
        read_lease_info(cell_quarantine_path(dir, c, cells), &qinfo);
    if (is_quarantined) {
      cell.state = CellState::kQuarantined;
      cell.error = quarantine_summary(qinfo);
    }

    if (!file_exists(jpath)) {
      if (!is_quarantined) cell.state = CellState::kMissing;
      continue;
    }
    JournalContents jc;
    try {
      jc = read_journal(jpath);
    } catch (const SimError& e) {
      // Unreadable journal: salvage nothing from this cell, but a merge
      // probe must not abort the whole sweep over one torn header — the
      // cell simply reports as partial (or stays quarantined) with the
      // reader's complaint attached.
      if (!is_quarantined) {
        cell.state = CellState::kPartial;
        cell.error = e.what();
      }
      continue;
    }
    // Identity refusals hold even in partial mode: a cell journal that
    // disagrees with the manifest belongs to a different sweep.
    const JournalHeader& h = jc.header;
    if (h.version != JournalHeader::kVersion) {
      throw SimError(
          SimError::Kind::kShardVersionMismatch,
          "sweep merge: cell journal '" + jpath + "' has format version " +
              std::to_string(h.version) + " but the merge requires version " +
              std::to_string(JournalHeader::kVersion));
    }
    if (h.base_seed != out.manifest.base_seed ||
        h.runs != out.manifest.runs ||
        h.scenario_digest != out.manifest.scenario_digest ||
        h.tag != out.manifest.cell_tag(c)) {
      throw_merge_bad(
          "cell journal '" + jpath + "' (tag '" + h.tag + "', seed " +
          std::to_string(h.base_seed) + ", " + std::to_string(h.runs) +
          " runs, digest " + std::to_string(h.scenario_digest) +
          ") disagrees with the sweep manifest (tag '" +
          out.manifest.cell_tag(c) + "', seed " +
          std::to_string(out.manifest.base_seed) + ", " +
          std::to_string(out.manifest.runs) + " runs, digest " +
          std::to_string(out.manifest.scenario_digest) +
          ") — this journal belongs to a different sweep");
    }
    // A sequential-verdict decision shrinks what the cell owes: it executed
    // only `decision->executed` runs before the verdict crossed a boundary,
    // so completeness is judged over that prefix and cell.runs reports it.
    std::size_t cell_end = runs;
    if (jc.decision) {
      cell.decision = jc.decision;
      cell_end = std::min(
          static_cast<std::size_t>(jc.decision->executed), runs);
      cell.runs = cell_end;
    }
    std::vector<CampaignRunResult> slots(cell_end);
    std::vector<bool> done(cell_end, false);
    for (JournalRecord& rec : jc.records) {
      if (rec.index >= cell_end) continue;  // defensive; header pinned runs
      if (!done[rec.index]) ++cell.records;
      slots[rec.index] = std::move(rec.result);
      done[rec.index] = true;
    }
    if (cell.records == cell_end) {
      cell.results = std::move(slots);
      if (!is_quarantined) cell.state = CellState::kComplete;
    } else {
      // Compact the recorded runs in seed order — deterministic for any
      // worker interleaving, like the campaign-level partial merge.
      cell.results.reserve(cell.records);
      for (std::size_t i = 0; i < cell_end; ++i) {
        if (done[i]) cell.results.push_back(std::move(slots[i]));
      }
      if (!is_quarantined) cell.state = CellState::kPartial;
    }
  }

  std::size_t n_complete = 0;
  for (const MergedSweepCell& cell : out.cells) {
    if (cell.state == CellState::kComplete) ++n_complete;
  }
  out.complete = n_complete == cells;
  if (!out.complete && !opts.allow_partial) {
    for (const MergedSweepCell& cell : out.cells) {
      if (cell.state == CellState::kComplete) continue;
      throw_merge_incomplete(
          "sweep cell " + cell.mapping + "/" + cell.scenario + " is " +
          to_string(cell.state) + " (" + std::to_string(cell.records) +
          " of " + std::to_string(cell.runs) + " runs recorded; " +
          std::to_string(n_complete) + " of " + std::to_string(cells) +
          " cells complete) — finish the fleet, or merge with allow_partial "
          "(--allow-partial) for an explicitly degraded report");
    }
  }
  return out;
}

std::size_t MergedSweep::complete_cells() const {
  std::size_t n = 0;
  for (const MergedSweepCell& c : cells) {
    if (c.state == CellState::kComplete) ++n;
  }
  return n;
}

std::size_t MergedSweep::quarantined_cells() const {
  std::size_t n = 0;
  for (const MergedSweepCell& c : cells) {
    if (c.state == CellState::kQuarantined) ++n;
  }
  return n;
}

CampaignSweep MergedSweep::to_sweep() const {
  std::vector<CampaignSweep::Cell> out;
  out.reserve(cells.size());
  for (const MergedSweepCell& c : cells) {
    if (c.state != CellState::kComplete) continue;
    FaultCampaign campaign(c.results);
    if (c.decision) {
      campaign.set_smc_verdict(c.decision->spec, c.decision->verdict);
    }
    out.push_back(CampaignSweep::Cell{c.mapping, c.scenario,
                                      campaign.report()});
  }
  return CampaignSweep(manifest.mappings, manifest.scenarios, std::move(out));
}

void MergedSweep::print(std::ostream& os) const {
  if (!complete) {
    std::size_t n_partial = 0, n_missing = 0;
    for (const MergedSweepCell& c : cells) {
      if (c.state == CellState::kPartial) ++n_partial;
      if (c.state == CellState::kMissing) ++n_missing;
    }
    os << "DEGRADED sweep merge: " << complete_cells() << " of "
       << cells.size() << " cells complete (" << n_partial << " partial, "
       << n_missing << " missing, " << quarantined_cells()
       << " quarantined) — statistics cover recorded runs only\n";
  }
  to_sweep().print(os);
  if (complete) return;
  for (const MergedSweepCell& c : cells) {
    if (c.state == CellState::kComplete) continue;
    os << "  cell " << c.mapping << "/" << c.scenario << ": ";
    switch (c.state) {
      case CellState::kPartial:
        os << "partial — " << c.records << " of " << c.runs
           << " runs recorded";
        if (!c.error.empty()) os << " (" << c.error << ")";
        break;
      case CellState::kMissing:
        os << "missing — no journal recorded";
        break;
      case CellState::kQuarantined:
        os << (c.error.empty() ? "quarantined" : c.error);
        if (c.records > 0) {
          os << " (" << c.records << " of " << c.runs << " runs salvaged)";
        }
        break;
      case CellState::kComplete:
        break;
    }
    os << '\n';
  }
}

void MergedSweep::write_csv(std::ostream& os) const {
  if (complete) {
    // Byte-identical to the uninterrupted single-process sweep CSV.
    to_sweep().write_csv(os);
    return;
  }
  // Degraded CSV: the normal columns over whatever each cell recorded, plus
  // completeness columns so no downstream reader can mistake a partial grid
  // for a finished one. Every cell appears, in grid order.
  os << "mapping,scenario,runs,failed_runs,deadline_total,deadline_missed,"
        "miss_rate,miss_rate_ci95,mean_makespan_ns,mean_energy_pj,"
        "mean_fault_energy_pj,records,expected_runs,state\n";
  for (const MergedSweepCell& c : cells) {
    FaultCampaign campaign(c.results);
    if (c.decision) {
      campaign.set_smc_verdict(c.decision->spec, c.decision->verdict);
    }
    const CampaignReport rep = campaign.report();
    os << c.mapping << ',' << c.scenario << ',' << rep.runs << ','
       << rep.failed_runs << ',' << rep.deadline_total << ','
       << rep.deadline_missed << ',' << rep.miss_rate << ','
       << rep.miss_rate_ci95 << ',' << rep.makespan_ns.mean << ','
       << rep.mean_energy_pj << ',' << rep.mean_fault_energy_pj << ','
       << c.records << ',' << c.runs << ',' << to_string(c.state) << '\n';
  }
}

// ---- read-only fleet status ------------------------------------------------

const char* to_string(ShardStatusEntry::State s) {
  switch (s) {
    case ShardStatusEntry::State::kDone: return "done";
    case ShardStatusEntry::State::kClaimed: return "claimed";
    case ShardStatusEntry::State::kStale: return "stale";
    case ShardStatusEntry::State::kQuarantined: return "quarantined";
    case ShardStatusEntry::State::kUnclaimed: return "unclaimed";
  }
  return "?";
}

namespace {

/// Classifies one unit from its three files. Pure observation: stat() and
/// read() only — a status probe must never perturb the fleet it watches.
ShardStatusEntry unit_status(std::size_t index, const std::string& name,
                             const std::string& journal,
                             const std::string& lease,
                             const std::string& quarantine, std::size_t runs,
                             std::uint64_t lease_ttl_ms) {
  ShardStatusEntry e;
  e.index = index;
  e.name = name;
  e.runs = runs;
  e.records = shard_journal_coverage(journal, runs);

  LeaseInfo qinfo;
  if (read_lease_info(quarantine, &qinfo)) {
    e.state = ShardStatusEntry::State::kQuarantined;
    e.owner = qinfo.owner;
    e.adoptions = qinfo.adoptions;
    e.error = qinfo.error;
    return e;
  }
  if (runs > 0 && shard_journal_complete(journal, runs)) {
    e.state = ShardStatusEntry::State::kDone;
    return e;
  }
  LeaseInfo linfo;
  std::uint64_t mtime = 0;
  if (read_lease_info(lease, &linfo) && lease_mtime_ms(lease, &mtime)) {
    const std::uint64_t now = wall_now_ms();
    e.state = lease_alive(mtime, now, lease_ttl_ms)
                  ? ShardStatusEntry::State::kClaimed
                  : ShardStatusEntry::State::kStale;
    e.owner = linfo.owner;
    e.adoptions = linfo.adoptions;
    e.error = linfo.error;
    e.heartbeat_age_ms = static_cast<std::int64_t>(now) -
                         static_cast<std::int64_t>(mtime);
    return e;
  }
  e.state = runs == 0 ? ShardStatusEntry::State::kDone
                      : ShardStatusEntry::State::kUnclaimed;
  return e;
}

void tally(FleetStatus* st, const ShardStatusEntry& e) {
  switch (e.state) {
    case ShardStatusEntry::State::kDone: ++st->done; break;
    case ShardStatusEntry::State::kClaimed: ++st->claimed; break;
    case ShardStatusEntry::State::kStale: ++st->stale; break;
    case ShardStatusEntry::State::kQuarantined: ++st->quarantined; break;
    case ShardStatusEntry::State::kUnclaimed: ++st->unclaimed; break;
  }
  st->records += e.records;
  st->runs += e.runs;
}

}  // namespace

FleetStatus fleet_status(const std::string& dir, std::uint64_t lease_ttl_ms) {
  // Derive the layout from whatever shard files exist: journals, leases and
  // tombstones all carry "<i>_of_<N>" in their names.
  std::size_t shard_count = 0;
  bool mixed = false;
  std::vector<std::string> journals;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::size_t shard = 0, count = 0;
    int consumed = 0;
    const bool is_journal =
        std::sscanf(name.c_str(), "shard_%zu_of_%zu.journal%n", &shard,
                    &count, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size();
    consumed = 0;
    const bool is_lease =
        std::sscanf(name.c_str(), "shard_%zu_of_%zu.lease%n", &shard, &count,
                    &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size();
    consumed = 0;
    const bool is_tomb =
        std::sscanf(name.c_str(), "shard_%zu_of_%zu.quarantined%n", &shard,
                    &count, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size();
    if (!is_journal && !is_lease && !is_tomb) continue;
    if (shard_count == 0) shard_count = count;
    if (count != shard_count) mixed = true;
    if (is_journal) journals.push_back(entry.path().string());
  }
  if (ec) {
    throw SimError(SimError::Kind::kBadConfig,
                   "fleet status: cannot scan shard directory '" + dir +
                       "': " + ec.message());
  }
  if (shard_count == 0) {
    throw SimError(SimError::Kind::kMergeIncomplete,
                   "fleet status: no shard files (shard_<i>_of_<N>.*) in '" +
                       dir + "' — no fleet ever started here");
  }
  if (mixed) {
    throw SimError(SimError::Kind::kBadConfig,
                   "fleet status: '" + dir + "' holds files from differently "
                   "sized fleets — mixed shard layouts cannot be summarised");
  }

  // The campaign's total run count lives in any journal header; until the
  // first journal exists, per-shard run counts are simply unknown (0).
  std::size_t total_runs = 0;
  for (const std::string& j : journals) {
    try {
      total_runs = static_cast<std::size_t>(read_journal(j).header.total_runs);
      break;
    } catch (const SimError&) {
      continue;  // torn or corrupt journal; try another shard's
    }
  }

  FleetStatus st;
  st.units = shard_count;
  st.entries.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    const std::size_t runs =
        total_runs != 0 ? shard_range(i, shard_count, total_runs).size() : 0;
    ShardStatusEntry e = unit_status(
        i, "shard " + std::to_string(i) + "/" + std::to_string(shard_count),
        shard_journal_path(dir, i, shard_count),
        shard_lease_path(dir, i, shard_count),
        shard_quarantine_path(dir, i, shard_count), runs, lease_ttl_ms);
    tally(&st, e);
    st.entries.push_back(std::move(e));
  }
  return st;
}

FleetStatus sweep_fleet_status(const std::string& dir,
                               std::uint64_t lease_ttl_ms) {
  const SweepManifest manifest = read_sweep_manifest(dir);
  const std::size_t cells = manifest.cells();
  FleetStatus st;
  st.units = cells;
  st.entries.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    ShardStatusEntry e = unit_status(
        c, manifest.cell_mapping(c) + "/" + manifest.cell_scenario(c),
        cell_journal_path(dir, c, cells), cell_lease_path(dir, c, cells),
        cell_quarantine_path(dir, c, cells), manifest.runs, lease_ttl_ms);
    tally(&st, e);
    st.entries.push_back(std::move(e));
  }
  return st;
}

void print_fleet_status(std::ostream& os, const FleetStatus& st) {
  os << "fleet: " << st.units << " units — " << st.done << " done, "
     << st.claimed << " claimed, " << st.stale << " stale, " << st.quarantined
     << " quarantined, " << st.unclaimed << " unclaimed";
  if (st.runs > 0) os << "; runs " << st.records << "/" << st.runs;
  if (st.fleet_done()) os << " — fleet done";
  os << '\n';
  std::size_t name_w = 4;
  for (const ShardStatusEntry& e : st.entries) {
    name_w = std::max(name_w, e.name.size());
  }
  for (const ShardStatusEntry& e : st.entries) {
    os << "  [" << std::setw(3) << e.index << "] " << std::left
       << std::setw(static_cast<int>(name_w) + 2) << e.name << std::right
       << std::setw(12) << to_string(e.state) << "  " << e.records << "/"
       << e.runs;
    if (e.state == ShardStatusEntry::State::kClaimed ||
        e.state == ShardStatusEntry::State::kStale) {
      os << "  owner '" << e.owner << "'";
      if (e.heartbeat_age_ms >= 0) {
        os << "  heartbeat " << e.heartbeat_age_ms << " ms ago";
      } else {
        os << "  heartbeat " << -e.heartbeat_age_ms
           << " ms in the future (clock skew)";
      }
      if (e.adoptions > 0) os << "  adoptions " << e.adoptions;
    } else if (e.state == ShardStatusEntry::State::kQuarantined) {
      os << "  last owner '" << e.owner << "'  adoptions " << e.adoptions;
    }
    if (!e.error.empty()) os << "  error: " << e.error;
    os << '\n';
  }
}

}  // namespace sctrace
