#include "trace/shard.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "kernel/error.hpp"

namespace sctrace {
namespace {

using minisc::SimError;

[[noreturn]] void throw_io(const std::string& path, const char* op) {
  throw SimError(SimError::Kind::kBadConfig,
                 "shard lease '" + path + "': " + op + " failed: " +
                     std::strerror(errno));
}

std::uint64_t wall_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Lease mtime in the same epoch as wall_now_ms. Returns false if the file
/// vanished (claimed-then-released, or stolen) between the caller's checks.
bool lease_mtime_ms(const std::string& path, std::uint64_t* out) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return false;
  *out = static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000ull +
         static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000ull;
  return true;
}

/// Whole-file read of a small lease; "" on any error (treated as not-ours).
std::string read_lease_owner(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

/// O_EXCL lease creation — the atomic "exactly one winner" claim. Returns
/// false when the path already exists (lost the race); throws on real I/O
/// failure. The worker id is the file content, fsynced so an adopter's
/// ownership probe never reads a torn id.
bool create_lease_file(const std::string& path, const std::string& worker_id) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    throw_io(path, "open(O_EXCL)");
  }
  std::size_t off = 0;
  while (off < worker_id.size()) {
    const ssize_t n = ::write(fd, worker_id.data() + off,
                              worker_id.size() - off);
    if (n < 0) {
      ::close(fd);
      throw_io(path, "write");
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_io(path, "fsync");
  }
  ::close(fd);
  return true;
}

[[noreturn]] void throw_conflict(const std::string& path, const std::string& why) {
  throw SimError(SimError::Kind::kLeaseConflict,
                 "shard lease '" + path + "': " + why);
}

[[noreturn]] void throw_merge_bad(const std::string& what) {
  throw SimError(SimError::Kind::kBadConfig, "campaign merge: " + what);
}

[[noreturn]] void throw_merge_incomplete(const std::string& what) {
  throw SimError(SimError::Kind::kMergeIncomplete, "campaign merge: " + what);
}

}  // namespace

ShardRange shard_range(std::size_t shard, std::size_t shard_count,
                       std::size_t total_runs) {
  if (shard_count == 0 || shard >= shard_count) {
    throw SimError(SimError::Kind::kBadConfig,
                   "shard_range: shard " + std::to_string(shard) +
                       " out of range for " + std::to_string(shard_count) +
                       " shards");
  }
  const std::size_t base = total_runs / shard_count;
  const std::size_t rem = total_runs % shard_count;
  ShardRange r;
  r.begin = shard * base + std::min(shard, rem);
  r.end = r.begin + base + (shard < rem ? 1 : 0);
  return r;
}

std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::size_t shard_count) {
  return dir + "/shard_" + std::to_string(shard) + "_of_" +
         std::to_string(shard_count) + ".journal";
}

std::string shard_lease_path(const std::string& dir, std::size_t shard,
                             std::size_t shard_count) {
  return dir + "/shard_" + std::to_string(shard) + "_of_" +
         std::to_string(shard_count) + ".lease";
}

// ---- ShardLease ----------------------------------------------------------

ShardLease::ShardLease(std::string path, std::string worker_id,
                       std::uint64_t ttl_ms, std::uint64_t heartbeat_ms,
                       bool adopted)
    : path_(std::move(path)),
      worker_id_(std::move(worker_id)),
      adopted_(adopted) {
  std::uint64_t hb = heartbeat_ms != 0 ? heartbeat_ms : ttl_ms / 4;
  if (hb == 0) hb = 1;
  beat_ = std::thread([this, hb] { beat_loop(hb); });
}

ShardLease::~ShardLease() { release(); }

void ShardLease::beat_loop(std::uint64_t heartbeat_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, std::chrono::milliseconds(heartbeat_ms),
                     [this] { return stop_; })) {
      break;
    }
    lk.unlock();
    // Ownership probe before the refresh: if the file no longer names this
    // worker (adopted away, or released by an adopter that finished), stop
    // beating — refreshing someone else's lease would keep a shard we no
    // longer own looking alive.
    if (read_lease_owner(path_) != worker_id_) {
      lost_.store(true, std::memory_order_release);
      lk.lock();
      break;
    }
    ::utimensat(AT_FDCWD, path_.c_str(), nullptr, 0);
    lk.lock();
  }
}

void ShardLease::release() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (!stop_) {
      stop_ = true;
      cv_.notify_all();
    }
  }
  if (beat_.joinable()) beat_.join();
  if (!released_) {
    released_ = true;
    // A lost lease belongs to its adopter now; only unlink our own.
    if (!lost() && read_lease_owner(path_) == worker_id_) {
      ::unlink(path_.c_str());
    }
  }
}

std::unique_ptr<ShardLease> claim_shard_lease(const std::string& path,
                                              const std::string& worker_id,
                                              std::uint64_t lease_ttl_ms,
                                              std::uint64_t heartbeat_ms) {
  if (worker_id.empty() || worker_id.find('/') != std::string::npos) {
    throw SimError(SimError::Kind::kBadConfig,
                   "shard lease '" + path + "': worker id '" + worker_id +
                       "' must be non-empty and slash-free");
  }
  if (lease_ttl_ms == 0) {
    throw SimError(SimError::Kind::kBadConfig,
                   "shard lease '" + path + "': lease TTL must be > 0");
  }

  // Fresh claim: O_EXCL picks exactly one winner among racing creators.
  if (create_lease_file(path, worker_id)) {
    return std::unique_ptr<ShardLease>(new ShardLease(
        path, worker_id, lease_ttl_ms, heartbeat_ms, /*adopted=*/false));
  }

  // Lease exists. Alive (heartbeat within TTL) → conflict, transient: the
  // owner is working the shard, claim again later or claim another shard.
  std::uint64_t mtime = 0;
  if (!lease_mtime_ms(path, &mtime)) {
    throw_conflict(path, "vanished mid-claim (owner released or was adopted)");
  }
  const std::uint64_t now = wall_now_ms();
  if (now < mtime + lease_ttl_ms) {
    throw_conflict(path, "held by live worker '" + read_lease_owner(path) +
                             "' (heartbeat " +
                             std::to_string(now > mtime ? now - mtime : 0) +
                             " ms ago, TTL " + std::to_string(lease_ttl_ms) +
                             " ms)");
  }

  // Stale: the owner stopped heartbeating for a full TTL — dead worker.
  // Steal by rename: the source vanishes for everyone else, so exactly one
  // adopter proceeds past this line for a given lease incarnation.
  const std::string tomb = path + ".adopt-" + worker_id;
  if (::rename(path.c_str(), tomb.c_str()) != 0) {
    throw_conflict(path, "stale, but another worker adopted it first");
  }
  ::unlink(tomb.c_str());
  // Re-claim through the same O_EXCL gate; a racing *fresh* claimer that
  // saw the path empty after our rename may legitimately beat us here.
  if (!create_lease_file(path, worker_id)) {
    throw_conflict(path, "stale lease stolen, but a new claimer re-created "
                         "it first");
  }
  return std::unique_ptr<ShardLease>(new ShardLease(
      path, worker_id, lease_ttl_ms, heartbeat_ms, /*adopted=*/true));
}

// ---- shard completion probe ----------------------------------------------

bool shard_journal_complete(const std::string& path, std::size_t runs) {
  if (runs == 0) return true;  // an empty shard has nothing to record
  JournalContents contents;
  try {
    contents = read_journal(path);
  } catch (const SimError&) {
    return false;  // missing, torn-header or corrupt: not complete
  }
  if (contents.header.version != JournalHeader::kVersion) return false;
  std::vector<bool> done(runs, false);
  std::size_t have = 0;
  for (const JournalRecord& rec : contents.records) {
    if (rec.index < runs && !done[rec.index]) {
      done[rec.index] = true;
      ++have;
    }
  }
  return have == runs;
}

// ---- worker loop ----------------------------------------------------------

ShardProgress run_sharded_campaign(const FaultCampaign::RunFn& fn,
                                   std::uint64_t base_seed,
                                   std::size_t total_runs,
                                   const ShardOptions& shard,
                                   const CampaignOptions& opts) {
  if (shard.shard_count == 0 || shard.shard_index >= shard.shard_count) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_campaign: worker index " +
                       std::to_string(shard.shard_index) +
                       " out of range for " +
                       std::to_string(shard.shard_count) + " shards");
  }
  if (shard.dir.empty()) {
    throw SimError(SimError::Kind::kBadConfig,
                   "run_sharded_campaign: shard directory must be set");
  }
  std::filesystem::create_directories(shard.dir);
  const std::string worker_id =
      !shard.worker_id.empty()
          ? shard.worker_id
          : "w" + std::to_string(shard.shard_index) + ".pid" +
                std::to_string(static_cast<long>(::getpid()));

  ShardProgress prog;
  const auto started = std::chrono::steady_clock::now();
  for (;;) {
    bool all_complete = true;
    bool progressed = false;
    for (std::size_t k = 0; k < shard.shard_count; ++k) {
      // Start at our own shard and roam upward: a fleet spreads across the
      // shards instead of stampeding the same lease.
      const std::size_t i = (shard.shard_index + k) % shard.shard_count;
      const ShardRange range = shard_range(i, shard.shard_count, total_runs);
      if (range.empty()) continue;
      const std::string jpath =
          shard_journal_path(shard.dir, i, shard.shard_count);
      if (shard_journal_complete(jpath, range.size())) continue;
      all_complete = false;

      std::unique_ptr<ShardLease> lease;
      try {
        lease = claim_shard_lease(
            shard_lease_path(shard.dir, i, shard.shard_count), worker_id,
            shard.lease_ttl_ms, shard.heartbeat_ms);
      } catch (const SimError& e) {
        if (e.kind() == SimError::Kind::kLeaseConflict) {
          // Transient by contract: a live peer owns the shard. Our outer
          // pass-and-poll loop is the backoff.
          ++prog.lease_conflicts;
          continue;
        }
        throw;
      }

      CampaignOptions co = opts;
      co.journal_path = jpath;
      co.resume = true;  // adoption = resuming the dead worker's journal
      co.shard_index = i;
      co.shard_count = shard.shard_count;
      co.shard_begin = range.begin;
      co.total_runs = total_runs;
      co.worker_id = worker_id;

      std::atomic<std::size_t> executed{0};
      ShardLease* held = lease.get();
      const FaultCampaign::RunFn wrapped =
          [&fn, &executed, held](std::uint64_t seed) {
            if (held->lost()) {
              throw LeaseLostError(
                  "shard lease '" + held->path() + "' was adopted away from '" +
                  held->worker_id() +
                  "' (heartbeat stalled past the TTL); aborting the shard — "
                  "its adopter owns the journal now");
            }
            executed.fetch_add(1, std::memory_order_relaxed);
            return fn(seed);
          };

      bool completed_shard = true;
      try {
        FaultCampaign campaign(wrapped);
        campaign.run(base_seed + range.begin, range.size(), co);
      } catch (const LeaseLostError&) {
        completed_shard = false;
        ++prog.shards_lost;
      } catch (const SimError& e) {
        if (e.kind() != SimError::Kind::kJournalCorrupt) throw;
        // The dead worker's journal is damaged beyond the torn-tail
        // tolerance (torn header, bit rot). We hold the exclusive lease and
        // every run is a pure function of its seed, so re-running the whole
        // shard reproduces bit-identical records: delete and start fresh.
        std::remove(jpath.c_str());
        FaultCampaign healed(wrapped);
        healed.run(base_seed + range.begin, range.size(), co);
      }
      prog.runs_executed += executed.load(std::memory_order_relaxed);
      if (completed_shard) {
        ++prog.shards_run;
        if (lease->adopted()) ++prog.shards_adopted;
        progressed = true;
      }
      lease->release();
    }

    if (all_complete) {
      prog.campaign_complete = true;
      break;
    }
    if (!progressed) {
      // Every remaining shard is leased by a live peer (or was lost to an
      // adopter). Wait for the fleet — or for a peer's lease to go stale.
      if (shard.max_wait_ms != 0) {
        const auto waited =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - started)
                .count();
        if (waited >= 0 &&
            static_cast<std::uint64_t>(waited) >= shard.max_wait_ms) {
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(shard.poll_ms));
    }
  }
  return prog;
}

// ---- merge ----------------------------------------------------------------

MergedCampaign merge_journals(const std::vector<std::string>& paths) {
  if (paths.empty()) {
    throw_merge_bad("no shard journals given");
  }

  MergedCampaign out;
  std::vector<JournalContents> shards;
  shards.reserve(paths.size());
  for (const std::string& p : paths) shards.push_back(read_journal(p));

  // Identity checks. Every journal must be the current format (read_journal
  // already rejected unknown futures; v1 parses but cannot merge), and all
  // must agree on the campaign: digest, tag, base seed, total runs, layout.
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JournalHeader& h = shards[s].header;
    if (h.version != JournalHeader::kVersion) {
      throw SimError(
          SimError::Kind::kShardVersionMismatch,
          "campaign merge: shard journal '" + paths[s] + "' has format "
              "version " + std::to_string(h.version) +
              " but the merge requires version " +
              std::to_string(JournalHeader::kVersion) +
              " — journals from different releases refuse to mix");
    }
  }
  const JournalHeader& first = shards[0].header;
  out.scenario_digest = first.scenario_digest;
  out.tag = first.tag;
  out.shard_count = static_cast<std::size_t>(first.shard_count);
  out.runs = static_cast<std::size_t>(first.total_runs);
  out.base_seed = first.base_seed - first.shard_begin;

  std::vector<bool> shard_seen(out.shard_count, false);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JournalHeader& h = shards[s].header;
    if (h.scenario_digest != out.scenario_digest) {
      throw_merge_bad("shard journal '" + paths[s] +
                      "' has scenario digest " +
                      std::to_string(h.scenario_digest) + " but '" + paths[0] +
                      "' has " + std::to_string(out.scenario_digest) +
                      " — different fault models do not merge");
    }
    if (h.tag != out.tag) {
      throw_merge_bad("shard journal '" + paths[s] + "' has tag '" + h.tag +
                      "' but '" + paths[0] + "' has '" + out.tag + "'");
    }
    if (h.shard_count != out.shard_count || h.total_runs != out.runs) {
      throw_merge_bad("shard journal '" + paths[s] + "' is shard " +
                      std::to_string(h.shard_index) + "/" +
                      std::to_string(h.shard_count) + " of " +
                      std::to_string(h.total_runs) + " runs but '" + paths[0] +
                      "' declares " + std::to_string(out.shard_count) +
                      " shards of " + std::to_string(out.runs) +
                      " runs — mixed shard layouts do not merge");
    }
    if (h.base_seed - h.shard_begin != out.base_seed) {
      throw_merge_bad("shard journal '" + paths[s] +
                      "' implies campaign base seed " +
                      std::to_string(h.base_seed - h.shard_begin) + " but '" +
                      paths[0] + "' implies " + std::to_string(out.base_seed));
    }
    if (h.shard_index >= h.shard_count) {
      throw_merge_bad("shard journal '" + paths[s] + "' claims shard " +
                      std::to_string(h.shard_index) + " of only " +
                      std::to_string(h.shard_count));
    }
    const ShardRange want = shard_range(
        static_cast<std::size_t>(h.shard_index), out.shard_count, out.runs);
    if (h.shard_begin != want.begin || h.runs != want.size()) {
      throw_merge_bad("shard journal '" + paths[s] + "' covers [" +
                      std::to_string(h.shard_begin) + ", +" +
                      std::to_string(h.runs) + ") but shard " +
                      std::to_string(h.shard_index) + " of " +
                      std::to_string(out.shard_count) + " canonically covers [" +
                      std::to_string(want.begin) + ", +" +
                      std::to_string(want.size()) + ")");
    }
    if (shard_seen[static_cast<std::size_t>(h.shard_index)]) {
      throw_merge_incomplete("shard " + std::to_string(h.shard_index) +
                             " appears twice ('" + paths[s] +
                             "') — ambiguous which journal to trust");
    }
    shard_seen[static_cast<std::size_t>(h.shard_index)] = true;
  }
  for (std::size_t i = 0; i < out.shard_count; ++i) {
    if (!shard_seen[i] && !shard_range(i, out.shard_count, out.runs).empty()) {
      throw_merge_incomplete("no journal for shard " + std::to_string(i) +
                             " of " + std::to_string(out.shard_count) +
                             " — a partial fleet merge would silently bias "
                             "every campaign statistic");
    }
  }

  // Fold records into global slots. Duplicate indices within a journal are
  // benign (a lease-TTL violation appends bit-identical records — runs are
  // deterministic); the last one wins, like journal resume.
  out.results.resize(out.runs);
  std::vector<bool> done(out.runs, false);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const JournalHeader& h = shards[s].header;
    for (JournalRecord& rec : shards[s].records) {
      if (rec.index >= h.runs) {
        throw SimError(SimError::Kind::kJournalCorrupt,
                       "campaign merge: shard journal '" + paths[s] +
                           "': record index " + std::to_string(rec.index) +
                           " out of range (shard has " +
                           std::to_string(h.runs) + " runs)");
      }
      const std::size_t global =
          static_cast<std::size_t>(h.shard_begin) + rec.index;
      out.results[global] = std::move(rec.result);
      done[global] = true;
    }
  }
  std::size_t missing = 0;
  std::size_t first_missing = 0;
  for (std::size_t i = 0; i < out.runs; ++i) {
    if (!done[i]) {
      if (missing == 0) first_missing = i;
      ++missing;
    }
  }
  if (missing > 0) {
    throw_merge_incomplete(
        std::to_string(missing) + " of " + std::to_string(out.runs) +
        " runs have no record (first missing global index " +
        std::to_string(first_missing) +
        ") — finish the campaign (workers re-claim incomplete shards) "
        "before merging");
  }
  return out;
}

MergedCampaign merge_shard_dir(const std::string& dir) {
  std::vector<std::pair<std::size_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::size_t shard = 0, count = 0;
    int consumed = 0;
    if (std::sscanf(name.c_str(), "shard_%zu_of_%zu.journal%n", &shard,
                    &count, &consumed) == 2 &&
        static_cast<std::size_t>(consumed) == name.size()) {
      found.emplace_back(shard, entry.path().string());
    }
  }
  if (ec) {
    throw_merge_bad("cannot scan shard directory '" + dir +
                    "': " + ec.message());
  }
  if (found.empty()) {
    throw_merge_incomplete("no shard journals (shard_<i>_of_<N>.journal) in '" +
                           dir + "'");
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> paths;
  paths.reserve(found.size());
  for (auto& [shard, path] : found) paths.push_back(std::move(path));
  return merge_journals(paths);
}

}  // namespace sctrace
