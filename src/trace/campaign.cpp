#include "trace/campaign.hpp"

#include <cmath>
#include <ostream>

#include "kernel/error.hpp"

namespace sctrace {

double mean_ci95(const Summary& s) {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

void FaultCampaign::run(std::uint64_t base_seed, std::size_t n) {
  results_.reserve(results_.size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t seed = base_seed + i;
    CampaignRunResult r;
    try {
      r = fn_(seed);
      r.seed = seed;
    } catch (const minisc::SimError& e) {
      r = CampaignRunResult{};
      r.seed = seed;
      r.completed = false;
      r.error = e.what();
    }
    results_.push_back(std::move(r));
  }
}

CampaignReport FaultCampaign::report() const {
  CampaignReport rep;
  rep.runs = results_.size();
  std::vector<double> makespans;
  std::vector<double> recoveries;
  for (const CampaignRunResult& r : results_) {
    if (!r.completed) {
      ++rep.failed_runs;
      continue;
    }
    rep.deadline_total += r.deadline_total;
    rep.deadline_missed += r.deadline_missed;
    makespans.push_back(r.makespan.to_ns_d());
    recoveries.insert(recoveries.end(), r.recovery_latencies_ns.begin(),
                      r.recovery_latencies_ns.end());
  }
  if (rep.deadline_total > 0) {
    const double p = static_cast<double>(rep.deadline_missed) /
                     static_cast<double>(rep.deadline_total);
    rep.miss_rate = p;
    rep.miss_rate_ci95 =
        1.96 * std::sqrt(p * (1.0 - p) /
                         static_cast<double>(rep.deadline_total));
  }
  rep.makespan_ns = summarize(makespans);
  rep.makespan_ci95 = mean_ci95(rep.makespan_ns);
  rep.recovery_ns = summarize(recoveries);
  rep.recovery_ci95 = mean_ci95(rep.recovery_ns);
  return rep;
}

void CampaignReport::print(std::ostream& os) const {
  os << "fault campaign: " << runs << " runs (" << failed_runs
     << " failed)\n";
  os << "  deadlines: " << deadline_missed << "/" << deadline_total
     << " missed, miss rate " << miss_rate * 100.0 << "% +/- "
     << miss_rate_ci95 * 100.0 << "%\n";
  if (makespan_ns.count > 0) {
    os << "  makespan:  mean " << makespan_ns.mean << " ns +/- "
       << makespan_ci95 << " (min " << makespan_ns.min << ", max "
       << makespan_ns.max << ", n=" << makespan_ns.count << ")\n";
  }
  if (recovery_ns.count > 0) {
    os << "  recovery:  mean " << recovery_ns.mean << " ns +/- "
       << recovery_ci95 << " (min " << recovery_ns.min << ", max "
       << recovery_ns.max << ", n=" << recovery_ns.count << ")\n";
  }
}

void FaultCampaign::write_csv(std::ostream& os) const {
  os << "seed,completed,makespan_ns,deadline_total,deadline_missed,"
        "faults_injected,recovery_samples,mean_recovery_ns,value_hash\n";
  for (const CampaignRunResult& r : results_) {
    const Summary rec = summarize(r.recovery_latencies_ns);
    os << r.seed << ',' << (r.completed ? 1 : 0) << ','
       << r.makespan.to_ns_d() << ',' << r.deadline_total << ','
       << r.deadline_missed << ',' << r.faults_injected << ','
       << rec.count << ',' << rec.mean << ',' << r.value_hash << '\n';
  }
}

}  // namespace sctrace
