#include "trace/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <memory>
#include <ostream>
#include <thread>

#include "core/pool.hpp"
#include "kernel/error.hpp"
#include "kernel/retry.hpp"
#include "trace/journal.hpp"

namespace sctrace {

double mean_ci95(const Summary& s) {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

namespace {

/// Host backoff before retry `attempt` of `seed`: exponential in the attempt
/// number, capped, and scaled by a deterministic jitter factor in
/// [0.75, 1.25) derived from (seed, attempt) via splitmix64 — the same
/// no-ambient-randomness discipline as minisc::retry_with_backoff, so a
/// retried campaign sleeps the same schedule on every replay.
std::uint64_t retry_backoff_ms(std::uint64_t seed, std::uint32_t attempt,
                               const CampaignOptions& opts) {
  if (opts.retry_backoff_ms == 0) return 0;
  double base = static_cast<double>(opts.retry_backoff_ms) *
                std::pow(2.0, static_cast<double>(attempt - 1));
  base = std::min(base, static_cast<double>(opts.retry_backoff_max_ms));
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * attempt);
  const double u = minisc::detail::splitmix_uniform(state);
  return static_cast<std::uint64_t>(base * (0.75 + 0.5 * u));
}

/// One seed through the run function, under the per-run wall-clock budget,
/// with transient/permanent retry classification. Never throws SimError:
/// the outcome (including a still-failing final attempt) becomes the record.
CampaignRunResult run_with_retry(const FaultCampaign::RunFn& fn,
                                 std::uint64_t seed,
                                 const CampaignOptions& opts) {
  const std::size_t max_attempts = std::max<std::size_t>(1, opts.max_attempts);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      CampaignRunResult r;
      {
        // Any Simulator the run function builds on this thread enforces the
        // budget through its amortised wall-clock check; a hung seed throws
        // kWallClockBudget here instead of stalling the campaign.
        minisc::RunBudgetScope budget(opts.run_wall_clock_ms);
        r = fn(seed);
      }
      r.seed = seed;
      r.attempts = attempt;
      return r;
    } catch (const minisc::SimError& e) {
      if (e.kind() == minisc::SimError::Kind::kIoError) {
        // Infrastructure failure, not a simulation outcome: recording a full
        // disk as a failed *run* would bias the campaign statistics against
        // seeds that happened to land on a sick host. Propagate instead —
        // fleet workers quarantine the shard, plain campaigns abort loudly.
        throw;
      }
      if (e.transient() && attempt < max_attempts) {
        const std::uint64_t ms = retry_backoff_ms(seed, attempt, opts);
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        continue;
      }
      CampaignRunResult r;
      r.seed = seed;
      r.completed = false;
      r.error = e.what();
      r.attempts = attempt;
      return r;
    }
  }
}

/// Opens the campaign's journal. Fresh start: truncate and write the header.
/// Resume against an existing non-empty journal: verify the header matches
/// this campaign, replay every intact record bit-exactly into its result
/// slot, and come back positioned to append. `todo` receives the indices
/// still to run (ascending, like the dense path claims them).
std::unique_ptr<JournalWriter> open_journal(
    std::uint64_t base_seed, std::size_t n, const CampaignOptions& opts,
    std::vector<CampaignRunResult>& results, std::size_t offset,
    std::vector<std::size_t>& todo) {
  JournalHeader header;
  header.base_seed = base_seed;
  header.runs = n;
  header.scenario_digest = opts.scenario_digest;
  header.tag = opts.journal_tag;
  header.shard_index = opts.shard_index;
  header.shard_count = opts.shard_count == 0 ? 1 : opts.shard_count;
  header.shard_begin = opts.shard_begin;
  header.total_runs = opts.total_runs == 0 ? n : opts.total_runs;
  header.worker_id = opts.worker_id;

  if (opts.resume) {
    std::ifstream probe(opts.journal_path, std::ios::binary);
    // A missing or empty journal (a crash before the header landed) starts
    // fresh; anything with bytes in it must parse and match.
    const bool nonempty = probe && probe.peek() != std::ifstream::traits_type::eof();
    probe.close();
    if (nonempty) {
      JournalContents contents = read_journal(opts.journal_path);
      if (contents.header.version != JournalHeader::kVersion) {
        // Readable (read_journal parsed it) but not extendable: appending
        // current-version records under an old header would produce a file
        // no single version fully describes.
        throw minisc::SimError(
            minisc::SimError::Kind::kShardVersionMismatch,
            "campaign journal '" + opts.journal_path + "' has format version " +
                std::to_string(contents.header.version) +
                " but this build appends version " +
                std::to_string(JournalHeader::kVersion) +
                " — old journals are read-only (read_journal); delete the "
                "file to re-run the campaign under the current format");
      }
      if (contents.header.base_seed != base_seed ||
          contents.header.runs != n ||
          contents.header.scenario_digest != opts.scenario_digest ||
          contents.header.tag != opts.journal_tag) {
        throw minisc::SimError(
            minisc::SimError::Kind::kBadConfig,
            "campaign journal '" + opts.journal_path +
                "' was written by a different campaign (header: base_seed=" +
                std::to_string(contents.header.base_seed) + " runs=" +
                std::to_string(contents.header.runs) + " digest=" +
                std::to_string(contents.header.scenario_digest) + " tag='" +
                contents.header.tag + "'; resuming: base_seed=" +
                std::to_string(base_seed) + " runs=" + std::to_string(n) +
                " digest=" + std::to_string(opts.scenario_digest) + " tag='" +
                opts.journal_tag + "') — refusing to mix their runs");
      }
      // Shard identity must match too — all of it except worker_id, which
      // names the journal's creator: adoption of a dead worker's shard
      // resumes under a different worker id by design.
      const std::uint64_t want_count = opts.shard_count == 0 ? 1 : opts.shard_count;
      const std::uint64_t want_total = opts.total_runs == 0 ? n : opts.total_runs;
      if (contents.header.shard_index != opts.shard_index ||
          contents.header.shard_count != want_count ||
          contents.header.shard_begin != opts.shard_begin ||
          contents.header.total_runs != want_total) {
        throw minisc::SimError(
            minisc::SimError::Kind::kBadConfig,
            "campaign journal '" + opts.journal_path +
                "' belongs to shard " +
                std::to_string(contents.header.shard_index) + "/" +
                std::to_string(contents.header.shard_count) + " at [" +
                std::to_string(contents.header.shard_begin) + ", +" +
                std::to_string(contents.header.runs) + ") of " +
                std::to_string(contents.header.total_runs) +
                " total runs; resuming as shard " +
                std::to_string(opts.shard_index) + "/" +
                std::to_string(want_count) + " at [" +
                std::to_string(opts.shard_begin) + ", +" + std::to_string(n) +
                ") of " + std::to_string(want_total) +
                " — refusing to mix shard layouts");
      }
      std::vector<bool> done(n, false);
      for (JournalRecord& rec : contents.records) {
        if (rec.index >= n) {
          throw minisc::SimError(
              minisc::SimError::Kind::kJournalCorrupt,
              "campaign journal '" + opts.journal_path + "': record index " +
                  std::to_string(rec.index) + " out of range (campaign has " +
                  std::to_string(n) + " runs)");
        }
        results[offset + rec.index] = std::move(rec.result);
        done[rec.index] = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!done[i]) todo.push_back(i);
      }
      return std::make_unique<JournalWriter>(
          opts.journal_path, contents.valid_bytes, opts.journal_flush_every);
    }
  }
  todo.resize(n);
  for (std::size_t i = 0; i < n; ++i) todo[i] = i;
  return std::make_unique<JournalWriter>(opts.journal_path, header,
                                         opts.journal_flush_every);
}

}  // namespace

void FaultCampaign::run(std::uint64_t base_seed, std::size_t n,
                        const CampaignOptions& opts) {
  if (!fn_) {
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "FaultCampaign::run on a merge-constructed campaign: it carries "
        "recorded results only, there is no run function to execute");
  }
  // Pre-sized slot array: run i (seed base_seed + i) writes slot offset + i
  // and nothing else, so the assembled results — and therefore report() and
  // write_csv() — are identical whether the slots fill on one thread or
  // eight, in any interleaving. Journal replay drops recorded results into
  // the same slots, which is why a resumed campaign aggregates to the same
  // bytes as an uninterrupted one.
  const std::size_t offset = results_.size();
  results_.resize(offset + n);

  std::unique_ptr<JournalWriter> journal;
  std::vector<std::size_t> todo;
  if (!opts.journal_path.empty()) {
    journal = open_journal(base_seed, n, opts, results_, offset, todo);
  }

  auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + i;
    CampaignRunResult r = run_with_retry(fn_, seed, opts);
    // Journal before publishing the slot: a record is durable (or at worst a
    // tolerated torn tail) by the time anything can observe the result.
    if (journal) journal->append(i, r);
    results_[offset + i] = std::move(r);
  };

  if (journal) {
    if (opts.threads <= 1) {
      for (const std::size_t i : todo) run_one(i);
    } else {
      scperf::ThreadPool pool(opts.threads);
      pool.parallel_for(todo, opts.chunk, run_one);
    }
    journal->sync();
  } else if (opts.threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    scperf::ThreadPool pool(opts.threads);
    pool.parallel_for(n, opts.chunk, run_one);
  }
}

CampaignReport FaultCampaign::report() const {
  CampaignReport rep;
  rep.runs = results_.size();
  std::vector<double> makespans;
  std::vector<double> recoveries;
  // Importance-sampling accumulators over completed runs: the weighted
  // per-run miss fraction w_i * m_i, and the raw weights for ESS.
  std::vector<double> weighted_miss;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  bool any_weighted = false;
  for (const CampaignRunResult& r : results_) {
    rep.total_attempts += r.attempts;
    if (r.attempts > 1) ++rep.retried_runs;
    if (!r.completed) {
      ++rep.failed_runs;
      continue;
    }
    rep.deadline_total += r.deadline_total;
    rep.deadline_missed += r.deadline_missed;
    makespans.push_back(r.makespan.to_ns_d());
    recoveries.insert(recoveries.end(), r.recovery_latencies_ns.begin(),
                      r.recovery_latencies_ns.end());
    rep.mean_energy_pj += r.energy_pj;
    rep.mean_fault_energy_pj += r.fault_energy_pj;
    rep.cache_hits += r.cache_hits;
    rep.cache_misses += r.cache_misses;
    rep.cache_bypassed += r.cache_bypassed;
    rep.cache_cycles_saved += r.cache_cycles_saved;
    const double w = std::exp(r.log_weight);
    if (r.log_weight != 0.0) any_weighted = true;
    const double m =
        r.deadline_total > 0
            ? static_cast<double>(r.deadline_missed) /
                  static_cast<double>(r.deadline_total)
            : 0.0;
    weighted_miss.push_back(w * m);
    sum_w += w;
    sum_w2 += w * w;
  }
  const std::size_t completed = rep.runs - rep.failed_runs;
  if (completed > 0) {
    rep.mean_energy_pj /= static_cast<double>(completed);
    rep.mean_fault_energy_pj /= static_cast<double>(completed);
  }
  if (rep.deadline_total > 0) {
    const double p = static_cast<double>(rep.deadline_missed) /
                     static_cast<double>(rep.deadline_total);
    rep.miss_rate = p;
    if (rep.deadline_missed == 0 || rep.deadline_missed == rep.deadline_total) {
      // At 0/N or N/N the Wald interval collapses to width zero, which
      // overstates certainty badly in exactly the rare-event regime a fault
      // campaign probes. Use the rule-of-three bound 3/N instead.
      rep.miss_rate_ci95 = 3.0 / static_cast<double>(rep.deadline_total);
    } else {
      rep.miss_rate_ci95 =
          1.96 * std::sqrt(p * (1.0 - p) /
                           static_cast<double>(rep.deadline_total));
    }
  }
  rep.makespan_ns = summarize(makespans);
  rep.makespan_ci95 = mean_ci95(rep.makespan_ns);
  rep.recovery_ns = summarize(recoveries);
  rep.recovery_ci95 = mean_ci95(rep.recovery_ns);
  rep.importance_sampled = any_weighted;
  if (any_weighted && completed > 0) {
    const Summary wm = summarize(weighted_miss);
    rep.weighted_miss_rate = wm.mean;
    rep.weighted_miss_rate_ci95 = mean_ci95(wm);
    rep.mean_weight = sum_w / static_cast<double>(completed);
    rep.effective_sample_size = sum_w2 > 0.0 ? sum_w * sum_w / sum_w2 : 0.0;
  }
  return rep;
}

void CampaignReport::print(std::ostream& os, bool with_cache_stats) const {
  os << "fault campaign: " << runs << " runs (" << failed_runs
     << " failed)\n";
  if (retried_runs > 0) {
    // Only printed when something retried, so retry-free campaigns keep
    // emitting the historical bytes.
    os << "  retries:   " << retried_runs << " runs took >1 attempt ("
       << total_attempts << " attempts across " << runs << " runs)\n";
  }
  os << "  deadlines: " << deadline_missed << "/" << deadline_total
     << " missed, miss rate " << miss_rate * 100.0 << "% +/- "
     << miss_rate_ci95 * 100.0 << "%\n";
  if (importance_sampled) {
    os << "  importance-sampled nominal miss rate: "
       << weighted_miss_rate * 100.0 << "% +/- "
       << weighted_miss_rate_ci95 * 100.0 << "%  (ESS "
       << effective_sample_size << " of " << runs - failed_runs
       << ", mean weight " << mean_weight << ")\n";
    const std::size_t completed = runs - failed_runs;
    if (completed > 0 &&
        effective_sample_size < 0.1 * static_cast<double>(completed)) {
      // First concrete step toward the ROADMAP adaptive-IS item: flag a
      // badly matched bias loudly instead of letting a tiny ESS hide inside
      // an apparently tight (but meaningless) confidence interval.
      os << "  WARNING: ESS " << effective_sample_size << " is below 10% of "
         << completed << " completed runs — the importance bias explores a "
            "different region than the nominal model; re-tune the bias (see "
            "ROADMAP: adaptive importance sampling)\n";
    }
  }
  if (makespan_ns.count > 0) {
    os << "  makespan:  mean " << makespan_ns.mean << " ns +/- "
       << makespan_ci95 << " (min " << makespan_ns.min << ", max "
       << makespan_ns.max << ", n=" << makespan_ns.count << ")\n";
  }
  if (recovery_ns.count > 0) {
    os << "  recovery:  mean " << recovery_ns.mean << " ns +/- "
       << recovery_ci95 << " (min " << recovery_ns.min << ", max "
       << recovery_ns.max << ", n=" << recovery_ns.count << ")\n";
  }
  if (mean_energy_pj > 0.0 || mean_fault_energy_pj > 0.0) {
    os << "  energy:    mean " << mean_energy_pj << " pJ/run, of which "
       << mean_fault_energy_pj << " pJ fault overhead\n";
  }
  if (with_cache_stats) {
    os << "  seg-cache: " << cache_hits << " hits, " << cache_misses
       << " misses, " << cache_bypassed << " bypassed, " << cache_cycles_saved
       << " cycles saved\n";
  }
}

void FaultCampaign::write_csv(std::ostream& os, bool with_cache_stats) const {
  os << "seed,completed,makespan_ns,deadline_total,deadline_missed,"
        "faults_injected,recovery_samples,mean_recovery_ns,log_weight,"
        "weight,energy_pj,fault_energy_pj,value_hash,attempts";
  if (with_cache_stats) {
    os << ",cache_hits,cache_misses,cache_bypassed,cache_cycles_saved";
  }
  os << '\n';
  for (const CampaignRunResult& r : results_) {
    const Summary rec = summarize(r.recovery_latencies_ns);
    os << r.seed << ',' << (r.completed ? 1 : 0) << ','
       << r.makespan.to_ns_d() << ',' << r.deadline_total << ','
       << r.deadline_missed << ',' << r.faults_injected << ','
       << rec.count << ',' << rec.mean << ',' << r.log_weight << ','
       << std::exp(r.log_weight) << ',' << r.energy_pj << ','
       << r.fault_energy_pj << ',' << r.value_hash << ',' << r.attempts;
    if (with_cache_stats) {
      os << ',' << r.cache_hits << ',' << r.cache_misses << ','
         << r.cache_bypassed << ',' << r.cache_cycles_saved;
    }
    os << '\n';
  }
}

namespace {

/// Journal filenames derive from cell names; anything outside [A-Za-z0-9._-]
/// becomes '_' so a scenario called "lossy 5%" cannot escape the directory.
std::string sanitize_for_path(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void CampaignSweep::run(std::uint64_t base_seed, std::size_t n,
                        const CampaignOptions& opts) {
  if (!factory_) {
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "CampaignSweep::run on a merge-constructed sweep: it carries "
        "recorded cells only, there is no factory to execute");
  }
  cells_.clear();
  cells_.reserve(mappings_.size() * scenarios_.size());
  for (const std::string& m : mappings_) {
    for (const std::string& s : scenarios_) {
      // Each cell journals (and resumes) independently: the sweep's
      // journal_path is a prefix, the cell identity goes into both the
      // filename and the header tag. A kill mid-sweep therefore replays
      // every finished cell from disk and re-runs only the missing seeds of
      // the interrupted one.
      CampaignOptions cell_opts = opts;
      if (!opts.journal_path.empty()) {
        cell_opts.journal_path = opts.journal_path + "." +
                                 sanitize_for_path(m) + "." +
                                 sanitize_for_path(s);
        cell_opts.journal_tag = opts.journal_tag.empty()
                                    ? m + "/" + s
                                    : opts.journal_tag + ":" + m + "/" + s;
      }
      FaultCampaign campaign(factory_(m, s));
      campaign.run(base_seed, n, cell_opts);
      cells_.push_back(Cell{m, s, campaign.report()});
    }
  }
}

const CampaignReport* CampaignSweep::cell(const std::string& mapping,
                                          const std::string& scenario) const {
  for (const Cell& c : cells_) {
    if (c.mapping == mapping && c.scenario == scenario) return &c.report;
  }
  return nullptr;
}

void CampaignSweep::print(std::ostream& os) const {
  // Miss-rate grid, mappings down, scenarios across. Column width is sized
  // for "100.00%" plus breathing room.
  std::size_t name_w = 7;  // "mapping"
  for (const std::string& m : mappings_) name_w = std::max(name_w, m.size());
  os << "deadline miss rate (%), " << mappings_.size() << " mappings x "
     << scenarios_.size() << " scenarios\n";
  os << std::left << std::setw(static_cast<int>(name_w) + 2) << "mapping";
  for (const std::string& s : scenarios_) {
    os << std::right << std::setw(std::max<int>(10, static_cast<int>(s.size()) + 2))
       << s;
  }
  os << '\n';
  const std::streamsize old_prec = os.precision();
  os << std::fixed << std::setprecision(2);
  for (const std::string& m : mappings_) {
    os << std::left << std::setw(static_cast<int>(name_w) + 2) << m;
    for (const std::string& s : scenarios_) {
      const CampaignReport* rep = cell(m, s);
      const int w = std::max<int>(10, static_cast<int>(s.size()) + 2);
      if (rep == nullptr) {
        os << std::right << std::setw(w) << "-";
      } else {
        os << std::right << std::setw(w) << rep->miss_rate * 100.0;
      }
    }
    os << '\n';
  }
  os << std::defaultfloat << std::setprecision(static_cast<int>(old_prec));
  // Degenerate-weight cells: the single-campaign Report::print warning,
  // surfaced at the grid level so a sharded sweep cannot hide a collapsed
  // importance bias inside one quiet cell. Weight-free sweeps print nothing
  // here, keeping the historical grid bytes.
  for (const Cell& c : cells_) {
    const CampaignReport& r = c.report;
    const std::size_t completed = r.runs - r.failed_runs;
    if (r.importance_sampled && completed > 0 &&
        r.effective_sample_size < 0.1 * static_cast<double>(completed)) {
      os << "WARNING: cell " << c.mapping << "/" << c.scenario << ": ESS "
         << r.effective_sample_size << " is below 10% of " << completed
         << " completed runs — the importance bias explores a different "
            "region than the nominal model in this cell; re-tune it (see "
            "ROADMAP: adaptive importance sampling)\n";
    }
  }
}

void CampaignSweep::write_csv(std::ostream& os, bool with_cache_stats) const {
  os << "mapping,scenario,runs,failed_runs,deadline_total,deadline_missed,"
        "miss_rate,miss_rate_ci95,mean_makespan_ns,mean_energy_pj,"
        "mean_fault_energy_pj";
  if (with_cache_stats) {
    os << ",cache_hits,cache_misses,cache_bypassed,cache_cycles_saved";
  }
  os << '\n';
  for (const Cell& c : cells_) {
    os << c.mapping << ',' << c.scenario << ',' << c.report.runs << ','
       << c.report.failed_runs << ',' << c.report.deadline_total << ','
       << c.report.deadline_missed << ',' << c.report.miss_rate << ','
       << c.report.miss_rate_ci95 << ',' << c.report.makespan_ns.mean << ','
       << c.report.mean_energy_pj << ',' << c.report.mean_fault_energy_pj;
    if (with_cache_stats) {
      os << ',' << c.report.cache_hits << ',' << c.report.cache_misses << ','
         << c.report.cache_bypassed << ',' << c.report.cache_cycles_saved;
    }
    os << '\n';
  }
}

}  // namespace sctrace
