#include "trace/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <memory>
#include <ostream>
#include <set>
#include <sstream>
#include <thread>

#include "core/pool.hpp"
#include "kernel/error.hpp"
#include "kernel/retry.hpp"
#include "trace/journal.hpp"

namespace sctrace {

double mean_ci95(const Summary& s) {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

bool run_violates(const CampaignRunResult& r) {
  return !r.completed || r.deadline_missed > 0;
}

double CampaignReport::ess_fraction() const {
  const std::size_t completed = completed_runs();
  if (completed == 0) return 0.0;
  return effective_sample_size / static_cast<double>(completed);
}

bool CampaignReport::low_ess() const {
  return importance_sampled && completed_runs() > 0 && ess_fraction() < 0.1;
}

std::string CampaignReport::ess_warning() const {
  if (!low_ess()) return {};
  std::ostringstream os;
  os << "ESS " << effective_sample_size << " is " << ess_fraction() * 100.0
     << "% of " << completed_runs()
     << " completed runs (below the 10% floor) — the importance bias "
        "explores a different region than the nominal model; re-tune it "
        "(adaptive pilot: sctrace::tune_bias_factor)";
  return os.str();
}

namespace {

/// Host backoff before retry `attempt` of `seed`: exponential in the attempt
/// number, capped, and scaled by a deterministic jitter factor in
/// [0.75, 1.25) derived from (seed, attempt) via splitmix64 — the same
/// no-ambient-randomness discipline as minisc::retry_with_backoff, so a
/// retried campaign sleeps the same schedule on every replay.
std::uint64_t retry_backoff_ms(std::uint64_t seed, std::uint32_t attempt,
                               const CampaignOptions& opts) {
  if (opts.retry_backoff_ms == 0) return 0;
  double base = static_cast<double>(opts.retry_backoff_ms) *
                std::pow(2.0, static_cast<double>(attempt - 1));
  base = std::min(base, static_cast<double>(opts.retry_backoff_max_ms));
  std::uint64_t state = seed ^ (0x9e3779b97f4a7c15ull * attempt);
  const double u = minisc::detail::splitmix_uniform(state);
  return static_cast<std::uint64_t>(base * (0.75 + 0.5 * u));
}

/// One seed through the run function, under the per-run wall-clock budget,
/// with transient/permanent retry classification. Never throws SimError:
/// the outcome (including a still-failing final attempt) becomes the record.
CampaignRunResult run_with_retry(const FaultCampaign::RunFn& fn,
                                 std::uint64_t seed,
                                 const CampaignOptions& opts) {
  const std::size_t max_attempts = std::max<std::size_t>(1, opts.max_attempts);
  for (std::uint32_t attempt = 1;; ++attempt) {
    try {
      CampaignRunResult r;
      {
        // Any Simulator the run function builds on this thread enforces the
        // budget through its amortised wall-clock check; a hung seed throws
        // kWallClockBudget here instead of stalling the campaign.
        minisc::RunBudgetScope budget(opts.run_wall_clock_ms);
        r = fn(seed);
      }
      r.seed = seed;
      r.attempts = attempt;
      return r;
    } catch (const minisc::SimError& e) {
      if (e.kind() == minisc::SimError::Kind::kIoError) {
        // Infrastructure failure, not a simulation outcome: recording a full
        // disk as a failed *run* would bias the campaign statistics against
        // seeds that happened to land on a sick host. Propagate instead —
        // fleet workers quarantine the shard, plain campaigns abort loudly.
        throw;
      }
      if (e.transient() && attempt < max_attempts) {
        const std::uint64_t ms = retry_backoff_ms(seed, attempt, opts);
        if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
        continue;
      }
      CampaignRunResult r;
      r.seed = seed;
      r.completed = false;
      r.error = e.what();
      r.attempts = attempt;
      return r;
    }
  }
}

/// Opens the campaign's journal. Fresh start: truncate and write the header.
/// Resume against an existing non-empty journal: verify the header matches
/// this campaign, replay every intact record bit-exactly into its result
/// slot, and come back positioned to append. `todo` receives the indices
/// still to run (ascending, like the dense path claims them); `decision`
/// receives the journal's sequential-verdict record, when present (the
/// caller decides what it legalises).
std::unique_ptr<JournalWriter> open_journal(
    std::uint64_t base_seed, std::size_t n, const CampaignOptions& opts,
    std::vector<CampaignRunResult>& results, std::size_t offset,
    std::vector<std::size_t>& todo,
    std::optional<JournalDecision>& decision) {
  JournalHeader header;
  header.base_seed = base_seed;
  header.runs = n;
  header.scenario_digest = opts.scenario_digest;
  header.tag = opts.journal_tag;
  header.shard_index = opts.shard_index;
  header.shard_count = opts.shard_count == 0 ? 1 : opts.shard_count;
  header.shard_begin = opts.shard_begin;
  header.total_runs = opts.total_runs == 0 ? n : opts.total_runs;
  header.worker_id = opts.worker_id;

  if (opts.resume) {
    std::ifstream probe(opts.journal_path, std::ios::binary);
    // A missing or empty journal (a crash before the header landed) starts
    // fresh; anything with bytes in it must parse and match.
    const bool nonempty = probe && probe.peek() != std::ifstream::traits_type::eof();
    probe.close();
    if (nonempty) {
      JournalContents contents = read_journal(opts.journal_path);
      if (contents.header.version != JournalHeader::kVersion) {
        // Readable (read_journal parsed it) but not extendable: appending
        // current-version records under an old header would produce a file
        // no single version fully describes.
        throw minisc::SimError(
            minisc::SimError::Kind::kShardVersionMismatch,
            "campaign journal '" + opts.journal_path + "' has format version " +
                std::to_string(contents.header.version) +
                " but this build appends version " +
                std::to_string(JournalHeader::kVersion) +
                " — old journals are read-only (read_journal); delete the "
                "file to re-run the campaign under the current format");
      }
      if (contents.header.base_seed != base_seed ||
          contents.header.runs != n ||
          contents.header.scenario_digest != opts.scenario_digest ||
          contents.header.tag != opts.journal_tag) {
        throw minisc::SimError(
            minisc::SimError::Kind::kBadConfig,
            "campaign journal '" + opts.journal_path +
                "' was written by a different campaign (header: base_seed=" +
                std::to_string(contents.header.base_seed) + " runs=" +
                std::to_string(contents.header.runs) + " digest=" +
                std::to_string(contents.header.scenario_digest) + " tag='" +
                contents.header.tag + "'; resuming: base_seed=" +
                std::to_string(base_seed) + " runs=" + std::to_string(n) +
                " digest=" + std::to_string(opts.scenario_digest) + " tag='" +
                opts.journal_tag + "') — refusing to mix their runs");
      }
      // Shard identity must match too — all of it except worker_id, which
      // names the journal's creator: adoption of a dead worker's shard
      // resumes under a different worker id by design.
      const std::uint64_t want_count = opts.shard_count == 0 ? 1 : opts.shard_count;
      const std::uint64_t want_total = opts.total_runs == 0 ? n : opts.total_runs;
      if (contents.header.shard_index != opts.shard_index ||
          contents.header.shard_count != want_count ||
          contents.header.shard_begin != opts.shard_begin ||
          contents.header.total_runs != want_total) {
        throw minisc::SimError(
            minisc::SimError::Kind::kBadConfig,
            "campaign journal '" + opts.journal_path +
                "' belongs to shard " +
                std::to_string(contents.header.shard_index) + "/" +
                std::to_string(contents.header.shard_count) + " at [" +
                std::to_string(contents.header.shard_begin) + ", +" +
                std::to_string(contents.header.runs) + ") of " +
                std::to_string(contents.header.total_runs) +
                " total runs; resuming as shard " +
                std::to_string(opts.shard_index) + "/" +
                std::to_string(want_count) + " at [" +
                std::to_string(opts.shard_begin) + ", +" + std::to_string(n) +
                ") of " + std::to_string(want_total) +
                " — refusing to mix shard layouts");
      }
      std::vector<bool> done(n, false);
      for (JournalRecord& rec : contents.records) {
        if (rec.index >= n) {
          throw minisc::SimError(
              minisc::SimError::Kind::kJournalCorrupt,
              "campaign journal '" + opts.journal_path + "': record index " +
                  std::to_string(rec.index) + " out of range (campaign has " +
                  std::to_string(n) + " runs)");
        }
        results[offset + rec.index] = std::move(rec.result);
        done[rec.index] = true;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (!done[i]) todo.push_back(i);
      }
      decision = contents.decision;
      return std::make_unique<JournalWriter>(
          opts.journal_path, contents.valid_bytes, opts.journal_flush_every);
    }
  }
  todo.resize(n);
  for (std::size_t i = 0; i < n; ++i) todo[i] = i;
  return std::make_unique<JournalWriter>(opts.journal_path, header,
                                         opts.journal_flush_every);
}

}  // namespace

void FaultCampaign::run(std::uint64_t base_seed, std::size_t n,
                        const CampaignOptions& opts) {
  if (!fn_) {
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "FaultCampaign::run on a merge-constructed campaign: it carries "
        "recorded results only, there is no run function to execute");
  }
  const bool smc_on = opts.smc.engaged();
  if (smc_on && opts.shard_count > 1) {
    // The sequential decision consumes the campaign's runs in global seed
    // order; a shard only sees its own slice, so its local decision would
    // answer a different question than the campaign's. Shard a sweep
    // instead — there every cell is a whole campaign and prunes honestly.
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "sequential model checking (CampaignOptions::smc) is incompatible "
        "with sharded campaigns (shard_count > 1): the decision needs the "
        "global seed order — shard a sweep instead, where each cell is a "
        "whole campaign");
  }
  // Pre-sized slot array: run i (seed base_seed + i) writes slot offset + i
  // and nothing else, so the assembled results — and therefore report() and
  // write_csv() — are identical whether the slots fill on one thread or
  // eight, in any interleaving. Journal replay drops recorded results into
  // the same slots, which is why a resumed campaign aggregates to the same
  // bytes as an uninterrupted one.
  const std::size_t offset = results_.size();
  results_.resize(offset + n);

  std::unique_ptr<JournalWriter> journal;
  std::vector<std::size_t> todo;
  std::optional<JournalDecision> decision;
  if (!opts.journal_path.empty()) {
    journal = open_journal(base_seed, n, opts, results_, offset, todo,
                           decision);
  }

  if (decision) {
    // The journal already carries a sequential verdict: the campaign it
    // records chose to stop at `executed` runs. Resuming it re-runs nothing
    // — the decision replays like the run records do, and the output is
    // byte-identical to the run that wrote it.
    if (!smc_on) {
      throw minisc::SimError(
          minisc::SimError::Kind::kBadConfig,
          "campaign journal '" + opts.journal_path +
              "' carries a sequential decision record, but this campaign "
              "runs without an smc spec — an early-stopped journal can only "
              "resume under sequential model checking (or be merged)");
    }
    if (!same_smc_spec(opts.smc, decision->spec)) {
      throw minisc::SimError(
          minisc::SimError::Kind::kBadConfig,
          "campaign journal '" + opts.journal_path +
              "' was decided under a different smc spec (threshold/delta/"
              "alpha/beta/method/min_samples/window/use_weights differ) — "
              "refusing to replay a verdict for a different hypothesis");
    }
    if (decision->executed > n) {
      throw minisc::SimError(
          minisc::SimError::Kind::kJournalCorrupt,
          "campaign journal '" + opts.journal_path +
              "': decision record covers " +
              std::to_string(decision->executed) +
              " executed runs, but the campaign has only " +
              std::to_string(n));
    }
    for (const std::size_t i : todo) {
      if (i < decision->executed) {
        throw minisc::SimError(
            minisc::SimError::Kind::kJournalCorrupt,
            "campaign journal '" + opts.journal_path +
                "': decision record covers " +
                std::to_string(decision->executed) +
                " executed runs but run " + std::to_string(i) +
                " is missing — the decision should never have been durable "
                "before its runs");
      }
    }
    results_.resize(offset + decision->executed);
    smc_spec_ = opts.smc;
    smc_verdict_ = decision->verdict;
    return;
  }

  if (smc_on) {
    run_sequential(base_seed, n, opts, offset, journal.get(), todo);
    return;
  }

  auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + i;
    CampaignRunResult r = run_with_retry(fn_, seed, opts);
    // Journal before publishing the slot: a record is durable (or at worst a
    // tolerated torn tail) by the time anything can observe the result.
    if (journal) journal->append(i, r);
    results_[offset + i] = std::move(r);
  };

  if (journal) {
    if (opts.threads <= 1) {
      for (const std::size_t i : todo) run_one(i);
    } else {
      scperf::ThreadPool pool(opts.threads);
      pool.parallel_for(todo, opts.chunk, run_one);
    }
    journal->sync();
  } else if (opts.threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    scperf::ThreadPool pool(opts.threads);
    pool.parallel_for(n, opts.chunk, run_one);
  }
}

void FaultCampaign::run_sequential(std::uint64_t base_seed, std::size_t n,
                                   const CampaignOptions& opts,
                                   std::size_t offset, JournalWriter* journal,
                                   const std::vector<std::size_t>& todo) {
  // Which slots still need executing: everything, unless a journal replayed
  // some (then only its missing indices).
  std::vector<bool> done(n, journal != nullptr);
  if (journal != nullptr) {
    for (const std::size_t i : todo) done[i] = false;
  }

  auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + i;
    CampaignRunResult r = run_with_retry(fn_, seed, opts);
    if (journal) journal->append(i, r);
    results_[offset + i] = std::move(r);
  };

  std::unique_ptr<scperf::ThreadPool> pool;
  if (opts.threads > 1) {
    pool = std::make_unique<scperf::ThreadPool>(opts.threads);
  }

  // Windowed early stopping: issue seeds in windows of spec.window runs,
  // then feed the completed slots to the tester *in seed order*. The window
  // size — not the thread count — decides which seeds execute, and the feed
  // order is the seed order, so the stopping point (and every byte derived
  // from it) is identical for any thread count.
  SequentialTester tester(opts.smc);
  std::size_t executed = 0;  // window-aligned count of issued runs
  std::size_t fed = 0;       // slots consumed by the tester, in seed order
  while (executed < n && !tester.decided()) {
    const std::size_t end = std::min(n, executed + opts.smc.window);
    std::vector<std::size_t> batch;
    batch.reserve(end - executed);
    for (std::size_t i = executed; i < end; ++i) {
      if (!done[i]) batch.push_back(i);
    }
    if (!batch.empty()) {
      if (pool) {
        pool->parallel_for(batch, opts.chunk, run_one);
      } else {
        for (const std::size_t i : batch) run_one(i);
      }
    }
    executed = end;
    while (fed < executed && !tester.decided()) {
      const CampaignRunResult& r = results_[offset + fed];
      tester.feed(run_violates(r), std::exp(r.log_weight));
      ++fed;
    }
  }

  // The window that crossed the boundary ran to completion (its runs are
  // real data and stay in the results/CSV); everything after it was never
  // issued, so the slot array shrinks to what actually executed.
  results_.resize(offset + executed);
  smc_spec_ = opts.smc;
  smc_verdict_ = tester.verdict();
  if (journal) {
    // Always record the decision — an undecided budget exhaustion included:
    // its presence is what marks the journal final (and resumable as a
    // no-op) rather than interrupted.
    JournalDecision d;
    d.spec = opts.smc;
    d.verdict = *smc_verdict_;
    d.executed = executed;
    journal->append_decision(d);
  }
}

CampaignReport FaultCampaign::report() const {
  CampaignReport rep;
  rep.runs = results_.size();
  std::vector<double> makespans;
  std::vector<double> recoveries;
  // Importance-sampling accumulators over completed runs: the weighted
  // per-run miss fraction w_i * m_i, and the raw weights for ESS.
  std::vector<double> weighted_miss;
  std::vector<double> weights;
  double sum_w = 0.0;
  bool any_weighted = false;
  for (const CampaignRunResult& r : results_) {
    rep.total_attempts += r.attempts;
    if (r.attempts > 1) ++rep.retried_runs;
    if (!r.completed) {
      ++rep.failed_runs;
      continue;
    }
    rep.deadline_total += r.deadline_total;
    rep.deadline_missed += r.deadline_missed;
    makespans.push_back(r.makespan.to_ns_d());
    recoveries.insert(recoveries.end(), r.recovery_latencies_ns.begin(),
                      r.recovery_latencies_ns.end());
    rep.mean_energy_pj += r.energy_pj;
    rep.mean_fault_energy_pj += r.fault_energy_pj;
    rep.cache_hits += r.cache_hits;
    rep.cache_misses += r.cache_misses;
    rep.cache_bypassed += r.cache_bypassed;
    rep.cache_cycles_saved += r.cache_cycles_saved;
    const double w = std::exp(r.log_weight);
    if (r.log_weight != 0.0) any_weighted = true;
    const double m =
        r.deadline_total > 0
            ? static_cast<double>(r.deadline_missed) /
                  static_cast<double>(r.deadline_total)
            : 0.0;
    weighted_miss.push_back(w * m);
    weights.push_back(w);
    sum_w += w;
  }
  const std::size_t completed = rep.runs - rep.failed_runs;
  if (completed > 0) {
    rep.mean_energy_pj /= static_cast<double>(completed);
    rep.mean_fault_energy_pj /= static_cast<double>(completed);
  }
  if (rep.deadline_total > 0) {
    const double p = static_cast<double>(rep.deadline_missed) /
                     static_cast<double>(rep.deadline_total);
    rep.miss_rate = p;
    if (rep.deadline_missed == 0 || rep.deadline_missed == rep.deadline_total) {
      // At 0/N or N/N the Wald interval collapses to width zero, which
      // overstates certainty badly in exactly the rare-event regime a fault
      // campaign probes. Use the rule-of-three bound 3/N instead.
      rep.miss_rate_ci95 = 3.0 / static_cast<double>(rep.deadline_total);
    } else {
      rep.miss_rate_ci95 =
          1.96 * std::sqrt(p * (1.0 - p) /
                           static_cast<double>(rep.deadline_total));
    }
  }
  rep.makespan_ns = summarize(makespans);
  rep.makespan_ci95 = mean_ci95(rep.makespan_ns);
  rep.recovery_ns = summarize(recoveries);
  rep.recovery_ci95 = mean_ci95(rep.recovery_ns);
  rep.importance_sampled = any_weighted;
  if (any_weighted && completed > 0) {
    const Summary wm = summarize(weighted_miss);
    rep.weighted_miss_rate = wm.mean;
    rep.weighted_miss_rate_ci95 = mean_ci95(wm);
    rep.mean_weight = sum_w / static_cast<double>(completed);
    rep.effective_sample_size = kish_ess(weights);
  }
  if (smc_verdict_) {
    rep.smc_engaged = true;
    rep.smc_spec = smc_spec_;
    rep.smc = *smc_verdict_;
  }
  return rep;
}

void CampaignReport::print(std::ostream& os, bool with_cache_stats) const {
  os << "fault campaign: " << runs << " runs (" << failed_runs
     << " failed)\n";
  if (retried_runs > 0) {
    // Only printed when something retried, so retry-free campaigns keep
    // emitting the historical bytes.
    os << "  retries:   " << retried_runs << " runs took >1 attempt ("
       << total_attempts << " attempts across " << runs << " runs)\n";
  }
  os << "  deadlines: " << deadline_missed << "/" << deadline_total
     << " missed, miss rate " << miss_rate * 100.0 << "% +/- "
     << miss_rate_ci95 * 100.0 << "%\n";
  if (smc_engaged) {
    os << "  sequential: " << to_string(smc_spec.method) << " verdict "
       << to_string(smc.outcome) << " after " << smc.samples_used
       << " samples (H: P(violation) <= " << smc_spec.threshold << " +/- "
       << smc_spec.delta << " at alpha=" << smc_spec.alpha
       << " beta=" << smc_spec.beta << "; log-ratio " << smc.log_ratio
       << " vs bound " << smc.bound << ", estimate " << smc.estimate
       << ", ess " << smc.ess << ")\n";
  }
  if (importance_sampled) {
    os << "  importance-sampled nominal miss rate: "
       << weighted_miss_rate * 100.0 << "% +/- "
       << weighted_miss_rate_ci95 * 100.0 << "%  (ESS "
       << effective_sample_size << " of " << runs - failed_runs
       << ", mean weight " << mean_weight << ")\n";
    if (low_ess()) {
      // A badly matched bias must be loud: a tiny ESS hides inside an
      // apparently tight (but meaningless) confidence interval. The text is
      // single-sourced in ess_warning() — the per-cell sweep warning formats
      // through the same function, so the two surfaces cannot disagree
      // about the achieved fraction.
      os << "  WARNING: " << ess_warning() << "\n";
    }
  }
  if (makespan_ns.count > 0) {
    os << "  makespan:  mean " << makespan_ns.mean << " ns +/- "
       << makespan_ci95 << " (min " << makespan_ns.min << ", max "
       << makespan_ns.max << ", n=" << makespan_ns.count << ")\n";
  }
  if (recovery_ns.count > 0) {
    os << "  recovery:  mean " << recovery_ns.mean << " ns +/- "
       << recovery_ci95 << " (min " << recovery_ns.min << ", max "
       << recovery_ns.max << ", n=" << recovery_ns.count << ")\n";
  }
  if (mean_energy_pj > 0.0 || mean_fault_energy_pj > 0.0) {
    os << "  energy:    mean " << mean_energy_pj << " pJ/run, of which "
       << mean_fault_energy_pj << " pJ fault overhead\n";
  }
  if (with_cache_stats) {
    os << "  seg-cache: " << cache_hits << " hits, " << cache_misses
       << " misses, " << cache_bypassed << " bypassed, " << cache_cycles_saved
       << " cycles saved\n";
  }
}

void FaultCampaign::write_csv(std::ostream& os, bool with_cache_stats) const {
  if (smc_verdict_) {
    // The verdict travels with the per-run data as a comment row, so a CSV
    // with fewer rows than the nominal budget is self-explaining (and the
    // byte-identity gates can compare it like any other output).
    os << "# smc=" << to_string(smc_spec_.method) << " outcome="
       << to_string(smc_verdict_->outcome) << " samples_used="
       << smc_verdict_->samples_used << " executed=" << results_.size()
       << " threshold=" << smc_spec_.threshold << " delta=" << smc_spec_.delta
       << " alpha=" << smc_spec_.alpha << " beta=" << smc_spec_.beta
       << " log_ratio=" << smc_verdict_->log_ratio << " bound="
       << smc_verdict_->bound << " estimate=" << smc_verdict_->estimate
       << " ess=" << smc_verdict_->ess << '\n';
  }
  os << "seed,completed,makespan_ns,deadline_total,deadline_missed,"
        "faults_injected,recovery_samples,mean_recovery_ns,log_weight,"
        "weight,energy_pj,fault_energy_pj,value_hash,attempts";
  if (with_cache_stats) {
    os << ",cache_hits,cache_misses,cache_bypassed,cache_cycles_saved";
  }
  os << '\n';
  for (const CampaignRunResult& r : results_) {
    const Summary rec = summarize(r.recovery_latencies_ns);
    os << r.seed << ',' << (r.completed ? 1 : 0) << ','
       << r.makespan.to_ns_d() << ',' << r.deadline_total << ','
       << r.deadline_missed << ',' << r.faults_injected << ','
       << rec.count << ',' << rec.mean << ',' << r.log_weight << ','
       << std::exp(r.log_weight) << ',' << r.energy_pj << ','
       << r.fault_energy_pj << ',' << r.value_hash << ',' << r.attempts;
    if (with_cache_stats) {
      os << ',' << r.cache_hits << ',' << r.cache_misses << ','
         << r.cache_bypassed << ',' << r.cache_cycles_saved;
    }
    os << '\n';
  }
}

namespace {

/// Journal filenames derive from cell names; anything outside [A-Za-z0-9._-]
/// becomes '_' so a scenario called "lossy 5%" cannot escape the directory.
std::string sanitize_for_path(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

}  // namespace

void CampaignSweep::run(std::uint64_t base_seed, std::size_t n,
                        const CampaignOptions& opts) {
  if (!factory_) {
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "CampaignSweep::run on a merge-constructed sweep: it carries "
        "recorded cells only, there is no factory to execute");
  }
  cells_.clear();
  cells_.reserve(mappings_.size() * scenarios_.size());
  for (const std::string& m : mappings_) {
    for (const std::string& s : scenarios_) {
      // Each cell journals (and resumes) independently: the sweep's
      // journal_path is a prefix, the cell identity goes into both the
      // filename and the header tag. A kill mid-sweep therefore replays
      // every finished cell from disk and re-runs only the missing seeds of
      // the interrupted one.
      CampaignOptions cell_opts = opts;
      if (!opts.journal_path.empty()) {
        cell_opts.journal_path = opts.journal_path + "." +
                                 sanitize_for_path(m) + "." +
                                 sanitize_for_path(s);
        cell_opts.journal_tag = opts.journal_tag.empty()
                                    ? m + "/" + s
                                    : opts.journal_tag + ":" + m + "/" + s;
      }
      FaultCampaign campaign(factory_(m, s));
      campaign.run(base_seed, n, cell_opts);
      cells_.push_back(Cell{m, s, campaign.report()});
    }
  }
}

const CampaignReport* CampaignSweep::cell(const std::string& mapping,
                                          const std::string& scenario) const {
  for (const Cell& c : cells_) {
    if (c.mapping == mapping && c.scenario == scenario) return &c.report;
  }
  return nullptr;
}

void CampaignSweep::print(std::ostream& os) const {
  // Miss-rate grid, mappings down, scenarios across. Column width is sized
  // for "100.00%" plus breathing room. When any cell ran under sequential
  // model checking the numbers carry verdict markers — accept ✓, reject ✗,
  // undecided ~ — so the pruning is visible at a glance; smc-free sweeps
  // keep the historical grid bytes exactly.
  bool any_smc = false;
  for (const Cell& c : cells_) any_smc = any_smc || c.report.smc_engaged;
  std::size_t name_w = 7;  // "mapping"
  for (const std::string& m : mappings_) name_w = std::max(name_w, m.size());
  os << "deadline miss rate (%), " << mappings_.size() << " mappings x "
     << scenarios_.size() << " scenarios\n";
  os << std::left << std::setw(static_cast<int>(name_w) + 2) << "mapping";
  for (const std::string& s : scenarios_) {
    os << std::right << std::setw(std::max<int>(10, static_cast<int>(s.size()) + 2))
       << s;
  }
  os << '\n';
  const std::streamsize old_prec = os.precision();
  os << std::fixed << std::setprecision(2);
  for (const std::string& m : mappings_) {
    os << std::left << std::setw(static_cast<int>(name_w) + 2) << m;
    for (const std::string& s : scenarios_) {
      const CampaignReport* rep = cell(m, s);
      const int w = std::max<int>(10, static_cast<int>(s.size()) + 2);
      if (rep == nullptr) {
        os << std::right << std::setw(w) << "-";
      } else if (!any_smc) {
        os << std::right << std::setw(w) << rep->miss_rate * 100.0;
      } else {
        // Verdict markers are multi-byte UTF-8 but single-column glyphs;
        // setw counts bytes, so the padding is done by hand in display
        // columns (number + 2: a space and the marker).
        std::ostringstream num;
        num << std::fixed << std::setprecision(2) << rep->miss_rate * 100.0;
        const char* mark = "  ";
        if (rep->smc_engaged) {
          switch (rep->smc.outcome) {
            case SmcOutcome::kAccept:
              mark = " ✓";
              break;
            case SmcOutcome::kReject:
              mark = " ✗";
              break;
            case SmcOutcome::kUndecided:
              mark = " ~";
              break;
          }
        }
        for (int pad = w - static_cast<int>(num.str().size()) - 2; pad > 0;
             --pad) {
          os << ' ';
        }
        os << num.str() << mark;
      }
    }
    os << '\n';
  }
  os << std::defaultfloat << std::setprecision(static_cast<int>(old_prec));
  // Degenerate-weight cells: the single-campaign Report::print warning,
  // surfaced at the grid level so a sharded sweep cannot hide a collapsed
  // importance bias inside one quiet cell. Weight-free sweeps print nothing
  // here, keeping the historical grid bytes. The text is single-sourced in
  // CampaignReport::ess_warning (shared with Report::print), and the seen-
  // set deduplicates a cell that appears twice in cells_ (merge paths) —
  // one warning per (mapping, scenario), never a double report.
  std::set<std::pair<std::string, std::string>> warned;
  for (const Cell& c : cells_) {
    if (!c.report.low_ess()) continue;
    if (!warned.emplace(c.mapping, c.scenario).second) continue;
    os << "WARNING: cell " << c.mapping << "/" << c.scenario << ": "
       << c.report.ess_warning() << "\n";
  }
}

void CampaignSweep::write_csv(std::ostream& os, bool with_cache_stats) const {
  // The smc columns appear only when some cell actually ran under a
  // sequential spec, so smc-free sweeps keep their historical CSV bytes.
  bool any_smc = false;
  for (const Cell& c : cells_) any_smc = any_smc || c.report.smc_engaged;
  os << "mapping,scenario,runs,failed_runs,deadline_total,deadline_missed,"
        "miss_rate,miss_rate_ci95,mean_makespan_ns,mean_energy_pj,"
        "mean_fault_energy_pj";
  if (any_smc) {
    os << ",smc_outcome,smc_samples_used";
  }
  if (with_cache_stats) {
    os << ",cache_hits,cache_misses,cache_bypassed,cache_cycles_saved";
  }
  os << '\n';
  for (const Cell& c : cells_) {
    os << c.mapping << ',' << c.scenario << ',' << c.report.runs << ','
       << c.report.failed_runs << ',' << c.report.deadline_total << ','
       << c.report.deadline_missed << ',' << c.report.miss_rate << ','
       << c.report.miss_rate_ci95 << ',' << c.report.makespan_ns.mean << ','
       << c.report.mean_energy_pj << ',' << c.report.mean_fault_energy_pj;
    if (any_smc) {
      if (c.report.smc_engaged) {
        os << ',' << to_string(c.report.smc.outcome) << ','
           << c.report.smc.samples_used;
      } else {
        os << ",-,0";
      }
    }
    if (with_cache_stats) {
      os << ',' << c.report.cache_hits << ',' << c.report.cache_misses << ','
         << c.report.cache_bypassed << ',' << c.report.cache_cycles_saved;
    }
    os << '\n';
  }
}

}  // namespace sctrace
