#include "trace/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>

#include "core/pool.hpp"
#include "kernel/error.hpp"

namespace sctrace {

double mean_ci95(const Summary& s) {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

void FaultCampaign::run(std::uint64_t base_seed, std::size_t n,
                        const CampaignOptions& opts) {
  // Pre-sized slot array: run i (seed base_seed + i) writes slot offset + i
  // and nothing else, so the assembled results — and therefore report() and
  // write_csv() — are identical whether the slots fill on one thread or
  // eight, in any interleaving.
  const std::size_t offset = results_.size();
  results_.resize(offset + n);
  auto run_one = [&](std::size_t i) {
    const std::uint64_t seed = base_seed + i;
    CampaignRunResult r;
    try {
      r = fn_(seed);
      r.seed = seed;
    } catch (const minisc::SimError& e) {
      r = CampaignRunResult{};
      r.seed = seed;
      r.completed = false;
      r.error = e.what();
    }
    results_[offset + i] = std::move(r);
  };
  if (opts.threads <= 1) {
    for (std::size_t i = 0; i < n; ++i) run_one(i);
  } else {
    scperf::ThreadPool pool(opts.threads);
    pool.parallel_for(n, opts.chunk, run_one);
  }
}

CampaignReport FaultCampaign::report() const {
  CampaignReport rep;
  rep.runs = results_.size();
  std::vector<double> makespans;
  std::vector<double> recoveries;
  // Importance-sampling accumulators over completed runs: the weighted
  // per-run miss fraction w_i * m_i, and the raw weights for ESS.
  std::vector<double> weighted_miss;
  double sum_w = 0.0;
  double sum_w2 = 0.0;
  bool any_weighted = false;
  for (const CampaignRunResult& r : results_) {
    if (!r.completed) {
      ++rep.failed_runs;
      continue;
    }
    rep.deadline_total += r.deadline_total;
    rep.deadline_missed += r.deadline_missed;
    makespans.push_back(r.makespan.to_ns_d());
    recoveries.insert(recoveries.end(), r.recovery_latencies_ns.begin(),
                      r.recovery_latencies_ns.end());
    rep.mean_energy_pj += r.energy_pj;
    rep.mean_fault_energy_pj += r.fault_energy_pj;
    rep.cache_hits += r.cache_hits;
    rep.cache_misses += r.cache_misses;
    rep.cache_bypassed += r.cache_bypassed;
    rep.cache_cycles_saved += r.cache_cycles_saved;
    const double w = std::exp(r.log_weight);
    if (r.log_weight != 0.0) any_weighted = true;
    const double m =
        r.deadline_total > 0
            ? static_cast<double>(r.deadline_missed) /
                  static_cast<double>(r.deadline_total)
            : 0.0;
    weighted_miss.push_back(w * m);
    sum_w += w;
    sum_w2 += w * w;
  }
  const std::size_t completed = rep.runs - rep.failed_runs;
  if (completed > 0) {
    rep.mean_energy_pj /= static_cast<double>(completed);
    rep.mean_fault_energy_pj /= static_cast<double>(completed);
  }
  if (rep.deadline_total > 0) {
    const double p = static_cast<double>(rep.deadline_missed) /
                     static_cast<double>(rep.deadline_total);
    rep.miss_rate = p;
    if (rep.deadline_missed == 0 || rep.deadline_missed == rep.deadline_total) {
      // At 0/N or N/N the Wald interval collapses to width zero, which
      // overstates certainty badly in exactly the rare-event regime a fault
      // campaign probes. Use the rule-of-three bound 3/N instead.
      rep.miss_rate_ci95 = 3.0 / static_cast<double>(rep.deadline_total);
    } else {
      rep.miss_rate_ci95 =
          1.96 * std::sqrt(p * (1.0 - p) /
                           static_cast<double>(rep.deadline_total));
    }
  }
  rep.makespan_ns = summarize(makespans);
  rep.makespan_ci95 = mean_ci95(rep.makespan_ns);
  rep.recovery_ns = summarize(recoveries);
  rep.recovery_ci95 = mean_ci95(rep.recovery_ns);
  rep.importance_sampled = any_weighted;
  if (any_weighted && completed > 0) {
    const Summary wm = summarize(weighted_miss);
    rep.weighted_miss_rate = wm.mean;
    rep.weighted_miss_rate_ci95 = mean_ci95(wm);
    rep.mean_weight = sum_w / static_cast<double>(completed);
    rep.effective_sample_size = sum_w2 > 0.0 ? sum_w * sum_w / sum_w2 : 0.0;
  }
  return rep;
}

void CampaignReport::print(std::ostream& os, bool with_cache_stats) const {
  os << "fault campaign: " << runs << " runs (" << failed_runs
     << " failed)\n";
  os << "  deadlines: " << deadline_missed << "/" << deadline_total
     << " missed, miss rate " << miss_rate * 100.0 << "% +/- "
     << miss_rate_ci95 * 100.0 << "%\n";
  if (importance_sampled) {
    os << "  importance-sampled nominal miss rate: "
       << weighted_miss_rate * 100.0 << "% +/- "
       << weighted_miss_rate_ci95 * 100.0 << "%  (ESS "
       << effective_sample_size << " of " << runs - failed_runs
       << ", mean weight " << mean_weight << ")\n";
  }
  if (makespan_ns.count > 0) {
    os << "  makespan:  mean " << makespan_ns.mean << " ns +/- "
       << makespan_ci95 << " (min " << makespan_ns.min << ", max "
       << makespan_ns.max << ", n=" << makespan_ns.count << ")\n";
  }
  if (recovery_ns.count > 0) {
    os << "  recovery:  mean " << recovery_ns.mean << " ns +/- "
       << recovery_ci95 << " (min " << recovery_ns.min << ", max "
       << recovery_ns.max << ", n=" << recovery_ns.count << ")\n";
  }
  if (mean_energy_pj > 0.0 || mean_fault_energy_pj > 0.0) {
    os << "  energy:    mean " << mean_energy_pj << " pJ/run, of which "
       << mean_fault_energy_pj << " pJ fault overhead\n";
  }
  if (with_cache_stats) {
    os << "  seg-cache: " << cache_hits << " hits, " << cache_misses
       << " misses, " << cache_bypassed << " bypassed, " << cache_cycles_saved
       << " cycles saved\n";
  }
}

void FaultCampaign::write_csv(std::ostream& os, bool with_cache_stats) const {
  os << "seed,completed,makespan_ns,deadline_total,deadline_missed,"
        "faults_injected,recovery_samples,mean_recovery_ns,log_weight,"
        "weight,energy_pj,fault_energy_pj,value_hash";
  if (with_cache_stats) {
    os << ",cache_hits,cache_misses,cache_bypassed,cache_cycles_saved";
  }
  os << '\n';
  for (const CampaignRunResult& r : results_) {
    const Summary rec = summarize(r.recovery_latencies_ns);
    os << r.seed << ',' << (r.completed ? 1 : 0) << ','
       << r.makespan.to_ns_d() << ',' << r.deadline_total << ','
       << r.deadline_missed << ',' << r.faults_injected << ','
       << rec.count << ',' << rec.mean << ',' << r.log_weight << ','
       << std::exp(r.log_weight) << ',' << r.energy_pj << ','
       << r.fault_energy_pj << ',' << r.value_hash;
    if (with_cache_stats) {
      os << ',' << r.cache_hits << ',' << r.cache_misses << ','
         << r.cache_bypassed << ',' << r.cache_cycles_saved;
    }
    os << '\n';
  }
}

void CampaignSweep::run(std::uint64_t base_seed, std::size_t n,
                        const CampaignOptions& opts) {
  cells_.clear();
  cells_.reserve(mappings_.size() * scenarios_.size());
  for (const std::string& m : mappings_) {
    for (const std::string& s : scenarios_) {
      FaultCampaign campaign(factory_(m, s));
      campaign.run(base_seed, n, opts);
      cells_.push_back(Cell{m, s, campaign.report()});
    }
  }
}

const CampaignReport* CampaignSweep::cell(const std::string& mapping,
                                          const std::string& scenario) const {
  for (const Cell& c : cells_) {
    if (c.mapping == mapping && c.scenario == scenario) return &c.report;
  }
  return nullptr;
}

void CampaignSweep::print(std::ostream& os) const {
  // Miss-rate grid, mappings down, scenarios across. Column width is sized
  // for "100.00%" plus breathing room.
  std::size_t name_w = 7;  // "mapping"
  for (const std::string& m : mappings_) name_w = std::max(name_w, m.size());
  os << "deadline miss rate (%), " << mappings_.size() << " mappings x "
     << scenarios_.size() << " scenarios\n";
  os << std::left << std::setw(static_cast<int>(name_w) + 2) << "mapping";
  for (const std::string& s : scenarios_) {
    os << std::right << std::setw(std::max<int>(10, static_cast<int>(s.size()) + 2))
       << s;
  }
  os << '\n';
  const std::streamsize old_prec = os.precision();
  os << std::fixed << std::setprecision(2);
  for (const std::string& m : mappings_) {
    os << std::left << std::setw(static_cast<int>(name_w) + 2) << m;
    for (const std::string& s : scenarios_) {
      const CampaignReport* rep = cell(m, s);
      const int w = std::max<int>(10, static_cast<int>(s.size()) + 2);
      if (rep == nullptr) {
        os << std::right << std::setw(w) << "-";
      } else {
        os << std::right << std::setw(w) << rep->miss_rate * 100.0;
      }
    }
    os << '\n';
  }
  os << std::defaultfloat << std::setprecision(static_cast<int>(old_prec));
}

void CampaignSweep::write_csv(std::ostream& os, bool with_cache_stats) const {
  os << "mapping,scenario,runs,failed_runs,deadline_total,deadline_missed,"
        "miss_rate,miss_rate_ci95,mean_makespan_ns,mean_energy_pj,"
        "mean_fault_energy_pj";
  if (with_cache_stats) {
    os << ",cache_hits,cache_misses,cache_bypassed,cache_cycles_saved";
  }
  os << '\n';
  for (const Cell& c : cells_) {
    os << c.mapping << ',' << c.scenario << ',' << c.report.runs << ','
       << c.report.failed_runs << ',' << c.report.deadline_total << ','
       << c.report.deadline_missed << ',' << c.report.miss_rate << ','
       << c.report.miss_rate_ci95 << ',' << c.report.makespan_ns.mean << ','
       << c.report.mean_energy_pj << ',' << c.report.mean_fault_energy_pj;
    if (with_cache_stats) {
      os << ',' << c.report.cache_hits << ',' << c.report.cache_misses << ','
         << c.report.cache_bypassed << ',' << c.report.cache_cycles_saved;
    }
    os << '\n';
  }
}

}  // namespace sctrace
