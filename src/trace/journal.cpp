#include "trace/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "kernel/error.hpp"

namespace sctrace {
namespace {

using minisc::SimError;

constexpr char kHeaderType = 'H';
constexpr char kRunType = 'R';
constexpr char kDecisionType = 'D';

std::uint64_t fnv1a_bytes(const unsigned char* p, std::size_t n,
                          std::uint64_t h = 1469598103934665603ull) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// ---- little-endian, bit-exact serialization primitives -------------------
//
// Doubles travel as their IEEE-754 bit pattern: the whole point of the
// journal is that a replayed run aggregates into byte-identical reports,
// which a decimal round-trip could never guarantee.

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_double(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  put_u64(out, bits);
}

void put_string(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

/// Bounds-checked cursor over one record's payload. Overruns mean the
/// payload does not parse as the record its framing claims — corruption.
struct Cursor {
  const unsigned char* p;
  std::size_t n;
  std::size_t at = 0;
  bool ok = true;

  bool need(std::size_t k) {
    if (n - at < k) ok = false;
    return ok;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return p[at++];
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t(p[at++]) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t(p[at++]) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t len = u32();
    if (!need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + at), len);
    at += len;
    return s;
  }
  bool done() const { return ok && at == n; }
};

std::string encode_header(const JournalHeader& h) {
  std::string out;
  put_u32(out, JournalHeader::kVersion);
  put_u64(out, h.base_seed);
  put_u64(out, h.runs);
  put_u64(out, h.scenario_digest);
  put_string(out, h.tag);
  // v2 shard identity block. A writer always emits the current version;
  // unsharded campaigns carry the degenerate shard-0-of-1 identity.
  put_u64(out, h.shard_index);
  put_u64(out, h.shard_count == 0 ? 1 : h.shard_count);
  put_u64(out, h.shard_begin);
  put_u64(out, h.total_runs == 0 ? h.runs : h.total_runs);
  put_string(out, h.worker_id);
  return out;
}

std::string encode_run(std::size_t index, const CampaignRunResult& r) {
  std::string out;
  put_u64(out, index);
  put_u64(out, r.seed);
  put_u8(out, r.completed ? 1 : 0);
  put_u32(out, r.attempts);
  put_string(out, r.error);
  put_u64(out, r.makespan.to_ps());
  put_u64(out, r.deadline_total);
  put_u64(out, r.deadline_missed);
  put_u32(out, static_cast<std::uint32_t>(r.recovery_latencies_ns.size()));
  for (const double v : r.recovery_latencies_ns) put_double(out, v);
  put_u64(out, r.faults_injected);
  put_double(out, r.log_weight);
  put_double(out, r.energy_pj);
  put_double(out, r.fault_energy_pj);
  put_u64(out, r.value_hash);
  put_u64(out, r.cache_hits);
  put_u64(out, r.cache_misses);
  put_u64(out, r.cache_bypassed);
  put_double(out, r.cache_cycles_saved);
  return out;
}

std::string encode_decision(const JournalDecision& d) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(d.spec.method));
  put_u8(out, static_cast<std::uint8_t>(d.verdict.outcome));
  put_u8(out, d.spec.use_weights ? 1 : 0);
  put_u64(out, d.verdict.samples_used);
  put_u64(out, d.executed);
  put_double(out, d.verdict.log_ratio);
  put_double(out, d.verdict.bound);
  put_double(out, d.verdict.estimate);
  put_double(out, d.verdict.ess);
  put_double(out, d.spec.threshold);
  put_double(out, d.spec.delta);
  put_double(out, d.spec.alpha);
  put_double(out, d.spec.beta);
  put_u64(out, d.spec.min_samples);
  put_u64(out, d.spec.window);
  return out;
}

/// Frames a payload: type, length, payload, trailing checksum.
std::string frame(char type, const std::string& payload) {
  std::string out;
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  const std::uint64_t sum = fnv1a_bytes(
      reinterpret_cast<const unsigned char*>(out.data()), out.size());
  put_u64(out, sum);
  return out;
}

[[noreturn]] void throw_corrupt(const std::string& path, std::size_t record,
                                const char* what) {
  throw SimError(SimError::Kind::kJournalCorrupt,
                 "campaign journal '" + path + "': record " +
                     std::to_string(record) + " " + what +
                     " (bit rot or concurrent writer?)");
}

/// Writer-side syscall failure: a full disk (ENOSPC), a dying device (EIO)
/// or any other host I/O fault while appending. Structured as kIoError —
/// non-transient by contract (minisc::is_transient), so campaign retry loops
/// do not hammer a disk that cannot get better — with the errno text
/// preserved for the operator.
[[noreturn]] void throw_io(const std::string& path, const char* op) {
  throw SimError(SimError::Kind::kIoError,
                 "campaign journal '" + path + "': " + op + " failed: " +
                     std::strerror(errno));
}

}  // namespace

JournalContents read_journal(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw SimError(SimError::Kind::kBadConfig,
                   "campaign journal '" + path + "': cannot open for reading");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const auto* data = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::size_t size = bytes.size();

  JournalContents out;
  std::size_t pos = 0;
  std::size_t record = 0;  // 0 = header, 1.. = run records
  bool have_header = false;
  while (pos < size) {
    // Framing: type(1) + len(4) + payload(len) + checksum(8). Anything that
    // runs past EOF is a torn append — drop it, remember the tail.
    if (size - pos < 1 + 4) break;
    const char type = static_cast<char>(data[pos]);
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= std::uint32_t(data[pos + 1 + i]) << (8 * i);
    }
    const std::size_t total = 1 + 4 + std::size_t(len) + 8;
    if (size - pos < total) break;

    const std::uint64_t want = fnv1a_bytes(data + pos, 1 + 4 + len);
    std::uint64_t got = 0;
    for (int i = 0; i < 8; ++i) {
      got |= std::uint64_t(data[pos + 1 + 4 + len + i]) << (8 * i);
    }
    if (got != want) throw_corrupt(path, record, "fails its checksum");

    Cursor c{data + pos + 1 + 4, len};
    if (!have_header) {
      if (type != kHeaderType) {
        throw_corrupt(path, record, "is not the expected header record");
      }
      out.header.version = c.u32();
      if (out.header.version != 1 && out.header.version != JournalHeader::kVersion) {
        throw SimError(
            SimError::Kind::kShardVersionMismatch,
            "campaign journal '" + path + "': format version " +
                std::to_string(out.header.version) +
                ", but this build reads versions 1-" +
                std::to_string(JournalHeader::kVersion) +
                " — journals from different releases refuse to mix");
      }
      out.header.base_seed = c.u64();
      out.header.runs = c.u64();
      out.header.scenario_digest = c.u64();
      out.header.tag = c.str();
      if (out.header.version >= 2) {
        out.header.shard_index = c.u64();
        out.header.shard_count = c.u64();
        out.header.shard_begin = c.u64();
        out.header.total_runs = c.u64();
        out.header.worker_id = c.str();
      } else {
        // v1 compat: pre-shard journals are the whole campaign by definition.
        out.header.shard_index = 0;
        out.header.shard_count = 1;
        out.header.shard_begin = 0;
        out.header.total_runs = out.header.runs;
        out.header.worker_id.clear();
      }
      if (!c.done()) throw_corrupt(path, record, "has a malformed header");
      have_header = true;
    } else if (type == kDecisionType) {
      JournalDecision d;
      const std::uint8_t method = c.u8();
      const std::uint8_t outcome = c.u8();
      if (method > 1 || outcome > 2) {
        throw_corrupt(path, record, "has an out-of-range decision enum");
      }
      d.spec.method = static_cast<SmcMethod>(method);
      d.verdict.outcome = static_cast<SmcOutcome>(outcome);
      d.spec.use_weights = c.u8() != 0;
      d.verdict.samples_used = c.u64();
      d.executed = c.u64();
      d.verdict.log_ratio = c.f64();
      d.verdict.bound = c.f64();
      d.verdict.estimate = c.f64();
      d.verdict.ess = c.f64();
      d.spec.threshold = c.f64();
      d.spec.delta = c.f64();
      d.spec.alpha = c.f64();
      d.spec.beta = c.f64();
      d.spec.min_samples = static_cast<std::size_t>(c.u64());
      d.spec.window = static_cast<std::size_t>(c.u64());
      if (!c.done()) {
        throw_corrupt(path, record, "has a malformed decision payload");
      }
      // Last one wins: a resumed writer could in principle append a second
      // decision; later records supersede earlier ones, like run records.
      out.decision = d;
    } else {
      if (type != kRunType) {
        throw_corrupt(path, record, "has an unknown record type");
      }
      JournalRecord rec;
      rec.index = static_cast<std::size_t>(c.u64());
      rec.result.seed = c.u64();
      rec.result.completed = c.u8() != 0;
      rec.result.attempts = c.u32();
      rec.result.error = c.str();
      rec.result.makespan = minisc::Time::ps(c.u64());
      rec.result.deadline_total = c.u64();
      rec.result.deadline_missed = c.u64();
      const std::uint32_t samples = c.u32();
      if (!c.need(std::size_t(samples) * 8)) {
        throw_corrupt(path, record, "has a malformed recovery-sample list");
      }
      rec.result.recovery_latencies_ns.reserve(samples);
      for (std::uint32_t i = 0; i < samples; ++i) {
        rec.result.recovery_latencies_ns.push_back(c.f64());
      }
      rec.result.faults_injected = c.u64();
      rec.result.log_weight = c.f64();
      rec.result.energy_pj = c.f64();
      rec.result.fault_energy_pj = c.f64();
      rec.result.value_hash = c.u64();
      rec.result.cache_hits = c.u64();
      rec.result.cache_misses = c.u64();
      rec.result.cache_bypassed = c.u64();
      rec.result.cache_cycles_saved = c.f64();
      if (!c.done()) throw_corrupt(path, record, "has a malformed payload");
      out.records.push_back(std::move(rec));
    }
    pos += total;
    ++record;
  }
  if (!have_header) {
    if (size == 0) {
      throw SimError(SimError::Kind::kBadConfig,
                     "campaign journal '" + path + "': file is empty");
    }
    // Bytes but no intact header: the writer died inside its very first
    // write. Unlike a torn *run* record (tolerated — that seed re-runs),
    // a torn header leaves nothing to trust about the file's identity, so
    // this is corruption, not a resumable tail.
    throw SimError(SimError::Kind::kJournalCorrupt,
                   "campaign journal '" + path +
                       "': header record is torn or truncated (" +
                       std::to_string(size) +
                       " bytes, no intact header) — the journal cannot "
                       "identify its campaign; delete it to start fresh");
  }
  out.valid_bytes = pos;
  out.truncated_tail = pos < size;
  return out;
}

JournalWriter::JournalWriter(const std::string& path,
                             const JournalHeader& header,
                             std::size_t flush_every)
    : path_(path), flush_every_(flush_every == 0 ? 1 : flush_every) {
  // O_APPEND: every record lands atomically at EOF, so even a pathological
  // lease-TTL violation (two writers on one shard journal) interleaves whole
  // records rather than tearing them mid-frame.
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_APPEND, 0644);
  if (fd_ < 0) throw_io(path, "open");
  const std::string rec = frame(kHeaderType, encode_header(header));
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0) throw_io(path_, "write");
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_io(path_, "fsync");
}

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t valid_bytes,
                             std::size_t flush_every)
    : path_(path), flush_every_(flush_every == 0 ? 1 : flush_every) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) throw_io(path, "open");
  // Cut the torn tail before appending: the new record must start exactly
  // where the last intact one ended or the framing chain breaks.
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0) {
    throw_io(path, "ftruncate");
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) throw_io(path, "lseek");
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

void JournalWriter::append(std::size_t index, const CampaignRunResult& r) {
  const std::string rec = frame(kRunType, encode_run(index, r));
  std::unique_lock<std::mutex> lock(mu_);
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0) throw_io(path_, "write");
    off += static_cast<std::size_t>(n);
  }
  if (++unsynced_ >= flush_every_) {
    if (::fsync(fd_) != 0) throw_io(path_, "fsync");
    unsynced_ = 0;
  }
}

void JournalWriter::append_decision(const JournalDecision& decision) {
  const std::string rec = frame(kDecisionType, encode_decision(decision));
  std::unique_lock<std::mutex> lock(mu_);
  // Sync-before-append makes the decision record the commit point: a
  // decision that survives a crash proves every run record it covers was
  // already durable when it was written.
  if (::fsync(fd_) != 0) throw_io(path_, "fsync");
  std::size_t off = 0;
  while (off < rec.size()) {
    const ssize_t n = ::write(fd_, rec.data() + off, rec.size() - off);
    if (n < 0) throw_io(path_, "write");
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd_) != 0) throw_io(path_, "fsync");
  unsynced_ = 0;
}

void JournalWriter::sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (::fsync(fd_) != 0) throw_io(path_, "fsync");
  unsynced_ = 0;
}

}  // namespace sctrace
