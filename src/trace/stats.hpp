#pragma once

#include <vector>

#include "core/capture.hpp"

namespace sctrace {

/// Summary statistics of a sample (times in nanoseconds throughout).
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

Summary summarize(const std::vector<double>& samples);

/// Inter-event times of one capture point's event list, in ns. This is the
/// sample the paper's rate analysis (§6, "mean execution times and periods")
/// operates on.
std::vector<double> periods_ns(const std::vector<scperf::CaptureEvent>& ev);

/// Pairwise response times: latency from the i-th request event to the i-th
/// response event, in ns. Unmatched tail events are ignored. Negative
/// latencies (response before request) are kept — they signal a
/// mis-specified pairing and should be visible, not masked.
std::vector<double> response_times_ns(
    const std::vector<scperf::CaptureEvent>& requests,
    const std::vector<scperf::CaptureEvent>& responses);

/// Events per second over the span from the first to the last event
/// (0 if fewer than 2 events).
double throughput_per_sec(const std::vector<scperf::CaptureEvent>& ev);

/// Peak-to-peak period variation (max period - min period), in ns.
double jitter_ns(const std::vector<scperf::CaptureEvent>& ev);

/// Kish effective sample size (sum w)^2 / sum w^2 of an importance-sampling
/// weight vector (0 for an empty or all-zero one): how many unweighted
/// samples the weighted set is worth. Accumulates in input order so campaign
/// reports and the adaptive-IS pilot agree bit for bit.
double kish_ess(const std::vector<double>& weights);

}  // namespace sctrace
