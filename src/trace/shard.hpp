#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "trace/campaign.hpp"
#include "trace/journal.hpp"

namespace sctrace {

/// Sharded fleet-scale campaigns over a shared journal directory.
///
/// One campaign of `total_runs` seeds is split into `shard_count` contiguous
/// chunks; N independent *worker processes* — different PIDs, potentially
/// different machines on a shared filesystem — each claim disjoint shards,
/// run them through the ordinary FaultCampaign journal machinery, and a
/// final merge step folds the shard journals back into the byte-identical
/// single-process report()/write_csv() output. A CampaignSweep grid — the
/// paper's mapping×scenario design-space exploration — fleets the same way
/// with grid *cells* as the work units (run_sharded_sweep): one lease and
/// one journal per cell, a manifest pinning the grid, and merge_sweep_dir
/// folding the cells back into the byte-identical sweep output.
///
/// Coordination is filesystem-only, built from two atomic primitives:
///
///   - claim:  open(lease, O_CREAT | O_EXCL) — exactly one creator wins;
///   - adopt:  rename(lease, lease.adopt-<worker>) — rename has exactly one
///     winner because the source vanishes for everyone else, so a stale
///     lease (heartbeat mtime older than the TTL: its worker is dead) is
///     stolen by at most one survivor, which then re-claims via O_EXCL.
///
/// A held lease is heartbeaten by refreshing its mtime from a background
/// thread. The TTL contract: a worker whose heartbeat stays fresher than
/// `lease_ttl_ms` owns its shard exclusively; a worker paused for longer
/// (SIGSTOP, VM freeze) may be adopted away and must treat its shard as
/// lost — the heartbeat thread detects the takeover (the lease file no
/// longer names this worker) and the next run raises LeaseLostError, which
/// aborts the shard instead of recording anything further. A heartbeat mtime
/// in the *future* beyond the TTL (restored snapshot, clock skew) is treated
/// as stale too — a lease no live worker is refreshing must never become
/// unadoptable just because a clock once lied forward.
///
/// Self-healing: adoption alone cannot save a fleet from a *poison* shard —
/// a seed that crashes every process that touches it, a full disk, a wedged
/// host — because each adopter dies in turn and the fleet crash-loops
/// forever. The lease file therefore records an adoption counter; a claim
/// that would adopt a shard past `max_adoptions` instead *quarantines* it:
/// the stale lease is atomically renamed to a `*.quarantined` tombstone
/// (exactly one winner, like adoption) recording the last owner, the
/// adoption count and the last recorded SimError. Quarantine is a
/// first-class terminal state, not an error — workers skip quarantined
/// shards, the fleet converges on everything else, `--allow-partial` merges
/// produce a clearly-marked degraded report, and fleet_status() names the
/// quarantined shard with its recorded error.
///
/// Determinism makes adoption safe: every run is a pure function of its
/// seed (DESIGN.md §7), and seeds are derived as base_seed + global index,
/// so the seeds a survivor re-runs produce bit-identical records to the
/// ones the dead worker would have written. Adoption resumes the dead
/// worker's journal and executes only the missing indices — the merged
/// output cannot tell who ran what.

/// Half-open global run-index range [begin, end) of one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Canonical contiguous partition of [0, total_runs) into shard_count
/// chunks: the first total_runs % shard_count shards get one extra run.
/// Every participant (workers and merge) must agree on this layout; it is
/// pinned per shard in the v2 journal header and re-derived on merge.
ShardRange shard_range(std::size_t shard, std::size_t shard_count,
                       std::size_t total_runs);

/// Journal / lease / quarantine filenames inside a shard directory. The
/// names carry the shard count so a re-partitioned campaign (same dir,
/// different N) cannot silently collide with the old layout's files.
std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::size_t shard_count);
std::string shard_lease_path(const std::string& dir, std::size_t shard,
                             std::size_t shard_count);
std::string shard_quarantine_path(const std::string& dir, std::size_t shard,
                                  std::size_t shard_count);

/// Cell filenames inside a sweep shard directory (run_sharded_sweep): cell
/// index i = mapping_index * |scenarios| + scenario_index, in grid order.
std::string cell_journal_path(const std::string& dir, std::size_t cell,
                              std::size_t cell_count);
std::string cell_lease_path(const std::string& dir, std::size_t cell,
                            std::size_t cell_count);
std::string cell_quarantine_path(const std::string& dir, std::size_t cell,
                                 std::size_t cell_count);

/// Parsed content of a lease file (or of the quarantine tombstone it became).
/// The structured format is line-based:
///
///   owner <worker id>
///   adoptions <count>
///   error <last recorded SimError text, single sanitized line>   (optional)
///
/// A file whose first line does not start with "owner " is read as the bare
/// worker id (the pre-counter format; also what a hand-written lease is),
/// with zero adoptions and no recorded error.
struct LeaseInfo {
  std::string owner;
  std::uint64_t adoptions = 0;
  std::string error;  ///< last recorded permanent SimError ("" = none)
};

/// Reads and parses the lease (or tombstone) at `path`. Returns false when
/// the file does not exist or cannot be read — never throws; status and
/// merge probes must not fail on a racing unlink.
bool read_lease_info(const std::string& path, LeaseInfo* out);

/// Thrown between runs when the heartbeat observed this worker's lease
/// taken over (the worker was paused past the TTL and a survivor adopted
/// the shard). Deliberately NOT a minisc::SimError: the campaign machinery
/// records SimErrors as failed-run data points, but a lost lease must abort
/// the shard — the adopter owns those records now.
struct LeaseLostError : std::runtime_error {
  explicit LeaseLostError(const std::string& what) : std::runtime_error(what) {}
};

/// One held shard lease: created by claim_shard_lease, heartbeaten by a
/// background thread, released (file unlinked) on destruction — unless the
/// lease was observed lost, in which case the file belongs to the adopter
/// and is left alone, or the lease was abandon()ed, in which case it is
/// deliberately left to go stale so another worker can adopt it (and the
/// adoption counter can eventually quarantine it).
class ShardLease {
 public:
  ~ShardLease();
  ShardLease(const ShardLease&) = delete;
  ShardLease& operator=(const ShardLease&) = delete;

  const std::string& path() const { return path_; }
  const std::string& worker_id() const { return worker_id_; }
  /// True when this claim stole a stale lease from a dead worker.
  bool adopted() const { return adoptions_ > 0; }
  /// How many times this shard has been adopted, this claim included.
  std::uint64_t adoptions() const { return adoptions_; }
  /// True once the heartbeat saw another worker's id in the lease file.
  bool lost() const { return lost_.load(std::memory_order_acquire); }
  /// Non-empty once the heartbeat failed to refresh the lease mtime: the
  /// errno text of the failed utimensat (EIO, ENOSPC, ...). The fleet loop
  /// surfaces it as a structured minisc::SimError(kIoError) between runs.
  std::string io_error() const;

  /// Rewrites the lease content with `error` recorded (atomic rename, so a
  /// concurrent ownership probe reads either the old or the new content,
  /// never a torn one). The error survives adoption: each adopter carries
  /// it forward, and the quarantine tombstone records the last one.
  void record_error(const std::string& error);

  /// Stops the heartbeat and unlinks the lease (no-op if lost or released).
  void release();

  /// Stops the heartbeat but leaves the lease file in place: the shard is
  /// deliberately surrendered to go stale, so any worker (this one included)
  /// can adopt it after the TTL — and the adoption counter keeps counting
  /// toward quarantine. This is how a worker walks away from a shard whose
  /// execution failed permanently without crash-looping on it.
  void abandon();

 private:
  friend std::unique_ptr<ShardLease> claim_shard_lease(
      const std::string& path, const std::string& worker_id,
      std::uint64_t lease_ttl_ms, std::uint64_t heartbeat_ms,
      std::uint64_t max_adoptions);

  ShardLease(std::string path, std::string worker_id, std::uint64_t ttl_ms,
             std::uint64_t heartbeat_ms, std::uint64_t adoptions,
             std::string carried_error);
  void beat_loop(std::uint64_t heartbeat_ms);
  void stop_beat();

  std::string path_;
  std::string worker_id_;
  std::uint64_t adoptions_ = 0;
  std::string error_;  ///< recorded error content (carried or own)
  std::atomic<bool> lost_{false};
  bool released_ = false;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::string io_error_;
  std::thread beat_;
};

/// Claims the lease at `path` for `worker_id`: a fresh O_EXCL create if no
/// lease exists, an adopt (rename-steal + re-create with the adoption
/// counter incremented) if one exists but its heartbeat mtime is outside
/// the TTL window — older than `lease_ttl_ms`, or more than `lease_ttl_ms`
/// in the future (clock skew: nobody is refreshing that mtime either).
/// On success returns the held lease, heartbeating every `heartbeat_ms`
/// (0 = ttl / 4).
///
/// Throws minisc::SimError:
///   - kLeaseConflict (*transient*, see minisc::is_transient) when the lease
///     is held by a live worker or another claimer won the race;
///   - kShardQuarantined when the shard's quarantine tombstone exists, or
///     when this claim would adopt the shard past `max_adoptions` — in which
///     case this claim *performs* the quarantine first: the stale lease is
///     atomically renamed to the tombstone (exactly one winner) and the
///     tombstone records the last owner, adoption count and last recorded
///     error. Terminal, not retryable: the fleet loop marks the shard
///     quarantined and moves on. max_adoptions == 0 disables quarantine.
///   - kBadConfig for empty worker ids; kIoError for I/O failures.
std::unique_ptr<ShardLease> claim_shard_lease(const std::string& path,
                                              const std::string& worker_id,
                                              std::uint64_t lease_ttl_ms,
                                              std::uint64_t heartbeat_ms = 0,
                                              std::uint64_t max_adoptions = 0);

/// True when the journal at `path` exists, parses, and holds a record for
/// every one of the `runs` shard-local indices. Never throws: a missing,
/// torn or corrupt journal is simply "not complete" (the claimer heals it).
bool shard_journal_complete(const std::string& path, std::size_t runs);

/// How many of the `runs` shard-local indices the journal at `path` holds a
/// record for (0 for a missing, torn-header or corrupt journal). Never
/// throws — this is the read-only progress probe behind fleet_status().
std::size_t shard_journal_coverage(const std::string& path, std::size_t runs);

/// How one worker should participate in a sharded campaign or sweep.
struct ShardOptions {
  /// Shared journal directory (created if missing). All workers of one
  /// campaign must point at the same directory.
  std::string dir;
  /// This worker's identity: its *preferred first shard* (workers start
  /// claiming at their own index and roam upward, so a fleet spreads out
  /// instead of stampeding shard 0) — "--shard i/N" on the benches. For
  /// sweeps this is the preferred first *cell* (taken modulo the grid size).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Unique id for lease files; "" derives "w<shard_index>.pid<pid>".
  std::string worker_id;
  /// Heartbeat staleness threshold for adoption. Must comfortably exceed
  /// the heartbeat interval plus the worst scheduler pause a live worker
  /// can suffer; below ~4 heartbeats invites spurious adoption.
  std::uint64_t lease_ttl_ms = 10000;
  std::uint64_t heartbeat_ms = 0;  ///< 0 = lease_ttl_ms / 4
  /// Adoption cap: a shard adopted this many times whose next claim would
  /// adopt it again is quarantined instead (see claim_shard_lease). One
  /// poison seed can therefore crash-loop the fleet at most max_adoptions
  /// times before being tombstoned out of the claim pass. 0 = unlimited
  /// (the pre-quarantine behaviour: adopt forever).
  std::uint64_t max_adoptions = 3;
  /// Delay between claim passes once every remaining shard is leased by a
  /// live peer (the waiting-for-the-fleet idle loop).
  std::uint64_t poll_ms = 200;
  /// Give up waiting for other workers' shards after this long (0 = wait
  /// until the whole campaign is complete — the CI survivor mode).
  std::uint64_t max_wait_ms = 0;
};

/// What one worker did. fleet_done is the fleet-level statement: every
/// shard was either complete or quarantined when this worker exited;
/// campaign_complete is the stricter claim that every shard's journal held
/// all its records (nothing quarantined, nothing missing).
struct ShardProgress {
  std::size_t shards_run = 0;      ///< shards this worker completed
  std::size_t shards_adopted = 0;  ///< of those, stolen from dead workers
  std::size_t runs_executed = 0;   ///< seeds actually simulated here
  std::size_t lease_conflicts = 0; ///< claims lost to live peers (transient)
  std::size_t shards_lost = 0;     ///< own leases adopted away mid-shard
  /// Shards observed in the quarantine terminal state (tombstone present),
  /// whether this worker performed the quarantine or merely found it.
  std::size_t shards_quarantined = 0;
  /// Shards this worker walked away from after a permanent SimError escaped
  /// their execution (journal I/O failure, unhealable corruption, config
  /// mismatch): the error was recorded in the lease, the lease was left to
  /// go stale, and the adoption counter will eventually quarantine the
  /// shard if every adopter fails the same way.
  std::size_t shards_abandoned = 0;
  bool campaign_complete = false;  ///< all shards complete, none quarantined
  bool fleet_done = false;         ///< all shards complete OR quarantined
};

/// Runs one worker of a sharded campaign: claims shards (preferred first,
/// then roaming), executes each as a journaled+resumed FaultCampaign over
/// its seed range, adopts stale leases of dead workers, skips quarantined
/// shards, and keeps polling until every shard is complete or quarantined
/// (or max_wait_ms expires). The CampaignOptions journal fields are
/// overwritten per shard; threads, retry, budgets, digest and tag apply as
/// usual.
ShardProgress run_sharded_campaign(const FaultCampaign::RunFn& fn,
                                   std::uint64_t base_seed,
                                   std::size_t total_runs,
                                   const ShardOptions& shard,
                                   const CampaignOptions& opts = {});

/// The grid identity of a sharded sweep, pinned in `<dir>/sweep.manifest` by
/// the first worker (O_CREAT | O_EXCL — exactly one writer) and verified by
/// everyone else: a worker whose grid, seed, run count, digest or tag
/// disagrees with the manifest refuses to participate (kBadConfig) instead
/// of silently corrupting cells, and merge/status re-derive cell names and
/// grid order from it alone.
struct SweepManifest {
  std::uint64_t base_seed = 0;
  std::size_t runs = 0;  ///< seeds per cell (common random numbers)
  std::uint64_t scenario_digest = 0;
  std::string tag;  ///< sweep-level tag prefix ("" = none)
  std::vector<std::string> mappings;
  std::vector<std::string> scenarios;

  std::size_t cells() const { return mappings.size() * scenarios.size(); }
  /// Grid-order cell identity: index = mapping_index * |scenarios| +
  /// scenario_index, mirroring CampaignSweep::run's execution order.
  const std::string& cell_mapping(std::size_t cell) const {
    return mappings[cell / scenarios.size()];
  }
  const std::string& cell_scenario(std::size_t cell) const {
    return scenarios[cell % scenarios.size()];
  }
  /// The journal tag of one cell — same derivation as CampaignSweep::run,
  /// so cell journals carry the identity a single-process sweep would pin.
  std::string cell_tag(std::size_t cell) const;
};

/// Reads `<dir>/sweep.manifest`. Throws minisc::SimError(kMergeIncomplete)
/// when missing (no fleet ever started here) and kJournalCorrupt when
/// malformed.
SweepManifest read_sweep_manifest(const std::string& dir);

/// Runs one worker of a sharded CampaignSweep: every (mapping, scenario)
/// grid cell is an independent lease-claimable work unit — one lease + one
/// journal per cell, claimed/adopted/quarantined exactly like campaign
/// shards — so a fleet of workers spreads across the grid, survivors adopt
/// the cells of dead workers, and a poison cell is quarantined after
/// max_adoptions instead of crash-looping the fleet. All workers must agree
/// on the grid (the manifest enforces it). shard.shard_index is the
/// preferred starting cell; shard.shard_count is ignored (the grid defines
/// the unit count).
ShardProgress run_sharded_sweep(const std::vector<std::string>& mappings,
                                const std::vector<std::string>& scenarios,
                                const CampaignSweep::Factory& factory,
                                std::uint64_t base_seed, std::size_t n,
                                const ShardOptions& shard,
                                const CampaignOptions& opts = {});

/// How a merge should treat an unfinished fleet.
struct MergeOptions {
  /// False (default): a missing shard journal, a missing record or a
  /// quarantined shard refuses with kMergeIncomplete — merging a partial
  /// fleet silently would bias every statistic the campaign measures.
  /// True: produce a clearly-marked degraded result instead — complete=false
  /// with the missing/quarantined units listed, statistics over the recorded
  /// runs only. Identity refusals (mixed digests, tags, layouts, format
  /// versions) are never relaxed: those are wrong fleets, not partial ones.
  bool allow_partial = false;
};

/// One quarantined work unit as a merge or status pass found it.
struct QuarantinedUnit {
  std::size_t index = 0;  ///< shard index, or cell index for sweeps
  std::string name;       ///< "shard 2/4" or "mapping/scenario"
  LeaseInfo info;         ///< last owner, adoption count, recorded error
};

/// A merged campaign: the global identity plus every run in global order.
/// Feed `results` to FaultCampaign's results constructor for report() /
/// write_csv() byte-identical to the uninterrupted single-process run.
/// A partial merge (MergeOptions::allow_partial against an unfinished
/// fleet) sets complete=false, lists what is missing or quarantined, and
/// compacts `results` to the recorded runs in global order — deterministic
/// for any thread count and any worker interleaving, because journals hold
/// the same records no matter who wrote them.
struct MergedCampaign {
  std::uint64_t base_seed = 0;  ///< campaign-wide (shard 0's first seed)
  std::size_t runs = 0;         ///< total across all shards
  std::uint64_t scenario_digest = 0;
  std::string tag;
  std::size_t shard_count = 0;
  std::vector<CampaignRunResult> results;

  /// Sequential verdict recovered from the journal's decision record (only
  /// legal in a single-shard layout — an smc campaign is never sharded).
  /// With a decision, `results` covers the *executed* runs and the merge is
  /// complete at that count: attach it to the rebuilt campaign via
  /// FaultCampaign::set_smc_verdict for byte-identical report/CSV output.
  std::optional<JournalDecision> decision;

  // ---- degraded-merge bookkeeping (allow_partial) ----
  bool complete = true;
  std::size_t recorded_runs = 0;  ///< results.size(); == runs when complete
  std::size_t missing_records = 0;
  std::vector<std::size_t> missing_shards;  ///< no journal at all
  std::vector<QuarantinedUnit> quarantined;
};

/// Folds shard journals into one campaign. Refuses, with a structured
/// minisc::SimError:
///   - kShardVersionMismatch: any journal whose format version differs from
///     the current one (v1 journals are readable but not mergeable), naming
///     both versions;
///   - kBadConfig: mismatched scenario digests, tags, base seeds, total run
///     counts or shard layouts across the journals, or a journal whose
///     shard range disagrees with the canonical shard_range partition;
///   - kMergeIncomplete (unless opts.allow_partial): missing shard journals,
///     duplicate shard indices, or a shard journal missing run records —
///     merging a partial fleet *silently* would bias every statistic the
///     campaign exists to measure. allow_partial makes the bias explicit
///     instead: see MergedCampaign's degraded-merge fields.
MergedCampaign merge_journals(const std::vector<std::string>& paths,
                              const MergeOptions& opts = {});

/// merge_journals over the canonical shard journal filenames found in
/// `dir`, plus quarantine awareness: a `shard_<i>_of_<N>.quarantined`
/// tombstone refuses a strict merge (kMergeIncomplete naming the shard and
/// suggesting allow_partial) and is listed in MergedCampaign::quarantined
/// by a partial one. The shard count is taken from the filenames, and every
/// shard 0..count-1 must be present (or accounted for) unless allow_partial.
MergedCampaign merge_shard_dir(const std::string& dir,
                               const MergeOptions& opts = {});

/// Terminal/progress state of one sweep cell as the merge found it.
enum class CellState {
  kComplete,     ///< journal holds every run record
  kPartial,      ///< journal exists but records are missing (or unreadable)
  kMissing,      ///< no journal at all
  kQuarantined,  ///< tombstone present — terminal, never going to complete
};

const char* to_string(CellState s);

/// One cell of a merged sweep.
struct MergedSweepCell {
  std::size_t index = 0;
  std::string mapping;
  std::string scenario;
  CellState state = CellState::kMissing;
  std::size_t records = 0;  ///< run records recovered
  std::size_t runs = 0;     ///< records expected (manifest, or the decision's
                            ///< executed count for early-stopped cells)
  std::string error;        ///< quarantine record / read-failure note
  /// Recovered results in seed order (complete and partial cells).
  std::vector<CampaignRunResult> results;
  /// Sequential verdict of an early-stopped (pruned) cell: the cell is
  /// complete at decision->executed records, and to_sweep() re-attaches the
  /// verdict so the rebuilt grid renders the same markers and CSV columns.
  std::optional<JournalDecision> decision;
};

/// A merged sweep: the manifest identity plus every cell in grid order.
/// When complete, to_sweep()/print()/write_csv() are byte-identical to the
/// uninterrupted single-process CampaignSweep. When degraded (allow_partial
/// against an unfinished fleet), print() emits a clearly-marked DEGRADED
/// banner, the grid with '-' holes, and one line per unfinished cell;
/// write_csv() appends records/runs/state columns so no downstream reader
/// can mistake a partial grid for a finished one.
struct MergedSweep {
  SweepManifest manifest;
  std::vector<MergedSweepCell> cells;  ///< grid order, manifest.cells() long
  bool complete = true;

  std::size_t complete_cells() const;
  std::size_t quarantined_cells() const;

  /// Rebuilds the CampaignSweep (complete cells only; when complete==true
  /// this is the byte-identical single-process sweep).
  CampaignSweep to_sweep() const;
  void print(std::ostream& os) const;
  void write_csv(std::ostream& os) const;
};

/// Folds a sweep shard directory into one MergedSweep. Identity refusals
/// (version, digest, tag, seed, run count vs the manifest) always throw;
/// missing/partial/quarantined cells throw kMergeIncomplete unless
/// opts.allow_partial, which returns the degraded MergedSweep instead.
MergedSweep merge_sweep_dir(const std::string& dir,
                            const MergeOptions& opts = {});

// ---- read-only fleet status ------------------------------------------------

/// State of one work unit (campaign shard or sweep cell), derived purely
/// from reading the shard directory — stat() and read() only, no writes, no
/// lease traffic: observing a fleet must never perturb it.
struct ShardStatusEntry {
  enum class State {
    kDone,         ///< journal complete
    kClaimed,      ///< live lease (heartbeat within TTL)
    kStale,        ///< lease present but heartbeat outside TTL (dead worker)
    kQuarantined,  ///< tombstone present — terminal
    kUnclaimed,    ///< no lease, journal incomplete
  };

  std::size_t index = 0;
  std::string name;  ///< "shard 0/4" or "mapping/scenario"
  State state = State::kUnclaimed;
  std::string owner;            ///< lease/tombstone owner ("" when none)
  std::uint64_t adoptions = 0;  ///< adoption counter from the lease/tombstone
  /// Milliseconds since the lease heartbeat; negative = mtime in the future
  /// (clock skew). Meaningful for kClaimed/kStale only.
  std::int64_t heartbeat_age_ms = 0;
  std::size_t records = 0;  ///< journal records present
  std::size_t runs = 0;     ///< records expected (0 = unknown)
  std::string error;        ///< recorded/quarantined SimError text ("" = none)
};

const char* to_string(ShardStatusEntry::State s);

/// Snapshot of a whole fleet.
struct FleetStatus {
  std::size_t units = 0;  ///< shard or cell count
  std::size_t done = 0, claimed = 0, stale = 0, quarantined = 0, unclaimed = 0;
  std::size_t records = 0, runs = 0;  ///< run-record totals across units
  std::vector<ShardStatusEntry> entries;

  /// The fleet-level terminal statement: every unit done or quarantined.
  bool fleet_done() const { return done + quarantined == units && units > 0; }
};

/// Reads the status of a sharded-*campaign* directory: one entry per shard,
/// layout derived from the shard filenames, run counts from the journal
/// headers' total_runs. `lease_ttl_ms` classifies claimed vs stale (use the
/// fleet's TTL). Throws kMergeIncomplete when the directory holds no shard
/// files at all.
FleetStatus fleet_status(const std::string& dir,
                         std::uint64_t lease_ttl_ms = 10000);

/// Reads the status of a sharded-*sweep* directory: one entry per grid
/// cell, named mapping/scenario via the manifest.
FleetStatus sweep_fleet_status(const std::string& dir,
                               std::uint64_t lease_ttl_ms = 10000);

/// Renders a FleetStatus: a one-line fleet summary, then one line per unit
/// (state, progress, owner, heartbeat age, adoption count, recorded error).
void print_fleet_status(std::ostream& os, const FleetStatus& status);

}  // namespace sctrace
