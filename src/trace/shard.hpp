#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "trace/campaign.hpp"
#include "trace/journal.hpp"

namespace sctrace {

/// Sharded fleet-scale campaigns over a shared journal directory.
///
/// One campaign of `total_runs` seeds is split into `shard_count` contiguous
/// chunks; N independent *worker processes* — different PIDs, potentially
/// different machines on a shared filesystem — each claim disjoint shards,
/// run them through the ordinary FaultCampaign journal machinery, and a
/// final merge step folds the shard journals back into the byte-identical
/// single-process report()/write_csv() output.
///
/// Coordination is filesystem-only, built from two atomic primitives:
///
///   - claim:  open(lease, O_CREAT | O_EXCL) — exactly one creator wins;
///   - adopt:  rename(lease, lease.adopt-<worker>) — rename has exactly one
///     winner because the source vanishes for everyone else, so a stale
///     lease (heartbeat mtime older than the TTL: its worker is dead) is
///     stolen by at most one survivor, which then re-claims via O_EXCL.
///
/// A held lease is heartbeaten by refreshing its mtime from a background
/// thread. The TTL contract: a worker whose heartbeat stays fresher than
/// `lease_ttl_ms` owns its shard exclusively; a worker paused for longer
/// (SIGSTOP, VM freeze) may be adopted away and must treat its shard as
/// lost — the heartbeat thread detects the takeover (the lease file no
/// longer names this worker) and the next run raises LeaseLostError, which
/// aborts the shard instead of recording anything further.
///
/// Determinism makes adoption safe: every run is a pure function of its
/// seed (DESIGN.md §7), and seeds are derived as base_seed + global index,
/// so the seeds a survivor re-runs produce bit-identical records to the
/// ones the dead worker would have written. Adoption resumes the dead
/// worker's journal and executes only the missing indices — the merged
/// output cannot tell who ran what.

/// Half-open global run-index range [begin, end) of one shard.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin == end; }
};

/// Canonical contiguous partition of [0, total_runs) into shard_count
/// chunks: the first total_runs % shard_count shards get one extra run.
/// Every participant (workers and merge) must agree on this layout; it is
/// pinned per shard in the v2 journal header and re-derived on merge.
ShardRange shard_range(std::size_t shard, std::size_t shard_count,
                       std::size_t total_runs);

/// Journal / lease filenames inside a shard directory. The names carry the
/// shard count so a re-partitioned campaign (same dir, different N) cannot
/// silently collide with the old layout's files.
std::string shard_journal_path(const std::string& dir, std::size_t shard,
                               std::size_t shard_count);
std::string shard_lease_path(const std::string& dir, std::size_t shard,
                             std::size_t shard_count);

/// Thrown between runs when the heartbeat observed this worker's lease
/// taken over (the worker was paused past the TTL and a survivor adopted
/// the shard). Deliberately NOT a minisc::SimError: the campaign machinery
/// records SimErrors as failed-run data points, but a lost lease must abort
/// the shard — the adopter owns those records now.
struct LeaseLostError : std::runtime_error {
  explicit LeaseLostError(const std::string& what) : std::runtime_error(what) {}
};

/// One held shard lease: created by claim_shard_lease, heartbeaten by a
/// background thread, released (file unlinked) on destruction — unless the
/// lease was observed lost, in which case the file belongs to the adopter
/// and is left alone.
class ShardLease {
 public:
  ~ShardLease();
  ShardLease(const ShardLease&) = delete;
  ShardLease& operator=(const ShardLease&) = delete;

  const std::string& path() const { return path_; }
  const std::string& worker_id() const { return worker_id_; }
  /// True when this claim stole a stale lease from a dead worker.
  bool adopted() const { return adopted_; }
  /// True once the heartbeat saw another worker's id in the lease file.
  bool lost() const { return lost_.load(std::memory_order_acquire); }

  /// Stops the heartbeat and unlinks the lease (no-op if lost or released).
  void release();

 private:
  friend std::unique_ptr<ShardLease> claim_shard_lease(
      const std::string& path, const std::string& worker_id,
      std::uint64_t lease_ttl_ms, std::uint64_t heartbeat_ms);

  ShardLease(std::string path, std::string worker_id, std::uint64_t ttl_ms,
             std::uint64_t heartbeat_ms, bool adopted);
  void beat_loop(std::uint64_t heartbeat_ms);

  std::string path_;
  std::string worker_id_;
  bool adopted_ = false;
  std::atomic<bool> lost_{false};
  bool released_ = false;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread beat_;
};

/// Claims the lease at `path` for `worker_id`: a fresh O_EXCL create if no
/// lease exists, an adopt (rename-steal + re-create) if one exists but its
/// heartbeat mtime is older than `lease_ttl_ms`. On success returns the
/// held lease, heartbeating every `heartbeat_ms` (0 = ttl / 4).
///
/// Throws minisc::SimError(kLeaseConflict) — classified *transient*
/// (minisc::is_transient), so retry/backoff loops handle it like any other
/// host-side hiccup — when the lease is held by a live worker or another
/// claimer won the race; and kBadConfig for empty worker ids or I/O errors.
std::unique_ptr<ShardLease> claim_shard_lease(const std::string& path,
                                              const std::string& worker_id,
                                              std::uint64_t lease_ttl_ms,
                                              std::uint64_t heartbeat_ms = 0);

/// True when the journal at `path` exists, parses, and holds a record for
/// every one of the `runs` shard-local indices. Never throws: a missing,
/// torn or corrupt journal is simply "not complete" (the claimer heals it).
bool shard_journal_complete(const std::string& path, std::size_t runs);

/// How one worker should participate in a sharded campaign.
struct ShardOptions {
  /// Shared journal directory (created if missing). All workers of one
  /// campaign must point at the same directory.
  std::string dir;
  /// This worker's identity: its *preferred first shard* (workers start
  /// claiming at their own index and roam upward, so a fleet spreads out
  /// instead of stampeding shard 0) — "--shard i/N" on the benches.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  /// Unique id for lease files; "" derives "w<shard_index>.pid<pid>".
  std::string worker_id;
  /// Heartbeat staleness threshold for adoption. Must comfortably exceed
  /// the heartbeat interval plus the worst scheduler pause a live worker
  /// can suffer; below ~4 heartbeats invites spurious adoption.
  std::uint64_t lease_ttl_ms = 10000;
  std::uint64_t heartbeat_ms = 0;  ///< 0 = lease_ttl_ms / 4
  /// Delay between claim passes once every remaining shard is leased by a
  /// live peer (the waiting-for-the-fleet idle loop).
  std::uint64_t poll_ms = 200;
  /// Give up waiting for other workers' shards after this long (0 = wait
  /// until the whole campaign is complete — the CI survivor mode).
  std::uint64_t max_wait_ms = 0;
};

/// What one worker did. campaign_complete is the fleet-level statement:
/// every shard's journal held all its records when this worker exited.
struct ShardProgress {
  std::size_t shards_run = 0;      ///< shards this worker completed
  std::size_t shards_adopted = 0;  ///< of those, stolen from dead workers
  std::size_t runs_executed = 0;   ///< seeds actually simulated here
  std::size_t lease_conflicts = 0; ///< claims lost to live peers (transient)
  std::size_t shards_lost = 0;     ///< own leases adopted away mid-shard
  bool campaign_complete = false;
};

/// Runs one worker of a sharded campaign: claims shards (preferred first,
/// then roaming), executes each as a journaled+resumed FaultCampaign over
/// its seed range, adopts stale leases of dead workers, and keeps polling
/// until the whole campaign is complete (or max_wait_ms expires). The
/// CampaignOptions journal fields are overwritten per shard; threads,
/// retry, budgets, digest and tag apply as usual.
ShardProgress run_sharded_campaign(const FaultCampaign::RunFn& fn,
                                   std::uint64_t base_seed,
                                   std::size_t total_runs,
                                   const ShardOptions& shard,
                                   const CampaignOptions& opts = {});

/// A merged campaign: the global identity plus every run in global order.
/// Feed `results` to FaultCampaign's results constructor for report() /
/// write_csv() byte-identical to the uninterrupted single-process run.
struct MergedCampaign {
  std::uint64_t base_seed = 0;  ///< campaign-wide (shard 0's first seed)
  std::size_t runs = 0;         ///< total across all shards
  std::uint64_t scenario_digest = 0;
  std::string tag;
  std::size_t shard_count = 0;
  std::vector<CampaignRunResult> results;
};

/// Folds shard journals into one campaign. Refuses, with a structured
/// minisc::SimError:
///   - kShardVersionMismatch: any journal whose format version differs from
///     the current one (v1 journals are readable but not mergeable), naming
///     both versions;
///   - kBadConfig: mismatched scenario digests, tags, base seeds, total run
///     counts or shard layouts across the journals, or a journal whose
///     shard range disagrees with the canonical shard_range partition;
///   - kMergeIncomplete: missing shard journals, duplicate shard indices,
///     or a shard journal missing run records — merging a partial fleet
///     would silently bias every statistic the campaign exists to measure.
MergedCampaign merge_journals(const std::vector<std::string>& paths);

/// merge_journals over the canonical shard journal filenames found in
/// `dir`. The shard count is taken from the first journal's header, and
/// every shard 0..count-1 must be present.
MergedCampaign merge_shard_dir(const std::string& dir);

}  // namespace sctrace
