#pragma once

#include <optional>
#include <vector>

namespace sctrace {

/// A periodic task for fixed-priority schedulability analysis, in the
/// classic (C, T, D) model. The paper's §6: "Based on the mean execution
/// times and periods of the different processes, rate analysis and
/// scheduling for soft, real-time embedded systems can be performed. The
/// instantaneous execution times for the segments ... can be used for
/// performance verification and scheduling of hard, real-time systems."
///
/// The inputs come straight out of an estimation run: C from a process's
/// segment statistics (mean for soft real-time, max for hard real-time),
/// T from the period of a capture point's event list.
struct PeriodicTask {
  double wcet = 0.0;      ///< C: execution time per activation
  double period = 0.0;    ///< T: activation period (same unit as C)
  double deadline = 0.0;  ///< D: relative deadline; 0 means D = T
};

/// Total processor utilisation U = sum(C_i / T_i).
double utilization(const std::vector<PeriodicTask>& tasks);

/// The Liu & Layland rate-monotonic bound n(2^(1/n) - 1): a *sufficient*
/// schedulability condition for implicit-deadline tasks under RM priorities.
double liu_layland_bound(std::size_t n);

/// True if utilization(tasks) <= liu_layland_bound(n): the quick sufficient
/// test for soft real-time rate analysis.
bool rm_utilization_test(const std::vector<PeriodicTask>& tasks);

/// Exact response-time analysis for fixed priorities (Joseph & Pandya):
/// tasks are assumed sorted by DECREASING priority (index 0 = highest, the
/// rate-monotonic order being "sorted by increasing period"). Returns the
/// worst-case response time of each task, or nullopt for a task whose
/// recurrence diverges past its deadline (unschedulable).
std::vector<std::optional<double>> response_time_analysis(
    const std::vector<PeriodicTask>& tasks);

/// True iff every task's worst-case response time is within its deadline —
/// the exact (necessary and sufficient) fixed-priority test.
bool rta_schedulable(const std::vector<PeriodicTask>& tasks);

/// Response-time analysis for NON-PREEMPTIVE fixed priorities (the segment
/// granularity of this methodology): each task additionally suffers a
/// blocking term B_i = max C_j over lower-priority tasks j, because a
/// lower-priority segment that already occupies the processor completes
/// before a newly released higher-priority one (sufficient bound).
std::vector<std::optional<double>> response_time_analysis_np(
    const std::vector<PeriodicTask>& tasks);

/// Variant with explicit blocking terms, for task bodies that are split into
/// several segments: blocking[i] should be the longest single SEGMENT of any
/// lower-priority task (inserting yield points shortens exactly this term —
/// the classic fix for non-preemptive blocking, and a natural operation in
/// this methodology where every channel access or wait(0) ends a segment).
std::vector<std::optional<double>> response_time_analysis_np(
    const std::vector<PeriodicTask>& tasks,
    const std::vector<double>& blocking);

bool rta_np_schedulable(const std::vector<PeriodicTask>& tasks);

/// Sorts tasks into rate-monotonic priority order (shortest period first).
std::vector<PeriodicTask> rate_monotonic_order(
    std::vector<PeriodicTask> tasks);

}  // namespace sctrace
