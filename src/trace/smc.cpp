#include "trace/smc.hpp"

#include <cmath>
#include <string>

#include "kernel/error.hpp"
#include "trace/campaign.hpp"
#include "trace/stats.hpp"

namespace sctrace {

namespace {

// The hypotheses' Bernoulli parameters, clamped away from {0, 1} so the
// log-likelihood increments stay finite even for threshold - delta <= 0
// ("is the miss probability essentially zero?") or threshold + delta >= 1.
constexpr double kProbFloor = 1e-12;

double good_p(const SmcSpec& spec) {
  const double p = spec.threshold - spec.delta;
  return p < kProbFloor ? kProbFloor : p;
}

double bad_p(const SmcSpec& spec) {
  const double p = spec.threshold + spec.delta;
  return p > 1.0 - kProbFloor ? 1.0 - kProbFloor : p;
}

void validate(const SmcSpec& spec) {
  const bool ok = spec.delta > 0.0 && spec.threshold >= 0.0 &&
                  spec.threshold <= 1.0 && spec.alpha > 0.0 &&
                  spec.alpha < 1.0 && spec.beta > 0.0 && spec.beta < 1.0 &&
                  spec.alpha + spec.beta < 1.0 && spec.window > 0;
  if (!ok) {
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "smc spec requires delta > 0, threshold in [0,1], alpha and beta in "
        "(0,1) with alpha + beta < 1, and window > 0");
  }
}

}  // namespace

const char* to_string(SmcMethod m) {
  switch (m) {
    case SmcMethod::kSprt:
      return "sprt";
    case SmcMethod::kChernoff:
      return "chernoff";
  }
  return "?";
}

const char* to_string(SmcOutcome o) {
  switch (o) {
    case SmcOutcome::kUndecided:
      return "undecided";
    case SmcOutcome::kAccept:
      return "accept";
    case SmcOutcome::kReject:
      return "reject";
  }
  return "?";
}

bool same_smc_spec(const SmcSpec& a, const SmcSpec& b) {
  return a.method == b.method && a.threshold == b.threshold &&
         a.delta == b.delta && a.alpha == b.alpha && a.beta == b.beta &&
         a.min_samples == b.min_samples && a.window == b.window &&
         a.use_weights == b.use_weights;
}

double sprt_log_accept(const SmcSpec& spec) {
  return std::log((1.0 - spec.beta) / spec.alpha);
}

double sprt_log_reject(const SmcSpec& spec) {
  return std::log(spec.beta / (1.0 - spec.alpha));
}

std::size_t chernoff_bound(const SmcSpec& spec) {
  validate(spec);
  const double n =
      std::ceil(std::log(2.0 / (spec.alpha + spec.beta)) /
                (2.0 * spec.delta * spec.delta));
  return static_cast<std::size_t>(n);
}

SequentialTester::SequentialTester(const SmcSpec& spec) : spec_(spec) {
  validate(spec_);
  log_accept_ = sprt_log_accept(spec_);
  log_reject_ = sprt_log_reject(spec_);
  const double pg = good_p(spec_);
  const double pb = bad_p(spec_);
  // LLR of H1 ("good", p = pg) against H0 ("bad", p = pb): a violation is
  // more likely under H0, so it pushes the walk down toward reject; a clean
  // run pushes it up toward accept.
  la_ = std::log(pg / pb);
  lb_ = std::log((1.0 - pg) / (1.0 - pb));
  if (spec_.method == SmcMethod::kChernoff) {
    chernoff_n_ = chernoff_bound(spec_);
  }
}

bool SequentialTester::feed(bool violation, double weight) {
  if (verdict_.decided()) return true;
  const double w = spec_.use_weights ? weight : 1.0;
  ++n_;
  sum_w_ += w;
  sum_w2_ += w * w;
  if (violation) k_w_ += w;
  verdict_.samples_used = n_;
  verdict_.log_ratio += violation ? w * la_ : w * lb_;
  verdict_.estimate = sum_w_ > 0.0 ? k_w_ / sum_w_ : 0.0;
  verdict_.ess = sum_w2_ > 0.0 ? (sum_w_ * sum_w_) / sum_w2_ : 0.0;

  if (n_ < spec_.min_samples) return false;
  // Collapsed weights must not decide: demand as much *effective* evidence
  // as the unweighted test's min_samples floor.
  if (spec_.use_weights &&
      verdict_.ess < static_cast<double>(spec_.min_samples)) {
    return false;
  }

  if (spec_.method == SmcMethod::kSprt) {
    if (verdict_.log_ratio >= log_accept_) {
      verdict_.outcome = SmcOutcome::kAccept;
      verdict_.bound = log_accept_;
    } else if (verdict_.log_ratio <= log_reject_) {
      verdict_.outcome = SmcOutcome::kReject;
      verdict_.bound = log_reject_;
    }
  } else {  // kChernoff: fixed-confidence bound, decide exactly at N.
    if (n_ >= chernoff_n_) {
      verdict_.outcome = verdict_.estimate <= spec_.threshold
                             ? SmcOutcome::kAccept
                             : SmcOutcome::kReject;
      verdict_.bound = static_cast<double>(chernoff_n_);
    }
  }
  return verdict_.decided();
}

AdaptiveBiasResult tune_bias_factor(
    const std::function<FaultCampaign::RunFn(double)>& make_run,
    std::uint64_t pilot_seed, const AdaptiveBiasOptions& opts) {
  if (!(opts.target_ess_fraction > 0.0 && opts.target_ess_fraction <= 1.0) ||
      opts.pilot_runs == 0 || !(opts.min_factor > 0.0) ||
      opts.max_factor < opts.min_factor) {
    throw minisc::SimError(
        minisc::SimError::Kind::kBadConfig,
        "adaptive bias options require target_ess_fraction in (0,1], "
        "pilot_runs > 0 and 0 < min_factor <= max_factor");
  }

  AdaptiveBiasResult out;
  out.factor = opts.min_factor;
  out.ess_fraction = 1.0;

  auto probe = [&](double factor) {
    FaultCampaign pilot(make_run(factor));
    pilot.run(pilot_seed, opts.pilot_runs);
    std::vector<double> weights;
    weights.reserve(opts.pilot_runs);
    for (const auto& r : pilot.results()) {
      if (r.completed) weights.push_back(std::exp(r.log_weight));
    }
    out.pilot_runs += opts.pilot_runs;
    const double frac =
        weights.empty()
            ? 0.0
            : kish_ess(weights) / static_cast<double>(opts.pilot_runs);
    out.trace.emplace_back(factor, frac);
    return frac;
  };

  // Greedy first: if the most aggressive factor already keeps the ESS
  // fraction at target, take it without spending pilot budget on bisection.
  const double top = probe(opts.max_factor);
  if (top >= opts.target_ess_fraction) {
    out.factor = opts.max_factor;
    out.ess_fraction = top;
    return out;
  }
  if (opts.max_factor == opts.min_factor) {
    out.ess_fraction = top;
    return out;
  }

  // Log-space bisection for the largest factor whose pilot ESS fraction
  // still meets the target. ESS need not be monotone in the factor, but the
  // invariant kept here is exact: `lo` always names the largest factor
  // *observed* to meet the target (min_factor as the fallback floor).
  double lo = opts.min_factor;
  double hi = opts.max_factor;
  double lo_frac = -1.0;  // lazily probed if never improved on
  for (std::size_t i = 0; i < opts.iterations; ++i) {
    const double mid = std::sqrt(lo * hi);
    const double frac = probe(mid);
    if (frac >= opts.target_ess_fraction) {
      lo = mid;
      lo_frac = frac;
    } else {
      hi = mid;
    }
  }
  if (lo_frac < 0.0) lo_frac = probe(lo);
  out.factor = lo;
  out.ess_fraction = lo_frac;
  return out;
}

}  // namespace sctrace
