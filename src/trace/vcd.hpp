#pragma once

#include <iosfwd>

#include "core/capture.hpp"
#include "kernel/simulator.hpp"

namespace sctrace {

/// Renders capture-point event lists as a Value Change Dump so the timing
/// behaviour of the strict-timed simulation can be inspected in any waveform
/// viewer (GTKWave etc.). Every capture point becomes one real-valued
/// variable; event times are emitted with 1 ns resolution.
void write_vcd(std::ostream& os, const scperf::CaptureRegistry& registry);

/// Renders a kernel execution trace (Simulator::exec_trace()) as a VCD with
/// one 1-bit activity variable per process: the wire pulses at every resume.
/// Useful for the paper's Fig. 5 style untimed-vs-timed comparisons.
void write_exec_vcd(std::ostream& os,
                    const std::vector<minisc::Simulator::ExecRecord>& trace);

}  // namespace sctrace
