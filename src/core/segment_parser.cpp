#include "core/segment_parser.hpp"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace scperf {

std::string ProcessGraph::segment_name(const GraphSegment& s) const {
  return "S" + nodes[s.from].label.substr(1) + "-" +
         nodes[s.to].label.substr(1);
}

std::string GraphNode::runtime_label() const {
  // Mirrors Estimator::node_label so static arcs and dynamic segment ids
  // (and therefore replay-cache keys) live in the same name space.
  switch (kind) {
    case Kind::kEntry:
      return "entry";
    case Kind::kChannelRead:
      return channel + ":r";
    case Kind::kChannelWrite:
      return channel + ":w";
    case Kind::kTimedWait:
      return "wait";
    case Kind::kExit:
      return "exit";
  }
  return "?";
}

std::string ProcessGraph::runtime_segment_id(const GraphSegment& s) const {
  return nodes[s.from].runtime_label() + "->" + nodes[s.to].runtime_label();
}

const GraphNode& ProcessGraph::node(const std::string& label) const {
  for (const GraphNode& n : nodes) {
    if (n.label == label) return n;
  }
  throw std::out_of_range("scperf: no graph node labelled " + label);
}

bool ProcessGraph::has_segment(const std::string& from_label,
                               const std::string& to_label) const {
  for (const GraphSegment& s : segments) {
    if (nodes[s.from].label == from_label && nodes[s.to].label == to_label) {
      return true;
    }
  }
  return false;
}

void ProcessGraph::write_dot(std::ostream& os) const {
  os << "digraph process {\n";
  for (const GraphNode& n : nodes) {
    os << "  " << n.label << " [label=\"" << n.label;
    if (!n.channel.empty()) os << "\\n" << n.channel;
    os << "\"];\n";
  }
  for (const GraphSegment& s : segments) {
    os << "  " << nodes[s.from].label << " -> " << nodes[s.to].label
       << " [label=\"S" << nodes[s.from].label.substr(1) << "-"
       << nodes[s.to].label.substr(1) << "\"];\n";
  }
  os << "}\n";
}

namespace {

/// Strips // and /* */ comments and the contents of string/char literals so
/// the lexical scan cannot be fooled by them.
std::string strip_noise(const std::string& src) {
  std::string out;
  out.reserve(src.size());
  enum class State { kCode, kLine, kBlock, kString, kChar } st = State::kCode;
  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case State::kCode:
        if (c == '/' && next == '/') {
          st = State::kLine;
          ++i;
        } else if (c == '/' && next == '*') {
          st = State::kBlock;
          ++i;
        } else if (c == '"') {
          st = State::kString;
          out += '"';
        } else if (c == '\'') {
          st = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLine:
        if (c == '\n') {
          st = State::kCode;
          out += '\n';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          st = State::kCode;
          ++i;
        } else if (c == '\n') {
          out += '\n';  // keep line numbers stable
        }
        break;
      case State::kString:
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          st = State::kCode;
          out += '"';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          st = State::kCode;
          out += '\'';
        }
        break;
    }
  }
  return out;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True if src matches `word` at i as a whole identifier.
bool word_at(const std::string& s, std::size_t i, const std::string& word) {
  if (s.compare(i, word.size(), word) != 0) return false;
  if (i > 0 && is_ident(s[i - 1])) return false;
  const std::size_t end = i + word.size();
  return end >= s.size() || !is_ident(s[end]);
}

/// Finds the matching ')' for the '(' at `open` (must point at '(').
std::size_t match_paren(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '(') ++depth;
    if (s[i] == ')' && --depth == 0) return i;
  }
  return std::string::npos;
}

struct Block {
  enum class Kind { kDo, kWhile, kFor, kIf, kElse, kPlain } kind;
  bool infinite = false;                   ///< loop condition literally true
  std::vector<std::size_t> entry_dangling; ///< dangling preds at block entry
  std::vector<std::size_t> then_dangling;  ///< kElse: dangling after `then`
  std::size_t first_node = SIZE_MAX;       ///< first node inside (loops)
  bool contains_node = false;
};

}  // namespace

ProcessGraph parse_process_body(const std::string& source) {
  const std::string src = strip_noise(source);

  ProcessGraph g;
  g.nodes.push_back({GraphNode::Kind::kEntry, "N0", "", 1, 0});
  std::vector<std::size_t> dangling{0};
  std::vector<Block> stack;
  int next_label = 1;
  std::size_t line = 1;

  const auto add_node = [&](GraphNode::Kind kind, std::string channel) {
    GraphNode n;
    n.kind = kind;
    n.label = "N" + std::to_string(next_label++);
    n.channel = std::move(channel);
    n.line = line;
    n.loop_depth = static_cast<int>(
        std::count_if(stack.begin(), stack.end(), [](const Block& b) {
          return b.kind == Block::Kind::kDo || b.kind == Block::Kind::kWhile ||
                 b.kind == Block::Kind::kFor;
        }));
    g.nodes.push_back(n);
    const std::size_t idx = g.nodes.size() - 1;
    for (std::size_t p : dangling) g.segments.push_back({p, idx});
    dangling.assign(1, idx);
    for (Block& b : stack) {
      if (!b.contains_node &&
          (b.kind == Block::Kind::kDo || b.kind == Block::Kind::kWhile ||
           b.kind == Block::Kind::kFor)) {
        b.first_node = idx;
      }
      b.contains_node = true;
    }
    return idx;
  };

  const auto merge_into_dangling = [&](const std::vector<std::size_t>& more) {
    for (std::size_t p : more) {
      if (std::find(dangling.begin(), dangling.end(), p) == dangling.end()) {
        dangling.push_back(p);
      }
    }
  };

  bool pending_header = false;  // the next '{' belongs to a control block
  std::size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    // ---- control keywords ----
    if (word_at(src, i, "do")) {
      stack.push_back({Block::Kind::kDo, false, dangling, {}, SIZE_MAX, false});
      pending_header = true;
      i += 2;
      continue;
    }
    if (word_at(src, i, "while") || word_at(src, i, "for") ||
        word_at(src, i, "if")) {
      const bool is_for = word_at(src, i, "for");
      const bool is_if = word_at(src, i, "if");
      const std::size_t kw_len = is_if ? 2 : (is_for ? 3 : 5);
      const std::size_t open = src.find('(', i + kw_len);
      const std::size_t close =
          open == std::string::npos ? std::string::npos : match_paren(src, open);
      if (close == std::string::npos) {
        i += kw_len;
        continue;
      }
      const std::string cond = src.substr(open + 1, close - open - 1);
      line += static_cast<std::size_t>(
          std::count(src.begin() + static_cast<long>(i),
                     src.begin() + static_cast<long>(close), '\n'));
      // A `while (...)` directly after a do-block's `}` was consumed there;
      // here it always opens a new block.
      Block b;
      b.kind = is_if ? Block::Kind::kIf
                     : (is_for ? Block::Kind::kFor : Block::Kind::kWhile);
      b.infinite =
          !is_if && (cond.find("true") != std::string::npos || cond == ";;");
      b.entry_dangling = dangling;
      stack.push_back(b);
      pending_header = true;
      i = close + 1;
      continue;
    }
    if (word_at(src, i, "else")) {
      // `else` re-opens the branch point of the just-closed if: the closing
      // '}' handler stashed the then-branch dangling set in pending_else_.
      // Handled below via the stack: the if-close pushed a kElse marker.
      i += 4;
      continue;
    }
    // ---- nodes ----
    if (word_at(src, i, "wait")) {
      const std::size_t open = src.find('(', i + 4);
      if (open != std::string::npos && open <= i + 6) {
        add_node(GraphNode::Kind::kTimedWait, "");
        i = match_paren(src, open);
        if (i == std::string::npos) break;
        ++i;
        continue;
      }
    }
    if (c == '.' &&
        (word_at(src, i + 1, "read") || word_at(src, i + 1, "write"))) {
      const bool is_read = word_at(src, i + 1, "read");
      // channel name: identifier before the '.'
      std::size_t b = i;
      while (b > 0 && is_ident(src[b - 1])) --b;
      const std::string channel = src.substr(b, i - b);
      if (!channel.empty()) {
        add_node(is_read ? GraphNode::Kind::kChannelRead
                         : GraphNode::Kind::kChannelWrite,
                 channel);
      }
      i += is_read ? 5 : 6;
      continue;
    }
    // ---- block structure ----
    if (c == '{') {
      // A control header (do/while/for/if/else) owns the next '{'; any
      // other brace opens a plain scope.
      if (pending_header) {
        pending_header = false;
      } else {
        stack.push_back(
            {Block::Kind::kPlain, false, dangling, {}, SIZE_MAX, false});
      }
      ++i;
      continue;
    }
    if (c == '}') {
      if (stack.empty()) {
        ++i;
        continue;
      }
      Block b = stack.back();
      stack.pop_back();
      switch (b.kind) {
        case Block::Kind::kPlain:
          break;
        case Block::Kind::kIf: {
          // Peek for an `else`.
          std::size_t j = i + 1;
          while (j < src.size() &&
                 std::isspace(static_cast<unsigned char>(src[j])) != 0) {
            if (src[j] == '\n') ++line;
            ++j;
          }
          if (word_at(src, j, "else")) {
            Block e;
            e.kind = Block::Kind::kElse;
            e.then_dangling = dangling;       // end of the then branch
            e.entry_dangling = b.entry_dangling;
            dangling = b.entry_dangling;      // else starts at the branch point
            stack.push_back(e);
            pending_header = true;
            i = j + 4;
            continue;
          }
          // No else: fall-through edge from the branch point.
          merge_into_dangling(b.entry_dangling);
          break;
        }
        case Block::Kind::kElse:
          merge_into_dangling(b.then_dangling);
          break;
        case Block::Kind::kDo: {
          // Consume the trailing `while (...)`.
          std::size_t j = i + 1;
          while (j < src.size() &&
                 std::isspace(static_cast<unsigned char>(src[j])) != 0) {
            if (src[j] == '\n') ++line;
            ++j;
          }
          bool infinite = false;
          if (word_at(src, j, "while")) {
            const std::size_t open = src.find('(', j);
            const std::size_t close =
                open == std::string::npos ? std::string::npos
                                          : match_paren(src, open);
            if (close != std::string::npos) {
              infinite = src.substr(open, close - open).find("true") !=
                         std::string::npos;
              i = close;  // advance past the condition (++i below)
            }
          }
          if (b.contains_node && b.first_node != SIZE_MAX) {
            for (std::size_t p : dangling) {
              g.segments.push_back({p, b.first_node});
            }
          }
          if (infinite) {
            dangling.clear();
          }
          break;
        }
        case Block::Kind::kWhile:
        case Block::Kind::kFor: {
          if (b.contains_node && b.first_node != SIZE_MAX) {
            for (std::size_t p : dangling) {
              g.segments.push_back({p, b.first_node});
            }
          }
          if (b.infinite) {
            dangling.clear();
          } else if (b.contains_node) {
            // The loop exit can be reached after iterations (from the
            // body's last node) or with zero iterations (from the entry).
            merge_into_dangling(b.entry_dangling);
          }
          break;
        }
      }
      ++i;
      continue;
    }
    ++i;
  }

  if (!dangling.empty()) {
    GraphNode exit_node;
    exit_node.kind = GraphNode::Kind::kExit;
    exit_node.label = "N" + std::to_string(next_label++);
    exit_node.channel = "";
    exit_node.line = line;
    g.nodes.push_back(exit_node);
    const std::size_t idx = g.nodes.size() - 1;
    for (std::size_t p : dangling) g.segments.push_back({p, idx});
  }
  return g;
}

}  // namespace scperf
