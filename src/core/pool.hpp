#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace scperf {

/// Fixed-size thread pool for embarrassingly parallel simulation work
/// (campaign runs, design-space sweeps: one Simulator per seed per worker).
///
/// Deliberately work-stealing-free: tasks are claimed from a single shared
/// queue, and the deterministic API is parallel_for(), which hands every
/// index a dedicated result slot. Which worker executes which index is
/// scheduling noise; as long as the task for index i writes only state
/// reachable from index i (the "one Simulator per thread, thread_local
/// accumulator" contract in DESIGN.md §7), the assembled slot array is
/// byte-identical for any thread count — including a pool of one and the
/// no-pool sequential path.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains the queue — every task already submitted still runs — then
  /// stops and joins the workers. Never deadlocks on queued work; a pending
  /// stored exception (see wait_idle) is discarded, destructors cannot
  /// throw.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues one fire-and-forget task. If the task throws, the first such
  /// exception is stored and rethrown by the next wait_idle().
  void submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is running, then rethrows
  /// the first exception any submitted task threw since the last call.
  void wait_idle();

  /// Runs body(i) for every i in [0, n), distributing chunks of `chunk`
  /// consecutive indices over the workers, and blocks until every index
  /// completed. Indices are claimed in ascending order but may run in any
  /// interleaving — determinism must come from per-index isolation, not
  /// execution order. If a body throws, remaining unclaimed chunks are
  /// skipped, already-running indices finish, and the first exception is
  /// rethrown here. Safe to call concurrently with submit() and from
  /// multiple threads; n == 0 returns immediately.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)>& body);

  /// Sparse variant: runs body(indices[j]) for every position j, claiming
  /// chunks of consecutive *positions* (the indices themselves may be any
  /// subset, in any order). This is the resume path of a journaled campaign:
  /// only the seeds the journal is missing re-run, with the same
  /// determinism, exception and drain semantics as the dense overload — an
  /// exception cancels unclaimed chunks, in-flight indices finish, and the
  /// first error is rethrown after the drain.
  void parallel_for(const std::vector<std::size_t>& indices, std::size_t chunk,
                    const std::function<void(std::size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  static std::size_t default_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_task_;  ///< workers: queue non-empty or stopping
  std::condition_variable cv_idle_;  ///< wait_idle: queue drained, none active
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;
  bool stop_ = false;
  std::exception_ptr pending_error_;  ///< first submit()-task exception
  std::vector<std::thread> workers_;
};

}  // namespace scperf
