#include "core/cost_table.hpp"

namespace scperf {

const char* to_string(Op op) {
  switch (op) {
    case Op::kAssign:
      return "=";
    case Op::kAssignRes:
      return "=r";
    case Op::kAdd:
      return "+";
    case Op::kSub:
      return "-";
    case Op::kMul:
      return "*";
    case Op::kDiv:
      return "/";
    case Op::kMod:
      return "%";
    case Op::kNeg:
      return "neg";
    case Op::kEq:
      return "==";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kBitAnd:
      return "&";
    case Op::kBitOr:
      return "|";
    case Op::kBitXor:
      return "^";
    case Op::kBitNot:
      return "~";
    case Op::kShl:
      return "<<";
    case Op::kShr:
      return ">>";
    case Op::kLogicalNot:
      return "!";
    case Op::kBranch:
      return "if";
    case Op::kIndex:
      return "[]";
    case Op::kCall:
      return "call";
    case Op::kReturn:
      return "ret";
    case Op::kCount_:
      break;
  }
  return "?";
}

CostTable orsim_sw_cost_table() {
  // Calibrated against the orsim cycle model (src/iss/cycle_model.hpp) by
  // fitting the per-C++-object weights to the ISS cycle counts of a set of
  // calibration kernels — the same procedure the paper applies to OpenRISC
  // assembler listings ("Library weights were obtained analyzing assembler
  // code from several functions specifically developed for this purpose",
  // §5). The values are therefore *averages over compiled instruction
  // sequences*, not architectural latencies: e.g. an assignment averages
  // ~2 cycles because most source-level assignments imply a memory move,
  // while an addition averages well under 1 cycle because many additions
  // fold into addressing modes. The paper's own t_if = 2.4 (Fig. 3) is a
  // weight of exactly this nature. See examples/calibration.cpp for the
  // derivation workflow.
  CostTable t;
  t.set(Op::kAssign, 0.51)
      .set(Op::kAssignRes, 2.10)
      .set(Op::kAdd, 0.11)
      .set(Op::kSub, 0.30)
      .set(Op::kMul, 2.91)
      .set(Op::kDiv, 20.0)
      .set(Op::kMod, 21.0)
      .set(Op::kNeg, 1.0)
      .set(Op::kEq, 1.05)
      .set(Op::kNe, 1.05)
      .set(Op::kLt, 1.05)
      .set(Op::kLe, 1.05)
      .set(Op::kGt, 1.05)
      .set(Op::kGe, 1.05)
      .set(Op::kBitAnd, 1.0)
      .set(Op::kBitOr, 1.0)
      .set(Op::kBitXor, 1.0)
      .set(Op::kBitNot, 1.0)
      .set(Op::kShl, 0.99)
      .set(Op::kShr, 0.99)
      .set(Op::kLogicalNot, 1.05)
      .set(Op::kBranch, 3.30)
      .set(Op::kIndex, 1.22)
      .set(Op::kCall, 7.52)
      .set(Op::kReturn, 3.76);
  return t;
}

CostTable asic_hw_cost_table() {
  // Per-operation latency in target-clock cycles, "a multiple of the clock
  // period" (§3). Matches the FU latency library of the behavioural
  // synthesis substitute (src/hls/fu_library.cpp) at a 100 MHz clock.
  // Comparisons are priced at a fraction of a cycle: most source-level
  // comparisons are loop-control tests the synthesis tool folds into the
  // controller FSM for free, but some are genuine datapath operations — the
  // 0.25 is the calibrated average, the same philosophy as the SW table.
  CostTable t;
  t.set(Op::kAssign, 0.0)  // wiring / register alias
      .set(Op::kAssignRes, 0.0)
      .set(Op::kAdd, 1.0)
      .set(Op::kSub, 1.0)
      .set(Op::kMul, 2.0)
      .set(Op::kDiv, 8.0)
      .set(Op::kMod, 8.0)
      .set(Op::kNeg, 1.0)
      .set(Op::kEq, 0.25)
      .set(Op::kNe, 0.25)
      .set(Op::kLt, 0.25)
      .set(Op::kLe, 0.25)
      .set(Op::kGt, 0.25)
      .set(Op::kGe, 0.25)
      .set(Op::kBitAnd, 1.0)
      .set(Op::kBitOr, 1.0)
      .set(Op::kBitXor, 1.0)
      .set(Op::kBitNot, 1.0)
      .set(Op::kShl, 1.0)
      .set(Op::kShr, 1.0)
      .set(Op::kLogicalNot, 1.0)
      .set(Op::kBranch, 0.0)  // control folded into the FSM
      .set(Op::kIndex, 1.0)   // memory port access
      .set(Op::kCall, 0.0)
      .set(Op::kReturn, 0.0);
  return t;
}


EnergyTable orsim_energy_table() {
  // pJ per source-level operation on the modelled 0.18um-class embedded
  // core: memory-traffic ops dominate (cache/array access ~3-4x an ALU op),
  // multiplies and divides cost roughly in proportion to their latency.
  EnergyTable t;
  t.set(Op::kAssign, 18.0)     // data move: load or store
      .set(Op::kAssignRes, 6.0)
      .set(Op::kAdd, 4.0)
      .set(Op::kSub, 4.0)
      .set(Op::kMul, 22.0)
      .set(Op::kDiv, 110.0)
      .set(Op::kMod, 115.0)
      .set(Op::kNeg, 4.0)
      .set(Op::kEq, 4.0)
      .set(Op::kNe, 4.0)
      .set(Op::kLt, 4.0)
      .set(Op::kLe, 4.0)
      .set(Op::kGt, 4.0)
      .set(Op::kGe, 4.0)
      .set(Op::kBitAnd, 3.0)
      .set(Op::kBitOr, 3.0)
      .set(Op::kBitXor, 3.0)
      .set(Op::kBitNot, 3.0)
      .set(Op::kShl, 3.5)
      .set(Op::kShr, 3.5)
      .set(Op::kLogicalNot, 3.0)
      .set(Op::kBranch, 8.0)   // fetch redirect
      .set(Op::kIndex, 14.0)   // address computation + memory access share
      .set(Op::kCall, 30.0)
      .set(Op::kReturn, 20.0);
  return t;
}

EnergyTable asic_energy_table() {
  // Dedicated datapath: no fetch/decode overhead, so per-op energy is far
  // below the processor's.
  EnergyTable t;
  t.set(Op::kAssign, 0.5)
      .set(Op::kAssignRes, 0.5)
      .set(Op::kAdd, 1.2)
      .set(Op::kSub, 1.2)
      .set(Op::kMul, 9.0)
      .set(Op::kDiv, 40.0)
      .set(Op::kMod, 40.0)
      .set(Op::kNeg, 1.0)
      .set(Op::kEq, 0.8)
      .set(Op::kNe, 0.8)
      .set(Op::kLt, 0.8)
      .set(Op::kLe, 0.8)
      .set(Op::kGt, 0.8)
      .set(Op::kGe, 0.8)
      .set(Op::kBitAnd, 0.6)
      .set(Op::kBitOr, 0.6)
      .set(Op::kBitXor, 0.6)
      .set(Op::kBitNot, 0.6)
      .set(Op::kShl, 0.7)
      .set(Op::kShr, 0.7)
      .set(Op::kLogicalNot, 0.6)
      .set(Op::kBranch, 0.0)
      .set(Op::kIndex, 5.0)  // on-chip memory port
      .set(Op::kCall, 0.0)
      .set(Op::kReturn, 0.0);
  return t;
}

}  // namespace scperf
