#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scperf {

/// The static process-graph extractor (§2: "To identify the segment, some
/// marks are introduced into the code by a simple parser program. In the
/// same way, a specific label is assigned to each channel access").
///
/// The runtime estimator identifies segments dynamically from the node
/// callbacks; this parser provides the complementary *static* view: given a
/// process body's source text, it locates every node (channel access or
/// timed wait), assigns the paper's N0/N1/... labels, and derives the
/// segment graph — the paper's Figure 1 annotation and Figure 2 graph.
///
/// Scope matches the paper's "simple parser": lexical analysis of one
/// process body written in the specification style (channel accesses of the
/// form `name.read(` / `name.write(` and `wait(...)` statements; `do {} while`
/// and `while` loops for back edges). It is a development aid, not a full
/// C++ front end.

/// One node of the process graph.
struct GraphNode {
  enum class Kind { kEntry, kChannelRead, kChannelWrite, kTimedWait, kExit };
  Kind kind = Kind::kEntry;
  std::string label;     ///< "N0", "N1", ...
  std::string channel;   ///< channel name ("" for entry/exit/wait)
  std::size_t line = 0;  ///< 1-based source line
  /// Nesting depth of enclosing loops at this node (used for back edges).
  int loop_depth = 0;

  /// The label the *runtime* estimator gives this node when the process
  /// executes: "entry" / "exit" for the pseudo-nodes, "<channel>:r" /
  /// "<channel>:w" for channel accesses, "wait" for timed waits. This is
  /// also the key space of the segment replay cache, so the static graph
  /// can predict which dynamic segment ids a process will produce.
  std::string runtime_label() const;
};

/// One segment: an arc between two nodes (the paper's Si-j).
struct GraphSegment {
  std::size_t from = 0;  ///< index into ProcessGraph::nodes
  std::size_t to = 0;
};

struct ProcessGraph {
  std::vector<GraphNode> nodes;
  std::vector<GraphSegment> segments;

  const GraphNode& node(const std::string& label) const;
  bool has_segment(const std::string& from_label,
                   const std::string& to_label) const;
  /// "S0-1"-style name of a segment, from its node labels (paper Fig. 1).
  std::string segment_name(const GraphSegment& s) const;
  /// The dynamic "from->to" id the estimator (and the segment replay cache)
  /// uses for this arc, built from the nodes' runtime labels.
  std::string runtime_segment_id(const GraphSegment& s) const;

  /// Renders the graph in Graphviz dot format.
  void write_dot(std::ostream& os) const;
};

/// Parses one process body. Nodes are numbered in source order starting at
/// N0 (entry); the exit node is appended last. Segments connect consecutive
/// nodes in source order, plus a back edge for each `do { ... } while` /
/// `while (...) { ... }` loop that contains nodes, plus the skip edge of an
/// `if` block that contains nodes (the paper's S1-3 in Figure 1).
ProcessGraph parse_process_body(const std::string& source);

}  // namespace scperf
