#pragma once

#include <cassert>
#include <cstddef>
#include <type_traits>
#include <vector>

#include "core/context.hpp"

namespace scperf {

namespace detail {
/// Tag for internal result construction that must not charge anything
/// (operator results are charged by the operator itself).
struct RawTag {};
}  // namespace detail

template <typename T>
concept Arithmetic = std::is_arithmetic_v<T>;

/// An annotated value: behaves exactly like its underlying type, but every
/// operation applied to it reports its execution cost to the active segment
/// accumulator (§3: "C operators are overloaded ... the library automatically
/// replaces ordinary variable types by a new class").
///
/// In addition to charging costs, each value carries a Stamp recording when
/// (in cycles since segment start) it became available, which yields the HW
/// best-case critical path, and which DFG node produced it, which feeds the
/// behavioural-synthesis substitute.
template <typename T>
class Annot {
  static_assert(std::is_arithmetic_v<T>, "Annot wraps arithmetic types");

 public:
  using value_type = T;

  Annot() : v_{} {}

  /// Initialisation from a literal: an immediate load (register class).
  Annot(T v) : v_(v) { detail::charge_unary(Op::kAssignRes, Stamp{}, stamp_); }

  /// Copying another variable (an lvalue) is a genuine data move.
  Annot(const Annot& o) : v_(o.v_) {
    detail::charge_unary(Op::kAssign, o.stamp_, stamp_);
  }
  /// Materialising an operator result is a register write-back: compilers
  /// fold it into the producing instruction, so it carries its own (cheaper)
  /// cost class. The lvalue/rvalue distinction is how the library separates
  /// memory traffic from register traffic at the source level.
  Annot(Annot&& o) : v_(o.v_) {
    detail::charge_unary(Op::kAssignRes, o.stamp_, stamp_);
  }

  /// Internal: construct an operator result without charging.
  Annot(detail::RawTag, T v) : v_(v) {}

  Annot& operator=(const Annot& o) {
    v_ = o.v_;
    detail::charge_unary(Op::kAssign, o.stamp_, stamp_);
    return *this;
  }
  Annot& operator=(Annot&& o) {
    v_ = o.v_;
    detail::charge_unary(Op::kAssignRes, o.stamp_, stamp_);
    return *this;
  }
  Annot& operator=(T v) {
    v_ = v;
    detail::charge_unary(Op::kAssignRes, Stamp{}, stamp_);
    return *this;
  }

  /// Uncharged observation of the underlying value (testbench/reporting use).
  T value() const { return v_; }
  /// Uncharged write (testbench initialisation of pre-segment data).
  void set_raw(T v) {
    v_ = v;
    stamp_ = Stamp{};
  }
  const Stamp& stamp() const { return stamp_; }
  Stamp& stamp() { return stamp_; }

  /// Contextual conversion: using an annotated value as an `if`/`while`/`?:`
  /// condition costs a branch (the paper's t_if).
  explicit operator bool() const {
    detail::charge_effect(Op::kBranch, stamp_);
    return static_cast<bool>(v_);
  }

  Annot operator-() const {
    Annot r(detail::RawTag{}, static_cast<T>(-v_));
    detail::charge_unary(Op::kNeg, stamp_, r.stamp_);
    return r;
  }
  Annot operator~() const
    requires std::is_integral_v<T>
  {
    Annot r(detail::RawTag{}, static_cast<T>(~v_));
    detail::charge_unary(Op::kBitNot, stamp_, r.stamp_);
    return r;
  }
  Annot<bool> operator!() const;

  Annot& operator++() { return *this += T{1}; }
  Annot& operator--() { return *this -= T{1}; }
  Annot operator++(int) {
    Annot old(detail::RawTag{}, v_);
    old.stamp_ = stamp_;
    *this += T{1};
    return old;
  }
  Annot operator--(int) {
    Annot old(detail::RawTag{}, v_);
    old.stamp_ = stamp_;
    *this -= T{1};
    return old;
  }

  // Compound assignments: charged as the operation plus the write-back, which
  // mirrors the paper's accounting where `i = c + d` costs t= + t+.
  Annot& compound(Op op, T rhs_value, const Stamp& rhs_stamp, T result) {
    Stamp tmp;
    detail::charge_binary(op, stamp_, rhs_stamp, tmp);
    v_ = result;
    detail::charge_unary(Op::kAssignRes, tmp, stamp_);
    (void)rhs_value;
    return *this;
  }

  Annot& operator+=(const Annot& o) {
    return compound(Op::kAdd, o.v_, o.stamp_, static_cast<T>(v_ + o.v_));
  }
  Annot& operator-=(const Annot& o) {
    return compound(Op::kSub, o.v_, o.stamp_, static_cast<T>(v_ - o.v_));
  }
  Annot& operator*=(const Annot& o) {
    return compound(Op::kMul, o.v_, o.stamp_, static_cast<T>(v_ * o.v_));
  }
  Annot& operator/=(const Annot& o) {
    return compound(Op::kDiv, o.v_, o.stamp_, static_cast<T>(v_ / o.v_));
  }
  template <Arithmetic U>
  Annot& operator+=(U u) {
    return compound(Op::kAdd, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ + u));
  }
  template <Arithmetic U>
  Annot& operator-=(U u) {
    return compound(Op::kSub, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ - u));
  }
  template <Arithmetic U>
  Annot& operator*=(U u) {
    return compound(Op::kMul, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ * u));
  }
  template <Arithmetic U>
  Annot& operator/=(U u) {
    return compound(Op::kDiv, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ / u));
  }
  Annot& operator%=(const Annot& o)
    requires std::is_integral_v<T>
  {
    return compound(Op::kMod, o.v_, o.stamp_, static_cast<T>(v_ % o.v_));
  }
  template <Arithmetic U>
  Annot& operator%=(U u)
    requires std::is_integral_v<T>
  {
    return compound(Op::kMod, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ % u));
  }
  template <Arithmetic U>
  Annot& operator<<=(U u)
    requires std::is_integral_v<T>
  {
    return compound(Op::kShl, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ << u));
  }
  template <Arithmetic U>
  Annot& operator>>=(U u)
    requires std::is_integral_v<T>
  {
    return compound(Op::kShr, static_cast<T>(u), Stamp{},
                    static_cast<T>(v_ >> u));
  }
  Annot& operator&=(const Annot& o)
    requires std::is_integral_v<T>
  {
    return compound(Op::kBitAnd, o.v_, o.stamp_, static_cast<T>(v_ & o.v_));
  }
  Annot& operator|=(const Annot& o)
    requires std::is_integral_v<T>
  {
    return compound(Op::kBitOr, o.v_, o.stamp_, static_cast<T>(v_ | o.v_));
  }
  Annot& operator^=(const Annot& o)
    requires std::is_integral_v<T>
  {
    return compound(Op::kBitXor, o.v_, o.stamp_, static_cast<T>(v_ ^ o.v_));
  }

 private:
  T v_;
  Stamp stamp_;
};

// ---- binary arithmetic / bitwise operators ---------------------------------
// Three overloads per operator (annot⊕annot, annot⊕raw, raw⊕annot); the raw
// operand is a constant and costs nothing by itself, exactly as in the
// paper's example where `i < 0` is charged a single t<.
// A generator macro is the only way to avoid ~50 hand-copied bodies; it is
// #undef'd immediately after use.

#define SCPERF_DEFINE_BINOP(sym, OPC, CONSTRAINT)                        \
  template <typename T>                                                  \
  Annot<T> operator sym(const Annot<T>& a, const Annot<T>& b) CONSTRAINT \
  {                                                                      \
    Annot<T> r(detail::RawTag{},                                         \
               static_cast<T>(a.value() sym b.value()));                 \
    detail::charge_binary(OPC, a.stamp(), b.stamp(), r.stamp());         \
    return r;                                                            \
  }                                                                      \
  template <typename T, Arithmetic U>                                    \
  Annot<T> operator sym(const Annot<T>& a, U b) CONSTRAINT               \
  {                                                                      \
    Annot<T> r(detail::RawTag{}, static_cast<T>(a.value() sym b));       \
    detail::charge_binary(OPC, a.stamp(), Stamp{}, r.stamp());           \
    return r;                                                            \
  }                                                                      \
  template <typename T, Arithmetic U>                                    \
  Annot<T> operator sym(U a, const Annot<T>& b) CONSTRAINT               \
  {                                                                      \
    Annot<T> r(detail::RawTag{}, static_cast<T>(a sym b.value()));       \
    detail::charge_binary(OPC, Stamp{}, b.stamp(), r.stamp());           \
    return r;                                                            \
  }

#define SCPERF_NOCONSTRAINT
#define SCPERF_INTEGRAL requires std::is_integral_v<T>

SCPERF_DEFINE_BINOP(+, Op::kAdd, SCPERF_NOCONSTRAINT)
SCPERF_DEFINE_BINOP(-, Op::kSub, SCPERF_NOCONSTRAINT)
SCPERF_DEFINE_BINOP(*, Op::kMul, SCPERF_NOCONSTRAINT)
SCPERF_DEFINE_BINOP(/, Op::kDiv, SCPERF_NOCONSTRAINT)
SCPERF_DEFINE_BINOP(%, Op::kMod, SCPERF_INTEGRAL)
SCPERF_DEFINE_BINOP(&, Op::kBitAnd, SCPERF_INTEGRAL)
SCPERF_DEFINE_BINOP(|, Op::kBitOr, SCPERF_INTEGRAL)
SCPERF_DEFINE_BINOP(^, Op::kBitXor, SCPERF_INTEGRAL)
SCPERF_DEFINE_BINOP(<<, Op::kShl, SCPERF_INTEGRAL)
SCPERF_DEFINE_BINOP(>>, Op::kShr, SCPERF_INTEGRAL)

#undef SCPERF_DEFINE_BINOP

// ---- comparisons (result: Annot<bool>) --------------------------------------

#define SCPERF_DEFINE_CMPOP(sym, OPC)                                 \
  template <typename T>                                               \
  Annot<bool> operator sym(const Annot<T>& a, const Annot<T>& b) {    \
    Annot<bool> r(detail::RawTag{}, a.value() sym b.value());         \
    detail::charge_binary(OPC, a.stamp(), b.stamp(), r.stamp());      \
    return r;                                                         \
  }                                                                   \
  template <typename T, Arithmetic U>                                 \
  Annot<bool> operator sym(const Annot<T>& a, U b) {                  \
    Annot<bool> r(detail::RawTag{}, a.value() sym static_cast<T>(b)); \
    detail::charge_binary(OPC, a.stamp(), Stamp{}, r.stamp());        \
    return r;                                                         \
  }                                                                   \
  template <typename T, Arithmetic U>                                 \
  Annot<bool> operator sym(U a, const Annot<T>& b) {                  \
    Annot<bool> r(detail::RawTag{}, static_cast<T>(a) sym b.value()); \
    detail::charge_binary(OPC, Stamp{}, b.stamp(), r.stamp());        \
    return r;                                                         \
  }

SCPERF_DEFINE_CMPOP(==, Op::kEq)
SCPERF_DEFINE_CMPOP(!=, Op::kNe)
SCPERF_DEFINE_CMPOP(<, Op::kLt)
SCPERF_DEFINE_CMPOP(<=, Op::kLe)
SCPERF_DEFINE_CMPOP(>, Op::kGt)
SCPERF_DEFINE_CMPOP(>=, Op::kGe)

#undef SCPERF_DEFINE_CMPOP
#undef SCPERF_NOCONSTRAINT
#undef SCPERF_INTEGRAL

template <typename T>
Annot<bool> Annot<T>::operator!() const {
  Annot<bool> r(detail::RawTag{}, !v_);
  detail::charge_unary(Op::kLogicalNot, stamp_, r.stamp());
  return r;
}

/// Annotated fixed-capacity array. Element access through operator[] charges
/// the paper's t[] (address computation + memory access); the elements are
/// annotated values themselves, so reads and writes of them are charged by
/// Annot's own operators.
template <typename T>
class Array {
 public:
  explicit Array(std::size_t n) : data_(n) {}
  Array(std::initializer_list<T> init) {
    data_.reserve(init.size());
    for (T v : init) data_.push_back(Annot<T>(detail::RawTag{}, v));
  }

  Annot<T>& operator[](std::size_t i) {
    assert(i < data_.size());
    detail::charge_effect(Op::kIndex, Stamp{});
    return data_[i];
  }
  const Annot<T>& operator[](std::size_t i) const {
    assert(i < data_.size());
    detail::charge_effect(Op::kIndex, Stamp{});
    return data_[i];
  }
  template <typename I>
  Annot<T>& operator[](const Annot<I>& i) {
    assert(static_cast<std::size_t>(i.value()) < data_.size());
    detail::charge_effect(Op::kIndex, i.stamp());
    return data_[static_cast<std::size_t>(i.value())];
  }
  template <typename I>
  const Annot<T>& operator[](const Annot<I>& i) const {
    assert(static_cast<std::size_t>(i.value()) < data_.size());
    detail::charge_effect(Op::kIndex, i.stamp());
    return data_[static_cast<std::size_t>(i.value())];
  }

  /// Uncharged access for testbench initialisation and result checking.
  Annot<T>& at_raw(std::size_t i) { return data_[i]; }
  const Annot<T>& at_raw(std::size_t i) const { return data_[i]; }

  std::size_t size() const { return data_.size(); }

 private:
  std::vector<Annot<T>> data_;
};

/// RAII guard charging the paper's function-call cost t_fc on entry and the
/// return cost on exit. Place one at the top of any annotated function:
///
///     gint func(gint x) {
///       FuncGuard fg;
///       ...
///     }
class FuncGuard {
 public:
  FuncGuard() { detail::charge_effect(Op::kCall, Stamp{}); }
  ~FuncGuard() { detail::charge_effect(Op::kReturn, Stamp{}); }
  FuncGuard(const FuncGuard&) = delete;
  FuncGuard& operator=(const FuncGuard&) = delete;
};

// The generic names user code (and the type-redefinition header) uses.
using gint = Annot<int>;
using glong = Annot<long>;
using guint = Annot<unsigned>;
using gbool = Annot<bool>;
using gfloat = Annot<float>;
using gdouble = Annot<double>;
template <typename T>
using garray = Array<T>;

}  // namespace scperf
