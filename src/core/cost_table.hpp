#pragma once

#include <array>
#include <cstddef>

#include "core/op.hpp"

namespace scperf {

/// Per-resource execution cost of each C++ object, in clock cycles of that
/// resource. Fractional cycles are allowed — the paper's own example uses
/// t_if = 2.4 — because the weights are calibrated averages over assembler
/// sequences, not per-instance exact counts.
///
/// The paper expects these tables to be "provided by the platform vendor";
/// here the SW table is calibrated against the orsim ISS cycle model and the
/// HW table against the FU latency library used by the behavioural-synthesis
/// substitute (see DESIGN.md §2).
class CostTable {
 public:
  constexpr CostTable() : cycles_{} {}

  constexpr double operator[](Op op) const {
    return cycles_[static_cast<std::size_t>(op)];
  }
  constexpr CostTable& set(Op op, double cycles) {
    cycles_[static_cast<std::size_t>(op)] = cycles;
    return *this;
  }

  /// Every op costs `c` cycles — useful in tests.
  static constexpr CostTable uniform(double c) {
    CostTable t;
    for (auto& v : t.cycles_) v = c;
    return t;
  }

 private:
  std::array<double, kNumOps> cycles_;
};

/// SW cost table calibrated against the orsim ISS cycle model (the role the
/// paper's OpenRISC assembler analysis plays): weights approximate the cycle
/// cost of the assembler sequence each C++ object compiles to, including its
/// share of addressing and register-move overhead.
CostTable orsim_sw_cost_table();

/// HW cost table: per-operation latency expressed in cycles of the target
/// clock, rounded up to "a multiple of the clock period" as §3 prescribes
/// for the best-case estimate. Matches the FU library in src/hls.
CostTable asic_hw_cost_table();

/// Per-operation energy, in picojoules. The paper's introduction lists
/// consumption among the performance parameters of interest; the estimation
/// machinery supports it for free, because energy — unlike time — needs no
/// back-annotation: it is the dot product of the executed-operation
/// histogram with a per-op energy table, computed after the fact.
using EnergyTable = CostTable;

/// Energy characterisation of the orsim-class embedded core (pJ per
/// C++-level operation at the calibrated abstraction level).
EnergyTable orsim_energy_table();

/// Energy characterisation of the HW FU library (pJ per operation).
EnergyTable asic_energy_table();

}  // namespace scperf
