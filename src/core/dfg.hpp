#pragma once

#include <cstdint>
#include <vector>

#include "core/op.hpp"

namespace scperf {

/// One operation of a segment's dataflow graph. Operand ids are 1-based
/// indices of earlier nodes; 0 denotes an external input (a value that was
/// produced before the segment started, a constant, or a memory load).
struct DfgNode {
  Op op;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Dataflow graph of one executed segment, recorded online while the
/// annotated code runs on a HW resource. Consumed by the behavioural
/// synthesis substitute (src/hls) to obtain "real" schedule lengths for
/// Tables 2 and 4.
struct Dfg {
  std::vector<DfgNode> nodes;

  bool empty() const { return nodes.empty(); }
  std::size_t size() const { return nodes.size(); }
};

}  // namespace scperf
