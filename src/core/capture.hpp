#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace scperf {

/// One recorded capture event: the simulated time when the capture point
/// executed plus an optional associated value ("It is also possible to
/// associate values of internal signals of the system to these time values",
/// §4).
struct CaptureEvent {
  minisc::Time time;
  double value = 0.0;
};

class CapturePoint;

/// Owns the set of capture points of one analysis session and renders their
/// event lists "prepared for post-processing using mathematical tools" (§4).
/// Concurrency: registration (attach/detach, i.e. CapturePoint construction
/// and destruction) and the whole-registry readers below are mutex-guarded,
/// so capture points may be created and destroyed from pool workers — in
/// particular against the process-wide global() registry — without racing.
/// Recording itself writes only the point's own event list, which belongs to
/// exactly one run; parallel campaign runs must therefore keep one
/// CaptureRegistry per run (DESIGN.md §7) or their points' events interleave
/// into one shared hash.
class CaptureRegistry {
 public:
  /// Process-wide default registry (capture points register here unless given
  /// an explicit one).
  static CaptureRegistry& global();

  void attach(CapturePoint& p);
  void detach(CapturePoint& p);

  /// Unsynchronised view: only meaningful while no other thread is
  /// attaching or detaching points.
  const std::vector<CapturePoint*>& points() const { return points_; }
  const CapturePoint* find(const std::string& name) const;

  /// time,point,value rows, one per event, chronologically per point.
  void write_csv(std::ostream& os) const;
  /// A Matlab script defining one Nx2 matrix [seconds value] per point.
  void write_matlab(std::ostream& os) const;

  /// Order-insensitive-across-points / order-sensitive-within-point hash of
  /// all captured VALUES (times excluded). Two runs of a deterministic
  /// specification — untimed and strict-timed — must produce equal hashes;
  /// a difference flags nondeterminism (§6).
  std::uint64_t value_sequence_hash() const;

  /// Drops all recorded events (keeps registrations).
  void clear_events();

 private:
  mutable std::mutex mu_;  ///< guards points_ (the pointer list, not events)
  std::vector<CapturePoint*> points_;
};

/// A user-insertable capture point: "The user can insert capture points
/// anywhere inside the code and a list of events corresponding to the
/// concrete times when the capture points were executed is generated" (§4).
class CapturePoint {
 public:
  explicit CapturePoint(std::string name,
                        CaptureRegistry& registry = CaptureRegistry::global());
  ~CapturePoint();
  CapturePoint(const CapturePoint&) = delete;
  CapturePoint& operator=(const CapturePoint&) = delete;

  /// Records an event at the current simulated time.
  void record(double value = 0.0);
  /// Conditional capture ("Capture points can be conditional to a certain
  /// assertion", §4).
  void record_if(bool condition, double value = 0.0);

  const std::string& name() const { return name_; }
  const std::vector<CaptureEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  std::string name_;
  CaptureRegistry* registry_;
  std::vector<CaptureEvent> events_;
};

}  // namespace scperf
