#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>

namespace scperf {

double SegmentStats::variance() const {
  if (count < 2) return 0.0;
  const double n = static_cast<double>(count);
  const double m = cycles_sum / n;
  const double var = (cycles_sq_sum - n * m * m) / (n - 1.0);
  return var > 0.0 ? var : 0.0;
}

double SegmentStats::ci95_halfwidth() const {
  if (count < 2) return 0.0;
  return 1.96 * std::sqrt(variance() / static_cast<double>(count));
}

void Report::print(std::ostream& os) const {
  os << "=== scperf report (simulated time: " << sim_time.str() << ") ===\n";
  os << "\n-- processes --\n";
  bool any_energy = false;
  for (const auto& p : processes) any_energy |= p.energy_pj > 0.0;
  os << std::left << std::setw(16) << "process" << std::setw(10) << "resource"
     << std::right << std::setw(14) << "cycles" << std::setw(14) << "time"
     << std::setw(10) << "segments" << std::setw(12) << "ops";
  if (any_energy) os << std::setw(14) << "energy";
  os << "\n";
  for (const auto& p : processes) {
    os << std::left << std::setw(16) << p.process << std::setw(10)
       << p.resource << std::right << std::setw(14) << std::fixed
       << std::setprecision(1) << p.total_cycles << std::setw(14)
       << p.total_time.str() << std::setw(10) << p.segments_executed
       << std::setw(12) << p.ops_executed;
    if (any_energy) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f uJ", p.energy_pj / 1e6);
      os << std::setw(14) << buf;
    }
    os << "\n";
  }
  os << "\n-- resources --\n";
  os << std::left << std::setw(16) << "resource" << std::setw(6) << "kind"
     << std::right << std::setw(14) << "busy" << std::setw(14) << "rtos"
     << std::setw(12) << "util" << "\n";
  for (const auto& r : resources) {
    os << std::left << std::setw(16) << r.resource << std::setw(6) << r.kind
       << std::right << std::setw(14) << r.busy.str() << std::setw(14)
       << r.rtos.str() << std::setw(11) << std::setprecision(1)
       << r.utilization * 100.0 << "%\n";
  }
  os << "\n-- segments --\n";
  os << std::left << std::setw(16) << "process" << std::setw(26) << "segment"
     << std::right << std::setw(8) << "count" << std::setw(12) << "mean"
     << std::setw(12) << "min" << std::setw(12) << "max" << std::setw(10)
     << "ci95" << "\n";
  for (const auto& s : segments) {
    os << std::left << std::setw(16) << s.process << std::setw(26)
       << s.stats.id() << std::right << std::setw(8) << s.stats.count
       << std::setw(12) << std::setprecision(1) << s.stats.mean()
       << std::setw(12) << s.stats.cycles_min << std::setw(12)
       << s.stats.cycles_max << std::setw(10) << std::setprecision(2)
       << s.stats.ci95_halfwidth() << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void Report::write_csv(std::ostream& os) const {
  os << "process,segment,count,mean_cycles,min_cycles,max_cycles,"
        "ci95_halfwidth,bc_cycles_mean,wc_cycles_mean\n";
  for (const auto& s : segments) {
    const double n = static_cast<double>(s.stats.count);
    os << s.process << ',' << s.stats.id() << ',' << s.stats.count << ','
       << s.stats.mean() << ',' << s.stats.cycles_min << ','
       << s.stats.cycles_max << ',' << s.stats.ci95_halfwidth() << ','
       << (n > 0 ? s.stats.bc_cycles_sum / n : 0.0) << ','
       << (n > 0 ? s.stats.wc_cycles_sum / n : 0.0) << "\n";
  }
}

void Report::write_process_csv(std::ostream& os) const {
  os << "process,resource,total_cycles,total_time_ns,segments,ops,"
        "energy_pj\n";
  for (const auto& p : processes) {
    os << p.process << ',' << p.resource << ',' << p.total_cycles << ','
       << p.total_time.to_ns_d() << ',' << p.segments_executed << ','
       << p.ops_executed << ',' << p.energy_pj << "\n";
  }
}

void Report::write_resource_csv(std::ostream& os) const {
  os << "resource,kind,busy_ns,rtos_ns,utilization\n";
  for (const auto& r : resources) {
    os << r.resource << ',' << r.kind << ',' << r.busy.to_ns_d() << ','
       << r.rtos.to_ns_d() << ',' << r.utilization << "\n";
  }
}

void Report::print_cache(std::ostream& os) const {
  bool any = false;
  for (const auto& c : cache) {
    any |= c.hits + c.misses + c.bypassed > 0;
  }
  if (!any) return;
  os << "\n-- segment replay cache --\n";
  os << std::left << std::setw(16) << "resource" << std::right << std::setw(10)
     << "hits" << std::setw(10) << "misses" << std::setw(10) << "bypassed"
     << std::setw(14) << "ops saved" << std::setw(16) << "cycles saved"
     << std::setw(10) << "entries" << "\n";
  for (const auto& c : cache) {
    if (c.hits + c.misses + c.bypassed == 0) continue;
    os << std::left << std::setw(16) << c.resource << std::right
       << std::setw(10) << c.hits << std::setw(10) << c.misses << std::setw(10)
       << c.bypassed << std::setw(14) << c.replayed_ops << std::setw(16)
       << std::fixed << std::setprecision(1) << c.cycles_saved << std::setw(10)
       << c.entries << "\n";
  }
  os.unsetf(std::ios::fixed);
}

void Report::write_cache_csv(std::ostream& os) const {
  os << "resource,cache_hits,cache_misses,cache_bypassed,replayed_ops,"
        "cycles_saved,entries\n";
  for (const auto& c : cache) {
    os << c.resource << ',' << c.hits << ',' << c.misses << ',' << c.bypassed
       << ',' << c.replayed_ops << ',' << c.cycles_saved << ',' << c.entries
       << "\n";
  }
}

}  // namespace scperf
