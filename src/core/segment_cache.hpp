#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/op.hpp"

namespace scperf {

struct SegmentAccum;
class Resource;

/// Configuration of the segment replay cache (see SegmentCache below).
/// Defaults come from the environment at Estimator construction:
/// SCPERF_SEGMENT_CACHE=0 disables it, SCPERF_CACHE_VALIDATE=1 switches to
/// validate mode (charge both ways and cross-check every replayable segment).
struct SegmentCacheConfig {
  bool enabled = true;
  bool validate = false;
  /// Distinct (exit-node, signature) entries recorded per entry node before
  /// the node is declared uncacheable (data-dependent op streams that never
  /// repeat would otherwise grow the cache without ever hitting).
  std::size_t max_entries_per_node = 64;
  /// Longest op trace kept per segment execution, in ops. A segment that
  /// exceeds it is folded back into ordinary charging mid-flight and its
  /// entry node declared uncacheable.
  std::size_t trace_limit = std::size_t{1} << 22;

  static SegmentCacheConfig from_env();
};

/// Replay-cache counters, per process (SegmentCache::stats) or aggregated
/// per resource / platform (Estimator::segment_cache_stats).
struct SegmentCacheStats {
  std::uint64_t hits = 0;        ///< segments applied as an O(1) delta
  std::uint64_t misses = 0;      ///< traced segments whose signature was new
  std::uint64_t bypassed = 0;    ///< segments charged conventionally
  std::uint64_t validated = 0;   ///< validate-mode cross-checks that passed
  std::uint64_t replayed_ops = 0;  ///< per-op charges skipped by hits
  double cycles_saved = 0.0;       ///< estimated cycles applied via replay
  std::uint64_t entries = 0;       ///< live (segment, signature) entries

  SegmentCacheStats& operator+=(const SegmentCacheStats& o);
  /// True when the cache ever skipped per-op charging (the property the
  /// fault-injection tests assert is FALSE on memo-unsafe resources).
  bool engaged() const { return hits + misses > 0; }
};

/// Segment replay cache: memoizes the aggregate cost delta of a segment
/// execution — sum_cycles, max_ready, op_count, op-histogram delta — keyed
/// by segment identity ("from->to" node pair, the same ids segment_parser
/// derives statically) plus a control-path signature hashed over the op
/// trace, so data-dependent branches that change the op stream map to
/// distinct entries.
///
/// Protocol (driven by the Estimator at segment boundaries):
///  - arm() at segment start decides the accumulator's mode. The first
///    execution from an entry node charges conventionally (cold). Later
///    executions run in replay mode: each charge appends one op byte to the
///    accumulator's trace and skips the per-op accounting entirely.
///  - resolve() at segment close hashes the trace. A hit applies the
///    recorded delta in O(1); a miss recomputes the aggregate from the trace
///    in the exact charge order (so the sum is the bit-identical double the
///    conventional path would have produced) and records a new entry.
///
/// Soundness: replay is *byte-identical* to conventional charging because
/// SegmentAccum::reset() zeroes all per-segment accumulation at every
/// segment boundary, per-op costs depend only on the op (CostTable is
/// immutable during a run), and FP addition order is preserved on misses
/// while hits reuse the previously summed double unchanged. The cache
/// self-disables where that argument fails:
///  - ready tracking / DFG recording (HW resources): the per-op critical-path
///    recurrence reads every operand's ready time — an aggregate cannot
///    replay it;
///  - memo-unsafe resources (pulse / downtime / crash fault injection):
///    per-op fault cycles and mid-segment kills are execution-time-dependent;
///  - validate mode: charges both ways and cross-checks instead of skipping.
class SegmentCache {
 public:
  explicit SegmentCache(const SegmentCacheConfig& cfg) : cfg_(cfg) {}

  /// Decides the accumulator's mode for the segment starting at `from`.
  void arm(SegmentAccum& a, const std::string& from, const Resource& r);

  /// Closes the segment "from->to": applies / records / accounts. Must be
  /// called before the accumulator's totals are read, and before reset().
  void resolve(SegmentAccum& a, const std::string& from,
               const std::string& to);

  SegmentCacheStats stats() const;

  /// Control-path signature over an op trace (exposed for tests).
  static std::uint64_t signature(const unsigned char* p, std::size_t n);

  /// Test hook: perturbs every recorded sum so a validate-mode run trips
  /// the cross-check. Never call outside tests.
  void debug_perturb_entries(double extra_cycles);

 private:
  /// The memoized aggregate of one (segment, signature): exactly what a
  /// conventional charge of the same op stream adds to the accumulator.
  struct Delta {
    double sum_cycles = 0.0;
    double max_ready = 0.0;
    std::uint64_t op_count = 0;
    std::array<std::uint64_t, kNumOps> op_histogram{};
  };

  struct NodeState {
    bool seen = false;         ///< closed at least once: next start arms
    bool uncacheable = false;  ///< saturated or overflowed: never arm again
    std::size_t entries = 0;   ///< recorded deltas across this node's exits
  };

  /// Recomputes the delta from the accumulator's trace in charge order.
  Delta derive(const SegmentAccum& a) const;
  void record(NodeState& ns, std::unordered_map<std::uint64_t, Delta>& by_sig,
              std::uint64_t sig, const Delta& d);

  SegmentCacheConfig cfg_;
  SegmentCacheStats stats_;
  std::unordered_map<std::string, NodeState> nodes_;  ///< by entry node
  /// "from->to" -> signature -> delta.
  std::unordered_map<std::string, std::unordered_map<std::uint64_t, Delta>>
      entries_;
};

}  // namespace scperf
