#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

#include "core/cost_table.hpp"
#include "core/dfg.hpp"
#include "core/op.hpp"

namespace scperf {

/// Provenance stamp carried by every annotated value.
///
/// `ready` is the value's completion time in cycles relative to the start of
/// the segment that produced it (the online critical-path computation for the
/// paper's HW best case); `node` is its producer in the recorded DFG. Both
/// are only meaningful while `epoch` matches the active segment's epoch —
/// values surviving across a segment boundary are inputs of the new segment
/// (ready = 0, node = external).
struct Stamp {
  std::uint64_t epoch = 0;
  double ready = 0.0;
  std::uint32_t node = 0;
};

/// Per-segment accounting: everything the overloaded operators write into.
///
/// - sum_cycles: plain sum of per-op costs. This is the SW segment time and
///   the HW worst case (single-ALU sequential execution, §3).
/// - max_ready: the running DAG critical path. This is the HW best case
///   ("critical path of the sequence of operations", §3).
/// - dfg: optional operation graph for the behavioural-synthesis substitute.
namespace detail {
/// Forwards to Simulator::probe_wall_clock() (defined in estimator.cpp so
/// this header stays free of the kernel include): converts an unbounded
/// compute segment into a kWallClockBudget SimError instead of a hang.
void annotation_watchdog_probe();
}  // namespace detail

struct SegmentAccum {
  const CostTable* table = nullptr;
  bool track_ready = false;  ///< HW resources propagate value ready-times
  bool record_dfg = false;   ///< HW resources may also record the DFG

  double sum_cycles = 0.0;
  double max_ready = 0.0;
  std::uint64_t op_count = 0;
  std::array<std::uint64_t, kNumOps> op_histogram{};
  /// Cumulative cycles charged by fault injection (pulse glitches) — like
  /// op_histogram this survives reset(): it feeds the process's energy
  /// figure, not any single segment's time.
  double fault_cycles = 0.0;
  std::uint64_t epoch = 1;
  Dfg dfg;

  /// Starts a fresh segment; bumping the epoch invalidates every stamp
  /// produced by earlier segments without touching the values themselves.
  void reset() {
    sum_cycles = 0.0;
    max_ready = 0.0;
    op_count = 0;
    ++epoch;
    dfg.nodes.clear();
  }

  double charge(Op op) {
    const double lat = (*table)[op];
    sum_cycles += lat;
    ++op_count;
    ++op_histogram[static_cast<std::size_t>(op)];
    // A segment that never reaches a node never passes through the
    // scheduler, so the kernel's wall-clock watchdog would sleep through an
    // in-segment hang; probe it from here, amortised to every 4096 charges
    // (op_count resets per segment — only long segments ever probe).
    if ((op_count & 0xFFFu) == 0u) detail::annotation_watchdog_probe();
    return lat;
  }
};

/// The accumulator of the process currently executing, switched by the
/// estimator at every scheduler dispatch; nullptr when the running process is
/// unmapped or no estimator is installed. Annotated operators are no-ops in
/// the nullptr case — this is what keeps the library "completely transparent
/// for the user" at near-zero cost when estimation is off.
extern thread_local SegmentAccum* tl_accum;

namespace detail {

inline double ready_of(const SegmentAccum& acc, const Stamp& s) {
  return s.epoch == acc.epoch ? s.ready : 0.0;
}
inline std::uint32_t node_of(const SegmentAccum& acc, const Stamp& s) {
  return s.epoch == acc.epoch ? s.node : 0u;
}

/// Charges a binary operation and computes the result's stamp.
inline void charge_binary(Op op, const Stamp& a, const Stamp& b, Stamp& out) {
  SegmentAccum* acc = tl_accum;
  if (acc == nullptr) return;
  const double lat = acc->charge(op);
  if (!acc->track_ready) return;
  out.epoch = acc->epoch;
  out.ready = std::max(ready_of(*acc, a), ready_of(*acc, b)) + lat;
  acc->max_ready = std::max(acc->max_ready, out.ready);
  if (acc->record_dfg) {
    acc->dfg.nodes.push_back({op, node_of(*acc, a), node_of(*acc, b)});
    out.node = static_cast<std::uint32_t>(acc->dfg.nodes.size());
  }
}

/// Charges a unary operation (including assignment, where `a` is the source).
inline void charge_unary(Op op, const Stamp& a, Stamp& out) {
  charge_binary(op, a, Stamp{}, out);
}

/// Charges an operation with no tracked result (branch conditions, indexing):
/// contributes to the running sums and the critical path but produces no
/// stamped value.
inline void charge_effect(Op op, const Stamp& a) {
  Stamp discard;
  charge_binary(op, a, Stamp{}, discard);
}

}  // namespace detail
}  // namespace scperf
