#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdlib>

#include "core/cost_table.hpp"
#include "core/dfg.hpp"
#include "core/op.hpp"

namespace scperf {

/// Provenance stamp carried by every annotated value.
///
/// `ready` is the value's completion time in cycles relative to the start of
/// the segment that produced it (the online critical-path computation for the
/// paper's HW best case); `node` is its producer in the recorded DFG. Both
/// are only meaningful while `epoch` matches the active segment's epoch —
/// values surviving across a segment boundary are inputs of the new segment
/// (ready = 0, node = external).
struct Stamp {
  std::uint64_t epoch = 0;
  double ready = 0.0;
  std::uint32_t node = 0;
};

/// Per-segment accounting: everything the overloaded operators write into.
///
/// - sum_cycles: plain sum of per-op costs. This is the SW segment time and
///   the HW worst case (single-ALU sequential execution, §3).
/// - max_ready: the running DAG critical path. This is the HW best case
///   ("critical path of the sequence of operations", §3).
/// - dfg: optional operation graph for the behavioural-synthesis substitute.
namespace detail {
/// Forwards to Simulator::probe_wall_clock() (defined in estimator.cpp so
/// this header stays free of the kernel include): converts an unbounded
/// compute segment into a kWallClockBudget SimError instead of a hang.
void annotation_watchdog_probe();
}  // namespace detail

struct SegmentAccum {
  const CostTable* table = nullptr;
  bool track_ready = false;  ///< HW resources propagate value ready-times
  bool record_dfg = false;   ///< HW resources may also record the DFG

  double sum_cycles = 0.0;
  double max_ready = 0.0;
  std::uint64_t op_count = 0;
  std::array<std::uint64_t, kNumOps> op_histogram{};
  /// Cumulative cycles charged by fault injection (pulse glitches) — like
  /// op_histogram this survives reset(): it feeds the process's energy
  /// figure, not any single segment's time.
  double fault_cycles = 0.0;
  std::uint64_t epoch = 1;
  Dfg dfg;

  // ---- segment replay cache (segment_cache.hpp) ----
  // In replay mode every charge appends its op byte to the trace and skips
  // the per-op accounting; the cache applies the memoized aggregate at the
  // segment close. Validate mode traces AND charges, so the close can
  // cross-check the recorded delta against a freshly charged one. The trace
  // buffer is 4096-byte aligned with a capacity that is a multiple of 4096,
  // so a single low-bits test per push covers both the grow check and the
  // watchdog-probe cadence (one probe per 4096 charges, like charge()).
  bool replaying = false;       ///< trace only; skip per-op accounting
  bool tracing = false;         ///< validate mode: trace AND charge
  bool trace_overflow = false;  ///< segment outgrew trace_limit: demoted
  unsigned char* trace_pos = nullptr;
  unsigned char* trace_begin = nullptr;
  unsigned char* trace_end = nullptr;
  std::size_t trace_limit = 0;  ///< set by the cache when it adopts the accum

  SegmentAccum() = default;
  SegmentAccum(const SegmentAccum&) = delete;
  SegmentAccum& operator=(const SegmentAccum&) = delete;
  ~SegmentAccum() { std::free(trace_begin); }

  /// Starts a fresh segment; bumping the epoch invalidates every stamp
  /// produced by earlier segments without touching the values themselves.
  void reset() {
    sum_cycles = 0.0;
    max_ready = 0.0;
    op_count = 0;
    ++epoch;
    dfg.nodes.clear();
    replaying = false;
    tracing = false;
    trace_overflow = false;
    trace_pos = trace_begin;
  }

  double charge(Op op) {
    if (tracing) trace_push(op);  // validate mode records the path too
    const double lat = (*table)[op];
    sum_cycles += lat;
    ++op_count;
    ++op_histogram[static_cast<std::size_t>(op)];
    // A segment that never reaches a node never passes through the
    // scheduler, so the kernel's wall-clock watchdog would sleep through an
    // in-segment hang; probe it from here, amortised to every 4096 charges
    // (op_count resets per segment — only long segments ever probe).
    if ((op_count & 0xFFFu) == 0u) detail::annotation_watchdog_probe();
    return lat;
  }

  /// Replay-mode charge: one byte appended, nothing summed. The aligned
  /// low-bits test fires trace_block_edge() once per 4096 pushes (and on the
  /// very first push, when trace_pos is still null), which grows the buffer,
  /// probes the wall-clock watchdog, and demotes the segment back to
  /// conventional charging if it outgrows trace_limit.
  void trace_push(Op op) {
    unsigned char* p = trace_pos;
    if ((reinterpret_cast<std::uintptr_t>(p) & 0xFFFu) == 0u) {
      const bool was_replaying = replaying;
      trace_block_edge();
      if (!replaying && !tracing) {
        // Demoted mid-segment (trace_limit): the fold covered every op
        // already traced; this one still needs conventional accounting —
        // unless the caller is charge() itself (validate mode), which
        // accounts it right after we return.
        if (was_replaying) charge(op);
        return;
      }
      p = trace_pos;
    }
    *p = static_cast<unsigned char>(op);
    trace_pos = p + 1;
  }

  /// Out-of-line slow path of trace_push (segment_cache.cpp).
  void trace_block_edge();
};

/// The accumulator of the process currently executing, switched by the
/// estimator at every scheduler dispatch; nullptr when the running process is
/// unmapped or no estimator is installed. Annotated operators are no-ops in
/// the nullptr case — this is what keeps the library "completely transparent
/// for the user" at near-zero cost when estimation is off.
extern thread_local SegmentAccum* tl_accum;

namespace detail {

inline double ready_of(const SegmentAccum& acc, const Stamp& s) {
  return s.epoch == acc.epoch ? s.ready : 0.0;
}
inline std::uint32_t node_of(const SegmentAccum& acc, const Stamp& s) {
  return s.epoch == acc.epoch ? s.node : 0u;
}

/// Charges a binary operation and computes the result's stamp.
inline void charge_binary(Op op, const Stamp& a, const Stamp& b, Stamp& out) {
  SegmentAccum* acc = tl_accum;
  if (acc == nullptr) return;
  if (acc->replaying) {
    // Segment replay cache fast path: the aggregate delta of this op stream
    // is (or will be) memoized, so only the control-path trace is kept.
    // Replay never coexists with ready tracking (see SegmentCache::arm), so
    // no stamp bookkeeping is skipped that anyone would read.
    acc->trace_push(op);
    return;
  }
  const double lat = acc->charge(op);
  if (!acc->track_ready) return;
  out.epoch = acc->epoch;
  out.ready = std::max(ready_of(*acc, a), ready_of(*acc, b)) + lat;
  acc->max_ready = std::max(acc->max_ready, out.ready);
  if (acc->record_dfg) {
    acc->dfg.nodes.push_back({op, node_of(*acc, a), node_of(*acc, b)});
    out.node = static_cast<std::uint32_t>(acc->dfg.nodes.size());
  }
}

/// Charges a unary operation (including assignment, where `a` is the source).
inline void charge_unary(Op op, const Stamp& a, Stamp& out) {
  charge_binary(op, a, Stamp{}, out);
}

/// Charges an operation with no tracked result (branch conditions, indexing):
/// contributes to the running sums and the critical path but produces no
/// stamped value.
inline void charge_effect(Op op, const Stamp& a) {
  Stamp discard;
  charge_binary(op, a, Stamp{}, discard);
}

}  // namespace detail
}  // namespace scperf
