#include "core/pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>

namespace scperf {

ThreadPool::ThreadPool(std::size_t threads) {
  threads = std::max<std::size_t>(1, threads);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // On stop the queue is still drained: destruction with queued tasks
      // runs them rather than dropping them (or deadlocking).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    try {
      task();
    } catch (...) {
      std::unique_lock<std::mutex> lock(mu_);
      if (!pending_error_) pending_error_ = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      throw std::runtime_error("ThreadPool::submit after destruction began");
    }
    queue_.push_back(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (pending_error_) {
    std::exception_ptr e = std::move(pending_error_);
    pending_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  chunk = std::max<std::size_t>(1, chunk);

  // Per-call completion state, shared by the driver tasks. Drivers claim
  // ascending chunks from `next` until the range (or an error) exhausts it;
  // the caller blocks on `done` until every claimed index has finished.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    std::size_t live_drivers = 0;
    std::exception_ptr error;
  };
  auto st = std::make_shared<ForState>();

  const std::size_t drivers =
      std::min(workers_.size(), (n + chunk - 1) / chunk);
  auto drive = [st, n, chunk, &body] {
    for (;;) {
      const std::size_t begin =
          st->next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::unique_lock<std::mutex> lock(st->mu);
        if (!st->error) st->error = std::current_exception();
        // Poison the range so no driver claims further chunks.
        st->next.store(n, std::memory_order_relaxed);
      }
    }
    std::unique_lock<std::mutex> lock(st->mu);
    if (--st->live_drivers == 0) st->done.notify_all();
  };

  {
    std::unique_lock<std::mutex> lock(st->mu);
    st->live_drivers = drivers;
  }
  // The calling thread is one of the drivers: a single-worker pool busy with
  // this very call still makes progress, and small ranges skip the queue
  // entirely.
  for (std::size_t d = 1; d < drivers; ++d) submit(drive);
  drive();

  std::unique_lock<std::mutex> lock(st->mu);
  st->done.wait(lock, [&st] { return st->live_drivers == 0; });
  if (st->error) std::rethrow_exception(st->error);
}

void ThreadPool::parallel_for(const std::vector<std::size_t>& indices,
                              std::size_t chunk,
                              const std::function<void(std::size_t)>& body) {
  // Positions are claimed exactly like the dense range; the extra
  // indirection is all the sparseness costs.
  parallel_for(indices.size(), chunk,
               [&](std::size_t j) { body(indices[j]); });
}

std::size_t ThreadPool::default_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<std::size_t>(hc);
}

}  // namespace scperf
