#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/annot.hpp"
#include "core/context.hpp"
#include "core/report.hpp"
#include "core/resource.hpp"
#include "core/segment_cache.hpp"
#include "kernel/simulator.hpp"

namespace scperf {

/// The performance-analysis library's engine (the paper's contribution).
///
/// Installs itself as the kernel hook of a minisc::Simulator and, during an
/// otherwise ordinary simulation:
///
///  1. tracks the running process's segment via the node callbacks emitted by
///     channels and timed waits (§2, process segmentation);
///  2. receives the per-C++-object cost charges from the annotated types
///     (§3, segment estimation);
///  3. at the end of each segment, back-annotates the estimated delay,
///     turning the untimed delta-cycle execution into a strict-timed one —
///     serialising segments of processes mapped to the same sequential
///     resource and charging the RTOS overhead at every context switch (§4).
///
/// Usage:
///     minisc::Simulator sim;
///     scperf::Estimator est(sim);
///     auto& cpu = est.add_sw_resource("cpu0", 50.0, orsim_sw_cost_table(),
///                                     {.rtos_cycles_per_switch = 90});
///     est.map("producer", cpu);
///     sim.spawn("producer", [...]{ ... });   // ordinary annotated SystemC-ish code
///     sim.run();
///     est.report().print(std::cout);
class Estimator final : public minisc::KernelHook {
 public:
  /// Installs this estimator as `sim`'s kernel hook. The estimator keeps a
  /// reference to the simulator and detaches in its destructor, so it must
  /// not outlive `sim` — declare the Simulator first, the Estimator second.
  explicit Estimator(minisc::Simulator& sim);
  ~Estimator() override;
  Estimator(const Estimator&) = delete;
  Estimator& operator=(const Estimator&) = delete;

  // ---- platform description (architectural mapping, §2) ----

  SwResource& add_sw_resource(std::string name, double clock_mhz,
                              CostTable table, SwResource::Options opts = {});
  HwResource& add_hw_resource(std::string name, double clock_mhz,
                              CostTable table, HwResource::Options opts = {});
  EnvResource& add_env_resource(std::string name);

  /// Maps the process with this name (at spawn time) onto `r`. Unmapped
  /// processes are treated as environment components: executed untimed,
  /// not analysed. `priority` matters only on SW resources with the
  /// kPriority scheduling policy (higher value = more urgent).
  void map(const std::string& process_name, Resource& r,
           double priority = 0.0);

  const std::vector<std::unique_ptr<Resource>>& resources() const {
    return resources_;
  }

  /// The resource a process name is mapped to (nullptr when unmapped) —
  /// the seam layered tools (fault injection, tracing) use to translate
  /// process-level callbacks into resource-level effects.
  Resource* mapped_resource(const std::string& process_name) const;

  /// A resource by name (nullptr when absent), any kind.
  Resource* find_resource(const std::string& name) const;

  // ---- segment replay cache ----

  /// Overrides the replay-cache configuration (default: environment via
  /// SegmentCacheConfig::from_env()). Must be called before any mapped
  /// process starts — each process's cache is created at its first dispatch.
  void set_segment_cache_config(const SegmentCacheConfig& cfg) {
    cache_cfg_ = cfg;
  }
  const SegmentCacheConfig& segment_cache_config() const { return cache_cfg_; }

  /// Replay-cache counters aggregated over all processes.
  SegmentCacheStats segment_cache_stats() const;
  /// Replay-cache counters aggregated over processes mapped to one resource
  /// (campaign sweeps use this to confirm the cache never engaged on
  /// fault-injected resources).
  SegmentCacheStats segment_cache_stats_for_resource(
      const std::string& resource_name) const;
  /// One process's cache (nullptr for unmapped / never-started processes).
  /// Exposed for tests (validate-mode perturbation).
  SegmentCache* segment_cache_of(const std::string& process_name);

  // ---- results ----

  Report report() const;

  /// Estimated total computation time of one process (Time it spent executing
  /// segments, excluding blocking). Zero for unmapped processes.
  minisc::Time process_time(const std::string& process_name) const;
  double process_cycles(const std::string& process_name) const;

  /// Estimated energy of one process in picojoules: the dot product of its
  /// cumulative operation histogram with its resource's energy table, plus
  /// any fault cycles priced at the resource's fault-energy rate.
  /// Zero when the resource has no energy characterisation.
  double process_energy_pj(const std::string& process_name) const;

  /// The fault-injection share of process_energy_pj: pulse glitch cycles
  /// charged into this process, priced at its resource's per-cycle fault
  /// energy rate (set_fault_energy_per_cycle_pj). Campaigns report this as
  /// the energy overhead of recovery.
  double process_fault_energy_pj(const std::string& process_name) const;

  /// Total fault energy across the platform: per-process pulse charges plus
  /// resource-level outage lockup cycles.
  double fault_energy_pj() const;

  /// Total estimated energy across processes and resource-level fault
  /// charges — the campaign CSV's energy column.
  double total_energy_pj() const;

  /// Per-segment stats of one process, ordered by first execution.
  std::vector<SegmentStats> segment_stats(
      const std::string& process_name) const;

  /// Last DFG recorded for the given segment of a process mapped to a HW
  /// resource with record_dfg enabled; empty if none.
  const Dfg& segment_dfg(const std::string& process_name,
                         const std::string& segment_id) const;

  // ---- instantaneous segment values (§4: "All instantaneous segment
  // values of execution time parameters can be provided if required") ----

  struct SegmentExecution {
    std::string segment;    ///< "from->to" id
    double cycles = 0.0;    ///< this execution's estimated cycles
    minisc::Time at;        ///< simulated time when the segment ended
  };

  /// Enables per-execution recording for the named process (call before the
  /// process first runs). Off by default: the aggregate statistics are free,
  /// the full list is opt-in.
  void record_instantaneous(const std::string& process_name);
  const std::vector<SegmentExecution>& instantaneous(
      const std::string& process_name) const;

  // ---- KernelHook ----

  void process_started(minisc::Process& p) override;
  void process_finished(minisc::Process& p) override;
  void process_resumed(minisc::Process& p) override;
  void node_reached(minisc::Process& p, minisc::NodeKind kind,
                    const char* label) override;
  void node_done(minisc::Process& p, minisc::NodeKind kind,
                 const char* label) override;

 private:
  struct ProcessCtx {
    std::string name;
    Resource* resource = nullptr;
    double priority = 0.0;
    SegmentAccum accum;
    std::unique_ptr<SegmentCache> cache;
    std::string seg_from = "entry";
    double total_cycles = 0.0;
    minisc::Time total_time;
    std::uint64_t segments_executed = 0;
    std::uint64_t ops_executed = 0;
    std::map<std::string, SegmentStats> segments;
    std::vector<std::string> segment_order;
    std::map<std::string, Dfg> segment_dfgs;
    bool record_instantaneous = false;
    std::vector<SegmentExecution> executions;
  };

  static std::string node_label(minisc::NodeKind kind, const char* label);
  ProcessCtx* ctx_of(minisc::Process& p) const {
    return static_cast<ProcessCtx*>(p.user_data);
  }

  /// Ends the current segment at node `to`: records stats and back-annotates
  /// the estimated delay according to the resource type (§4).
  void close_segment(ProcessCtx& ctx, const std::string& to);
  void back_annotate_sw(ProcessCtx& ctx, SwResource& cpu, minisc::Time delay);
  void back_annotate_sw_preemptive(ProcessCtx& ctx, SwResource& cpu,
                                   minisc::Time delay);

  minisc::Simulator& sim_;
  SegmentCacheConfig cache_cfg_ = SegmentCacheConfig::from_env();
  std::vector<std::unique_ptr<Resource>> resources_;
  std::map<std::string, std::pair<Resource*, double>> mapping_;
  std::set<std::string> instantaneous_requested_;
  std::vector<std::unique_ptr<ProcessCtx>> contexts_;
};

}  // namespace scperf
