#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include <list>

#include "core/cost_table.hpp"
#include "kernel/simulator.hpp"
#include "kernel/time.hpp"

namespace scperf {

/// Kinds of platform resources distinguished by the methodology (§2):
/// parallel (HW), sequential (SW), and components of the environment
/// (virtual components / testbench — not analysed).
enum class ResourceKind {
  kSw,
  kHw,
  kEnv,
};

const char* to_string(ResourceKind k);

/// A platform resource processes are mapped onto during architectural
/// mapping. Owns the per-C++-object cost table and the clock that converts
/// estimated cycles into simulated time; accumulates occupation statistics.
class Resource {
 public:
  Resource(std::string name, ResourceKind kind, double clock_mhz,
           CostTable table);
  virtual ~Resource() = default;
  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  const std::string& name() const { return name_; }
  ResourceKind kind() const { return kind_; }
  double clock_mhz() const { return clock_mhz_; }
  double period_ns() const { return 1000.0 / clock_mhz_; }
  const CostTable& cost_table() const { return table_; }

  minisc::Time cycles_to_time(double cycles) const {
    return minisc::Time::from_ns(cycles * period_ns());
  }

  /// Optional per-operation energy characterisation; when set, reports
  /// include per-process and per-resource energy figures.
  void set_energy_table(const EnergyTable& t) { energy_ = t; }
  const std::optional<EnergyTable>& energy_table() const { return energy_; }

  /// Total time this resource spent executing segments.
  minisc::Time busy_time() const { return busy_time_; }
  /// Fraction of `total` the resource was busy (including RTOS time).
  double utilization(minisc::Time total) const;

  void add_busy(minisc::Time t) { busy_time_ += t; }

  // ---- downtime windows (fault injection on parallel / ENV resources) ----

  /// Registers [start, end) as resource downtime: no segment progress while
  /// a window is open. Windows may be added in any order; overlapping
  /// windows merge. SW resources use the busy_until claim mechanism instead
  /// — the estimator consults downtime only for HW back-annotation, and the
  /// fault injector for ENV node stalls.
  void add_downtime(minisc::Time start, minisc::Time end);
  const std::vector<std::pair<minisc::Time, minisc::Time>>& downtime() const {
    return downtime_;
  }
  /// End of the downtime window containing `t`, or `t` when the resource is
  /// up at `t`.
  minisc::Time downtime_stall_end(minisc::Time t) const;
  /// Completion instant of `work` uptime starting at `start`: progress
  /// pauses inside every downtime window, so the critical-path interval of
  /// a HW segment stretches by exactly the downtime it overlaps.
  minisc::Time finish_over_downtime(minisc::Time start,
                                    minisc::Time work) const;
  /// Total downtime overlapping segment executions (observability).
  minisc::Time stalled_time() const { return stalled_time_; }
  void add_stalled(minisc::Time t) { stalled_time_ += t; }

  // ---- fault energy (recovery overhead accounting) ----

  /// Energy drawn per cycle of fault activity (pulse glitch cycles, outage
  /// lockup cycles), in picojoules. Zero (the default) keeps fault cycles
  /// out of the energy books entirely.
  void set_fault_energy_per_cycle_pj(double pj) { fault_pj_per_cycle_ = pj; }
  double fault_energy_per_cycle_pj() const { return fault_pj_per_cycle_; }

  /// Fault cycles charged at resource level (outage lockups; pulse cycles
  /// are charged per process through the segment accumulators).
  void add_fault_cycles(double c) { fault_cycles_ += c; }
  double fault_cycles() const { return fault_cycles_; }
  double fault_energy_pj() const {
    return fault_cycles_ * fault_pj_per_cycle_;
  }

  // ---- segment replay cache soundness ----

  /// Marks this resource as unsafe for segment-replay memoization: per-op
  /// charges on it are execution-time-dependent (pulse glitches write
  /// fault_cycles mid-segment, downtime stretches HW critical paths, crash
  /// kills leave partial segments whose trace is never resolved). The fault
  /// injector sets this for every pulse / outage / downtime / crash target;
  /// add_downtime() sets it directly. Sticky for the resource's lifetime —
  /// the cache must never engage on a resource that *may* be faulted.
  void set_memo_unsafe() { memo_unsafe_ = true; }
  bool memo_unsafe() const { return memo_unsafe_; }

 private:
  std::string name_;
  ResourceKind kind_;
  double clock_mhz_;
  CostTable table_;
  std::optional<EnergyTable> energy_;
  minisc::Time busy_time_;
  minisc::Time stalled_time_;
  std::vector<std::pair<minisc::Time, minisc::Time>> downtime_;  ///< sorted
  double fault_pj_per_cycle_ = 0.0;
  double fault_cycles_ = 0.0;
  bool memo_unsafe_ = false;
};

/// How a sequential resource picks the next segment when several processes
/// compete for the processor (the paper's §1: "Deciding the most appropriate
/// scheduling policy for each processor is critical to ensure the correct
/// real-time behavior of the whole system").
enum class SchedulingPolicy {
  /// First-come first-served in segment arrival order (the paper's §4
  /// behaviour: "another process can take up the resource while it is
  /// waiting").
  kFifo,
  /// Static priorities: among the segments waiting when the processor frees,
  /// the highest-priority process runs first (non-preemptive at segment
  /// granularity, like everything in this methodology).
  kPriority,
};

const char* to_string(SchedulingPolicy p);

/// Sequential resource (a processor): segments of all mapped processes
/// serialise on it, and every channel access / wait executed by a mapped
/// process additionally pays the RTOS context-switch overhead (§4).
class SwResource final : public Resource {
 public:
  struct Options {
    /// Cycles the RTOS consumes at each node (channel access or timed wait)
    /// of a process mapped to this resource.
    double rtos_cycles_per_switch = 0.0;
    SchedulingPolicy policy = SchedulingPolicy::kFifo;
    /// With kPriority: a newly released higher-priority segment preempts the
    /// one occupying the processor (beyond the paper, which is
    /// non-preemptive at segment granularity; this models a preemptive RTOS
    /// as the §1 scheduling discussion anticipates). Ignored under kFifo.
    bool preemptive = false;
  };

  SwResource(std::string name, double clock_mhz, CostTable table)
      : SwResource(std::move(name), clock_mhz, table, Options{}) {}
  SwResource(std::string name, double clock_mhz, CostTable table,
             Options opts);

  double rtos_cycles_per_switch() const { return opts_.rtos_cycles_per_switch; }
  void set_rtos_cycles_per_switch(double c) {
    opts_.rtos_cycles_per_switch = c;
  }
  SchedulingPolicy policy() const { return opts_.policy; }

  // ---- arbitration waiting set (managed by the estimator) ----

  /// A process contending for the processor: higher `priority` wins under
  /// kPriority; `seq` breaks ties and implements kFifo order.
  struct Contender {
    double priority = 0.0;
    std::uint64_t seq = 0;
  };

  /// Registers a contender; returns its ticket.
  std::uint64_t enter_contention(double priority);
  void leave_contention(std::uint64_t ticket);
  /// True if the given ticket should claim the processor next under the
  /// configured policy.
  bool is_next(std::uint64_t ticket) const;

  // ---- preemptive-mode scheduler (Options::preemptive) ----

  bool preemptive() const {
    return opts_.preemptive && opts_.policy == SchedulingPolicy::kPriority;
  }

  /// One segment execution contending for the preemptive processor. `wake`
  /// is notified both when the job is dispatched and when it is preempted;
  /// the job distinguishes the two via `running`.
  struct PreemptJob {
    double priority = 0.0;
    std::uint64_t seq = 0;
    bool running = false;
    std::uint64_t preemptions = 0;  ///< times this job was preempted
    minisc::Event wake{"cpu.preempt"};
  };

  /// Adds a job and reschedules (possibly preempting the running one).
  PreemptJob& preempt_enter(double priority);
  /// Removes a completed job and dispatches the next one.
  void preempt_leave(PreemptJob& job);
  /// Total scheduler dispatches (context switches) in preemptive mode.
  std::uint64_t preempt_switches() const { return preempt_switches_; }

  /// Time until which the processor is already committed.
  minisc::Time busy_until() const { return busy_until_; }
  void set_busy_until(minisc::Time t) { busy_until_ = t; }

  /// Accumulated RTOS execution time (reported separately, §6: "The RTOS
  /// overload is evaluated").
  minisc::Time rtos_time() const { return rtos_time_; }
  void add_rtos(minisc::Time t) { rtos_time_ += t; }

  /// Number of segment occupations scheduled onto this processor.
  std::uint64_t dispatch_count() const { return dispatch_count_; }
  void count_dispatch() { ++dispatch_count_; }

 private:
  Options opts_;
  minisc::Time busy_until_;
  minisc::Time rtos_time_;
  std::uint64_t dispatch_count_ = 0;
  std::uint64_t next_ticket_ = 0;
  std::map<std::uint64_t, Contender> contenders_;  ///< keyed by ticket

  void preempt_reschedule();
  std::list<PreemptJob> preempt_jobs_;  ///< std::list: stable addresses
  PreemptJob* preempt_current_ = nullptr;
  std::uint64_t preempt_switches_ = 0;
};

/// Parallel resource (HW): mapped processes run concurrently; each segment's
/// time is the weighted mean T = Tmin + (Tmax - Tmin) * k between the
/// critical-path best case and the single-ALU worst case (§3, Fig. 4).
class HwResource final : public Resource {
 public:
  struct Options {
    /// Weight between best case (k = 0, performance-priority synthesis) and
    /// worst case (k = 1, cost-priority synthesis).
    double k = 0.0;
    /// Record each segment's dataflow graph for the synthesis substrate.
    bool record_dfg = false;
  };

  HwResource(std::string name, double clock_mhz, CostTable table)
      : HwResource(std::move(name), clock_mhz, table, Options{}) {}
  HwResource(std::string name, double clock_mhz, CostTable table,
             Options opts);

  double k() const { return opts_.k; }
  void set_k(double k);
  bool record_dfg() const { return opts_.record_dfg; }

 private:
  Options opts_;
};

/// Environment component (testbench, reused virtual component): mapped
/// processes are executed untimed and never analysed (§2).
class EnvResource final : public Resource {
 public:
  explicit EnvResource(std::string name);
};

}  // namespace scperf
