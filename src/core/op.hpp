#pragma once

#include <cstddef>

namespace scperf {

/// The C++ objects the estimation library charges for (§3 of the paper:
/// "All the C++ objects, which contribute to the execution time of the
/// resource ... are redefined in order to calculate their time contribution
/// when they are executed").
enum class Op : unsigned char {
  kAssign,     ///< copy from an lvalue: a genuine data move (load/store)
  kAssignRes,  ///< store of an operator result or literal (register
               ///< write-back; typically folded into the producing op)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kNeg,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kBitAnd,
  kBitOr,
  kBitXor,
  kBitNot,
  kShl,
  kShr,
  kLogicalNot,
  kBranch,  ///< contextual bool conversion: `if` / `while` / `?:` condition
  kIndex,   ///< operator[] address computation + access
  kCall,    ///< function-call entry (the paper's t_fc)
  kReturn,  ///< function return
  kCount_,  ///< sentinel
};

inline constexpr std::size_t kNumOps = static_cast<std::size_t>(Op::kCount_);

const char* to_string(Op op);

}  // namespace scperf
