#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace scperf {

/// Statistics of one process-graph segment, identified by its entry and exit
/// nodes ("Its initial and final statements identify each segment", §2).
/// Keeps enough moments for the confidence-interval extension (ref [17]).
struct SegmentStats {
  std::string from;
  std::string to;
  std::uint64_t count = 0;
  double cycles_sum = 0.0;
  double cycles_sq_sum = 0.0;
  double cycles_min = 0.0;
  double cycles_max = 0.0;
  // HW resources: the two extreme implementation points (§3).
  double bc_cycles_sum = 0.0;  ///< critical path (best case)
  double wc_cycles_sum = 0.0;  ///< single-ALU sequential (worst case)

  double mean() const { return count ? cycles_sum / count : 0.0; }
  double variance() const;
  /// Half-width of the 95% confidence interval of the mean.
  double ci95_halfwidth() const;

  std::string id() const { return from + "->" + to; }
};

/// Aggregated estimation results ("Total execution times for processes and
/// resources are generated automatically", §4).
struct Report {
  struct ProcessRow {
    std::string process;
    std::string resource;
    double total_cycles = 0.0;
    minisc::Time total_time;          ///< estimated computation time
    std::uint64_t segments_executed = 0;
    std::uint64_t ops_executed = 0;
    /// Estimated energy in picojoules (0 when the resource carries no
    /// energy table).
    double energy_pj = 0.0;
  };

  struct ResourceRow {
    std::string resource;
    std::string kind;
    minisc::Time busy;
    minisc::Time rtos;
    double utilization = 0.0;  ///< (busy + rtos) / sim_time
  };

  struct SegmentRow {
    std::string process;
    SegmentStats stats;
  };

  /// Per-resource segment-replay-cache counters (observability; kept out of
  /// print()/write_csv() so cache-on and cache-off reports stay
  /// byte-identical — use print_cache()/write_cache_csv()).
  struct CacheRow {
    std::string resource;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypassed = 0;
    std::uint64_t replayed_ops = 0;
    double cycles_saved = 0.0;
    std::uint64_t entries = 0;
  };

  minisc::Time sim_time;
  std::vector<ProcessRow> processes;
  std::vector<ResourceRow> resources;
  std::vector<SegmentRow> segments;
  std::vector<CacheRow> cache;

  /// Human-readable summary tables.
  void print(std::ostream& os) const;
  /// Machine-readable per-segment dump for post-processing.
  void write_csv(std::ostream& os) const;
  /// Per-process totals (cycles, time, ops, energy) as CSV.
  void write_process_csv(std::ostream& os) const;
  /// Per-resource occupation (busy, rtos, utilisation) as CSV.
  void write_resource_csv(std::ostream& os) const;
  /// Replay-cache table / CSV (per resource); no-ops when the cache never
  /// saw a segment (e.g. SCPERF_SEGMENT_CACHE=0 builds print nothing, so
  /// diffing full reports across modes stays possible via print()).
  void print_cache(std::ostream& os) const;
  void write_cache_csv(std::ostream& os) const;
};

}  // namespace scperf
