#include "core/capture.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <ostream>

#include "kernel/simulator.hpp"

namespace scperf {

CaptureRegistry& CaptureRegistry::global() {
  static CaptureRegistry g;
  return g;
}

void CaptureRegistry::attach(CapturePoint& p) {
  const std::lock_guard<std::mutex> lock(mu_);
  points_.push_back(&p);
}

void CaptureRegistry::detach(CapturePoint& p) {
  const std::lock_guard<std::mutex> lock(mu_);
  points_.erase(std::remove(points_.begin(), points_.end(), &p),
                points_.end());
}

const CapturePoint* CaptureRegistry::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const CapturePoint* p : points_) {
    if (p->name() == name) return p;
  }
  return nullptr;
}

void CaptureRegistry::write_csv(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "time_ns,point,value\n";
  for (const CapturePoint* p : points_) {
    for (const CaptureEvent& e : p->events()) {
      os << e.time.to_ns_d() << ',' << p->name() << ',' << e.value << "\n";
    }
  }
}

void CaptureRegistry::write_matlab(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock(mu_);
  os << "% scperf capture-point event lists\n";
  for (const CapturePoint* p : points_) {
    // Sanitise the point name into a Matlab identifier.
    std::string var = p->name();
    for (char& c : var) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) != 0)) c = '_';
    }
    os << var << " = [\n";
    for (const CaptureEvent& e : p->events()) {
      os << "  " << e.time.to_ns_d() * 1e-9 << ' ' << e.value << ";\n";
    }
    os << "];\n";
  }
}

std::uint64_t CaptureRegistry::value_sequence_hash() const {
  const std::lock_guard<std::mutex> lock(mu_);
  // FNV-1a per point (order-sensitive within a point), XOR-combined across
  // points (order-insensitive between points, since the strict-timed run may
  // legally interleave independent processes differently).
  std::uint64_t combined = 0;
  for (const CapturePoint* p : points_) {
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ull;
      }
    };
    for (char c : p->name()) mix(static_cast<std::uint64_t>(c));
    for (const CaptureEvent& e : p->events()) {
      mix(std::bit_cast<std::uint64_t>(e.value));
    }
    combined ^= h;
  }
  return combined;
}

void CaptureRegistry::clear_events() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (CapturePoint* p : points_) p->clear();
}

CapturePoint::CapturePoint(std::string name, CaptureRegistry& registry)
    : name_(std::move(name)), registry_(&registry) {
  registry_->attach(*this);
}

CapturePoint::~CapturePoint() { registry_->detach(*this); }

void CapturePoint::record(double value) {
  const minisc::Simulator* sim = minisc::Simulator::current_or_null();
  const minisc::Time t = sim != nullptr ? sim->now() : minisc::Time::zero();
  events_.push_back({t, value});
}

void CapturePoint::record_if(bool condition, double value) {
  if (condition) record(value);
}

}  // namespace scperf
