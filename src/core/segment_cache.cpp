#include "core/segment_cache.hpp"

#include <cstdlib>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/context.hpp"
#include "core/resource.hpp"

namespace scperf {

SegmentCacheConfig SegmentCacheConfig::from_env() {
  SegmentCacheConfig cfg;
  if (const char* v = std::getenv("SCPERF_SEGMENT_CACHE")) {
    cfg.enabled = !(v[0] == '0' && v[1] == '\0');
  }
  if (const char* v = std::getenv("SCPERF_CACHE_VALIDATE")) {
    cfg.validate = !(v[0] == '0' && v[1] == '\0');
  }
  return cfg;
}

SegmentCacheStats& SegmentCacheStats::operator+=(const SegmentCacheStats& o) {
  hits += o.hits;
  misses += o.misses;
  bypassed += o.bypassed;
  validated += o.validated;
  replayed_ops += o.replayed_ops;
  cycles_saved += o.cycles_saved;
  entries += o.entries;
  return *this;
}

// The trace buffer grows in place (doubling, 4096-aligned so trace_push's
// low-bits test lands exactly on block edges); the watchdog probe fires at
// every edge, preserving the one-probe-per-4096-charges cadence of charge().
void SegmentAccum::trace_block_edge() {
  detail::annotation_watchdog_probe();
  if (trace_pos != trace_end) return;  // mid-buffer block edge: probe only
  const std::size_t used = static_cast<std::size_t>(trace_pos - trace_begin);
  if (used >= trace_limit) {
    // Segment outgrew the trace: fold what was traced back into the
    // conventional accounting (same op order, so the same double sum) and
    // finish the segment uncached.
    trace_overflow = true;
    const bool fold = replaying;  // validate mode charged all along
    replaying = false;
    tracing = false;
    if (fold) {
      for (const unsigned char* p = trace_begin; p != trace_pos; ++p) {
        const Op op = static_cast<Op>(*p);
        sum_cycles += (*table)[op];
        ++op_count;
        ++op_histogram[*p];
      }
    }
    return;
  }
  const std::size_t cap = used == 0 ? 4096 : used * 2;
  auto* grown = static_cast<unsigned char*>(std::aligned_alloc(4096, cap));
  if (grown == nullptr) throw std::bad_alloc();
  std::memcpy(grown, trace_begin, used);
  std::free(trace_begin);
  trace_begin = grown;
  trace_pos = grown + used;
  trace_end = grown + cap;
}

std::uint64_t SegmentCache::signature(const unsigned char* p, std::size_t n) {
  // Four independent FNV-style lanes over 8-byte words: the multiply chains
  // stay short enough that hashing a multi-thousand-op trace costs a small
  // fraction of the replay it authorises.
  constexpr std::uint64_t kP = 1099511628211ull;
  std::uint64_t h0 = 0x9e3779b97f4a7c15ull, h1 = 0xbf58476d1ce4e5b9ull;
  std::uint64_t h2 = 0x94d049bb133111ebull, h3 = 0x2545f4914f6cdd1dull;
  const std::size_t words = n / 8;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    std::uint64_t w0, w1, w2, w3;
    std::memcpy(&w0, p + 8 * i, 8);
    std::memcpy(&w1, p + 8 * (i + 1), 8);
    std::memcpy(&w2, p + 8 * (i + 2), 8);
    std::memcpy(&w3, p + 8 * (i + 3), 8);
    h0 = (h0 ^ w0) * kP;
    h1 = (h1 ^ w1) * kP;
    h2 = (h2 ^ w2) * kP;
    h3 = (h3 ^ w3) * kP;
  }
  std::uint64_t tail = 0;
  for (; i < words; ++i) {
    std::uint64_t w;
    std::memcpy(&w, p + 8 * i, 8);
    tail = (tail ^ w) * kP;
  }
  std::uint64_t last = 0;
  if (n % 8 != 0) std::memcpy(&last, p + 8 * words, n % 8);
  tail = (tail ^ last ^ (static_cast<std::uint64_t>(n) * kP)) * kP;
  std::uint64_t out = tail;
  for (std::uint64_t v : {h0, h1, h2, h3}) {
    out = (out ^ v) * kP;
    out ^= out >> 29;
  }
  return out ^ (out >> 32);
}

void SegmentCache::arm(SegmentAccum& a, const std::string& from,
                       const Resource& r) {
  a.replaying = false;
  a.tracing = false;
  a.trace_overflow = false;
  a.trace_pos = a.trace_begin;
  a.trace_limit = cfg_.trace_limit;
  if (!cfg_.enabled) return;
  // Ready tracking and DFG recording are per-op recurrences over operand
  // state; an aggregate delta cannot replay them (same class of reason the
  // paper computes the HW critical path online).
  if (a.track_ready || a.record_dfg) return;
  // Pulse / downtime / crash injection makes per-op cost execution-time-
  // dependent on this resource: never memoize there.
  if (r.memo_unsafe()) return;
  const auto it = nodes_.find(from);
  if (it == nodes_.end() || !it->second.seen || it->second.uncacheable) return;
  if (cfg_.validate) {
    a.tracing = true;
  } else {
    a.replaying = true;
  }
}

SegmentCache::Delta SegmentCache::derive(const SegmentAccum& a) const {
  Delta d;
  for (const unsigned char* p = a.trace_begin; p != a.trace_pos; ++p) {
    d.sum_cycles += (*a.table)[static_cast<Op>(*p)];
    ++d.op_count;
    ++d.op_histogram[*p];
  }
  // SW-style accumulators only (arm() excludes track_ready): the critical
  // path is never live during a trace, so the replayed max_ready is zero —
  // exactly what conventional charging would have left.
  return d;
}

void SegmentCache::record(NodeState& ns,
                          std::unordered_map<std::uint64_t, Delta>& by_sig,
                          std::uint64_t sig, const Delta& d) {
  if (ns.uncacheable) return;
  if (ns.entries >= cfg_.max_entries_per_node) {
    // A node whose control path never repeats would grow the cache without
    // bound; stop both recording and arming for it.
    ns.uncacheable = true;
    return;
  }
  by_sig.emplace(sig, d);
  ++ns.entries;
}

void SegmentCache::resolve(SegmentAccum& a, const std::string& from,
                           const std::string& to) {
  NodeState& ns = nodes_[from];
  if (a.trace_overflow) {
    ns.uncacheable = true;
    ns.seen = true;
    ++stats_.bypassed;
    return;
  }
  if (!a.replaying && !a.tracing) {
    // Conventionally charged: cold node, memo-unsafe resource, or disabled.
    ns.seen = true;
    ++stats_.bypassed;
    return;
  }
  const std::size_t n = static_cast<std::size_t>(a.trace_pos - a.trace_begin);
  const std::uint64_t sig = signature(a.trace_begin, n);
  auto& by_sig = entries_[from + "->" + to];
  const auto it = by_sig.find(sig);
  if (a.replaying) {
    if (it != by_sig.end()) {
      const Delta& e = it->second;
      a.sum_cycles += e.sum_cycles;
      a.max_ready = std::max(a.max_ready, e.max_ready);
      a.op_count += e.op_count;
      for (std::size_t i = 0; i < kNumOps; ++i) {
        a.op_histogram[i] += e.op_histogram[i];
      }
      ++stats_.hits;
      stats_.replayed_ops += e.op_count;
      stats_.cycles_saved += e.sum_cycles;
    } else {
      const Delta d = derive(a);
      a.sum_cycles += d.sum_cycles;
      a.op_count += d.op_count;
      for (std::size_t i = 0; i < kNumOps; ++i) {
        a.op_histogram[i] += d.op_histogram[i];
      }
      ++stats_.misses;
      record(ns, by_sig, sig, d);
    }
    return;
  }
  // Validate mode: the accumulator was charged conventionally; the trace
  // gives the delta replay WOULD have applied. Cross-check both against each
  // other and against any recorded entry before trusting the cache design.
  const Delta d = derive(a);
  const auto mismatch = [&](const char* what, double got, double want) {
    std::ostringstream os;
    os << "scperf: segment cache validation failed for segment \"" << from
       << "->" << to << "\" (" << what << ": replay " << got
       << " != charged " << want << ")";
    throw std::logic_error(os.str());
  };
  if (it != by_sig.end()) {
    const Delta& e = it->second;
    if (e.sum_cycles != d.sum_cycles) {
      mismatch("sum_cycles", e.sum_cycles, d.sum_cycles);
    }
    if (e.op_count != d.op_count) {
      mismatch("op_count", static_cast<double>(e.op_count),
               static_cast<double>(d.op_count));
    }
    if (e.op_histogram != d.op_histogram) {
      mismatch("op_histogram", 0.0, 0.0);
    }
    ++stats_.validated;
  } else {
    ++stats_.misses;
    record(ns, by_sig, sig, d);
  }
}

SegmentCacheStats SegmentCache::stats() const {
  SegmentCacheStats s = stats_;
  s.entries = 0;
  for (const auto& [id, by_sig] : entries_) s.entries += by_sig.size();
  return s;
}

void SegmentCache::debug_perturb_entries(double extra_cycles) {
  for (auto& [id, by_sig] : entries_) {
    for (auto& [sig, d] : by_sig) d.sum_cycles += extra_cycles;
  }
}

}  // namespace scperf
