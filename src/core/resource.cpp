#include "core/resource.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace scperf {

const char* to_string(ResourceKind k) {
  switch (k) {
    case ResourceKind::kSw:
      return "SW";
    case ResourceKind::kHw:
      return "HW";
    case ResourceKind::kEnv:
      return "ENV";
  }
  return "?";
}

Resource::Resource(std::string name, ResourceKind kind, double clock_mhz,
                   CostTable table)
    : name_(std::move(name)), kind_(kind), clock_mhz_(clock_mhz),
      table_(table) {
  if (kind_ != ResourceKind::kEnv && !(clock_mhz_ > 0.0)) {
    throw std::invalid_argument("scperf: resource clock must be positive");
  }
}

double Resource::utilization(minisc::Time total) const {
  if (total.is_zero()) return 0.0;
  return static_cast<double>(busy_time_.to_ps()) /
         static_cast<double>(total.to_ps());
}

void Resource::add_downtime(minisc::Time start, minisc::Time end) {
  if (end <= start) return;
  memo_unsafe_ = true;  // downtime stretch is execution-time-dependent
  downtime_.emplace_back(start, end);
  std::sort(downtime_.begin(), downtime_.end());
  // Merge overlapping / adjacent windows so the walk in
  // finish_over_downtime never revisits an instant.
  std::vector<std::pair<minisc::Time, minisc::Time>> merged;
  for (const auto& w : downtime_) {
    if (!merged.empty() && w.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, w.second);
    } else {
      merged.push_back(w);
    }
  }
  downtime_ = std::move(merged);
}

minisc::Time Resource::downtime_stall_end(minisc::Time t) const {
  for (const auto& [s, e] : downtime_) {
    if (s > t) break;
    if (t < e) return e;
  }
  return t;
}

minisc::Time Resource::finish_over_downtime(minisc::Time start,
                                            minisc::Time work) const {
  minisc::Time t = start;
  minisc::Time remaining = work;
  for (const auto& [s, e] : downtime_) {
    if (e <= t) continue;
    if (s <= t) {
      t = e;  // currently down: no progress until the window closes
      continue;
    }
    const minisc::Time uptime = s - t;
    if (uptime >= remaining) return t + remaining;
    remaining -= uptime;
    t = e;
  }
  return t + remaining;
}

const char* to_string(SchedulingPolicy p) {
  switch (p) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kPriority:
      return "priority";
  }
  return "?";
}

SwResource::SwResource(std::string name, double clock_mhz, CostTable table,
                       Options opts)
    : Resource(std::move(name), ResourceKind::kSw, clock_mhz, table),
      opts_(opts) {}

std::uint64_t SwResource::enter_contention(double priority) {
  const std::uint64_t ticket = ++next_ticket_;
  contenders_[ticket] = Contender{priority, ticket};
  return ticket;
}

void SwResource::leave_contention(std::uint64_t ticket) {
  contenders_.erase(ticket);
}

bool SwResource::is_next(std::uint64_t ticket) const {
  const auto self = contenders_.find(ticket);
  assert(self != contenders_.end());
  for (const auto& [t, c] : contenders_) {
    if (t == ticket) continue;
    if (opts_.policy == SchedulingPolicy::kPriority) {
      if (c.priority > self->second.priority) return false;
      if (c.priority == self->second.priority && c.seq < self->second.seq) {
        return false;
      }
    } else {
      if (c.seq < self->second.seq) return false;  // earlier arrival wins
    }
  }
  return true;
}

SwResource::PreemptJob& SwResource::preempt_enter(double priority) {
  preempt_jobs_.emplace_back();
  PreemptJob& j = preempt_jobs_.back();
  j.priority = priority;
  j.seq = ++next_ticket_;
  preempt_reschedule();
  return j;
}

void SwResource::preempt_leave(PreemptJob& job) {
  if (preempt_current_ == &job) preempt_current_ = nullptr;
  for (auto it = preempt_jobs_.begin(); it != preempt_jobs_.end(); ++it) {
    if (&*it == &job) {
      preempt_jobs_.erase(it);
      break;
    }
  }
  preempt_reschedule();
}

void SwResource::preempt_reschedule() {
  PreemptJob* best = nullptr;
  for (PreemptJob& j : preempt_jobs_) {
    if (best == nullptr) {
      best = &j;
      continue;
    }
    // Highest priority wins; among equals prefer the running job (avoid
    // thrash), then earliest arrival.
    if (j.priority > best->priority ||
        (j.priority == best->priority && j.running && !best->running) ||
        (j.priority == best->priority && j.running == best->running &&
         j.seq < best->seq)) {
      best = &j;
    }
  }
  if (best == preempt_current_) return;
  if (preempt_current_ != nullptr) {
    PreemptJob* out = preempt_current_;
    out->running = false;
    ++out->preemptions;
    out->wake.notify();  // interrupts its timed occupation
  }
  preempt_current_ = best;
  if (best != nullptr) {
    best->running = true;
    ++preempt_switches_;
    best->wake.notify();  // dispatches it
  }
}

HwResource::HwResource(std::string name, double clock_mhz, CostTable table,
                       Options opts)
    : Resource(std::move(name), ResourceKind::kHw, clock_mhz, table),
      opts_(opts) {
  set_k(opts.k);
}

void HwResource::set_k(double k) {
  if (k < 0.0 || k > 1.0) {
    throw std::invalid_argument("scperf: k must lie in [0, 1]");
  }
  opts_.k = k;
}

EnvResource::EnvResource(std::string name)
    : Resource(std::move(name), ResourceKind::kEnv, 1.0, CostTable{}) {}

}  // namespace scperf
