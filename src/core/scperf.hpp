#pragma once

/// Umbrella header of the scperf system-level performance-analysis library.
///
/// Reproduces Posadas et al., "System-Level Performance Analysis in SystemC",
/// DATE 2004. Include this (and link `scperf_core`) to add dynamic timing
/// estimation to a minisc simulation; see README.md for a quickstart and
/// examples/quickstart.cpp for a complete program.

#include "core/annot.hpp"      // IWYU pragma: export
#include "core/capture.hpp"    // IWYU pragma: export
#include "core/context.hpp"    // IWYU pragma: export
#include "core/cost_table.hpp" // IWYU pragma: export
#include "core/dfg.hpp"        // IWYU pragma: export
#include "core/estimator.hpp"  // IWYU pragma: export
#include "core/op.hpp"         // IWYU pragma: export
#include "core/report.hpp"     // IWYU pragma: export
#include "core/resource.hpp"   // IWYU pragma: export
#include "kernel/channels.hpp" // IWYU pragma: export
#include "kernel/simulator.hpp"// IWYU pragma: export
