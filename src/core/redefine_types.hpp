// Deliberately NOT #pragma once: meant to be included (and later undone with
// restore_types.hpp) around an unmodified source region.
//
// This header implements the paper's zero-modification mechanism: "the
// library automatically replaces ordinary variable types by a new class. So,
// for example, the int type used in C language is replaced by a generic_int
// type with a #define statement" (§3).
//
// Include it AFTER all system/library headers, immediately before the user
// code to be annotated, and include restore_types.hpp right after that code.
// Only the region in between sees the annotated types, so the rest of the
// translation unit is unaffected.

#include "core/annot.hpp"

// NOLINTBEGIN: redefining keywords is exactly the paper's technique; the
// scope is bounded by restore_types.hpp.
#define int ::scperf::gint
#define long ::scperf::glong
#define bool ::scperf::gbool
#define float ::scperf::gfloat
#define double ::scperf::gdouble
// NOLINTEND
