// Ends the annotated region opened by redefine_types.hpp (see there).

#undef int
#undef long
#undef bool
#undef float
#undef double
