#include "core/estimator.hpp"

#include <cassert>
#include <stdexcept>

namespace scperf {

thread_local SegmentAccum* tl_accum = nullptr;

namespace detail {

void annotation_watchdog_probe() {
  if (minisc::Simulator* sim = minisc::Simulator::current_or_null()) {
    sim->probe_wall_clock();
  }
}

}  // namespace detail

Estimator::Estimator(minisc::Simulator& sim) : sim_(sim) {
  if (sim_.hook() != nullptr) {
    throw std::logic_error("scperf: simulator already has a hook installed");
  }
  sim_.set_hook(this);
}

Estimator::~Estimator() {
  sim_.set_hook(nullptr);
  tl_accum = nullptr;
}

SwResource& Estimator::add_sw_resource(std::string name, double clock_mhz,
                                       CostTable table,
                                       SwResource::Options opts) {
  auto r = std::make_unique<SwResource>(std::move(name), clock_mhz, table,
                                        opts);
  SwResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

HwResource& Estimator::add_hw_resource(std::string name, double clock_mhz,
                                       CostTable table,
                                       HwResource::Options opts) {
  auto r = std::make_unique<HwResource>(std::move(name), clock_mhz, table,
                                        opts);
  HwResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

EnvResource& Estimator::add_env_resource(std::string name) {
  auto r = std::make_unique<EnvResource>(std::move(name));
  EnvResource& ref = *r;
  resources_.push_back(std::move(r));
  return ref;
}

void Estimator::map(const std::string& process_name, Resource& r,
                    double priority) {
  mapping_[process_name] = {&r, priority};
}

Resource* Estimator::mapped_resource(const std::string& process_name) const {
  const auto it = mapping_.find(process_name);
  return it == mapping_.end() ? nullptr : it->second.first;
}

Resource* Estimator::find_resource(const std::string& name) const {
  for (const auto& r : resources_) {
    if (r->name() == name) return r.get();
  }
  return nullptr;
}

std::string Estimator::node_label(minisc::NodeKind kind, const char* label) {
  using minisc::NodeKind;
  switch (kind) {
    case NodeKind::kChannelRead:
      return std::string(label) + ":r";
    case NodeKind::kChannelWrite:
      return std::string(label) + ":w";
    case NodeKind::kTimedWait:
      return "wait";
  }
  return "?";
}

void Estimator::process_started(minisc::Process& p) {
  const auto it = mapping_.find(p.name());
  if (it == mapping_.end() ||
      it->second.first->kind() == ResourceKind::kEnv) {
    // Environment component: executed untimed, not analysed (§2).
    p.user_data = nullptr;
    tl_accum = nullptr;
    return;
  }
  // A crash-restarted process (Simulator::kill_and_restart) re-enters here:
  // continue accumulating into its existing context — re-executed work is
  // real work — but drop the partial segment the crash interrupted.
  for (const auto& existing : contexts_) {
    if (existing->name == p.name()) {
      existing->accum.reset();
      existing->seg_from = "entry";
      if (existing->cache) {
        existing->cache->arm(existing->accum, existing->seg_from,
                             *existing->resource);
      }
      p.user_data = existing.get();
      tl_accum = &existing->accum;
      return;
    }
  }
  auto ctx = std::make_unique<ProcessCtx>();
  ctx->name = p.name();
  ctx->resource = it->second.first;
  ctx->priority = it->second.second;
  ctx->accum.table = &ctx->resource->cost_table();
  if (auto* hw = dynamic_cast<HwResource*>(ctx->resource)) {
    ctx->accum.track_ready = true;
    ctx->accum.record_dfg = hw->record_dfg();
  }
  ctx->record_instantaneous = instantaneous_requested_.count(p.name()) != 0;
  ctx->cache = std::make_unique<SegmentCache>(cache_cfg_);
  ctx->cache->arm(ctx->accum, ctx->seg_from, *ctx->resource);
  p.user_data = ctx.get();
  tl_accum = &ctx->accum;
  contexts_.push_back(std::move(ctx));
}

void Estimator::process_resumed(minisc::Process& p) {
  ProcessCtx* ctx = ctx_of(p);
  tl_accum = (ctx != nullptr) ? &ctx->accum : nullptr;
}

void Estimator::process_finished(minisc::Process& p) {
  if (ProcessCtx* ctx = ctx_of(p)) close_segment(*ctx, "exit");
}

void Estimator::node_reached(minisc::Process& p, minisc::NodeKind kind,
                             const char* label) {
  if (ProcessCtx* ctx = ctx_of(p)) close_segment(*ctx, node_label(kind, label));
}

void Estimator::node_done(minisc::Process& p, minisc::NodeKind kind,
                          const char* label) {
  // The new segment starts at the node we just completed; close_segment
  // already advanced seg_from at node_reached time, so nothing further is
  // needed here — the callback exists for layered tools (tracing).
  (void)p;
  (void)kind;
  (void)label;
}

void Estimator::close_segment(ProcessCtx& ctx, const std::string& to) {
  SegmentAccum& a = ctx.accum;
  Resource& r = *ctx.resource;

  // Replay-cache close: a traced segment gets its aggregate applied (hit) or
  // recomputed-and-recorded (miss) before anyone reads the totals below.
  if (ctx.cache) ctx.cache->resolve(a, ctx.seg_from, to);

  const double wc = a.sum_cycles;
  const double bc = a.track_ready ? a.max_ready : wc;
  double cycles = wc;
  if (r.kind() == ResourceKind::kHw) {
    const double k = static_cast<HwResource&>(r).k();
    cycles = bc + (wc - bc) * k;  // T = Tmin + (Tmax - Tmin) * k   (§3)
  }

  // ---- segment statistics ----
  const std::string id = ctx.seg_from + "->" + to;
  auto [it, inserted] = ctx.segments.try_emplace(id);
  SegmentStats& st = it->second;
  if (inserted) {
    st.from = ctx.seg_from;
    st.to = to;
    st.cycles_min = cycles;
    st.cycles_max = cycles;
    ctx.segment_order.push_back(id);
  }
  ++st.count;
  st.cycles_sum += cycles;
  st.cycles_sq_sum += cycles * cycles;
  st.cycles_min = std::min(st.cycles_min, cycles);
  st.cycles_max = std::max(st.cycles_max, cycles);
  st.bc_cycles_sum += bc;
  st.wc_cycles_sum += wc;
  if (a.record_dfg && !a.dfg.empty()) ctx.segment_dfgs[id] = a.dfg;

  ctx.total_cycles += cycles;
  ctx.ops_executed += a.op_count;
  ++ctx.segments_executed;
  if (ctx.record_instantaneous) {
    ctx.executions.push_back({id, cycles, sim_.now()});
  }

  // ---- back-annotation (§4) ----
  const minisc::Time delay = r.cycles_to_time(cycles);
  ctx.total_time += delay;
  if (r.kind() == ResourceKind::kSw) {
    back_annotate_sw(ctx, static_cast<SwResource&>(r), delay);
  } else if (!delay.is_zero()) {
    // Parallel resource: the process simply resumes `delay` after the
    // maximum of its previous segment end and its awakening event — both of
    // which are "now" by construction. Downtime windows (HW outage
    // injection) pause progress, so the occupied interval stretches by
    // exactly the downtime it overlaps — the Tmin/Tmax estimate itself is
    // untouched, only its placement on the timeline.
    r.add_busy(delay);
    const minisc::Time start = sim_.now();
    const minisc::Time finish = r.finish_over_downtime(start, delay);
    r.add_stalled(finish - start - delay);
    sim_.raw_wait(finish - start);
  }

  a.reset();
  ctx.seg_from = to;
  if (ctx.cache) ctx.cache->arm(a, ctx.seg_from, r);
}

void Estimator::back_annotate_sw(ProcessCtx& ctx, SwResource& cpu,
                                 minisc::Time delay) {
  if (cpu.preemptive()) {
    back_annotate_sw_preemptive(ctx, cpu, delay);
    return;
  }
  // "When a new segment is awakened, it reads ... the time when the resource
  //  is expected to be empty. If they are greater than the current simulation
  //  time, the process executes one wait to make all times equal. This
  //  process has to be repeated until the resource is empty because another
  //  process can take up the resource while it is waiting." (§4)
  //
  // The contention set implements the resource's scheduling policy on top of
  // the paper's polling loop: when the processor frees while several
  // segments are waiting, the policy decides which contender claims it.
  const minisc::Time rtos = cpu.cycles_to_time(cpu.rtos_cycles_per_switch());
  if (delay.is_zero() && rtos.is_zero()) {
    return;  // an empty segment executes nothing: no processor occupation
  }
  const std::uint64_t ticket = cpu.enter_contention(ctx.priority);
  // A fault-injected crash (Simulator::kill) unwinds this stack out of any
  // of the waits below; the dead ticket must leave the contention set or the
  // policy would starve every other contender forever.
  struct ContentionGuard {
    SwResource& cpu;
    std::uint64_t ticket;
    bool active = true;
    ~ContentionGuard() {
      if (active) cpu.leave_contention(ticket);
    }
  } guard{cpu, ticket};
  // Let every segment released in this same instant register before anyone
  // claims, so simultaneous arrivals contend under the policy instead of
  // under the delta-cycle execution order (which the strict-timed semantics
  // exists to replace).
  sim_.raw_wait(minisc::Time::zero());
  while (true) {
    const minisc::Time t = sim_.now();
    if (cpu.busy_until() > t) {
      sim_.raw_wait(cpu.busy_until() - t);
      continue;
    }
    if (!cpu.is_next(ticket)) {
      // Free, but the policy selects another contender this instant; it
      // will claim during this delta — re-check afterwards.
      sim_.raw_wait(minisc::Time::zero());
      continue;
    }
    break;
  }
  guard.active = false;
  cpu.leave_contention(ticket);
  const minisc::Time total = delay + rtos;
  cpu.set_busy_until(sim_.now() + total);
  cpu.add_busy(delay);
  cpu.add_rtos(rtos);
  cpu.count_dispatch();
  if (!total.is_zero()) sim_.raw_wait(total);
}

namespace {

/// Energy of the fault cycles charged into this process's accumulator
/// (pulse glitches re-executed as ordinary work): priced per cycle, since a
/// pulse has no operation breakdown.
double fault_energy_of(const SegmentAccum& accum, const Resource& r) {
  return accum.fault_cycles * r.fault_energy_per_cycle_pj();
}

double energy_of(const SegmentAccum& accum, const Resource& r) {
  double total = fault_energy_of(accum, r);
  if (!r.energy_table().has_value()) return total;
  const EnergyTable& pj = *r.energy_table();
  for (std::size_t i = 0; i < kNumOps; ++i) {
    total += static_cast<double>(accum.op_histogram[i]) *
             pj[static_cast<Op>(i)];
  }
  return total;
}

}  // namespace

void Estimator::back_annotate_sw_preemptive(ProcessCtx& ctx, SwResource& cpu,
                                             minisc::Time delay) {
  // Preemptive fixed-priority processor (extension beyond the paper): the
  // segment's occupation is sliced. A higher-priority arrival preempts the
  // running occupation (its remaining time is preserved); every dispatch —
  // initial or after a preemption — pays the RTOS switch cost.
  const minisc::Time rtos = cpu.cycles_to_time(cpu.rtos_cycles_per_switch());
  if (delay.is_zero() && rtos.is_zero()) return;

  minisc::Time remaining = delay + rtos;
  cpu.add_rtos(rtos);
  SwResource::PreemptJob& me = cpu.preempt_enter(ctx.priority);
  // A crash unwinding out of the waits below must release the job slot, or
  // the scheduler would consider the dead job runnable forever and never
  // dispatch anyone else.
  struct PreemptGuard {
    SwResource& cpu;
    SwResource::PreemptJob& me;
    bool active = true;
    ~PreemptGuard() {
      if (active) cpu.preempt_leave(me);
    }
  } pguard{cpu, me};
  std::uint64_t seen_preemptions = 0;
  while (true) {
    if (!me.running) {
      minisc::wait(me.wake);  // dispatched (or spuriously poked): re-check
      continue;
    }
    if (me.preemptions != seen_preemptions) {
      // Resumption after a preemption: another RTOS switch.
      seen_preemptions = me.preemptions;
      const minisc::Time extra = rtos;
      remaining += extra;
      cpu.add_rtos(extra);
    }
    if (remaining.is_zero()) break;
    const minisc::Time start = sim_.now();
    const bool preempted = minisc::wait(me.wake, remaining);
    const minisc::Time ran = sim_.now() - start;
    remaining -= ran;
    if (!preempted && remaining.is_zero()) break;
  }
  // Pure computation time; the RTOS share was accumulated separately above
  // (utilisation reports busy + rtos).
  cpu.add_busy(delay);
  pguard.active = false;
  cpu.preempt_leave(me);
  cpu.count_dispatch();
}

Report Estimator::report() const {
  Report rep;
  rep.sim_time = sim_.now();
  for (const auto& ctx : contexts_) {
    rep.processes.push_back({ctx->name, ctx->resource->name(),
                             ctx->total_cycles, ctx->total_time,
                             ctx->segments_executed, ctx->ops_executed,
                             energy_of(ctx->accum, *ctx->resource)});
    for (const std::string& id : ctx->segment_order) {
      rep.segments.push_back({ctx->name, ctx->segments.at(id)});
    }
  }
  for (const auto& r : resources_) {
    Report::ResourceRow row;
    row.resource = r->name();
    row.kind = to_string(r->kind());
    row.busy = r->busy_time();
    if (const auto* sw = dynamic_cast<const SwResource*>(r.get())) {
      row.rtos = sw->rtos_time();
    }
    row.utilization = rep.sim_time.is_zero()
                          ? 0.0
                          : static_cast<double>((row.busy + row.rtos).to_ps()) /
                                static_cast<double>(rep.sim_time.to_ps());
    rep.resources.push_back(row);
  }
  for (const auto& r : resources_) {
    const SegmentCacheStats s = segment_cache_stats_for_resource(r->name());
    rep.cache.push_back({r->name(), s.hits, s.misses, s.bypassed,
                         s.replayed_ops, s.cycles_saved, s.entries});
  }
  return rep;
}

minisc::Time Estimator::process_time(const std::string& process_name) const {
  for (const auto& ctx : contexts_) {
    if (ctx->name == process_name) return ctx->total_time;
  }
  return minisc::Time::zero();
}

double Estimator::process_cycles(const std::string& process_name) const {
  for (const auto& ctx : contexts_) {
    if (ctx->name == process_name) return ctx->total_cycles;
  }
  return 0.0;
}

double Estimator::process_energy_pj(const std::string& process_name) const {
  for (const auto& ctx : contexts_) {
    if (ctx->name == process_name) return energy_of(ctx->accum, *ctx->resource);
  }
  return 0.0;
}

double Estimator::process_fault_energy_pj(
    const std::string& process_name) const {
  for (const auto& ctx : contexts_) {
    if (ctx->name == process_name) {
      return fault_energy_of(ctx->accum, *ctx->resource);
    }
  }
  return 0.0;
}

double Estimator::fault_energy_pj() const {
  double total = 0.0;
  for (const auto& ctx : contexts_) {
    total += fault_energy_of(ctx->accum, *ctx->resource);
  }
  for (const auto& r : resources_) total += r->fault_energy_pj();
  return total;
}

double Estimator::total_energy_pj() const {
  double total = 0.0;
  for (const auto& ctx : contexts_) {
    total += energy_of(ctx->accum, *ctx->resource);
  }
  for (const auto& r : resources_) total += r->fault_energy_pj();
  return total;
}

std::vector<SegmentStats> Estimator::segment_stats(
    const std::string& process_name) const {
  std::vector<SegmentStats> out;
  for (const auto& ctx : contexts_) {
    if (ctx->name != process_name) continue;
    for (const std::string& id : ctx->segment_order) {
      out.push_back(ctx->segments.at(id));
    }
  }
  return out;
}

void Estimator::record_instantaneous(const std::string& process_name) {
  instantaneous_requested_.insert(process_name);
}

const std::vector<Estimator::SegmentExecution>& Estimator::instantaneous(
    const std::string& process_name) const {
  static const std::vector<SegmentExecution> kEmpty;
  for (const auto& ctx : contexts_) {
    if (ctx->name == process_name) return ctx->executions;
  }
  return kEmpty;
}

SegmentCacheStats Estimator::segment_cache_stats() const {
  SegmentCacheStats total;
  for (const auto& ctx : contexts_) {
    if (ctx->cache) total += ctx->cache->stats();
  }
  return total;
}

SegmentCacheStats Estimator::segment_cache_stats_for_resource(
    const std::string& resource_name) const {
  SegmentCacheStats total;
  for (const auto& ctx : contexts_) {
    if (ctx->cache && ctx->resource->name() == resource_name) {
      total += ctx->cache->stats();
    }
  }
  return total;
}

SegmentCache* Estimator::segment_cache_of(const std::string& process_name) {
  for (const auto& ctx : contexts_) {
    if (ctx->name == process_name) return ctx->cache.get();
  }
  return nullptr;
}

const Dfg& Estimator::segment_dfg(const std::string& process_name,
                                  const std::string& segment_id) const {
  static const Dfg kEmpty;
  for (const auto& ctx : contexts_) {
    if (ctx->name != process_name) continue;
    const auto it = ctx->segment_dfgs.find(segment_id);
    if (it != ctx->segment_dfgs.end()) return it->second;
  }
  return kEmpty;
}

}  // namespace scperf
