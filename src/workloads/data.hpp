#pragma once

#include <cstdint>
#include <vector>

#include "iss/machine.hpp"

namespace workloads {

/// Deterministic pseudo-random source (numerical-recipes LCG) so every form
/// of a benchmark — plain C++, annotated, and ISS assembly — operates on
/// bit-identical data without depending on the C++ standard library's
/// unspecified distributions.
class Lcg {
 public:
  explicit Lcg(std::uint32_t seed) : state_(seed) {}

  std::uint32_t next() {
    state_ = state_ * 1664525u + 1013904223u;
    return state_;
  }

  /// Uniform in [lo, hi] (inclusive).
  std::int32_t in_range(std::int32_t lo, std::int32_t hi) {
    const auto span = static_cast<std::uint32_t>(hi - lo + 1);
    return lo + static_cast<std::int32_t>(next() % span);
  }

 private:
  std::uint32_t state_;
};

std::vector<std::int32_t> random_vector(std::size_t n, std::uint32_t seed,
                                        std::int32_t lo, std::int32_t hi);

/// Copies a vector into ISS memory as consecutive little-endian words.
void store_words(iss::Machine& m, std::uint32_t addr,
                 const std::vector<std::int32_t>& v);
std::vector<std::int32_t> load_words(const iss::Machine& m,
                                     std::uint32_t addr, std::size_t n);

}  // namespace workloads
