#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "iss/assembler.hpp"
#include "iss/machine.hpp"
#include "workloads/data.hpp"
#include "workloads/table1.hpp"

namespace workloads {
namespace {

constexpr int kTaps = 16;
constexpr int kSamples = 256;
constexpr std::uint32_t kSeedX = 11;
constexpr std::uint32_t kSeedH = 12;

std::vector<std::int32_t> fir_x() {
  return random_vector(kSamples + kTaps, kSeedX, -2048, 2047);
}
std::vector<std::int32_t> fir_h() {
  return random_vector(kTaps, kSeedH, -1024, 1023);
}

long fir_reference() {
  const auto x = fir_x();
  const auto h = fir_h();
  long checksum = 0;
  for (int i = 0; i < kSamples; ++i) {
    std::int32_t acc = 0;
    for (int j = 0; j < kTaps; ++j) {
      acc = acc + x[static_cast<std::size_t>(i + j)] *
                      h[static_cast<std::size_t>(j)];
    }
    acc = acc >> 12;  // Q12 scaling
    checksum += acc;
  }
  return checksum;
}

long fir_annotated() {
  const auto xv = fir_x();
  const auto hv = fir_h();
  scperf::garray<int> x(xv.size());
  scperf::garray<int> h(hv.size());
  for (std::size_t i = 0; i < xv.size(); ++i) x.at_raw(i).set_raw(xv[i]);
  for (std::size_t i = 0; i < hv.size(); ++i) h.at_raw(i).set_raw(hv[i]);

  scperf::gint checksum = 0;
  scperf::gint i = 0;
  while (i < kSamples) {
    scperf::gint acc = 0;
    scperf::gint j = 0;
    while (j < kTaps) {
      acc = acc + x[i + j] * h[j];
      j = j + 1;
    }
    acc = acc >> 12;
    checksum = checksum + acc;
    i = i + 1;
  }
  return checksum.value();
}

// fir(r3 = &x, r4 = &h, r5 = &y, r6 = n, r7 = taps) -> r11 = checksum
constexpr const char* kFirAsm = R"(
fir:
  li   r11, 0            # checksum
  li   r13, 0            # i
fir_outer:
  sflt r13, r6
  bnf  fir_done
  li   r14, 0            # acc
  li   r15, 0            # j
  slli r16, r13, 2
  add  r16, r16, r3      # &x[i]
  mov  r17, r4           # &h[0]
fir_inner:
  sflt r15, r7
  bnf  fir_inner_done
  lw   r18, 0(r16)
  lw   r19, 0(r17)
  mul  r20, r18, r19
  add  r14, r14, r20
  addi r16, r16, 4
  addi r17, r17, 4
  addi r15, r15, 1
  j    fir_inner
fir_inner_done:
  srai r14, r14, 12
  slli r20, r13, 2
  add  r20, r20, r5
  sw   r14, 0(r20)
  add  r11, r11, r14
  addi r13, r13, 1
  j    fir_outer
fir_done:
  ret
)";

IssResult fir_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kFirAsm));
  constexpr std::uint32_t kXAddr = 0x1000;
  constexpr std::uint32_t kHAddr = 0x2000;
  constexpr std::uint32_t kYAddr = 0x3000;
  store_words(m, kXAddr, fir_x());
  store_words(m, kHAddr, fir_h());
  m.set_reg(3, kXAddr);
  m.set_reg(4, kHAddr);
  m.set_reg(5, kYAddr);
  m.set_reg(6, kSamples);
  m.set_reg(7, kTaps);
  const long checksum = m.call("fir");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult fir_iss() { return fir_iss_cfg(IssCacheConfig{}); }

}  // namespace

Benchmark make_fir() {
  return {"FIR", fir_reference, fir_annotated, fir_iss, fir_iss_cfg};
}

}  // namespace workloads
