#include "workloads/hw_segments.hpp"

#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "workloads/data.hpp"

namespace workloads {
namespace {

constexpr int kTaps = 16;

long fir_sample_body() {
  const auto xv = random_vector(kTaps, 61, -2048, 2047);
  const auto hv = random_vector(kTaps, 62, -1024, 1023);
  scperf::garray<int> x(xv.size());
  scperf::garray<int> h(hv.size());
  for (std::size_t i = 0; i < xv.size(); ++i) x.at_raw(i).set_raw(xv[i]);
  for (std::size_t i = 0; i < hv.size(); ++i) h.at_raw(i).set_raw(hv[i]);

  // Balanced accumulation: products pair-wise summed so the recorded DFG
  // exposes the parallelism behavioural synthesis can exploit. (A straight
  // serial accumulation would make BC equal WC by construction.)
  scperf::garray<int> prod(kTaps);
  scperf::gint i = 0;
  while (i < kTaps) {
    prod[i] = x[i] * h[i];
    i = i + 1;
  }
  scperf::gint stride = 1;
  while (stride < kTaps) {
    scperf::gint j = 0;
    while (j < kTaps) {
      prod[j] = prod[j] + prod[j + stride];
      j = j + (stride << 1);
    }
    stride = stride << 1;
  }
  scperf::gint y = prod[0] >> 12;
  return y.value();
}

constexpr int kEulerSteps = 8;

long euler_body() {
  // Q12 fixed point: y' = (b - a*y); y += h * y' with h, a, b constants.
  scperf::gint y(scperf::detail::RawTag{}, 4096);  // y0 = 1.0
  scperf::gint a(scperf::detail::RawTag{}, 1024);  // a  = 0.25
  scperf::gint b(scperf::detail::RawTag{}, 2048);  // b  = 0.5
  scperf::gint h(scperf::detail::RawTag{}, 410);   // h  = 0.1
  scperf::gint k = 0;
  while (k < kEulerSteps) {
    scperf::gint ay = (a * y) >> 12;
    scperf::gint deriv = b - ay;
    scperf::gint delta = (h * deriv) >> 12;
    y = y + delta;
    k = k + 1;
  }
  return y.value();
}

}  // namespace

HwSegment fir_hw_segment() { return {"FIR", fir_sample_body}; }
HwSegment euler_hw_segment() { return {"Euler", euler_body}; }

}  // namespace workloads
