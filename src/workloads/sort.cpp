#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "iss/assembler.hpp"
#include "iss/machine.hpp"
#include "workloads/data.hpp"
#include "workloads/table1.hpp"

namespace workloads {
namespace {

constexpr int kQuickN = 512;
constexpr int kBubbleN = 128;

std::vector<std::int32_t> quick_input() {
  return random_vector(kQuickN, 41, 0, 999);
}
std::vector<std::int32_t> bubble_input() {
  return random_vector(kBubbleN, 42, 0, 999);
}

/// Position-weighted checksum: catches both wrong contents and wrong order.
long position_checksum(const std::vector<std::int32_t>& v) {
  long s = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    s += static_cast<long>(v[i]) * static_cast<long>(i + 1);
  }
  return s;
}

// ---- quicksort (explicit-stack Lomuto partition, identical in all forms) ---

long quick_reference() {
  auto a = quick_input();
  std::int32_t stack[256];
  std::int32_t sp = 0;
  stack[sp] = 0;
  stack[sp + 1] = kQuickN - 1;
  sp = sp + 2;
  while (sp > 0) {
    sp = sp - 2;
    const std::int32_t lo = stack[sp];
    const std::int32_t hi = stack[sp + 1];
    if (lo >= hi) continue;
    const std::int32_t pivot = a[static_cast<std::size_t>(hi)];
    std::int32_t i = lo;
    for (std::int32_t j = lo; j < hi; ++j) {
      if (a[static_cast<std::size_t>(j)] <= pivot) {
        const std::int32_t t = a[static_cast<std::size_t>(i)];
        a[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(j)];
        a[static_cast<std::size_t>(j)] = t;
        i = i + 1;
      }
    }
    const std::int32_t t = a[static_cast<std::size_t>(i)];
    a[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(hi)];
    a[static_cast<std::size_t>(hi)] = t;
    stack[sp] = lo;
    stack[sp + 1] = i - 1;
    sp = sp + 2;
    stack[sp] = i + 1;
    stack[sp + 1] = hi;
    sp = sp + 2;
  }
  return position_checksum(a);
}

long quick_annotated() {
  const auto av = quick_input();
  scperf::garray<int> a(av.size());
  for (std::size_t k = 0; k < av.size(); ++k) a.at_raw(k).set_raw(av[k]);
  scperf::garray<int> stack(256);

  scperf::gint sp = 0;
  stack[sp] = 0;
  stack[sp + 1] = kQuickN - 1;
  sp = sp + 2;
  while (sp > 0) {
    sp = sp - 2;
    scperf::gint lo = stack[sp];
    scperf::gint hi = stack[sp + 1];
    if (lo >= hi) continue;
    scperf::gint pivot = a[hi];
    scperf::gint i = lo;
    scperf::gint j = lo;
    while (j < hi) {
      if (a[j] <= pivot) {
        scperf::gint t = a[i];
        a[i] = a[j];
        a[j] = t;
        i = i + 1;
      }
      j = j + 1;
    }
    scperf::gint t = a[i];
    a[i] = a[hi];
    a[hi] = t;
    stack[sp] = lo;
    stack[sp + 1] = i - 1;
    sp = sp + 2;
    stack[sp] = i + 1;
    stack[sp + 1] = hi;
    sp = sp + 2;
  }

  scperf::gint checksum = 0;
  scperf::gint k = 0;
  while (k < kQuickN) {
    checksum = checksum + a[k] * (k + 1);
    k = k + 1;
  }
  return checksum.value();
}

// quicksort(r3 = &a, r4 = n, r5 = &stack) -> r11 = position checksum
constexpr const char* kQuickAsm = R"(
quicksort:
  li   r13, 0           # sp (word index)
  slli r14, r13, 2
  add  r14, r14, r5
  sw   r0, 0(r14)       # stack[0] = 0
  addi r15, r4, -1
  sw   r15, 4(r14)      # stack[1] = n-1
  li   r13, 2
q_loop:
  sfgti r13, 0
  bnf  q_done
  addi r13, r13, -2
  slli r14, r13, 2
  add  r14, r14, r5
  lw   r16, 0(r14)      # lo
  lw   r17, 4(r14)      # hi
  sfge r16, r17
  bf   q_loop           # lo >= hi: skip
  slli r18, r17, 2
  add  r18, r18, r3
  lw   r19, 0(r18)      # pivot = a[hi]
  mov  r20, r16         # i = lo
  mov  r21, r16         # j = lo
q_part:
  sflt r21, r17
  bnf  q_part_done
  slli r22, r21, 2
  add  r22, r22, r3
  lw   r23, 0(r22)      # a[j]
  sfle r23, r19
  bnf  q_no_swap
  slli r24, r20, 2
  add  r24, r24, r3
  lw   r25, 0(r24)      # t = a[i]
  sw   r23, 0(r24)      # a[i] = a[j]
  sw   r25, 0(r22)      # a[j] = t
  addi r20, r20, 1
q_no_swap:
  addi r21, r21, 1
  j    q_part
q_part_done:
  slli r24, r20, 2
  add  r24, r24, r3
  lw   r25, 0(r24)      # t = a[i]
  lw   r26, 0(r18)      # a[hi]
  sw   r26, 0(r24)
  sw   r25, 0(r18)
  slli r14, r13, 2
  add  r14, r14, r5
  sw   r16, 0(r14)      # push lo
  addi r27, r20, -1
  sw   r27, 4(r14)      # push i-1
  addi r13, r13, 2
  slli r14, r13, 2
  add  r14, r14, r5
  addi r27, r20, 1
  sw   r27, 0(r14)      # push i+1
  sw   r17, 4(r14)      # push hi
  addi r13, r13, 2
  j    q_loop
q_done:
  li   r11, 0
  li   r13, 0
q_chk:
  sflt r13, r4
  bnf  q_chk_done
  slli r14, r13, 2
  add  r14, r14, r3
  lw   r15, 0(r14)
  addi r16, r13, 1
  mul  r17, r15, r16
  add  r11, r11, r17
  addi r13, r13, 1
  j    q_chk
q_chk_done:
  ret
)";

IssResult quick_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kQuickAsm));
  constexpr std::uint32_t kAAddr = 0x1000;
  constexpr std::uint32_t kStackAddr = 0x8000;
  store_words(m, kAAddr, quick_input());
  m.set_reg(3, kAAddr);
  m.set_reg(4, kQuickN);
  m.set_reg(5, kStackAddr);
  const long checksum = m.call("quicksort");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult quick_iss() { return quick_iss_cfg(IssCacheConfig{}); }

// ---- bubble sort -------------------------------------------------------------

long bubble_reference() {
  auto a = bubble_input();
  for (std::int32_t i = 0; i < kBubbleN - 1; ++i) {
    for (std::int32_t j = 0; j < kBubbleN - 1 - i; ++j) {
      if (a[static_cast<std::size_t>(j)] >
          a[static_cast<std::size_t>(j + 1)]) {
        const std::int32_t t = a[static_cast<std::size_t>(j)];
        a[static_cast<std::size_t>(j)] = a[static_cast<std::size_t>(j + 1)];
        a[static_cast<std::size_t>(j + 1)] = t;
      }
    }
  }
  return position_checksum(a);
}

long bubble_annotated() {
  const auto av = bubble_input();
  scperf::garray<int> a(av.size());
  for (std::size_t k = 0; k < av.size(); ++k) a.at_raw(k).set_raw(av[k]);

  scperf::gint i = 0;
  while (i < kBubbleN - 1) {
    scperf::gint j = 0;
    while (j < kBubbleN - 1 - i) {
      if (a[j] > a[j + 1]) {
        scperf::gint t = a[j];
        a[j] = a[j + 1];
        a[j + 1] = t;
      }
      j = j + 1;
    }
    i = i + 1;
  }

  scperf::gint checksum = 0;
  scperf::gint k = 0;
  while (k < kBubbleN) {
    checksum = checksum + a[k] * (k + 1);
    k = k + 1;
  }
  return checksum.value();
}

// bubble(r3 = &a, r4 = n) -> r11 = position checksum
constexpr const char* kBubbleAsm = R"(
bubble:
  li   r13, 0           # i
  addi r14, r4, -1      # n-1
b_outer:
  sflt r13, r14
  bnf  b_done
  li   r15, 0           # j
  sub  r16, r14, r13    # n-1-i
b_inner:
  sflt r15, r16
  bnf  b_inner_done
  slli r17, r15, 2
  add  r17, r17, r3
  lw   r18, 0(r17)      # a[j]
  lw   r19, 4(r17)      # a[j+1]
  sfgt r18, r19
  bnf  b_no_swap
  sw   r19, 0(r17)
  sw   r18, 4(r17)
b_no_swap:
  addi r15, r15, 1
  j    b_inner
b_inner_done:
  addi r13, r13, 1
  j    b_outer
b_done:
  li   r11, 0
  li   r13, 0
b_chk:
  sflt r13, r4
  bnf  b_chk_done
  slli r17, r13, 2
  add  r17, r17, r3
  lw   r18, 0(r17)
  addi r19, r13, 1
  mul  r20, r18, r19
  add  r11, r11, r20
  addi r13, r13, 1
  j    b_chk
b_chk_done:
  ret
)";

IssResult bubble_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kBubbleAsm));
  constexpr std::uint32_t kAAddr = 0x1000;
  store_words(m, kAAddr, bubble_input());
  m.set_reg(3, kAAddr);
  m.set_reg(4, kBubbleN);
  const long checksum = m.call("bubble");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult bubble_iss() { return bubble_iss_cfg(IssCacheConfig{}); }

}  // namespace

Benchmark make_quicksort() {
  return {"Quick sort", quick_reference, quick_annotated, quick_iss,
          quick_iss_cfg};
}

Benchmark make_bubble() {
  return {"Bubble", bubble_reference, bubble_annotated, bubble_iss,
          bubble_iss_cfg};
}

}  // namespace workloads
