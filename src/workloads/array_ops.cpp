#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "iss/assembler.hpp"
#include "iss/machine.hpp"
#include "workloads/data.hpp"
#include "workloads/table1.hpp"

namespace workloads {
namespace {

constexpr int kN = 256;

std::vector<std::int32_t> array_a() {
  return random_vector(kN, 51, -1000, 1000);
}
std::vector<std::int32_t> array_b() {
  return random_vector(kN, 52, 1, 500);
}

// c[i] = ((a[i]*b[i]) >> 4) + (a[i] - b[i]); checksum = sum(c) with an
// extra conditional accumulation to exercise data-dependent branches.
long array_reference() {
  const auto a = array_a();
  const auto b = array_b();
  std::int32_t checksum = 0;
  for (std::int32_t i = 0; i < kN; ++i) {
    const auto ui = static_cast<std::size_t>(i);
    std::int32_t c = ((a[ui] * b[ui]) >> 4) + (a[ui] - b[ui]);
    if (c > 0) {
      checksum = checksum + c;
    } else {
      checksum = checksum - c;
    }
  }
  return checksum;
}

long array_annotated() {
  const auto av = array_a();
  const auto bv = array_b();
  scperf::garray<int> a(av.size());
  scperf::garray<int> b(bv.size());
  for (std::size_t k = 0; k < av.size(); ++k) a.at_raw(k).set_raw(av[k]);
  for (std::size_t k = 0; k < bv.size(); ++k) b.at_raw(k).set_raw(bv[k]);

  scperf::gint checksum = 0;
  scperf::gint i = 0;
  while (i < kN) {
    scperf::gint c = ((a[i] * b[i]) >> 4) + (a[i] - b[i]);
    if (c > 0) {
      checksum = checksum + c;
    } else {
      checksum = checksum - c;
    }
    i = i + 1;
  }
  return checksum.value();
}

// array(r3 = &a, r4 = &b, r5 = n) -> r11
constexpr const char* kArrayAsm = R"(
array:
  li   r11, 0
  li   r13, 0           # i
a_loop:
  sflt r13, r5
  bnf  a_done
  slli r14, r13, 2
  add  r15, r14, r3
  lw   r16, 0(r15)      # a[i]
  add  r17, r14, r4
  lw   r18, 0(r17)      # b[i]
  mul  r19, r16, r18
  srai r19, r19, 4
  sub  r20, r16, r18
  add  r21, r19, r20    # c
  sfgti r21, 0
  bnf  a_neg
  add  r11, r11, r21
  j    a_next
a_neg:
  sub  r11, r11, r21
a_next:
  addi r13, r13, 1
  j    a_loop
a_done:
  ret
)";

IssResult array_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kArrayAsm));
  constexpr std::uint32_t kAAddr = 0x1000;
  constexpr std::uint32_t kBAddr = 0x2000;
  store_words(m, kAAddr, array_a());
  store_words(m, kBAddr, array_b());
  m.set_reg(3, kAAddr);
  m.set_reg(4, kBAddr);
  m.set_reg(5, kN);
  const long checksum = m.call("array");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult array_iss() { return array_iss_cfg(IssCacheConfig{}); }

}  // namespace

Benchmark make_array() {
  return {"Array", array_reference, array_annotated, array_iss,
          array_iss_cfg};
}

}  // namespace workloads
