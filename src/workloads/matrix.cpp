#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "iss/assembler.hpp"
#include "iss/machine.hpp"
#include "workloads/data.hpp"
#include "workloads/table1.hpp"

// Out-of-sample validation workload: 24x24 integer matrix multiply. It is
// deliberately NOT part of table1_suite() (the paper's table has exactly six
// rows) and NOT part of the cost-table calibration set, so its estimation
// error measures how the calibrated weights generalise to unseen code.

namespace workloads {
namespace {

constexpr int kN = 24;

std::vector<std::int32_t> mat_a() {
  return random_vector(kN * kN, 71, -100, 100);
}
std::vector<std::int32_t> mat_b() {
  return random_vector(kN * kN, 72, -100, 100);
}

long matrix_reference() {
  const auto a = mat_a();
  const auto b = mat_b();
  std::vector<std::int32_t> c(static_cast<std::size_t>(kN * kN));
  std::int32_t i = 0;
  while (i < kN) {
    std::int32_t j = 0;
    while (j < kN) {
      std::int32_t acc = 0;
      std::int32_t k = 0;
      while (k < kN) {
        acc = acc + a[static_cast<std::size_t>(i * kN + k)] *
                        b[static_cast<std::size_t>(k * kN + j)];
        k = k + 1;
      }
      c[static_cast<std::size_t>(i * kN + j)] = acc;
      j = j + 1;
    }
    i = i + 1;
  }
  long checksum = 0;
  std::int32_t n = 0;
  while (n < kN * kN) {
    checksum += c[static_cast<std::size_t>(n)] >> 4;
    n = n + 1;
  }
  return checksum;
}

long matrix_annotated() {
  const auto av = mat_a();
  const auto bv = mat_b();
  scperf::garray<int> a(av.size()), b(bv.size()),
      c(static_cast<std::size_t>(kN * kN));
  for (std::size_t p = 0; p < av.size(); ++p) a.at_raw(p).set_raw(av[p]);
  for (std::size_t p = 0; p < bv.size(); ++p) b.at_raw(p).set_raw(bv[p]);

  // Row-base and column-stride indices are hoisted, the usual DSP source
  // style (and what a compiler's strength reduction produces anyway). The
  // naive `a[i*N+k]` form over-estimates by ~30% because the library charges
  // the per-iteration address multiplies the compiler eliminates — measured
  // in OutOfSample.NaiveIndexingOverestimates.
  scperf::gint i = 0;
  while (i < kN) {
    scperf::gint arow = i * kN;
    scperf::gint j = 0;
    while (j < kN) {
      scperf::gint acc = 0;
      scperf::gint bidx = j;
      scperf::gint k = 0;
      while (k < kN) {
        acc = acc + a[arow + k] * b[bidx];
        bidx = bidx + kN;
        k = k + 1;
      }
      c[arow + j] = acc;
      j = j + 1;
    }
    i = i + 1;
  }
  scperf::gint checksum = 0;
  scperf::gint n = 0;
  while (n < kN * kN) {
    checksum = checksum + (c[n] >> 4);
    n = n + 1;
  }
  return checksum.value();
}

// matmul(r3 = &a, r4 = &b, r5 = &c, r6 = n) -> r11 = checksum
constexpr const char* kMatrixAsm = R"(
matmul:
  li   r13, 0           # i
m_i:
  sflt r13, r6
  bnf  m_chk
  li   r14, 0           # j
m_j:
  sflt r14, r6
  bnf  m_i_next
  li   r15, 0           # acc
  li   r16, 0           # k
  # &a[i*n]
  mul  r17, r13, r6
  slli r17, r17, 2
  add  r17, r17, r3
  # &b[j] walking with stride 4n
  slli r18, r14, 2
  add  r18, r18, r4
  slli r19, r6, 2       # stride in bytes
m_k:
  sflt r16, r6
  bnf  m_k_done
  lw   r20, 0(r17)
  lw   r21, 0(r18)
  mul  r22, r20, r21
  add  r15, r15, r22
  addi r17, r17, 4
  add  r18, r18, r19
  addi r16, r16, 1
  j    m_k
m_k_done:
  mul  r20, r13, r6
  add  r20, r20, r14
  slli r20, r20, 2
  add  r20, r20, r5
  sw   r15, 0(r20)      # c[i*n+j] = acc
  addi r14, r14, 1
  j    m_j
m_i_next:
  addi r13, r13, 1
  j    m_i
m_chk:
  li   r11, 0
  li   r13, 0
  mul  r14, r6, r6
m_c:
  sflt r13, r14
  bnf  m_done
  slli r15, r13, 2
  add  r15, r15, r5
  lw   r16, 0(r15)
  srai r16, r16, 4
  add  r11, r11, r16
  addi r13, r13, 1
  j    m_c
m_done:
  ret
)";

IssResult matrix_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kMatrixAsm));
  constexpr std::uint32_t kAAddr = 0x10000;
  constexpr std::uint32_t kBAddr = 0x20000;
  constexpr std::uint32_t kCAddr = 0x30000;
  store_words(m, kAAddr, mat_a());
  store_words(m, kBAddr, mat_b());
  m.set_reg(3, kAAddr);
  m.set_reg(4, kBAddr);
  m.set_reg(5, kCAddr);
  m.set_reg(6, kN);
  const long checksum = m.call("matmul");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult matrix_iss() { return matrix_iss_cfg(IssCacheConfig{}); }

}  // namespace

Benchmark make_matrix() {
  return {"Matrix", matrix_reference, matrix_annotated, matrix_iss,
          matrix_iss_cfg};
}

}  // namespace workloads
