#pragma once

#include <functional>
#include <string>
#include <vector>

namespace workloads {

/// A computational segment destined for a HW (parallel) resource, used by the
/// Table 2 / Table 4 experiments: the estimation library produces its BC/WC
/// bounds while the behavioural-synthesis substrate schedules the recorded
/// DFG to obtain the "real" execution time.
struct HwSegment {
  std::string name;
  /// Runs the annotated computation exactly once as a single segment (no
  /// channel accesses or waits inside); returns a checksum for validation.
  std::function<long()> body;
};

/// One 16-tap FIR output sample: 16 multiplies feeding an accumulation tree —
/// a parallelism-rich DFG where best and worst case differ widely.
HwSegment fir_hw_segment();

/// Eight steps of an explicit Euler integrator y' = (b - a*y): a serial
/// dependence chain where best case approaches worst case.
HwSegment euler_hw_segment();

}  // namespace workloads
