#include <cstdint>

#include "core/annot.hpp"
#include "iss/assembler.hpp"
#include "iss/machine.hpp"
#include "workloads/table1.hpp"

namespace workloads {
namespace {

// Recursive Fibonacci: deliberately call-heavy, the stress test for the
// library's function-call weight t_fc (paper Fig. 3's largest single cost).
constexpr int kFibArg = 18;

std::int32_t fib_ref(std::int32_t n) {
  if (n <= 1) return n;
  return fib_ref(n - 1) + fib_ref(n - 2);
}

long fib_reference() { return fib_ref(kFibArg); }

scperf::gint fib_annot(const scperf::gint& n) {
  scperf::FuncGuard fg;
  if (n <= 1) {
    return n;
  }
  return fib_annot(n - 1) + fib_annot(n - 2);
}

long fib_annotated() {
  scperf::gint n(scperf::detail::RawTag{}, kFibArg);
  return fib_annot(n).value();
}

// fib(r3 = n) -> r11
constexpr const char* kFibAsm = R"(
fib:
  sfgti r3, 1
  bf   fib_rec
  mov  r11, r3          # fib(0) = 0, fib(1) = 1
  ret
fib_rec:
  addi r1, r1, -12      # frame: link, n, fib(n-1)
  sw   r9, 0(r1)
  sw   r3, 4(r1)
  addi r3, r3, -1
  jal  fib
  sw   r11, 8(r1)
  lw   r3, 4(r1)
  addi r3, r3, -2
  jal  fib
  lw   r13, 8(r1)
  add  r11, r11, r13
  lw   r9, 0(r1)
  addi r1, r1, 12
  ret
)";

IssResult fib_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kFibAsm));
  m.set_reg(3, kFibArg);
  const long checksum = m.call("fib");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult fib_iss() { return fib_iss_cfg(IssCacheConfig{}); }

}  // namespace

Benchmark make_fibonacci() {
  return {"Fibonacci", fib_reference, fib_annotated, fib_iss, fib_iss_cfg};
}

}  // namespace workloads
