#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "iss/assembler.hpp"
#include "iss/machine.hpp"
#include "workloads/data.hpp"
#include "workloads/table1.hpp"

namespace workloads {
namespace {

constexpr int kWords = 1024;

/// Runs of small symbol values, the natural input for run-length encoding.
std::vector<std::int32_t> compress_input() {
  Lcg rng(31);
  std::vector<std::int32_t> v;
  v.reserve(kWords);
  while (v.size() < kWords) {
    const std::int32_t symbol = rng.in_range(0, 7);
    const std::int32_t run = rng.in_range(1, 12);
    for (std::int32_t r = 0; r < run && v.size() < kWords; ++r) {
      v.push_back(symbol);
    }
  }
  return v;
}

// RLE: emit (symbol, run-length) pairs; checksum folds both streams so a
// mis-encoded run is caught.
long compress_reference() {
  const auto in = compress_input();
  std::int32_t checksum = 0;
  std::int32_t pairs = 0;
  std::int32_t i = 0;
  while (i < kWords) {
    const std::int32_t symbol = in[static_cast<std::size_t>(i)];
    std::int32_t run = 1;
    while (i + run < kWords &&
           in[static_cast<std::size_t>(i + run)] == symbol) {
      run = run + 1;
    }
    checksum = checksum + (symbol << 4) + run;
    pairs = pairs + 1;
    i = i + run;
  }
  return checksum * 100 + pairs;
}

long compress_annotated() {
  const auto inv = compress_input();
  scperf::garray<int> in(inv.size());
  for (std::size_t k = 0; k < inv.size(); ++k) in.at_raw(k).set_raw(inv[k]);

  scperf::gint checksum = 0;
  scperf::gint pairs = 0;
  scperf::gint i = 0;
  while (i < kWords) {
    scperf::gint symbol = in[i];
    scperf::gint run = 1;
    while ((i + run < kWords) && (in[i + run] == symbol)) {
      run = run + 1;
    }
    checksum = checksum + (symbol << 4) + run;
    pairs = pairs + 1;
    i = i + run;
  }
  return (checksum * 100 + pairs).value();
}

// compress(r3 = &in, r4 = n) -> r11 = checksum*100 + pairs
constexpr const char* kCompressAsm = R"(
compress:
  li   r13, 0           # i
  li   r14, 0           # checksum
  li   r15, 0           # pairs
c_outer:
  sflt r13, r4
  bnf  c_done
  slli r16, r13, 2
  add  r16, r16, r3
  lw   r17, 0(r16)      # symbol
  li   r18, 1           # run
c_run:
  add  r19, r13, r18
  sflt r19, r4
  bnf  c_run_done
  slli r20, r19, 2
  add  r20, r20, r3
  lw   r21, 0(r20)
  sfeq r21, r17
  bnf  c_run_done
  addi r18, r18, 1
  j    c_run
c_run_done:
  slli r22, r17, 4      # symbol * 16
  add  r22, r22, r18
  add  r14, r14, r22
  addi r15, r15, 1
  add  r13, r13, r18
  j    c_outer
c_done:
  li   r23, 100
  mul  r11, r14, r23
  add  r11, r11, r15
  ret
)";

IssResult compress_iss_cfg(const IssCacheConfig& cfg) {
  iss::Machine m;
  if (cfg.enable_icache) m.enable_icache(cfg.icache);
  if (cfg.enable_dcache) m.enable_dcache(cfg.dcache);
  m.load_program(iss::assemble(kCompressAsm));
  constexpr std::uint32_t kInAddr = 0x1000;
  store_words(m, kInAddr, compress_input());
  m.set_reg(3, kInAddr);
  m.set_reg(4, kWords);
  const long checksum = m.call("compress");
  IssResult r{checksum, m.stats().cycles, m.stats().instructions};
  if (m.icache() != nullptr) r.icache_hit_rate = m.icache()->hit_rate();
  if (m.dcache() != nullptr) r.dcache_hit_rate = m.dcache()->hit_rate();
  return r;
}

IssResult compress_iss() { return compress_iss_cfg(IssCacheConfig{}); }

}  // namespace

Benchmark make_compress() {
  return {"Compress", compress_reference, compress_annotated, compress_iss,
          compress_iss_cfg};
}

}  // namespace workloads
