#include "workloads/table1.hpp"

namespace workloads {

const std::vector<Benchmark>& table1_suite() {
  static const std::vector<Benchmark> kSuite = {
      make_fir(),    make_compress(),  make_quicksort(),
      make_bubble(), make_fibonacci(), make_array(),
  };
  return kSuite;
}

}  // namespace workloads
