#pragma once

#include <cstdint>
#include <vector>

namespace workloads::vocoder {

/// Deterministic synthetic speech: a mix of two pitched tones with slowly
/// varying frequency plus pseudo-random noise, Q11 amplitude (|s| <= 2047).
/// Stands in for the ETSI test sequences (see the substitution note in
/// kernels.hpp); every form of the codec consumes these identical samples.
std::vector<std::int32_t> synth_frame(int frame_index);

}  // namespace workloads::vocoder
