#include "workloads/vocoder/kernels.hpp"

// Annotated kernels: statement-for-statement mirrors of kernels_ref.cpp over
// scperf types, so the charged operation mix reflects exactly the reference
// algorithm and the computed values agree bit-for-bit.

namespace workloads::vocoder::annot {

namespace {

/// The weighting impulse response as an annotated ROM (indexing charges the
/// paper's t[] like any other array access).
const garray<int>& impulse() {
  static garray<int>* rom = [] {
    auto* g = new garray<int>(kImpLen);
    for (int i = 0; i < kImpLen; ++i) g->at_raw(i).set_raw(kImpulse[i]);
    return g;
  }();
  return *rom;
}

}  // namespace

void lsp_estimation(const garray<int>& frame, garray<int>& lpc) {
  garray<int> r(kOrder + 1);
  gint k = 0;
  while (k <= kOrder) {
    gint acc = 0;
    gint n = k;
    while (n < kFrame) {
      acc = acc + (((frame[n] >> 2) * (frame[n - k] >> 2)) >> 6);
      n = n + 1;
    }
    r[k] = acc;
    k = k + 1;
  }
  while (r[0] >= 32768) {
    gint i = 0;
    while (i <= kOrder) {
      r[i] = r[i] >> 1;
      i = i + 1;
    }
  }
  if (r[0] < 1) r[0] = 1;

  garray<int> a(kOrder + 1);
  garray<int> tmp(kOrder + 1);
  a[0] = 4096;
  gint i = 1;
  while (i <= kOrder) {
    a[i] = 0;
    i = i + 1;
  }
  gint err = r[0];
  i = 1;
  while (i <= kOrder) {
    gint acc = r[i];
    gint j = 1;
    while (j < i) {
      acc = acc - ((a[j] * r[i - j]) >> 12);
      j = j + 1;
    }
    if (acc > 32767) acc = 32767;
    if (acc < -32767) acc = -32767;
    gint ki = 0 - ((acc << 12) / err);
    if (ki > 4095) ki = 4095;
    if (ki < -4095) ki = -4095;
    j = 1;
    while (j < i) {
      gint v = a[j] + ((ki * a[i - j]) >> 12);
      if (v > 32767) v = 32767;
      if (v < -32767) v = -32767;
      tmp[j] = v;
      j = j + 1;
    }
    j = 1;
    while (j < i) {
      a[j] = tmp[j];
      j = j + 1;
    }
    a[i] = ki;
    gint k2 = (ki * ki) >> 12;
    err = err - ((k2 * err) >> 12);
    if (err < 1) err = 1;
    i = i + 1;
  }
  i = 0;
  while (i < kOrder) {
    lpc[i] = a[i + 1];
    i = i + 1;
  }
}

void lpc_interpolation(const garray<int>& prev, const garray<int>& cur,
                       garray<int>& subc) {
  gint s = 0;
  while (s < kSubframes) {
    gint i = 0;
    while (i < kOrder) {
      subc[s * kOrder + i] = ((3 - s) * prev[i] + (s + 1) * cur[i]) >> 2;
      i = i + 1;
    }
    s = s + 1;
  }
}

gint acb_search(const garray<int>& frame, int sub_off, const garray<int>& hist,
                gint& best_lag) {
  gint blag = kMinLag;
  gint bcorr = -1;
  gint ben = 1;
  gint lag = kMinLag;
  while (lag <= kMaxLag) {
    gint corr = 0;
    gint en = 1;
    gint n = 0;
    while (n < kSub) {
      gint h = hist[kHist - lag + n];
      corr = corr + ((frame[sub_off + n] * h) >> 6);
      en = en + ((h * h) >> 6);
      n = n + 1;
    }
    if (corr > bcorr) {
      bcorr = corr;
      ben = en;
      blag = lag;
    }
    lag = lag + 1;
  }
  if (bcorr < 0) bcorr = 0;
  gint gain = (bcorr << 8) / ben;
  if (gain > 8191) gain = 8191;
  best_lag = blag;
  return gain;
}

void update_history(garray<int>& hist, const garray<int>& frame, int sub_off) {
  gint i = 0;
  while (i < kHist - kSub) {
    hist[i] = hist[i + kSub];
    i = i + 1;
  }
  i = 0;
  while (i < kSub) {
    hist[kHist - kSub + i] = frame[sub_off + i];
    i = i + 1;
  }
}

gint icb_search(const garray<int>& frame, int sub_off, garray<int>& pulses,
                int pulse_off) {
  gint total = 0;
  gint t = 0;
  while (t < kTracks) {
    gint best_enc = t << 1;
    gint best_score = -1;
    gint p = t;
    while (p < kSub) {
      gint acc = 0;
      gint end = p + kImpLen;
      if (end > kSub) end = kSub;
      gint n = p;
      while (n < end) {
        acc = acc + ((frame[sub_off + n] * impulse()[n - p]) >> 6);
        n = n + 1;
      }
      gint score = acc;
      if (score < 0) score = 0 - score;
      if (score > best_score) {
        best_score = score;
        best_enc = p << 1;
        if (acc < 0) best_enc = best_enc | 1;
      }
      p = p + kTracks;
    }
    pulses[pulse_off + t] = best_enc;
    total = total + best_score;
    t = t + 1;
  }
  return total;
}

void build_excitation(const garray<int>& frame, int sub_off, gint gain,
                      const garray<int>& pulses, int pulse_off,
                      garray<int>& exc) {
  gint n = 0;
  while (n < kSub) {
    exc[n] = (gain * frame[sub_off + n]) >> 12;
    n = n + 1;
  }
  gint t = 0;
  while (t < kTracks) {
    gint enc = pulses[pulse_off + t];
    gint pos = enc >> 1;
    if ((enc & 1) != 0) {
      exc[pos] = exc[pos] - 512;
    } else {
      exc[pos] = exc[pos] + 512;
    }
    t = t + 1;
  }
}

gint postproc(const garray<int>& subc, int subc_off, const garray<int>& exc,
              garray<int>& mem, garray<int>& out) {
  gint checksum = 0;
  gint n = 0;
  while (n < kSub) {
    gint acc = exc[n] << 12;
    gint i = 0;
    while (i < kOrder) {
      acc = acc - subc[subc_off + i] * mem[i];
      i = i + 1;
    }
    gint y = acc >> 12;
    if (y > 4095) y = 4095;
    if (y < -4096) y = -4096;
    gint j = kOrder - 1;
    while (j > 0) {
      mem[j] = mem[j - 1];
      j = j - 1;
    }
    mem[0] = y;
    out[n] = y;
    checksum = checksum + y;
    n = n + 1;
  }
  return checksum;
}

}  // namespace workloads::vocoder::annot
