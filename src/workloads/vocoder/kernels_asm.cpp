#include "workloads/vocoder/kernels_asm.hpp"

#include "iss/assembler.hpp"
#include "workloads/data.hpp"
#include "workloads/vocoder/kernels.hpp"

namespace workloads::vocoder {
namespace {

// Memory layout (word-aligned regions, all within the 1 MiB default).
constexpr std::uint32_t kFrameAddr = 0x01000;   // frame[160]
constexpr std::uint32_t kLpcAddr = 0x02000;     // lpc[10] (current)
constexpr std::uint32_t kPrevAddr = 0x02100;    // prev lpc[10]
constexpr std::uint32_t kSubcAddr = 0x03000;    // subc[40]
constexpr std::uint32_t kHistAddr = 0x04000;    // hist[200]
constexpr std::uint32_t kPulsesAddr = 0x05000;  // pulses[4] per subframe
constexpr std::uint32_t kExcAddr = 0x06000;     // exc[40]
constexpr std::uint32_t kMemAddr = 0x07000;     // filter mem[10]
constexpr std::uint32_t kOutAddr = 0x07800;     // out[40]
constexpr std::uint32_t kScratch = 0x08000;     // lsp scratch: r/a/tmp
constexpr std::uint32_t kLagAddr = 0x09000;     // best-lag out cell
constexpr std::uint32_t kImpAddr = 0x09100;     // impulse rom[8]

// The five kernels plus helpers, mirroring kernels_ref.cpp statement for
// statement (see there for the algorithmic commentary).
constexpr const char* kVocoderAsm = R"(
# ---- lsp_estimation(r3=&frame, r4=&lpc, r5=&scratch) ----
# scratch: r[11] at +0, a[11] at +64, tmp[11] at +128
lsp:
  li   r13, 0
lsp_k:
  sfgti r13, 10
  bf   lsp_norm
  li   r14, 0
  mov  r15, r13
  # strength-reduced access: walk &frame[n] and &frame[n-k]
  slli r16, r13, 2
  add  r16, r16, r3      # &frame[k]
  mov  r18, r3           # &frame[0]
lsp_n:
  sflti r15, 160
  bnf  lsp_k_done
  lw   r17, 0(r16)
  lw   r19, 0(r18)
  srai r17, r17, 2
  srai r19, r19, 2
  mul  r20, r17, r19
  srai r20, r20, 6
  add  r14, r14, r20
  addi r16, r16, 4
  addi r18, r18, 4
  addi r15, r15, 1
  j    lsp_n
lsp_k_done:
  slli r16, r13, 2
  add  r16, r16, r5
  sw   r14, 0(r16)
  addi r13, r13, 1
  j    lsp_k
lsp_norm:
  lw   r14, 0(r5)
  li   r15, 32768
  sflt r14, r15
  bf   lsp_norm_done
  li   r16, 0
lsp_norm_i:
  sfgti r16, 10
  bf   lsp_norm
  slli r17, r16, 2
  add  r17, r17, r5
  lw   r18, 0(r17)
  srai r18, r18, 1
  sw   r18, 0(r17)
  addi r16, r16, 1
  j    lsp_norm_i
lsp_norm_done:
  lw   r14, 0(r5)
  sfgti r14, 0
  bf   lsp_r0_ok
  li   r14, 1
  sw   r14, 0(r5)
lsp_r0_ok:
  addi r21, r5, 64
  li   r16, 4096
  sw   r16, 0(r21)
  li   r16, 1
lsp_ainit:
  sfgti r16, 10
  bf   lsp_lev
  slli r17, r16, 2
  add  r17, r17, r21
  sw   r0, 0(r17)
  addi r16, r16, 1
  j    lsp_ainit
lsp_lev:
  lw   r22, 0(r5)
  li   r23, 1
lsp_i:
  sfgti r23, 10
  bf   lsp_out
  slli r16, r23, 2
  add  r16, r16, r5
  lw   r24, 0(r16)
  li   r25, 1
lsp_j1:
  sflt r25, r23
  bnf  lsp_j1_done
  slli r16, r25, 2
  add  r16, r16, r21
  lw   r17, 0(r16)
  sub  r18, r23, r25
  slli r18, r18, 2
  add  r18, r18, r5
  lw   r19, 0(r18)
  mul  r20, r17, r19
  srai r20, r20, 12
  sub  r24, r24, r20
  addi r25, r25, 1
  j    lsp_j1
lsp_j1_done:
  li   r15, 32767
  sfgt r24, r15
  bnf  lsp_c1
  mov  r24, r15
lsp_c1:
  li   r15, -32767
  sflt r24, r15
  bnf  lsp_c2
  mov  r24, r15
lsp_c2:
  slli r24, r24, 12
  div  r24, r24, r22
  sub  r24, r0, r24
  li   r15, 4095
  sfgt r24, r15
  bnf  lsp_kc1
  mov  r24, r15
lsp_kc1:
  li   r15, -4095
  sflt r24, r15
  bnf  lsp_kc2
  mov  r24, r15
lsp_kc2:
  addi r26, r5, 128
  li   r25, 1
lsp_j2:
  sflt r25, r23
  bnf  lsp_j2_done
  slli r16, r25, 2
  add  r17, r16, r21
  lw   r18, 0(r17)
  sub  r19, r23, r25
  slli r19, r19, 2
  add  r19, r19, r21
  lw   r20, 0(r19)
  mul  r20, r24, r20
  srai r20, r20, 12
  add  r18, r18, r20
  li   r27, 32767
  sfgt r18, r27
  bnf  lsp_t1
  mov  r18, r27
lsp_t1:
  li   r27, -32767
  sflt r18, r27
  bnf  lsp_t2
  mov  r18, r27
lsp_t2:
  add  r16, r16, r26
  sw   r18, 0(r16)
  addi r25, r25, 1
  j    lsp_j2
lsp_j2_done:
  li   r25, 1
lsp_j3:
  sflt r25, r23
  bnf  lsp_j3_done
  slli r16, r25, 2
  add  r17, r16, r26
  lw   r18, 0(r17)
  add  r17, r16, r21
  sw   r18, 0(r17)
  addi r25, r25, 1
  j    lsp_j3
lsp_j3_done:
  slli r16, r23, 2
  add  r16, r16, r21
  sw   r24, 0(r16)
  mul  r15, r24, r24
  srai r15, r15, 12
  mul  r15, r15, r22
  srai r15, r15, 12
  sub  r22, r22, r15
  sfgti r22, 0
  bf   lsp_err_ok
  li   r22, 1
lsp_err_ok:
  addi r23, r23, 1
  j    lsp_i
lsp_out:
  li   r16, 0
lsp_cp:
  sfgti r16, 9
  bf   lsp_ret
  addi r17, r16, 1
  slli r17, r17, 2
  add  r17, r17, r21
  lw   r18, 0(r17)
  slli r17, r16, 2
  add  r17, r17, r4
  sw   r18, 0(r17)
  addi r16, r16, 1
  j    lsp_cp
lsp_ret:
  ret

# ---- lpc_interpolation(r3=&prev, r4=&cur, r5=&subc) ----
lint:
  li   r13, 0
lint_s:
  sfgei r13, 4
  bf   lint_ret
  li   r14, 0
  li   r15, 3
  sub  r15, r15, r13
  addi r16, r13, 1
  li   r17, 10
  mul  r17, r17, r13
  slli r17, r17, 2
  add  r17, r17, r5
  mov  r18, r3
  mov  r19, r4
lint_i:
  sfgei r14, 10
  bf   lint_s_done
  lw   r20, 0(r18)
  mul  r20, r20, r15
  lw   r21, 0(r19)
  mul  r21, r21, r16
  add  r20, r20, r21
  srai r20, r20, 2
  sw   r20, 0(r17)
  addi r17, r17, 4
  addi r18, r18, 4
  addi r19, r19, 4
  addi r14, r14, 1
  j    lint_i
lint_s_done:
  addi r13, r13, 1
  j    lint_s
lint_ret:
  ret

# ---- copyv(r3=&src, r4=&dst, r5=n): dst[i] = src[i] ----
copyv:
  li   r13, 0
copyv_l:
  sflt r13, r5
  bnf  copyv_ret
  slli r14, r13, 2
  add  r15, r14, r3
  lw   r16, 0(r15)
  add  r15, r14, r4
  sw   r16, 0(r15)
  addi r13, r13, 1
  j    copyv_l
copyv_ret:
  ret

# ---- acb_search(r3=&sub, r4=&hist, r5=&best_lag_cell) -> r11 = gain ----
acb:
  li   r13, 40
  li   r14, 40
  li   r15, -1
  li   r16, 1
acb_lag:
  sfgti r13, 105
  bf   acb_done
  li   r17, 0
  li   r18, 1
  li   r19, 0
  li   r20, 200
  sub  r20, r20, r13
  slli r20, r20, 2
  add  r20, r20, r4
  mov  r21, r3
acb_n:
  sflti r19, 40
  bnf  acb_n_done
  lw   r22, 0(r20)
  lw   r23, 0(r21)
  mul  r24, r23, r22
  srai r24, r24, 6
  add  r17, r17, r24
  mul  r24, r22, r22
  srai r24, r24, 6
  add  r18, r18, r24
  addi r20, r20, 4
  addi r21, r21, 4
  addi r19, r19, 1
  j    acb_n
acb_n_done:
  sfgt r17, r15
  bnf  acb_next
  mov  r15, r17
  mov  r16, r18
  mov  r14, r13
acb_next:
  addi r13, r13, 1
  j    acb_lag
acb_done:
  sflti r15, 0
  bnf  acb_pos
  li   r15, 0
acb_pos:
  slli r15, r15, 8
  div  r11, r15, r16
  li   r17, 8191
  sfgt r11, r17
  bnf  acb_clip
  mov  r11, r17
acb_clip:
  sw   r14, 0(r5)
  ret

# ---- update_history(r3=&hist, r4=&sub) ----
uh:
  li   r13, 0
uh_1:
  sfgei r13, 160
  bf   uh_2a
  slli r14, r13, 2
  add  r15, r14, r3
  lw   r16, 160(r15)
  sw   r16, 0(r15)
  addi r13, r13, 1
  j    uh_1
uh_2a:
  li   r13, 0
uh_2:
  sfgei r13, 40
  bf   uh_ret
  slli r14, r13, 2
  add  r15, r14, r4
  lw   r16, 0(r15)
  add  r15, r14, r3
  sw   r16, 640(r15)
  addi r13, r13, 1
  j    uh_2
uh_ret:
  ret

# ---- icb_search(r3=&sub, r4=&pulses, r5=&impulse) -> r11 = metric ----
icb:
  li   r11, 0
  li   r13, 0
icb_t:
  sfgei r13, 4
  bf   icb_ret
  slli r14, r13, 1
  li   r15, -1
  mov  r16, r13
icb_p:
  sfgei r16, 40
  bf   icb_t_done
  li   r17, 0
  addi r18, r16, 8
  sflei r18, 40
  bf   icb_end_ok
  li   r18, 40
icb_end_ok:
  mov  r19, r16
  slli r20, r16, 2
  add  r20, r20, r3
  mov  r21, r5
icb_n:
  sflt r19, r18
  bnf  icb_n_done
  lw   r22, 0(r20)
  lw   r23, 0(r21)
  mul  r24, r22, r23
  srai r24, r24, 6
  add  r17, r17, r24
  addi r20, r20, 4
  addi r21, r21, 4
  addi r19, r19, 1
  j    icb_n
icb_n_done:
  mov  r25, r17
  sfgei r25, 0
  bf   icb_abs_ok
  sub  r25, r0, r25
icb_abs_ok:
  sfgt r25, r15
  bnf  icb_next_p
  mov  r15, r25
  slli r14, r16, 1
  sfgei r17, 0
  bf   icb_next_p
  ori  r14, r14, 1
icb_next_p:
  addi r16, r16, 4
  j    icb_p
icb_t_done:
  slli r26, r13, 2
  add  r26, r26, r4
  sw   r14, 0(r26)
  add  r11, r11, r15
  addi r13, r13, 1
  j    icb_t
icb_ret:
  ret

# ---- build_excitation(r3=&sub, r4=gain, r5=&pulses, r6=&exc) ----
bex:
  li   r13, 0
bex_1:
  sfgei r13, 40
  bf   bex_2a
  slli r14, r13, 2
  add  r15, r14, r3
  lw   r16, 0(r15)
  mul  r16, r16, r4
  srai r16, r16, 12
  add  r15, r14, r6
  sw   r16, 0(r15)
  addi r13, r13, 1
  j    bex_1
bex_2a:
  li   r13, 0
bex_2:
  sfgei r13, 4
  bf   bex_ret
  slli r14, r13, 2
  add  r15, r14, r5
  lw   r16, 0(r15)
  andi r17, r16, 1
  srai r18, r16, 1
  slli r18, r18, 2
  add  r18, r18, r6
  lw   r19, 0(r18)
  sfeqi r17, 0
  bf   bex_plus
  addi r19, r19, -512
  j    bex_store
bex_plus:
  addi r19, r19, 512
bex_store:
  sw   r19, 0(r18)
  addi r13, r13, 1
  j    bex_2
bex_ret:
  ret

# ---- postproc(r3=&subc, r4=&exc, r5=&mem, r6=&out) -> r11 = checksum ----
pp:
  li   r11, 0
  li   r13, 0
pp_n:
  sfgei r13, 40
  bf   pp_ret
  slli r14, r13, 2
  add  r15, r14, r4
  lw   r16, 0(r15)
  slli r16, r16, 12
  li   r17, 0
  mov  r18, r3
  mov  r19, r5
pp_i:
  sfgei r17, 10
  bf   pp_i_done
  lw   r20, 0(r18)
  lw   r21, 0(r19)
  mul  r22, r20, r21
  sub  r16, r16, r22
  addi r18, r18, 4
  addi r19, r19, 4
  addi r17, r17, 1
  j    pp_i
pp_i_done:
  srai r16, r16, 12
  li   r20, 4095
  sfgt r16, r20
  bnf  pp_c1
  mov  r16, r20
pp_c1:
  li   r20, -4096
  sflt r16, r20
  bnf  pp_c2
  mov  r16, r20
pp_c2:
  li   r17, 9
pp_shift:
  sfgti r17, 0
  bnf  pp_shift_done
  slli r20, r17, 2
  add  r21, r20, r5
  lw   r22, -4(r21)
  sw   r22, 0(r21)
  addi r17, r17, -1
  j    pp_shift
pp_shift_done:
  sw   r16, 0(r5)
  add  r21, r14, r6
  sw   r16, 0(r21)
  add  r11, r11, r16
  addi r13, r13, 1
  j    pp_n
pp_ret:
  ret
)";

}  // namespace

IssVocoder::IssVocoder() {
  m_.load_program(iss::assemble(kVocoderAsm));
  std::vector<std::int32_t> imp(kImpulse, kImpulse + kImpLen);
  store_words(m_, kImpAddr, imp);
}

std::int32_t IssVocoder::timed_call(const char* fn, std::uint64_t* bucket) {
  const std::uint64_t before = m_.stats().cycles;
  const std::int32_t r = m_.call(fn);
  *bucket += m_.stats().cycles - before;
  return r;
}

long IssVocoder::process_frame(const std::vector<std::int32_t>& frame) {
  store_words(m_, kFrameAddr, frame);

  // P1: LSP estimation.
  m_.set_reg(3, kFrameAddr);
  m_.set_reg(4, kLpcAddr);
  m_.set_reg(5, kScratch);
  timed_call("lsp", &cycles_.lsp);

  // P2: LPC interpolation + keep the current set as next frame's "previous".
  m_.set_reg(3, kPrevAddr);
  m_.set_reg(4, kLpcAddr);
  m_.set_reg(5, kSubcAddr);
  timed_call("lint", &cycles_.lpc_int);
  m_.set_reg(3, kLpcAddr);
  m_.set_reg(4, kPrevAddr);
  m_.set_reg(5, kOrder);
  timed_call("copyv", &cycles_.lpc_int);

  long checksum = 0;
  std::int32_t gains[kSubframes];
  for (int s = 0; s < kSubframes; ++s) {
    const std::uint32_t sub_addr =
        kFrameAddr + static_cast<std::uint32_t>(4 * kSub * s);

    // P3: adaptive-codebook search + history update.
    m_.set_reg(3, static_cast<std::int32_t>(sub_addr));
    m_.set_reg(4, kHistAddr);
    m_.set_reg(5, kLagAddr);
    gains[s] = timed_call("acb", &cycles_.acb);
    m_.set_reg(3, kHistAddr);
    m_.set_reg(4, static_cast<std::int32_t>(sub_addr));
    timed_call("uh", &cycles_.acb);

    // P4: innovative-codebook search.
    m_.set_reg(3, static_cast<std::int32_t>(sub_addr));
    m_.set_reg(4, kPulsesAddr);
    m_.set_reg(5, kImpAddr);
    timed_call("icb", &cycles_.icb);

    // P5: excitation + synthesis filter.
    m_.set_reg(3, static_cast<std::int32_t>(sub_addr));
    m_.set_reg(4, gains[s]);
    m_.set_reg(5, kPulsesAddr);
    m_.set_reg(6, kExcAddr);
    timed_call("bex", &cycles_.post);
    m_.set_reg(3, static_cast<std::int32_t>(
                      kSubcAddr + static_cast<std::uint32_t>(4 * kOrder * s)));
    m_.set_reg(4, kExcAddr);
    m_.set_reg(5, kMemAddr);
    m_.set_reg(6, kOutAddr);
    checksum += timed_call("pp", &cycles_.post);
  }
  return checksum;
}

}  // namespace workloads::vocoder
