#include "workloads/vocoder/pipeline.hpp"

#include <vector>

#include "core/scperf.hpp"
#include "workloads/vocoder/frames.hpp"
#include "workloads/vocoder/kernels.hpp"

namespace workloads::vocoder {
namespace {

/// The unit of data flowing through the pipeline; fields are filled in as
/// the token passes each stage. Marshalling between tokens and annotated
/// arrays uses the uncharged raw accessors: moving data across a channel is
/// the communication model's business (RTOS overhead at the node), not
/// computation of the segment.
struct Token {
  std::array<std::int32_t, kFrame> frame{};
  std::array<std::int32_t, kOrder> lpc{};
  std::array<std::int32_t, kSubframes * kOrder> subc{};
  std::array<std::int32_t, kSubframes> gain{};
  std::array<std::int32_t, kSubframes> lag{};
  std::array<std::int32_t, kSubframes * kTracks> pulses{};
};

using scperf::garray;
using scperf::gint;

void marshal_in(garray<int>& dst, const std::int32_t* src, int n) {
  for (int i = 0; i < n; ++i) dst.at_raw(static_cast<std::size_t>(i)).set_raw(src[i]);
}

void marshal_out(std::int32_t* dst, const garray<int>& src, int n) {
  for (int i = 0; i < n; ++i) dst[i] = src.at_raw(static_cast<std::size_t>(i)).value();
}

}  // namespace

AnnotatedResult run_annotated(const PipelineConfig& cfg) {
  AnnotatedResult result;
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& cpu = est.add_sw_resource(
      "cpu", cfg.cpu_mhz, scperf::orsim_sw_cost_table(),
      {.rtos_cycles_per_switch = cfg.rtos_cycles_per_switch});
  if (cfg.with_energy) cpu.set_energy_table(scperf::orsim_energy_table());
  for (int p = 0; p < 5; ++p) est.map(kProcessNames[p], cpu);
  if (cfg.num_cpus >= 2) {
    auto& cpu1 = est.add_sw_resource(
        "cpu1", cfg.cpu_mhz, scperf::orsim_sw_cost_table(),
        {.rtos_cycles_per_switch = cfg.rtos_cycles_per_switch});
    if (cfg.with_energy) cpu1.set_energy_table(scperf::orsim_energy_table());
    est.map(kProcessNames[2], cpu1);  // the ACB search dominates: own CPU
  }
  if (cfg.postproc_on_hw) {
    auto& hw = est.add_hw_resource(
        "hw", 100.0, scperf::asic_hw_cost_table(),
        {.k = cfg.hw_k, .record_dfg = cfg.record_postproc_dfg});
    if (cfg.with_energy) hw.set_energy_table(scperf::asic_energy_table());
    est.map(kProcessNames[4], hw);
  }

  minisc::Fifo<Token> f0("in", 2), f1("lsp2int", 2), f2("int2acb", 2),
      f3("acb2icb", 2), f4("icb2post", 2);
  minisc::Fifo<long> fout("out", 2);
  const int frames = cfg.frames;

  sim.spawn("source", [&] {
    for (int f = 0; f < frames; ++f) {
      Token t;
      const auto s = synth_frame(f);
      for (int i = 0; i < kFrame; ++i) t.frame[static_cast<std::size_t>(i)] = s[static_cast<std::size_t>(i)];
      f0.write(t);
    }
  });

  sim.spawn(kProcessNames[0], [&] {  // LSP estimation
    garray<int> gframe(kFrame), glpc(kOrder);
    for (int f = 0; f < frames; ++f) {
      Token t = f0.read();
      marshal_in(gframe, t.frame.data(), kFrame);
      annot::lsp_estimation(gframe, glpc);
      marshal_out(t.lpc.data(), glpc, kOrder);
      f1.write(t);
    }
  });

  sim.spawn(kProcessNames[1], [&] {  // LPC interpolation
    garray<int> gprev(kOrder), gcur(kOrder), gsubc(kSubframes * kOrder);
    for (int i = 0; i < kOrder; ++i) gprev.at_raw(static_cast<std::size_t>(i)).set_raw(0);
    for (int f = 0; f < frames; ++f) {
      Token t = f1.read();
      marshal_in(gcur, t.lpc.data(), kOrder);
      annot::lpc_interpolation(gprev, gcur, gsubc);
      gint i = 0;
      while (i < kOrder) {  // keep the current set for the next frame
        gprev[i] = gcur[i];
        i = i + 1;
      }
      marshal_out(t.subc.data(), gsubc, kSubframes * kOrder);
      f2.write(t);
    }
  });

  sim.spawn(kProcessNames[2], [&] {  // adaptive-codebook search
    garray<int> gframe(kFrame), ghist(kHist);
    for (int i = 0; i < kHist; ++i) ghist.at_raw(static_cast<std::size_t>(i)).set_raw(0);
    for (int f = 0; f < frames; ++f) {
      Token t = f2.read();
      marshal_in(gframe, t.frame.data(), kFrame);
      for (int s = 0; s < kSubframes; ++s) {
        gint lag(scperf::detail::RawTag{}, 0);
        gint gain = annot::acb_search(gframe, s * kSub, ghist, lag);
        annot::update_history(ghist, gframe, s * kSub);
        t.gain[static_cast<std::size_t>(s)] = gain.value();
        t.lag[static_cast<std::size_t>(s)] = lag.value();
      }
      f3.write(t);
    }
  });

  sim.spawn(kProcessNames[3], [&] {  // innovative-codebook search
    garray<int> gframe(kFrame), gpulses(kSubframes * kTracks);
    for (int f = 0; f < frames; ++f) {
      Token t = f3.read();
      marshal_in(gframe, t.frame.data(), kFrame);
      for (int s = 0; s < kSubframes; ++s) {
        (void)annot::icb_search(gframe, s * kSub, gpulses, s * kTracks);
      }
      marshal_out(t.pulses.data(), gpulses, kSubframes * kTracks);
      f4.write(t);
    }
  });

  sim.spawn(kProcessNames[4], [&] {  // post-processing
    garray<int> gframe(kFrame), gsubc(kSubframes * kOrder),
        gpulses(kSubframes * kTracks), gexc(kSub), gout(kSub), gmem(kOrder);
    for (int i = 0; i < kOrder; ++i) gmem.at_raw(static_cast<std::size_t>(i)).set_raw(0);
    for (int f = 0; f < frames; ++f) {
      Token t = f4.read();
      marshal_in(gframe, t.frame.data(), kFrame);
      marshal_in(gsubc, t.subc.data(), kSubframes * kOrder);
      marshal_in(gpulses, t.pulses.data(), kSubframes * kTracks);
      long frame_checksum = 0;
      for (int s = 0; s < kSubframes; ++s) {
        gint gain(scperf::detail::RawTag{},
                  t.gain[static_cast<std::size_t>(s)]);
        annot::build_excitation(gframe, s * kSub, gain, gpulses,
                                s * kTracks, gexc);
        gint cs = annot::postproc(gsubc, s * kOrder, gexc, gmem, gout);
        frame_checksum += cs.value();
      }
      fout.write(frame_checksum);
    }
  });

  long total = 0;
  sim.spawn("sink", [&] {
    for (int f = 0; f < frames; ++f) total += fout.read();
  });

  const auto reason = sim.run();
  if (reason != minisc::StopReason::kFinished) {
    throw std::runtime_error(std::string("vocoder pipeline did not finish: ") +
                             minisc::to_string(reason));
  }

  result.checksum = total;
  result.sim_time = sim.now();
  for (const char* name : kProcessNames) {
    result.process_cycles[name] = est.process_cycles(name);
    if (cfg.with_energy) {
      result.process_energy_pj[name] = est.process_energy_pj(name);
    }
  }
  result.report = est.report();
  return result;
}

long run_reference(int frames) {
  std::int32_t prev[kOrder] = {};
  std::int32_t hist[kHist] = {};
  std::int32_t mem[kOrder] = {};
  long total = 0;
  for (int f = 0; f < frames; ++f) {
    const auto frame = synth_frame(f);
    std::int32_t lpc[kOrder];
    ref::lsp_estimation(frame.data(), lpc);
    std::int32_t subc[kSubframes * kOrder];
    ref::lpc_interpolation(prev, lpc, subc);
    std::int32_t i = 0;
    while (i < kOrder) {
      prev[i] = lpc[i];
      i = i + 1;
    }
    std::int32_t gain[kSubframes];
    std::int32_t lag[kSubframes];
    std::int32_t pulses[kSubframes * kTracks];
    for (int s = 0; s < kSubframes; ++s) {
      gain[s] = ref::acb_search(frame.data() + s * kSub, hist, &lag[s]);
      ref::update_history(hist, frame.data() + s * kSub);
    }
    for (int s = 0; s < kSubframes; ++s) {
      (void)ref::icb_search(frame.data() + s * kSub, pulses + s * kTracks);
    }
    for (int s = 0; s < kSubframes; ++s) {
      std::int32_t exc[kSub];
      std::int32_t out[kSub];
      ref::build_excitation(frame.data() + s * kSub, gain[s],
                            pulses + s * kTracks, exc);
      total += ref::postproc(subc + s * kOrder, exc, mem, out);
    }
  }
  return total;
}

IssPipelineResult run_iss(int frames) {
  IssPipelineResult r;
  IssVocoder vc;
  for (int f = 0; f < frames; ++f) {
    r.checksum += vc.process_frame(synth_frame(f));
  }
  r.cycles = vc.cycles();
  return r;
}

}  // namespace workloads::vocoder
