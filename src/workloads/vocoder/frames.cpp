#include "workloads/vocoder/frames.hpp"

#include <cmath>

#include "workloads/data.hpp"
#include "workloads/vocoder/kernels.hpp"

namespace workloads::vocoder {

std::vector<std::int32_t> synth_frame(int frame_index) {
  std::vector<std::int32_t> s(kFrame);
  Lcg noise(0x9e3779b9u + static_cast<std::uint32_t>(frame_index));
  const double f1 = 0.02 + 0.002 * (frame_index % 7);   // "pitch"
  const double f2 = 0.11 + 0.004 * (frame_index % 5);   // "formant"
  for (int n = 0; n < kFrame; ++n) {
    const double t = static_cast<double>(frame_index * kFrame + n);
    const double v = 1200.0 * std::sin(6.283185307179586 * f1 * t) +
                     500.0 * std::sin(6.283185307179586 * f2 * t);
    std::int32_t x = static_cast<std::int32_t>(std::lround(v)) +
                     noise.in_range(-120, 120);
    if (x > 2047) x = 2047;
    if (x < -2047) x = -2047;
    s[static_cast<std::size_t>(n)] = x;
  }
  return s;
}

}  // namespace workloads::vocoder
