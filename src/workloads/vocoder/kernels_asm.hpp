#pragma once

#include <cstdint>
#include <vector>

#include "iss/machine.hpp"

namespace workloads::vocoder {

/// Per-stage accumulated ISS cycles across all processed frames — the
/// "target platform estimation" reference column of Table 3.
struct StageCycles {
  std::uint64_t lsp = 0;
  std::uint64_t lpc_int = 0;
  std::uint64_t acb = 0;
  std::uint64_t icb = 0;
  std::uint64_t post = 0;

  std::uint64_t total() const { return lsp + lpc_int + acb + icb + post; }
};

/// Drives the five vocoder kernels, hand-compiled to orsim assembly, on a
/// single ISS instance whose memory holds all codec state (LPC sets,
/// excitation history, filter memory) across frames — mirroring exactly the
/// stage sequencing of the annotated pipeline so per-stage cycle counts and
/// the final checksum are directly comparable.
class IssVocoder {
 public:
  IssVocoder();

  /// Processes one frame through all five stages; returns the frame
  /// checksum (sum of the four subframe checksums from post-processing).
  long process_frame(const std::vector<std::int32_t>& frame);

  const StageCycles& cycles() const { return cycles_; }
  const iss::Machine& machine() const { return m_; }

 private:
  /// Calls `fn` and charges its cycles to `*bucket`.
  std::int32_t timed_call(const char* fn, std::uint64_t* bucket);

  iss::Machine m_;
  StageCycles cycles_;
};

}  // namespace workloads::vocoder
