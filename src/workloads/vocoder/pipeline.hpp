#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "core/report.hpp"
#include "kernel/time.hpp"
#include "workloads/vocoder/kernels_asm.hpp"

namespace workloads::vocoder {

/// Canonical names of the five concurrent processes, in pipeline order —
/// the row labels of the paper's Table 3.
inline constexpr const char* kProcessNames[5] = {
    "LSP estim.", "LPC int.", "ACB sear.", "ICB sear.", "Post Proc."};

struct AnnotatedResult {
  long checksum = 0;
  /// Library-estimated computation cycles per process.
  std::map<std::string, double> process_cycles;
  /// Estimated energy per process in picojoules (filled when
  /// PipelineConfig::with_energy is set).
  std::map<std::string, double> process_energy_pj;
  minisc::Time sim_time;
  scperf::Report report;
};

struct PipelineConfig {
  int frames = 20;
  double cpu_mhz = 50.0;
  double rtos_cycles_per_switch = 0.0;
  /// 1 or 2 processors. With 2, the adaptive-codebook search (the dominant
  /// process) gets its own CPU — a natural architectural-mapping candidate.
  int num_cpus = 1;
  /// When true, "Post Proc." maps to a 100 MHz HW resource instead of the
  /// CPU (the paper's Table 4 configuration) with the given k.
  bool postproc_on_hw = false;
  double hw_k = 0.0;
  bool record_postproc_dfg = false;
  /// Attach energy tables to every resource and fill process_energy_pj.
  bool with_energy = false;
};

/// Runs the five-process annotated pipeline on minisc with the estimation
/// library installed: the paper's Table 3 "Library estimation" column (and,
/// with postproc_on_hw, the Table 4 configuration).
AnnotatedResult run_annotated(const PipelineConfig& cfg);

/// Sequential plain-C++ execution of the same dataflow: the functional
/// reference and the host-time baseline.
long run_reference(int frames);

struct IssPipelineResult {
  long checksum = 0;
  StageCycles cycles;
};

/// The same dataflow with every kernel executed on the orsim ISS: the
/// "target platform" reference column of Table 3.
IssPipelineResult run_iss(int frames);

}  // namespace workloads::vocoder
