#include "workloads/vocoder/kernels.hpp"

// Reference (plain C++) kernels. Written in deliberately "flat" integer
// style — while loops, explicit temporaries, explicit clips — so the
// annotated and assembly forms can mirror them statement for statement.

namespace workloads::vocoder::ref {

void lsp_estimation(const std::int32_t* frame, std::int32_t* lpc) {
  std::int32_t r[kOrder + 1];
  std::int32_t k = 0;
  while (k <= kOrder) {
    std::int32_t acc = 0;
    std::int32_t n = k;
    while (n < kFrame) {
      acc = acc + (((frame[n] >> 2) * (frame[n - k] >> 2)) >> 6);
      n = n + 1;
    }
    r[k] = acc;
    k = k + 1;
  }
  while (r[0] >= 32768) {
    std::int32_t i = 0;
    while (i <= kOrder) {
      r[i] = r[i] >> 1;
      i = i + 1;
    }
  }
  if (r[0] < 1) r[0] = 1;

  std::int32_t a[kOrder + 1];
  std::int32_t tmp[kOrder + 1];
  a[0] = 4096;
  std::int32_t i = 1;
  while (i <= kOrder) {
    a[i] = 0;
    i = i + 1;
  }
  std::int32_t err = r[0];
  i = 1;
  while (i <= kOrder) {
    std::int32_t acc = r[i];
    std::int32_t j = 1;
    while (j < i) {
      acc = acc - ((a[j] * r[i - j]) >> 12);
      j = j + 1;
    }
    if (acc > 32767) acc = 32767;
    if (acc < -32767) acc = -32767;
    std::int32_t ki = 0 - ((acc << 12) / err);
    if (ki > 4095) ki = 4095;
    if (ki < -4095) ki = -4095;
    j = 1;
    while (j < i) {
      std::int32_t v = a[j] + ((ki * a[i - j]) >> 12);
      if (v > 32767) v = 32767;
      if (v < -32767) v = -32767;
      tmp[j] = v;
      j = j + 1;
    }
    j = 1;
    while (j < i) {
      a[j] = tmp[j];
      j = j + 1;
    }
    a[i] = ki;
    std::int32_t k2 = (ki * ki) >> 12;
    err = err - ((k2 * err) >> 12);
    if (err < 1) err = 1;
    i = i + 1;
  }
  i = 0;
  while (i < kOrder) {
    lpc[i] = a[i + 1];
    i = i + 1;
  }
}

void lpc_interpolation(const std::int32_t* prev, const std::int32_t* cur,
                       std::int32_t* subc) {
  std::int32_t s = 0;
  while (s < kSubframes) {
    std::int32_t i = 0;
    while (i < kOrder) {
      subc[s * kOrder + i] = ((3 - s) * prev[i] + (s + 1) * cur[i]) >> 2;
      i = i + 1;
    }
    s = s + 1;
  }
}

std::int32_t acb_search(const std::int32_t* sub, const std::int32_t* hist,
                        std::int32_t* best_lag) {
  std::int32_t blag = kMinLag;
  std::int32_t bcorr = -1;
  std::int32_t ben = 1;
  std::int32_t lag = kMinLag;
  while (lag <= kMaxLag) {
    std::int32_t corr = 0;
    std::int32_t en = 1;
    std::int32_t n = 0;
    while (n < kSub) {
      std::int32_t h = hist[kHist - lag + n];
      corr = corr + ((sub[n] * h) >> 6);
      en = en + ((h * h) >> 6);
      n = n + 1;
    }
    if (corr > bcorr) {
      bcorr = corr;
      ben = en;
      blag = lag;
    }
    lag = lag + 1;
  }
  if (bcorr < 0) bcorr = 0;
  std::int32_t gain = (bcorr << 8) / ben;
  if (gain > 8191) gain = 8191;
  *best_lag = blag;
  return gain;
}

void update_history(std::int32_t* hist, const std::int32_t* sub) {
  std::int32_t i = 0;
  while (i < kHist - kSub) {
    hist[i] = hist[i + kSub];
    i = i + 1;
  }
  i = 0;
  while (i < kSub) {
    hist[kHist - kSub + i] = sub[i];
    i = i + 1;
  }
}

std::int32_t icb_search(const std::int32_t* sub, std::int32_t* pulses) {
  std::int32_t total = 0;
  std::int32_t t = 0;
  while (t < kTracks) {
    std::int32_t best_enc = t << 1;
    std::int32_t best_score = -1;
    std::int32_t p = t;
    while (p < kSub) {
      std::int32_t acc = 0;
      std::int32_t end = p + kImpLen;
      if (end > kSub) end = kSub;
      std::int32_t n = p;
      while (n < end) {
        acc = acc + ((sub[n] * kImpulse[n - p]) >> 6);
        n = n + 1;
      }
      std::int32_t score = acc;
      if (score < 0) score = 0 - score;
      if (score > best_score) {
        best_score = score;
        best_enc = p << 1;
        if (acc < 0) best_enc = best_enc | 1;
      }
      p = p + kTracks;
    }
    pulses[t] = best_enc;
    total = total + best_score;
    t = t + 1;
  }
  return total;
}

void build_excitation(const std::int32_t* sub, std::int32_t gain,
                      const std::int32_t* pulses, std::int32_t* exc) {
  std::int32_t n = 0;
  while (n < kSub) {
    exc[n] = (gain * sub[n]) >> 12;
    n = n + 1;
  }
  std::int32_t t = 0;
  while (t < kTracks) {
    std::int32_t enc = pulses[t];
    std::int32_t pos = enc >> 1;
    if ((enc & 1) != 0) {
      exc[pos] = exc[pos] - 512;
    } else {
      exc[pos] = exc[pos] + 512;
    }
    t = t + 1;
  }
}

std::int32_t postproc(const std::int32_t* subc, const std::int32_t* exc,
                      std::int32_t* mem, std::int32_t* out) {
  std::int32_t checksum = 0;
  std::int32_t n = 0;
  while (n < kSub) {
    std::int32_t acc = exc[n] << 12;
    std::int32_t i = 0;
    while (i < kOrder) {
      acc = acc - subc[i] * mem[i];
      i = i + 1;
    }
    std::int32_t y = acc >> 12;
    if (y > 4095) y = 4095;
    if (y < -4096) y = -4096;
    std::int32_t j = kOrder - 1;
    while (j > 0) {
      mem[j] = mem[j - 1];
      j = j - 1;
    }
    mem[0] = y;
    out[n] = y;
    checksum = checksum + y;
    n = n + 1;
  }
  return checksum;
}

}  // namespace workloads::vocoder::ref
