#pragma once

#include <cstdint>

#include "core/annot.hpp"

/// The five computational kernels of the vocoder case study (Table 3 of the
/// paper: LSP estimation, LPC interpolation, adaptive-codebook search,
/// innovative-codebook search, post-processing).
///
/// SUBSTITUTION NOTE (see DESIGN.md §2): the paper uses the ETSI EN 301 704
/// GSM vocoder. These kernels reproduce its computational *shape* — fixed-
/// point autocorrelation + Levinson-Durbin, coefficient interpolation,
/// correlation-maximising pitch search, pulse-position codebook search and a
/// 10th-order synthesis filter — without being bit-exact to the standard
/// (bit-exactness is irrelevant to timing-estimation accuracy; the "LSP"
/// stage stops at the LPC coefficients rather than converting to line
/// spectral pairs).
///
/// Every kernel exists in three forms operating on identical data and
/// producing identical results: plain C++ (vocoder_ref), annotated
/// (vocoder_annot) and orsim assembly (kernels_asm.hpp). All arithmetic is
/// 32-bit integer Q12 fixed point with explicit clipping so the forms agree
/// bit-for-bit.
namespace workloads::vocoder {

inline constexpr int kFrame = 160;   ///< samples per frame
inline constexpr int kSub = 40;      ///< samples per subframe
inline constexpr int kSubframes = 4;
inline constexpr int kOrder = 10;    ///< LPC order
inline constexpr int kHist = 200;    ///< adaptive-codebook history length
// Lags start at one subframe so the history window hist[kHist-lag .. +kSub)
// stays inside the buffer (lag >= kSub and kHist - kMinLag + kSub <= kHist).
inline constexpr int kMinLag = 40;
inline constexpr int kMaxLag = 105;
inline constexpr int kTracks = 4;    ///< innovative-codebook tracks
inline constexpr int kImpLen = 8;    ///< weighting impulse response length

/// The fixed weighting impulse response used by the innovative-codebook
/// search (all forms share these constants).
inline constexpr std::int32_t kImpulse[kImpLen] = {64, 48, 32, 24,
                                                   16, 8,  4,  2};

namespace ref {

/// Autocorrelation (kOrder+1 lags) + Levinson-Durbin -> lpc[kOrder] (Q12).
void lsp_estimation(const std::int32_t* frame, std::int32_t* lpc);

/// Interpolates previous/current LPC sets across the 4 subframes:
/// subc[s*kOrder + i] = ((3-s)*prev[i] + (s+1)*cur[i]) >> 2.
void lpc_interpolation(const std::int32_t* prev, const std::int32_t* cur,
                       std::int32_t* subc);

/// Correlation-maximising pitch search over lags [kMinLag, kMaxLag] against
/// the excitation history; returns the Q12 gain and writes the best lag.
std::int32_t acb_search(const std::int32_t* sub, const std::int32_t* hist,
                        std::int32_t* best_lag);

/// Shifts the history left by one subframe and appends `sub`.
void update_history(std::int32_t* hist, const std::int32_t* sub);

/// Pulse-position search: per track, the position (stride kTracks) whose
/// correlation with the weighting impulse response has the largest
/// magnitude. pulses[t] = (pos << 1) | sign. Returns the summed metric.
std::int32_t icb_search(const std::int32_t* sub, std::int32_t* pulses);

/// exc[n] = (gain * sub[n]) >> 12, plus +/-512 at the 4 pulse positions.
void build_excitation(const std::int32_t* sub, std::int32_t gain,
                      const std::int32_t* pulses, std::int32_t* exc);

/// 10th-order IIR synthesis filter with clipping; updates `mem`, writes
/// `out`, returns the subframe checksum (sum of output samples).
std::int32_t postproc(const std::int32_t* subc, const std::int32_t* exc,
                      std::int32_t* mem, std::int32_t* out);

}  // namespace ref

namespace annot {

using scperf::garray;
using scperf::gint;

// The same kernels over annotated types; `sub_off` selects the subframe
// within a frame-sized array. Bit-identical results to ref::.
void lsp_estimation(const garray<int>& frame, garray<int>& lpc);
void lpc_interpolation(const garray<int>& prev, const garray<int>& cur,
                       garray<int>& subc);
gint acb_search(const garray<int>& frame, int sub_off,
                const garray<int>& hist, gint& best_lag);
void update_history(garray<int>& hist, const garray<int>& frame, int sub_off);
gint icb_search(const garray<int>& frame, int sub_off, garray<int>& pulses,
                int pulse_off);
void build_excitation(const garray<int>& frame, int sub_off, gint gain,
                      const garray<int>& pulses, int pulse_off,
                      garray<int>& exc);
gint postproc(const garray<int>& subc, int subc_off, const garray<int>& exc,
              garray<int>& mem, garray<int>& out);

}  // namespace annot

}  // namespace workloads::vocoder
