#include "workloads/data.hpp"

namespace workloads {

std::vector<std::int32_t> random_vector(std::size_t n, std::uint32_t seed,
                                        std::int32_t lo, std::int32_t hi) {
  Lcg rng(seed);
  std::vector<std::int32_t> v(n);
  for (auto& x : v) x = rng.in_range(lo, hi);
  return v;
}

void store_words(iss::Machine& m, std::uint32_t addr,
                 const std::vector<std::int32_t>& v) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    m.write_word(addr + static_cast<std::uint32_t>(4 * i), v[i]);
  }
}

std::vector<std::int32_t> load_words(const iss::Machine& m,
                                     std::uint32_t addr, std::size_t n) {
  std::vector<std::int32_t> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = m.read_word(addr + static_cast<std::uint32_t>(4 * i));
  }
  return v;
}

}  // namespace workloads
