#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "iss/cache.hpp"

namespace workloads {

/// Result of running a benchmark on the orsim ISS.
struct IssResult {
  long checksum = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  double icache_hit_rate = 1.0;  ///< 1.0 when the cache model is disabled
  double dcache_hit_rate = 1.0;
};

/// Optional cache timing models for an ISS run (Ablation D: the library's
/// calibration is cache-less, so enabling these produces exactly the class
/// of estimation error the paper's Section 1 attributes to caches).
struct IssCacheConfig {
  bool enable_icache = false;
  bool enable_dcache = false;
  iss::DirectMappedCache::Config icache{64, 16, 20};
  iss::DirectMappedCache::Config dcache{64, 16, 20};
};

/// One of the paper's Table-1 sequential benchmarks, available in its three
/// forms. All three operate on identical data and compute an identical
/// checksum, which the tests assert — the *checksums* must agree even though
/// the *costs* are independent models.
///
///  - reference: plain (uninstrumented) C++, the "original SystemC
///    specification" baseline of the host-time columns;
///  - annotated: the same algorithm over scperf annotated types — running it
///    with an active SegmentAccum yields the library's cycle estimate;
///  - iss: the same algorithm hand-compiled to orsim assembly, cycle-counted
///    by the ISS — the paper's "target platform estimation" reference.
struct Benchmark {
  std::string name;
  std::function<long()> reference;
  std::function<long()> annotated;
  std::function<IssResult()> iss;
  /// Same ISS run with configurable cache timing models.
  std::function<IssResult(const IssCacheConfig&)> iss_cached;
};

Benchmark make_fir();        ///< 16-tap FIR over 256 samples (Q12)
Benchmark make_compress();   ///< run-length encoding of a 1 KiB buffer
Benchmark make_quicksort();  ///< explicit-stack quicksort, 512 elements
Benchmark make_bubble();     ///< bubble sort, 128 elements
Benchmark make_fibonacci();  ///< recursive fib(18)
Benchmark make_array();      ///< element-wise array arithmetic, 256 elements

/// Out-of-sample validation workload (NOT part of table1_suite() and NOT in
/// the calibration set): 24x24 integer matrix multiply. Its estimation error
/// measures how the calibrated weights generalise to unseen code.
Benchmark make_matrix();

/// The full Table-1 suite in the paper's row order.
const std::vector<Benchmark>& table1_suite();

}  // namespace workloads
