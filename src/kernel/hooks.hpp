#pragma once

namespace minisc {

class Process;

/// Where a process graph "node" (in the sense of the segmentation methodology)
/// occurs: channel accesses and timed waits. Process entry/exit are reported
/// separately through ProcessHook.
enum class NodeKind {
  kChannelRead,
  kChannelWrite,
  kTimedWait,
};

const char* to_string(NodeKind k);

/// Callback interface the performance-estimation library installs on the
/// simulator. The kernel itself has no notion of timing estimation; it only
/// reports, for the *running* process:
///
///  - node_reached: a channel access / timed wait is about to execute. The
///    hook may perform raw kernel waits (Simulator::raw_wait) here — this is
///    how segment delays are back-annotated *before* the communication.
///  - node_done: the access completed (for a blocking read, after the data
///    arrived). The hook typically starts the next segment here.
///  - process_started / process_finished: segment bookkeeping at the entry
///    and exit nodes of the process graph.
///
/// All calls happen on the coroutine stack of the affected process, inside
/// the evaluate phase.
class KernelHook {
 public:
  virtual ~KernelHook() = default;

  virtual void process_started(Process& p) = 0;
  virtual void process_finished(Process& p) = 0;
  /// Called at every scheduler dispatch, before `p` continues execution.
  /// Lets the estimation library point its per-operation accounting at the
  /// process about to run. Default: no-op.
  virtual void process_resumed(Process& p) { (void)p; }
  /// `label` identifies the channel (its name) or is "wait" for timed waits.
  virtual void node_reached(Process& p, NodeKind kind, const char* label) = 0;
  virtual void node_done(Process& p, NodeKind kind, const char* label) = 0;
};

}  // namespace minisc
