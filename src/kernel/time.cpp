#include "kernel/time.hpp"

#include <cmath>
#include <cstdio>

namespace minisc {

Time Time::from_ns(double v) {
  if (!(v > 0.0)) return Time::zero();
  const double ps = v * 1e3;
  const double max_ps = static_cast<double>(Time::max().to_ps());
  if (ps >= max_ps) return Time::max();
  return Time::ps(static_cast<std::uint64_t>(std::llround(ps)));
}

std::string Time::str() const {
  struct Unit {
    const char* name;
    double div;
  };
  static constexpr Unit kUnits[] = {
      {"s", 1e12}, {"ms", 1e9}, {"us", 1e6}, {"ns", 1e3}, {"ps", 1.0}};
  const double v = static_cast<double>(ps_);
  for (const auto& u : kUnits) {
    if (v >= u.div || u.div == 1.0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g %s", v / u.div, u.name);
      return buf;
    }
  }
  return "0 ps";
}

}  // namespace minisc
