#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace minisc {

/// Simulated time, picosecond resolution (the role of SystemC's sc_time).
///
/// Internally a 64-bit unsigned picosecond count, which covers ~213 days of
/// simulated time — far beyond any experiment in this repository. All
/// arithmetic saturates at Time::max() rather than wrapping, so "infinitely
/// far in the future" comparisons stay correct.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time ps(std::uint64_t v) { return Time(v); }
  static constexpr Time ns(std::uint64_t v) { return Time(v * 1000u); }
  static constexpr Time us(std::uint64_t v) { return Time(v * 1000u * 1000u); }
  static constexpr Time ms(std::uint64_t v) {
    return Time(v * 1000u * 1000u * 1000u);
  }
  static constexpr Time sec(std::uint64_t v) {
    return Time(v * 1000u * 1000u * 1000u * 1000u);
  }

  /// Nearest-picosecond conversion from a real-valued nanosecond count.
  /// Negative inputs clamp to zero.
  static Time from_ns(double v);

  static constexpr Time zero() { return Time(0); }
  static constexpr Time max() {
    return Time(std::numeric_limits<std::uint64_t>::max());
  }

  constexpr std::uint64_t to_ps() const { return ps_; }
  constexpr double to_ns_d() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double to_us_d() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double to_ms_d() const { return static_cast<double>(ps_) / 1e9; }

  constexpr bool is_zero() const { return ps_ == 0; }

  friend constexpr auto operator<=>(const Time&, const Time&) = default;

  constexpr Time& operator+=(Time rhs) {
    ps_ = (ps_ > max().ps_ - rhs.ps_) ? max().ps_ : ps_ + rhs.ps_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ps_ = (rhs.ps_ > ps_) ? 0 : ps_ - rhs.ps_;
    return *this;
  }

  friend constexpr Time operator+(Time a, Time b) { return a += b; }
  /// Saturating subtraction: a - b is zero when b > a.
  friend constexpr Time operator-(Time a, Time b) { return a -= b; }

  friend constexpr Time operator*(Time a, std::uint64_t k) {
    if (k != 0 && a.ps_ > max().ps_ / k) return max();
    return Time(a.ps_ * k);
  }

  /// Human-readable rendering with an auto-selected unit ("12.5 us").
  std::string str() const;

 private:
  explicit constexpr Time(std::uint64_t v) : ps_(v) {}
  std::uint64_t ps_ = 0;
};

}  // namespace minisc
