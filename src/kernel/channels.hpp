#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <utility>

#include "kernel/simulator.hpp"

namespace minisc {

namespace detail {

/// RAII guard that reports a channel access to the installed kernel hook:
/// node_reached on entry (before any blocking), node_done on exit (after the
/// access completed). This is the mechanism by which the estimation library
/// sees every node of the process graph without any change to user code.
class NodeScope {
 public:
  NodeScope(NodeKind kind, const char* label) : kind_(kind), label_(label) {
    Simulator& sim = Simulator::current();
    hook_ = sim.hook();
    if (hook_ != nullptr && sim.in_process_context()) {
      proc_ = &sim.current_process();
      hook_->node_reached(*proc_, kind_, label_);
    }
  }
  ~NodeScope() {
    if (proc_ != nullptr) hook_->node_done(*proc_, kind_, label_);
  }
  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;

 private:
  NodeKind kind_;
  const char* label_;
  KernelHook* hook_ = nullptr;
  Process* proc_ = nullptr;
};

}  // namespace detail

/// Bounded blocking FIFO with sc_fifo semantics: data written in delta cycle
/// d becomes visible to readers in delta d+1 (published in the update phase).
/// Supports any number of readers and writers. This is the KPN-style channel
/// of the specification methodology.
template <typename T>
class Fifo : private Updatable {
 public:
  explicit Fifo(std::string name, std::size_t capacity = 16)
      : name_(std::move(name)),
        capacity_(capacity),
        data_written_(name_ + ".written"),
        data_read_(name_ + ".read") {
    if (capacity_ == 0) {
      // An assert would vanish in release builds and every write would then
      // block forever; reject the configuration loudly instead.
      throw SimError(SimError::Kind::kBadConfig,
                     "Fifo '" + name_ + "': capacity must be > 0");
    }
  }

  /// Blocking read; pops the oldest visible element.
  T read() {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    while (num_available() == 0) wait(data_written_);
    T v = std::move(buf_.front());
    buf_.pop_front();
    ++num_read_;
    request_update();
    return v;
  }

  /// Blocking read with a timeout: nullopt if nothing became visible within
  /// `timeout`. The clock starts after the node's hook callbacks (i.e. after
  /// any back-annotated segment delay), so the timeout is pure waiting-for-
  /// data time — the primitive for building loss-tolerant (resilient)
  /// consumers on top of unreliable producers.
  std::optional<T> read_for(Time timeout) {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    Simulator& sim = Simulator::current();
    const Time deadline = sim.now() + timeout;
    while (num_available() == 0) {
      const Time t = sim.now();
      if (t >= deadline) return std::nullopt;
      wait(data_written_, deadline - t);
    }
    T v = std::move(buf_.front());
    buf_.pop_front();
    ++num_read_;
    request_update();
    return v;
  }

  /// Blocking write; waits while the FIFO is full.
  void write(T v) {
    detail::NodeScope node(NodeKind::kChannelWrite, name_.c_str());
    while (num_free() == 0) wait(data_read_);
    buf_.push_back(std::move(v));
    ++num_written_;
    request_update();
  }

  /// Non-blocking read: false if nothing is visible yet.
  bool nb_read(T& out) {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    if (num_available() == 0) return false;
    out = std::move(buf_.front());
    buf_.pop_front();
    ++num_read_;
    request_update();
    return true;
  }

  /// Non-blocking write: false if the FIFO is full.
  bool nb_write(T v) {
    detail::NodeScope node(NodeKind::kChannelWrite, name_.c_str());
    if (num_free() == 0) return false;
    buf_.push_back(std::move(v));
    ++num_written_;
    request_update();
    return true;
  }

  /// Elements visible to readers (excludes same-delta writes).
  std::size_t num_available() const { return num_readable_ - num_read_; }
  /// Free slots (accounts for same-delta writes).
  std::size_t num_free() const {
    return capacity_ - num_readable_ - num_written_;
  }
  std::size_t capacity() const { return capacity_; }
  const std::string& name() const { return name_; }

 private:
  void update() override {
    if (num_read_ > 0) data_read_.notify_delta();
    if (num_written_ > 0) data_written_.notify_delta();
    num_readable_ = buf_.size();
    num_read_ = 0;
    num_written_ = 0;
  }

  std::string name_;
  std::size_t capacity_;
  std::deque<T> buf_;
  std::size_t num_readable_ = 0;  ///< visible to readers this delta
  std::size_t num_read_ = 0;      ///< reads performed this delta
  std::size_t num_written_ = 0;   ///< writes performed this delta
  Event data_written_;
  Event data_read_;
};

/// CSP-style rendezvous channel: read and write block until both parties are
/// present, then the value transfers and both continue. Multiple writers and
/// readers are served in arrival order.
template <typename T>
class Rendezvous {
 public:
  explicit Rendezvous(std::string name)
      : name_(std::move(name)),
        data_ready_(name_ + ".data"),
        data_taken_(name_ + ".ack"),
        slot_free_(name_ + ".free") {}

  void write(T v) {
    detail::NodeScope node(NodeKind::kChannelWrite, name_.c_str());
    while (slot_.has_value()) wait(slot_free_);
    slot_ = std::move(v);
    const std::uint64_t my_ticket = ++deposit_seq_;
    data_ready_.notify();
    // Wait until *our* deposit is consumed (another writer may deposit after
    // us once the slot frees up, so match on the ticket).
    while (consumed_seq_ < my_ticket) wait(data_taken_);
  }

  T read() {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    while (!slot_.has_value()) wait(data_ready_);
    T v = std::move(*slot_);
    slot_.reset();
    ++consumed_seq_;
    data_taken_.notify();
    slot_free_.notify();
    return v;
  }

  /// Blocking read with a timeout: nullopt if no writer showed up within
  /// `timeout` (same clock-start semantics as Fifo::read_for).
  std::optional<T> read_for(Time timeout) {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    Simulator& sim = Simulator::current();
    const Time deadline = sim.now() + timeout;
    while (!slot_.has_value()) {
      const Time t = sim.now();
      if (t >= deadline) return std::nullopt;
      wait(data_ready_, deadline - t);
    }
    T v = std::move(*slot_);
    slot_.reset();
    ++consumed_seq_;
    data_taken_.notify();
    slot_free_.notify();
    return v;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::optional<T> slot_;
  std::uint64_t deposit_seq_ = 0;
  std::uint64_t consumed_seq_ = 0;
  Event data_ready_;
  Event data_taken_;
  Event slot_free_;
};

/// sc_signal-like channel: write publishes in the update phase; readers see
/// the previous delta's value; value_changed fires as a delta notification
/// when the published value differs from the old one. This is the SR-style
/// channel of the specification methodology.
template <typename T>
class Signal : private Updatable {
 public:
  explicit Signal(std::string name, T initial = T{})
      : name_(std::move(name)),
        cur_(initial),
        next_(initial),
        value_changed_(name_ + ".changed") {}

  T read() const {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    return cur_;
  }

  void write(T v) {
    detail::NodeScope node(NodeKind::kChannelWrite, name_.c_str());
    next_ = std::move(v);
    request_update();
  }

  /// Blocks until the signal's published value changes, then returns it.
  T await_change() {
    detail::NodeScope node(NodeKind::kChannelRead, name_.c_str());
    wait(value_changed_);
    return cur_;
  }

  Event& value_changed() { return value_changed_; }
  const std::string& name() const { return name_; }

 private:
  void update() override {
    if (!(next_ == cur_)) {
      cur_ = next_;
      value_changed_.notify_delta();
    }
  }

  std::string name_;
  T cur_;
  T next_;
  Event value_changed_;

  // Signals are read outside process context (e.g. by testbench checks);
  // read() above is const but NodeScope needs the running process, which it
  // resolves safely to "no hook call" in that case.
};

}  // namespace minisc
