#pragma once

#include <ucontext.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "kernel/error.hpp"
#include "kernel/hooks.hpp"
#include "kernel/time.hpp"

namespace minisc {

class Simulator;
class Process;

/// Dynamic-sensitivity notification object (the role of sc_event).
///
/// An event has at most one pending (delta or timed) notification; an earlier
/// notification overrides a later one, and immediate notification overrides
/// both (SystemC semantics). Processes wait on events dynamically via
/// minisc::wait(Event&); there are no static sensitivity lists, matching the
/// specification methodology the estimation library assumes.
class Event {
 public:
  explicit Event(std::string name = "event");
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  /// Immediate notification: waiters become runnable in the current
  /// evaluation phase. Cancels any pending delta/timed notification.
  void notify();
  /// Notification at the end of the current delta cycle.
  void notify_delta();
  /// Timed notification after delay `t` (delta notification if t == 0).
  void notify(Time t);
  /// Cancels the pending notification, if any.
  void cancel();

  const std::string& name() const { return name_; }

 private:
  friend class Simulator;

  enum class Pending { kNone, kDelta, kTimed };

  struct Waiter {
    Process* proc;
    std::uint64_t wait_id;
  };

  void fire();

  std::string name_;
  std::vector<Waiter> waiters_;
  Pending pending_ = Pending::kNone;
  Time pending_time_;
  std::uint64_t generation_ = 0;  ///< invalidates queued timed notifications
};

/// Base for primitive channels that defer state publication to the update
/// phase (the role of sc_prim_channel::request_update / update).
class Updatable {
 public:
  virtual ~Updatable() = default;

 protected:
  /// Schedules update() to run in the current delta's update phase.
  void request_update();
  virtual void update() = 0;

 private:
  friend class Simulator;
  bool update_pending_ = false;
};

/// A simulation process: a stackful coroutine executing a user body
/// (the role of an SC_THREAD). Created via Simulator::spawn().
class Process {
 public:
  const std::string& name() const { return name_; }
  std::size_t id() const { return id_; }
  bool terminated() const { return state_ == State::kTerminated; }

  /// Times this process crash-restarted (Simulator::kill_and_restart).
  std::uint64_t restart_count() const { return restart_count_; }

  /// Scratch slot for layered libraries (the estimation library stores its
  /// per-process context here to avoid map lookups on the hot path).
  void* user_data = nullptr;

 private:
  friend class Simulator;
  friend class Event;

  enum class State { kCreated, kReady, kRunning, kWaiting, kTerminated };

  Process(Simulator& sim, std::string name, std::function<void()> body,
          std::size_t id, std::size_t stack_bytes);

  static void trampoline(unsigned hi, unsigned lo);
  void run_body();

  Simulator& sim_;
  std::string name_;
  std::function<void()> body_;
  std::size_t id_;
  std::vector<std::byte> stack_;
  ucontext_t ctx_{};
  State state_ = State::kCreated;
  std::uint64_t wait_id_ = 0;  ///< bumped on every wake; stale wakeups ignored
  bool started_ = false;       ///< body entered at least once
  bool kill_requested_ = false;
  bool crash_requested_ = false;  ///< fault-injection kill (may restart)
  std::optional<Time> restart_delay_;
  std::uint64_t restart_count_ = 0;
  /// Diagnostics only: what the process is blocked on while kWaiting. The
  /// event pointer is valid as long as the event outlives the wait — the
  /// same lifetime rule the waiter list already imposes.
  const Event* waiting_event_ = nullptr;
  Time wake_at_ = Time::max();  ///< pending timer deadline (max = none)
  std::exception_ptr error_;
};

/// Reasons Simulator::run() returns.
enum class StopReason {
  kFinished,   ///< every process terminated
  kTimeLimit,  ///< the supplied horizon was reached
  kDeadlock,   ///< live processes remain but nothing can ever wake them
  kStopped,    ///< Simulator::stop() was called from a process
};

const char* to_string(StopReason r);

/// Execution budgets that convert hangs, livelocks and runaway simulations
/// into structured SimError diagnostics instead of a frozen process. All
/// budgets are disabled by default; a zero / Time::max() value means
/// "unlimited". Enforcement happens in the scheduler loop, so a tripped
/// budget reports the state of every live process (what each is blocked on)
/// at the moment of failure.
struct Watchdog {
  /// Delta cycles allowed at a single time instant (catches notify_delta
  /// ping-pong storms that keep the simulation at one instant forever).
  std::uint64_t max_deltas_per_instant = 0;
  /// Process dispatches allowed at a single instant (catches immediate-notify
  /// livelocks that never even complete a delta cycle).
  std::uint64_t max_dispatches_per_instant = 0;
  /// Host wall-clock budget for a single run() call, in milliseconds
  /// (catches anything else that makes the simulator spin).
  std::uint64_t wall_clock_ms = 0;
  /// Simulated-time budget: unlike run(limit), exceeding it is an error,
  /// not a pause — for specs that must converge before a known horizon.
  Time sim_time_budget = Time::max();
};

/// Ambient per-run wall-clock budget, installed around one campaign run.
/// A campaign driver cannot reach inside its run function to configure the
/// Watchdog of a Simulator the function builds for itself — so instead every
/// Simulator on this thread consults the innermost active RunBudgetScope
/// from the same amortised wall-clock check the Watchdog uses (the scheduler
/// loop between dispatches plus the in-segment probe). Exceeding the budget
/// throws the usual kWallClockBudget SimError, converting a hung seed into a
/// failed-with-timeout record instead of a stalled campaign. Scopes are
/// thread_local and nest with the tighter deadline winning; budget_ms == 0
/// makes the scope a no-op, and an inactive scope costs the check one
/// thread_local read.
class RunBudgetScope {
 public:
  explicit RunBudgetScope(std::uint64_t budget_ms);
  ~RunBudgetScope();
  RunBudgetScope(const RunBudgetScope&) = delete;
  RunBudgetScope& operator=(const RunBudgetScope&) = delete;

  /// True when any scope on this thread holds a deadline.
  static bool active();
  /// True when the innermost active deadline has passed.
  static bool expired();
  /// The budget (ms) behind the innermost active deadline — diagnostics.
  static std::uint64_t budget_ms();

 private:
  std::chrono::steady_clock::time_point saved_deadline_;
  std::uint64_t saved_budget_ms_ = 0;
};

/// The discrete-event scheduler (the role of the SystemC kernel).
///
/// Executes the classic evaluate / update / delta-notify cycle, then advances
/// time to the earliest pending timed notification. Exactly one Simulator may
/// exist per thread at a time; it is reachable via Simulator::current() for
/// the benefit of channels and the free wait()/now() functions.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  static Simulator& current();
  static Simulator* current_or_null();

  /// Creates a process; it becomes runnable in the next evaluation phase
  /// (immediately, if called from inside a running process).
  Process& spawn(std::string name, std::function<void()> body,
                 std::size_t stack_bytes = 256 * 1024);

  /// Runs until every process terminates, `limit` is reached, deadlock, or
  /// stop(). May be called repeatedly to continue after kTimeLimit.
  StopReason run(Time limit = Time::max());

  Time now() const { return now_; }
  std::uint64_t delta_count() const { return delta_count_; }

  /// Requests the current run() to return after the ongoing delta completes.
  void stop() { stop_requested_ = true; }

  /// Installs execution budgets; a tripped budget makes run() throw a
  /// SimError naming every live process and what it is blocked on.
  void set_watchdog(const Watchdog& w) { watchdog_ = w; }
  const Watchdog& watchdog() const { return watchdog_; }

  /// Amortised wall-clock budget probe callable from inside a running
  /// process (the estimation library calls it from the annotation hot path).
  /// The scheduler loop only checks the budget between dispatches, so a hang
  /// *inside* one compute segment would otherwise never trip it. Throws the
  /// same kWallClockBudget SimError as the scheduler check; thrown on the
  /// process's coroutine stack, it unwinds the body and propagates out of
  /// run(). No-op outside process context or without a wall-clock budget.
  void probe_wall_clock() {
    if (running_ == nullptr) return;
    check_wall_clock();
  }

  // ---- fault-injection primitives ----

  /// Crash-kills a live process: its coroutine stack unwinds (running the
  /// destructors of every frame) at its next dispatch opportunity —
  /// immediately when called on the running process. The process terminates;
  /// it does NOT count as a clean exit (no process_finished hook).
  void kill(Process& p);
  /// Like kill(), but the process body re-runs from the top `restart_after`
  /// later — the crash-and-restart model of an RTOS respawning a task.
  void kill_and_restart(Process& p, Time restart_after);

  /// The first live process with this name, or nullptr.
  Process* find_process(const std::string& name);

  /// Installs the estimation-library callback (single hook; pass nullptr to
  /// remove). The kernel never times anything itself.
  void set_hook(KernelHook* hook) { hook_ = hook; }
  KernelHook* hook() const { return hook_; }

  // ---- process-context operations (free functions forward here) ----

  /// Timed wait WITHOUT hook callbacks. This is the primitive the estimation
  /// hook itself uses to back-annotate segment delays; user code should call
  /// minisc::wait(Time) instead, which reports a kTimedWait node.
  void raw_wait(Time t);
  /// Hooked timed wait: reports node_reached/node_done around the wait.
  void wait_for(Time t);
  /// Blocks until `e` is notified (no hooks; channels use this internally).
  void wait_on(Event& e);
  /// Blocks until `e` or the timeout; true if the event fired first.
  bool wait_on(Event& e, Time timeout);

  /// The process whose body is executing. Asserts if called from outside.
  Process& current_process();
  bool in_process_context() const { return running_ != nullptr; }

  /// After run() returned kDeadlock: names of the permanently blocked
  /// processes.
  std::vector<std::string> blocked_process_names() const;

  /// State of every live process — name, scheduler state, and what it is
  /// blocked on (event name or timer deadline). This is the payload of every
  /// watchdog SimError and the detail behind kDeadlock.
  std::vector<ProcessDiagnostic> process_diagnostics() const;

  // ---- execution tracing (untimed-vs-timed comparisons, Fig. 5) ----

  struct ExecRecord {
    Time time;
    std::uint64_t delta;
    std::string process;
  };
  void enable_exec_trace(bool on) { exec_trace_enabled_ = on; }
  const std::vector<ExecRecord>& exec_trace() const { return exec_trace_; }

 private:
  friend class Event;
  friend class Updatable;
  friend class Process;

  struct TimerEntry {
    Time t;
    std::uint64_t seq;  ///< tie-break: FIFO among equal times
    // Exactly one of the two targets is set.
    Event* event = nullptr;
    std::uint64_t event_generation = 0;
    Process* proc = nullptr;
    std::uint64_t proc_wait_id = 0;

    bool operator>(const TimerEntry& o) const {
      return t != o.t ? t > o.t : seq > o.seq;
    }
  };

  void make_runnable(Process& p);
  void dispatch(Process& p);
  /// Suspends the running process and returns control to the scheduler.
  void yield_to_kernel();
  void schedule_timer(TimerEntry e);
  void kill_all_processes();
  bool fire_timer_entry(const TimerEntry& e);  ///< true if it woke something
  void kill_impl(Process& p, std::optional<Time> restart_after);
  /// Parks a crashed process until its restart time; false on teardown.
  bool wait_for_restart(Process& p, Time delay);
  /// Periodic wall-clock budget check (amortised: probes the host clock
  /// every kWallClockCheckStride calls).
  void check_wall_clock();
  [[noreturn]] void throw_watchdog(SimError::Kind kind, std::string summary);

  ucontext_t main_ctx_{};
  std::vector<std::unique_ptr<Process>> processes_;
  std::deque<Process*> runnable_;
  std::vector<Event*> delta_events_;
  std::vector<Updatable*> update_queue_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  Process* running_ = nullptr;
  Time now_;
  std::uint64_t delta_count_ = 0;
  std::uint64_t timer_seq_ = 0;
  bool stop_requested_ = false;
  KernelHook* hook_ = nullptr;
  bool exec_trace_enabled_ = false;
  std::vector<ExecRecord> exec_trace_;

  // ---- watchdog bookkeeping ----
  static constexpr std::uint64_t kWallClockCheckStride = 1024;
  Watchdog watchdog_;
  std::uint64_t deltas_this_instant_ = 0;
  std::uint64_t dispatches_this_instant_ = 0;
  std::uint64_t wall_clock_countdown_ = kWallClockCheckStride;
  std::chrono::steady_clock::time_point run_started_;
};

// ---- SystemC-style free functions (valid in process context only) ----

/// Timed wait; reports a kTimedWait node to the installed hook. This is the
/// wait(sc_time) of the specification methodology.
void wait(Time t);
/// Dynamic wait on an event (internal-channel use; the methodology forbids
/// raw events in user processes).
void wait(Event& e);
/// Wait with timeout; true if the event fired before the timeout.
bool wait(Event& e, Time timeout);
/// Current simulated time.
Time now();

}  // namespace minisc
