#include "kernel/error.hpp"

#include <sstream>

namespace minisc {

const char* to_string(SimError::Kind k) {
  switch (k) {
    case SimError::Kind::kDeltaStorm:
      return "delta_storm";
    case SimError::Kind::kDispatchStorm:
      return "dispatch_storm";
    case SimError::Kind::kWallClockBudget:
      return "wall_clock_budget";
    case SimError::Kind::kSimTimeBudget:
      return "sim_time_budget";
    case SimError::Kind::kNoSimulator:
      return "no_simulator";
    case SimError::Kind::kNoProcessContext:
      return "no_process_context";
    case SimError::Kind::kBadConfig:
      return "bad_config";
    case SimError::Kind::kJournalCorrupt:
      return "journal_corrupt";
    case SimError::Kind::kLeaseConflict:
      return "lease_conflict";
    case SimError::Kind::kShardVersionMismatch:
      return "shard_version_mismatch";
    case SimError::Kind::kMergeIncomplete:
      return "merge_incomplete";
    case SimError::Kind::kIoError:
      return "io_error";
    case SimError::Kind::kShardQuarantined:
      return "shard_quarantined";
  }
  return "?";
}

bool is_transient(SimError::Kind k) {
  return k == SimError::Kind::kWallClockBudget ||
         k == SimError::Kind::kLeaseConflict;
}

std::string ProcessDiagnostic::str() const {
  std::string out = name;
  out += " [";
  out += state;
  out += "]";
  if (!blocked_on.empty()) {
    out += " blocked on ";
    out += blocked_on;
  }
  if (restarts > 0) {
    out += " (restarts: " + std::to_string(restarts) + ")";
  }
  return out;
}

std::string SimError::format(Kind kind, const std::string& summary,
                             Time sim_time, std::uint64_t delta,
                             const std::vector<ProcessDiagnostic>& processes) {
  std::ostringstream os;
  os << "minisc::SimError(" << to_string(kind) << "): " << summary;
  if (kind != Kind::kNoSimulator && kind != Kind::kNoProcessContext &&
      kind != Kind::kBadConfig && kind != Kind::kJournalCorrupt &&
      kind != Kind::kLeaseConflict && kind != Kind::kShardVersionMismatch &&
      kind != Kind::kMergeIncomplete && kind != Kind::kIoError &&
      kind != Kind::kShardQuarantined) {
    os << " at t=" << sim_time.str() << " delta=" << delta;
  }
  for (const ProcessDiagnostic& p : processes) {
    os << "\n  - " << p.str();
  }
  return os.str();
}

SimError::SimError(Kind kind, std::string summary, Time sim_time,
                   std::uint64_t delta,
                   std::vector<ProcessDiagnostic> processes)
    : std::runtime_error(format(kind, summary, sim_time, delta, processes)),
      kind_(kind),
      sim_time_(sim_time),
      delta_(delta),
      processes_(std::move(processes)) {}

}  // namespace minisc
