#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>

#include "kernel/simulator.hpp"
#include "kernel/time.hpp"

namespace minisc {
namespace detail {

/// splitmix64 step — the same fully-specified generator the fault library
/// uses for scenario draws. Kept local to the kernel so backoff jitter never
/// drags in a dependency (or, worse, ambient randomness like rand() or
/// random_device, which would make retries perturb campaign reproducibility).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Uniform double in [0, 1) from one splitmix64 draw.
inline double splitmix_uniform(std::uint64_t& state) {
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

}  // namespace detail

/// Exponential-backoff schedule for retry_with_backoff. The delay before
/// attempt k+1 is initial * factor^k, capped at max_delay; simulated time is
/// spent via minisc::wait, so the retries are visible to the estimation hook
/// as ordinary timed-wait nodes.
///
/// Jitter is deterministic: with jitter > 0 each delay is scaled by a factor
/// drawn uniformly from [1 - jitter, 1 + jitter] out of a splitmix64 stream
/// seeded with `jitter_seed` — the caller supplies the seed (typically the
/// campaign seed mixed with a retry-site id), so the same seed always yields
/// the same backoff timeline and retries never perturb reproducibility.
struct BackoffPolicy {
  std::size_t max_attempts = 8;
  Time initial = Time::us(1);
  double factor = 2.0;
  Time max_delay = Time::ms(1);
  double jitter = 0.0;  ///< half-width of the scale interval, in [0, 1)
  std::uint64_t jitter_seed = 0;
};

/// Retries `attempt` (a callable returning true on success) up to
/// policy.max_attempts times, waiting the backoff delay between attempts.
/// Returns true as soon as an attempt succeeds, false when the budget is
/// exhausted. Must be called from process context. This is the canonical
/// recovery idiom for transient faults: pair with Fifo::read_for or
/// nb_read/nb_write to ride out outage windows.
template <typename F>
bool retry_with_backoff(F&& attempt, const BackoffPolicy& policy = {}) {
  Time delay = policy.initial;
  std::uint64_t jitter_state = policy.jitter_seed;
  for (std::size_t k = 0; k < policy.max_attempts; ++k) {
    if (attempt()) return true;
    if (k + 1 == policy.max_attempts) break;  // no wait after the last try
    Time waited = delay;
    if (policy.jitter > 0.0) {
      const double scale =
          1.0 - policy.jitter +
          2.0 * policy.jitter * detail::splitmix_uniform(jitter_state);
      waited = Time::from_ns(delay.to_ns_d() * scale);
    }
    wait(waited);
    const double next_ns = delay.to_ns_d() * policy.factor;
    delay = Time::from_ns(next_ns);
    if (delay > policy.max_delay) delay = policy.max_delay;
  }
  return false;
}

}  // namespace minisc
