#pragma once

#include <cstddef>
#include <utility>

#include "kernel/simulator.hpp"
#include "kernel/time.hpp"

namespace minisc {

/// Exponential-backoff schedule for retry_with_backoff. The delay before
/// attempt k+1 is initial * factor^k, capped at max_delay; simulated time is
/// spent via minisc::wait, so the retries are visible to the estimation hook
/// as ordinary timed-wait nodes.
struct BackoffPolicy {
  std::size_t max_attempts = 8;
  Time initial = Time::us(1);
  double factor = 2.0;
  Time max_delay = Time::ms(1);
};

/// Retries `attempt` (a callable returning true on success) up to
/// policy.max_attempts times, waiting the backoff delay between attempts.
/// Returns true as soon as an attempt succeeds, false when the budget is
/// exhausted. Must be called from process context. This is the canonical
/// recovery idiom for transient faults: pair with Fifo::read_for or
/// nb_read/nb_write to ride out outage windows.
template <typename F>
bool retry_with_backoff(F&& attempt, const BackoffPolicy& policy = {}) {
  Time delay = policy.initial;
  for (std::size_t k = 0; k < policy.max_attempts; ++k) {
    if (attempt()) return true;
    if (k + 1 == policy.max_attempts) break;  // no wait after the last try
    wait(delay);
    const double next_ns = delay.to_ns_d() * policy.factor;
    delay = Time::from_ns(next_ns);
    if (delay > policy.max_delay) delay = policy.max_delay;
  }
  return false;
}

}  // namespace minisc
