#include "kernel/simulator.hpp"

#include <cassert>
#include <cstdint>
#include <stdexcept>

namespace minisc {

namespace {

thread_local Simulator* g_current = nullptr;

/// Thrown inside a process's wait to unwind its stack when the simulator is
/// destroyed while the process is still live (the role of
/// sc_unwind_exception). Never escapes the trampoline.
struct KillUnwind {};

/// Thrown inside a process to deliver a fault-injection crash
/// (Simulator::kill / kill_and_restart): unwinds the coroutine stack running
/// destructors, then the trampoline either terminates the process or parks
/// it for a restart. Never escapes the trampoline. User code must not
/// swallow it with a bare catch(...).
struct CrashUnwind {};

}  // namespace

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::kChannelRead:
      return "read";
    case NodeKind::kChannelWrite:
      return "write";
    case NodeKind::kTimedWait:
      return "wait";
  }
  return "?";
}

const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kFinished:
      return "finished";
    case StopReason::kTimeLimit:
      return "time_limit";
    case StopReason::kDeadlock:
      return "deadlock";
    case StopReason::kStopped:
      return "stopped";
  }
  return "?";
}

// ---------------------------------------------------------------- Event ----

Event::Event(std::string name) : name_(std::move(name)) {}

void Event::fire() {
  auto& sim = Simulator::current();
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (const Waiter& w : waiters) {
    if (w.proc->state_ == Process::State::kWaiting &&
        w.proc->wait_id_ == w.wait_id) {
      sim.make_runnable(*w.proc);
    }
  }
}

void Event::notify() {
  cancel();
  fire();
}

void Event::notify_delta() {
  if (pending_ == Pending::kDelta) return;
  if (pending_ == Pending::kTimed) cancel();
  pending_ = Pending::kDelta;
  Simulator::current().delta_events_.push_back(this);
}

void Event::notify(Time t) {
  if (t.is_zero()) {
    notify_delta();
    return;
  }
  auto& sim = Simulator::current();
  const Time at = sim.now() + t;
  if (pending_ == Pending::kDelta) return;  // delta is always earlier
  if (pending_ == Pending::kTimed && pending_time_ <= at) return;
  cancel();
  pending_ = Pending::kTimed;
  pending_time_ = at;
  Simulator::TimerEntry e;
  e.t = at;
  e.event = this;
  e.event_generation = generation_;
  sim.schedule_timer(e);
}

void Event::cancel() {
  // Delta entries are filtered at fire time via the pending_ flag; timed
  // entries via the generation counter. Either way, bumping the generation
  // and clearing pending_ invalidates everything in flight.
  ++generation_;
  pending_ = Pending::kNone;
}

// ------------------------------------------------------------ Updatable ----

void Updatable::request_update() {
  if (update_pending_) return;
  update_pending_ = true;
  Simulator::current().update_queue_.push_back(this);
}

// -------------------------------------------------------------- Process ----

Process::Process(Simulator& sim, std::string name, std::function<void()> body,
                 std::size_t id, std::size_t stack_bytes)
    : sim_(sim),
      name_(std::move(name)),
      body_(std::move(body)),
      id_(id),
      stack_(stack_bytes) {
  getcontext(&ctx_);
  ctx_.uc_stack.ss_sp = stack_.data();
  ctx_.uc_stack.ss_size = stack_.size();
  ctx_.uc_link = nullptr;  // the trampoline swaps back explicitly
  const auto ptr = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&ctx_, reinterpret_cast<void (*)()>(&Process::trampoline), 2,
              static_cast<unsigned>(ptr >> 32),
              static_cast<unsigned>(ptr & 0xffffffffu));
}

void Process::trampoline(unsigned hi, unsigned lo) {
  const auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
                   static_cast<std::uintptr_t>(lo);
  reinterpret_cast<Process*>(ptr)->run_body();
}

void Process::run_body() {
  for (;;) {
    bool crashed = false;
    if (crash_requested_) {
      // Crashed before the (re)started body ever ran: nothing to unwind.
      crash_requested_ = false;
      crashed = true;
    } else {
      if (KernelHook* h = sim_.hook()) h->process_started(*this);
      bool clean_exit = false;
      try {
        body_();
        clean_exit = true;
      } catch (const KillUnwind&) {
        // Simulator teardown: the stack is now unwound; just terminate.
      } catch (const CrashUnwind&) {
        crash_requested_ = false;
        crashed = true;
      } catch (...) {
        error_ = std::current_exception();
      }
      if (clean_exit) {
        if (KernelHook* h = sim_.hook()) h->process_finished(*this);
      }
    }
    if (crashed && restart_delay_.has_value()) {
      const Time d = *restart_delay_;
      restart_delay_.reset();
      ++restart_count_;
      // Park until the restart time, then re-run the body from the top
      // (false means the simulator tore down while we were parked).
      if (sim_.wait_for_restart(*this, d)) continue;
    }
    break;
  }
  state_ = State::kTerminated;
  // Never returns: a terminated process is never dispatched again.
  while (true) swapcontext(&ctx_, &sim_.main_ctx_);
}

// ------------------------------------------------------------ Simulator ----

Simulator::Simulator() {
  if (g_current != nullptr) {
    throw std::logic_error("minisc: only one Simulator per thread");
  }
  g_current = this;
}

Simulator::~Simulator() {
  kill_all_processes();
  g_current = nullptr;
}

Simulator& Simulator::current() {
  if (g_current == nullptr) {
    // A release-build assert here would return a dangling reference and
    // silently corrupt the run; fail loudly instead.
    throw SimError(SimError::Kind::kNoSimulator,
                   "no Simulator exists on this thread");
  }
  return *g_current;
}

Simulator* Simulator::current_or_null() { return g_current; }

Process& Simulator::spawn(std::string name, std::function<void()> body,
                          std::size_t stack_bytes) {
  processes_.push_back(std::unique_ptr<Process>(
      new Process(*this, std::move(name), std::move(body), processes_.size(),
                  stack_bytes)));
  Process& p = *processes_.back();
  make_runnable(p);
  return p;
}

void Simulator::make_runnable(Process& p) {
  assert(p.state_ != Process::State::kTerminated);
  p.state_ = Process::State::kReady;
  runnable_.push_back(&p);
}

void Simulator::dispatch(Process& p) {
  if (p.state_ != Process::State::kReady) return;  // woken twice in one delta
  p.state_ = Process::State::kRunning;
  p.started_ = true;
  ++p.wait_id_;  // invalidate stale timer/event wakeups
  p.waiting_event_ = nullptr;
  p.wake_at_ = Time::max();
  running_ = &p;
  if (exec_trace_enabled_) {
    exec_trace_.push_back({now_, delta_count_, p.name()});
  }
  if (hook_ != nullptr) hook_->process_resumed(p);
  swapcontext(&main_ctx_, &p.ctx_);
  running_ = nullptr;
  if (p.error_) {
    auto err = p.error_;
    p.error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Simulator::yield_to_kernel() {
  Process& p = *running_;
  swapcontext(&p.ctx_, &main_ctx_);
  // Resumed. During teardown the kernel resumes us one last time to unwind.
  if (p.kill_requested_) throw KillUnwind{};
  if (p.crash_requested_) {
    p.crash_requested_ = false;
    throw CrashUnwind{};
  }
}

void Simulator::schedule_timer(TimerEntry e) {
  e.seq = ++timer_seq_;
  timers_.push(e);
}

bool Simulator::fire_timer_entry(const TimerEntry& e) {
  if (e.event != nullptr) {
    Event& ev = *e.event;
    if (ev.generation_ != e.event_generation ||
        ev.pending_ != Event::Pending::kTimed) {
      return false;  // cancelled or superseded
    }
    ev.pending_ = Event::Pending::kNone;
    ++ev.generation_;
    ev.fire();
    return true;
  }
  Process& p = *e.proc;
  if (p.state_ == Process::State::kWaiting && p.wait_id_ == e.proc_wait_id) {
    make_runnable(p);
    return true;
  }
  return false;
}

StopReason Simulator::run(Time limit) {
  stop_requested_ = false;
  run_started_ = std::chrono::steady_clock::now();
  wall_clock_countdown_ = kWallClockCheckStride;
  while (true) {
    // ---- evaluate phase ----
    while (!runnable_.empty()) {
      Process* p = runnable_.front();
      runnable_.pop_front();
      ++dispatches_this_instant_;
      if (watchdog_.max_dispatches_per_instant != 0 &&
          dispatches_this_instant_ > watchdog_.max_dispatches_per_instant) {
        throw_watchdog(
            SimError::Kind::kDispatchStorm,
            std::to_string(dispatches_this_instant_) +
                " dispatches at one instant (budget " +
                std::to_string(watchdog_.max_dispatches_per_instant) +
                "): immediate-notification livelock");
      }
      check_wall_clock();
      dispatch(*p);
    }
    // ---- update phase ----
    {
      auto updates = std::move(update_queue_);
      update_queue_.clear();
      for (Updatable* u : updates) {
        u->update_pending_ = false;
        u->update();
      }
    }
    // ---- delta-notification phase ----
    {
      auto deltas = std::move(delta_events_);
      delta_events_.clear();
      for (Event* ev : deltas) {
        if (ev->pending_ != Event::Pending::kDelta) continue;  // cancelled
        ev->pending_ = Event::Pending::kNone;
        ++ev->generation_;
        ev->fire();
      }
    }
    ++delta_count_;
    ++deltas_this_instant_;
    if (watchdog_.max_deltas_per_instant != 0 &&
        deltas_this_instant_ > watchdog_.max_deltas_per_instant) {
      throw_watchdog(SimError::Kind::kDeltaStorm,
                     std::to_string(deltas_this_instant_) +
                         " delta cycles at one instant (budget " +
                         std::to_string(watchdog_.max_deltas_per_instant) +
                         "): delta-notification livelock");
    }
    check_wall_clock();
    if (!runnable_.empty() || !update_queue_.empty()) continue;
    if (stop_requested_) return StopReason::kStopped;

    // ---- timed phase ----
    bool advanced = false;
    while (!timers_.empty()) {
      const TimerEntry e = timers_.top();
      if (e.t > limit) break;
      timers_.pop();
      // Peek-fire everything at the earliest valid time point.
      if (e.event != nullptr &&
          (e.event->generation_ != e.event_generation ||
           e.event->pending_ != Event::Pending::kTimed)) {
        continue;  // stale entry; keep scanning
      }
      if (e.proc != nullptr && (e.proc->state_ != Process::State::kWaiting ||
                                e.proc->wait_id_ != e.proc_wait_id)) {
        continue;  // stale entry
      }
      if (e.t > now_) {
        deltas_this_instant_ = 0;
        dispatches_this_instant_ = 0;
      }
      now_ = e.t;
      if (now_ > watchdog_.sim_time_budget) {
        throw_watchdog(SimError::Kind::kSimTimeBudget,
                       "simulated time exceeded budget " +
                           watchdog_.sim_time_budget.str());
      }
      fire_timer_entry(e);
      advanced = true;
      // Drain co-scheduled entries at the same instant.
      while (!timers_.empty() && timers_.top().t == now_) {
        const TimerEntry e2 = timers_.top();
        timers_.pop();
        fire_timer_entry(e2);
      }
      break;
    }
    if (advanced) continue;

    // Nothing left at or before the horizon.
    if (!timers_.empty()) {
      if (limit > now_) {
        deltas_this_instant_ = 0;
        dispatches_this_instant_ = 0;
      }
      now_ = limit;
      if (now_ > watchdog_.sim_time_budget) {
        throw_watchdog(SimError::Kind::kSimTimeBudget,
                       "simulated time exceeded budget " +
                           watchdog_.sim_time_budget.str());
      }
      return StopReason::kTimeLimit;
    }
    bool any_live = false;
    for (const auto& p : processes_) {
      if (!p->terminated()) any_live = true;
    }
    return any_live ? StopReason::kDeadlock : StopReason::kFinished;
  }
}

std::vector<std::string> Simulator::blocked_process_names() const {
  std::vector<std::string> out;
  for (const auto& p : processes_) {
    if (!p->terminated()) out.push_back(p->name());
  }
  return out;
}

std::vector<ProcessDiagnostic> Simulator::process_diagnostics() const {
  std::vector<ProcessDiagnostic> out;
  for (const auto& p : processes_) {
    if (p->terminated()) continue;
    ProcessDiagnostic d;
    d.name = p->name();
    d.restarts = p->restart_count_;
    switch (p->state_) {
      case Process::State::kCreated:
        d.state = "created";
        break;
      case Process::State::kReady:
        d.state = "ready";
        break;
      case Process::State::kRunning:
        d.state = "running";
        break;
      case Process::State::kWaiting:
        d.state = "waiting";
        break;
      case Process::State::kTerminated:
        d.state = "terminated";
        break;
    }
    if (p->state_ == Process::State::kWaiting) {
      if (p->waiting_event_ != nullptr) {
        d.blocked_on = "event " + p->waiting_event_->name();
        if (p->wake_at_ != Time::max()) {
          d.blocked_on += " (timeout @ " + p->wake_at_.str() + ")";
        }
      } else if (p->wake_at_ != Time::max()) {
        d.blocked_on = "timer @ " + p->wake_at_.str();
      }
    }
    out.push_back(std::move(d));
  }
  return out;
}

void Simulator::kill(Process& p) { kill_impl(p, std::nullopt); }

void Simulator::kill_and_restart(Process& p, Time restart_after) {
  kill_impl(p, restart_after);
}

void Simulator::kill_impl(Process& p, std::optional<Time> restart_after) {
  if (p.terminated()) return;
  p.restart_delay_ = restart_after;
  if (&p == running_) {
    // Self-crash (e.g. a fault-injection hook on this process's own stack):
    // unwind right here. run_body catches and handles the restart.
    throw CrashUnwind{};
  }
  p.crash_requested_ = true;
  if (p.state_ == Process::State::kWaiting) make_runnable(p);
  // kReady / kCreated: the flag is observed at the next dispatch.
}

Process* Simulator::find_process(const std::string& name) {
  for (const auto& p : processes_) {
    if (!p->terminated() && p->name() == name) return p.get();
  }
  return nullptr;
}

bool Simulator::wait_for_restart(Process& p, Time delay) {
  TimerEntry e;
  e.t = now_ + delay;
  e.proc = &p;
  e.proc_wait_id = p.wait_id_;
  schedule_timer(e);
  p.state_ = Process::State::kWaiting;
  p.wake_at_ = e.t;
  swapcontext(&p.ctx_, &main_ctx_);
  // Resumed by the restart timer — or by teardown, which must not restart.
  return !p.kill_requested_;
}

namespace {
// Innermost active per-run deadline on this thread (RunBudgetScope).
thread_local std::chrono::steady_clock::time_point tl_run_deadline =
    std::chrono::steady_clock::time_point::max();
thread_local std::uint64_t tl_run_budget_ms = 0;
}  // namespace

RunBudgetScope::RunBudgetScope(std::uint64_t budget_ms)
    : saved_deadline_(tl_run_deadline), saved_budget_ms_(tl_run_budget_ms) {
  if (budget_ms == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  // Nested scopes: the tighter deadline stays in force.
  if (deadline < tl_run_deadline) {
    tl_run_deadline = deadline;
    tl_run_budget_ms = budget_ms;
  }
}

RunBudgetScope::~RunBudgetScope() {
  tl_run_deadline = saved_deadline_;
  tl_run_budget_ms = saved_budget_ms_;
}

bool RunBudgetScope::active() {
  return tl_run_deadline != std::chrono::steady_clock::time_point::max();
}

bool RunBudgetScope::expired() {
  return active() && std::chrono::steady_clock::now() > tl_run_deadline;
}

std::uint64_t RunBudgetScope::budget_ms() { return tl_run_budget_ms; }

void Simulator::check_wall_clock() {
  const bool have_watchdog = watchdog_.wall_clock_ms != 0;
  if (!have_watchdog && !RunBudgetScope::active()) return;
  if (--wall_clock_countdown_ != 0) return;
  wall_clock_countdown_ = kWallClockCheckStride;
  if (have_watchdog) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                             std::chrono::steady_clock::now() - run_started_)
                             .count();
    if (static_cast<std::uint64_t>(elapsed) > watchdog_.wall_clock_ms) {
      throw_watchdog(SimError::Kind::kWallClockBudget,
                     "run() exceeded its wall-clock budget of " +
                         std::to_string(watchdog_.wall_clock_ms) +
                         " ms: the specification appears to hang");
    }
  }
  if (RunBudgetScope::expired()) {
    throw_watchdog(SimError::Kind::kWallClockBudget,
                   "campaign per-run wall-clock budget of " +
                       std::to_string(RunBudgetScope::budget_ms()) +
                       " ms exceeded: this seed appears to hang");
  }
}

void Simulator::throw_watchdog(SimError::Kind kind, std::string summary) {
  throw SimError(kind, std::move(summary), now_, delta_count_,
                 process_diagnostics());
}

void Simulator::kill_all_processes() {
  for (auto& p : processes_) {
    if (p->started_ && !p->terminated()) {
      // The process is suspended inside yield_to_kernel(); resuming it with
      // the kill flag set makes it throw KillUnwind there, unwinding any
      // user frames (and their destructors) on its coroutine stack.
      p->kill_requested_ = true;
      p->state_ = Process::State::kRunning;
      running_ = p.get();
      swapcontext(&main_ctx_, &p->ctx_);
      running_ = nullptr;
    }
    // Never-started processes have no frames to unwind.
  }
}

void Simulator::raw_wait(Time t) {
  Process& p = current_process();
  TimerEntry e;
  e.t = now_ + t;
  e.proc = &p;
  e.proc_wait_id = p.wait_id_;
  schedule_timer(e);
  p.state_ = Process::State::kWaiting;
  p.wake_at_ = e.t;
  yield_to_kernel();
}

void Simulator::wait_for(Time t) {
  Process& p = current_process();
  if (hook_ != nullptr) hook_->node_reached(p, NodeKind::kTimedWait, "wait");
  raw_wait(t);
  if (hook_ != nullptr) hook_->node_done(p, NodeKind::kTimedWait, "wait");
}

void Simulator::wait_on(Event& e) {
  Process& p = current_process();
  e.waiters_.push_back({&p, p.wait_id_});
  p.state_ = Process::State::kWaiting;
  p.waiting_event_ = &e;
  yield_to_kernel();
}

bool Simulator::wait_on(Event& e, Time timeout) {
  Process& p = current_process();
  e.waiters_.push_back({&p, p.wait_id_});
  TimerEntry te;
  te.t = now_ + timeout;
  te.proc = &p;
  te.proc_wait_id = p.wait_id_;
  const Time deadline = te.t;
  schedule_timer(te);
  p.state_ = Process::State::kWaiting;
  p.waiting_event_ = &e;
  p.wake_at_ = deadline;
  yield_to_kernel();
  // If we woke before the deadline, it was the event.
  return now_ < deadline;
}

Process& Simulator::current_process() {
  if (running_ == nullptr) {
    throw SimError(SimError::Kind::kNoProcessContext,
                   "operation requires process context");
  }
  return *running_;
}

// ------------------------------------------------------- free functions ----

void wait(Time t) { Simulator::current().wait_for(t); }
void wait(Event& e) { Simulator::current().wait_on(e); }
bool wait(Event& e, Time timeout) {
  return Simulator::current().wait_on(e, timeout);
}
Time now() { return Simulator::current().now(); }

}  // namespace minisc
