#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace minisc {

/// Snapshot of one process's scheduler state, taken when the kernel reports a
/// structured failure (watchdog trip, deadlock diagnosis). `blocked_on` names
/// the event or timer the process is waiting for ("" when not waiting).
struct ProcessDiagnostic {
  std::string name;
  const char* state = "?";  ///< created / ready / running / waiting / terminated
  std::string blocked_on;
  std::uint64_t restarts = 0;  ///< crash-restart count (fault injection)

  std::string str() const;
};

/// Structured kernel failure: instead of hanging (livelock) or silently
/// corrupting state (release-build assert), the kernel throws one of these
/// with enough context to diagnose the offending specification — the
/// simulated time, delta count, and the state of every live process.
class SimError : public std::runtime_error {
 public:
  enum class Kind {
    kDeltaStorm,       ///< delta cycles at one instant exceeded the budget
    kDispatchStorm,    ///< dispatches at one instant exceeded the budget
    kWallClockBudget,  ///< host wall-clock budget exceeded (hang)
    kSimTimeBudget,    ///< simulated-time budget exceeded
    kNoSimulator,       ///< Simulator::current() with no live simulator
    kNoProcessContext,  ///< process-only operation called from outside
    kBadConfig,         ///< invalid construction parameter
    kJournalCorrupt,    ///< campaign run journal failed a record checksum
    kLeaseConflict,     ///< shard lease already held by a live worker
    kShardVersionMismatch,  ///< journal format version differs from this build
    kMergeIncomplete,   ///< shard merge is missing journals or run records
    kIoError,           ///< host I/O failure (ENOSPC, EIO, ...) with errno text
    kShardQuarantined,  ///< shard hit its adoption cap and was tombstoned
  };

  SimError(Kind kind, std::string summary, Time sim_time = Time::zero(),
           std::uint64_t delta = 0,
           std::vector<ProcessDiagnostic> processes = {});

  Kind kind() const { return kind_; }
  Time sim_time() const { return sim_time_; }
  std::uint64_t delta() const { return delta_; }
  /// State of every live (non-terminated) process at the moment of failure.
  const std::vector<ProcessDiagnostic>& processes() const {
    return processes_;
  }

  /// True when the failure is host-dependent rather than a property of the
  /// (deterministic) simulation: re-running the same seed may well succeed.
  /// See is_transient() for the classification rationale.
  bool transient() const;

 private:
  static std::string format(Kind kind, const std::string& summary,
                            Time sim_time, std::uint64_t delta,
                            const std::vector<ProcessDiagnostic>& processes);

  Kind kind_;
  Time sim_time_;
  std::uint64_t delta_;
  std::vector<ProcessDiagnostic> processes_;
};

const char* to_string(SimError::Kind k);

/// Transient / permanent classification driving campaign retry policy.
/// The simulation itself is deterministic, so almost every SimError is
/// permanent: the same seed will storm, overrun its simulated-time budget or
/// reject its config again on every retry. The exceptions measure the *host*
/// rather than the simulation: kWallClockBudget (a loaded machine, a paused
/// VM or a cold cache can trip it on one attempt and not the next) and
/// kLeaseConflict (two fleet workers raced for the same shard lease — the
/// loser simply claims again later, or claims a different shard). Everything
/// else fails fast — deliberately including kIoError: a full disk or a dying
/// device does not get better because a retry loop hammers it, so journal
/// and lease I/O failures surface once, loudly, with their errno text.
bool is_transient(SimError::Kind k);

inline bool SimError::transient() const { return is_transient(kind_); }

}  // namespace minisc
