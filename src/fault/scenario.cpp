#include "fault/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "kernel/error.hpp"

namespace scfault {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // One splitmix64 step over the xor keeps child streams decorrelated even
  // for adjacent seeds (0, 1, 2, ... — the natural campaign indexing).
  std::uint64_t z = (seed ^ stream) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

// config_digest folds every field through mix_seed, one 64-bit word at a
// time; doubles contribute their bit pattern, strings their fnv1a hash.
void fold(std::uint64_t& h, std::uint64_t v) { h = mix_seed(h, v); }

void fold_d(std::uint64_t& h, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  fold(h, bits);
}

void fold_s(std::uint64_t& h, const std::string& s) { fold(h, fnv1a(s)); }

void fold_t(std::uint64_t& h, minisc::Time t) { fold(h, t.to_ps()); }

}  // namespace

std::uint64_t config_digest(const ScenarioConfig& config) {
  std::uint64_t h = fnv1a("scfault::ScenarioConfig/v1");
  fold_t(h, config.horizon);
  fold(h, config.pulses.size());
  for (const PulseSpec& p : config.pulses) {
    fold_s(h, p.resource);
    fold(h, p.count);
    fold_d(h, p.min_extra_cycles);
    fold_d(h, p.max_extra_cycles);
    fold_d(h, p.occur_p);
  }
  fold(h, config.outages.size());
  for (const OutageSpec& o : config.outages) {
    fold_s(h, o.resource);
    fold(h, o.count);
    fold_t(h, o.min_length);
    fold_t(h, o.max_length);
    fold_d(h, o.occur_p);
  }
  fold(h, config.storms.size());
  for (const StormSpec& s : config.storms) {
    fold_s(h, s.resource);
    fold(h, s.count);
    fold_d(h, s.continue_p);
    fold(h, s.max_cluster);
    fold_t(h, s.window);
    fold_t(h, s.min_length);
    fold_t(h, s.max_length);
  }
  fold(h, config.channel_faults.size());
  for (const ChannelFaultSpec& c : config.channel_faults) {
    fold_s(h, c.channel);
    fold_d(h, c.drop_p);
    fold_d(h, c.dup_p);
    fold_d(h, c.delay_p);
    fold_t(h, c.min_delay);
    fold_t(h, c.max_delay);
    fold(h, c.burst.has_value() ? 1 : 0);
    if (c.burst.has_value()) {
      fold_d(h, c.burst->p_enter);
      fold_d(h, c.burst->p_exit);
      fold_d(h, c.burst->bad_drop_p);
      fold_d(h, c.burst->bad_dup_p);
      fold_d(h, c.burst->bad_delay_p);
    }
  }
  fold(h, config.crashes.size());
  for (const CrashSpec& c : config.crashes) {
    fold_s(h, c.process);
    fold_t(h, c.at);
    fold_t(h, c.restart_after);
  }
  return h;
}

FaultScenario::FaultScenario(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  // Each fault class draws from its own sub-stream so that, e.g., adding a
  // pulse spec never shifts the outage timeline of the same seed.
  Rng pulse_rng(mix_seed(seed_, fnv1a("pulses")));
  for (const PulseSpec& spec : config_.pulses) {
    Rng rng(mix_seed(pulse_rng.next(), fnv1a(spec.resource)));
    auto& counts = draw_counts_.pulses.emplace_back();
    for (std::size_t i = 0; i < spec.count; ++i) {
      // The occurrence gate draws ONLY when occur_p < 1: an unconditioned
      // spec makes exactly the draws it always made, so legacy timelines
      // (and the seed-stability hashes pinned on them) stay bit-exact. A
      // skipped candidate also skips its time/magnitude draws.
      if (spec.occur_p < 1.0) {
        if (rng.uniform() >= spec.occur_p) {
          ++counts.skipped;
          continue;
        }
      }
      ++counts.occurred;
      Pulse p;
      p.resource = spec.resource;
      p.at = rng.time_in(minisc::Time::zero(), config_.horizon);
      p.extra_cycles =
          rng.uniform(spec.min_extra_cycles, spec.max_extra_cycles);
      pulses_.push_back(std::move(p));
    }
  }
  std::stable_sort(pulses_.begin(), pulses_.end(),
                   [](const Pulse& a, const Pulse& b) { return a.at < b.at; });

  Rng outage_rng(mix_seed(seed_, fnv1a("outages")));
  for (const OutageSpec& spec : config_.outages) {
    Rng rng(mix_seed(outage_rng.next(), fnv1a(spec.resource)));
    auto& counts = draw_counts_.outages.emplace_back();
    for (std::size_t i = 0; i < spec.count; ++i) {
      if (spec.occur_p < 1.0) {
        if (rng.uniform() >= spec.occur_p) {
          ++counts.skipped;
          continue;
        }
      }
      ++counts.occurred;
      Outage o;
      o.resource = spec.resource;
      o.start = rng.time_in(minisc::Time::zero(), config_.horizon);
      o.length = rng.time_in(spec.min_length, spec.max_length);
      outages_.push_back(std::move(o));
    }
  }
  // Storms draw from their own sub-stream, so adding a storm spec never
  // moves the independent outage timeline (and vice versa). Cluster sizes
  // use repeated Bernoulli draws instead of an inverse-CDF so the timeline
  // needs no transcendental math — platform-stable like everything else.
  Rng storm_rng(mix_seed(seed_, fnv1a("storms")));
  for (const StormSpec& spec : config_.storms) {
    Rng rng(mix_seed(storm_rng.next(), fnv1a(spec.resource)));
    auto& counts = draw_counts_.storms.emplace_back();
    for (std::size_t i = 0; i < spec.count; ++i) {
      const minisc::Time centre =
          rng.time_in(minisc::Time::zero(), config_.horizon);
      std::size_t members = 1;
      // Identical RNG consumption to the legacy loop; the restructure only
      // records which way each Bernoulli draw went (a cluster capped at
      // max_cluster ends without a draw, so it adds no stop either).
      while (members < spec.max_cluster) {
        if (rng.uniform() < spec.continue_p) {
          ++members;
          ++counts.continues;
        } else {
          ++counts.stops;
          break;
        }
      }
      for (std::size_t m = 0; m < members; ++m) {
        Outage o;
        o.resource = spec.resource;
        o.start = (m == 0) ? centre
                           : centre + rng.time_in(minisc::Time::zero(),
                                                  spec.window);
        o.length = rng.time_in(spec.min_length, spec.max_length);
        outages_.push_back(std::move(o));
      }
    }
  }
  std::stable_sort(
      outages_.begin(), outages_.end(),
      [](const Outage& a, const Outage& b) { return a.start < b.start; });

  crashes_ = config_.crashes;
  std::stable_sort(
      crashes_.begin(), crashes_.end(),
      [](const CrashSpec& a, const CrashSpec& b) { return a.at < b.at; });
}

const ChannelFaultSpec* FaultScenario::channel_spec(
    const std::string& name) const {
  const ChannelFaultSpec* wildcard = nullptr;
  for (const ChannelFaultSpec& spec : config_.channel_faults) {
    if (spec.channel == name) return &spec;
    if (spec.channel == "*") wildcard = &spec;
  }
  return wildcard;
}

namespace {

/// Per-state categorical emission probabilities of a ChannelFaultSpec:
/// {drop, duplicate, delay, deliver}. A spec without `burst` never reaches
/// the bad state, so its bad-state row is irrelevant (p_enter = 0 below).
std::array<double, 4> emission(const ChannelFaultSpec& spec, bool bad) {
  double drop = spec.drop_p, dup = spec.dup_p, delay = spec.delay_p;
  if (bad && spec.burst.has_value()) {
    drop = spec.burst->bad_drop_p;
    dup = spec.burst->bad_dup_p;
    delay = spec.burst->bad_delay_p;
  }
  return {drop, dup, delay, 1.0 - drop - dup - delay};
}

/// count * log(p_nom / p_bias), with the degenerate cases pinned down:
/// an event that never occurred contributes nothing regardless of its
/// probabilities; equal probabilities contribute nothing regardless of the
/// count (identical specs must weigh exactly 1, even on 0/0 events); an
/// observed event that is impossible under the nominal model but possible
/// under the biased one zeroes the whole weight (-infinity in log space).
double lr_term(std::uint64_t count, double p_nom, double p_bias) {
  if (count == 0 || p_nom == p_bias) return 0.0;
  if (p_nom <= 0.0) return -std::numeric_limits<double>::infinity();
  // p_bias <= 0 with count > 0 cannot happen for draws made under `biased`;
  // guard anyway so a mismatched spec pair fails loudly (NaN), not silently.
  if (p_bias <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(count) * std::log(p_nom / p_bias);
}

}  // namespace

double channel_log_lr(const ChannelFaultSpec& nominal,
                      const ChannelFaultSpec& biased,
                      const ChannelFaultCounts& counts) {
  double log_lr = 0.0;
  for (std::size_t s = 0; s < 2; ++s) {
    const bool bad = (s == ChannelFaultCounts::kBad);
    const auto pn = emission(nominal, bad);
    const auto pb = emission(biased, bad);
    log_lr += lr_term(counts.dropped[s], pn[0], pb[0]);
    log_lr += lr_term(counts.duplicated[s], pn[1], pb[1]);
    log_lr += lr_term(counts.delayed[s], pn[2], pb[2]);
    log_lr += lr_term(counts.delivered[s], pn[3], pb[3]);
  }
  // Transition factor of the Gilbert–Elliott chain: one draw per write,
  // made in the state the write was emitted from.
  const double n_enter = nominal.burst ? nominal.burst->p_enter : 0.0;
  const double b_enter = biased.burst ? biased.burst->p_enter : 0.0;
  const double n_exit = nominal.burst ? nominal.burst->p_exit : 1.0;
  const double b_exit = biased.burst ? biased.burst->p_exit : 1.0;
  const std::uint64_t good = counts.draws[ChannelFaultCounts::kGood];
  const std::uint64_t bad = counts.draws[ChannelFaultCounts::kBad];
  if (n_enter != b_enter || n_exit != b_exit || counts.to_bad != 0 ||
      bad != 0) {
    log_lr += lr_term(counts.to_bad, n_enter, b_enter);
    log_lr += lr_term(good - counts.to_bad, 1.0 - n_enter, 1.0 - b_enter);
    log_lr += lr_term(counts.to_good, n_exit, b_exit);
    log_lr += lr_term(bad - counts.to_good, 1.0 - n_exit, 1.0 - b_exit);
  }
  return log_lr;
}

namespace {

[[noreturn]] void throw_shape_mismatch(const char* what) {
  throw minisc::SimError(
      minisc::SimError::Kind::kBadConfig,
      std::string("scenario_log_lr: nominal and biased configs differ in ") +
          what +
          " — the models must share the timeline structure (only "
          "probabilities may differ), or the recorded draw counts describe "
          "a different experiment");
}

}  // namespace

double scenario_log_lr(const ScenarioConfig& nominal,
                       const ScenarioConfig& biased,
                       const ScenarioDrawCounts& counts) {
  // Shape checks: every structural field must agree. Probabilities
  // (occur_p, continue_p) are the only degrees of freedom between the two
  // models; anything else differing means the counts were drawn from a
  // timeline the nominal model cannot describe.
  if (nominal.horizon != biased.horizon) throw_shape_mismatch("horizon");
  if (nominal.pulses.size() != biased.pulses.size() ||
      counts.pulses.size() != biased.pulses.size()) {
    throw_shape_mismatch("pulse spec count");
  }
  if (nominal.outages.size() != biased.outages.size() ||
      counts.outages.size() != biased.outages.size()) {
    throw_shape_mismatch("outage spec count");
  }
  if (nominal.storms.size() != biased.storms.size() ||
      counts.storms.size() != biased.storms.size()) {
    throw_shape_mismatch("storm spec count");
  }

  double log_lr = 0.0;
  for (std::size_t i = 0; i < biased.pulses.size(); ++i) {
    const PulseSpec& n = nominal.pulses[i];
    const PulseSpec& b = biased.pulses[i];
    if (n.resource != b.resource || n.count != b.count ||
        n.min_extra_cycles != b.min_extra_cycles ||
        n.max_extra_cycles != b.max_extra_cycles) {
      throw_shape_mismatch("a pulse spec's structure");
    }
    const auto& c = counts.pulses[i];
    log_lr += lr_term(c.occurred, n.occur_p, b.occur_p);
    log_lr += lr_term(c.skipped, 1.0 - n.occur_p, 1.0 - b.occur_p);
  }
  for (std::size_t i = 0; i < biased.outages.size(); ++i) {
    const OutageSpec& n = nominal.outages[i];
    const OutageSpec& b = biased.outages[i];
    if (n.resource != b.resource || n.count != b.count ||
        n.min_length != b.min_length || n.max_length != b.max_length) {
      throw_shape_mismatch("an outage spec's structure");
    }
    const auto& c = counts.outages[i];
    log_lr += lr_term(c.occurred, n.occur_p, b.occur_p);
    log_lr += lr_term(c.skipped, 1.0 - n.occur_p, 1.0 - b.occur_p);
  }
  for (std::size_t i = 0; i < biased.storms.size(); ++i) {
    const StormSpec& n = nominal.storms[i];
    const StormSpec& b = biased.storms[i];
    if (n.resource != b.resource || n.count != b.count ||
        n.max_cluster != b.max_cluster || n.window != b.window ||
        n.min_length != b.min_length || n.max_length != b.max_length) {
      throw_shape_mismatch("a storm spec's structure");
    }
    const auto& c = counts.storms[i];
    log_lr += lr_term(c.continues, n.continue_p, b.continue_p);
    log_lr += lr_term(c.stops, 1.0 - n.continue_p, 1.0 - b.continue_p);
  }
  // Uniform time/length/magnitude draws are identical densities under both
  // models (structure is pinned equal above) and cancel out of the ratio.
  return log_lr;
}

ScenarioConfig scale_fault_bias(const ScenarioConfig& config, double factor) {
  if (!(factor > 0.0)) {
    throw minisc::SimError(minisc::SimError::Kind::kBadConfig,
                           "scale_fault_bias: factor must be > 0");
  }
  ScenarioConfig out = config;
  if (factor == 1.0) return out;
  // Caps keep scaled Bernoullis honest probabilities with headroom for the
  // complement terms of the likelihood ratio (a probability scaled to
  // exactly 1 would make the skip/stop branch impossible under the biased
  // model while the nominal one still allows it).
  constexpr double kCap = 0.95;
  const auto scale_p = [&](double p) { return std::min(kCap, p * factor); };
  for (PulseSpec& p : out.pulses) {
    // occur_p == 1 means "no occurrence draw at all" — scaling it would
    // turn a structural constant into a probability and change the
    // timeline; leave unconditioned specs unconditioned.
    if (p.occur_p < 1.0) p.occur_p = scale_p(p.occur_p);
  }
  for (OutageSpec& o : out.outages) {
    if (o.occur_p < 1.0) o.occur_p = scale_p(o.occur_p);
  }
  for (StormSpec& s : out.storms) s.continue_p = scale_p(s.continue_p);
  for (ChannelFaultSpec& c : out.channel_faults) {
    const auto scale_emission = [&](double& drop, double& dup, double& delay) {
      drop *= factor;
      dup *= factor;
      delay *= factor;
      const double sum = drop + dup + delay;
      if (sum > kCap) {
        // Proportional renormalisation: the three fault modes keep their
        // relative mix, the total fault mass caps at kCap so delivery stays
        // possible under the biased model.
        const double k = kCap / sum;
        drop *= k;
        dup *= k;
        delay *= k;
      }
    };
    scale_emission(c.drop_p, c.dup_p, c.delay_p);
    if (c.burst.has_value()) {
      scale_emission(c.burst->bad_drop_p, c.burst->bad_dup_p,
                     c.burst->bad_delay_p);
      c.burst->p_enter = scale_p(c.burst->p_enter);
      // p_exit is deliberately untouched: biasing toward *longer* bursts is
      // a different experiment than biasing toward more faults.
    }
  }
  return out;
}

std::vector<minisc::Time> FaultScenario::fault_times() const {
  std::vector<minisc::Time> times;
  times.reserve(pulses_.size() + outages_.size() + crashes_.size());
  for (const Pulse& p : pulses_) times.push_back(p.at);
  for (const Outage& o : outages_) times.push_back(o.start);
  for (const CrashSpec& c : crashes_) times.push_back(c.at);
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace scfault
