#include "fault/scenario.hpp"

#include <algorithm>

namespace scfault {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream) {
  // One splitmix64 step over the xor keeps child streams decorrelated even
  // for adjacent seeds (0, 1, 2, ... — the natural campaign indexing).
  std::uint64_t z = (seed ^ stream) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

FaultScenario::FaultScenario(ScenarioConfig config, std::uint64_t seed)
    : config_(std::move(config)), seed_(seed) {
  // Each fault class draws from its own sub-stream so that, e.g., adding a
  // pulse spec never shifts the outage timeline of the same seed.
  Rng pulse_rng(mix_seed(seed_, fnv1a("pulses")));
  for (const PulseSpec& spec : config_.pulses) {
    Rng rng(mix_seed(pulse_rng.next(), fnv1a(spec.resource)));
    for (std::size_t i = 0; i < spec.count; ++i) {
      Pulse p;
      p.resource = spec.resource;
      p.at = rng.time_in(minisc::Time::zero(), config_.horizon);
      p.extra_cycles =
          rng.uniform(spec.min_extra_cycles, spec.max_extra_cycles);
      pulses_.push_back(std::move(p));
    }
  }
  std::stable_sort(pulses_.begin(), pulses_.end(),
                   [](const Pulse& a, const Pulse& b) { return a.at < b.at; });

  Rng outage_rng(mix_seed(seed_, fnv1a("outages")));
  for (const OutageSpec& spec : config_.outages) {
    Rng rng(mix_seed(outage_rng.next(), fnv1a(spec.resource)));
    for (std::size_t i = 0; i < spec.count; ++i) {
      Outage o;
      o.resource = spec.resource;
      o.start = rng.time_in(minisc::Time::zero(), config_.horizon);
      o.length = rng.time_in(spec.min_length, spec.max_length);
      outages_.push_back(std::move(o));
    }
  }
  std::stable_sort(
      outages_.begin(), outages_.end(),
      [](const Outage& a, const Outage& b) { return a.start < b.start; });

  crashes_ = config_.crashes;
  std::stable_sort(
      crashes_.begin(), crashes_.end(),
      [](const CrashSpec& a, const CrashSpec& b) { return a.at < b.at; });
}

const ChannelFaultSpec* FaultScenario::channel_spec(
    const std::string& name) const {
  const ChannelFaultSpec* wildcard = nullptr;
  for (const ChannelFaultSpec& spec : config_.channel_faults) {
    if (spec.channel == name) return &spec;
    if (spec.channel == "*") wildcard = &spec;
  }
  return wildcard;
}

std::vector<minisc::Time> FaultScenario::fault_times() const {
  std::vector<minisc::Time> times;
  times.reserve(pulses_.size() + outages_.size() + crashes_.size());
  for (const Pulse& p : pulses_) times.push_back(p.at);
  for (const Outage& o : outages_) times.push_back(o.start);
  for (const CrashSpec& c : crashes_) times.push_back(c.at);
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace scfault
