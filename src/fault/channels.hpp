#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "fault/scenario.hpp"
#include "kernel/channels.hpp"
#include "kernel/simulator.hpp"

namespace scfault {

namespace detail {

/// Per-channel fault state shared by the wrappers: the spec applying to this
/// channel (nullptr = fault-free), its private deterministic stream, and —
/// when the spec engages the Gilbert–Elliott burst model — the current chain
/// state. Decisions are drawn per write in channel-local order, so a
/// channel's fault sequence depends only on (scenario seed, channel name,
/// number of prior writes on this channel) — never on scheduling order
/// elsewhere. Draw order per write is fixed: emission first, then (burst
/// specs only) the state transition for the next write; delay lengths draw
/// their extra variate in between. Every draw is tallied into `counts` by
/// the state it was made in — the sufficient statistics channel_log_lr needs.
class ChannelFaults {
 public:
  void attach(const FaultScenario& scenario, const std::string& name) {
    spec_ = scenario.channel_spec(name);
    rng_ = scenario.channel_stream(name);
    bad_ = false;
    counts = ChannelFaultCounts{};
  }
  void detach() { spec_ = nullptr; }
  bool active() const { return spec_ != nullptr; }

  enum class Action { kDeliver, kDrop, kDuplicate, kDelay };

  /// Draws the fate of the next write (kDeliver when fault-free).
  Action draw(minisc::Time& delay_out) {
    if (spec_ == nullptr) return Action::kDeliver;
    const std::size_t s =
        bad_ ? ChannelFaultCounts::kBad : ChannelFaultCounts::kGood;
    double drop = spec_->drop_p, dup = spec_->dup_p, delay = spec_->delay_p;
    if (bad_) {
      drop = spec_->burst->bad_drop_p;
      dup = spec_->burst->bad_dup_p;
      delay = spec_->burst->bad_delay_p;
    }
    ++counts.draws[s];
    const double u = rng_.uniform();
    Action action = Action::kDeliver;
    if (u < drop) {
      action = Action::kDrop;
      ++counts.dropped[s];
    } else if (u < drop + dup) {
      action = Action::kDuplicate;
      ++counts.duplicated[s];
    } else if (u < drop + dup + delay) {
      delay_out = rng_.time_in(spec_->min_delay, spec_->max_delay);
      action = Action::kDelay;
      ++counts.delayed[s];
    } else {
      ++counts.delivered[s];
    }
    if (spec_->burst.has_value()) {
      const double v = rng_.uniform();
      if (!bad_ && v < spec_->burst->p_enter) {
        bad_ = true;
        ++counts.to_bad;
      } else if (bad_ && v < spec_->burst->p_exit) {
        bad_ = false;
        ++counts.to_good;
      }
    }
    return action;
  }

  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  ChannelFaultCounts counts;

 private:
  const ChannelFaultSpec* spec_ = nullptr;
  Rng rng_{0};
  bool bad_ = false;  ///< Gilbert–Elliott state (channels start good)
};

}  // namespace detail

/// A minisc::Fifo whose WRITE side models an unreliable link: each write may
/// be dropped (the value vanishes; the writer believes it sent), duplicated
/// (delivered twice) or delayed (the writer is held for a drawn latency
/// before the value enters the FIFO — an in-order lossy link, like a flaky
/// on-chip bus or a serial line, not a reordering network).
///
/// Interface-compatible with Fifo, so swapping the type in a spec is the
/// whole integration. Without attach() — or when the scenario has no spec
/// for this channel — every operation forwards straight to the inner Fifo:
/// one pointer test per write, nothing on reads.
///
/// A dropped write still executes a zero-length timed wait so the writer's
/// segment closes at the node like a real (completed) send would; the writer
/// cannot tell a dropped send from an instant one, which is the point.
template <typename T>
class FaultyFifo {
 public:
  explicit FaultyFifo(std::string name, std::size_t capacity = 16)
      : inner_(std::move(name), capacity) {}

  /// Binds this channel to a scenario (typically once per campaign run,
  /// right after construction). Resets nothing else: construct fresh
  /// channels per run for reproducible streams.
  void attach(const FaultScenario& scenario) {
    faults_.attach(scenario, inner_.name());
  }
  void detach() { faults_.detach(); }

  void write(T v) {
    minisc::Time delay;
    switch (faults_.draw(delay)) {
      case detail::ChannelFaults::Action::kDrop:
        ++faults_.dropped;
        minisc::wait(minisc::Time::zero());
        return;
      case detail::ChannelFaults::Action::kDuplicate:
        ++faults_.duplicated;
        inner_.write(v);
        inner_.write(std::move(v));
        return;
      case detail::ChannelFaults::Action::kDelay:
        ++faults_.delayed;
        minisc::wait(delay);
        inner_.write(std::move(v));
        return;
      case detail::ChannelFaults::Action::kDeliver:
        inner_.write(std::move(v));
        return;
    }
  }

  bool nb_write(T v) {
    minisc::Time delay;
    switch (faults_.draw(delay)) {
      case detail::ChannelFaults::Action::kDrop:
        ++faults_.dropped;
        return true;  // the writer believes the send succeeded
      case detail::ChannelFaults::Action::kDuplicate:
        ++faults_.duplicated;
        inner_.nb_write(v);
        return inner_.nb_write(std::move(v));
      case detail::ChannelFaults::Action::kDelay:
        // A non-blocking write cannot be held; model the delay as a drop of
        // the timing fault only (deliver immediately).
        ++faults_.delayed;
        return inner_.nb_write(std::move(v));
      case detail::ChannelFaults::Action::kDeliver:
        return inner_.nb_write(std::move(v));
    }
    return false;  // unreachable
  }

  // Reads are unaffected by link faults: forward verbatim.
  T read() { return inner_.read(); }
  std::optional<T> read_for(minisc::Time timeout) {
    return inner_.read_for(timeout);
  }
  bool nb_read(T& out) { return inner_.nb_read(out); }

  std::size_t num_available() const { return inner_.num_available(); }
  std::size_t num_free() const { return inner_.num_free(); }
  std::size_t capacity() const { return inner_.capacity(); }
  const std::string& name() const { return inner_.name(); }

  std::uint64_t dropped() const { return faults_.dropped; }
  std::uint64_t duplicated() const { return faults_.duplicated; }
  std::uint64_t delayed() const { return faults_.delayed; }
  /// Per-state draw record — feed to channel_log_lr for importance weights.
  const ChannelFaultCounts& fault_counts() const { return faults_.counts; }

 private:
  minisc::Fifo<T> inner_;
  detail::ChannelFaults faults_;
};

/// Rendezvous counterpart of FaultyFifo. Duplication delivers the value to
/// two successive readers (the second rendezvous blocks the writer until a
/// reader shows up, like any rendezvous write).
template <typename T>
class FaultyRendezvous {
 public:
  explicit FaultyRendezvous(std::string name) : inner_(std::move(name)) {}

  void attach(const FaultScenario& scenario) {
    faults_.attach(scenario, inner_.name());
  }
  void detach() { faults_.detach(); }

  void write(T v) {
    minisc::Time delay;
    switch (faults_.draw(delay)) {
      case detail::ChannelFaults::Action::kDrop:
        ++faults_.dropped;
        minisc::wait(minisc::Time::zero());
        return;
      case detail::ChannelFaults::Action::kDuplicate:
        ++faults_.duplicated;
        inner_.write(v);
        inner_.write(std::move(v));
        return;
      case detail::ChannelFaults::Action::kDelay:
        ++faults_.delayed;
        minisc::wait(delay);
        inner_.write(std::move(v));
        return;
      case detail::ChannelFaults::Action::kDeliver:
        inner_.write(std::move(v));
        return;
    }
  }

  T read() { return inner_.read(); }
  std::optional<T> read_for(minisc::Time timeout) {
    return inner_.read_for(timeout);
  }

  const std::string& name() const { return inner_.name(); }

  std::uint64_t dropped() const { return faults_.dropped; }
  std::uint64_t duplicated() const { return faults_.duplicated; }
  std::uint64_t delayed() const { return faults_.delayed; }
  /// Per-state draw record — feed to channel_log_lr for importance weights.
  const ChannelFaultCounts& fault_counts() const { return faults_.counts; }

 private:
  minisc::Rendezvous<T> inner_;
  detail::ChannelFaults faults_;
};

}  // namespace scfault
