#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

#include "core/estimator.hpp"
#include "fault/scenario.hpp"
#include "kernel/hooks.hpp"
#include "kernel/simulator.hpp"

namespace scfault {

/// Injects a FaultScenario into a running estimation session without touching
/// the user's specification. Installed as the simulator's kernel hook, it
/// wraps the previously installed hook (normally the scperf::Estimator) and
/// forwards every callback — so estimation semantics are unchanged — while
/// adding the scenario's faults through the existing seams:
///
///  - Pulses: when a process mapped to the pulsed resource reaches its next
///    node after the pulse time, the extra cycles are charged into the
///    closing segment's accumulator (scperf::tl_accum) before the estimator
///    sees it. The back-annotation then naturally extends the occupation
///    (SW) or the estimate (HW) — statistics, contention and energy all see
///    the fault as ordinary work.
///  - Outages: on SW resources a driver process pins busy_until to the
///    outage end, so every occupation request issued during the window
///    stalls until it closes (in-flight occupations complete). On HW and
///    ENV resources the window is registered as resource downtime at
///    construction: HW segments overlapping the window stretch by the
///    overlap during back-annotation, ENV processes reaching a node inside
///    the window stall until it closes. Outage lockup cycles are charged as
///    resource-level fault energy; pulse cycles as per-process fault energy.
///  - Crashes: a driver process calls Simulator::kill / kill_and_restart at
///    the scheduled times.
///  - Channel faults are NOT applied here: they live in FaultyFifo /
///    FaultyRendezvous, which pull their per-channel streams from the same
///    scenario (see fault/channels.hpp).
///
/// Construct AFTER the estimator (declaration order: Simulator, Estimator,
/// FaultInjector), after the platform's resources are added (HW/ENV outage
/// windows are registered at construction), and before run(). The
/// destructor restores the inner hook.
/// When no injector is constructed, fault support costs nothing: the kernel
/// and estimator run exactly the code they ran before the subsystem existed.
class FaultInjector final : public minisc::KernelHook {
 public:
  FaultInjector(minisc::Simulator& sim, scperf::Estimator& est,
                const FaultScenario& scenario);
  ~FaultInjector() override;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // ---- injection counters (observability for reports and tests) ----

  std::uint64_t pulses_injected() const { return pulses_injected_; }
  double extra_cycles_injected() const { return extra_cycles_injected_; }
  std::uint64_t outages_applied() const { return outages_applied_; }
  std::uint64_t crashes_applied() const { return crashes_applied_; }

  /// Log likelihood ratio of this run's timeline draws against `nominal`
  /// (the un-biased fault model), for importance-sampled campaigns whose
  /// bias extends beyond channels into pulse/outage/storm draws: add this
  /// to the channel_log_lr sum when filling CampaignRunResult::log_weight.
  double scenario_log_lr_vs(const ScenarioConfig& nominal) const {
    return scenario_log_lr(nominal, scenario_.config(),
                           scenario_.draw_counts());
  }

  // ---- KernelHook (forwarders + pulse drain) ----

  void process_started(minisc::Process& p) override;
  void process_finished(minisc::Process& p) override;
  void process_resumed(minisc::Process& p) override;
  void node_reached(minisc::Process& p, minisc::NodeKind kind,
                    const char* label) override;
  void node_done(minisc::Process& p, minisc::NodeKind kind,
                 const char* label) override;

 private:
  void spawn_drivers();
  void drain_pulses(minisc::Process& p);
  void apply_env_faults(minisc::Process& p, scperf::Resource& env);

  minisc::Simulator& sim_;
  scperf::Estimator& est_;
  const FaultScenario& scenario_;
  minisc::KernelHook* inner_ = nullptr;

  std::size_t next_pulse_ = 0;  ///< scenario pulses are sorted by time
  std::vector<bool> consumed_;  ///< per-pulse delivered flag
  std::uint64_t pulses_injected_ = 0;
  double extra_cycles_injected_ = 0.0;
  std::uint64_t outages_applied_ = 0;
  std::uint64_t crashes_applied_ = 0;
};

}  // namespace scfault
