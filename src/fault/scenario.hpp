#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace scfault {

/// Deterministic 64-bit generator (splitmix64). Chosen over <random> engines
/// because its output is fully specified by the algorithm — the same seed
/// produces the same fault timeline on every platform and standard library,
/// which is what makes resilience campaigns reproducible and their capture
/// hashes comparable across machines.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi].
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's multiply-shift
  /// with rejection). n == 0 is the full 64-bit range.
  std::uint64_t bounded(std::uint64_t n) {
    if (n == 0) return next();
    unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      // 2^64 mod n: values of `lo` below this threshold over-represent some
      // quotients; reject and redraw (expected < 2 draws even at worst n).
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>(next()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform Time in [lo, hi] (picosecond granularity).
  minisc::Time time_in(minisc::Time lo, minisc::Time hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = hi.to_ps() - lo.to_ps();
    if (span == std::numeric_limits<std::uint64_t>::max()) {
      return minisc::Time::ps(next());  // degenerate full-range request
    }
    return minisc::Time::ps(lo.to_ps() + bounded(span + 1));
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a hash of a string — used to derive per-channel RNG streams from the
/// scenario seed so that adding or reordering channels never perturbs the
/// fault sequence another channel sees.
std::uint64_t fnv1a(const std::string& s);

/// Mixes a seed with a stream id into an independent-looking child seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

// ---- scenario specification (what the user writes) ----

/// Transient extra-delay pulses on a resource: each pulse charges extra
/// estimated cycles into the segment that is executing on the resource when
/// the pulse fires (an EMI glitch, a DRAM refresh storm, a cache flush).
struct PulseSpec {
  std::string resource;
  std::size_t count = 0;
  double min_extra_cycles = 0.0;
  double max_extra_cycles = 0.0;
  /// Per-pulse occurrence probability: each of the `count` candidate pulses
  /// fires only when a Bernoulli(occur_p) draw succeeds. 1.0 (the default)
  /// makes no occurrence draw at all — existing timelines are bit-exact —
  /// while anything < 1 turns the spec into a rare-event knob the campaign
  /// can bias (scale_fault_bias) and re-weight (scenario_log_lr).
  double occur_p = 1.0;
};

/// Resource outage windows: while an outage is active the resource makes no
/// progress (a processor lockup, a bus reset, an accelerator in reset).
/// On SW resources every segment that tries to claim the processor stalls
/// until the window ends (in-flight occupations complete). On HW and ENV
/// resources the window is registered as resource downtime: a HW segment
/// overlapping the window is stretched by the overlap (work needs uptime),
/// and an ENV process reaching a node inside the window stalls until it ends.
struct OutageSpec {
  std::string resource;
  std::size_t count = 0;
  minisc::Time min_length;
  minisc::Time max_length;
  /// Per-outage occurrence probability, like PulseSpec::occur_p: 1.0 draws
  /// every outage unconditionally (bit-exact legacy timelines), < 1 gates
  /// each candidate on a Bernoulli(occur_p) draw — the handle that lets
  /// importance sampling inflate rare double-outage scenarios.
  double occur_p = 1.0;
};

/// Poisson-cluster outage *storms*: `count` storm centres are drawn uniformly
/// in [0, horizon); each storm opens with one outage at its centre and keeps
/// adding cluster members (offset uniformly in [0, window) after the centre)
/// while a per-member Bernoulli(continue_p) draw succeeds, capped at
/// max_cluster. The result is the correlated counterpart of OutageSpec:
/// rate-matched independent outages scatter, a storm concentrates them.
struct StormSpec {
  std::string resource;
  std::size_t count = 0;      ///< number of storm centres
  double continue_p = 0.0;    ///< P(one more outage in this cluster)
  std::size_t max_cluster = 16;
  minisc::Time window;        ///< cluster members land in [centre, centre+window)
  minisc::Time min_length;
  minisc::Time max_length;
};

/// Two-state Gilbert–Elliott burst model for a channel: each write first
/// draws its fate from the probabilities of the current state (the base
/// ChannelFaultSpec probabilities in the good state, the bad_* ones in the
/// bad state), then draws the state transition for the next write
/// (good -> bad with p_enter, bad -> good with p_exit). Channels start good.
/// The stationary bad-state occupancy is p_enter / (p_enter + p_exit), so a
/// rate-matched i.i.d. model has
///   drop_p_iid = pi_good * drop_p + pi_bad * bad_drop_p
/// — same long-run loss rate, none of the bursts.
struct GilbertElliottSpec {
  double p_enter = 0.0;  ///< good -> bad per write
  double p_exit = 1.0;   ///< bad -> good per write
  double bad_drop_p = 0.0;
  double bad_dup_p = 0.0;
  double bad_delay_p = 0.0;
};

/// Message faults on a channel wrapped in FaultyFifo / FaultyRendezvous.
/// Probabilities are per write and disjoint (drop_p + dup_p + delay_p <= 1;
/// the remainder delivers normally). `channel` is an exact channel name or
/// "*" for every attached channel. When `burst` is engaged the flat
/// probabilities become the good-state emission model of a Gilbert–Elliott
/// chain; leave it disengaged for the classic i.i.d. behaviour.
struct ChannelFaultSpec {
  std::string channel;
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
  minisc::Time min_delay;
  minisc::Time max_delay;
  std::optional<GilbertElliottSpec> burst;
};

/// Per-channel draw accounting kept by the Faulty* wrappers, split by the
/// Gilbert–Elliott state the draw was made in (i.i.d. channels only ever
/// populate index kGood). These counts are exactly the sufficient statistics
/// of the per-write categorical + transition likelihood, which is what makes
/// importance-sampling weights computable after the run.
struct ChannelFaultCounts {
  static constexpr std::size_t kGood = 0;
  static constexpr std::size_t kBad = 1;

  std::array<std::uint64_t, 2> draws{};       ///< writes drawn in each state
  std::array<std::uint64_t, 2> dropped{};
  std::array<std::uint64_t, 2> duplicated{};
  std::array<std::uint64_t, 2> delayed{};
  std::array<std::uint64_t, 2> delivered{};
  std::uint64_t to_bad = 0;   ///< good -> bad transitions taken
  std::uint64_t to_good = 0;  ///< bad -> good transitions taken

  std::uint64_t total_draws() const { return draws[kGood] + draws[kBad]; }
  std::uint64_t total_faults() const {
    return dropped[kGood] + dropped[kBad] + duplicated[kGood] +
           duplicated[kBad] + delayed[kGood] + delayed[kBad];
  }
};

/// Log likelihood ratio log(P_nominal / P_biased) of one channel's observed
/// draw record, for importance-sampled campaigns: the run simulates under
/// `biased` (typically the nominal spec with inflated fault probabilities)
/// and each run is re-weighted by exp of this value to recover an unbiased
/// estimate under `nominal`. A spec without `burst` is treated as a chain
/// that never leaves the good state. Returns -infinity when the observed
/// record is impossible under `nominal` (weight 0); requires every event
/// observed to have positive probability under `biased`.
double channel_log_lr(const ChannelFaultSpec& nominal,
                      const ChannelFaultSpec& biased,
                      const ChannelFaultCounts& counts);

/// Sufficient statistics of the Bernoulli draws a FaultScenario made while
/// instantiating its timeline: per-spec occurrence successes/failures for
/// pulses and outages (in spec declaration order) and the storm
/// continue/stop draws (pooled per storm spec). Together with the channel
/// counts these are everything scenario_log_lr needs to re-weight a biased
/// scenario's draws against the nominal model.
struct ScenarioDrawCounts {
  struct Occurrence {
    std::uint64_t occurred = 0;
    std::uint64_t skipped = 0;
  };
  struct StormDraws {
    std::uint64_t continues = 0;  ///< Bernoulli(continue_p) successes
    std::uint64_t stops = 0;      ///< explicit failures (cap hits draw nothing)
  };
  std::vector<Occurrence> pulses;   ///< one per PulseSpec, in config order
  std::vector<Occurrence> outages;  ///< one per OutageSpec, in config order
  std::vector<StormDraws> storms;   ///< one per StormSpec, in config order
};

/// Crash-kill of a process at a fixed time; restart_after == Time::max()
/// means no restart (a permanent fault), anything else re-runs the process
/// body from the top after that recovery delay.
struct CrashSpec {
  std::string process;
  minisc::Time at;
  minisc::Time restart_after = minisc::Time::max();
};

struct ScenarioConfig {
  /// Fault times are drawn uniformly in [0, horizon).
  minisc::Time horizon;
  std::vector<PulseSpec> pulses;
  std::vector<OutageSpec> outages;
  std::vector<StormSpec> storms;
  std::vector<ChannelFaultSpec> channel_faults;
  std::vector<CrashSpec> crashes;
};

/// Stable 64-bit fingerprint of a scenario specification: an FNV-style fold
/// over every spec field, in declaration order, with doubles hashed by bit
/// pattern. A campaign journal stores this in its header so a *resumed*
/// campaign can prove it is replaying runs of the same fault model — any
/// edit to the scenario (one probability, one extra spec) changes the digest
/// and the resume is refused instead of silently mixing incompatible runs.
std::uint64_t config_digest(const ScenarioConfig& config);

/// Log likelihood ratio log(P_nominal / P_biased) of a scenario's recorded
/// timeline draws — the pulse/outage/storm counterpart of channel_log_lr.
/// `counts` must come from a FaultScenario built against `biased`
/// (FaultScenario::draw_counts); the two configs must agree on everything
/// except probabilities (same spec counts, resources, event counts, ranges —
/// differing shapes throw minisc::SimError(kBadConfig), because a count
/// observed under one timeline structure says nothing about the other).
/// Only the Bernoulli draws carry probability mass: occurrence gates
/// (occur_p) and storm continuation (continue_p). Uniform time/length draws
/// are identical under both models and cancel out of the ratio.
double scenario_log_lr(const ScenarioConfig& nominal,
                       const ScenarioConfig& biased,
                       const ScenarioDrawCounts& counts);

/// Returns `config` with every fault probability inflated by `factor` — the
/// one-knob bias the adaptive importance-sampling pilot turns. Scaled (all
/// capped at 0.95): channel drop/dup/delay in both states (proportionally
/// renormalised when the scaled sum would exceed 0.95), Gilbert–Elliott
/// p_enter, storm continue_p, and pulse/outage occur_p — the latter only
/// when already < 1, so an unconditioned spec stays unconditioned (and its
/// timeline bit-exact). factor <= 0 throws minisc::SimError(kBadConfig);
/// factor 1 returns the config unchanged.
ScenarioConfig scale_fault_bias(const ScenarioConfig& config, double factor);

// ---- concrete drawn faults (what one seed produces) ----

struct Pulse {
  std::string resource;
  minisc::Time at;
  double extra_cycles = 0.0;
};

struct Outage {
  std::string resource;
  minisc::Time start;
  minisc::Time length;
};

/// One seeded instantiation of a ScenarioConfig: every random choice in the
/// spec is resolved into a concrete, sorted fault timeline at construction.
/// The same (config, seed) pair always yields the same timeline and the same
/// per-channel fault streams; seeds index the campaign's sample space.
class FaultScenario {
 public:
  FaultScenario(ScenarioConfig config, std::uint64_t seed);

  std::uint64_t seed() const { return seed_; }
  const ScenarioConfig& config() const { return config_; }

  /// Drawn pulses / outages, each sorted by time. Outages merge the
  /// independent OutageSpec draws and every StormSpec cluster member.
  const std::vector<Pulse>& pulses() const { return pulses_; }
  const std::vector<Outage>& outages() const { return outages_; }
  /// Crashes from the config, sorted by time.
  const std::vector<CrashSpec>& crashes() const { return crashes_; }

  /// The fault spec applying to a channel name (exact match wins over "*");
  /// nullptr when the scenario leaves the channel fault-free.
  const ChannelFaultSpec* channel_spec(const std::string& name) const;

  /// Independent deterministic stream for one channel, derived from the
  /// scenario seed and the channel name only — stable under any change to
  /// the rest of the scenario.
  Rng channel_stream(const std::string& name) const {
    return Rng(mix_seed(seed_, fnv1a(name)));
  }

  /// All drawn fault times (pulses, outage starts, crashes), sorted —
  /// recovery-latency analysis measures from these instants.
  std::vector<minisc::Time> fault_times() const;

  /// The Bernoulli draw record of this instantiation — feed it (with the
  /// nominal config) to scenario_log_lr to re-weight a biased timeline.
  const ScenarioDrawCounts& draw_counts() const { return draw_counts_; }

 private:
  ScenarioConfig config_;
  std::uint64_t seed_;
  std::vector<Pulse> pulses_;
  std::vector<Outage> outages_;
  std::vector<CrashSpec> crashes_;
  ScenarioDrawCounts draw_counts_;
};

}  // namespace scfault
