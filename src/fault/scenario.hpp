#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "kernel/time.hpp"

namespace scfault {

/// Deterministic 64-bit generator (splitmix64). Chosen over <random> engines
/// because its output is fully specified by the algorithm — the same seed
/// produces the same fault timeline on every platform and standard library,
/// which is what makes resilience campaigns reproducible and their capture
/// hashes comparable across machines.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi].
  double uniform(double lo, double hi) { return lo + uniform() * (hi - lo); }

  /// Uniform Time in [lo, hi] (picosecond granularity).
  minisc::Time time_in(minisc::Time lo, minisc::Time hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = hi.to_ps() - lo.to_ps();
    if (span == std::numeric_limits<std::uint64_t>::max()) {
      return minisc::Time::ps(next());  // degenerate full-range request
    }
    return minisc::Time::ps(lo.to_ps() + next() % (span + 1));
  }

 private:
  std::uint64_t state_;
};

/// FNV-1a hash of a string — used to derive per-channel RNG streams from the
/// scenario seed so that adding or reordering channels never perturbs the
/// fault sequence another channel sees.
std::uint64_t fnv1a(const std::string& s);

/// Mixes a seed with a stream id into an independent-looking child seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t stream);

// ---- scenario specification (what the user writes) ----

/// Transient extra-delay pulses on a resource: each pulse charges extra
/// estimated cycles into the segment that is executing on the resource when
/// the pulse fires (an EMI glitch, a DRAM refresh storm, a cache flush).
struct PulseSpec {
  std::string resource;
  std::size_t count = 0;
  double min_extra_cycles = 0.0;
  double max_extra_cycles = 0.0;
};

/// Resource outage windows: while an outage is active the resource accepts no
/// new occupation — every segment that tries to claim it stalls until the
/// window ends (a processor lockup, a bus reset). In-flight occupations
/// complete. SW resources only: HW resources model spatial parallelism and
/// have no serialising claim to stall.
struct OutageSpec {
  std::string resource;
  std::size_t count = 0;
  minisc::Time min_length;
  minisc::Time max_length;
};

/// Message faults on a channel wrapped in FaultyFifo / FaultyRendezvous.
/// Probabilities are per write and disjoint (drop_p + dup_p + delay_p <= 1;
/// the remainder delivers normally). `channel` is an exact channel name or
/// "*" for every attached channel.
struct ChannelFaultSpec {
  std::string channel;
  double drop_p = 0.0;
  double dup_p = 0.0;
  double delay_p = 0.0;
  minisc::Time min_delay;
  minisc::Time max_delay;
};

/// Crash-kill of a process at a fixed time; restart_after == Time::max()
/// means no restart (a permanent fault), anything else re-runs the process
/// body from the top after that recovery delay.
struct CrashSpec {
  std::string process;
  minisc::Time at;
  minisc::Time restart_after = minisc::Time::max();
};

struct ScenarioConfig {
  /// Fault times are drawn uniformly in [0, horizon).
  minisc::Time horizon;
  std::vector<PulseSpec> pulses;
  std::vector<OutageSpec> outages;
  std::vector<ChannelFaultSpec> channel_faults;
  std::vector<CrashSpec> crashes;
};

// ---- concrete drawn faults (what one seed produces) ----

struct Pulse {
  std::string resource;
  minisc::Time at;
  double extra_cycles = 0.0;
};

struct Outage {
  std::string resource;
  minisc::Time start;
  minisc::Time length;
};

/// One seeded instantiation of a ScenarioConfig: every random choice in the
/// spec is resolved into a concrete, sorted fault timeline at construction.
/// The same (config, seed) pair always yields the same timeline and the same
/// per-channel fault streams; seeds index the campaign's sample space.
class FaultScenario {
 public:
  FaultScenario(ScenarioConfig config, std::uint64_t seed);

  std::uint64_t seed() const { return seed_; }
  const ScenarioConfig& config() const { return config_; }

  /// Drawn pulses / outages, each sorted by time.
  const std::vector<Pulse>& pulses() const { return pulses_; }
  const std::vector<Outage>& outages() const { return outages_; }
  /// Crashes from the config, sorted by time.
  const std::vector<CrashSpec>& crashes() const { return crashes_; }

  /// The fault spec applying to a channel name (exact match wins over "*");
  /// nullptr when the scenario leaves the channel fault-free.
  const ChannelFaultSpec* channel_spec(const std::string& name) const;

  /// Independent deterministic stream for one channel, derived from the
  /// scenario seed and the channel name only — stable under any change to
  /// the rest of the scenario.
  Rng channel_stream(const std::string& name) const {
    return Rng(mix_seed(seed_, fnv1a(name)));
  }

  /// All drawn fault times (pulses, outage starts, crashes), sorted —
  /// recovery-latency analysis measures from these instants.
  std::vector<minisc::Time> fault_times() const;

 private:
  ScenarioConfig config_;
  std::uint64_t seed_;
  std::vector<Pulse> pulses_;
  std::vector<Outage> outages_;
  std::vector<CrashSpec> crashes_;
};

}  // namespace scfault
