#include "fault/injector.hpp"

#include <algorithm>

#include "core/context.hpp"
#include "core/resource.hpp"

namespace scfault {

FaultInjector::FaultInjector(minisc::Simulator& sim, scperf::Estimator& est,
                             const FaultScenario& scenario)
    : sim_(sim), est_(est), scenario_(scenario),
      consumed_(scenario.pulses().size(), false) {
  inner_ = sim_.hook();
  sim_.set_hook(this);
  // Segment-replay soundness: every fault-targeted resource must charge
  // conventionally. Pulses write extra cycles into the live accumulator
  // mid-segment (FP addition order would differ between a replayed and a
  // conventionally charged segment); outages stretch execution timing; a
  // crash kills mid-segment, so a replay trace would be dropped unresolved
  // while its charged counterpart kept the partial op histogram.
  for (const Pulse& pulse : scenario_.pulses()) {
    if (scperf::Resource* r = est_.find_resource(pulse.resource)) {
      r->set_memo_unsafe();
    }
  }
  for (const Outage& o : scenario_.outages()) {
    if (scperf::Resource* r = est_.find_resource(o.resource)) {
      r->set_memo_unsafe();
    }
  }
  for (const CrashSpec& c : scenario_.crashes()) {
    if (scperf::Resource* r = est_.mapped_resource(c.process)) {
      r->set_memo_unsafe();
    }
  }
  spawn_drivers();
}

FaultInjector::~FaultInjector() {
  if (sim_.hook() == this) sim_.set_hook(inner_);
}

void FaultInjector::spawn_drivers() {
  // HW and ENV outage windows are fully determined at t = 0: register them
  // as resource downtime up front (the estimator stretches HW segments over
  // the windows; node_reached stalls ENV processes inside one). Only SW
  // outages need a driver, because their effect rides the busy_until claim
  // protocol. Either way the lockup cycles are charged as fault energy.
  bool any_sw = false;
  for (const Outage& o : scenario_.outages()) {
    scperf::Resource* r = est_.find_resource(o.resource);
    if (r == nullptr) continue;  // unknown target: no effect
    if (r->kind() == scperf::ResourceKind::kSw) {
      any_sw = true;
      continue;
    }
    r->add_downtime(o.start, o.start + o.length);
    r->add_fault_cycles(o.length.to_ns_d() / r->period_ns());
    ++outages_applied_;
  }
  if (any_sw) {
    sim_.spawn("fault.outages", [this] {
      for (const Outage& o : scenario_.outages()) {
        const minisc::Time t = sim_.now();
        if (o.start > t) sim_.raw_wait(o.start - t);
        auto* sw = dynamic_cast<scperf::SwResource*>(
            est_.find_resource(o.resource));
        if (sw == nullptr) continue;  // HW/ENV: already registered above
        // Claims require busy_until <= now, so pinning it to the window end
        // stalls every occupation issued inside the window. An occupation
        // already running keeps its own (earlier) raw_wait and finishes, but
        // its successor on the same processor waits out the outage too.
        const minisc::Time end = o.start + o.length;
        if (sw->busy_until() < end) sw->set_busy_until(end);
        sw->add_fault_cycles(o.length.to_ns_d() / sw->period_ns());
        ++outages_applied_;
      }
    });
  }
  if (!scenario_.crashes().empty()) {
    sim_.spawn("fault.crashes", [this] {
      for (const CrashSpec& c : scenario_.crashes()) {
        const minisc::Time t = sim_.now();
        if (c.at > t) sim_.raw_wait(c.at - t);
        minisc::Process* victim = sim_.find_process(c.process);
        if (victim == nullptr || victim->terminated()) continue;
        if (c.restart_after == minisc::Time::max()) {
          sim_.kill(*victim);
        } else {
          sim_.kill_and_restart(*victim, c.restart_after);
        }
        ++crashes_applied_;
      }
    });
  }
}

void FaultInjector::drain_pulses(minisc::Process& p) {
  // Pulses are sorted; everything due at or before `now` targeting the
  // resource this process runs on is charged into the segment the estimator
  // is about to close. Due pulses for OTHER resources stay pending until one
  // of their own processes reaches a node — a pulse hits the first segment
  // boundary on its resource after the fault instant.
  if (next_pulse_ >= scenario_.pulses().size()) return;
  scperf::Resource* r = est_.mapped_resource(p.name());
  if (r == nullptr) return;
  scperf::SegmentAccum* acc = scperf::tl_accum;
  if (acc == nullptr) return;
  const minisc::Time now = sim_.now();
  const auto& pulses = scenario_.pulses();
  // next_pulse_ skips the fully-consumed prefix; within the due window we
  // scan for matches so cross-resource ordering cannot starve a pulse whose
  // resource's processes reach their nodes later than another resource's.
  for (std::size_t i = next_pulse_; i < pulses.size(); ++i) {
    const Pulse& pulse = pulses[i];
    if (pulse.at > now) break;
    if (consumed_[i] || pulse.resource != r->name()) continue;
    // Charging both the sequential sum and the critical path stretches a HW
    // segment's [Tmin, Tmax] interval by the full pulse, so the estimate
    // T = Tmin + (Tmax - Tmin) * k grows by extra_cycles for every k.
    acc->sum_cycles += pulse.extra_cycles;
    if (acc->track_ready) acc->max_ready += pulse.extra_cycles;
    acc->fault_cycles += pulse.extra_cycles;
    consumed_[i] = true;
    ++pulses_injected_;
    extra_cycles_injected_ += pulse.extra_cycles;
  }
  while (next_pulse_ < pulses.size() && consumed_[next_pulse_]) ++next_pulse_;
}

void FaultInjector::apply_env_faults(minisc::Process& p,
                                     scperf::Resource& env) {
  // Environment components are untimed, so there is no segment to charge:
  // a due pulse becomes a direct stall of its cycle cost at the ENV clock,
  // and an open outage window parks the process until the window closes —
  // the testbench goes quiet exactly while its resource is down.
  const auto& pulses = scenario_.pulses();
  minisc::Time stall;
  const minisc::Time now = sim_.now();
  for (std::size_t i = next_pulse_; i < pulses.size(); ++i) {
    const Pulse& pulse = pulses[i];
    if (pulse.at > now) break;
    if (consumed_[i] || pulse.resource != env.name()) continue;
    stall += env.cycles_to_time(pulse.extra_cycles);
    env.add_fault_cycles(pulse.extra_cycles);
    consumed_[i] = true;
    ++pulses_injected_;
    extra_cycles_injected_ += pulse.extra_cycles;
  }
  while (next_pulse_ < pulses.size() && consumed_[next_pulse_]) ++next_pulse_;
  const minisc::Time outage_end = env.downtime_stall_end(now);
  if (outage_end > now) {
    env.add_stalled(outage_end - now);
    stall += outage_end - now;
  }
  if (!stall.is_zero()) sim_.raw_wait(stall);
}

void FaultInjector::process_started(minisc::Process& p) {
  if (inner_ != nullptr) inner_->process_started(p);
}

void FaultInjector::process_finished(minisc::Process& p) {
  if (inner_ != nullptr) inner_->process_finished(p);
}

void FaultInjector::process_resumed(minisc::Process& p) {
  if (inner_ != nullptr) inner_->process_resumed(p);
}

void FaultInjector::node_reached(minisc::Process& p, minisc::NodeKind kind,
                                 const char* label) {
  scperf::Resource* r = est_.mapped_resource(p.name());
  if (r != nullptr && r->kind() == scperf::ResourceKind::kEnv) {
    apply_env_faults(p, *r);
  } else {
    drain_pulses(p);
  }
  if (inner_ != nullptr) inner_->node_reached(p, kind, label);
}

void FaultInjector::node_done(minisc::Process& p, minisc::NodeKind kind,
                              const char* label) {
  if (inner_ != nullptr) inner_->node_done(p, kind, label);
}

}  // namespace scfault
