#include "hls/fu_library.hpp"

#include <limits>

namespace hls {

const char* to_string(FuKind k) {
  switch (k) {
    case FuKind::kAlu:
      return "ALU";
    case FuKind::kMul:
      return "MUL";
    case FuKind::kDiv:
      return "DIV";
    case FuKind::kMem:
      return "MEM";
    case FuKind::kNone:
      return "-";
    case FuKind::kCount_:
      break;
  }
  return "?";
}

FuKind fu_kind_of(scperf::Op op) {
  using scperf::Op;
  switch (op) {
    case Op::kMul:
      return FuKind::kMul;
    case Op::kDiv:
    case Op::kMod:
      return FuKind::kDiv;
    case Op::kIndex:
      return FuKind::kMem;
    case Op::kAssign:
    case Op::kAssignRes:
    case Op::kBranch:
    case Op::kCall:
    case Op::kReturn:
      return FuKind::kNone;  // wiring / FSM control: no datapath FU
    default:
      return FuKind::kAlu;
  }
}

FuLibrary default_fu_library() {
  FuLibrary lib;
  lib[FuKind::kAlu] = {8.0, 100.0};
  lib[FuKind::kMul] = {16.0, 620.0};
  lib[FuKind::kDiv] = {75.0, 1500.0};
  lib[FuKind::kMem] = {10.0, 150.0};
  lib[FuKind::kNone] = {0.0, 0.0};
  return lib;
}

Allocation Allocation::minimal() {
  Allocation a;
  a[FuKind::kAlu] = 1;
  a[FuKind::kMul] = 1;
  a[FuKind::kDiv] = 1;
  a[FuKind::kMem] = 1;
  return a;
}

Allocation Allocation::unconstrained() {
  Allocation a;
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  a[FuKind::kAlu] = kInf;
  a[FuKind::kMul] = kInf;
  a[FuKind::kDiv] = kInf;
  a[FuKind::kMem] = kInf;
  return a;
}

double Allocation::area(const FuLibrary& lib) const {
  double total = 0.0;
  for (std::size_t i = 0; i < kNumFuKinds; ++i) {
    const auto k = static_cast<FuKind>(i);
    if (k == FuKind::kNone) continue;
    total += static_cast<double>(count[i]) * lib[k].area;
  }
  return total;
}

}  // namespace hls
