#include "hls/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <string>

namespace hls {

namespace {

/// Whole clock cycles an operation occupies its FU (chaining off).
std::uint32_t op_cycles(const FuLibrary& lib, scperf::Op op, double clock_ns) {
  const double d = lib.op_delay_ns(op);
  if (d <= 0.0) return 0;
  return static_cast<std::uint32_t>(std::ceil(d / clock_ns - 1e-9));
}

/// Peak number of simultaneously-busy FUs per kind for a given schedule,
/// where node i is busy during [start[i], start[i] + cycles_of(i)).
Allocation peak_usage(const scperf::Dfg& dfg, const FuLibrary& lib,
                      double clock_ns,
                      const std::vector<std::uint32_t>& start,
                      std::uint32_t horizon) {
  Allocation used;
  if (horizon == 0) return used;
  std::array<std::vector<std::uint32_t>, kNumFuKinds> busy;
  for (auto& v : busy) v.assign(horizon, 0);
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const FuKind k = fu_kind_of(dfg.nodes[i].op);
    if (k == FuKind::kNone) continue;
    const std::uint32_t len = std::max(1u, op_cycles(lib, dfg.nodes[i].op,
                                                     clock_ns));
    for (std::uint32_t c = start[i]; c < start[i] + len && c < horizon; ++c) {
      ++busy[static_cast<std::size_t>(k)][c];
    }
  }
  for (std::size_t k = 0; k < kNumFuKinds; ++k) {
    for (std::uint32_t v : busy[k]) {
      used.count[k] = std::max(used.count[k], v);
    }
  }
  return used;
}

}  // namespace

scperf::Dfg strip_control(const scperf::Dfg& dfg) {
  using scperf::Op;
  const std::size_t n = dfg.size();
  const auto is_cmp = [](Op op) {
    return op == Op::kEq || op == Op::kNe || op == Op::kLt || op == Op::kLe ||
           op == Op::kGt || op == Op::kGe;
  };
  // A comparison is control if every consumer is a branch (or it has no
  // consumer at all — a condition whose boolean was used and discarded).
  std::vector<bool> data_consumed(n, false);
  for (const auto& nd : dfg.nodes) {
    if (nd.op == Op::kBranch) continue;
    if (nd.a != 0) data_consumed[nd.a - 1] = true;
    if (nd.b != 0) data_consumed[nd.b - 1] = true;
  }
  std::vector<bool> drop(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const Op op = dfg.nodes[i].op;
    if (op == Op::kBranch) drop[i] = true;
    if (is_cmp(op) && !data_consumed[i]) drop[i] = true;
  }
  // Rebuild with remapped indices; dropped inputs become external.
  scperf::Dfg out;
  std::vector<std::uint32_t> remap(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (drop[i]) continue;
    scperf::DfgNode nd = dfg.nodes[i];
    nd.a = remap[nd.a];
    nd.b = remap[nd.b];
    out.nodes.push_back(nd);
    remap[i + 1] = static_cast<std::uint32_t>(out.nodes.size());
  }
  return out;
}

ScheduleResult asap_chained(const scperf::Dfg& dfg, const FuLibrary& lib,
                            double clock_ns) {
  ScheduleResult res;
  const std::size_t n = dfg.size();
  res.start_cycle.assign(n, 0);
  if (n == 0) return res;

  // Boundary-aware chained ASAP: start[i] = max(finish of operands), then
  //  - zero-delay wiring passes through;
  //  - a multi-cycle op (delay > clock) starts at the next boundary and
  //    holds ceil(delay / clock) whole cycles;
  //  - a sub-cycle op chains at its ready time unless it would cross a
  //    cycle boundary, in which case a register is inserted and it starts
  //    at the boundary.
  std::vector<double> finish_ns(n, 0.0);
  double cp = 0.0;
  const auto next_boundary = [clock_ns](double t) {
    return std::ceil(t / clock_ns - 1e-9) * clock_ns;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const scperf::DfgNode& nd = dfg.nodes[i];
    double ready = 0.0;
    if (nd.a != 0) ready = std::max(ready, finish_ns[nd.a - 1]);
    if (nd.b != 0) ready = std::max(ready, finish_ns[nd.b - 1]);
    const double delay = lib.op_delay_ns(nd.op);
    double start = ready;
    if (delay <= 0.0) {
      finish_ns[i] = ready;
    } else if (delay > clock_ns) {
      start = next_boundary(ready);
      finish_ns[i] = start + std::ceil(delay / clock_ns - 1e-9) * clock_ns;
    } else {
      const double boundary_after =
          std::floor(start / clock_ns + 1e-9) * clock_ns + clock_ns;
      if (start + delay > boundary_after + 1e-9) start = boundary_after;
      finish_ns[i] = start + delay;
    }
    cp = std::max(cp, finish_ns[i]);
    res.start_cycle[i] =
        static_cast<std::uint32_t>(std::floor(start / clock_ns + 1e-9));
  }
  res.cycles = static_cast<std::uint32_t>(std::ceil(cp / clock_ns - 1e-9));
  res.ns = res.cycles * clock_ns;
  res.used = peak_usage(dfg, lib, clock_ns, res.start_cycle,
                        std::max(res.cycles, 1u));
  return res;
}

ScheduleResult sequential_schedule(const scperf::Dfg& dfg,
                                   const FuLibrary& lib, double clock_ns) {
  ScheduleResult res;
  const std::size_t n = dfg.size();
  res.start_cycle.assign(n, 0);
  std::uint32_t cycle = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const FuKind k = fu_kind_of(dfg.nodes[i].op);
    res.start_cycle[i] = cycle;
    if (k == FuKind::kNone) continue;
    cycle += std::max(1u, op_cycles(lib, dfg.nodes[i].op, clock_ns));
  }
  res.cycles = cycle;
  res.ns = res.cycles * clock_ns;
  // One shared universal FU: report it as one ALU-equivalent of each kind
  // actually used.
  for (const auto& nd : dfg.nodes) {
    const FuKind k = fu_kind_of(nd.op);
    if (k != FuKind::kNone) res.used[k] = 1;
  }
  return res;
}

std::vector<std::uint32_t> alap_cycles(const scperf::Dfg& dfg,
                                       const FuLibrary& lib, double clock_ns,
                                       std::uint32_t deadline) {
  const std::size_t n = dfg.size();
  std::vector<std::uint32_t> late(n, deadline);
  // Nodes are stored in topological (execution) order; walk backwards.
  for (std::size_t i = n; i-- > 0;) {
    const std::uint32_t len =
        std::max(1u, op_cycles(lib, dfg.nodes[i].op, clock_ns));
    // Latest start so the op finishes by its consumers' latest starts.
    std::uint32_t latest = deadline >= len ? deadline - len : 0;
    for (std::size_t j = i + 1; j < n; ++j) {
      const scperf::DfgNode& c = dfg.nodes[j];
      if (c.a == i + 1 || c.b == i + 1) {
        latest = std::min(latest, late[j] >= len ? late[j] - len : 0u);
      }
    }
    late[i] = latest;
  }
  return late;
}

ScheduleResult list_schedule(const scperf::Dfg& dfg, const FuLibrary& lib,
                             double clock_ns, const Allocation& alloc) {
  ScheduleResult res;
  const std::size_t n = dfg.size();
  res.start_cycle.assign(n, 0);
  if (n == 0) return res;

  for (const auto& nd : dfg.nodes) {
    const FuKind k = fu_kind_of(nd.op);
    if (k != FuKind::kNone && alloc[k] == 0) {
      throw std::invalid_argument(
          std::string("hls: allocation has no ") + to_string(k) +
          " but the DFG needs one");
    }
  }

  // Priority: ALAP against the sequential-bound deadline (smaller = more
  // urgent, i.e. on the critical path).
  std::uint32_t seq_bound = 0;
  for (const auto& nd : dfg.nodes) {
    seq_bound += std::max(1u, op_cycles(lib, nd.op, clock_ns));
  }
  const std::vector<std::uint32_t> priority =
      alap_cycles(dfg, lib, clock_ns, std::max(seq_bound, 1u));

  std::vector<std::uint32_t> finish(n, 0);
  std::vector<bool> scheduled(n, false);
  std::size_t remaining = n;
  std::uint32_t cycle = 0;
  // Busy-until per FU instance, per kind.
  std::array<std::vector<std::uint32_t>, kNumFuKinds> fu_free;
  for (std::size_t k = 0; k < kNumFuKinds; ++k) {
    const std::uint32_t cnt =
        std::min<std::uint32_t>(alloc.count[k], 4096u);
    fu_free[k].assign(cnt, 0);
  }

  while (remaining > 0) {
    // Within one cycle, keep sweeping until nothing more can start: a
    // zero-latency wiring op completing "now" may unblock its consumers in
    // the same cycle.
    bool progress = true;
    while (progress && remaining > 0) {
      progress = false;
      // Collect ready, unscheduled ops; most urgent first, ties by index.
      std::vector<std::size_t> ready;
      for (std::size_t i = 0; i < n; ++i) {
        if (scheduled[i]) continue;
        const scperf::DfgNode& nd = dfg.nodes[i];
        const bool a_ok = nd.a == 0 || (scheduled[nd.a - 1] &&
                                        finish[nd.a - 1] <= cycle);
        const bool b_ok = nd.b == 0 || (scheduled[nd.b - 1] &&
                                        finish[nd.b - 1] <= cycle);
        if (a_ok && b_ok) ready.push_back(i);
      }
      std::sort(ready.begin(), ready.end(),
                [&](std::size_t x, std::size_t y) {
                  return priority[x] != priority[y]
                             ? priority[x] < priority[y]
                             : x < y;
                });
      for (std::size_t i : ready) {
        const scperf::DfgNode& nd = dfg.nodes[i];
        const FuKind k = fu_kind_of(nd.op);
        const std::uint32_t len =
            std::max(1u, op_cycles(lib, nd.op, clock_ns));
        if (k == FuKind::kNone) {
          // Wiring: completes instantly once operands are ready.
          scheduled[i] = true;
          res.start_cycle[i] = cycle;
          finish[i] = cycle;
          --remaining;
          progress = true;
          continue;
        }
        auto& frees = fu_free[static_cast<std::size_t>(k)];
        for (std::uint32_t& f : frees) {
          if (f <= cycle) {
            f = cycle + len;
            scheduled[i] = true;
            res.start_cycle[i] = cycle;
            finish[i] = cycle + len;
            --remaining;
            progress = true;
            break;
          }
        }
      }
    }
    ++cycle;
    assert(cycle < 10'000'000 && "list_schedule failed to converge");
  }

  for (std::size_t i = 0; i < n; ++i) {
    res.cycles = std::max(res.cycles, finish[i]);
  }
  res.ns = res.cycles * clock_ns;
  res.used = peak_usage(dfg, lib, clock_ns, res.start_cycle,
                        std::max(res.cycles, 1u));
  return res;
}

ScheduleResult force_directed(const scperf::Dfg& dfg, const FuLibrary& lib,
                              double clock_ns,
                              std::uint32_t deadline_cycles) {
  ScheduleResult res;
  const std::size_t n = dfg.size();
  res.start_cycle.assign(n, 0);
  if (n == 0) return res;

  const auto len_of = [&](std::size_t i) -> std::uint32_t {
    if (fu_kind_of(dfg.nodes[i].op) == FuKind::kNone) return 0;  // wiring
    return std::max(1u, op_cycles(lib, dfg.nodes[i].op, clock_ns));
  };

  // Consumers lists for range propagation.
  std::vector<std::vector<std::size_t>> consumers(n);
  for (std::size_t i = 0; i < n; ++i) {
    const scperf::DfgNode& nd = dfg.nodes[i];
    if (nd.a != 0) consumers[nd.a - 1].push_back(i);
    if (nd.b != 0) consumers[nd.b - 1].push_back(i);
  }

  std::vector<std::uint32_t> asap(n, 0), alap(n, 0);
  const auto recompute_ranges = [&](const std::vector<bool>& fixed,
                                    const std::vector<std::uint32_t>& start) {
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) {
        asap[i] = start[i];
        continue;
      }
      std::uint32_t s = 0;
      const scperf::DfgNode& nd = dfg.nodes[i];
      if (nd.a != 0) s = std::max(s, asap[nd.a - 1] + len_of(nd.a - 1));
      if (nd.b != 0) s = std::max(s, asap[nd.b - 1] + len_of(nd.b - 1));
      asap[i] = s;
    }
    for (std::size_t i = n; i-- > 0;) {
      if (fixed[i]) {
        alap[i] = start[i];
        continue;
      }
      std::uint32_t latest = deadline_cycles - std::min(deadline_cycles,
                                                        len_of(i));
      for (std::size_t c : consumers[i]) {
        const std::uint32_t bound =
            alap[c] >= len_of(i) ? alap[c] - len_of(i) : 0u;
        latest = std::min(latest, bound);
      }
      alap[i] = latest;
      if (alap[i] < asap[i]) {
        throw std::invalid_argument(
            "hls: force_directed deadline below the critical path");
      }
    }
  };

  std::vector<bool> fixed(n, false);
  std::vector<std::uint32_t> start(n, 0);
  recompute_ranges(fixed, start);

  // Distribution graphs per FU kind: expected activity per cycle, assuming a
  // uniform start distribution over [asap, alap].
  const auto distribution = [&](std::array<std::vector<double>, kNumFuKinds>&
                                    dg) {
    for (auto& v : dg) v.assign(deadline_cycles + 1, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const FuKind k = fu_kind_of(dfg.nodes[i].op);
      if (k == FuKind::kNone) continue;
      const std::uint32_t len = len_of(i);
      const double p = 1.0 / (alap[i] - asap[i] + 1);
      for (std::uint32_t s = asap[i]; s <= alap[i]; ++s) {
        for (std::uint32_t c = s; c < s + len && c <= deadline_cycles; ++c) {
          dg[static_cast<std::size_t>(k)][c] += p;
        }
      }
    }
  };

  // Wiring ops are zero-length pass-throughs: they stay unfixed (their
  // ranges follow their neighbours) and are never selected for placement.
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (fu_kind_of(dfg.nodes[i].op) != FuKind::kNone) ++remaining;
  }

  while (remaining > 0) {
    std::array<std::vector<double>, kNumFuKinds> dg;
    distribution(dg);
    double best_force = 0.0;
    std::size_t best_op = SIZE_MAX;
    std::uint32_t best_start = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (fixed[i]) continue;
      const FuKind k = fu_kind_of(dfg.nodes[i].op);
      if (k == FuKind::kNone) continue;  // wiring floats
      const std::uint32_t len = len_of(i);
      const double p = 1.0 / (alap[i] - asap[i] + 1);
      for (std::uint32_t s = asap[i]; s <= alap[i]; ++s) {
        // Self force: concentrate the op at s, relieve its spread-out share.
        double force = 0.0;
        for (std::uint32_t c = s; c < s + len && c <= deadline_cycles; ++c) {
          force += dg[static_cast<std::size_t>(k)][c];
        }
        // Subtract the op's own expected contribution over the window.
        for (std::uint32_t ss = asap[i]; ss <= alap[i]; ++ss) {
          for (std::uint32_t c = ss; c < ss + len && c <= deadline_cycles;
               ++c) {
            if (c >= s && c < s + len) force -= p;
          }
        }
        if (best_op == SIZE_MAX || force < best_force) {
          best_force = force;
          best_op = i;
          best_start = s;
        }
      }
    }
    fixed[best_op] = true;
    start[best_op] = best_start;
    --remaining;
    recompute_ranges(fixed, start);
  }

  // Wiring ops settle at their final ASAP position.
  for (std::size_t i = 0; i < n; ++i) {
    if (!fixed[i]) start[i] = asap[i];
  }
  res.start_cycle = start;
  res.cycles = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (fu_kind_of(dfg.nodes[i].op) == FuKind::kNone) continue;
    res.cycles = std::max(res.cycles, start[i] + len_of(i));
  }
  res.ns = res.cycles * clock_ns;
  res.used = peak_usage(dfg, lib, clock_ns, res.start_cycle,
                        std::max(res.cycles, 1u));
  return res;
}

std::vector<DesignPoint> design_space(const scperf::Dfg& dfg,
                                      const FuLibrary& lib, double clock_ns) {
  // Upper bound on useful parallelism: the unconstrained schedule's peak use.
  const ScheduleResult fastest = asap_chained(dfg, lib, clock_ns);
  Allocation max_useful = fastest.used;
  for (std::size_t k = 0; k < kNumFuKinds; ++k) {
    max_useful.count[k] = std::max(max_useful.count[k], 1u);
  }
  max_useful[FuKind::kNone] = 0;

  // Enumerate the (small) allocation grid and keep the Pareto frontier.
  std::vector<DesignPoint> points;
  for (std::uint32_t alu = 1; alu <= max_useful[FuKind::kAlu]; ++alu) {
    for (std::uint32_t mul = 1; mul <= max_useful[FuKind::kMul]; ++mul) {
      for (std::uint32_t mem = 1; mem <= max_useful[FuKind::kMem]; ++mem) {
        Allocation a;
        a[FuKind::kAlu] = alu;
        a[FuKind::kMul] = mul;
        a[FuKind::kDiv] = std::max(max_useful[FuKind::kDiv], 1u);
        a[FuKind::kMem] = mem;
        const ScheduleResult r = list_schedule(dfg, lib, clock_ns, a);
        points.push_back({a, r.cycles, r.ns, a.area(lib)});
      }
    }
  }
  // Pareto filter: keep points not dominated in (area, time).
  std::vector<DesignPoint> pareto;
  for (const DesignPoint& p : points) {
    bool dominated = false;
    for (const DesignPoint& q : points) {
      if ((q.area < p.area && q.cycles <= p.cycles) ||
          (q.area <= p.area && q.cycles < p.cycles)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) pareto.push_back(p);
  }
  std::sort(pareto.begin(), pareto.end(),
            [](const DesignPoint& x, const DesignPoint& y) {
              return x.area != y.area ? x.area < y.area : x.cycles < y.cycles;
            });
  // Drop duplicate (area, cycles) pairs.
  pareto.erase(std::unique(pareto.begin(), pareto.end(),
                           [](const DesignPoint& x, const DesignPoint& y) {
                             return x.area == y.area && x.cycles == y.cycles;
                           }),
               pareto.end());
  return pareto;
}

}  // namespace hls
