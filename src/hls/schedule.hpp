#pragma once

#include <cstdint>
#include <vector>

#include "core/dfg.hpp"
#include "hls/fu_library.hpp"

namespace hls {

/// Result of scheduling one segment DFG.
struct ScheduleResult {
  std::uint32_t cycles = 0;        ///< schedule length (clock cycles)
  double ns = 0.0;                 ///< cycles * clock period
  std::vector<std::uint32_t> start_cycle;  ///< per DFG node (0-based)
  Allocation used;                 ///< peak concurrent FUs per kind
  double area(const FuLibrary& lib) const { return used.area(lib); }
};

/// Removes control operations a behavioural synthesis tool folds into the
/// controller FSM rather than scheduling on the datapath: branch nodes, and
/// comparison nodes whose results are consumed only by branches (loop exit
/// tests). Data-flow comparisons (e.g. a running max) are kept. Node indices
/// are remapped; severed control inputs become external inputs.
scperf::Dfg strip_control(const scperf::Dfg& dfg);

/// Time-constrained scheduling: ASAP with cycle-boundary-aware operator
/// chaining. A single-cycle operation may chain after its producer within
/// the same clock period, but an operation whose execution would cross a
/// cycle boundary is registered and starts at the next boundary; multi-cycle
/// operations always start on a boundary and hold whole cycles. This is the
/// behavioural-synthesis "fastest implementation" end of Fig. 4, against
/// which the library's best-case estimate is judged.
ScheduleResult asap_chained(const scperf::Dfg& dfg, const FuLibrary& lib,
                            double clock_ns);

/// Resource-constrained synthesis with a single shared datapath unit: every
/// (non-wiring) operation executes sequentially, each occupying whole clock
/// cycles. The paper's "only one ALU is used and all the operations are
/// executed sequentially" end of the design space.
ScheduleResult sequential_schedule(const scperf::Dfg& dfg,
                                   const FuLibrary& lib, double clock_ns);

/// ALAP start cycles for the given deadline (used as list-scheduling
/// priority: less slack = more urgent). Chaining disabled: every op takes
/// ceil(delay / clock) full cycles.
std::vector<std::uint32_t> alap_cycles(const scperf::Dfg& dfg,
                                       const FuLibrary& lib, double clock_ns,
                                       std::uint32_t deadline);

/// Resource-constrained list scheduling with ALAP-slack priority, no
/// chaining (operations start on cycle boundaries and hold their FU for
/// ceil(delay / clock) cycles). With Allocation::minimal() this is the
/// behavioural-synthesis "single ALU" worst-case end of Fig. 4.
ScheduleResult list_schedule(const scperf::Dfg& dfg, const FuLibrary& lib,
                             double clock_ns, const Allocation& alloc);

/// Time-constrained force-directed scheduling (Paulin & Knight): place
/// every operation within [ASAP, ALAP] of the given deadline so that the
/// expected concurrency ("distribution graph") per FU kind is as flat as
/// possible, minimising the peak FU requirement — the classic complement to
/// resource-constrained list scheduling. Chaining off; `deadline_cycles`
/// must be at least the unchained critical path (throws otherwise).
ScheduleResult force_directed(const scperf::Dfg& dfg, const FuLibrary& lib,
                              double clock_ns, std::uint32_t deadline_cycles);

/// One point of the Fig. 4 design space.
struct DesignPoint {
  Allocation alloc;
  std::uint32_t cycles = 0;
  double ns = 0.0;
  double area = 0.0;
};

/// Sweeps FU allocations from minimal to full parallelism and returns the
/// area/time Pareto frontier (sorted by increasing area, decreasing time).
std::vector<DesignPoint> design_space(const scperf::Dfg& dfg,
                                      const FuLibrary& lib, double clock_ns);

}  // namespace hls
