#pragma once

#include <array>
#include <cstdint>

#include "core/op.hpp"

namespace hls {

/// Functional-unit kinds the synthesis engine allocates.
enum class FuKind : std::uint8_t {
  kAlu,   ///< add/sub/compare/logic/shift
  kMul,
  kDiv,
  kMem,   ///< memory port (array accesses)
  kNone,  ///< free (wiring: assignments, control folded into the FSM)
  kCount_,
};

inline constexpr std::size_t kNumFuKinds =
    static_cast<std::size_t>(FuKind::kCount_);

const char* to_string(FuKind k);

/// Which FU executes each C++-level operation.
FuKind fu_kind_of(scperf::Op op);

/// Technology characterisation of the functional units: propagation delay in
/// nanoseconds (used for operator chaining) and area in equivalent-gate
/// units. This is the "standard cell library" side of the paper's platform
/// characterisation; the estimation library's asic_hw_cost_table() is derived
/// from these delays rounded up to whole clock cycles.
struct FuLibrary {
  struct Entry {
    double delay_ns = 0.0;
    double area = 0.0;
  };
  std::array<Entry, kNumFuKinds> entries{};

  const Entry& operator[](FuKind k) const {
    return entries[static_cast<std::size_t>(k)];
  }
  Entry& operator[](FuKind k) { return entries[static_cast<std::size_t>(k)]; }

  /// Delay of one operation (the delay of the FU kind executing it).
  double op_delay_ns(scperf::Op op) const {
    return (*this)[fu_kind_of(op)].delay_ns;
  }
};

/// The default 0.18um-ish characterisation used across this repository:
/// ALU 8 ns / 100 units, multiplier 16 ns / 620 units, divider 75 ns /
/// 1500 units, memory port 10 ns / 150 units.
FuLibrary default_fu_library();

/// Per-kind FU allocation for resource-constrained scheduling.
struct Allocation {
  std::array<std::uint32_t, kNumFuKinds> count{};

  std::uint32_t operator[](FuKind k) const {
    return count[static_cast<std::size_t>(k)];
  }
  std::uint32_t& operator[](FuKind k) {
    return count[static_cast<std::size_t>(k)];
  }

  /// One FU of every kind: the paper's "only one ALU" worst-case end of the
  /// design space.
  static Allocation minimal();
  /// Effectively unconstrained.
  static Allocation unconstrained();

  double area(const FuLibrary& lib) const;
};

}  // namespace hls
