#include "workloads/table1.hpp"

#include <gtest/gtest.h>

#include "core/scperf.hpp"

namespace workloads {
namespace {

/// The three forms of each benchmark implement the same algorithm on the
/// same data: their checksums must agree exactly. This is the guard that the
/// timing comparison (Table 1) compares like with like.
class Table1Forms : public ::testing::TestWithParam<std::size_t> {
 protected:
  const Benchmark& bench() const { return table1_suite()[GetParam()]; }
};

TEST_P(Table1Forms, ReferenceAndAnnotatedAgree) {
  EXPECT_EQ(bench().reference(), bench().annotated());
}

TEST_P(Table1Forms, ReferenceAndIssAgree) {
  EXPECT_EQ(bench().reference(), bench().iss().checksum);
}

TEST_P(Table1Forms, IssMakesProgress) {
  const IssResult r = bench().iss();
  EXPECT_GT(r.instructions, 0u);
  EXPECT_GE(r.cycles, r.instructions);  // every instruction costs >= 1 cycle
}

TEST_P(Table1Forms, AnnotatedChargesOps) {
  scperf::CostTable t = scperf::orsim_sw_cost_table();
  scperf::SegmentAccum acc;
  acc.table = &t;
  scperf::tl_accum = &acc;
  (void)bench().annotated();
  scperf::tl_accum = nullptr;
  EXPECT_GT(acc.op_count, 0u);
  EXPECT_GT(acc.sum_cycles, 0.0);
}

/// The headline accuracy claim of Table 1: the library estimate tracks the
/// cycle-accurate ISS within a few percent. The paper reports errors below
/// 4.5%; the shipped calibration achieves well under that on this suite, and
/// this test locks the bound in so a regression of the cost table or the
/// cycle model is caught.
TEST_P(Table1Forms, LibraryEstimateWithinFivePercentOfIss) {
  scperf::CostTable t = scperf::orsim_sw_cost_table();
  scperf::SegmentAccum acc;
  acc.table = &t;
  scperf::tl_accum = &acc;
  (void)bench().annotated();
  scperf::tl_accum = nullptr;

  const IssResult iss = bench().iss();
  const double err =
      (acc.sum_cycles - static_cast<double>(iss.cycles)) /
      static_cast<double>(iss.cycles);
  EXPECT_LT(std::abs(err), 0.05)
      << bench().name << ": library " << acc.sum_cycles << " vs ISS "
      << iss.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, Table1Forms, ::testing::Range<std::size_t>(0, 6),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string n = table1_suite()[info.param].name;
      for (char& c : n) {
        if (c == ' ') c = '_';
      }
      return n;
    });

TEST(Table1Suite, HasSixBenchmarksInPaperOrder) {
  const auto& s = table1_suite();
  ASSERT_EQ(s.size(), 6u);
  EXPECT_EQ(s[0].name, "FIR");
  EXPECT_EQ(s[1].name, "Compress");
  EXPECT_EQ(s[2].name, "Quick sort");
  EXPECT_EQ(s[3].name, "Bubble");
  EXPECT_EQ(s[4].name, "Fibonacci");
  EXPECT_EQ(s[5].name, "Array");
}

TEST(OutOfSample, MatrixFormsAgree) {
  const Benchmark m = make_matrix();
  EXPECT_EQ(m.reference(), m.annotated());
  EXPECT_EQ(m.reference(), m.iss().checksum);
}

TEST(OutOfSample, MatrixEstimateWithinTenPercent) {
  // The matrix kernel was never part of the calibration fit, so its error
  // measures generalisation; a looser band than the in-sample 5% applies.
  const Benchmark m = make_matrix();
  scperf::CostTable t = scperf::orsim_sw_cost_table();
  scperf::SegmentAccum acc;
  acc.table = &t;
  scperf::tl_accum = &acc;
  (void)m.annotated();
  scperf::tl_accum = nullptr;
  const IssResult iss = m.iss();
  const double err = (acc.sum_cycles - static_cast<double>(iss.cycles)) /
                     static_cast<double>(iss.cycles);
  EXPECT_LT(std::abs(err), 0.10)
      << "library " << acc.sum_cycles << " vs ISS " << iss.cycles;
}

TEST(OutOfSample, NaiveIndexingOverestimates) {
  // Documented limitation of source-level estimation: the naive
  // `a[i*N+k]` indexing charges two address multiplies per MAC that any
  // optimising compiler strength-reduces away, so the naive form
  // over-estimates substantially. (The shipped matrix benchmark hoists the
  // index arithmetic, the usual source style.)
  constexpr int kN = 8;
  scperf::CostTable t = scperf::orsim_sw_cost_table();
  scperf::SegmentAccum naive_acc;
  naive_acc.table = &t;
  scperf::SegmentAccum hoisted_acc;
  hoisted_acc.table = &t;

  scperf::garray<int> a(kN * kN), b(kN * kN), c(kN * kN);
  for (int p = 0; p < kN * kN; ++p) {
    a.at_raw(static_cast<std::size_t>(p)).set_raw(p % 7);
    b.at_raw(static_cast<std::size_t>(p)).set_raw(p % 5);
  }

  scperf::tl_accum = &naive_acc;
  {
    scperf::gint i = 0;
    while (i < kN) {
      scperf::gint j = 0;
      while (j < kN) {
        scperf::gint acc = 0;
        scperf::gint k = 0;
        while (k < kN) {
          acc = acc + a[i * kN + k] * b[k * kN + j];
          k = k + 1;
        }
        c[i * kN + j] = acc;
        j = j + 1;
      }
      i = i + 1;
    }
  }
  scperf::tl_accum = &hoisted_acc;
  {
    scperf::gint i = 0;
    while (i < kN) {
      scperf::gint arow = i * kN;
      scperf::gint j = 0;
      while (j < kN) {
        scperf::gint acc = 0;
        scperf::gint bidx = j;
        scperf::gint k = 0;
        while (k < kN) {
          acc = acc + a[arow + k] * b[bidx];
          bidx = bidx + kN;
          k = k + 1;
        }
        c[arow + j] = acc;
        j = j + 1;
      }
      i = i + 1;
    }
  }
  scperf::tl_accum = nullptr;
  EXPECT_GT(naive_acc.sum_cycles, 1.15 * hoisted_acc.sum_cycles);
}

TEST(Table1Suite, ChecksumsAreStableAcrossRuns) {
  // Deterministic data generation: repeated runs must agree.
  for (const auto& b : table1_suite()) {
    EXPECT_EQ(b.reference(), b.reference()) << b.name;
  }
}

}  // namespace
}  // namespace workloads
