#include <gtest/gtest.h>

#include "core/scperf.hpp"
#include "workloads/vocoder/frames.hpp"
#include "workloads/vocoder/kernels.hpp"
#include "workloads/vocoder/kernels_asm.hpp"
#include "workloads/vocoder/pipeline.hpp"

namespace workloads::vocoder {
namespace {

// ---- frame synthesis ---------------------------------------------------------

TEST(Frames, DeterministicAndBounded) {
  const auto a = synth_frame(5);
  const auto b = synth_frame(5);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), static_cast<std::size_t>(kFrame));
  for (std::int32_t s : a) {
    EXPECT_LE(s, 2047);
    EXPECT_GE(s, -2047);
  }
}

TEST(Frames, DifferentIndicesDiffer) {
  EXPECT_NE(synth_frame(0), synth_frame(1));
}

// ---- kernel equivalence: reference vs annotated ------------------------------

TEST(VocoderKernels, LspEstimationRefVsAnnot) {
  const auto frame = synth_frame(2);
  std::int32_t lpc_ref[kOrder];
  ref::lsp_estimation(frame.data(), lpc_ref);

  scperf::garray<int> gframe(kFrame), glpc(kOrder);
  for (int i = 0; i < kFrame; ++i) {
    gframe.at_raw(static_cast<std::size_t>(i))
        .set_raw(frame[static_cast<std::size_t>(i)]);
  }
  annot::lsp_estimation(gframe, glpc);
  for (int i = 0; i < kOrder; ++i) {
    EXPECT_EQ(glpc.at_raw(static_cast<std::size_t>(i)).value(), lpc_ref[i])
        << "coefficient " << i;
  }
}

TEST(VocoderKernels, LpcCoefficientsBounded) {
  // The Levinson recursion clips intermediate values; outputs must respect
  // the documented bound whatever the input frame.
  for (int f = 0; f < 20; ++f) {
    const auto frame = synth_frame(f);
    std::int32_t lpc[kOrder];
    ref::lsp_estimation(frame.data(), lpc);
    for (int i = 0; i < kOrder; ++i) {
      EXPECT_LE(lpc[i], 32767);
      EXPECT_GE(lpc[i], -32767);
    }
  }
}

TEST(VocoderKernels, AcbSearchStaysInHistoryBounds) {
  // Regression test for the out-of-bounds lag window: the minimum lag must
  // keep hist[kHist - lag + n] inside the buffer for all n < kSub.
  static_assert(kMinLag >= kSub);
  static_assert(kHist - kMinLag + kSub <= kHist);
}

TEST(VocoderKernels, AcbGainNonNegativeAndClipped) {
  std::int32_t hist[kHist];
  for (int i = 0; i < kHist; ++i) hist[i] = (i * 37) % 4001 - 2000;
  for (int f = 0; f < 8; ++f) {
    const auto frame = synth_frame(f);
    std::int32_t lag = 0;
    const std::int32_t gain = ref::acb_search(frame.data(), hist, &lag);
    EXPECT_GE(gain, 0);
    EXPECT_LE(gain, 8191);
    EXPECT_GE(lag, kMinLag);
    EXPECT_LE(lag, kMaxLag);
  }
}

TEST(VocoderKernels, IcbPulsesOnDistinctTracks) {
  const auto frame = synth_frame(4);
  std::int32_t pulses[kTracks];
  ref::icb_search(frame.data(), pulses);
  for (int t = 0; t < kTracks; ++t) {
    const std::int32_t pos = pulses[t] >> 1;
    EXPECT_GE(pos, 0);
    EXPECT_LT(pos, kSub);
    EXPECT_EQ(pos % kTracks, t) << "pulse " << t << " off its track";
  }
}

TEST(VocoderKernels, PostprocOutputClipped) {
  const auto frame = synth_frame(6);
  std::int32_t lpc[kOrder];
  ref::lsp_estimation(frame.data(), lpc);
  std::int32_t prev[kOrder] = {};
  std::int32_t subc[kSubframes * kOrder];
  ref::lpc_interpolation(prev, lpc, subc);
  std::int32_t exc[kSub];
  for (int n = 0; n < kSub; ++n) exc[n] = frame[static_cast<std::size_t>(n)];
  std::int32_t mem[kOrder] = {};
  std::int32_t out[kSub];
  (void)ref::postproc(subc, exc, mem, out);
  for (int n = 0; n < kSub; ++n) {
    EXPECT_LE(out[n], 4095);
    EXPECT_GE(out[n], -4096);
  }
}

TEST(VocoderKernels, UpdateHistoryShiftsAndAppends) {
  std::int32_t hist[kHist];
  for (int i = 0; i < kHist; ++i) hist[i] = i;
  std::int32_t sub[kSub];
  for (int i = 0; i < kSub; ++i) sub[i] = 1000 + i;
  ref::update_history(hist, sub);
  EXPECT_EQ(hist[0], kSub);           // shifted left by one subframe
  EXPECT_EQ(hist[kHist - kSub - 1], kHist - 1);
  EXPECT_EQ(hist[kHist - kSub], 1000);  // appended
  EXPECT_EQ(hist[kHist - 1], 1000 + kSub - 1);
}

// ---- full-pipeline agreement across the three forms --------------------------

TEST(VocoderPipeline, ChecksumsAgreeAcrossForms) {
  constexpr int kFrames = 4;
  const long ref_checksum = run_reference(kFrames);
  const IssPipelineResult iss = run_iss(kFrames);
  const AnnotatedResult ann = run_annotated({.frames = kFrames});
  EXPECT_EQ(ref_checksum, iss.checksum);
  EXPECT_EQ(ref_checksum, ann.checksum);
}

TEST(VocoderPipeline, IssChargesEveryStage) {
  const IssPipelineResult iss = run_iss(2);
  EXPECT_GT(iss.cycles.lsp, 0u);
  EXPECT_GT(iss.cycles.lpc_int, 0u);
  EXPECT_GT(iss.cycles.acb, 0u);
  EXPECT_GT(iss.cycles.icb, 0u);
  EXPECT_GT(iss.cycles.post, 0u);
}

TEST(VocoderPipeline, LibraryTracksIssPerProcessWithinTenPercent) {
  // Table 3's accuracy claim at test scale: every process estimate within
  // 10% of the ISS (the shipped calibration achieves ~5%).
  constexpr int kFrames = 4;
  const AnnotatedResult ann = run_annotated({.frames = kFrames});
  const IssPipelineResult iss = run_iss(kFrames);
  const std::uint64_t iss_cycles[5] = {iss.cycles.lsp, iss.cycles.lpc_int,
                                       iss.cycles.acb, iss.cycles.icb,
                                       iss.cycles.post};
  for (int p = 0; p < 5; ++p) {
    const double lib = ann.process_cycles.at(kProcessNames[p]);
    const double ref = static_cast<double>(iss_cycles[p]);
    EXPECT_NEAR(lib, ref, 0.10 * ref) << kProcessNames[p];
  }
}

TEST(VocoderPipeline, MakespanAtLeastBottleneckProcess) {
  const AnnotatedResult ann = run_annotated({.frames = 3, .cpu_mhz = 50.0});
  double total_cycles = 0;
  for (const auto& [name, cyc] : ann.process_cycles) total_cycles += cyc;
  // All five share one CPU: the makespan cannot be shorter than the summed
  // computation time.
  const double total_ms = total_cycles / 50.0 / 1e6 * 1e3;
  EXPECT_GE(ann.sim_time.to_ms_d() * 1.0001, total_ms);
}

TEST(VocoderPipeline, RtosOverheadIncreasesMakespan) {
  const AnnotatedResult base =
      run_annotated({.frames = 2, .rtos_cycles_per_switch = 0.0});
  const AnnotatedResult rtos =
      run_annotated({.frames = 2, .rtos_cycles_per_switch = 500.0});
  EXPECT_EQ(base.checksum, rtos.checksum);
  EXPECT_GT(rtos.sim_time, base.sim_time);
}

TEST(VocoderPipeline, PostprocOnHwShortensMakespan) {
  const AnnotatedResult sw = run_annotated({.frames = 3});
  const AnnotatedResult hw =
      run_annotated({.frames = 3, .postproc_on_hw = true, .hw_k = 0.0});
  EXPECT_EQ(sw.checksum, hw.checksum);
  EXPECT_LT(hw.sim_time, sw.sim_time);
}

TEST(VocoderIss, StageCyclesAccumulateAcrossFrames) {
  IssVocoder vc;
  vc.process_frame(synth_frame(0));
  const std::uint64_t after_one = vc.cycles().total();
  vc.process_frame(synth_frame(1));
  EXPECT_GT(vc.cycles().total(), after_one);
}

}  // namespace
}  // namespace workloads::vocoder
