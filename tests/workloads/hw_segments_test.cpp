#include "workloads/hw_segments.hpp"

#include <gtest/gtest.h>

#include "core/scperf.hpp"
#include "hls/schedule.hpp"

namespace workloads {
namespace {

/// Runs a HW segment once on a HW-mapped process, returning (bc, wc, dfg).
struct HwRun {
  double bc = 0;
  double wc = 0;
  scperf::Dfg dfg;
  long checksum = 0;
};

HwRun run_hw(const HwSegment& seg) {
  HwRun out;
  minisc::Simulator sim;
  scperf::Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", 100.0, scperf::asic_hw_cost_table(),
                                 {.k = 0.0, .record_dfg = true});
  est.map(seg.name, hw);
  sim.spawn(seg.name, [&] { out.checksum = seg.body(); });
  sim.run();
  const auto stats = est.segment_stats(seg.name);
  EXPECT_EQ(stats.size(), 1u);
  out.bc = stats[0].bc_cycles_sum;
  out.wc = stats[0].wc_cycles_sum;
  out.dfg = est.segment_dfg(seg.name, "entry->exit");
  return out;
}

TEST(HwSegments, FirHasWideParallelismGap) {
  const HwRun r = run_hw(fir_hw_segment());
  EXPECT_GT(r.wc, 0.0);
  EXPECT_GT(r.bc, 0.0);
  // 16 independent MACs reduced pairwise: critical path far below the
  // single-ALU sum.
  EXPECT_LT(r.bc, 0.5 * r.wc);
  EXPECT_FALSE(r.dfg.empty());
}

TEST(HwSegments, EulerIsChainDominated) {
  const HwRun r = run_hw(euler_hw_segment());
  EXPECT_GT(r.bc, 0.0);
  // Serial dependence: best case close to worst case.
  EXPECT_GT(r.bc, 0.5 * r.wc);
}

TEST(HwSegments, LibraryBoundsTrackSynthesisWithinTenPercent) {
  // The core Table 2 property: the library's BC/WC estimates track the
  // behavioural-synthesis schedule lengths (time-constrained chained ASAP
  // and single-ALU sequential, both on the control-stripped DFG) within the
  // paper's HW error band.
  const hls::FuLibrary lib = hls::default_fu_library();
  constexpr double kClockNs = 10.0;
  for (const HwSegment& seg : {fir_hw_segment(), euler_hw_segment()}) {
    const HwRun r = run_hw(seg);
    const scperf::Dfg stripped = hls::strip_control(r.dfg);
    const auto fast = hls::asap_chained(stripped, lib, kClockNs);
    const auto slow = hls::sequential_schedule(stripped, lib, kClockNs);
    EXPECT_LE(fast.cycles, slow.cycles) << seg.name;
    EXPECT_NEAR(r.bc, fast.cycles, 0.10 * fast.cycles) << seg.name;
    EXPECT_NEAR(r.wc, slow.cycles, 0.10 * slow.cycles) << seg.name;
  }
}

TEST(HwSegments, StripControlRemovesOnlyBranchFedComparisons) {
  const HwRun r = run_hw(fir_hw_segment());
  const scperf::Dfg stripped = hls::strip_control(r.dfg);
  EXPECT_LT(stripped.size(), r.dfg.size());
  for (const auto& nd : stripped.nodes) {
    EXPECT_NE(nd.op, scperf::Op::kBranch);
    // Remapped operand indices must stay in range.
    EXPECT_LE(nd.a, stripped.size());
    EXPECT_LE(nd.b, stripped.size());
  }
}

TEST(HwSegments, ChecksumsAreDeterministic) {
  EXPECT_EQ(fir_hw_segment().body(), fir_hw_segment().body());
  EXPECT_EQ(euler_hw_segment().body(), euler_hw_segment().body());
}

}  // namespace
}  // namespace workloads
