// Golden regression locks: exact checksums and ISS cycle counts for every
// Table-1 benchmark and the vocoder. These values define the calibration
// baseline of the shipped cost table — any change to the assembly, the ISS
// cycle model, or the data generators shows up here first, signalling that
// the calibration (and EXPERIMENTS.md) must be redone.

#include <gtest/gtest.h>

#include "workloads/table1.hpp"
#include "workloads/vocoder/pipeline.hpp"

namespace workloads {
namespace {

struct Golden {
  const char* name;
  long checksum;
  std::uint64_t iss_cycles;
};

// Values produced by the calibration run recorded in EXPERIMENTS.md.
constexpr Golden kGolden[] = {
    {"FIR", -2201, 66568u},
    {"Compress", 822550, 14246u},
    {"Quick sort", 88149101, 120559u},
    {"Bubble", 5338283, 132103u},
    {"Fibonacci", 2584, 133765u},
    {"Array", 2179176, 5896u},
};

TEST(Golden, Table1ChecksumsAndCycles) {
  const auto& suite = table1_suite();
  ASSERT_EQ(suite.size(), std::size(kGolden));
  for (std::size_t i = 0; i < suite.size(); ++i) {
    EXPECT_EQ(suite[i].name, kGolden[i].name);
    EXPECT_EQ(suite[i].reference(), kGolden[i].checksum) << suite[i].name;
    const IssResult r = suite[i].iss();
    EXPECT_EQ(r.cycles, kGolden[i].iss_cycles) << suite[i].name;
  }
}

TEST(Golden, VocoderChecksum) {
  EXPECT_EQ(vocoder::run_reference(10), 22072);
}

TEST(Golden, FibonacciOfEighteen) {
  // An independent arithmetic fact, not just self-consistency.
  EXPECT_EQ(table1_suite()[4].reference(), 2584);  // fib(18)
}

}  // namespace
}  // namespace workloads
