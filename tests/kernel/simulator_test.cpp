#include "kernel/simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace minisc {
namespace {

TEST(Simulator, EmptyRunFinishesAtTimeZero) {
  Simulator sim;
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(Simulator, SingleProcessRunsToCompletion) {
  Simulator sim;
  bool ran = false;
  sim.spawn("p", [&] { ran = true; });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_TRUE(ran);
}

TEST(Simulator, TimedWaitAdvancesTime) {
  Simulator sim;
  Time seen;
  sim.spawn("p", [&] {
    wait(Time::ns(25));
    seen = now();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(seen, Time::ns(25));
  EXPECT_EQ(sim.now(), Time::ns(25));
}

TEST(Simulator, SequentialWaitsAccumulate) {
  Simulator sim;
  sim.spawn("p", [&] {
    wait(Time::ns(10));
    wait(Time::us(1));
    wait(Time::ns(5));
  });
  sim.run();
  EXPECT_EQ(sim.now(), Time::ns(1015));
}

TEST(Simulator, TwoProcessesInterleaveByTime) {
  Simulator sim;
  std::vector<std::string> order;
  sim.spawn("a", [&] {
    wait(Time::ns(10));
    order.push_back("a@10");
    wait(Time::ns(20));
    order.push_back("a@30");
  });
  sim.spawn("b", [&] {
    wait(Time::ns(15));
    order.push_back("b@15");
  });
  sim.run();
  const std::vector<std::string> want{"a@10", "b@15", "a@30"};
  EXPECT_EQ(order, want);
}

TEST(Simulator, SameInstantWakesFifoOrder) {
  Simulator sim;
  std::vector<std::string> order;
  for (const char* n : {"p0", "p1", "p2"}) {
    sim.spawn(n, [&order, n] {
      wait(Time::ns(10));
      order.push_back(n);
    });
  }
  sim.run();
  const std::vector<std::string> want{"p0", "p1", "p2"};
  EXPECT_EQ(order, want);
}

TEST(Simulator, TimeLimitStopsRun) {
  Simulator sim;
  int laps = 0;
  sim.spawn("p", [&] {
    while (true) {
      wait(Time::ns(10));
      ++laps;
    }
  });
  EXPECT_EQ(sim.run(Time::ns(55)), StopReason::kTimeLimit);
  EXPECT_EQ(laps, 5);
  EXPECT_EQ(sim.now(), Time::ns(55));
}

TEST(Simulator, RunCanContinueAfterTimeLimit) {
  Simulator sim;
  int laps = 0;
  sim.spawn("p", [&] {
    while (true) {
      wait(Time::ns(10));
      ++laps;
    }
  });
  sim.run(Time::ns(35));
  EXPECT_EQ(laps, 3);
  EXPECT_EQ(sim.run(Time::ns(100)), StopReason::kTimeLimit);
  EXPECT_EQ(laps, 10);
}

TEST(Simulator, StopRequestHonoured) {
  Simulator sim;
  sim.spawn("p", [&] {
    wait(Time::ns(10));
    Simulator::current().stop();
    wait(Time::ns(10));  // never completes within this run
  });
  EXPECT_EQ(sim.run(), StopReason::kStopped);
  EXPECT_EQ(sim.now(), Time::ns(10));
}

TEST(Simulator, EventImmediateNotifyWakesWaiter) {
  Simulator sim;
  Event ev("ev");
  bool woke = false;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke = true;
  });
  sim.spawn("notifier", [&] {
    wait(Time::ns(5));
    ev.notify();
  });
  sim.run();
  EXPECT_TRUE(woke);
  EXPECT_EQ(sim.now(), Time::ns(5));
}

TEST(Simulator, EventTimedNotify) {
  Simulator sim;
  Event ev("ev");
  Time woke_at;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke_at = now();
  });
  sim.spawn("notifier", [&] { ev.notify(Time::ns(42)); });
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(42));
}

TEST(Simulator, EarlierTimedNotifyOverridesLater) {
  Simulator sim;
  Event ev("ev");
  Time woke_at;
  int wakes = 0;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke_at = now();
    ++wakes;
  });
  sim.spawn("notifier", [&] {
    ev.notify(Time::ns(100));
    ev.notify(Time::ns(30));  // earlier: replaces the pending one
  });
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(30));
  EXPECT_EQ(wakes, 1);
}

TEST(Simulator, LaterTimedNotifyIsDiscarded) {
  Simulator sim;
  Event ev("ev");
  Time woke_at;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke_at = now();
  });
  sim.spawn("notifier", [&] {
    ev.notify(Time::ns(30));
    ev.notify(Time::ns(100));  // later: ignored
  });
  sim.run();
  EXPECT_EQ(woke_at, Time::ns(30));
}

TEST(Simulator, CancelPreventsNotification) {
  Simulator sim;
  Event ev("ev");
  bool woke = false;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke = true;
  });
  sim.spawn("notifier", [&] {
    ev.notify(Time::ns(30));
    wait(Time::ns(10));
    ev.cancel();
  });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
  EXPECT_FALSE(woke);
}

TEST(Simulator, DeltaNotifyWakesInSameInstant) {
  Simulator sim;
  Event ev("ev");
  Time woke_at = Time::max();
  std::uint64_t delta_at_wake = 0;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke_at = now();
    delta_at_wake = Simulator::current().delta_count();
  });
  sim.spawn("notifier", [&] { ev.notify_delta(); });
  sim.run();
  EXPECT_EQ(woke_at, Time::zero());
  EXPECT_GE(delta_at_wake, 1u);  // woken in a later delta, same instant
}

TEST(Simulator, WaitWithTimeoutEventFirst) {
  Simulator sim;
  Event ev("ev");
  bool got_event = false;
  sim.spawn("waiter", [&] { got_event = wait(ev, Time::ns(100)); });
  sim.spawn("notifier", [&] {
    wait(Time::ns(20));
    ev.notify();
  });
  sim.run();
  EXPECT_TRUE(got_event);
  EXPECT_EQ(sim.now(), Time::ns(20));
}

TEST(Simulator, WaitWithTimeoutExpires) {
  Simulator sim;
  Event ev("ev");
  bool got_event = true;
  sim.spawn("waiter", [&] { got_event = wait(ev, Time::ns(100)); });
  sim.run();
  EXPECT_FALSE(got_event);
  EXPECT_EQ(sim.now(), Time::ns(100));
}

TEST(Simulator, DeadlockDetected) {
  Simulator sim;
  Event never("never");
  sim.spawn("stuck", [&] { wait(never); });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
  const auto blocked = sim.blocked_process_names();
  ASSERT_EQ(blocked.size(), 1u);
  EXPECT_EQ(blocked[0], "stuck");
}

TEST(Simulator, DeadlockAmongSeveralReportsAll) {
  Simulator sim;
  Event never("never");
  sim.spawn("a", [&] { wait(never); });
  sim.spawn("b", [&] { wait(never); });
  sim.spawn("done", [] {});
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
  EXPECT_EQ(sim.blocked_process_names().size(), 2u);
}

TEST(Simulator, DynamicSpawnFromProcess) {
  Simulator sim;
  std::vector<std::string> order;
  sim.spawn("parent", [&] {
    order.push_back("parent");
    Simulator::current().spawn("child", [&] {
      order.push_back("child");
      wait(Time::ns(5));
      order.push_back("child@5");
    });
    wait(Time::ns(1));
    order.push_back("parent@1");
  });
  sim.run();
  const std::vector<std::string> want{"parent", "child", "parent@1",
                                      "child@5"};
  EXPECT_EQ(order, want);
}

TEST(Simulator, ProcessExceptionPropagatesToRun) {
  Simulator sim;
  sim.spawn("boom", [] { throw std::runtime_error("bang"); });
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Simulator, TeardownUnwindsBlockedProcessStacks) {
  // A blocked process holds an RAII object on its coroutine stack; simulator
  // destruction must run its destructor via stack unwinding.
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  {
    Simulator sim;
    Event never("never");
    sim.spawn("holder", [&] {
      Sentinel s{&destroyed};
      wait(never);
    });
    sim.run();  // deadlock; process still holds the sentinel
    EXPECT_FALSE(destroyed);
  }
  EXPECT_TRUE(destroyed);
}

TEST(Simulator, OnlyOneSimulatorPerThread) {
  Simulator sim;
  EXPECT_THROW(Simulator second, std::logic_error);
}

TEST(Simulator, CurrentReflectsLiveSimulator) {
  EXPECT_EQ(Simulator::current_or_null(), nullptr);
  {
    Simulator sim;
    EXPECT_EQ(Simulator::current_or_null(), &sim);
    EXPECT_EQ(&Simulator::current(), &sim);
  }
  EXPECT_EQ(Simulator::current_or_null(), nullptr);
}

TEST(Simulator, ExecTraceRecordsResumes) {
  Simulator sim;
  sim.enable_exec_trace(true);
  sim.spawn("p", [&] {
    wait(Time::ns(10));
    wait(Time::ns(10));
  });
  sim.run();
  const auto& trace = sim.exec_trace();
  ASSERT_EQ(trace.size(), 3u);  // initial resume + two wake-ups
  EXPECT_EQ(trace[0].time, Time::zero());
  EXPECT_EQ(trace[1].time, Time::ns(10));
  EXPECT_EQ(trace[2].time, Time::ns(20));
  EXPECT_EQ(trace[2].process, "p");
}

TEST(Simulator, ZeroWaitBehavesLikeDeltaWait) {
  Simulator sim;
  int step = 0;
  sim.spawn("p", [&] {
    wait(Time::zero());
    step = 1;
  });
  sim.run();
  EXPECT_EQ(step, 1);
  EXPECT_EQ(sim.now(), Time::zero());
}

TEST(Simulator, ManyProcessesManyWaits) {
  Simulator sim;
  constexpr int kProcs = 50;
  constexpr int kLaps = 100;
  int total = 0;
  for (int i = 0; i < kProcs; ++i) {
    sim.spawn("p" + std::to_string(i), [&, i] {
      for (int lap = 0; lap < kLaps; ++lap) {
        wait(Time::ns(static_cast<std::uint64_t>(1 + i)));
        ++total;
      }
    });
  }
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(total, kProcs * kLaps);
  EXPECT_EQ(sim.now(), Time::ns(kProcs * kLaps));
}

TEST(Simulator, RenotifyAfterCancelWorks) {
  Simulator sim;
  Event ev("ev");
  Time woke_at;
  sim.spawn("waiter", [&] {
    wait(ev);
    woke_at = now();
  });
  sim.spawn("driver", [&] {
    ev.notify(Time::ns(30));
    ev.cancel();
    ev.notify(Time::ns(60));  // the cancel must not kill this one
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(woke_at, Time::ns(60));
}

TEST(Simulator, ImmediateNotifyCancelsPendingTimed) {
  Simulator sim;
  Event ev("ev");
  int wakes = 0;
  sim.spawn("waiter", [&] {
    wait(ev);
    ++wakes;
    // A second wait must NOT be satisfied by the stale timed notification.
    const bool fired = wait(ev, Time::ns(500));
    EXPECT_FALSE(fired);
  });
  sim.spawn("driver", [&] {
    ev.notify(Time::ns(100));
    ev.notify();  // immediate: fires now and cancels the timed one
  });
  sim.run();
  EXPECT_EQ(wakes, 1);
}

TEST(Simulator, NotifyWithNoWaitersIsLost) {
  // SystemC semantics: events are not latched.
  Simulator sim;
  Event ev("ev");
  bool woke = false;
  sim.spawn("driver", [&] { ev.notify(); });
  sim.spawn("late_waiter", [&] {
    wait(Time::ns(10));
    wait(ev);  // the earlier notification is gone
    woke = true;
  });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
  EXPECT_FALSE(woke);
}

TEST(Simulator, TwoWaitersBothWoken) {
  Simulator sim;
  Event ev("ev");
  int woken = 0;
  for (const char* n : {"w1", "w2"}) {
    sim.spawn(n, [&] {
      wait(ev);
      ++woken;
    });
  }
  sim.spawn("driver", [&] {
    wait(Time::ns(5));
    ev.notify();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(woken, 2);
}

// Hook instrumentation: verify node callbacks fire around timed waits.
class RecordingHook : public KernelHook {
 public:
  std::vector<std::string> log;

  void process_started(Process& p) override {
    log.push_back("start:" + p.name());
  }
  void process_finished(Process& p) override {
    log.push_back("finish:" + p.name());
  }
  void node_reached(Process& p, NodeKind kind, const char* label) override {
    log.push_back("reach:" + p.name() + ":" + to_string(kind) + ":" + label);
  }
  void node_done(Process& p, NodeKind kind, const char* label) override {
    log.push_back("done:" + p.name() + ":" + to_string(kind) + ":" + label);
  }
};

TEST(Simulator, HookSeesProcessLifecycleAndTimedWaitNodes) {
  Simulator sim;
  RecordingHook hook;
  sim.set_hook(&hook);
  sim.spawn("p", [&] { wait(Time::ns(1)); });
  sim.run();
  const std::vector<std::string> want{
      "start:p", "reach:p:wait:wait", "done:p:wait:wait", "finish:p"};
  EXPECT_EQ(hook.log, want);
}

TEST(Simulator, RawWaitBypassesHooks) {
  Simulator sim;
  RecordingHook hook;
  sim.set_hook(&hook);
  sim.spawn("p", [&] { Simulator::current().raw_wait(Time::ns(1)); });
  sim.run();
  const std::vector<std::string> want{"start:p", "finish:p"};
  EXPECT_EQ(hook.log, want);
}

}  // namespace
}  // namespace minisc
