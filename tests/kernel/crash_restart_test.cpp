#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernel/channels.hpp"
#include "kernel/retry.hpp"
#include "kernel/simulator.hpp"

namespace minisc {
namespace {

// A crash must unwind the victim's coroutine stack so RAII cleanup runs —
// the property the estimator's contention guards rely on.
TEST(Crash, KillUnwindsStackRunningDestructors) {
  Simulator sim;
  bool destroyed = false;
  struct Sentinel {
    bool* flag;
    ~Sentinel() { *flag = true; }
  };
  sim.spawn("victim", [&] {
    Sentinel s{&destroyed};
    wait(Time::sec(1));
  });
  sim.spawn("killer", [&] {
    wait(Time::ns(10));
    Simulator& s = Simulator::current();
    Process* victim = s.find_process("victim");
    ASSERT_NE(victim, nullptr);
    s.kill(*victim);
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_TRUE(destroyed);
  EXPECT_LT(sim.now(), Time::sec(1));  // the 1 s wait never completed
}

TEST(Crash, KillAndRestartRerunsBodyFromTheTop) {
  Simulator sim;
  int entries = 0;
  bool completed = false;
  std::vector<Time> entry_times;
  sim.spawn("task", [&] {
    ++entries;
    entry_times.push_back(now());
    wait(Time::us(1));
    completed = true;
  });
  sim.spawn("fault", [&] {
    wait(Time::ns(100));
    Simulator& s = Simulator::current();
    s.kill_and_restart(*s.find_process("task"), Time::ns(50));
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(entries, 2);
  EXPECT_TRUE(completed);
  ASSERT_EQ(entry_times.size(), 2u);
  EXPECT_EQ(entry_times[0], Time::zero());
  EXPECT_EQ(entry_times[1], Time::ns(150));  // crash at 100 + restart 50
  EXPECT_EQ(sim.now(), Time::ns(150) + Time::us(1));
  EXPECT_EQ(sim.find_process("task"), nullptr);  // terminated after finishing
}

TEST(Crash, RestartCountTracksEachCrash) {
  Simulator sim;
  int entries = 0;
  Process* task = &sim.spawn("task", [&] {
    ++entries;
    wait(Time::us(10));
  });
  sim.spawn("fault", [&] {
    Simulator& s = Simulator::current();
    for (int i = 0; i < 3; ++i) {
      wait(Time::us(1));
      Process* p = s.find_process("task");
      if (p != nullptr) s.kill_and_restart(*p, Time::ns(1));
    }
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(entries, 4);  // initial + 3 restarts
  EXPECT_EQ(task->restart_count(), 3u);
}

TEST(Crash, SelfKillUnwindsImmediately) {
  Simulator sim;
  bool after_kill = false;
  sim.spawn("suicidal", [&] {
    Simulator& s = Simulator::current();
    wait(Time::ns(5));
    s.kill(s.current_process());
    after_kill = true;  // must never execute
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_FALSE(after_kill);
}

// A process blocked on a channel can be crash-restarted: the stale waiter
// registration must not resurrect it or corrupt the channel.
TEST(Crash, RestartWhileBlockedOnChannelIsClean) {
  Simulator sim;
  Fifo<int> ch("ch", 4);
  int entries = 0;
  std::vector<int> got;
  sim.spawn("reader", [&] {
    ++entries;
    while (true) got.push_back(ch.read());
  });
  sim.spawn("driver", [&] {
    Simulator& s = Simulator::current();
    wait(Time::ns(100));
    s.kill_and_restart(*s.find_process("reader"), Time::ns(10));
    wait(Time::ns(100));
    ch.write(7);
    wait(Time::ns(100));
    ch.write(8);
  });
  sim.run(Time::us(1));
  EXPECT_EQ(entries, 2);
  EXPECT_EQ(got, (std::vector<int>{7, 8}));
}

TEST(ChannelTimeout, FifoReadForTimesOutAtDeadline) {
  Simulator sim;
  Fifo<int> ch("ch");
  bool timed_out = false;
  Time at;
  sim.spawn("reader", [&] {
    auto v = ch.read_for(Time::ns(50));
    timed_out = !v.has_value();
    at = now();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_TRUE(timed_out);
  EXPECT_EQ(at, Time::ns(50));
}

TEST(ChannelTimeout, FifoReadForReturnsValueArrivingInTime) {
  Simulator sim;
  Fifo<int> ch("ch");
  std::optional<int> got;
  sim.spawn("reader", [&] { got = ch.read_for(Time::ns(50)); });
  sim.spawn("writer", [&] {
    wait(Time::ns(20));
    ch.write(42);
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 42);
}

TEST(ChannelTimeout, RendezvousReadForBothOutcomes) {
  Simulator sim;
  Rendezvous<int> late("late");
  Rendezvous<int> ontime("ontime");
  std::optional<int> miss, hit;
  sim.spawn("reader", [&] {
    miss = late.read_for(Time::ns(10));
    hit = ontime.read_for(Time::ns(100));
  });
  sim.spawn("writer", [&] {
    wait(Time::ns(30));
    ontime.write(9);
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_FALSE(miss.has_value());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 9);
}

TEST(Retry, BackoffRetriesUntilSuccessSpendingSimTime) {
  Simulator sim;
  bool ok = false;
  Time elapsed;
  sim.spawn("p", [&] {
    int calls = 0;
    BackoffPolicy policy;
    policy.initial = Time::us(1);
    policy.factor = 2.0;
    policy.max_delay = Time::ms(1);
    ok = retry_with_backoff([&] { return ++calls == 4; }, policy);
    elapsed = now();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_TRUE(ok);
  // Three failed attempts waited 1 + 2 + 4 us before the fourth succeeded.
  EXPECT_EQ(elapsed, Time::us(7));
}

TEST(Retry, BackoffGivesUpAfterMaxAttempts) {
  Simulator sim;
  bool ok = true;
  int calls = 0;
  sim.spawn("p", [&] {
    BackoffPolicy policy;
    policy.max_attempts = 3;
    ok = retry_with_backoff([&] { ++calls; return false; }, policy);
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_FALSE(ok);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, JitterIsDeterministicFromTheSeed) {
  // Jittered backoff must stay reproducible: the same jitter_seed yields the
  // same waits on every run, a different seed (almost surely) different ones.
  const auto elapsed_with_seed = [](std::uint64_t seed) {
    Simulator sim;
    Time elapsed;
    sim.spawn("p", [&] {
      int calls = 0;
      BackoffPolicy policy;
      policy.initial = Time::us(1);
      policy.factor = 2.0;
      policy.max_delay = Time::ms(1);
      policy.jitter = 0.25;
      policy.jitter_seed = seed;
      retry_with_backoff([&] { return ++calls == 4; }, policy);
      elapsed = now();
    });
    sim.run();
    return elapsed;
  };
  const Time a = elapsed_with_seed(42);
  EXPECT_EQ(a, elapsed_with_seed(42));
  EXPECT_NE(a, elapsed_with_seed(43));
  // jitter = 0.25 bounds each wait to [0.75, 1.25) of nominal; the nominal
  // total is 7 us (1 + 2 + 4).
  EXPECT_GE(a, Time::ns(5250));   // 7 us * 0.75
  EXPECT_LT(a, Time::ns(8750));   // 7 us * 1.25
}

TEST(Retry, ZeroJitterKeepsWaitsExact) {
  Simulator sim;
  Time elapsed;
  sim.spawn("p", [&] {
    int calls = 0;
    BackoffPolicy policy;
    policy.initial = Time::us(1);
    policy.factor = 2.0;
    policy.max_delay = Time::ms(1);
    policy.jitter_seed = 99;  // ignored while jitter == 0
    retry_with_backoff([&] { return ++calls == 3; }, policy);
    elapsed = now();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(elapsed, Time::us(3));  // exactly 1 + 2
}

TEST(Errors, ZeroCapacityFifoIsRejectedLoudly) {
  Simulator sim;  // channels need a live simulator for their events
  try {
    Fifo<int> bad("bad", 0);
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kBadConfig);
    EXPECT_NE(std::string(e.what()).find("bad"), std::string::npos);
  }
}

}  // namespace
}  // namespace minisc
