#include "kernel/time.hpp"

#include <gtest/gtest.h>

namespace minisc {
namespace {

TEST(Time, DefaultIsZero) {
  Time t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.to_ps(), 0u);
}

TEST(Time, UnitConstructors) {
  EXPECT_EQ(Time::ps(7).to_ps(), 7u);
  EXPECT_EQ(Time::ns(3).to_ps(), 3000u);
  EXPECT_EQ(Time::us(2).to_ps(), 2'000'000u);
  EXPECT_EQ(Time::ms(1).to_ps(), 1'000'000'000u);
  EXPECT_EQ(Time::sec(1).to_ps(), 1'000'000'000'000u);
}

TEST(Time, FromNsRounds) {
  EXPECT_EQ(Time::from_ns(1.0).to_ps(), 1000u);
  EXPECT_EQ(Time::from_ns(0.0004).to_ps(), 0u);   // rounds to 0 ps
  EXPECT_EQ(Time::from_ns(0.0006).to_ps(), 1u);   // rounds to 1 ps
  EXPECT_EQ(Time::from_ns(2.5).to_ps(), 2500u);
}

TEST(Time, FromNsClampsNegative) {
  EXPECT_EQ(Time::from_ns(-5.0).to_ps(), 0u);
}

TEST(Time, FromNsClampsHuge) {
  EXPECT_EQ(Time::from_ns(1e30), Time::max());
}

TEST(Time, Comparisons) {
  EXPECT_LT(Time::ns(1), Time::ns(2));
  EXPECT_LE(Time::ns(2), Time::ns(2));
  EXPECT_GT(Time::us(1), Time::ns(999));
  EXPECT_EQ(Time::us(1), Time::ns(1000));
}

TEST(Time, Arithmetic) {
  EXPECT_EQ(Time::ns(1) + Time::ns(2), Time::ns(3));
  EXPECT_EQ(Time::ns(5) - Time::ns(2), Time::ns(3));
  EXPECT_EQ(Time::ns(3) * 4, Time::ns(12));
}

TEST(Time, SubtractionSaturatesAtZero) {
  EXPECT_EQ(Time::ns(2) - Time::ns(5), Time::zero());
}

TEST(Time, AdditionSaturatesAtMax) {
  EXPECT_EQ(Time::max() + Time::ns(1), Time::max());
}

TEST(Time, MultiplicationSaturatesAtMax) {
  EXPECT_EQ(Time::sec(1000000) * 1000000, Time::max());
}

TEST(Time, ConversionsToDouble) {
  EXPECT_DOUBLE_EQ(Time::ns(1500).to_us_d(), 1.5);
  EXPECT_DOUBLE_EQ(Time::ps(500).to_ns_d(), 0.5);
  EXPECT_DOUBLE_EQ(Time::us(2500).to_ms_d(), 2.5);
}

TEST(Time, StrPicksUnit) {
  EXPECT_EQ(Time::ns(5).str(), "5 ns");
  EXPECT_EQ(Time::us(12).str(), "12 us");
  EXPECT_EQ(Time::ps(3).str(), "3 ps");
  EXPECT_EQ(Time::zero().str(), "0 ps");
}

}  // namespace
}  // namespace minisc
