#include "kernel/channels.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "kernel/simulator.hpp"

namespace minisc {
namespace {

// ------------------------------------------------------------------ Fifo ---

TEST(Fifo, SingleElementRoundTrip) {
  Simulator sim;
  Fifo<int> ch("ch", 4);
  int got = 0;
  sim.spawn("producer", [&] { ch.write(42); });
  sim.spawn("consumer", [&] { got = ch.read(); });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(got, 42);
}

TEST(Fifo, PreservesOrder) {
  Simulator sim;
  Fifo<int> ch("ch", 4);
  std::vector<int> got;
  sim.spawn("producer", [&] {
    for (int i = 0; i < 100; ++i) ch.write(i);
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < 100; ++i) got.push_back(ch.read());
  });
  sim.run();
  std::vector<int> want(100);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(got, want);
}

TEST(Fifo, WriterBlocksWhenFull) {
  Simulator sim;
  Fifo<int> ch("ch", 2);
  Time writer_done;
  sim.spawn("producer", [&] {
    ch.write(1);
    ch.write(2);
    ch.write(3);  // blocks until the consumer reads at t=50
    writer_done = now();
  });
  sim.spawn("consumer", [&] {
    wait(Time::ns(50));
    (void)ch.read();
  });
  sim.run();
  EXPECT_EQ(writer_done, Time::ns(50));
}

TEST(Fifo, ReaderBlocksWhenEmpty) {
  Simulator sim;
  Fifo<int> ch("ch", 2);
  Time read_done;
  sim.spawn("consumer", [&] {
    (void)ch.read();
    read_done = now();
  });
  sim.spawn("producer", [&] {
    wait(Time::ns(30));
    ch.write(7);
  });
  sim.run();
  EXPECT_EQ(read_done, Time::ns(30));
}

TEST(Fifo, SameDeltaWriteInvisibleUntilNextDelta) {
  // sc_fifo semantics: data published in the update phase.
  Simulator sim;
  Fifo<int> ch("ch", 4);
  std::size_t avail_same_delta = 99;
  sim.spawn("producer", [&] {
    ch.write(1);
    avail_same_delta = ch.num_available();  // still the pre-update view
  });
  sim.run();
  EXPECT_EQ(avail_same_delta, 0u);
  EXPECT_EQ(ch.num_available(), 1u);  // visible after the update phase
}

TEST(Fifo, NbReadOnEmptyFails) {
  Simulator sim;
  Fifo<int> ch("ch", 2);
  bool ok = true;
  int v = 0;
  sim.spawn("p", [&] { ok = ch.nb_read(v); });
  sim.run();
  EXPECT_FALSE(ok);
}

TEST(Fifo, NbWriteOnFullFails) {
  Simulator sim;
  Fifo<int> ch("ch", 1);
  bool first = false, second = true;
  sim.spawn("p", [&] {
    first = ch.nb_write(1);
    second = ch.nb_write(2);  // capacity 1: must fail in the same delta
  });
  sim.run();
  EXPECT_TRUE(first);
  EXPECT_FALSE(second);
}

TEST(Fifo, NumFreeAccountsPendingWrites) {
  Simulator sim;
  Fifo<int> ch("ch", 3);
  std::size_t free_mid = 99;
  sim.spawn("p", [&] {
    ch.write(1);
    ch.write(2);
    free_mid = ch.num_free();
  });
  sim.run();
  EXPECT_EQ(free_mid, 1u);
}

TEST(Fifo, TwoProducersOneConsumerCompletes) {
  Simulator sim;
  Fifo<int> ch("ch", 2);
  int sum = 0;
  sim.spawn("p1", [&] {
    for (int i = 0; i < 50; ++i) ch.write(1);
  });
  sim.spawn("p2", [&] {
    for (int i = 0; i < 50; ++i) ch.write(2);
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < 100; ++i) sum += ch.read();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(sum, 150);
}

TEST(Fifo, MoveOnlyPayload) {
  Simulator sim;
  Fifo<std::unique_ptr<int>> ch("ch", 2);
  int got = 0;
  sim.spawn("producer", [&] { ch.write(std::make_unique<int>(9)); });
  sim.spawn("consumer", [&] { got = *ch.read(); });
  sim.run();
  EXPECT_EQ(got, 9);
}

TEST(Fifo, DeadlockWhenNoProducer) {
  Simulator sim;
  Fifo<int> ch("ch", 2);
  sim.spawn("consumer", [&] { (void)ch.read(); });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
}

// ------------------------------------------------------------ Rendezvous ---

TEST(Rendezvous, TransfersValue) {
  Simulator sim;
  Rendezvous<int> ch("rv");
  int got = 0;
  sim.spawn("writer", [&] { ch.write(5); });
  sim.spawn("reader", [&] { got = ch.read(); });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(got, 5);
}

TEST(Rendezvous, WriterBlocksUntilReaderArrives) {
  Simulator sim;
  Rendezvous<int> ch("rv");
  Time writer_done;
  sim.spawn("writer", [&] {
    ch.write(1);
    writer_done = now();
  });
  sim.spawn("reader", [&] {
    wait(Time::ns(40));
    (void)ch.read();
  });
  sim.run();
  EXPECT_EQ(writer_done, Time::ns(40));
}

TEST(Rendezvous, ReaderBlocksUntilWriterArrives) {
  Simulator sim;
  Rendezvous<int> ch("rv");
  Time reader_done;
  sim.spawn("reader", [&] {
    (void)ch.read();
    reader_done = now();
  });
  sim.spawn("writer", [&] {
    wait(Time::ns(25));
    ch.write(1);
  });
  sim.run();
  EXPECT_EQ(reader_done, Time::ns(25));
}

TEST(Rendezvous, ManyMessagesInOrder) {
  Simulator sim;
  Rendezvous<int> ch("rv");
  std::vector<int> got;
  sim.spawn("writer", [&] {
    for (int i = 0; i < 64; ++i) ch.write(i);
  });
  sim.spawn("reader", [&] {
    for (int i = 0; i < 64; ++i) got.push_back(ch.read());
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  ASSERT_EQ(got.size(), 64u);
  EXPECT_EQ(got.front(), 0);
  EXPECT_EQ(got.back(), 63);
}

TEST(Rendezvous, TwoWritersBothComplete) {
  Simulator sim;
  Rendezvous<int> ch("rv");
  int sum = 0;
  sim.spawn("w1", [&] { ch.write(10); });
  sim.spawn("w2", [&] { ch.write(20); });
  sim.spawn("reader", [&] {
    sum += ch.read();
    sum += ch.read();
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(sum, 30);
}

TEST(Rendezvous, UnmatchedWriteDeadlocks) {
  Simulator sim;
  Rendezvous<int> ch("rv");
  sim.spawn("writer", [&] { ch.write(1); });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
}

// ---------------------------------------------------------------- Signal ---

TEST(Signal, InitialValueReadable) {
  Simulator sim;
  Signal<int> s("s", 7);
  int got = 0;
  sim.spawn("p", [&] { got = s.read(); });
  sim.run();
  EXPECT_EQ(got, 7);
}

TEST(Signal, WriteVisibleNextDelta) {
  Simulator sim;
  Signal<int> s("s", 0);
  int same_delta = -1, next_delta = -1;
  sim.spawn("p", [&] {
    s.write(5);
    same_delta = s.read();  // update not yet applied
    wait(Time::zero());     // cross a delta boundary
    next_delta = s.read();
  });
  sim.run();
  EXPECT_EQ(same_delta, 0);
  EXPECT_EQ(next_delta, 5);
}

TEST(Signal, AwaitChangeWakesOnNewValue) {
  Simulator sim;
  Signal<int> s("s", 0);
  int seen = -1;
  Time at;
  sim.spawn("watcher", [&] {
    seen = s.await_change();
    at = now();
  });
  sim.spawn("driver", [&] {
    wait(Time::ns(15));
    s.write(3);
  });
  sim.run();
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(at, Time::ns(15));
}

TEST(Signal, SameValueWriteDoesNotFireChange) {
  Simulator sim;
  Signal<int> s("s", 4);
  bool woke = false;
  sim.spawn("watcher", [&] {
    (void)s.await_change();
    woke = true;
  });
  sim.spawn("driver", [&] { s.write(4); });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
  EXPECT_FALSE(woke);
}

TEST(Signal, LastWriteInDeltaWins) {
  Simulator sim;
  Signal<int> s("s", 0);
  sim.spawn("driver", [&] {
    s.write(1);
    s.write(2);
    s.write(3);
  });
  sim.run();
  EXPECT_EQ(s.read(), 3);
}

// -------------------------------------------------------- hook integration -

class NodeCountingHook : public KernelHook {
 public:
  int reads = 0, writes = 0, waits = 0;
  void process_started(Process&) override {}
  void process_finished(Process&) override {}
  void node_reached(Process&, NodeKind kind, const char*) override {
    switch (kind) {
      case NodeKind::kChannelRead:
        ++reads;
        break;
      case NodeKind::kChannelWrite:
        ++writes;
        break;
      case NodeKind::kTimedWait:
        ++waits;
        break;
    }
  }
  void node_done(Process&, NodeKind, const char*) override {}
};

TEST(ChannelHooks, FifoAccessesReportNodes) {
  Simulator sim;
  NodeCountingHook hook;
  sim.set_hook(&hook);
  Fifo<int> ch("ch", 4);
  sim.spawn("producer", [&] {
    ch.write(1);
    ch.write(2);
    wait(Time::ns(1));
  });
  sim.spawn("consumer", [&] {
    (void)ch.read();
    (void)ch.read();
  });
  sim.run();
  EXPECT_EQ(hook.writes, 2);
  EXPECT_EQ(hook.reads, 2);
  EXPECT_EQ(hook.waits, 1);
}

TEST(ChannelHooks, NoHookInstalledIsFine) {
  Simulator sim;
  Fifo<int> ch("ch", 4);
  int got = 0;
  sim.spawn("producer", [&] { ch.write(11); });
  sim.spawn("consumer", [&] { got = ch.read(); });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(got, 11);
}

// -------------------------------------------- parameterised capacity sweep -

class FifoCapacity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FifoCapacity, AllDataDeliveredInOrderAtAnyCapacity) {
  Simulator sim;
  Fifo<int> ch("ch", GetParam());
  constexpr int kCount = 200;
  std::vector<int> got;
  sim.spawn("producer", [&] {
    for (int i = 0; i < kCount; ++i) ch.write(i);
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < kCount; ++i) got.push_back(ch.read());
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  std::vector<int> want(kCount);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(got, want);
}

INSTANTIATE_TEST_SUITE_P(Capacities, FifoCapacity,
                         ::testing::Values(1, 2, 3, 7, 16, 64, 1024));

}  // namespace
}  // namespace minisc
