#include <gtest/gtest.h>

#include <string>

#include "kernel/error.hpp"
#include "kernel/simulator.hpp"

namespace minisc {
namespace {

// A specification stuck in a notify_delta ping-pong never advances time; the
// delta budget converts the hang into a structured error naming the culprits.
TEST(Watchdog, DeltaStormTripsBudgetWithDiagnostics) {
  Simulator sim;
  Watchdog w;
  w.max_deltas_per_instant = 500;
  sim.set_watchdog(w);
  Event ping("ping");
  Event pong("pong");
  sim.spawn("storm_a", [&] {
    while (true) {
      pong.notify_delta();
      wait(ping);
    }
  });
  sim.spawn("storm_b", [&] {
    while (true) {
      ping.notify_delta();
      wait(pong);
    }
  });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kDeltaStorm);
    EXPECT_EQ(e.sim_time(), Time::zero());
    ASSERT_EQ(e.processes().size(), 2u);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("storm_a"), std::string::npos) << msg;
    EXPECT_NE(msg.find("storm_b"), std::string::npos) << msg;
  }
}

// Immediate-notify ping-pong livelocks WITHIN one evaluate phase: no delta
// cycle ever completes, so only the dispatch budget can catch it.
TEST(Watchdog, DispatchStormTripsBudget) {
  Simulator sim;
  Watchdog w;
  w.max_dispatches_per_instant = 2000;
  sim.set_watchdog(w);
  Event ping("ping");
  Event pong("pong");
  sim.spawn("live_a", [&] {
    while (true) {
      pong.notify();
      wait(ping);
    }
  });
  sim.spawn("live_b", [&] {
    while (true) {
      ping.notify();
      wait(pong);
    }
  });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kDispatchStorm);
    EXPECT_FALSE(e.processes().empty());
  }
}

TEST(Watchdog, WallClockBudgetConvertsHangIntoError) {
  Simulator sim;
  Watchdog w;
  w.wall_clock_ms = 20;  // keep the test fast; the storm spins until tripped
  sim.set_watchdog(w);
  Event ping("ping");
  Event pong("pong");
  sim.spawn("hang_a", [&] {
    while (true) {
      pong.notify();
      wait(ping);
    }
  });
  sim.spawn("hang_b", [&] {
    while (true) {
      ping.notify();
      wait(pong);
    }
  });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kWallClockBudget);
  }
}

// The ambient per-run budget reaches Simulators the campaign never sees:
// ones constructed inside the user's run function, with no Watchdog set.
TEST(Watchdog, RunBudgetScopeTripsSimulatorsWithoutTheirOwnWatchdog) {
  ASSERT_FALSE(RunBudgetScope::active());
  RunBudgetScope budget(50);
  ASSERT_TRUE(RunBudgetScope::active());
  EXPECT_EQ(RunBudgetScope::budget_ms(), 50u);
  Simulator sim;  // note: no set_watchdog
  sim.spawn("spin", [] {
    while (true) wait(Time::ps(1));
  });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kWallClockBudget);
    EXPECT_NE(std::string(e.what()).find("per-run wall-clock budget"),
              std::string::npos)
        << e.what();
  }
}

TEST(Watchdog, RunBudgetScopeRestoresOnExitAndZeroIsInactive) {
  {
    RunBudgetScope off(0);  // budget 0 = unlimited: installs nothing
    EXPECT_FALSE(RunBudgetScope::active());
  }
  {
    RunBudgetScope outer(10000);
    {
      // The tighter deadline wins; the looser nested scope is a no-op.
      RunBudgetScope inner(50);
      EXPECT_EQ(RunBudgetScope::budget_ms(), 50u);
    }
    EXPECT_EQ(RunBudgetScope::budget_ms(), 10000u);
    EXPECT_FALSE(RunBudgetScope::expired());
    // A generous budget does not disturb a well-behaved simulation.
    Simulator sim;
    int laps = 0;
    sim.spawn("worker", [&] {
      for (int i = 0; i < 50; ++i) {
        wait(Time::ns(10));
        ++laps;
      }
    });
    EXPECT_EQ(sim.run(), StopReason::kFinished);
    EXPECT_EQ(laps, 50);
  }
  EXPECT_FALSE(RunBudgetScope::active());
}

TEST(Watchdog, SimTimeBudgetIsAnErrorNotAPause) {
  Simulator sim;
  Watchdog w;
  w.sim_time_budget = Time::us(1);
  sim.set_watchdog(w);
  sim.spawn("ticker", [&] {
    while (true) wait(Time::ns(100));
  });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kSimTimeBudget);
    EXPECT_GT(e.sim_time(), Time::us(1));
  }
}

// run(limit) pausing at the horizon is NOT a budget violation.
TEST(Watchdog, RunLimitDoesNotTripSimTimeBudget) {
  Simulator sim;
  Watchdog w;
  w.sim_time_budget = Time::us(10);
  sim.set_watchdog(w);
  sim.spawn("ticker", [&] {
    for (int i = 0; i < 5; ++i) wait(Time::ns(100));
  });
  EXPECT_EQ(sim.run(Time::us(1)), StopReason::kFinished);
}

TEST(Watchdog, WellBehavedSpecRunsUnderTightBudgets) {
  Simulator sim;
  Watchdog w;
  w.max_deltas_per_instant = 64;
  w.max_dispatches_per_instant = 1024;
  w.wall_clock_ms = 5000;
  w.sim_time_budget = Time::sec(1);
  sim.set_watchdog(w);
  int laps = 0;
  sim.spawn("worker", [&] {
    for (int i = 0; i < 100; ++i) {
      wait(Time::ns(10));
      ++laps;
    }
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(laps, 100);
}

TEST(Diagnostics, DeadlockedProcessesReportWhatTheyBlockOn) {
  Simulator sim;
  Event never("never_notified");
  sim.spawn("waiter", [&] { wait(never); });
  sim.spawn("sleeper", [&] { wait(Time::ms(1)); });
  EXPECT_EQ(sim.run(), StopReason::kDeadlock);
  const auto diags = sim.process_diagnostics();
  ASSERT_EQ(diags.size(), 1u);  // sleeper finished; waiter remains
  EXPECT_EQ(diags[0].name, "waiter");
  EXPECT_NE(diags[0].blocked_on.find("never_notified"), std::string::npos)
      << diags[0].str();
}

TEST(Diagnostics, TimerWaitReportsDeadline) {
  Simulator sim;
  Watchdog w;
  w.sim_time_budget = Time::ns(50);
  sim.set_watchdog(w);
  sim.spawn("late", [&] { wait(Time::us(1)); });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    ASSERT_EQ(e.processes().size(), 1u);
    EXPECT_NE(e.processes()[0].blocked_on.find("timer"), std::string::npos)
        << e.processes()[0].str();
  }
}

TEST(Errors, CurrentOutsideAnySimulatorThrowsStructured) {
  // No Simulator instance exists in this test.
  try {
    Simulator::current();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kNoSimulator);
  }
}

TEST(Errors, CurrentProcessOutsideProcessContextThrows) {
  Simulator sim;
  try {
    sim.current_process();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kNoProcessContext);
  }
}

}  // namespace
}  // namespace minisc
