// Stress and property tests of the minisc kernel: conservation of data
// through channel networks, monotonicity of simulated time, determinism of
// repeated runs, and teardown hygiene at scale.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "kernel/channels.hpp"
#include "kernel/simulator.hpp"

namespace minisc {
namespace {

/// Mirror of workloads::Lcg for deterministic pseudo-random delays.
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : s_(seed) {}
  std::uint32_t next() {
    s_ = s_ * 1664525u + 1013904223u;
    return s_;
  }
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + next() % (hi - lo + 1);
  }

 private:
  std::uint32_t s_;
};

TEST(Stress, FanInConservesEveryToken) {
  // 8 producers with random delays into one FIFO; the consumer must see
  // exactly the multiset of produced values.
  Simulator sim;
  Fifo<int> ch("ch", 3);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 50;
  long produced_sum = 0;
  for (int p = 0; p < kProducers; ++p) {
    sim.spawn("prod" + std::to_string(p), [&, p] {
      Rng rng(static_cast<std::uint32_t>(p + 1));
      for (int i = 0; i < kPerProducer; ++i) {
        wait(Time::ns(rng.range(1, 20)));
        const int v = p * 1000 + i;
        ch.write(v);
      }
    });
    for (int i = 0; i < kPerProducer; ++i) produced_sum += p * 1000 + i;
  }
  long consumed_sum = 0;
  int consumed = 0;
  sim.spawn("consumer", [&] {
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      consumed_sum += ch.read();
      ++consumed;
    }
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(consumed, kProducers * kPerProducer);
  EXPECT_EQ(consumed_sum, produced_sum);
}

TEST(Stress, PipelineChainDeliversInOrder) {
  // A 6-stage FIFO chain with random per-stage delays preserves order.
  Simulator sim;
  constexpr int kStages = 6;
  constexpr int kItems = 100;
  std::vector<std::unique_ptr<Fifo<int>>> links;
  for (int i = 0; i <= kStages; ++i) {
    links.push_back(
        std::make_unique<Fifo<int>>("link" + std::to_string(i), 2));
  }
  sim.spawn("source", [&] {
    for (int i = 0; i < kItems; ++i) links[0]->write(i);
  });
  for (int s = 0; s < kStages; ++s) {
    sim.spawn("stage" + std::to_string(s), [&, s] {
      Rng rng(static_cast<std::uint32_t>(100 + s));
      for (int i = 0; i < kItems; ++i) {
        const int v = links[static_cast<std::size_t>(s)]->read();
        wait(Time::ns(rng.range(0, 5)));
        links[static_cast<std::size_t>(s + 1)]->write(v);
      }
    });
  }
  std::vector<int> got;
  sim.spawn("sink", [&] {
    for (int i = 0; i < kItems; ++i) {
      got.push_back(links[kStages]->read());
    }
  });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  std::vector<int> want(kItems);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(got, want);
}

TEST(Stress, ExecTraceTimesAreMonotone) {
  Simulator sim;
  sim.enable_exec_trace(true);
  for (int p = 0; p < 10; ++p) {
    sim.spawn("p" + std::to_string(p), [p] {
      Rng rng(static_cast<std::uint32_t>(31 * p + 7));
      for (int i = 0; i < 30; ++i) {
        wait(Time::ns(rng.range(1, 100)));
      }
    });
  }
  sim.run();
  const auto& trace = sim.exec_trace();
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_LE(trace[i - 1].time, trace[i].time) << "at record " << i;
  }
}

TEST(Stress, RepeatedRunsAreDeterministic) {
  const auto run_once = [] {
    Simulator sim;
    Fifo<int> ch("ch", 2);
    std::vector<int> order;
    sim.spawn("a", [&] {
      Rng rng(5);
      for (int i = 0; i < 40; ++i) {
        wait(Time::ns(rng.range(1, 9)));
        ch.write(i);
      }
    });
    sim.spawn("b", [&] {
      Rng rng(6);
      for (int i = 0; i < 40; ++i) {
        wait(Time::ns(rng.range(1, 9)));
        ch.write(100 + i);
      }
    });
    sim.spawn("c", [&] {
      for (int i = 0; i < 80; ++i) order.push_back(ch.read());
    });
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Stress, ManySimulatorsSequentially) {
  // Create/destroy cycles must not leak or corrupt thread-local state.
  for (int round = 0; round < 50; ++round) {
    Simulator sim;
    Event never("never");
    int done = 0;
    sim.spawn("worker", [&] {
      wait(Time::ns(5));
      ++done;
    });
    sim.spawn("stuck", [&] { wait(never); });  // unwound by the destructor
    EXPECT_EQ(sim.run(), StopReason::kDeadlock);
    EXPECT_EQ(done, 1);
  }
}

TEST(Stress, RendezvousManyWritersManyReaders) {
  Simulator sim;
  Rendezvous<int> rv("rv");
  constexpr int kWriters = 5;
  constexpr int kPerWriter = 20;
  long sum_in = 0;
  for (int w = 0; w < kWriters; ++w) {
    sim.spawn("w" + std::to_string(w), [&, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        rv.write(w * 100 + i);
      }
    });
    for (int i = 0; i < kPerWriter; ++i) sum_in += w * 100 + i;
  }
  long sum_out = 0;
  for (int r = 0; r < 2; ++r) {
    sim.spawn("r" + std::to_string(r), [&, r] {
      const int n = kWriters * kPerWriter / 2;
      for (int i = 0; i < n; ++i) sum_out += rv.read();
    });
  }
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(sum_out, sum_in);
}

TEST(Stress, DeepRecursionOnCoroutineStack) {
  // The 256 KiB default stack must comfortably hold a deep call chain.
  Simulator sim;
  int depth_reached = 0;
  std::function<void(int)> recurse = [&](int d) {
    volatile char frame[128] = {};  // force real stack consumption
    (void)frame;
    depth_reached = d;
    if (d < 800) recurse(d + 1);
  };
  sim.spawn("deep", [&] { recurse(0); });
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(depth_reached, 800);
}

TEST(Stress, LargeStackOptionSupportsDeeperRecursion) {
  Simulator sim;
  int depth_reached = 0;
  std::function<void(int)> recurse = [&](int d) {
    volatile char frame[256] = {};
    (void)frame;
    depth_reached = d;
    if (d < 4000) recurse(d + 1);
  };
  sim.spawn("deeper", [&] { recurse(0); }, 4 * 1024 * 1024);
  EXPECT_EQ(sim.run(), StopReason::kFinished);
  EXPECT_EQ(depth_reached, 4000);
}

}  // namespace
}  // namespace minisc
