#include "iss/assembler.hpp"

#include <gtest/gtest.h>

namespace iss {
namespace {

TEST(Assembler, ParsesRegisterRegisterOps) {
  const Program p = assemble("add r3, r4, r5\n");
  ASSERT_EQ(p.instrs.size(), 1u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kAdd);
  EXPECT_EQ(p.instrs[0].rd, 3);
  EXPECT_EQ(p.instrs[0].ra, 4);
  EXPECT_EQ(p.instrs[0].rb, 5);
}

TEST(Assembler, ParsesImmediates) {
  const Program p = assemble(
      "addi r3, r0, -42\n"
      "ori  r4, r0, 0xff\n");
  EXPECT_EQ(p.instrs[0].imm, -42);
  EXPECT_EQ(p.instrs[1].imm, 0xff);
}

TEST(Assembler, ParsesMemoryOperands) {
  const Program p = assemble(
      "lw r3, 8(r2)\n"
      "sw r4, -4(r1)\n"
      "lw r5, (r2)\n");
  EXPECT_EQ(p.instrs[0].op, Opcode::kLw);
  EXPECT_EQ(p.instrs[0].rd, 3);
  EXPECT_EQ(p.instrs[0].ra, 2);
  EXPECT_EQ(p.instrs[0].imm, 8);
  EXPECT_EQ(p.instrs[1].imm, -4);
  EXPECT_EQ(p.instrs[2].imm, 0);
}

TEST(Assembler, ResolvesLabelsForwardAndBackward) {
  const Program p = assemble(
      "start:\n"
      "  j end\n"
      "  j start\n"
      "end:\n"
      "  halt\n");
  EXPECT_EQ(p.label("start"), 0u);
  EXPECT_EQ(p.label("end"), 2u);
  EXPECT_EQ(p.instrs[0].target, 2u);
  EXPECT_EQ(p.instrs[1].target, 0u);
}

TEST(Assembler, LabelOnSameLineAsInstruction) {
  const Program p = assemble("loop: addi r3, r3, 1\n");
  EXPECT_EQ(p.label("loop"), 0u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kAddi);
}

TEST(Assembler, CommentsIgnored) {
  const Program p = assemble(
      "# full line comment\n"
      "addi r3, r0, 1   # trailing comment\n"
      "; alt comment style\n");
  EXPECT_EQ(p.instrs.size(), 1u);
}

TEST(Assembler, LiPseudoSmallImmediate) {
  const Program p = assemble("li r3, 100\n");
  ASSERT_EQ(p.instrs.size(), 1u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kAddi);
  EXPECT_EQ(p.instrs[0].imm, 100);
}

TEST(Assembler, LiPseudoLargeImmediateExpands) {
  const Program p = assemble("li r3, 0x12345678\n");
  ASSERT_EQ(p.instrs.size(), 2u);
  EXPECT_EQ(p.instrs[0].op, Opcode::kMovhi);
  EXPECT_EQ(p.instrs[0].imm, 0x1234);
  EXPECT_EQ(p.instrs[1].op, Opcode::kOri);
  EXPECT_EQ(p.instrs[1].imm, 0x5678);
}

TEST(Assembler, MovAndRetPseudos) {
  const Program p = assemble(
      "mov r4, r5\n"
      "ret\n");
  EXPECT_EQ(p.instrs[0].op, Opcode::kOri);
  EXPECT_EQ(p.instrs[0].rd, 4);
  EXPECT_EQ(p.instrs[0].ra, 5);
  EXPECT_EQ(p.instrs[1].op, Opcode::kJr);
  EXPECT_EQ(p.instrs[1].ra, 9);
}

TEST(Assembler, CaseInsensitiveMnemonics) {
  const Program p = assemble("ADDI r3, r0, 1\nAdd r4, r3, r3\n");
  EXPECT_EQ(p.instrs[0].op, Opcode::kAddi);
  EXPECT_EQ(p.instrs[1].op, Opcode::kAdd);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus r1, r2\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(Assembler, UndefinedLabelRejected) {
  EXPECT_THROW(assemble("j nowhere\n"), AsmError);
}

TEST(Assembler, DuplicateLabelRejected) {
  EXPECT_THROW(assemble("a:\nnop\na:\nnop\n"), AsmError);
}

TEST(Assembler, BadRegisterRejected) {
  EXPECT_THROW(assemble("add r3, r44, r5\n"), AsmError);
  EXPECT_THROW(assemble("add r3, x4, r5\n"), AsmError);
}

TEST(Assembler, WrongOperandCountRejected) {
  EXPECT_THROW(assemble("add r3, r4\n"), AsmError);
  EXPECT_THROW(assemble("nop r1\n"), AsmError);
}

TEST(Assembler, UnknownLabelLookupThrows) {
  const Program p = assemble("nop\n");
  EXPECT_THROW(p.label("missing"), std::out_of_range);
}

}  // namespace
}  // namespace iss
