#include "iss/machine.hpp"

#include <gtest/gtest.h>

#include "iss/assembler.hpp"

namespace iss {
namespace {

Machine run_asm(const std::string& src) {
  Machine m;
  m.load_program(assemble(src));
  const auto res = m.run();
  EXPECT_TRUE(res.halted);
  return m;
}

TEST(Machine, ArithmeticBasics) {
  Machine m = run_asm(
      "li r3, 7\n"
      "li r4, 5\n"
      "add r5, r3, r4\n"
      "sub r6, r3, r4\n"
      "mul r7, r3, r4\n"
      "div r8, r3, r4\n"
      "halt\n");
  EXPECT_EQ(m.reg(5), 12);
  EXPECT_EQ(m.reg(6), 2);
  EXPECT_EQ(m.reg(7), 35);
  EXPECT_EQ(m.reg(8), 1);
}

TEST(Machine, R0IsHardwiredZero) {
  Machine m = run_asm(
      "addi r0, r0, 99\n"
      "add r3, r0, r0\n"
      "halt\n");
  EXPECT_EQ(m.reg(0), 0);
  EXPECT_EQ(m.reg(3), 0);
}

TEST(Machine, LogicAndShifts) {
  Machine m = run_asm(
      "li r3, 0xf0\n"
      "li r4, 0x0f\n"
      "and r5, r3, r4\n"
      "or  r6, r3, r4\n"
      "xor r7, r3, r4\n"
      "slli r8, r4, 4\n"
      "srli r10, r3, 4\n"
      "li r11, -8\n"
      "srai r12, r11, 1\n"
      "halt\n");
  EXPECT_EQ(m.reg(5), 0x00);
  EXPECT_EQ(m.reg(6), 0xff);
  EXPECT_EQ(m.reg(7), 0xff);
  EXPECT_EQ(m.reg(8), 0xf0);
  EXPECT_EQ(m.reg(10), 0x0f);
  EXPECT_EQ(m.reg(12), -4);
}

TEST(Machine, MovhiBuildsUpperHalf) {
  Machine m = run_asm(
      "movhi r3, 0x1234\n"
      "ori r3, r3, 0x5678\n"
      "halt\n");
  EXPECT_EQ(m.reg(3), 0x12345678);
}

TEST(Machine, DivideByZeroYieldsZero) {
  Machine m = run_asm(
      "li r3, 10\n"
      "div r4, r3, r0\n"
      "halt\n");
  EXPECT_EQ(m.reg(4), 0);
}

TEST(Machine, LoadStoreWord) {
  Machine m = run_asm(
      "li r2, 0x100\n"
      "li r3, -123456\n"
      "sw r3, 4(r2)\n"
      "lw r4, 4(r2)\n"
      "halt\n");
  EXPECT_EQ(m.reg(4), -123456);
  EXPECT_EQ(m.read_word(0x104), -123456);
}

TEST(Machine, LoadStoreByteSignExtends) {
  Machine m = run_asm(
      "li r2, 0x200\n"
      "li r3, -2\n"
      "sb r3, (r2)\n"
      "lb r4, (r2)\n"
      "halt\n");
  EXPECT_EQ(m.reg(4), -2);
}

TEST(Machine, CompareAndBranchLoop) {
  // sum 1..10
  Machine m = run_asm(
      "  li r3, 0\n"   // sum
      "  li r4, 1\n"   // i
      "loop:\n"
      "  add r3, r3, r4\n"
      "  addi r4, r4, 1\n"
      "  sflei r4, 10\n"
      "  bf loop\n"
      "  halt\n");
  EXPECT_EQ(m.reg(3), 55);
}

TEST(Machine, AllCompareVariants) {
  Machine m = run_asm(
      "li r3, 5\n"
      "li r4, 5\n"
      "li r5, 0\n"
      "sfeq r3, r4\n"
      "bf t1\n"
      "j end\n"
      "t1: addi r5, r5, 1\n"
      "sfne r3, r4\n"
      "bnf t2\n"
      "j end\n"
      "t2: addi r5, r5, 1\n"
      "sflti r3, 6\n"
      "bf t3\n"
      "j end\n"
      "t3: addi r5, r5, 1\n"
      "sfgti r3, 4\n"
      "bf t4\n"
      "j end\n"
      "t4: addi r5, r5, 1\n"
      "sfgei r3, 5\n"
      "bf t5\n"
      "j end\n"
      "t5: addi r5, r5, 1\n"
      "end: halt\n");
  EXPECT_EQ(m.reg(5), 5);
}

TEST(Machine, JalAndJrImplementCalls) {
  Machine m = run_asm(
      "  li r3, 20\n"
      "  jal double_it\n"
      "  mov r6, r11\n"
      "  halt\n"
      "double_it:\n"
      "  add r11, r3, r3\n"
      "  ret\n");
  EXPECT_EQ(m.reg(6), 40);
}

TEST(Machine, CallHelperInvokesSubroutine) {
  Machine m;
  m.load_program(assemble(
      "main: halt\n"
      "square:\n"
      "  mul r11, r3, r3\n"
      "  ret\n"));
  m.set_reg(3, 9);
  EXPECT_EQ(m.call("square"), 81);
}

TEST(Machine, StackPointerInitialisedAtTopOfMemory) {
  Machine m(1 << 16);
  m.load_program(assemble("halt\n"));
  m.run();
  EXPECT_EQ(m.reg(1), (1 << 16) - 16);
}

TEST(Machine, MaxStepsStopsRunawayProgram) {
  Machine m;
  m.load_program(assemble("loop: j loop\n"));
  const auto res = m.run(1000);
  EXPECT_FALSE(res.halted);
  EXPECT_EQ(res.instructions, 1000u);
}

TEST(Machine, OutOfBoundsMemoryThrows) {
  Machine m(256);
  m.load_program(assemble(
      "li r2, 300\n"
      "lw r3, (r2)\n"
      "halt\n"));
  EXPECT_THROW(m.run(), std::out_of_range);
}

// ---- cycle accounting --------------------------------------------------------

TEST(Cycles, AluOpsAreSingleCycle) {
  Machine m;
  m.load_program(assemble(
      "addi r3, r0, 1\n"
      "addi r4, r0, 2\n"
      "add r5, r3, r4\n"
      "halt\n"));
  const auto res = m.run();
  EXPECT_EQ(res.cycles, 3u);
  EXPECT_EQ(res.instructions, 3u);
}

TEST(Cycles, MulDivLoadCostMore) {
  Machine m;
  CycleModel cm;  // defaults: mul 3, div 20, load 2
  m.set_cycle_model(cm);
  m.load_program(assemble(
      "mul r3, r4, r5\n"
      "div r6, r4, r5\n"
      "lw r7, 0(r0)\n"
      "halt\n"));
  const auto res = m.run();
  EXPECT_EQ(res.cycles, 3u + 20u + 2u);
}

TEST(Cycles, TakenBranchCostsPenalty) {
  CycleModel cm;
  Machine taken;
  taken.set_cycle_model(cm);
  taken.load_program(assemble(
      "sfeq r0, r0\n"   // flag := true
      "bf target\n"
      "target: halt\n"));
  const auto rt = taken.run();

  Machine not_taken;
  not_taken.set_cycle_model(cm);
  not_taken.load_program(assemble(
      "sfne r0, r0\n"   // flag := false
      "bf target\n"
      "target: halt\n"));
  const auto rn = not_taken.run();

  EXPECT_EQ(rt.cycles - rn.cycles, cm.branch_taken - cm.branch_not_taken);
}

TEST(Cycles, StatsAccumulatePerClass) {
  Machine m;
  m.load_program(assemble(
      "addi r3, r0, 5\n"
      "mul r4, r3, r3\n"
      "sw r4, 0(r0)\n"
      "lw r5, 0(r0)\n"
      "sfeq r4, r5\n"
      "bf done\n"
      "done: halt\n"));
  m.run();
  EXPECT_EQ(m.stats().count(InstrClass::kAlu), 1u);
  EXPECT_EQ(m.stats().count(InstrClass::kMul), 1u);
  EXPECT_EQ(m.stats().count(InstrClass::kStore), 1u);
  EXPECT_EQ(m.stats().count(InstrClass::kLoad), 1u);
  EXPECT_EQ(m.stats().count(InstrClass::kCompare), 1u);
  EXPECT_EQ(m.stats().count(InstrClass::kBranch), 1u);
  EXPECT_EQ(m.stats().instructions, 6u);
}

TEST(Cycles, CustomCycleModelApplied) {
  Machine m;
  CycleModel cm;
  cm.alu = 2;
  m.set_cycle_model(cm);
  m.load_program(assemble(
      "addi r3, r0, 1\n"
      "addi r4, r0, 2\n"
      "halt\n"));
  EXPECT_EQ(m.run().cycles, 4u);
}

// ---- execution trace -----------------------------------------------------------

TEST(Trace, DisabledByDefault) {
  Machine m;
  m.load_program(assemble("addi r3, r0, 1\nhalt\n"));
  m.run();
  EXPECT_TRUE(m.trace_window().empty());
}

TEST(Trace, RecordsExecutedInstructionsInOrder) {
  Machine m;
  m.enable_trace(16);
  m.load_program(assemble(
      "addi r3, r0, 5\n"
      "addi r4, r0, 7\n"
      "add r5, r3, r4\n"
      "halt\n"));
  m.run();
  const auto w = m.trace_window();
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].pc, 0u);
  EXPECT_EQ(w[0].instr.op, Opcode::kAddi);
  EXPECT_EQ(w[0].rd_value, 5);
  EXPECT_EQ(w[2].instr.op, Opcode::kAdd);
  EXPECT_EQ(w[2].rd_value, 12);
}

TEST(Trace, RingKeepsOnlyMostRecent) {
  Machine m;
  m.enable_trace(4);
  m.load_program(assemble(
      "  li r3, 0\n"
      "loop:\n"
      "  addi r3, r3, 1\n"
      "  sflti r3, 10\n"
      "  bf loop\n"
      "  halt\n"));
  m.run();
  const auto w = m.trace_window();
  ASSERT_EQ(w.size(), 4u);
  // The final four executed instructions end with the not-taken branch.
  EXPECT_EQ(w[3].instr.op, Opcode::kBf);
  EXPECT_FALSE(w[3].flag);
  EXPECT_EQ(w[2].instr.op, Opcode::kSflti);
  EXPECT_EQ(w[1].instr.op, Opcode::kAddi);
  EXPECT_EQ(w[1].rd_value, 10);
}

// ---- caches -------------------------------------------------------------------

TEST(Cache, FirstAccessMissesThenHits) {
  DirectMappedCache c({.lines = 4, .line_bytes = 16, .miss_penalty = 10});
  EXPECT_EQ(c.access(0x00), 10u);  // miss
  EXPECT_EQ(c.access(0x04), 0u);   // same line: hit
  EXPECT_EQ(c.access(0x0c), 0u);
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, ConflictingLinesEvict) {
  DirectMappedCache c({.lines = 4, .line_bytes = 16, .miss_penalty = 10});
  // 4 lines * 16 bytes = 64-byte cache: addresses 0 and 64 conflict.
  EXPECT_EQ(c.access(0), 10u);
  EXPECT_EQ(c.access(64), 10u);
  EXPECT_EQ(c.access(0), 10u);  // evicted: miss again
}

TEST(Cache, NonPowerOfTwoGeometryIsRejected) {
  // The index/offset math is mask-based; a release build with a vanished
  // assert would silently alias lines, so the ctor rejects bad geometry.
  EXPECT_THROW(
      DirectMappedCache({.lines = 3, .line_bytes = 16, .miss_penalty = 10}),
      std::invalid_argument);
  EXPECT_THROW(
      DirectMappedCache({.lines = 4, .line_bytes = 12, .miss_penalty = 10}),
      std::invalid_argument);
  EXPECT_THROW(
      DirectMappedCache({.lines = 0, .line_bytes = 16, .miss_penalty = 10}),
      std::invalid_argument);
}

TEST(Cache, HitRateComputed) {
  DirectMappedCache c({.lines = 2, .line_bytes = 8, .miss_penalty = 5});
  c.access(0);
  c.access(0);
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.hit_rate(), 0.75);
}

TEST(Cache, DcacheMissesAddCycles) {
  Machine fast;
  fast.load_program(assemble(
      "lw r3, 0(r0)\n"
      "lw r4, 0(r0)\n"
      "halt\n"));
  const auto base = fast.run();

  Machine slow;
  slow.enable_dcache({.lines = 16, .line_bytes = 16, .miss_penalty = 25});
  slow.load_program(assemble(
      "lw r3, 0(r0)\n"
      "lw r4, 0(r0)\n"
      "halt\n"));
  const auto res = slow.run();
  EXPECT_EQ(res.cycles, base.cycles + 25);  // one cold miss, one hit
  EXPECT_EQ(slow.dcache()->misses(), 1u);
  EXPECT_EQ(slow.dcache()->hits(), 1u);
}

TEST(Cache, IcacheLoopMostlyHits) {
  Machine m;
  m.enable_icache({.lines = 64, .line_bytes = 16, .miss_penalty = 10});
  m.load_program(assemble(
      "  li r3, 0\n"
      "loop:\n"
      "  addi r3, r3, 1\n"
      "  sflti r3, 100\n"
      "  bf loop\n"
      "  halt\n"));
  m.run();
  EXPECT_GT(m.icache()->hit_rate(), 0.98);
}

}  // namespace
}  // namespace iss
