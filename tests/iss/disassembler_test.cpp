#include "iss/disassembler.hpp"

#include <gtest/gtest.h>

#include "iss/assembler.hpp"

namespace iss {
namespace {

TEST(Disassembler, RendersEachOperandForm) {
  EXPECT_EQ(disassemble(Instr{Opcode::kAdd, 3, 4, 5, 0, 0}),
            "add r3, r4, r5");
  EXPECT_EQ(disassemble(Instr{Opcode::kAddi, 3, 4, 0, -7, 0}),
            "addi r3, r4, -7");
  EXPECT_EQ(disassemble(Instr{Opcode::kMovhi, 3, 0, 0, 0x12, 0}),
            "movhi r3, 18");
  EXPECT_EQ(disassemble(Instr{Opcode::kLw, 3, 2, 0, 8, 0}), "lw r3, 8(r2)");
  EXPECT_EQ(disassemble(Instr{Opcode::kSfeq, 0, 3, 4, 0, 0}), "sfeq r3, r4");
  EXPECT_EQ(disassemble(Instr{Opcode::kSflti, 0, 3, 0, 9, 0}),
            "sflti r3, 9");
  EXPECT_EQ(disassemble(Instr{Opcode::kBf, 0, 0, 0, 0, 12}), "bf L12");
  EXPECT_EQ(disassemble(Instr{Opcode::kJr, 0, 9, 0, 0, 0}), "jr r9");
  EXPECT_EQ(disassemble(Instr{Opcode::kNop, 0, 0, 0, 0, 0}), "nop");
  EXPECT_EQ(disassemble(Instr{Opcode::kHalt, 0, 0, 0, 0, 0}), "halt");
}

TEST(Disassembler, EmitsLabelsAtBranchTargets) {
  const Program p = assemble(
      "start:\n"
      "  sfeq r0, r0\n"
      "  bf start\n"
      "  halt\n");
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("L0:"), std::string::npos);
  EXPECT_NE(text.find("bf L0"), std::string::npos);
  EXPECT_NE(text.find("# start"), std::string::npos);
}

bool same_instr(const Instr& a, const Instr& b) {
  return a.op == b.op && a.rd == b.rd && a.ra == b.ra && a.rb == b.rb &&
         a.imm == b.imm && a.target == b.target;
}

/// Round-trip property over every handwritten program in the repo's style.
class RoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTrip, ReassemblesToIdenticalStream) {
  const Program original = assemble(GetParam());
  const Program again = assemble(disassemble(original));
  ASSERT_EQ(again.instrs.size(), original.instrs.size());
  for (std::size_t i = 0; i < original.instrs.size(); ++i) {
    EXPECT_TRUE(same_instr(original.instrs[i], again.instrs[i]))
        << "instruction " << i << ": " << disassemble(original.instrs[i])
        << " vs " << disassemble(again.instrs[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, RoundTrip,
    ::testing::Values(
        // arithmetic mix
        "li r3, 7\nli r4, 0x12345\nadd r5, r3, r4\nmul r6, r5, r5\n"
        "div r7, r6, r3\nhalt\n",
        // memory + compare + branch loop
        "  li r2, 0x100\n  li r3, 0\nloop:\n  sw r3, 0(r2)\n"
        "  lw r4, 0(r2)\n  addi r3, r3, 1\n  sflti r3, 10\n  bf loop\n"
        "  halt\n",
        // calls and returns
        "main:\n  li r3, 5\n  jal f\n  halt\nf:\n  add r11, r3, r3\n  ret\n",
        // forward jump to the very end
        "  sfeq r0, r0\n  bf done\n  nop\ndone:\n",
        // every compare variant
        "sfeq r1, r2\nsfne r1, r2\nsflt r1, r2\nsfle r1, r2\nsfgt r1, r2\n"
        "sfge r1, r2\nsfeqi r1, 1\nsfnei r1, 2\nsflti r1, 3\nsflei r1, 4\n"
        "sfgti r1, 5\nsfgei r1, 6\nhalt\n"));

TEST(Disassembler, RoundTripsTheVocoderKernels) {
  // The largest handwritten program in the repository must survive a full
  // disassemble/assemble cycle (regression net for both tools).
  // Reuse a Table-1 program indirectly: assemble a small FIR-like loop.
  const Program p = assemble(
      "fir:\n"
      "  li r11, 0\n"
      "  li r13, 0\n"
      "outer:\n"
      "  sflt r13, r6\n"
      "  bnf done\n"
      "  lw r18, 0(r16)\n"
      "  mul r20, r18, r19\n"
      "  add r14, r14, r20\n"
      "  srai r14, r14, 12\n"
      "  addi r13, r13, 1\n"
      "  j outer\n"
      "done:\n"
      "  ret\n");
  const Program again = assemble(disassemble(p));
  ASSERT_EQ(again.instrs.size(), p.instrs.size());
  for (std::size_t i = 0; i < p.instrs.size(); ++i) {
    EXPECT_TRUE(same_instr(p.instrs[i], again.instrs[i])) << i;
  }
}

}  // namespace
}  // namespace iss
