// In-segment wall-clock watchdog: a compute segment that never reaches a
// node never returns to the scheduler, so the kernel's own budget check
// (amortised into the dispatch loop) would sleep through the hang. The
// annotation path probes the budget from inside SegmentAccum::charge, which
// turns an unbounded annotated loop into a SimError instead of a wedge.

#include <gtest/gtest.h>

#include "core/scperf.hpp"
#include "kernel/error.hpp"

namespace scperf {
namespace {

using minisc::SimError;
using minisc::Time;

CostTable add_only_table() {
  CostTable t;
  t.set(Op::kAdd, 1.0);
  return t;
}

TEST(AnnotationWatchdog, UnboundedSegmentTripsWallClockBudget) {
  minisc::Simulator sim;
  minisc::Watchdog wd;
  wd.wall_clock_ms = 50;  // keep the test fast; the loop spins until tripped
  sim.set_watchdog(wd);
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", 100.0, add_only_table());
  est.map("spin", cpu);
  sim.spawn("spin", [&] {
    // No wait, no channel access: without the in-charge probe this loop
    // never yields and the test binary hangs.
    gint a(detail::RawTag{}, 0);
    for (;;) {
      gint r = a + 1;
      (void)r;
    }
  });
  try {
    sim.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_EQ(e.kind(), SimError::Kind::kWallClockBudget);
  }
}

TEST(AnnotationWatchdog, BoundedSegmentsPassUntouched) {
  // The probe must be an observer: a finite annotated workload under a
  // generous budget completes with its estimate unchanged.
  minisc::Simulator sim;
  minisc::Watchdog wd;
  wd.wall_clock_ms = 10000;
  sim.set_watchdog(wd);
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", 100.0, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [&] {
    gint a(detail::RawTag{}, 0);
    for (int i = 0; i < 100000; ++i) {  // well past several probe strides
      gint r = a + 1;
      (void)r;
    }
    minisc::wait(Time::ns(1));
  });
  EXPECT_EQ(sim.run(), minisc::StopReason::kFinished);
  EXPECT_DOUBLE_EQ(est.process_cycles("p"), 100000.0);
}

}  // namespace
}  // namespace scperf
