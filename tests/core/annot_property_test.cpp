// Property tests of the annotation fabric: for ANY program over annotated
// types, (1) the computed values are bit-identical to the same program over
// built-in types, (2) the charged cost is independent of the data values'
// magnitude (it depends only on the executed operation sequence), and
// (3) the HW critical path never exceeds the sequential sum.
//
// "Any program" is approximated by a seeded random interpreter executing the
// same random operation stream against both value domains.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/annot.hpp"
#include "core/context.hpp"
#include "core/cost_table.hpp"

namespace scperf {
namespace {

/// Mirror of workloads::Lcg (tests must not depend on the workloads lib).
class Rng {
 public:
  explicit Rng(std::uint32_t seed) : s_(seed) {}
  std::uint32_t next() {
    s_ = s_ * 1664525u + 1013904223u;
    return s_;
  }
  int range(int lo, int hi) {
    return lo + static_cast<int>(next() % static_cast<std::uint32_t>(
                                             hi - lo + 1));
  }

 private:
  std::uint32_t s_;
};

/// Executes `steps` random ops over an 8-slot register file in both domains;
/// returns (plain result, annotated result).
struct RunOutput {
  std::int64_t plain_sum = 0;
  std::int64_t annot_sum = 0;
  double charged = 0.0;
  double critical_path = 0.0;
  std::uint64_t ops = 0;
};

RunOutput run_random_program(std::uint32_t seed, int steps,
                             const CostTable& table, bool track_ready) {
  SegmentAccum accum;
  accum.table = &table;
  accum.track_ready = track_ready;

  int plain[8];
  garray<int> annot(8);
  Rng init(seed);
  for (int i = 0; i < 8; ++i) {
    plain[i] = init.range(-1000, 1000);
    annot.at_raw(static_cast<std::size_t>(i)).set_raw(plain[i]);
  }

  Rng rng(seed ^ 0xdeadbeefu);
  tl_accum = &accum;
  for (int s = 0; s < steps; ++s) {
    const int op = rng.range(0, 9);
    const auto d = static_cast<std::size_t>(rng.range(0, 7));
    const auto a = static_cast<std::size_t>(rng.range(0, 7));
    const auto b = static_cast<std::size_t>(rng.range(0, 7));
    const int k = rng.range(1, 15);
    // Keep magnitudes bounded so plain & annotated wrap identically-never.
    const auto clamp = [](int v) { return (v % 100000); };
    switch (op) {
      case 0:
        annot[d] = annot[a] + annot[b];
        plain[d] = plain[a] + plain[b];
        break;
      case 1:
        annot[d] = annot[a] - annot[b];
        plain[d] = plain[a] - plain[b];
        break;
      case 2:
        annot[d] = clamp((annot[a] * k).value());
        plain[d] = clamp(plain[a] * k);
        break;
      case 3:
        annot[d] = annot[a] / (k + 1);
        plain[d] = plain[a] / (k + 1);
        break;
      case 4:
        annot[d] = annot[a] & annot[b];
        plain[d] = plain[a] & plain[b];
        break;
      case 5:
        annot[d] = annot[a] ^ k;
        plain[d] = plain[a] ^ k;
        break;
      case 6:
        annot[d] = annot[a] >> (k & 3);
        plain[d] = plain[a] >> (k & 3);
        break;
      case 7:
        if (annot[a] < annot[b]) {
          annot[d] = annot[a];
        }
        if (plain[a] < plain[b]) {
          plain[d] = plain[a];
        }
        break;
      case 8:
        annot[d] += k;
        plain[d] += k;
        break;
      case 9:
        annot[d] = -annot[a];
        plain[d] = -plain[a];
        break;
    }
  }
  tl_accum = nullptr;

  RunOutput out;
  for (int i = 0; i < 8; ++i) {
    out.plain_sum += plain[i];
    out.annot_sum += annot.at_raw(static_cast<std::size_t>(i)).value();
  }
  out.charged = accum.sum_cycles;
  out.critical_path = accum.max_ready;
  out.ops = accum.op_count;
  return out;
}

class RandomPrograms : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomPrograms, AnnotatedValuesMatchPlain) {
  const auto out = run_random_program(GetParam(), 500,
                                      orsim_sw_cost_table(), false);
  EXPECT_EQ(out.annot_sum, out.plain_sum);
  EXPECT_GT(out.ops, 0u);
}

TEST_P(RandomPrograms, ChargeIndependentOfDataValues) {
  // Same op stream, different initial data (different seed half): the
  // branch in case 7 can change the executed sequence, so instead compare
  // two runs with IDENTICAL seeds — charge must be deterministic — and a
  // doubled-cost table — charge must scale linearly.
  const CostTable base = CostTable::uniform(1.0);
  const CostTable doubled = CostTable::uniform(2.0);
  const auto a = run_random_program(GetParam(), 300, base, false);
  const auto b = run_random_program(GetParam(), 300, base, false);
  const auto c = run_random_program(GetParam(), 300, doubled, false);
  EXPECT_DOUBLE_EQ(a.charged, b.charged);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_DOUBLE_EQ(c.charged, 2.0 * a.charged);
}

TEST_P(RandomPrograms, CriticalPathBoundedBySum) {
  const auto out = run_random_program(GetParam(), 400,
                                      asic_hw_cost_table(), true);
  EXPECT_LE(out.critical_path, out.charged + 1e-9);
  EXPECT_GE(out.critical_path, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u,
                                           0xabcdefu, 31415926u, 27182818u));

}  // namespace
}  // namespace scperf
