#include "core/capture.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "kernel/simulator.hpp"

namespace scperf {
namespace {

TEST(Capture, RecordsSimulatedTimeAndValue) {
  minisc::Simulator sim;
  CaptureRegistry reg;
  CapturePoint cp("out_rate", reg);
  sim.spawn("p", [&] {
    minisc::wait(minisc::Time::ns(10));
    cp.record(1.5);
    minisc::wait(minisc::Time::ns(20));
    cp.record(2.5);
  });
  sim.run();
  ASSERT_EQ(cp.events().size(), 2u);
  EXPECT_EQ(cp.events()[0].time, minisc::Time::ns(10));
  EXPECT_DOUBLE_EQ(cp.events()[0].value, 1.5);
  EXPECT_EQ(cp.events()[1].time, minisc::Time::ns(30));
  EXPECT_DOUBLE_EQ(cp.events()[1].value, 2.5);
}

TEST(Capture, ConditionalRecording) {
  minisc::Simulator sim;
  CaptureRegistry reg;
  CapturePoint cp("errors", reg);
  sim.spawn("p", [&] {
    for (int i = 0; i < 10; ++i) {
      cp.record_if(i % 3 == 0, i);
      minisc::wait(minisc::Time::ns(1));
    }
  });
  sim.run();
  ASSERT_EQ(cp.events().size(), 4u);  // i = 0, 3, 6, 9
  EXPECT_DOUBLE_EQ(cp.events()[3].value, 9.0);
}

TEST(Capture, WorksOutsideSimulation) {
  CaptureRegistry reg;
  CapturePoint cp("standalone", reg);
  cp.record(7.0);
  ASSERT_EQ(cp.events().size(), 1u);
  EXPECT_EQ(cp.events()[0].time, minisc::Time::zero());
}

TEST(Capture, RegistryFindsPointsByName) {
  CaptureRegistry reg;
  CapturePoint a("alpha", reg);
  CapturePoint b("beta", reg);
  EXPECT_EQ(reg.find("alpha"), &a);
  EXPECT_EQ(reg.find("beta"), &b);
  EXPECT_EQ(reg.find("gamma"), nullptr);
}

TEST(Capture, PointDetachesOnDestruction) {
  CaptureRegistry reg;
  {
    CapturePoint tmp("temp", reg);
    EXPECT_EQ(reg.points().size(), 1u);
  }
  EXPECT_TRUE(reg.points().empty());
}

TEST(Capture, CsvOutput) {
  CaptureRegistry reg;
  CapturePoint cp("rate", reg);
  cp.record(3.0);
  std::ostringstream os;
  reg.write_csv(os);
  EXPECT_NE(os.str().find("time_ns,point,value"), std::string::npos);
  EXPECT_NE(os.str().find("0,rate,3"), std::string::npos);
}

TEST(Capture, MatlabOutputSanitisesNames) {
  CaptureRegistry reg;
  CapturePoint cp("out.rate-1", reg);
  cp.record(1.0);
  std::ostringstream os;
  reg.write_matlab(os);
  EXPECT_NE(os.str().find("out_rate_1 = ["), std::string::npos);
}

// ---- nondeterminism detection (§6) ------------------------------------------

TEST(Capture, HashEqualForIdenticalValueSequences) {
  CaptureRegistry r1, r2;
  CapturePoint a1("a", r1), b1("b", r1);
  CapturePoint a2("a", r2), b2("b", r2);
  a1.record(1.0);
  b1.record(2.0);
  // Different global interleaving, same per-point sequences:
  b2.record(2.0);
  a2.record(1.0);
  EXPECT_EQ(r1.value_sequence_hash(), r2.value_sequence_hash());
}

TEST(Capture, HashDiffersWhenValuesDiffer) {
  CaptureRegistry r1, r2;
  CapturePoint a1("a", r1);
  CapturePoint a2("a", r2);
  a1.record(1.0);
  a2.record(99.0);
  EXPECT_NE(r1.value_sequence_hash(), r2.value_sequence_hash());
}

TEST(Capture, HashSensitiveToWithinPointOrder) {
  CaptureRegistry r1, r2;
  CapturePoint a1("a", r1);
  CapturePoint a2("a", r2);
  a1.record(1.0);
  a1.record(2.0);
  a2.record(2.0);
  a2.record(1.0);
  EXPECT_NE(r1.value_sequence_hash(), r2.value_sequence_hash());
}

TEST(Capture, ClearEventsKeepsRegistrations) {
  CaptureRegistry reg;
  CapturePoint cp("x", reg);
  cp.record(1.0);
  reg.clear_events();
  EXPECT_TRUE(cp.events().empty());
  EXPECT_EQ(reg.points().size(), 1u);
}

}  // namespace
}  // namespace scperf
