#include "core/segment_parser.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace scperf {
namespace {

// ---- the paper's Figure 1, verbatim structure -------------------------------
//
//   N0 void process() { do {
//        //code of segment S0-1
//   N1   ch1.read();
//        if (condition) {
//          //code of segment S1-2
//   N2     ch2.write();
//        }
//        //code of segment S2-3
//   N3   wait(delay1);
//        //code of segment S3-4
//   N4   ch2.read();
//      } while (true); }
//
// Expected graph (the paper's Figure 2): segments S0-1, S1-2, S1-3, S2-3,
// S3-4 and the back edge S4-1; no exit node (infinite loop).

constexpr const char* kFigure1 = R"(
  do {
    // code of segment S0-1
    // common code to S0-1 and S4-1
    ch1.read();
    // common code to S1-2 and S1-3
    if (condition) {
      // code of segment S1-2
      ch2.write();
    }
    // code of segment S2-3
    wait(delay1);
    // code of segment S3-4
    ch2.read();
  } while (true);
)";

TEST(SegmentParser, Figure1Nodes) {
  const ProcessGraph g = parse_process_body(kFigure1);
  ASSERT_EQ(g.nodes.size(), 5u);  // N0..N4, no exit (infinite loop)
  EXPECT_EQ(g.nodes[0].kind, GraphNode::Kind::kEntry);
  EXPECT_EQ(g.node("N1").kind, GraphNode::Kind::kChannelRead);
  EXPECT_EQ(g.node("N1").channel, "ch1");
  EXPECT_EQ(g.node("N2").kind, GraphNode::Kind::kChannelWrite);
  EXPECT_EQ(g.node("N2").channel, "ch2");
  EXPECT_EQ(g.node("N3").kind, GraphNode::Kind::kTimedWait);
  EXPECT_EQ(g.node("N4").kind, GraphNode::Kind::kChannelRead);
  EXPECT_EQ(g.node("N4").channel, "ch2");
}

TEST(SegmentParser, Figure2Segments) {
  const ProcessGraph g = parse_process_body(kFigure1);
  EXPECT_TRUE(g.has_segment("N0", "N1"));  // S0-1
  EXPECT_TRUE(g.has_segment("N1", "N2"));  // S1-2
  EXPECT_TRUE(g.has_segment("N1", "N3"));  // S1-3 (if skipped)
  EXPECT_TRUE(g.has_segment("N2", "N3"));  // S2-3
  EXPECT_TRUE(g.has_segment("N3", "N4"));  // S3-4
  EXPECT_TRUE(g.has_segment("N4", "N1"));  // S4-1 (loop back edge)
  EXPECT_EQ(g.segments.size(), 6u);        // and nothing else
}

TEST(SegmentParser, SegmentNamesMatchPaperNotation) {
  const ProcessGraph g = parse_process_body(kFigure1);
  std::vector<std::string> names;
  for (const auto& s : g.segments) names.push_back(g.segment_name(s));
  EXPECT_NE(std::find(names.begin(), names.end(), "S0-1"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "S4-1"), names.end());
}

// ---- other shapes ------------------------------------------------------------

TEST(SegmentParser, StraightLineGetsExitNode) {
  const ProcessGraph g = parse_process_body(
      "in.read();\n"
      "out.write();\n");
  ASSERT_EQ(g.nodes.size(), 4u);  // entry, read, write, exit
  EXPECT_EQ(g.nodes.back().kind, GraphNode::Kind::kExit);
  EXPECT_TRUE(g.has_segment("N0", "N1"));
  EXPECT_TRUE(g.has_segment("N1", "N2"));
  EXPECT_TRUE(g.has_segment("N2", "N3"));
}

TEST(SegmentParser, IfElseProducesBothBranches) {
  const ProcessGraph g = parse_process_body(
      "in.read();\n"
      "if (c) {\n"
      "  a.write();\n"
      "} else {\n"
      "  b.write();\n"
      "}\n"
      "out.write();\n");
  // N1 in.read, N2 a.write, N3 b.write, N4 out.write
  EXPECT_TRUE(g.has_segment("N1", "N2"));
  EXPECT_TRUE(g.has_segment("N1", "N3"));
  EXPECT_TRUE(g.has_segment("N2", "N4"));
  EXPECT_TRUE(g.has_segment("N3", "N4"));
  EXPECT_FALSE(g.has_segment("N1", "N4"));  // no skip edge with an else
}

TEST(SegmentParser, FiniteWhileLoopHasBackEdgeAndSkip) {
  const ProcessGraph g = parse_process_body(
      "while (i < n) {\n"
      "  ch.read();\n"
      "}\n"
      "done.write();\n");
  // N1 ch.read, N2 done.write (+ exit N3)
  EXPECT_TRUE(g.has_segment("N0", "N1"));
  EXPECT_TRUE(g.has_segment("N1", "N1"));  // back edge
  EXPECT_TRUE(g.has_segment("N0", "N2"));  // zero-iteration skip
  EXPECT_TRUE(g.has_segment("N1", "N2"));
}

TEST(SegmentParser, CommentsAndStringsIgnored) {
  const ProcessGraph g = parse_process_body(
      "// ch.read();\n"
      "/* wait(x); */\n"
      "log(\"ch.read()\");\n"
      "real.read();\n");
  ASSERT_EQ(g.nodes.size(), 3u);  // entry, the real read, exit
  EXPECT_EQ(g.node("N1").channel, "real");
}

TEST(SegmentParser, WaitInsideForLoop) {
  const ProcessGraph g = parse_process_body(
      "for (int i = 0; i < 10; ++i) {\n"
      "  wait(period);\n"
      "}\n");
  EXPECT_EQ(g.node("N1").kind, GraphNode::Kind::kTimedWait);
  EXPECT_TRUE(g.has_segment("N1", "N1"));  // loop body repeats
  EXPECT_EQ(g.node("N1").loop_depth, 1);
}

TEST(SegmentParser, NestedLoopsTrackDepth) {
  const ProcessGraph g = parse_process_body(
      "while (a) {\n"
      "  while (b) {\n"
      "    ch.read();\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(g.node("N1").loop_depth, 2);
}

TEST(SegmentParser, LineNumbersRecorded) {
  const ProcessGraph g = parse_process_body(
      "\n"
      "\n"
      "ch.read();\n");
  EXPECT_EQ(g.node("N1").line, 3u);
}

TEST(SegmentParser, EmptyBodyIsEntryToExit) {
  const ProcessGraph g = parse_process_body("int x = 1;\n");
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_TRUE(g.has_segment("N0", "N1"));
}

TEST(SegmentParser, DotOutputIsWellFormed) {
  const ProcessGraph g = parse_process_body(kFigure1);
  std::ostringstream os;
  g.write_dot(os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph process {"), std::string::npos);
  EXPECT_NE(dot.find("N4 -> N1"), std::string::npos);
  EXPECT_NE(dot.find("S4-1"), std::string::npos);
}

TEST(SegmentParser, UnknownLabelThrows) {
  const ProcessGraph g = parse_process_body("ch.read();\n");
  EXPECT_THROW(g.node("N99"), std::out_of_range);
}

}  // namespace
}  // namespace scperf
