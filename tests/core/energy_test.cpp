#include <gtest/gtest.h>

#include <sstream>

#include "core/scperf.hpp"

namespace scperf {
namespace {

constexpr double kMhz = 100.0;

CostTable add_only_table() {
  CostTable t;
  t.set(Op::kAdd, 1.0);
  return t;
}

EnergyTable add_energy(double pj_per_add) {
  EnergyTable t;
  t.set(Op::kAdd, pj_per_add);
  return t;
}

void burn_adds(int n) {
  gint a(detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    gint r = a + 1;
    (void)r;
  }
}

TEST(Energy, ZeroWithoutEnergyTable) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(100); });
  sim.run();
  EXPECT_DOUBLE_EQ(est.process_energy_pj("p"), 0.0);
}

TEST(Energy, DotProductOfHistogramAndTable) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  cpu.set_energy_table(add_energy(5.0));
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(100); });
  sim.run();
  EXPECT_DOUBLE_EQ(est.process_energy_pj("p"), 500.0);
}

TEST(Energy, IndependentOfClockFrequency) {
  // Energy counts operations, not time: halving the clock must not change it.
  const auto energy_at = [](double mhz) {
    minisc::Simulator sim;
    Estimator est(sim);
    auto& cpu = est.add_sw_resource("cpu", mhz, add_only_table());
    cpu.set_energy_table(add_energy(3.0));
    est.map("p", cpu);
    sim.spawn("p", [] { burn_adds(64); });
    sim.run();
    return est.process_energy_pj("p");
  };
  EXPECT_DOUBLE_EQ(energy_at(100.0), energy_at(50.0));
}

TEST(Energy, AccumulatesAcrossSegments) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  cpu.set_energy_table(add_energy(1.0));
  est.map("p", cpu);
  sim.spawn("p", [] {
    burn_adds(10);
    minisc::wait(minisc::Time::ns(5));
    burn_adds(20);
  });
  sim.run();
  EXPECT_DOUBLE_EQ(est.process_energy_pj("p"), 30.0);
}

TEST(Energy, ShippedTablesDistinguishSwAndHw) {
  // The same computation costs far less energy on the dedicated datapath.
  const auto run_on = [](bool hw) {
    minisc::Simulator sim;
    Estimator est(sim);
    Resource* r;
    if (hw) {
      auto& res = est.add_hw_resource("res", kMhz, asic_hw_cost_table());
      res.set_energy_table(asic_energy_table());
      r = &res;
    } else {
      auto& res = est.add_sw_resource("res", kMhz, orsim_sw_cost_table());
      res.set_energy_table(orsim_energy_table());
      r = &res;
    }
    est.map("p", *r);
    sim.spawn("p", [] {
      garray<int> a(16);
      for (int i = 0; i < 16; ++i) a.at_raw(static_cast<std::size_t>(i)).set_raw(i);
      gint acc(detail::RawTag{}, 0);
      gint i = 0;
      while (i < 16) {
        acc = acc + a[i] * 3;
        i = i + 1;
      }
    });
    sim.run();
    return est.process_energy_pj("p");
  };
  const double sw = run_on(false);
  const double hw = run_on(true);
  EXPECT_GT(sw, 0.0);
  EXPECT_GT(hw, 0.0);
  EXPECT_GT(sw, 3.0 * hw);
}

TEST(Energy, ReportShowsEnergyColumnOnlyWhenPresent) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  cpu.set_energy_table(add_energy(1e6));  // 1e6 pJ/add -> easy to spot in uJ
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(5); });
  sim.run();
  std::ostringstream os;
  est.report().print(os);
  EXPECT_NE(os.str().find("energy"), std::string::npos);
  EXPECT_NE(os.str().find("5.00 uJ"), std::string::npos);
}

TEST(Energy, ReportOmitsColumnWithoutTables) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(5); });
  sim.run();
  std::ostringstream os;
  est.report().print(os);
  EXPECT_EQ(os.str().find("energy"), std::string::npos);
}

TEST(Energy, UnknownProcessIsZero) {
  minisc::Simulator sim;
  Estimator est(sim);
  EXPECT_DOUBLE_EQ(est.process_energy_pj("nobody"), 0.0);
}

}  // namespace
}  // namespace scperf
