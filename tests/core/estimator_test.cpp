#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/scperf.hpp"

namespace scperf {
namespace {

/// 100 MHz => 10 ns per cycle: keeps expected times easy to read.
constexpr double kMhz = 100.0;
minisc::Time cyc(double c) { return minisc::Time::from_ns(c * 10.0); }

/// Burns exactly `n` cycles under CostTable::uniform-like tables where
/// kAdd = 1 and everything else relevant is 0.
CostTable add_only_table() {
  CostTable t;  // all zero
  t.set(Op::kAdd, 1.0);
  return t;
}

void burn_adds(int n) {
  gint a(detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    gint r = a + 1;
    (void)r;
  }
}

TEST(Estimator, SingleSwProcessAdvancesTimeByEstimate) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(50); });
  EXPECT_EQ(sim.run(), minisc::StopReason::kFinished);
  EXPECT_EQ(sim.now(), cyc(50));
  EXPECT_EQ(est.process_time("p"), cyc(50));
  EXPECT_DOUBLE_EQ(est.process_cycles("p"), 50.0);
}

TEST(Estimator, UnmappedProcessRunsUntimed) {
  minisc::Simulator sim;
  Estimator est(sim);
  sim.spawn("tb", [] { burn_adds(1000); });
  sim.run();
  EXPECT_EQ(sim.now(), minisc::Time::zero());
  EXPECT_EQ(est.process_time("tb"), minisc::Time::zero());
}

TEST(Estimator, EnvMappedProcessRunsUntimed) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& env = est.add_env_resource("testbench");
  est.map("tb", env);
  sim.spawn("tb", [] { burn_adds(1000); });
  sim.run();
  EXPECT_EQ(sim.now(), minisc::Time::zero());
}

TEST(Estimator, WaitSplitsSegments) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] {
    burn_adds(10);
    minisc::wait(minisc::Time::ns(1000));  // 100 cycles of pure waiting
    burn_adds(20);
  });
  sim.run();
  // Segment 1 back-annotates 10 cycles, the explicit wait adds 1000 ns, the
  // exit segment 20 cycles.
  EXPECT_EQ(sim.now(), cyc(10) + minisc::Time::ns(1000) + cyc(20));

  const auto segs = est.segment_stats("p");
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].id(), "entry->wait");
  EXPECT_EQ(segs[1].id(), "wait->exit");
  EXPECT_DOUBLE_EQ(segs[0].mean(), 10.0);
  EXPECT_DOUBLE_EQ(segs[1].mean(), 20.0);
}

TEST(Estimator, LoopSegmentsAccumulateStats) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] {
    for (int i = 0; i < 5; ++i) {
      burn_adds(7);
      minisc::wait(minisc::Time::ns(10));
    }
  });
  sim.run();
  const auto segs = est.segment_stats("p");
  // entry->wait (1x), wait->wait (4x), wait->exit (1x, empty)
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].id(), "entry->wait");
  EXPECT_EQ(segs[0].count, 1u);
  EXPECT_EQ(segs[1].id(), "wait->wait");
  EXPECT_EQ(segs[1].count, 4u);
  EXPECT_DOUBLE_EQ(segs[1].mean(), 7.0);
  EXPECT_EQ(segs[2].id(), "wait->exit");
  EXPECT_DOUBLE_EQ(segs[2].mean(), 0.0);
}

// ---- Figure 5 semantics: SW serialisation vs HW parallelism ----------------

TEST(Estimator, SameCpuProcessesSerialise) {
  // P2 and P3 execute in the same delta cycle but are mapped to the same
  // sequential resource: their segments must be scheduled one after the
  // other (paper Fig. 5, signals s2/s3).
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p2", cpu);
  est.map("p3", cpu);
  minisc::Time end2, end3;
  sim.spawn("p2", [&] {
    burn_adds(40);
    minisc::wait(minisc::Time::zero());
    end2 = minisc::now();
  });
  sim.spawn("p3", [&] {
    burn_adds(40);
    minisc::wait(minisc::Time::zero());
    end3 = minisc::now();
  });
  sim.run();
  EXPECT_EQ(end2, cyc(40));
  EXPECT_EQ(end3, cyc(80));  // had to wait for the processor
  EXPECT_EQ(cpu.busy_time(), cyc(80));
}

TEST(Estimator, DifferentResourcesRunInParallel) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu0 = est.add_sw_resource("cpu0", kMhz, add_only_table());
  auto& cpu1 = est.add_sw_resource("cpu1", kMhz, add_only_table());
  est.map("p2", cpu0);
  est.map("p3", cpu1);
  minisc::Time end2, end3;
  sim.spawn("p2", [&] {
    burn_adds(40);
    minisc::wait(minisc::Time::zero());
    end2 = minisc::now();
  });
  sim.spawn("p3", [&] {
    burn_adds(40);
    minisc::wait(minisc::Time::zero());
    end3 = minisc::now();
  });
  sim.run();
  EXPECT_EQ(end2, cyc(40));
  EXPECT_EQ(end3, cyc(40));  // truly parallel
}

TEST(Estimator, HwProcessesOverlap) {
  minisc::Simulator sim;
  Estimator est(sim);
  CostTable t = add_only_table();
  auto& hw = est.add_hw_resource("asic", kMhz, t, {.k = 1.0});
  est.map("p1", hw);
  est.map("p2", hw);
  minisc::Time e1, e2;
  sim.spawn("p1", [&] {
    burn_adds(30);
    minisc::wait(minisc::Time::zero());
    e1 = minisc::now();
  });
  sim.spawn("p2", [&] {
    burn_adds(30);
    minisc::wait(minisc::Time::zero());
    e2 = minisc::now();
  });
  sim.run();
  // Parallel resource: no arbitration, both finish together.
  EXPECT_EQ(e1, cyc(30));
  EXPECT_EQ(e2, cyc(30));
}

TEST(Estimator, RtosOverheadChargedPerNode) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu =
      est.add_sw_resource("cpu", kMhz, add_only_table(),
                          {.rtos_cycles_per_switch = 15.0});
  est.map("p", cpu);
  sim.spawn("p", [] {
    burn_adds(10);
    minisc::wait(minisc::Time::zero());
    burn_adds(10);
  });
  sim.run();
  // Two nodes (wait + exit): 2 * 15 RTOS cycles on top of 20 compute cycles.
  EXPECT_EQ(sim.now(), cyc(10 + 15 + 10 + 15));
  EXPECT_EQ(cpu.rtos_time(), cyc(30));
  EXPECT_EQ(cpu.busy_time(), cyc(20));
}

TEST(Estimator, RtosOverheadAlsoSerialises) {
  // The RTOS occupies the processor: a second process must wait for it.
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  {.rtos_cycles_per_switch = 5.0});
  est.map("a", cpu);
  est.map("b", cpu);
  minisc::Time end_b;
  sim.spawn("a", [&] { burn_adds(10); });
  sim.spawn("b", [&] {
    burn_adds(10);
    minisc::wait(minisc::Time::zero());
    end_b = minisc::now();
  });
  sim.run();
  // a occupies [0, 15) (10 + rtos 5); b then occupies [15, 30).
  EXPECT_EQ(end_b, cyc(30));
}

// ---- HW best/worst case weighting (§3) --------------------------------------

void balanced_tree_segment() {
  // 4 independent adds then 2 then 1: sum = 7 adds, critical path = 3.
  gint a(detail::RawTag{}, 1), b(detail::RawTag{}, 2), c(detail::RawTag{}, 3),
      d(detail::RawTag{}, 4), e(detail::RawTag{}, 5), f(detail::RawTag{}, 6),
      g(detail::RawTag{}, 7), h(detail::RawTag{}, 8);
  gint r = ((a + b) + (c + d)) + ((e + f) + (g + h));
  (void)r;
}

class HwWeighting : public ::testing::TestWithParam<double> {};

TEST_P(HwWeighting, WeightedMeanBetweenExtremes) {
  const double k = GetParam();
  minisc::Simulator sim;
  Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", kMhz, add_only_table(), {.k = k});
  est.map("p", hw);
  sim.spawn("p", [] { balanced_tree_segment(); });
  sim.run();
  const double bc = 3.0, wc = 7.0;
  const double expected = bc + (wc - bc) * k;
  EXPECT_EQ(sim.now(), cyc(expected));
}

INSTANTIATE_TEST_SUITE_P(KSweep, HwWeighting,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(Estimator, HwSegmentStatsRecordBothExtremes) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", kMhz, add_only_table(), {.k = 0.5});
  est.map("p", hw);
  sim.spawn("p", [] { balanced_tree_segment(); });
  sim.run();
  const auto segs = est.segment_stats("p");
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_DOUBLE_EQ(segs[0].bc_cycles_sum, 3.0);
  EXPECT_DOUBLE_EQ(segs[0].wc_cycles_sum, 7.0);
  EXPECT_DOUBLE_EQ(segs[0].mean(), 5.0);
}

TEST(Estimator, InvalidKRejected) {
  minisc::Simulator sim;
  Estimator est(sim);
  EXPECT_THROW(
      est.add_hw_resource("a", kMhz, add_only_table(), {.k = 1.5}),
      std::invalid_argument);
  EXPECT_THROW(
      est.add_hw_resource("b", kMhz, add_only_table(), {.k = -0.1}),
      std::invalid_argument);
}

TEST(Estimator, DfgRecordedForHwSegments) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& hw = est.add_hw_resource("asic", kMhz, add_only_table(),
                                 {.k = 0.0, .record_dfg = true});
  est.map("p", hw);
  sim.spawn("p", [] { balanced_tree_segment(); });
  sim.run();
  const Dfg& dfg = est.segment_dfg("p", "entry->exit");
  EXPECT_EQ(dfg.size(), 7u);  // seven adds
}

// ---- channels drive segmentation --------------------------------------------

TEST(Estimator, PipelineOverFifoProducesExpectedMakespan) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu0 = est.add_sw_resource("cpu0", kMhz, add_only_table());
  auto& cpu1 = est.add_sw_resource("cpu1", kMhz, add_only_table());
  est.map("producer", cpu0);
  est.map("consumer", cpu1);
  minisc::Fifo<int> ch("ch", 4);
  constexpr int kItems = 8;
  sim.spawn("producer", [&] {
    for (int i = 0; i < kItems; ++i) {
      burn_adds(10);  // compute an item: 10 cycles
      ch.write(i);
    }
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < kItems; ++i) {
      const int v = ch.read();
      (void)v;
      burn_adds(10);  // consume: 10 cycles
    }
  });
  EXPECT_EQ(sim.run(), minisc::StopReason::kFinished);
  // Steady-state pipeline: first item ready at 10 cycles, afterwards the
  // consumer is never starved, so the makespan is 10 (fill) + 8*10 (drain).
  EXPECT_EQ(sim.now(), cyc(10 * (kItems + 1)));
  EXPECT_EQ(cpu0.busy_time(), cyc(10 * kItems));
  EXPECT_EQ(cpu1.busy_time(), cyc(10 * kItems));
}

TEST(Estimator, SegmentsNamedAfterChannels) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("producer", cpu);
  minisc::Fifo<int> ch("ch1", 4);
  sim.spawn("producer", [&] {
    burn_adds(5);
    ch.write(1);
    burn_adds(5);
    ch.write(2);
  });
  sim.spawn("consumer", [&] {
    (void)ch.read();
    (void)ch.read();
  });
  sim.run();
  const auto segs = est.segment_stats("producer");
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].id(), "entry->ch1:w");
  EXPECT_EQ(segs[1].id(), "ch1:w->ch1:w");
  EXPECT_EQ(segs[2].id(), "ch1:w->exit");
}

TEST(Estimator, RendezvousAccessesAreNodes) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("writer", cpu);
  minisc::Rendezvous<int> rv("rv1");
  sim.spawn("writer", [&] {
    burn_adds(12);
    rv.write(1);
    burn_adds(8);
  });
  sim.spawn("reader", [&] { (void)rv.read(); });
  sim.run();
  const auto segs = est.segment_stats("writer");
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].id(), "entry->rv1:w");
  EXPECT_DOUBLE_EQ(segs[0].mean(), 12.0);
  EXPECT_EQ(segs[1].id(), "rv1:w->exit");
  EXPECT_DOUBLE_EQ(segs[1].mean(), 8.0);
}

TEST(Estimator, SignalAccessesAreNodes) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("driver", cpu);
  minisc::Signal<int> s("sig");
  sim.spawn("driver", [&] {
    burn_adds(6);
    s.write(3);
    burn_adds(4);
  });
  sim.run();
  const auto segs = est.segment_stats("driver");
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].id(), "entry->sig:w");
  EXPECT_DOUBLE_EQ(segs[0].mean(), 6.0);
}

// ---- report ------------------------------------------------------------------

TEST(Estimator, ReportContainsAllSections) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  {.rtos_cycles_per_switch = 2.0});
  est.map("p", cpu);
  sim.spawn("p", [] {
    burn_adds(10);
    minisc::wait(minisc::Time::ns(50));
    burn_adds(5);
  });
  sim.run();
  const Report rep = est.report();
  ASSERT_EQ(rep.processes.size(), 1u);
  EXPECT_EQ(rep.processes[0].process, "p");
  EXPECT_EQ(rep.processes[0].resource, "cpu");
  EXPECT_DOUBLE_EQ(rep.processes[0].total_cycles, 15.0);
  ASSERT_EQ(rep.resources.size(), 1u);
  EXPECT_EQ(rep.resources[0].kind, "SW");
  EXPECT_GT(rep.resources[0].utilization, 0.0);
  EXPECT_LE(rep.resources[0].utilization, 1.0);
  EXPECT_EQ(rep.segments.size(), 2u);

  std::ostringstream txt;
  rep.print(txt);
  EXPECT_NE(txt.str().find("cpu"), std::string::npos);
  EXPECT_NE(txt.str().find("entry->wait"), std::string::npos);

  std::ostringstream csv;
  rep.write_csv(csv);
  EXPECT_NE(csv.str().find("p,entry->wait,1,10"), std::string::npos);
}

TEST(Estimator, ProcessAndResourceCsvExports) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  {.rtos_cycles_per_switch = 5.0});
  est.map("p", cpu);
  sim.spawn("p", [] {
    burn_adds(10);
    minisc::wait(minisc::Time::ns(1));
  });
  sim.run();
  const Report rep = est.report();

  std::ostringstream pcsv;
  rep.write_process_csv(pcsv);
  EXPECT_NE(pcsv.str().find(
                "process,resource,total_cycles,total_time_ns,segments,ops"),
            std::string::npos);
  EXPECT_NE(pcsv.str().find("p,cpu,10,100,"), std::string::npos);

  std::ostringstream rcsv;
  rep.write_resource_csv(rcsv);
  EXPECT_NE(rcsv.str().find("resource,kind,busy_ns,rtos_ns,utilization"),
            std::string::npos);
  EXPECT_NE(rcsv.str().find("cpu,SW,100,100,"), std::string::npos);
}

TEST(Estimator, RefusesSecondHook) {
  minisc::Simulator sim;
  Estimator est(sim);
  EXPECT_THROW(Estimator second(sim), std::logic_error);
}

TEST(Estimator, InstantaneousSegmentValuesRecordedWhenRequested) {
  // §4: "All instantaneous segment values of execution time parameters can
  // be provided if required."
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  est.record_instantaneous("p");
  sim.spawn("p", [] {
    for (int i = 1; i <= 3; ++i) {
      burn_adds(10 * i);  // 10, 20, 30 cycles
      minisc::wait(minisc::Time::ns(1));
    }
  });
  sim.run();
  const auto& ex = est.instantaneous("p");
  ASSERT_EQ(ex.size(), 4u);  // three loop segments + empty exit segment
  EXPECT_EQ(ex[0].segment, "entry->wait");
  EXPECT_DOUBLE_EQ(ex[0].cycles, 10.0);
  EXPECT_EQ(ex[1].segment, "wait->wait");
  EXPECT_DOUBLE_EQ(ex[1].cycles, 20.0);
  EXPECT_DOUBLE_EQ(ex[2].cycles, 30.0);
  EXPECT_EQ(ex[3].segment, "wait->exit");
  // Timestamps are the segment END times, strictly increasing here.
  EXPECT_LT(ex[0].at, ex[1].at);
  EXPECT_LT(ex[1].at, ex[2].at);
}

TEST(Estimator, InstantaneousOffByDefault) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(5); });
  sim.run();
  EXPECT_TRUE(est.instantaneous("p").empty());
  EXPECT_TRUE(est.instantaneous("unknown").empty());
}

TEST(Estimator, SegmentVarianceAndConfidenceInterval) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table());
  est.map("p", cpu);
  sim.spawn("p", [] {
    for (int i = 0; i < 4; ++i) {
      burn_adds(10 + 2 * i);  // 10, 12, 14, 16 cycles
      minisc::wait(minisc::Time::ns(1));
    }
  });
  sim.run();
  const auto segs = est.segment_stats("p");
  const SegmentStats* loop = nullptr;
  for (const auto& s : segs) {
    if (s.id() == "wait->wait") loop = &s;
  }
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->count, 3u);  // 12, 14, 16 (first iteration is entry->wait)
  EXPECT_DOUBLE_EQ(loop->mean(), 14.0);
  EXPECT_DOUBLE_EQ(loop->cycles_min, 12.0);
  EXPECT_DOUBLE_EQ(loop->cycles_max, 16.0);
  EXPECT_NEAR(loop->variance(), 4.0, 1e-9);
  EXPECT_GT(loop->ci95_halfwidth(), 0.0);
}

}  // namespace
}  // namespace scperf
