// Tests of the preemptive fixed-priority extension: a higher-priority
// segment released mid-occupation preempts the processor; the preempted
// segment resumes afterwards with its remaining time intact.

#include <gtest/gtest.h>

#include "core/scperf.hpp"

namespace scperf {
namespace {

constexpr double kMhz = 100.0;
minisc::Time cyc(double c) { return minisc::Time::from_ns(c * 10.0); }

CostTable add_only_table() {
  CostTable t;
  t.set(Op::kAdd, 1.0);
  return t;
}

void burn_adds(int n) {
  gint a(detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    gint r = a + 1;
    (void)r;
  }
}

SwResource::Options preemptive_opts(double rtos = 0.0) {
  return {.rtos_cycles_per_switch = rtos,
          .policy = SchedulingPolicy::kPriority,
          .preemptive = true};
}

TEST(Preemptive, SingleProcessBehavesLikeNonPreemptive) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  preemptive_opts());
  est.map("p", cpu, 1.0);
  sim.spawn("p", [] { burn_adds(50); });
  EXPECT_EQ(sim.run(), minisc::StopReason::kFinished);
  EXPECT_EQ(sim.now(), cyc(50));
  EXPECT_EQ(cpu.busy_time(), cyc(50));
}

TEST(Preemptive, HighPriorityPreemptsRunningSegment) {
  // low occupies [0, 1000ns); high arrives at 200ns and must NOT wait for
  // low to finish (the defining difference from the non-preemptive model).
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  preemptive_opts());
  est.map("low", cpu, 1.0);
  est.map("high", cpu, 9.0);
  minisc::Time low_end, high_end;
  sim.spawn("low", [&] {
    burn_adds(100);
    minisc::wait(minisc::Time::zero());
    low_end = minisc::now();
  });
  sim.spawn("high", [&] {
    minisc::wait(minisc::Time::ns(200));
    burn_adds(30);
    minisc::wait(minisc::Time::zero());
    high_end = minisc::now();
  });
  sim.run();
  // high: released 200, runs [200, 500) -> ends at 500 ns.
  EXPECT_EQ(high_end, cyc(50));
  // low: ran [0,200), preempted [200,500), resumes [500,1300).
  EXPECT_EQ(low_end, cyc(130));
  EXPECT_EQ(cpu.busy_time(), cyc(130));
}

TEST(Preemptive, NonPreemptiveComparisonBlocksHighPriority) {
  // Same scenario without preemption: high must wait for low's segment.
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource(
      "cpu", kMhz, add_only_table(),
      {.policy = SchedulingPolicy::kPriority, .preemptive = false});
  est.map("low", cpu, 1.0);
  est.map("high", cpu, 9.0);
  minisc::Time high_end;
  sim.spawn("low", [&] { burn_adds(100); });
  sim.spawn("high", [&] {
    minisc::wait(minisc::Time::ns(200));
    burn_adds(30);
    minisc::wait(minisc::Time::zero());
    high_end = minisc::now();
  });
  sim.run();
  EXPECT_EQ(high_end, cyc(130));  // 1000 (low) + 300 (high)
}

TEST(Preemptive, NestedPreemption) {
  // Three priorities: mid preempts low, high preempts mid.
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  preemptive_opts());
  est.map("low", cpu, 1.0);
  est.map("mid", cpu, 2.0);
  est.map("high", cpu, 3.0);
  minisc::Time low_end, mid_end, high_end;
  sim.spawn("low", [&] {
    burn_adds(100);  // wants [0, 1000)
    minisc::wait(minisc::Time::zero());
    low_end = minisc::now();
  });
  sim.spawn("mid", [&] {
    minisc::wait(minisc::Time::ns(100));
    burn_adds(50);  // wants 500ns from t=100
    minisc::wait(minisc::Time::zero());
    mid_end = minisc::now();
  });
  sim.spawn("high", [&] {
    minisc::wait(minisc::Time::ns(300));
    burn_adds(20);  // wants 200ns from t=300
    minisc::wait(minisc::Time::zero());
    high_end = minisc::now();
  });
  sim.run();
  // Timeline: low [0,100), mid [100,300), high [300,500), mid [500,800),
  // low [800,1700).
  EXPECT_EQ(high_end, cyc(50));
  EXPECT_EQ(mid_end, cyc(80));
  EXPECT_EQ(low_end, cyc(170));
  EXPECT_EQ(cpu.busy_time(), cyc(170));
}

TEST(Preemptive, RtosChargedPerDispatchAndResumption) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  preemptive_opts(/*rtos=*/10.0));
  est.map("low", cpu, 1.0);
  est.map("high", cpu, 9.0);
  sim.spawn("low", [&] { burn_adds(100); });
  sim.spawn("high", [&] {
    minisc::wait(minisc::Time::ns(200));
    burn_adds(30);
  });
  sim.run();
  // Invariant: every dispatch (initial or resumption) costs one RTOS switch,
  // so accumulated RTOS time is exactly switches * per-switch cost. (The
  // release mechanics add empty segments, so the absolute count is not
  // asserted here — SwitchCountTracksDispatches covers the scenario shape.)
  EXPECT_EQ(cpu.rtos_time(),
            cyc(10.0 * static_cast<double>(cpu.preempt_switches())));
  // Busy time is the pure computation, independent of switching.
  EXPECT_EQ(cpu.busy_time(), cyc(130));
  EXPECT_GE(sim.now(), cpu.busy_time() + cpu.rtos_time() -
                           minisc::Time::ns(2000));  // high's wait overlaps
}

TEST(Preemptive, EqualPrioritiesDoNotThrash) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  preemptive_opts());
  est.map("a", cpu, 5.0);
  est.map("b", cpu, 5.0);
  minisc::Time a_end, b_end;
  sim.spawn("a", [&] {
    burn_adds(40);
    minisc::wait(minisc::Time::zero());
    a_end = minisc::now();
  });
  sim.spawn("b", [&] {
    burn_adds(40);
    minisc::wait(minisc::Time::zero());
    b_end = minisc::now();
  });
  sim.run();
  // No preemption among equals: strictly serial.
  EXPECT_EQ(a_end, cyc(40));
  EXPECT_EQ(b_end, cyc(80));
}

TEST(Preemptive, ChecksumInvariantUnderPreemption) {
  // Functional results must not depend on the scheduling model.
  const auto run = [](bool preemptive) {
    minisc::Simulator sim;
    Estimator est(sim);
    auto& cpu = est.add_sw_resource(
        "cpu", kMhz, add_only_table(),
        {.policy = SchedulingPolicy::kPriority, .preemptive = preemptive});
    est.map("prod", cpu, 1.0);
    est.map("cons", cpu, 2.0);
    minisc::Fifo<int> ch("ch", 4);
    long sum = 0;
    sim.spawn("prod", [&] {
      for (int i = 0; i < 20; ++i) {
        burn_adds(25);
        ch.write(i * 7);
      }
    });
    sim.spawn("cons", [&] {
      for (int i = 0; i < 20; ++i) {
        sum += ch.read();
        burn_adds(10);
      }
    });
    EXPECT_EQ(sim.run(), minisc::StopReason::kFinished);
    return sum;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(Preemptive, SwitchCountTracksDispatches) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(),
                                  preemptive_opts());
  est.map("low", cpu, 1.0);
  est.map("high", cpu, 9.0);
  sim.spawn("low", [&] { burn_adds(100); });
  sim.spawn("high", [&] {
    minisc::wait(minisc::Time::ns(200));
    burn_adds(30);
  });
  sim.run();
  // At least: low dispatched, high dispatched (preempting), low
  // redispatched. The empty release segments of `high` add further
  // dispatches, so this is a lower bound.
  EXPECT_GE(cpu.preempt_switches(), 3u);
  EXPECT_LE(cpu.preempt_switches(), 7u);
}

}  // namespace
}  // namespace scperf
