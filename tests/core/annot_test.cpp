#include "core/annot.hpp"

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/cost_table.hpp"

namespace scperf {
namespace {

/// Installs a local accumulator as the active one for the test's duration.
class AnnotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = CostTable::uniform(0.0);
    accum_.table = &table_;
    tl_accum = &accum_;
  }
  void TearDown() override { tl_accum = nullptr; }

  CostTable table_;
  SegmentAccum accum_;
};

TEST_F(AnnotTest, ValueSemanticsMatchUnderlyingType) {
  gint a = 7;
  gint b = 5;
  EXPECT_EQ((a + b).value(), 12);
  EXPECT_EQ((a - b).value(), 2);
  EXPECT_EQ((a * b).value(), 35);
  EXPECT_EQ((a / b).value(), 1);
  EXPECT_EQ((a % b).value(), 2);
  EXPECT_EQ((-a).value(), -7);
  EXPECT_EQ((a & b).value(), 7 & 5);
  EXPECT_EQ((a | b).value(), 7 | 5);
  EXPECT_EQ((a ^ b).value(), 7 ^ 5);
  EXPECT_EQ((a << 1).value(), 14);
  EXPECT_EQ((a >> 1).value(), 3);
  EXPECT_TRUE((a > b).value());
  EXPECT_FALSE((a == b).value());
  EXPECT_TRUE((a != b).value());
  EXPECT_TRUE((a >= b).value());
  EXPECT_FALSE((a <= b).value());
  EXPECT_FALSE((a < b).value());
}

TEST_F(AnnotTest, MixedRawOperands) {
  gint a = 10;
  EXPECT_EQ((a + 3).value(), 13);
  EXPECT_EQ((3 + a).value(), 13);
  EXPECT_EQ((a - 4).value(), 6);
  EXPECT_EQ((20 - a).value(), 10);
  EXPECT_TRUE((a < 11).value());
  EXPECT_TRUE((9 < a).value());
}

TEST_F(AnnotTest, CompoundAssignments) {
  gint a = 10;
  a += 5;
  EXPECT_EQ(a.value(), 15);
  a -= 3;
  EXPECT_EQ(a.value(), 12);
  a *= 2;
  EXPECT_EQ(a.value(), 24);
  a /= 4;
  EXPECT_EQ(a.value(), 6);
  a %= 4;
  EXPECT_EQ(a.value(), 2);
  a <<= 3;
  EXPECT_EQ(a.value(), 16);
  a >>= 1;
  EXPECT_EQ(a.value(), 8);
}

TEST_F(AnnotTest, IncrementDecrement) {
  gint a = 5;
  EXPECT_EQ((++a).value(), 6);
  EXPECT_EQ((a++).value(), 6);
  EXPECT_EQ(a.value(), 7);
  EXPECT_EQ((--a).value(), 6);
  EXPECT_EQ((a--).value(), 6);
  EXPECT_EQ(a.value(), 5);
}

TEST_F(AnnotTest, ChargesPerOpCost) {
  table_.set(Op::kAdd, 2.0).set(Op::kMul, 5.0).set(Op::kAssignRes, 1.0);
  gint a = 1;                 // literal init: kAssignRes, 1
  gint b = 2;                 // literal init: kAssignRes, 1
  gint c = a * b + a;         // mul 5, add 2
  (void)c;                    // c init from temp: elided (prvalue)
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 1 + 1 + 5 + 2);
  EXPECT_EQ(accum_.op_count, 4u);
}

TEST_F(AnnotTest, LvalueAndRvalueAssignsChargeDifferentClasses) {
  table_.set(Op::kAssign, 3.0).set(Op::kAssignRes, 1.0).set(Op::kAdd, 0.0);
  gint a = 1;       // literal: kAssignRes (1)
  gint b = a;       // copy of a variable: kAssign (3)
  b = a;            // lvalue assignment: kAssign (3)
  b = a + 1;        // result assignment: kAssignRes (1)
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 1 + 3 + 3 + 1);
}

TEST_F(AnnotTest, OpHistogramCountsEachKind) {
  gint a = 1;
  gint b = 2;
  gint c = a + b;
  gbool lt = a < b;
  (void)c;
  (void)lt;
  EXPECT_EQ(accum_.op_histogram[static_cast<size_t>(Op::kAssignRes)], 2u);
  EXPECT_EQ(accum_.op_histogram[static_cast<size_t>(Op::kAdd)], 1u);
  EXPECT_EQ(accum_.op_histogram[static_cast<size_t>(Op::kLt)], 1u);
}

TEST_F(AnnotTest, BranchChargedOnContextualConversion) {
  table_.set(Op::kBranch, 2.5).set(Op::kLt, 3.0);
  gint i = -1;
  if (i < 0) {
    // empty
  }
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 3.0 + 2.5);
}

TEST_F(AnnotTest, WhileLoopChargesPerIteration) {
  table_.set(Op::kLt, 1.0).set(Op::kBranch, 1.0).set(Op::kAdd, 1.0).set(
      Op::kAssignRes, 1.0);
  gint i = 0;  // assign 1
  while (i < 3) {
    i = i + 1;  // add + assign = 2 per iteration
  }
  // condition evaluated 4 times (3 true + 1 false): (1+1)*4 = 8; body 3*2 = 6
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 1 + 8 + 6);
}

TEST_F(AnnotTest, ArrayIndexCharged) {
  table_.set(Op::kIndex, 4.0).set(Op::kAssign, 1.0).set(Op::kAssignRes, 1.0);
  garray<int> arr(8);
  arr[2] = 7;  // index 4 + literal store 1
  gint v = arr[2];  // index 4 + element copy (lvalue) 1
  EXPECT_EQ(v.value(), 7);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 4 + 1 + 4 + 1);
}

TEST_F(AnnotTest, ArrayAnnotatedIndex) {
  garray<int> arr(8);
  arr.at_raw(5).set_raw(42);
  gint idx = 5;
  EXPECT_EQ(arr[idx].value(), 42);
}

TEST_F(AnnotTest, RawAccessChargesNothing) {
  table_ = CostTable::uniform(1.0);
  garray<int> arr(4);
  arr.at_raw(0).set_raw(3);
  EXPECT_EQ(arr.at_raw(0).value(), 3);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 0.0);
  EXPECT_EQ(accum_.op_count, 0u);
}

TEST_F(AnnotTest, NoAccumMeansNoCharge) {
  tl_accum = nullptr;
  gint a = 1;
  gint b = a + a;
  EXPECT_EQ(b.value(), 2);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 0.0);
}

TEST_F(AnnotTest, FuncGuardChargesCallAndReturn) {
  table_.set(Op::kCall, 10.0).set(Op::kReturn, 4.0);
  {
    FuncGuard fg;
  }
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 14.0);
}

TEST_F(AnnotTest, DoubleTypeWorks) {
  table_.set(Op::kMul, 4.0).set(Op::kAssignRes, 1.0);
  gdouble x = 1.5;
  gdouble y = x * 2.0;
  EXPECT_DOUBLE_EQ(y.value(), 3.0);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 1 + 4);
}

// ---- the paper's Figure 3 example, reproduced exactly ----------------------
//
//   Library parameters:   t= 2   t+ 1   t< 3   t[] 5   t_if 2.4   t_fc 18
//   Segment code:         if(i<0) i=c+d;  datai=array[i];  datao=func(datai);
//   Paper's delay calculation: 5.4, 8.4, 15.4, 35.4, final 75.8
//   (func's internal contribution is 40.4 cycles)

gint fig3_func(const gint& x) {
  FuncGuard fg;      // t_fc = 18 (charged as kCall; kReturn = 0 here)
  gint acc = 0;      // 2
  for (int i = 0; i < 11; ++i) {
    acc = acc + 1;   // 11 * (1 + 2) = 33
  }
  if (acc < 0) {     // 3 + 2.4 = 5.4   -> body total 2+33+5.4 = 40.4
    acc = 0;
  }
  (void)x;
  return acc;        // NRVO: no charge
}

TEST_F(AnnotTest, PaperFigure3DelayCalculation) {
  // The paper's single t= applies to every assignment class.
  table_.set(Op::kAssign, 2.0)
      .set(Op::kAssignRes, 2.0)
      .set(Op::kAdd, 1.0)
      .set(Op::kLt, 3.0)
      .set(Op::kIndex, 5.0)
      .set(Op::kBranch, 2.4)
      .set(Op::kCall, 18.0)
      .set(Op::kReturn, 0.0);

  // Pre-existing data (not part of the measured segment): raw-constructed.
  gint i(detail::RawTag{}, -1);
  gint c(detail::RawTag{}, 1);
  gint d(detail::RawTag{}, 2);
  garray<int> array(8);
  array.at_raw(3).set_raw(99);
  gint datai(detail::RawTag{}, 0);
  gint datao(detail::RawTag{}, 0);

  ASSERT_DOUBLE_EQ(accum_.sum_cycles, 0.0);

  if (i < 0) {         // t_if + t<          -> time = 5.4
    i = c + d;         // t= + t+            -> time = 8.4
  }
  datai = array[i];    // t= + t[]           -> time = 15.4
  datao = fig3_func(datai);  // t= + t_fc + 40.4    -> time = 75.8

  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 75.8);
  EXPECT_EQ(datai.value(), 99);
  EXPECT_EQ(datao.value(), 11);

  // And the paper's intermediate checkpoints, re-derived:
  //   5.4 (if) + 3 (i=c+d) + 7 (datai=array[i]) + 2+18+40.4 (datao=func(..))
  EXPECT_DOUBLE_EQ(5.4 + 3.0 + 7.0 + 60.4, 75.8);
}

// ---- ready-time (HW critical path) tracking --------------------------------

class ReadyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = CostTable::uniform(0.0);
    table_.set(Op::kAdd, 1.0).set(Op::kMul, 2.0);
    accum_.table = &table_;
    accum_.track_ready = true;
    tl_accum = &accum_;
  }
  void TearDown() override { tl_accum = nullptr; }

  CostTable table_;
  SegmentAccum accum_;
};

TEST_F(ReadyTest, BalancedTreeCriticalPathShorterThanSum) {
  gint a(detail::RawTag{}, 1), b(detail::RawTag{}, 2);
  gint c(detail::RawTag{}, 3), d(detail::RawTag{}, 4);
  gint r = (a + b) + (c + d);  // 3 adds; depth 2
  EXPECT_EQ(r.value(), 10);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 3.0);
  EXPECT_DOUBLE_EQ(accum_.max_ready, 2.0);
}

TEST_F(ReadyTest, LinearChainCriticalPathEqualsSum) {
  gint a(detail::RawTag{}, 1);
  gint r = a + 1;
  r = r + 1;
  r = r + 1;
  // Note: the two `r = r + 1` assignments charge kAssign (cost 0 here) and
  // propagate readiness through the chain.
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 3.0);
  EXPECT_DOUBLE_EQ(accum_.max_ready, 3.0);
}

TEST_F(ReadyTest, MulLatencyDominatesPath) {
  gint a(detail::RawTag{}, 2), b(detail::RawTag{}, 3);
  gint m = a * b;      // ready 2
  gint s = a + b;      // ready 1
  gint r = m + s;      // ready max(2,1)+1 = 3
  EXPECT_EQ(r.value(), 11);
  EXPECT_DOUBLE_EQ(accum_.max_ready, 3.0);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 4.0);
}

TEST_F(ReadyTest, EpochResetTreatsOldValuesAsInputs) {
  gint a(detail::RawTag{}, 1);
  gint x = a + 1;  // ready 1 in epoch E
  accum_.reset();  // new segment: epoch E+1
  gint y = x + 1;  // x is now an external input: ready(x) = 0
  (void)y;
  EXPECT_DOUBLE_EQ(accum_.max_ready, 1.0);
  EXPECT_DOUBLE_EQ(accum_.sum_cycles, 1.0);
}

TEST_F(ReadyTest, CriticalPathNeverExceedsSum) {
  // Property: for any computation, BC <= WC.
  gint a(detail::RawTag{}, 3);
  gint acc(detail::RawTag{}, 0);
  for (int i = 0; i < 20; ++i) {
    if (i % 2 == 0) {
      acc = acc + a;
    } else {
      acc = acc * a;
    }
  }
  EXPECT_LE(accum_.max_ready, accum_.sum_cycles);
  EXPECT_GT(accum_.max_ready, 0.0);
}

// ---- DFG recording ----------------------------------------------------------

class DfgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = CostTable::uniform(1.0);
    accum_.table = &table_;
    accum_.track_ready = true;
    accum_.record_dfg = true;
    tl_accum = &accum_;
  }
  void TearDown() override { tl_accum = nullptr; }

  CostTable table_;
  SegmentAccum accum_;
};

TEST_F(DfgTest, RecordsOperationsWithDependencies) {
  gint a(detail::RawTag{}, 1), b(detail::RawTag{}, 2);
  gint s = a + b;   // node 1: add(input, input)
  gint p = s * s;   // node 2 references node 1 via s's stamp... through assign
  (void)p;
  ASSERT_GE(accum_.dfg.size(), 2u);
  EXPECT_EQ(accum_.dfg.nodes[0].op, Op::kAdd);
  EXPECT_EQ(accum_.dfg.nodes[0].a, 0u);
  EXPECT_EQ(accum_.dfg.nodes[0].b, 0u);
}

TEST_F(DfgTest, ChainedDependencyPointsAtProducer) {
  gint a(detail::RawTag{}, 1), b(detail::RawTag{}, 2);
  gint s = a + b;       // add -> node 1, then assign -> node 2 (copy)
  gint t = s + 1;       // add(node2, input)
  (void)t;
  // Find the second add and check it depends on an earlier node, not input.
  int adds = 0;
  for (std::size_t i = 0; i < accum_.dfg.size(); ++i) {
    if (accum_.dfg.nodes[i].op == Op::kAdd) {
      ++adds;
      if (adds == 2) {
        EXPECT_NE(accum_.dfg.nodes[i].a, 0u);
      }
    }
  }
  EXPECT_EQ(adds, 2);
}

TEST_F(DfgTest, ResetClearsGraph) {
  gint a(detail::RawTag{}, 1);
  gint b = a + 1;
  (void)b;
  EXPECT_FALSE(accum_.dfg.empty());
  accum_.reset();
  EXPECT_TRUE(accum_.dfg.empty());
}

}  // namespace
}  // namespace scperf
