#include "core/segment_cache.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <sstream>
#include <string>

#include "core/estimator.hpp"
#include "core/scperf.hpp"
#include "core/segment_parser.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "trace/campaign.hpp"

namespace scperf {
namespace {

constexpr double kMhz = 100.0;

CostTable mixed_table() {
  CostTable t;
  t.set(Op::kAdd, 1.0);
  t.set(Op::kMul, 3.0);
  t.set(Op::kShl, 0.5);
  return t;
}

void burn_adds(int n) {
  gint a(detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    gint r = a + 1;
    (void)r;
  }
}

void burn_muls(int n) {
  gint a(detail::RawTag{}, 3);
  for (int i = 0; i < n; ++i) {
    gint r = a * 2;
    (void)r;
  }
}

/// Exact-comparison snapshot of a segment's accumulated cost: replay must be
/// byte-identical to conventional charging, so doubles are compared by bit
/// pattern, not by tolerance.
struct Totals {
  std::uint64_t sum_bits = 0;
  std::uint64_t op_count = 0;
  std::array<std::uint64_t, kNumOps> hist{};

  static Totals of(const SegmentAccum& a) {
    Totals t;
    std::memcpy(&t.sum_bits, &a.sum_cycles, sizeof t.sum_bits);
    t.op_count = a.op_count;
    t.hist = a.op_histogram;
    return t;
  }
  bool operator==(const Totals& o) const {
    return sum_bits == o.sum_bits && op_count == o.op_count && hist == o.hist;
  }
};

/// Drives arm/charge/resolve directly, the way Estimator::close_segment
/// does, without a simulation — the unit-level harness for the cache's
/// state machine.
struct DirectFixture {
  CostTable table = mixed_table();
  SwResource cpu{"cpu", kMhz, mixed_table()};
  SegmentAccum accum;

  DirectFixture() {
    accum.table = &table;
    tl_accum = &accum;
  }
  ~DirectFixture() { tl_accum = nullptr; }

  /// Runs `kernel` as one "from->to" segment under `cache` and returns the
  /// closed totals. The op_histogram survives reset() by design (it feeds
  /// energy, not per-segment time), so snapshots subtract the entry state.
  template <typename Fn>
  Totals run_segment(SegmentCache& cache, const std::string& from,
                     const std::string& to, Fn&& kernel) {
    const auto hist_before = accum.op_histogram;
    const std::uint64_t ops_before = accum.op_count;
    cache.arm(accum, from, cpu);
    kernel();
    cache.resolve(accum, from, to);
    Totals t = Totals::of(accum);
    t.op_count -= ops_before;
    for (std::size_t i = 0; i < t.hist.size(); ++i) t.hist[i] -= hist_before[i];
    accum.reset();
    return t;
  }

  /// The conventional-charging reference for the same kernel.
  template <typename Fn>
  Totals run_conventional(Fn&& kernel) {
    const auto hist_before = accum.op_histogram;
    const std::uint64_t ops_before = accum.op_count;
    kernel();
    Totals t = Totals::of(accum);
    t.op_count -= ops_before;
    for (std::size_t i = 0; i < t.hist.size(); ++i) t.hist[i] -= hist_before[i];
    accum.reset();
    return t;
  }
};

// ---- state machine: cold -> miss -> hit, byte-identical throughout ---------

TEST(SegmentCache, ReplayIsByteIdenticalToConventionalCharging) {
  DirectFixture fx;
  auto kernel = [] {
    burn_adds(17);
    burn_muls(5);
  };
  const Totals expect = fx.run_conventional(kernel);

  SegmentCache cache{SegmentCacheConfig{}};
  const Totals cold = fx.run_segment(cache, "entry", "wait", kernel);
  const Totals miss = fx.run_segment(cache, "entry", "wait", kernel);
  const Totals hit = fx.run_segment(cache, "entry", "wait", kernel);
  EXPECT_TRUE(cold == expect);
  EXPECT_TRUE(miss == expect);
  EXPECT_TRUE(hit == expect);

  const SegmentCacheStats s = cache.stats();
  EXPECT_EQ(s.bypassed, 1u);  // first execution: node unseen, charged cold
  EXPECT_EQ(s.misses, 1u);    // second: traced, new signature, recorded
  EXPECT_EQ(s.hits, 1u);      // third: O(1) delta replay
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.replayed_ops, expect.op_count);
  EXPECT_GT(s.cycles_saved, 0.0);
}

TEST(SegmentCache, DisabledConfigNeverEngages) {
  DirectFixture fx;
  SegmentCacheConfig cfg;
  cfg.enabled = false;
  SegmentCache cache{cfg};
  for (int i = 0; i < 3; ++i) {
    fx.run_segment(cache, "entry", "wait", [] { burn_adds(8); });
  }
  EXPECT_FALSE(cache.stats().engaged());
}

// ---- control-path signatures -----------------------------------------------

TEST(SegmentCache, DivergentPathsGetDistinctEntriesAndBothReplay) {
  DirectFixture fx;
  auto path_a = [] { burn_adds(20); };
  auto path_b = [] {
    burn_adds(10);
    burn_muls(5);
  };
  const Totals expect_a = fx.run_conventional(path_a);
  const Totals expect_b = fx.run_conventional(path_b);

  // Same segment id, data-dependent branch: the op-stream signature must
  // separate the two paths so each replays its own delta.
  SegmentCache cache{SegmentCacheConfig{}};
  fx.run_segment(cache, "entry", "wait", path_a);                    // cold
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", path_a) == expect_a);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", path_b) == expect_b);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", path_a) == expect_a);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", path_b) == expect_b);

  const SegmentCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.misses, 2u);  // one per distinct path
  EXPECT_EQ(s.hits, 2u);    // one replay per path
}

TEST(SegmentCache, SignatureSeparatesContentOrderAndLength) {
  const unsigned char abc[] = {1, 2, 3};
  const unsigned char cba[] = {3, 2, 1};
  const unsigned char ab[] = {1, 2};
  const std::uint64_t s_abc = SegmentCache::signature(abc, sizeof abc);
  EXPECT_NE(s_abc, SegmentCache::signature(cba, sizeof cba));
  EXPECT_NE(s_abc, SegmentCache::signature(ab, sizeof ab));
  EXPECT_NE(s_abc, SegmentCache::signature(nullptr, 0));
  // Deterministic: same bytes, same signature.
  EXPECT_EQ(s_abc, SegmentCache::signature(abc, sizeof abc));
}

// ---- reset() interaction (crash-restart epoch) ------------------------------

TEST(SegmentCache, ResetClearsReplayStateAndBumpsEpoch) {
  DirectFixture fx;
  SegmentCache cache{SegmentCacheConfig{}};
  auto kernel = [] { burn_adds(12); };
  const Totals expect = fx.run_conventional(kernel);
  fx.run_segment(cache, "entry", "wait", kernel);  // seed: node seen

  // Arm puts the accumulator in replay mode; a crash-restart style reset()
  // mid-segment must drop the trace and leave a conventional accumulator.
  cache.arm(fx.accum, "entry", fx.cpu);
  EXPECT_TRUE(fx.accum.replaying);
  burn_adds(5);  // partial segment, traced
  const std::uint64_t epoch_before = fx.accum.epoch;
  fx.accum.reset();
  EXPECT_FALSE(fx.accum.replaying);
  EXPECT_FALSE(fx.accum.tracing);
  EXPECT_EQ(fx.accum.trace_pos, fx.accum.trace_begin);
  EXPECT_EQ(fx.accum.epoch, epoch_before + 1);

  // The restarted segment charges conventionally; its close must count as a
  // bypass (no trace to hash) and must not record a partial-path entry.
  const auto hist_before = fx.accum.op_histogram;
  kernel();
  cache.resolve(fx.accum, "entry", "wait");
  Totals t = Totals::of(fx.accum);
  for (std::size_t i = 0; i < t.hist.size(); ++i) t.hist[i] -= hist_before[i];
  EXPECT_TRUE(t == expect);
  fx.accum.reset();
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 0u);  // nothing recorded for the node yet
  EXPECT_EQ(cache.stats().bypassed, 2u);

  // Normal operation resumes: the next pair of executions miss then hit.
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  EXPECT_EQ(cache.stats().hits, 1u);
}

// ---- demotion: trace overflow and per-node saturation -----------------------

TEST(SegmentCache, TraceOverflowFoldsBackAndDemotesNode) {
  DirectFixture fx;
  SegmentCacheConfig cfg;
  cfg.trace_limit = 1000;  // ops; the 5000-op segment must overflow
  SegmentCache cache{cfg};
  auto kernel = [] { burn_adds(5000); };
  const Totals expect = fx.run_conventional(kernel);

  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  // Second execution replays until the trace outgrows the limit, then folds
  // the traced prefix back into conventional charging mid-segment — the
  // totals must still be byte-identical.
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  // The node is demoted: later executions never arm again.
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);

  const SegmentCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.misses, 0u);
  EXPECT_EQ(s.bypassed, 3u);
  EXPECT_EQ(s.entries, 0u);
}

TEST(SegmentCache, EntrySaturationDemotesNode) {
  DirectFixture fx;
  SegmentCacheConfig cfg;
  cfg.max_entries_per_node = 2;
  SegmentCache cache{cfg};
  auto a = [] { burn_adds(4); };
  auto b = [] { burn_adds(8); };
  auto c = [] { burn_adds(12); };

  fx.run_segment(cache, "entry", "wait", a);  // cold
  fx.run_segment(cache, "entry", "wait", a);  // miss, entry 1
  fx.run_segment(cache, "entry", "wait", a);  // hit
  fx.run_segment(cache, "entry", "wait", b);  // miss, entry 2 (cap reached)
  fx.run_segment(cache, "entry", "wait", c);  // miss, record refused: demoted
  fx.run_segment(cache, "entry", "wait", a);  // bypassed despite live entry

  const SegmentCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.bypassed, 2u);
  EXPECT_EQ(s.entries, 2u);
}

// ---- structural and fault bypass -------------------------------------------

TEST(SegmentCache, ReadyTrackingAndDfgRecordingBypass) {
  DirectFixture fx;
  SegmentCache cache{SegmentCacheConfig{}};
  fx.accum.track_ready = true;
  for (int i = 0; i < 3; ++i) {
    fx.run_segment(cache, "entry", "wait", [] { burn_adds(6); });
  }
  fx.accum.track_ready = false;
  fx.accum.record_dfg = true;
  for (int i = 0; i < 3; ++i) {
    fx.run_segment(cache, "entry", "wait", [] { burn_adds(6); });
  }
  EXPECT_FALSE(cache.stats().engaged());
  EXPECT_EQ(cache.stats().bypassed, 6u);
}

TEST(SegmentCache, MemoUnsafeResourceBypasses) {
  DirectFixture fx;
  SegmentCache cache{SegmentCacheConfig{}};
  fx.cpu.set_memo_unsafe();
  for (int i = 0; i < 3; ++i) {
    fx.run_segment(cache, "entry", "wait", [] { burn_adds(6); });
  }
  EXPECT_FALSE(cache.stats().engaged());
}

TEST(SegmentCache, AddDowntimeMarksResourceMemoUnsafe) {
  DirectFixture fx;
  EXPECT_FALSE(fx.cpu.memo_unsafe());
  fx.cpu.add_downtime(minisc::Time::us(1), minisc::Time::us(2));
  EXPECT_TRUE(fx.cpu.memo_unsafe());
}

// ---- validate mode ----------------------------------------------------------

TEST(SegmentCache, ValidateModeCrossChecksInsteadOfReplaying) {
  DirectFixture fx;
  SegmentCacheConfig cfg;
  cfg.validate = true;
  SegmentCache cache{cfg};
  auto kernel = [] {
    burn_adds(9);
    burn_muls(2);
  };
  const Totals expect = fx.run_conventional(kernel);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  EXPECT_TRUE(fx.run_segment(cache, "entry", "wait", kernel) == expect);
  const SegmentCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 0u);       // validate never skips charging
  EXPECT_EQ(s.misses, 1u);     // second run traces and records the delta
  EXPECT_EQ(s.validated, 1u);  // third run cross-checks against it
}

TEST(SegmentCache, ValidateModeDetectsCorruptedDelta) {
  DirectFixture fx;
  SegmentCacheConfig cfg;
  cfg.validate = true;
  SegmentCache cache{cfg};
  auto kernel = [] { burn_adds(14); };
  fx.run_segment(cache, "entry", "wait", kernel);  // cold, records
  fx.run_segment(cache, "entry", "wait", kernel);  // cross-check passes
  cache.debug_perturb_entries(1.0);
  cache.arm(fx.accum, "entry", fx.cpu);
  kernel();
  EXPECT_THROW(cache.resolve(fx.accum, "entry", "wait"), std::logic_error);
  fx.accum.reset();
}

// ---- estimator integration --------------------------------------------------

TEST(SegmentCacheEstimator, CachedRunMatchesUncachedAndReportsStats) {
  auto run = [](bool cached, std::string* report_txt) {
    minisc::Simulator sim;
    Estimator est(sim);
    SegmentCacheConfig cfg;
    cfg.enabled = cached;
    est.set_segment_cache_config(cfg);
    auto& cpu = est.add_sw_resource("cpu", kMhz, mixed_table());
    est.map("p", cpu);
    sim.spawn("p", [] {
      for (int i = 0; i < 6; ++i) {
        burn_adds(10);
        burn_muls(3);
        minisc::wait(minisc::Time::ns(10));
      }
    });
    sim.run();
    std::ostringstream os;
    est.report().print(os);
    *report_txt = os.str();
    struct Out {
      minisc::Time now;
      double cycles;
      SegmentCacheStats stats;
    } out{sim.now(), est.process_cycles("p"), est.segment_cache_stats()};
    return out;
  };

  std::string txt_on, txt_off;
  const auto on = run(true, &txt_on);
  const auto off = run(false, &txt_off);
  EXPECT_EQ(on.now, off.now);
  std::uint64_t bits_on = 0, bits_off = 0;
  std::memcpy(&bits_on, &on.cycles, sizeof bits_on);
  std::memcpy(&bits_off, &off.cycles, sizeof bits_off);
  EXPECT_EQ(bits_on, bits_off);
  // The default report must stay byte-identical whether or not the cache
  // engaged — observability is opt-in via print_cache / write_cache_csv.
  EXPECT_EQ(txt_on, txt_off);

  EXPECT_GT(on.stats.hits, 0u);  // wait->wait repeats with one signature
  EXPECT_FALSE(off.stats.engaged());
}

TEST(SegmentCacheEstimator, CacheReportSectionsAreOptIn) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, mixed_table());
  est.map("p", cpu);
  sim.spawn("p", [] {
    for (int i = 0; i < 4; ++i) {
      burn_adds(5);
      minisc::wait(minisc::Time::ns(10));
    }
  });
  sim.run();
  const Report rep = est.report();
  ASSERT_EQ(rep.cache.size(), 1u);
  EXPECT_EQ(rep.cache[0].resource, "cpu");
  EXPECT_GT(rep.cache[0].hits, 0u);

  std::ostringstream cache_txt;
  rep.print_cache(cache_txt);
  EXPECT_NE(cache_txt.str().find("cpu"), std::string::npos);

  std::ostringstream cache_csv;
  rep.write_cache_csv(cache_csv);
  EXPECT_NE(cache_csv.str().find(
                "resource,cache_hits,cache_misses,cache_bypassed"),
            std::string::npos);

  // And the default sections don't mention the cache at all.
  std::ostringstream plain;
  rep.print(plain);
  EXPECT_EQ(plain.str().find("cache"), std::string::npos);
}

TEST(SegmentCacheEstimator, PulseInjectionDisablesCacheOnTarget) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, mixed_table());
  est.map("p", cpu);
  scfault::ScenarioConfig sc;
  sc.horizon = minisc::Time::us(2);
  sc.pulses.push_back({"cpu", 3, 5.0, 10.0});
  scfault::FaultScenario scenario(sc, /*seed=*/42);
  scfault::FaultInjector inj(sim, est, scenario);
  sim.spawn("p", [] {
    for (int i = 0; i < 8; ++i) {
      burn_adds(20);
      minisc::wait(minisc::Time::ns(50));
    }
  });
  sim.run();
  EXPECT_TRUE(cpu.memo_unsafe());
  const SegmentCacheStats s = est.segment_cache_stats_for_resource("cpu");
  EXPECT_FALSE(s.engaged());  // pulse cycles land mid-segment: replay unsound
  EXPECT_GT(s.bypassed, 0u);
}

TEST(SegmentCacheEstimator, ValidateModeThrowsOnMidSimCorruption) {
  minisc::Simulator sim;
  Estimator est(sim);
  SegmentCacheConfig cfg;
  cfg.validate = true;
  est.set_segment_cache_config(cfg);
  auto& cpu = est.add_sw_resource("cpu", kMhz, mixed_table());
  est.map("p", cpu);
  sim.spawn("p", [&] {
    for (int i = 0; i < 5; ++i) {
      burn_adds(10);
      if (i == 3) {
        // The wait->wait delta was recorded at iteration 2's close; corrupt
        // it so this iteration's cross-check must trip. Not a SimError:
        // campaigns must not swallow a replay/charging divergence.
        est.segment_cache_of("p")->debug_perturb_entries(0.25);
      }
      minisc::wait(minisc::Time::ns(10));
    }
  });
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SegmentCacheEstimator, PerProcessCacheAccessor) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, mixed_table());
  est.map("p", cpu);
  sim.spawn("p", [] { burn_adds(5); });
  sim.run();
  EXPECT_NE(est.segment_cache_of("p"), nullptr);
  EXPECT_EQ(est.segment_cache_of("never-started"), nullptr);
}

// ---- campaign byte-identity -------------------------------------------------

sctrace::CampaignRunResult cache_campaign_run(std::uint64_t seed, bool cached) {
  minisc::Simulator sim;
  Estimator est(sim);
  SegmentCacheConfig cfg;
  cfg.enabled = cached;
  est.set_segment_cache_config(cfg);
  auto& cpu = est.add_sw_resource("cpu", kMhz, mixed_table());
  est.map("producer", cpu);
  est.map("consumer", cpu);
  minisc::Fifo<int> ch("ch", 4);
  constexpr int kItems = 10;
  sim.spawn("producer", [&] {
    for (int i = 0; i < kItems; ++i) {
      burn_adds(10 + 5 * static_cast<int>((seed + i) % 3));
      ch.write(i);
    }
  });
  sim.spawn("consumer", [&] {
    for (int i = 0; i < kItems; ++i) {
      (void)ch.read();
      burn_adds(8);
    }
  });
  sim.run();
  sctrace::CampaignRunResult r;
  r.seed = seed;
  r.makespan = sim.now();
  const SegmentCacheStats s = est.segment_cache_stats();
  r.cache_hits = s.hits;
  r.cache_misses = s.misses;
  r.cache_bypassed = s.bypassed;
  r.cache_cycles_saved = s.cycles_saved;
  return r;
}

TEST(SegmentCacheCampaign, PooledAndSequentialCsvBytesIdenticalWithCacheOn) {
  auto csv = [](bool cached, std::size_t threads, bool with_cache_cols) {
    sctrace::FaultCampaign c(
        [cached](std::uint64_t seed) { return cache_campaign_run(seed, cached); });
    sctrace::CampaignOptions opts;
    opts.threads = threads;
    c.run(/*base_seed=*/3, /*n=*/9, opts);
    std::ostringstream os;
    c.write_csv(os, with_cache_cols);
    return os.str();
  };

  const std::string seq_on = csv(true, 0, false);
  // Thread-pooled execution with the cache on: byte-identical CSV.
  EXPECT_EQ(seq_on, csv(true, 8, false));
  // Cache on vs off: the default columns must not move by a byte.
  EXPECT_EQ(seq_on, csv(false, 0, false));
  // The opt-in cache columns are themselves deterministic across pooling.
  EXPECT_EQ(csv(true, 0, true), csv(true, 8, true));
  // And a cached run actually engaged the cache (per-run columns non-zero).
  const std::string with_cols = csv(true, 0, true);
  EXPECT_NE(with_cols.find("cache_hits"), std::string::npos);
}

// ---- static parser maps to the cache's key space ----------------------------

TEST(SegmentParserRuntimeIds, RuntimeLabelsMatchEstimatorNodeNames) {
  const std::string body = R"(
    void run() {
      int acc = 0;
      do {
        int v = in.read();
        acc += v;
        wait(10, SC_NS);
        out.write(acc);
      } while (true);
    }
  )";
  const ProcessGraph g = parse_process_body(body);
  EXPECT_EQ(g.node("N0").runtime_label(), "entry");
  EXPECT_EQ(g.node("N1").runtime_label(), "in:r");
  EXPECT_EQ(g.node("N2").runtime_label(), "wait");
  EXPECT_EQ(g.node("N3").runtime_label(), "out:w");

  // Every static arc names the dynamic segment id the estimator (and the
  // replay cache) will key on when this process runs.
  bool found_read_to_wait = false;
  for (const auto& s : g.segments) {
    if (g.runtime_segment_id(s) == "in:r->wait") found_read_to_wait = true;
  }
  EXPECT_TRUE(found_read_to_wait);
}

}  // namespace
}  // namespace scperf
