#include "core/pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace scperf {
namespace {

TEST(ThreadPool, ParallelForFillsEverySlotByIndex) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 257;  // not a multiple of any chunk below
  std::vector<std::size_t> out(kN, 0);
  pool.parallel_for(kN, 3, [&](std::size_t i) { out[i] = i * i + 1; });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(out[i], i * i + 1) << "slot " << i;
  }
}

TEST(ThreadPool, ParallelForResultIndependentOfThreadAndChunkCount) {
  constexpr std::size_t kN = 100;
  std::vector<std::size_t> reference(kN);
  {
    ThreadPool pool(1);
    pool.parallel_for(kN, 1, [&](std::size_t i) { reference[i] = 31 * i + 7; });
  }
  for (const std::size_t threads : {2u, 8u}) {
    for (const std::size_t chunk : {1u, 4u, 1000u}) {
      ThreadPool pool(threads);
      std::vector<std::size_t> out(kN, 0);
      pool.parallel_for(kN, chunk,
                        [&](std::size_t i) { out[i] = 31 * i + 7; });
      EXPECT_EQ(out, reference) << threads << " threads, chunk " << chunk;
    }
  }
}

TEST(ThreadPool, SparseParallelForRunsExactlyTheGivenIndices) {
  // The resume path hands the pool the holes left by a journal: arbitrary,
  // non-contiguous indices. Each must run exactly once; nothing else may.
  ThreadPool pool(4);
  const std::vector<std::size_t> indices = {1, 3, 4, 9, 17, 40};
  std::vector<std::atomic<int>> hits(41);
  pool.parallel_for(indices, 2, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    const bool wanted =
        std::find(indices.begin(), indices.end(), i) != indices.end();
    EXPECT_EQ(hits[i].load(), wanted ? 1 : 0) << "index " << i;
  }
  // Empty index sets are a no-op, like the dense n == 0 case.
  bool ran = false;
  pool.parallel_for(std::vector<std::size_t>{}, 1,
                    [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, 1, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  pool.wait_idle();  // also a no-op on an idle pool
}

TEST(ThreadPool, SingleWorkerAndZeroRequestedWorkersStillRun) {
  // The constructor floors the worker count at 1; the calling thread also
  // drives parallel_for, so even pathological sizes make progress.
  for (const std::size_t threads : {0u, 1u}) {
    ThreadPool pool(threads);
    EXPECT_GE(pool.size(), 1u);
    std::vector<int> out(10, 0);
    pool.parallel_for(10, 4, [&](std::size_t i) { out[i] = 1; });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
  }
}

TEST(ThreadPool, ChunkLargerThanRangeWorks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.parallel_for(5, 64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(50, 1,
                        [&](std::size_t i) {
                          if (i == 7) throw std::runtime_error("slot 7 died");
                          ++completed;
                        }),
      std::runtime_error);
  // Unclaimed work after the throw is skipped, claimed work completed.
  EXPECT_LT(completed.load(), 50);
  // The pool stays usable after an exception.
  std::atomic<int> again{0};
  pool.parallel_for(10, 1, [&](std::size_t) { ++again; });
  EXPECT_EQ(again.load(), 10);
}

TEST(ThreadPool, SubmitExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("bad task"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The stored exception is consumed: the next wait is clean.
  pool.submit([] {});
  pool.wait_idle();
}

TEST(ThreadPool, DestructionDrainsQueuedTasksWithoutDeadlock) {
  auto counter = std::make_shared<std::atomic<int>>(0);
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++*counter;
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(counter->load(), 64);
}

TEST(ThreadPool, SubmitAfterTeardownThrows) {
  // stop_ is only observable mid-destruction from another thread; emulate
  // the window by submitting from a task racing the destructor instead.
  auto threw = std::make_shared<std::atomic<bool>>(false);
  auto pool = std::make_unique<ThreadPool>(1);
  ThreadPool* raw = pool.get();
  pool->submit([raw, threw] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    try {
      raw->submit([] {});
    } catch (const std::runtime_error&) {
      *threw = true;
    }
  });
  pool.reset();  // begins teardown while the task sleeps
  EXPECT_TRUE(threw->load());
}

TEST(ThreadPool, ManyConcurrentParallelForCallers) {
  ThreadPool pool(4);
  std::vector<std::vector<int>> outs(3, std::vector<int>(40, 0));
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&pool, &outs, c] {
      pool.parallel_for(40, 2, [&outs, c](std::size_t i) {
        outs[static_cast<std::size_t>(c)][i] = c + 1;
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (int c = 0; c < 3; ++c) {
    EXPECT_EQ(std::accumulate(outs[static_cast<std::size_t>(c)].begin(),
                              outs[static_cast<std::size_t>(c)].end(), 0),
              40 * (c + 1));
  }
}

TEST(ThreadPool, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace scperf
