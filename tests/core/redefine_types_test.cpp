// Demonstrates and tests the paper's zero-modification mechanism (§3): "the
// library automatically replaces ordinary variable types by a new class. So,
// for example, the int type used in C language is replaced by a generic_int
// type with a #define statement."
//
// The legacy code below is written entirely with built-in types; including
// redefine_types.hpp in front of it (and restore_types.hpp after) is the
// only change, and it becomes fully annotated.

#include <gtest/gtest.h>

#include "core/annot.hpp"
#include "core/context.hpp"
#include "core/cost_table.hpp"

namespace {

// ---------------------------------------------------------------------------
#include "core/redefine_types.hpp"

// -- begin unmodified legacy code --------------------------------------------

int legacy_dot_product(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i * 3;
    i = i + 1;
  }
  return acc;
}

int legacy_abs(int v) {
  bool negative = v < 0;
  if (negative) {
    return 0 - v;
  }
  return v;
}

double legacy_scale(double x) {
  double y = x * 2.5;
  return y + 0.5;
}

// -- end unmodified legacy code ----------------------------------------------

#include "core/restore_types.hpp"
// ---------------------------------------------------------------------------

class RedefineTypes : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = scperf::CostTable::uniform(1.0);
    accum_.table = &table_;
    scperf::tl_accum = &accum_;
  }
  void TearDown() override { scperf::tl_accum = nullptr; }

  scperf::CostTable table_;
  scperf::SegmentAccum accum_;
};

TEST_F(RedefineTypes, LegacyIntCodeComputesCorrectly) {
  const auto r = legacy_dot_product(10);
  EXPECT_EQ(r.value(), 135);  // 3 * (0+1+...+9)
}

TEST_F(RedefineTypes, LegacyCodeIsCharged) {
  (void)legacy_dot_product(10);
  EXPECT_GT(accum_.op_count, 0u);
  EXPECT_GT(accum_.sum_cycles, 0.0);
  // 10 iterations of (cmp + branch + mul + add + assign + add + assign)
  // plus two initialisations and the final failed comparison.
  EXPECT_GE(accum_.op_count, 60u);
}

TEST_F(RedefineTypes, LegacyBoolWorks) {
  EXPECT_EQ(legacy_abs(-7).value(), 7);
  EXPECT_EQ(legacy_abs(7).value(), 7);
}

TEST_F(RedefineTypes, LegacyDoubleWorks) {
  EXPECT_DOUBLE_EQ(legacy_scale(2.0).value(), 5.5);
}

TEST_F(RedefineTypes, RestoreHeaderRestoresBuiltins) {
  // After restore_types.hpp, `int` is the builtin again: this would not
  // compile as an Annot (no implicit conversion to builtin int).
  int plain = 3;
  plain += 4;
  EXPECT_EQ(plain, 7);
  static_assert(std::is_same_v<decltype(plain), signed int>);
}

}  // namespace
