// Statistical properties of the deterministic RNG layer the fault and
// campaign subsystems are built on: scfault::Rng (splitmix64), its
// Lemire-rejection bounded() draw, the mix_seed sub-stream derivation, and
// the per-channel stream isolation of FaultScenario.
//
// These are fixed-seed tests of fixed algorithms, so every statistic below
// is deterministic — the thresholds are classical critical values with
// headroom, not flaky tolerances. The load-bearing claims:
//   - uniform() passes a Kolmogorov–Smirnov uniformity test;
//   - bounded(k) is chi-square-uniform over its k buckets, including
//     non-power-of-two k (the modulo-bias trap the rejection loop exists
//     to avoid);
//   - mix_seed sub-streams, adjacent-seed streams and per-channel scenario
//     streams are pairwise decorrelated — the property that lets a campaign
//     add a channel or a fault spec without perturbing the draws every
//     other spec sees;
//   - pulse occurrence draws (PulseSpec::occur_p) consume a stream that is
//     independent of the channel streams: adding channel faults to a
//     scenario leaves the pulse timeline bit-identical.

#include "fault/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "kernel/retry.hpp"
#include "kernel/time.hpp"

namespace scfault {
namespace {

using minisc::Time;

/// Chi-square statistic of `draws` draws of rng.bounded(k) against the
/// uniform expectation.
template <typename Draw>
double chi_square(Draw draw, std::size_t k, std::size_t draws) {
  std::vector<std::size_t> counts(k, 0);
  for (std::size_t i = 0; i < draws; ++i) ++counts[draw()];
  const double expected = static_cast<double>(draws) / static_cast<double>(k);
  double stat = 0.0;
  for (const std::size_t c : counts) {
    const double d = static_cast<double>(c) - expected;
    stat += d * d / expected;
  }
  return stat;
}

/// Kolmogorov–Smirnov distance of `draws` uniform() samples against U[0,1).
double ks_distance(Rng rng, std::size_t draws) {
  std::vector<double> xs(draws);
  for (double& x : xs) x = rng.uniform();
  std::sort(xs.begin(), xs.end());
  double d = 0.0;
  for (std::size_t i = 0; i < draws; ++i) {
    const double lo = static_cast<double>(i) / static_cast<double>(draws);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(draws);
    d = std::max(d, std::max(xs[i] - lo, hi - xs[i]));
  }
  return d;
}

/// Pearson correlation of two equal-length uniform draw sequences.
double correlation(Rng a, Rng b, std::size_t draws) {
  double sa = 0, sb = 0, saa = 0, sbb = 0, sab = 0;
  for (std::size_t i = 0; i < draws; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sa += x;
    sb += y;
    saa += x * x;
    sbb += y * y;
    sab += x * y;
  }
  const double n = static_cast<double>(draws);
  const double cov = sab / n - (sa / n) * (sb / n);
  const double va = saa / n - (sa / n) * (sa / n);
  const double vb = sbb / n - (sb / n) * (sb / n);
  return cov / std::sqrt(va * vb);
}

TEST(RngProperty, UniformPassesKolmogorovSmirnov) {
  // KS critical value at alpha = 0.001 is ~1.95 / sqrt(n); these seeds are
  // fixed, so a pass is a property of the algorithm, not luck.
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const std::size_t n = 20000;
    const double d = ks_distance(Rng(seed), n);
    EXPECT_LT(d * std::sqrt(static_cast<double>(n)), 1.95) << "seed " << seed;
  }
}

TEST(RngProperty, BoundedIsChiSquareUniform) {
  // df = k-1 = 15; the 99.9th percentile of chi-square(15) is 37.7.
  Rng rng(7);
  const double stat =
      chi_square([&] { return rng.bounded(16); }, 16, 160000);
  EXPECT_LT(stat, 37.7);
}

TEST(RngProperty, BoundedHasNoModuloBiasOnAwkwardRanges) {
  // Non-power-of-two ranges are where naive `next() % k` shows bias; the
  // rejection loop must keep them flat. df = k-1 thresholds at ~p=0.999.
  Rng rng(1234);
  EXPECT_LT(chi_square([&] { return rng.bounded(3); }, 3, 90000),
            13.8);  // chi2(2) @ .999
  EXPECT_LT(chi_square([&] { return rng.bounded(7); }, 7, 140000),
            22.5);  // chi2(6) @ .999
  EXPECT_LT(chi_square([&] { return rng.bounded(1000); }, 1000, 1000000),
            1168.0);  // chi2(999) @ .999
}

TEST(RngProperty, Splitmix64U01PassesKolmogorovSmirnov) {
  // The retry/backoff layer uses the free-function stream directly.
  std::uint64_t state = 99;
  const std::size_t n = 20000;
  std::vector<double> xs(n);
  for (double& x : xs) x = minisc::detail::splitmix_uniform(state);
  std::sort(xs.begin(), xs.end());
  double d = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double lo = static_cast<double>(i) / static_cast<double>(n);
    const double hi = static_cast<double>(i + 1) / static_cast<double>(n);
    d = std::max(d, std::max(xs[i] - lo, hi - xs[i]));
  }
  EXPECT_LT(d * std::sqrt(static_cast<double>(n)), 1.95);
}

TEST(RngProperty, MixSeedSubStreamsAreDecorrelated) {
  const std::uint64_t seed = 42;
  // Sub-streams of one seed, and the same stream id under adjacent seeds:
  // both pairs must look independent, or adding a fault spec would bend
  // every other spec's timeline.
  EXPECT_LT(std::abs(correlation(Rng(mix_seed(seed, 1)),
                                 Rng(mix_seed(seed, 2)), 20000)),
            0.05);
  EXPECT_LT(std::abs(correlation(Rng(mix_seed(seed, 1)),
                                 Rng(mix_seed(seed + 1, 1)), 20000)),
            0.05);
  // Raw adjacent seeds (the campaign's seed, seed+1, ... stream).
  EXPECT_LT(std::abs(correlation(Rng(seed), Rng(seed + 1), 20000)), 0.05);
}

TEST(RngProperty, ChannelStreamsAreMutuallyDecorrelated) {
  ScenarioConfig cfg;
  cfg.horizon = Time::ms(1);
  const FaultScenario scenario(cfg, 42);
  EXPECT_LT(std::abs(correlation(scenario.channel_stream("alpha"),
                                 scenario.channel_stream("beta"), 20000)),
            0.05);
  // Same channel name, different scenario seed: also independent.
  const FaultScenario other(cfg, 43);
  EXPECT_LT(std::abs(correlation(scenario.channel_stream("alpha"),
                                 other.channel_stream("alpha"), 20000)),
            0.05);
}

TEST(RngProperty, PulseDrawsAreIndependentOfChannelSpecs) {
  // The occurrence draws behind PulseSpec::occur_p must come from the
  // pulse spec's own sub-stream: adding channel fault specs to the config
  // leaves the pulse timeline and its draw counts bit-identical.
  ScenarioConfig plain;
  plain.horizon = Time::ms(1);
  plain.pulses.push_back({"cpu0", 64, 10.0, 20.0, /*occur_p=*/0.5});

  ScenarioConfig with_channels = plain;
  with_channels.channel_faults.push_back(
      {"link", 0.25, 0.1, 0.1, Time::us(1), Time::us(2), {}});

  for (const std::uint64_t seed : {1ull, 42ull, 1000ull}) {
    const FaultScenario a(plain, seed);
    const FaultScenario b(with_channels, seed);
    ASSERT_EQ(a.pulses().size(), b.pulses().size()) << "seed " << seed;
    for (std::size_t i = 0; i < a.pulses().size(); ++i) {
      EXPECT_EQ(a.pulses()[i].at, b.pulses()[i].at);
      EXPECT_EQ(a.pulses()[i].extra_cycles, b.pulses()[i].extra_cycles);
    }
    ASSERT_EQ(a.draw_counts().pulses.size(), 1u);
    EXPECT_EQ(a.draw_counts().pulses[0].occurred,
              b.draw_counts().pulses[0].occurred);
    EXPECT_EQ(a.draw_counts().pulses[0].skipped,
              b.draw_counts().pulses[0].skipped);
    // occur_p = 0.5 over 64 candidates: both outcomes must actually occur,
    // or the gating draw is not wired at all.
    EXPECT_GT(a.draw_counts().pulses[0].occurred, 0u);
    EXPECT_GT(a.draw_counts().pulses[0].skipped, 0u);
  }
}

}  // namespace
}  // namespace scfault
