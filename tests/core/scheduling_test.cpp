#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/scperf.hpp"

namespace scperf {
namespace {

constexpr double kMhz = 100.0;
minisc::Time cyc(double c) { return minisc::Time::from_ns(c * 10.0); }

CostTable add_only_table() {
  CostTable t;
  t.set(Op::kAdd, 1.0);
  return t;
}

void burn_adds(int n) {
  gint a(detail::RawTag{}, 0);
  for (int i = 0; i < n; ++i) {
    gint r = a + 1;
    (void)r;
  }
}

/// Releases three processes simultaneously at t = 0 on one CPU and records
/// the order in which their segments complete.
std::vector<std::string> completion_order(SwResource::Options opts,
                                          double prio_a, double prio_b,
                                          double prio_c) {
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource("cpu", kMhz, add_only_table(), opts);
  est.map("a", cpu, prio_a);
  est.map("b", cpu, prio_b);
  est.map("c", cpu, prio_c);
  std::vector<std::string> order;
  for (const char* name : {"a", "b", "c"}) {
    sim.spawn(name, [&order, name] {
      burn_adds(50);
      minisc::wait(minisc::Time::zero());
      order.push_back(name);
    });
  }
  sim.run();
  return order;
}

TEST(Scheduling, FifoServesInArrivalOrder) {
  // All three reach their node in spawn order within the same delta.
  const auto order =
      completion_order({.policy = SchedulingPolicy::kFifo}, 0, 0, 0);
  const std::vector<std::string> want{"a", "b", "c"};
  EXPECT_EQ(order, want);
}

TEST(Scheduling, PriorityOverridesArrivalOrder) {
  const auto order = completion_order(
      {.policy = SchedulingPolicy::kPriority}, /*a=*/1.0, /*b=*/3.0,
      /*c=*/2.0);
  const std::vector<std::string> want{"b", "c", "a"};
  EXPECT_EQ(order, want);
}

TEST(Scheduling, EqualPrioritiesFallBackToArrival) {
  const auto order = completion_order(
      {.policy = SchedulingPolicy::kPriority}, 5.0, 5.0, 5.0);
  const std::vector<std::string> want{"a", "b", "c"};
  EXPECT_EQ(order, want);
}

TEST(Scheduling, PriorityDoesNotPreemptRunningSegment) {
  // A low-priority segment that already occupies the CPU completes before a
  // later-arriving high-priority one (non-preemptive, §4 granularity).
  minisc::Simulator sim;
  Estimator est(sim);
  auto& cpu = est.add_sw_resource(
      "cpu", kMhz, add_only_table(),
      {.policy = SchedulingPolicy::kPriority});
  est.map("low", cpu, 1.0);
  est.map("high", cpu, 9.0);
  minisc::Time low_end, high_end;
  sim.spawn("low", [&] {
    burn_adds(100);
    minisc::wait(minisc::Time::zero());
    low_end = minisc::now();
  });
  sim.spawn("high", [&] {
    minisc::wait(minisc::Time::ns(200));  // arrives while low occupies [0,1000)
    burn_adds(100);
    minisc::wait(minisc::Time::zero());
    high_end = minisc::now();
  });
  sim.run();
  EXPECT_EQ(low_end, cyc(100));
  EXPECT_EQ(high_end, cyc(200));  // runs right after low completes
}

TEST(Scheduling, MakespanIndependentOfPolicyWhenLoadIsSerial) {
  // Policy changes ordering, not total work: same makespan either way.
  const auto run = [](SchedulingPolicy p) {
    minisc::Simulator sim;
    Estimator est(sim);
    auto& cpu =
        est.add_sw_resource("cpu", kMhz, add_only_table(), {.policy = p});
    est.map("a", cpu, 1.0);
    est.map("b", cpu, 2.0);
    sim.spawn("a", [] { burn_adds(70); });
    sim.spawn("b", [] { burn_adds(30); });
    sim.run();
    return sim.now();
  };
  EXPECT_EQ(run(SchedulingPolicy::kFifo), run(SchedulingPolicy::kPriority));
  EXPECT_EQ(run(SchedulingPolicy::kFifo), cyc(100));
}

TEST(Scheduling, ContentionSetBookkeeping) {
  minisc::Simulator sim;  // needed by Resource time conversions? not here,
                          // but keeps the environment uniform
  SwResource cpu("cpu", kMhz, add_only_table(),
                 {.policy = SchedulingPolicy::kPriority});
  const auto t1 = cpu.enter_contention(1.0);
  const auto t2 = cpu.enter_contention(5.0);
  EXPECT_FALSE(cpu.is_next(t1));
  EXPECT_TRUE(cpu.is_next(t2));
  cpu.leave_contention(t2);
  EXPECT_TRUE(cpu.is_next(t1));
  cpu.leave_contention(t1);
}

TEST(Scheduling, PolicyNamesRender) {
  EXPECT_STREQ(to_string(SchedulingPolicy::kFifo), "fifo");
  EXPECT_STREQ(to_string(SchedulingPolicy::kPriority), "priority");
}

}  // namespace
}  // namespace scperf
