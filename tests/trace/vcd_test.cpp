#include "trace/vcd.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/capture.hpp"
#include "kernel/simulator.hpp"

namespace sctrace {
namespace {

TEST(Vcd, HeaderAndDefinitions) {
  scperf::CaptureRegistry reg;
  scperf::CapturePoint cp("out rate", reg);
  std::ostringstream os;
  write_vcd(os, reg);
  const std::string s = os.str();
  EXPECT_NE(s.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(s.find("$var real 64 ! out_rate $end"), std::string::npos);
  EXPECT_NE(s.find("$enddefinitions $end"), std::string::npos);
}

TEST(Vcd, EventsEmittedInTimeOrder) {
  minisc::Simulator sim;
  scperf::CaptureRegistry reg;
  scperf::CapturePoint a("a", reg);
  scperf::CapturePoint b("b", reg);
  sim.spawn("p", [&] {
    minisc::wait(minisc::Time::ns(5));
    b.record(2.0);
    minisc::wait(minisc::Time::ns(5));
    a.record(1.0);
  });
  sim.run();
  std::ostringstream os;
  write_vcd(os, reg);
  const std::string s = os.str();
  const auto p5 = s.find("#5");
  const auto p10 = s.find("#10");
  ASSERT_NE(p5, std::string::npos);
  ASSERT_NE(p10, std::string::npos);
  EXPECT_LT(p5, p10);
  EXPECT_NE(s.find("r2 \""), std::string::npos);  // b is the 2nd var: id '"'
  EXPECT_NE(s.find("r1 !"), std::string::npos);   // a is the 1st var: id '!'
}

TEST(Vcd, SameInstantEventsShareTimestamp) {
  scperf::CaptureRegistry reg;
  scperf::CapturePoint a("a", reg);
  a.record(1.0);
  a.record(2.0);
  std::ostringstream os;
  write_vcd(os, reg);
  const std::string s = os.str();
  // Only one "#0" marker for both dumps.
  EXPECT_EQ(s.find("#0"), s.rfind("#0"));
}

TEST(Vcd, ExecTraceProducesActivityPulses) {
  minisc::Simulator sim;
  sim.enable_exec_trace(true);
  sim.spawn("worker", [] {
    minisc::wait(minisc::Time::ns(10));
    minisc::wait(minisc::Time::ns(10));
  });
  sim.run();
  std::ostringstream os;
  write_exec_vcd(os, sim.exec_trace());
  const std::string s = os.str();
  EXPECT_NE(s.find("$var wire 1 ! worker $end"), std::string::npos);
  EXPECT_NE(s.find("#10"), std::string::npos);
  EXPECT_NE(s.find("#20"), std::string::npos);
  EXPECT_NE(s.find("1!"), std::string::npos);
  EXPECT_NE(s.find("0!"), std::string::npos);
}

TEST(Vcd, IdCodesStayPrintableForManyPoints) {
  scperf::CaptureRegistry reg;
  std::vector<std::unique_ptr<scperf::CapturePoint>> points;
  for (int i = 0; i < 120; ++i) {
    points.push_back(std::make_unique<scperf::CapturePoint>(
        "p" + std::to_string(i), reg));
  }
  std::ostringstream os;
  write_vcd(os, reg);
  for (char c : os.str()) {
    EXPECT_TRUE(c == '\n' || (c >= ' ' && c <= '~'));
  }
}

}  // namespace
}  // namespace sctrace
